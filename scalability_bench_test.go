package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/procstat"
	"repro/internal/scheduler"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Scalability benchmarks back the paper's complexity claims: Algorithm 2's
// stable matching runs in O(M×N) (servers × containers) and the
// subsequent-wave greedy pass in O(n²). Each benchmark scales the cluster
// and reports scheduling wall time via the standard ns/op metric.

// benchJob builds a uniform job sized to the cluster.
func benchJob(maps, reduces int) *workload.Job {
	j := &workload.Job{ID: 0, NumMaps: maps, NumReduces: reduces, InputGB: float64(maps)}
	j.Shuffle = make([][]float64, maps)
	for m := range j.Shuffle {
		j.Shuffle[m] = make([]float64, reduces)
		for r := range j.Shuffle[m] {
			j.Shuffle[m][r] = 0.5
		}
	}
	j.MapComputeSec = make([]float64, maps)
	j.ReduceComputeSec = make([]float64, reduces)
	return j
}

func benchSchedule(b *testing.B, s scheduler.Scheduler, build func() (*topology.Topology, error), maps, reduces int) {
	b.Helper()
	b.ReportAllocs()
	var ctl *controller.Controller
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		topo, err := build()
		if err != nil {
			b.Fatal(err)
		}
		cl, err := cluster.New(topo, cluster.Resources{CPU: 2, Memory: 8192})
		if err != nil {
			b.Fatal(err)
		}
		ctl = controller.New(topo)
		req, _, err := scheduler.NewJobRequest(cl, ctl, []*workload.Job{benchJob(maps, reduces)},
			cluster.Resources{CPU: 1, Memory: 512}, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := s.Schedule(req); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Footprint next to wall-clock: the oracle's cache census from the last
	// iteration (O(V) in structural mode) and the process peak RSS.
	ms := ctl.Oracle().MemoryStats()
	b.ReportMetric(float64(ms.ApproxBytes)/1e6, "oracle-MB")
	if rss, ok := procstat.PeakRSSBytes(); ok {
		b.ReportMetric(float64(rss)/1e6, "peakRSS-MB")
	}
}

// treeBuilder fixes NewTree's depth/fanout into a benchSchedule topology
// factory.
func treeBuilder(depth, fanout int) func() (*topology.Topology, error) {
	return func() (*topology.Topology, error) {
		return topology.NewTree(depth, fanout, topology.LinkParams{Bandwidth: 1, SwitchCapacity: 1e9})
	}
}

// BenchmarkHitScalability scales the cluster along two regimes:
//
//   - tree fanout 2/4/6 → 8/64/216 servers with task counts proportional to
//     servers (the paper's sweep, also the seed's);
//   - large rack-tree fabrics at 1024 (4-ary switch tree, 64 servers per
//     rack), 4096 (8-ary, 64 per rack) and 10000 servers (10-ary, 100 per
//     rack) with a fixed job (96 maps, 48 reduces — 4608 shuffle flows),
//     sized so a wave exercises the structural O(1) oracle and the dense
//     preference build rather than drowning in task count.
func BenchmarkHitScalability(b *testing.B) {
	for _, fanout := range []int{2, 4, 6} {
		servers := fanout * fanout * fanout
		maps := servers / 2
		reduces := servers / 4
		if reduces < 1 {
			reduces = 1
		}
		b.Run(fmt.Sprintf("servers=%d", servers), func(b *testing.B) {
			benchSchedule(b, &core.HitScheduler{}, treeBuilder(3, fanout), maps, reduces)
		})
	}
	b.Run("servers=1024", func(b *testing.B) {
		benchSchedule(b, &core.HitScheduler{}, func() (*topology.Topology, error) {
			return topology.NewTreeWithRacks(3, 4, 64, topology.LinkParams{Bandwidth: 1, SwitchCapacity: 1e9})
		}, 96, 48)
	})
	b.Run("servers=4096", func(b *testing.B) {
		benchSchedule(b, &core.HitScheduler{}, func() (*topology.Topology, error) {
			return topology.NewTreeWithRacks(3, 8, 64, topology.LinkParams{Bandwidth: 1, SwitchCapacity: 1e9})
		}, 96, 48)
	})
	b.Run("servers=10000", func(b *testing.B) {
		benchSchedule(b, &core.HitScheduler{}, func() (*topology.Topology, error) {
			return topology.NewTreeWithRacks(3, 10, 100, topology.LinkParams{Bandwidth: 1, SwitchCapacity: 1e9})
		}, 96, 48)
	})
}

// BenchmarkCapacityScalability is the baseline's cost for the same sweep.
func BenchmarkCapacityScalability(b *testing.B) {
	for _, fanout := range []int{2, 4, 6} {
		servers := fanout * fanout * fanout
		maps := servers / 2
		reduces := servers / 4
		if reduces < 1 {
			reduces = 1
		}
		b.Run(fmt.Sprintf("servers=%d", servers), func(b *testing.B) {
			benchSchedule(b, scheduler.Capacity{}, treeBuilder(3, fanout), maps, reduces)
		})
	}
}

// BenchmarkSubsequentWaveScalability measures §5.3.2's greedy map placement
// with reduces fixed (the O(n²) path).
func BenchmarkSubsequentWaveScalability(b *testing.B) {
	for _, fanout := range []int{2, 4, 6} {
		servers := fanout * fanout * fanout
		maps := servers / 2
		b.Run(fmt.Sprintf("servers=%d", servers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				topo, err := topology.NewTree(3, fanout, topology.LinkParams{Bandwidth: 1, SwitchCapacity: 1e9})
				if err != nil {
					b.Fatal(err)
				}
				cl, err := cluster.New(topo, cluster.Resources{CPU: 2, Memory: 8192})
				if err != nil {
					b.Fatal(err)
				}
				ctl := controller.New(topo)
				job := benchJob(maps, servers/4+1)
				req, jt, err := scheduler.NewJobRequest(cl, ctl, []*workload.Job{job},
					cluster.Resources{CPU: 1, Memory: 512}, rand.New(rand.NewSource(int64(i))))
				if err != nil {
					b.Fatal(err)
				}
				// Fix every reduce on a server, making this a pure
				// subsequent-wave request.
				srv := cl.Servers()
				for ri, c := range jt[0].Reduces {
					if err := cl.Place(c, srv[ri%len(srv)]); err != nil {
						b.Fatal(err)
					}
					req.Fixed[c] = true
				}
				b.StartTimer()
				if err := (&core.HitScheduler{}).Schedule(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
