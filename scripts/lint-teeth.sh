#!/bin/sh
# lint-teeth: prove the taalint gates bite on the real module, not just on
# fixtures. For every patch in internal/analysis/testdata/teeth/ this script
# checks out HEAD into a throwaway git worktree, applies the deliberate
# mutation (drop a pool Put, write a published row, dirty a read path, skip
# an epoch bump), runs only the check named by the patch file's basename,
# and asserts taalint exits with code 1 — findings, not a crash (2) and not
# a pass (0). Any toothless check fails the script.
#
# Usage: scripts/lint-teeth.sh   (from anywhere inside the repo)
set -eu

root=$(git rev-parse --show-toplevel)
teeth="$root/internal/analysis/testdata/teeth"
[ -d "$teeth" ] || { echo "lint-teeth: no patch directory $teeth" >&2; exit 2; }

fail=0
for patch in "$teeth"/*.patch; do
    [ -e "$patch" ] || { echo "lint-teeth: no patches in $teeth" >&2; exit 2; }
    check=$(basename "$patch" .patch)
    wt=$(mktemp -d /tmp/lint-teeth.XXXXXX)
    # --detach: a throwaway checkout of HEAD, no branch to clean up.
    git -C "$root" worktree add --detach --quiet "$wt" HEAD
    git -C "$wt" apply "$patch"

    set +e
    (cd "$wt" && go run ./cmd/taalint -checks "$check" .) >/dev/null 2>&1
    code=$?
    set -e

    git -C "$root" worktree remove --force "$wt"
    if [ "$code" -eq 1 ]; then
        echo "lint-teeth: $check PASS (mutation caught, exit 1)"
    else
        echo "lint-teeth: $check FAIL (exit $code, want 1 — the check is toothless or broken)" >&2
        fail=1
    fi
done
exit "$fail"
