// Package taasearch provides a simulated-annealing solver for the TAA
// objective. The TAA problem is NP-hard (§4), so the exhaustive BruteForce
// oracle only reaches toy sizes; the annealer scales to the evaluation's
// instances and serves as a near-optimal comparator that quantifies how
// much headroom Hit-Scheduler's stable-matching heuristic leaves.
//
// The annealer searches placement space directly: a state is an assignment
// of every movable container to a server (CPU-feasible); its energy is the
// Eq. 2 shuffle cost assuming every flow then takes an optimal route (rate
// × hop distance between the endpoint servers — exact when switch
// capacities are slack, a lower bound otherwise). Moves reassign one
// container or swap two containers; acceptance follows Metropolis with a
// geometric cooling schedule. Network policies for the final placement are
// installed through the standard controller optimizer.
package taasearch

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/scheduler"
	"repro/internal/topology"
)

// Annealer implements scheduler.Scheduler with simulated annealing over
// placements. The zero value uses sensible defaults.
type Annealer struct {
	// Iterations of the Metropolis loop (default 20000).
	Iterations int
	// StartTemp and Cooling define the geometric schedule T_{k+1} = T_k *
	// Cooling (defaults 10.0 and 0.9995).
	StartTemp float64
	Cooling   float64
}

// Name implements scheduler.Scheduler.
func (a *Annealer) Name() string { return "anneal" }

func (a *Annealer) iterations() int {
	if a.Iterations <= 0 {
		return 20000
	}
	return a.Iterations
}

func (a *Annealer) startTemp() float64 {
	if a.StartTemp <= 0 {
		return 10
	}
	return a.StartTemp
}

func (a *Annealer) cooling() float64 {
	if a.Cooling <= 0 || a.Cooling >= 1 {
		return 0.9995
	}
	return a.Cooling
}

// Schedule implements scheduler.Scheduler.
func (a *Annealer) Schedule(req *scheduler.Request) error {
	if err := req.Validate(); err != nil {
		return err
	}
	oracle := req.Controller.Oracle()

	// Movable containers and their demands.
	var movable []cluster.ContainerID
	demand := make(map[cluster.ContainerID]int)
	for _, t := range req.Tasks {
		if req.Fixed[t.Container] {
			continue
		}
		movable = append(movable, t.Container)
		d := req.Cluster.Container(t.Container).Demand.CPU
		if d <= 0 {
			d = 1
		}
		demand[t.Container] = d
	}
	servers := req.Cluster.Servers()
	// Free CPU per server, with movable containers' own demand released
	// (they may start placed from a previous round).
	freeCPU := make(map[topology.NodeID]int, len(servers))
	for _, s := range servers {
		freeCPU[s] = req.Cluster.Free(s).CPU
	}
	position := make(map[cluster.ContainerID]topology.NodeID, len(movable))
	for _, c := range movable {
		if ct := req.Cluster.Container(c); ct.Placed() {
			position[c] = ct.Server()
			freeCPU[ct.Server()] += demand[c]
			if err := req.Cluster.Unplace(c); err != nil {
				return err
			}
		}
	}

	// Greedy random feasible initial state for the unplaced.
	for _, c := range movable {
		if _, ok := position[c]; ok {
			continue
		}
		placed := false
		for try := 0; try < 4*len(servers); try++ {
			s := servers[req.Rand.Intn(len(servers))]
			if freeCPU[s] >= demand[c] && req.Cluster.CanHost(s, c) {
				position[c] = s
				placed = true
				break
			}
		}
		if !placed {
			for _, s := range servers {
				if freeCPU[s] >= demand[c] && req.Cluster.CanHost(s, c) {
					position[c] = s
					placed = true
					break
				}
			}
		}
		if !placed {
			return fmt.Errorf("taasearch: no feasible server for container %d", c)
		}
		freeCPU[position[c]] -= demand[c]
	}

	// Fixed endpoints resolve through the cluster.
	serverOf := func(c cluster.ContainerID) topology.NodeID {
		if s, ok := position[c]; ok {
			return s
		}
		ct := req.Cluster.Container(c)
		if ct == nil {
			return topology.None
		}
		return ct.Server()
	}

	// incident[c] lists (flow, peer) pairs for delta evaluation.
	type edge struct {
		rate float64
		peer cluster.ContainerID
	}
	incident := make(map[cluster.ContainerID][]edge)
	for _, f := range req.Flows {
		incident[f.Src] = append(incident[f.Src], edge{rate: f.Rate, peer: f.Dst})
		incident[f.Dst] = append(incident[f.Dst], edge{rate: f.Rate, peer: f.Src})
	}
	costAt := func(c cluster.ContainerID, s topology.NodeID) float64 {
		var sum float64
		for _, e := range incident[c] {
			ps := serverOf(e.peer)
			if ps == topology.None {
				continue
			}
			if e.peer == c {
				continue
			}
			d := oracle.Dist(s, ps)
			if d > 0 {
				sum += e.rate * float64(d)
			}
		}
		return sum
	}

	// Metropolis loop.
	temp := a.startTemp()
	cool := a.cooling()
	if len(movable) > 0 {
		for it := 0; it < a.iterations(); it++ {
			c := movable[req.Rand.Intn(len(movable))]
			cur := position[c]
			var delta float64
			var apply func()
			if req.Rand.Intn(2) == 0 && len(movable) > 1 {
				// Swap with another movable container (keeps occupancy).
				o := movable[req.Rand.Intn(len(movable))]
				if o == c {
					temp *= cool
					continue
				}
				so := position[o]
				if so == cur {
					temp *= cool
					continue
				}
				// CPU feasibility of the exchange.
				if freeCPU[cur]+demand[c]-demand[o] < 0 || freeCPU[so]+demand[o]-demand[c] < 0 {
					temp *= cool
					continue
				}
				before := costAt(c, cur) + costAt(o, so)
				position[c], position[o] = so, cur
				after := costAt(c, so) + costAt(o, cur)
				position[c], position[o] = cur, so
				delta = after - before
				apply = func() {
					freeCPU[cur] += demand[c] - demand[o]
					freeCPU[so] += demand[o] - demand[c]
					position[c], position[o] = so, cur
				}
			} else {
				// Move to a random server with room.
				s := servers[req.Rand.Intn(len(servers))]
				if s == cur || freeCPU[s] < demand[c] {
					temp *= cool
					continue
				}
				delta = costAt(c, s) - costAt(c, cur)
				apply = func() {
					freeCPU[cur] += demand[c]
					freeCPU[s] -= demand[c]
					position[c] = s
				}
			}
			if delta <= 0 || (temp > 1e-9 && req.Rand.Float64() < math.Exp(-delta/temp)) {
				apply()
			}
			temp *= cool
		}
	}

	// Materialize the placement; memory conflicts fall back to feasible
	// servers.
	for _, c := range movable {
		if err := req.Cluster.Place(c, position[c]); err != nil {
			placed := false
			for _, s := range req.Cluster.Candidates(c) {
				if err := req.Cluster.Place(c, s); err == nil {
					placed = true
					break
				}
			}
			if !placed {
				return fmt.Errorf("taasearch: container %d has no feasible server", c)
			}
		}
	}

	// Optimal policies for the final placement.
	loc := req.Locator()
	for _, f := range req.Flows {
		p, err := req.Controller.OptimizePolicy(f, loc)
		if err != nil {
			return err
		}
		if err := req.Controller.Install(f, p); err != nil {
			return fmt.Errorf("taasearch: install flow %d: %w", f.ID, err)
		}
	}
	return nil
}

// check interface compliance.
var _ scheduler.Scheduler = (*Annealer)(nil)
