package taasearch

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/scheduler"
	"repro/internal/topology"
	"repro/internal/workload"
)

func testEnv(t *testing.T, depth, fanout int, per cluster.Resources) (*cluster.Cluster, *controller.Controller) {
	t.Helper()
	topo, err := topology.NewTree(depth, fanout, topology.LinkParams{
		Bandwidth: 1, SwitchCapacity: topology.InfiniteCapacity,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(topo, per)
	if err != nil {
		t.Fatal(err)
	}
	return cl, controller.New(topo)
}

func uniformJob(t *testing.T, m, r int, cell float64) *workload.Job {
	t.Helper()
	j := &workload.Job{NumMaps: m, NumReduces: r, InputGB: float64(m)}
	j.Shuffle = make([][]float64, m)
	for i := range j.Shuffle {
		j.Shuffle[i] = make([]float64, r)
		for k := range j.Shuffle[i] {
			j.Shuffle[i][k] = cell
		}
	}
	j.MapComputeSec = make([]float64, m)
	j.ReduceComputeSec = make([]float64, r)
	return j
}

func runCost(t *testing.T, s scheduler.Scheduler, m, r int, fanout int, seed int64) float64 {
	t.Helper()
	cl, ctl := testEnv(t, 2, fanout, cluster.Resources{CPU: 2, Memory: 8192})
	req, _, err := scheduler.NewJobRequest(cl, ctl, []*workload.Job{uniformJob(t, m, r, 2)},
		cluster.Resources{CPU: 1, Memory: 512}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Schedule(req); err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	for _, task := range req.Tasks {
		if !cl.Container(task.Container).Placed() {
			t.Fatalf("container %d unplaced", task.Container)
		}
	}
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
	cost, err := ctl.TotalCost(req.Flows, req.Locator())
	if err != nil {
		t.Fatal(err)
	}
	return cost
}

func TestAnnealerMatchesBruteForceOnTinyInstance(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		opt := runCost(t, scheduler.BruteForce{}, 2, 1, 2, seed)
		ann := runCost(t, &Annealer{Iterations: 5000}, 2, 1, 2, seed)
		if ann > opt+1e-9 {
			t.Errorf("seed %d: annealer %v > optimal %v", seed, ann, opt)
		}
		if ann < opt-1e-9 {
			t.Errorf("seed %d: annealer %v beat the oracle %v (accounting bug)", seed, ann, opt)
		}
	}
}

func TestAnnealerBeatsCapacityOnMediumInstance(t *testing.T) {
	var ann, capc float64
	for seed := int64(0); seed < 3; seed++ {
		ann += runCost(t, &Annealer{Iterations: 15000}, 8, 4, 4, seed)
		capc += runCost(t, scheduler.Capacity{}, 8, 4, 4, seed)
	}
	if ann >= capc {
		t.Errorf("annealer aggregate %v >= capacity %v", ann, capc)
	}
	t.Logf("aggregate: anneal=%.1f capacity=%.1f", ann, capc)
}

func TestHitWithinFactorOfAnnealer(t *testing.T) {
	// The headline quality question: how much does stable matching leave on
	// the table versus a long annealing run?
	var hit, ann float64
	for seed := int64(0); seed < 4; seed++ {
		hit += runCost(t, &core.HitScheduler{}, 6, 3, 4, seed)
		ann += runCost(t, &Annealer{Iterations: 30000}, 6, 3, 4, seed)
	}
	t.Logf("aggregate: hit=%.1f anneal=%.1f (gap %.1f%%)", hit, ann, (hit-ann)/ann*100)
	if hit > ann*1.6 {
		t.Errorf("hit %v more than 60%% above annealer %v", hit, ann)
	}
}

func TestAnnealerRespectsFixedContainers(t *testing.T) {
	cl, ctl := testEnv(t, 2, 2, cluster.Resources{CPU: 4, Memory: 8192})
	req, jt, err := scheduler.NewJobRequest(cl, ctl, []*workload.Job{uniformJob(t, 2, 2, 1)},
		cluster.Resources{CPU: 1, Memory: 512}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	srv := cl.Servers()[0]
	if err := cl.Place(jt[0].Reduces[0], srv); err != nil {
		t.Fatal(err)
	}
	req.Fixed[jt[0].Reduces[0]] = true
	if err := (&Annealer{Iterations: 2000}).Schedule(req); err != nil {
		t.Fatal(err)
	}
	if got := cl.Container(jt[0].Reduces[0]).Server(); got != srv {
		t.Errorf("fixed container moved to %d", got)
	}
}

func TestAnnealerDeterministicPerSeed(t *testing.T) {
	a := runCost(t, &Annealer{Iterations: 3000}, 4, 2, 2, 9)
	b := runCost(t, &Annealer{Iterations: 3000}, 4, 2, 2, 9)
	if a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
}

func TestAnnealerDefaults(t *testing.T) {
	a := &Annealer{}
	if a.Name() != "anneal" {
		t.Errorf("Name = %q", a.Name())
	}
	if a.iterations() != 20000 || a.startTemp() != 10 || a.cooling() != 0.9995 {
		t.Error("defaults wrong")
	}
	b := &Annealer{Iterations: 5, StartTemp: 1, Cooling: 0.5}
	if b.iterations() != 5 || b.startTemp() != 1 || b.cooling() != 0.5 {
		t.Error("overrides ignored")
	}
	if (&Annealer{Cooling: 2}).cooling() != 0.9995 {
		t.Error("cooling >= 1 not clamped")
	}
}
