// Package metrics provides the small statistical toolkit the experiment
// harness uses to report paper-style results: sample collections with means
// and percentiles, empirical CDFs (Figure 6 is presented as CDFs of job and
// task times), and fixed-width text tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ApproxTolerance is ApproxEqual's default relative/absolute tolerance:
// generous enough to absorb summation-order rounding, far below any
// meaningful cost or delay difference in the evaluation.
const ApproxTolerance = 1e-9

// ApproxEqual reports whether two floats are equal within a combined
// absolute-plus-relative tolerance. This is the epsilon helper the
// taalint floateq check points at: accumulated costs and utilities must
// never be compared with == / !=, whose result depends on summation
// order and platform rounding.
func ApproxEqual(a, b float64) bool {
	if a == b { //taalint:floateq fast path; the tolerance below decides near-misses
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= ApproxTolerance+ApproxTolerance*scale
}

// Sample is an accumulating collection of float64 observations.
type Sample struct {
	values []float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// AddAll appends many observations.
func (s *Sample) AddAll(vs []float64) {
	s.values = append(s.values, vs...)
	s.sorted = false
}

// N returns the observation count.
func (s *Sample) N() int { return len(s.values) }

// Sum returns the total of all observations.
func (s *Sample) Sum() float64 {
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum
}

// Mean returns the arithmetic mean, or NaN when empty.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	return s.Sum() / float64(len(s.values))
}

// Stddev returns the population standard deviation, or NaN when empty.
func (s *Sample) Stddev() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(s.values)))
}

// Min returns the smallest observation, or NaN when empty.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	s.ensureSorted()
	return s.values[0]
}

// Max returns the largest observation, or NaN when empty.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	s.ensureSorted()
	return s.values[len(s.values)-1]
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 <= p <= 100) by linear
// interpolation between closest ranks, or NaN when empty or p is out of
// range.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 || p < 0 || p > 100 {
		return math.NaN()
	}
	s.ensureSorted()
	if len(s.values) == 1 {
		return s.values[0]
	}
	rank := p / 100 * float64(len(s.values)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo]
	}
	frac := rank - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Values returns a sorted copy of the observations.
func (s *Sample) Values() []float64 {
	s.ensureSorted()
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64 // P(X <= Value)
}

// CDF returns the empirical CDF of the sample evaluated at up to maxPoints
// evenly spaced ranks (all points when maxPoints <= 0 or exceeds N).
func (s *Sample) CDF(maxPoints int) []CDFPoint {
	n := len(s.values)
	if n == 0 {
		return nil
	}
	s.ensureSorted()
	if maxPoints <= 0 || maxPoints > n {
		maxPoints = n
	}
	out := make([]CDFPoint, 0, maxPoints)
	for i := 0; i < maxPoints; i++ {
		idx := (i + 1) * n / maxPoints
		if idx > n {
			idx = n
		}
		out = append(out, CDFPoint{Value: s.values[idx-1], Fraction: float64(idx) / float64(n)})
	}
	return out
}

// Improvement returns the relative reduction of got versus baseline:
// (baseline - got) / baseline. Positive means got is better (smaller).
// It returns NaN when baseline is zero.
func Improvement(baseline, got float64) float64 {
	if baseline == 0 { //taalint:floateq exact-zero division guard; NaN for zero baseline is the documented contract

		return math.NaN()
	}
	return (baseline - got) / baseline
}

// Table formats rows of paper-style results as fixed-width text.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are kept as-is.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row formatting each value with the matching verb in
// formats ("%s", "%.2f", ...). formats and values must pair up.
func (t *Table) AddRowf(formats []string, values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		f := "%v"
		if i < len(formats) {
			f = formats[i]
		}
		cells[i] = fmt.Sprintf(f, v)
	}
	t.rows = append(t.rows, cells)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, len(c))
			} else if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
