package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.N() != 0 || !math.IsNaN(s.Mean()) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) || !math.IsNaN(s.Stddev()) {
		t.Error("empty sample stats not NaN/zero")
	}
	s.AddAll([]float64{4, 1, 3, 2})
	if s.N() != 4 {
		t.Errorf("N = %d", s.N())
	}
	if got := s.Sum(); got != 10 {
		t.Errorf("Sum = %v", got)
	}
	if got := s.Mean(); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if got := s.Max(); got != 4 {
		t.Errorf("Max = %v", got)
	}
	if got := s.Median(); got != 2.5 {
		t.Errorf("Median = %v", got)
	}
	// Stddev of 1..4 (population) = sqrt(1.25).
	if got := s.Stddev(); math.Abs(got-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("Stddev = %v", got)
	}
	// Adding after sort keeps correctness.
	s.Add(0)
	if got := s.Min(); got != 0 {
		t.Errorf("Min after Add = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	s.AddAll([]float64{10, 20, 30, 40, 50})
	cases := []struct{ p, want float64 }{
		{0, 10}, {25, 20}, {50, 30}, {75, 40}, {100, 50}, {90, 46},
	}
	for _, tc := range cases {
		if got := s.Percentile(tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", tc.p, got, tc.want)
		}
	}
	if !math.IsNaN(s.Percentile(-1)) || !math.IsNaN(s.Percentile(101)) {
		t.Error("out-of-range percentile not NaN")
	}
	var single Sample
	single.Add(7)
	if got := single.Percentile(50); got != 7 {
		t.Errorf("single-value P50 = %v", got)
	}
}

func TestValuesReturnsSortedCopy(t *testing.T) {
	var s Sample
	s.AddAll([]float64{3, 1, 2})
	v := s.Values()
	if !sort.Float64sAreSorted(v) {
		t.Errorf("Values not sorted: %v", v)
	}
	v[0] = 99
	if s.Min() == 99 {
		t.Error("Values aliases internal storage")
	}
}

func TestCDF(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	pts := s.CDF(10)
	if len(pts) != 10 {
		t.Fatalf("CDF points = %d, want 10", len(pts))
	}
	if pts[len(pts)-1].Fraction != 1 {
		t.Errorf("last fraction = %v, want 1", pts[len(pts)-1].Fraction)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value || pts[i].Fraction <= pts[i-1].Fraction {
			t.Errorf("CDF not monotone at %d: %+v %+v", i, pts[i-1], pts[i])
		}
	}
	if got := s.CDF(0); len(got) != 100 {
		t.Errorf("CDF(0) points = %d, want all 100", len(got))
	}
	var empty Sample
	if empty.CDF(5) != nil {
		t.Error("empty CDF not nil")
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(100, 72); math.Abs(got-0.28) > 1e-12 {
		t.Errorf("Improvement = %v, want 0.28", got)
	}
	if got := Improvement(100, 110); got >= 0 {
		t.Errorf("worse result should be negative, got %v", got)
	}
	if !math.IsNaN(Improvement(0, 5)) {
		t.Error("zero baseline not NaN")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Results", "scheduler", "cost")
	tb.AddRow("capacity", "100.0")
	tb.AddRowf([]string{"%s", "%.1f"}, "hit", 62.0)
	out := tb.String()
	if !strings.Contains(out, "== Results ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "capacity") || !strings.Contains(out, "62.0") {
		t.Errorf("missing rows:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	// Untitled table has no title line.
	tb2 := NewTable("", "a")
	if strings.Contains(tb2.String(), "==") {
		t.Error("untitled table rendered a title")
	}
}

// TestQuickPercentileWithinRange: percentiles always lie within [min, max]
// and are monotone in p.
func TestQuickPercentileWithinRange(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Sample
		for i := 0; i < int(n%50)+1; i++ {
			s.Add(rng.NormFloat64() * 100)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := s.Percentile(p)
			if v < s.Min()-1e-9 || v > s.Max()+1e-9 || v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickMeanBounds: mean lies within [min, max].
func TestQuickMeanBounds(t *testing.T) {
	f := func(vs []float64) bool {
		clean := vs[:0]
		for _, v := range vs {
			// Keep magnitudes modest so the sum cannot overflow.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		var s Sample
		s.AddAll(clean)
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
