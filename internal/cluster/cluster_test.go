package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func newTestCluster(t *testing.T, per Resources) *Cluster {
	t.Helper()
	topo, err := topology.NewTree(2, 2, topology.LinkParams{})
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	c, err := New(topo, per)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, Resources{CPU: 1}); err == nil {
		t.Error("nil topology accepted")
	}
	topo, _ := topology.NewTree(1, 2, topology.LinkParams{})
	if _, err := New(topo, Resources{CPU: -1}); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{CPU: 4, Memory: 1024}
	b := Resources{CPU: 1, Memory: 256}
	if got := a.Add(b); got != (Resources{CPU: 5, Memory: 1280}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Resources{CPU: 3, Memory: 768}) {
		t.Errorf("Sub = %v", got)
	}
	if !b.Fits(b, a) {
		t.Error("Fits(1+1 <= 4) = false")
	}
	if a.Fits(b, a) {
		t.Error("Fits(4+1 <= 4) = true")
	}
	if !(Resources{}).IsZero() || a.IsZero() {
		t.Error("IsZero wrong")
	}
	if a.String() != "4c/1024m" {
		t.Errorf("String = %q", a.String())
	}
}

func TestPlaceUnplaceLifecycle(t *testing.T) {
	c := newTestCluster(t, Resources{CPU: 2, Memory: 2048})
	srv := c.Servers()
	ct, err := c.NewContainer(Resources{CPU: 1, Memory: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if ct.Placed() {
		t.Error("new container already placed")
	}
	if err := c.Place(ct.ID, srv[0]); err != nil {
		t.Fatalf("Place: %v", err)
	}
	if !ct.Placed() || ct.Server() != srv[0] {
		t.Errorf("container on %d, want %d", ct.Server(), srv[0])
	}
	if got := c.Used(srv[0]); got != ct.Demand {
		t.Errorf("Used = %v, want %v", got, ct.Demand)
	}
	// Re-placing on the same server is a no-op.
	if err := c.Place(ct.ID, srv[0]); err != nil {
		t.Errorf("idempotent Place: %v", err)
	}
	if got := c.Used(srv[0]); got != ct.Demand {
		t.Errorf("Used after idempotent place = %v, want %v", got, ct.Demand)
	}
	// Moving frees the old server.
	if err := c.Place(ct.ID, srv[1]); err != nil {
		t.Fatalf("move: %v", err)
	}
	if got := c.Used(srv[0]); !got.IsZero() {
		t.Errorf("old server still used: %v", got)
	}
	if err := c.Unplace(ct.ID); err != nil {
		t.Fatal(err)
	}
	if ct.Placed() {
		t.Error("still placed after Unplace")
	}
	if err := c.Unplace(ct.ID); err != nil {
		t.Errorf("double Unplace: %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPlaceRejectsOverCapacity(t *testing.T) {
	c := newTestCluster(t, Resources{CPU: 1, Memory: 1000})
	srv := c.Servers()
	a, _ := c.NewContainer(Resources{CPU: 1, Memory: 500})
	b, _ := c.NewContainer(Resources{CPU: 1, Memory: 500})
	if err := c.Place(a.ID, srv[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.Place(b.ID, srv[0]); err == nil {
		t.Error("over-capacity placement accepted")
	}
	if !c.CanHost(srv[1], b.ID) {
		t.Error("CanHost(empty server) = false")
	}
	if c.CanHost(srv[0], b.ID) {
		t.Error("CanHost(full server) = true")
	}
	// A container already on the server can always "stay".
	if !c.CanHost(srv[0], a.ID) {
		t.Error("CanHost(own server) = false")
	}
}

func TestPlaceErrors(t *testing.T) {
	c := newTestCluster(t, Resources{CPU: 1, Memory: 100})
	srv := c.Servers()
	if err := c.Place(ContainerID(99), srv[0]); err == nil {
		t.Error("unknown container accepted")
	}
	ct, _ := c.NewContainer(Resources{CPU: 1})
	if err := c.Place(ct.ID, topology.NodeID(0)); err == nil {
		// Node 0 in a tree is a switch, not a server.
		t.Error("placement on a switch accepted")
	}
	if err := c.Unplace(ContainerID(99)); err == nil {
		t.Error("unknown container Unplace accepted")
	}
	if _, err := c.NewContainer(Resources{CPU: -1}); err == nil {
		t.Error("negative demand accepted")
	}
}

func TestCandidates(t *testing.T) {
	c := newTestCluster(t, Resources{CPU: 1, Memory: 100})
	srv := c.Servers()
	big, _ := c.NewContainer(Resources{CPU: 1, Memory: 100})
	if got := c.Candidates(big.ID); len(got) != len(srv) {
		t.Errorf("candidates = %d, want all %d servers", len(got), len(srv))
	}
	// Fill server 0 with another container; candidates shrink.
	other, _ := c.NewContainer(Resources{CPU: 1, Memory: 100})
	if err := c.Place(other.ID, srv[0]); err != nil {
		t.Fatal(err)
	}
	got := c.Candidates(big.ID)
	if len(got) != len(srv)-1 {
		t.Errorf("candidates after fill = %d, want %d", len(got), len(srv)-1)
	}
	for _, s := range got {
		if s == srv[0] {
			t.Error("full server still a candidate")
		}
	}
	if c.Candidates(ContainerID(50)) != nil {
		t.Error("candidates for unknown container")
	}
}

func TestSetServerCapacity(t *testing.T) {
	c := newTestCluster(t, Resources{CPU: 4, Memory: 4000})
	srv := c.Servers()
	ct, _ := c.NewContainer(Resources{CPU: 2, Memory: 2000})
	if err := c.Place(ct.ID, srv[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.SetServerCapacity(srv[0], Resources{CPU: 1, Memory: 100}); err == nil {
		t.Error("shrinking below usage accepted")
	}
	if err := c.SetServerCapacity(srv[0], Resources{CPU: 2, Memory: 2000}); err != nil {
		t.Errorf("exact shrink rejected: %v", err)
	}
	if err := c.SetServerCapacity(topology.NodeID(0), Resources{}); err == nil {
		t.Error("unknown server accepted")
	}
}

func TestContainersOnSorted(t *testing.T) {
	c := newTestCluster(t, Resources{CPU: 8, Memory: 8000})
	srv := c.Servers()
	var ids []ContainerID
	for i := 0; i < 5; i++ {
		ct, _ := c.NewContainer(Resources{CPU: 1, Memory: 1})
		ids = append(ids, ct.ID)
		if err := c.Place(ct.ID, srv[0]); err != nil {
			t.Fatal(err)
		}
	}
	got := c.ContainersOn(srv[0])
	if len(got) != 5 {
		t.Fatalf("ContainersOn = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Errorf("not sorted: %v", got)
		}
	}
	if c.ContainersOn(topology.NodeID(0)) != nil {
		t.Error("ContainersOn(switch) non-nil")
	}
}

func TestTotalFreeSlots(t *testing.T) {
	c := newTestCluster(t, Resources{CPU: 2, Memory: 2000}) // 4 servers
	d := Resources{CPU: 1, Memory: 1000}
	if got := c.TotalFreeSlots(d); got != 8 {
		t.Errorf("TotalFreeSlots = %d, want 8", got)
	}
	ct, _ := c.NewContainer(d)
	if err := c.Place(ct.ID, c.Servers()[0]); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalFreeSlots(d); got != 7 {
		t.Errorf("TotalFreeSlots after place = %d, want 7", got)
	}
	if got := c.TotalFreeSlots(Resources{}); got != 0 {
		t.Errorf("TotalFreeSlots(zero) = %d, want 0", got)
	}
	// Memory-only demand ignores the CPU dimension: srv0 has 1000 MB free
	// (2 slots), the other three have 2000 MB (4 slots each).
	if got := c.TotalFreeSlots(Resources{Memory: 500}); got != 14 {
		t.Errorf("TotalFreeSlots(mem-only) = %d, want 14", got)
	}
}

func TestSnapshotRestore(t *testing.T) {
	c := newTestCluster(t, Resources{CPU: 2, Memory: 2000})
	srv := c.Servers()
	a, _ := c.NewContainer(Resources{CPU: 1, Memory: 500})
	b, _ := c.NewContainer(Resources{CPU: 1, Memory: 500})
	if err := c.Place(a.ID, srv[0]); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if err := c.Place(a.ID, srv[1]); err != nil {
		t.Fatal(err)
	}
	if err := c.Place(b.ID, srv[2]); err != nil {
		t.Fatal(err)
	}
	if err := c.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if a.Server() != srv[0] {
		t.Errorf("a on %d after restore, want %d", a.Server(), srv[0])
	}
	if b.Placed() {
		t.Error("b placed after restore to unplaced snapshot")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestQuickRandomPlacementInvariants(t *testing.T) {
	topo, err := topology.NewTree(3, 3, topology.LinkParams{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(topo, Resources{CPU: 3, Memory: 3000})
		if err != nil {
			return false
		}
		var ids []ContainerID
		for i := 0; i < 10; i++ {
			ct, err := c.NewContainer(Resources{CPU: 1 + rng.Intn(2), Memory: 500 + rng.Intn(1500)})
			if err != nil {
				return false
			}
			ids = append(ids, ct.ID)
		}
		srv := c.Servers()
		for op := 0; op < int(nOps); op++ {
			id := ids[rng.Intn(len(ids))]
			if rng.Intn(4) == 0 {
				if c.Unplace(id) != nil {
					return false
				}
			} else {
				s := srv[rng.Intn(len(srv))]
				// Place may legitimately fail when full; error text only.
				_ = c.Place(id, s)
			}
			if c.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
