// Package cluster models the compute side of the data center: servers with
// physical resource capacities (q_j in the paper), containers with resource
// demands (r_i), and the allocation bookkeeping A(s_j) the schedulers
// manipulate. It enforces the paper's placement constraints: a container
// lives on at most one server, and the sum of container demands on a server
// never exceeds its capacity (Eq. 8).
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/topology"
)

// ContainerID identifies a container within one Cluster. IDs are dense:
// 0..NumContainers()-1.
type ContainerID int

// NoContainer is the "no container" sentinel.
const NoContainer ContainerID = -1

// Resources is a physical resource vector (r_i for demands, q_j for server
// capacity). Units are abstract: typical experiments use vcores and MB.
type Resources struct {
	CPU    int
	Memory int
}

// Add returns r + o componentwise.
func (r Resources) Add(o Resources) Resources {
	return Resources{CPU: r.CPU + o.CPU, Memory: r.Memory + o.Memory}
}

// Sub returns r - o componentwise.
func (r Resources) Sub(o Resources) Resources {
	return Resources{CPU: r.CPU - o.CPU, Memory: r.Memory - o.Memory}
}

// Fits reports whether r + extra stays within capacity c componentwise.
func (r Resources) Fits(extra, c Resources) bool {
	return r.CPU+extra.CPU <= c.CPU && r.Memory+extra.Memory <= c.Memory
}

// IsZero reports whether both components are zero.
func (r Resources) IsZero() bool { return r.CPU == 0 && r.Memory == 0 }

// String formats the vector as "<cpu>c/<mem>m".
func (r Resources) String() string { return fmt.Sprintf("%dc/%dm", r.CPU, r.Memory) }

// Container is a unit of compute allocation; the scheduler binds at most one
// Map or Reduce task to each container (the paper's third constraint).
type Container struct {
	ID     ContainerID
	Demand Resources
	// server the container is placed on; topology.None while unplaced.
	server topology.NodeID
}

// Server returns the hosting server or topology.None.
func (c *Container) Server() topology.NodeID { return c.server }

// Placed reports whether the container has been assigned a server.
func (c *Container) Placed() bool { return c.server != topology.None }

// serverState tracks the per-server allocation.
type serverState struct {
	capacity   Resources
	used       Resources
	containers map[ContainerID]struct{}
}

// Cluster couples a topology's servers with resource capacities and tracks
// container placement.
type Cluster struct {
	topo       *topology.Topology
	servers    map[topology.NodeID]*serverState
	serverIDs  []topology.NodeID // sorted
	containers []*Container
}

// New creates a cluster over all servers of topo, each with capacity per.
func New(topo *topology.Topology, per Resources) (*Cluster, error) {
	if topo == nil {
		return nil, fmt.Errorf("cluster: nil topology")
	}
	if per.CPU < 0 || per.Memory < 0 {
		return nil, fmt.Errorf("cluster: negative server capacity %v", per)
	}
	c := &Cluster{
		topo:    topo,
		servers: make(map[topology.NodeID]*serverState, topo.NumServers()),
	}
	for _, s := range topo.Servers() {
		c.servers[s] = &serverState{capacity: per, containers: make(map[ContainerID]struct{})}
		c.serverIDs = append(c.serverIDs, s)
	}
	sort.Slice(c.serverIDs, func(i, j int) bool { return c.serverIDs[i] < c.serverIDs[j] })
	return c, nil
}

// Topology returns the underlying network topology.
func (c *Cluster) Topology() *topology.Topology { return c.topo }

// Servers returns the server node IDs, ascending. Do not modify.
func (c *Cluster) Servers() []topology.NodeID { return c.serverIDs }

// NumContainers returns the number of containers created so far.
func (c *Cluster) NumContainers() int { return len(c.containers) }

// SetServerCapacity overrides one server's capacity. It fails if the server
// is unknown or already uses more than the new capacity. Blessed (exempt)
// epochbump mutator: allocation state is re-read per decision, never
// epoch-cached, so cluster writes carry no bump obligation — but taalint
// still confines them to the blessed set.
func (c *Cluster) SetServerCapacity(s topology.NodeID, cap Resources) error {
	st, ok := c.servers[s]
	if !ok {
		return fmt.Errorf("cluster: unknown server %d", s)
	}
	if !st.used.Fits(Resources{}, cap) {
		return fmt.Errorf("cluster: server %d already uses %v > new capacity %v", s, st.used, cap)
	}
	st.capacity = cap
	return nil
}

// NewContainer creates an unplaced container with the given demand.
func (c *Cluster) NewContainer(demand Resources) (*Container, error) {
	if demand.CPU < 0 || demand.Memory < 0 {
		return nil, fmt.Errorf("cluster: negative demand %v", demand)
	}
	ct := &Container{ID: ContainerID(len(c.containers)), Demand: demand, server: topology.None}
	c.containers = append(c.containers, ct)
	return ct, nil
}

// Container returns the container with the given ID, or nil.
func (c *Cluster) Container(id ContainerID) *Container {
	if id < 0 || int(id) >= len(c.containers) {
		return nil
	}
	return c.containers[id]
}

// Capacity returns the capacity q_j of server s (zero value if unknown).
func (c *Cluster) Capacity(s topology.NodeID) Resources {
	if st, ok := c.servers[s]; ok {
		return st.capacity
	}
	return Resources{}
}

// Used returns the resources currently consumed on server s.
func (c *Cluster) Used(s topology.NodeID) Resources {
	if st, ok := c.servers[s]; ok {
		return st.used
	}
	return Resources{}
}

// Free returns Capacity(s) - Used(s).
func (c *Cluster) Free(s topology.NodeID) Resources {
	if st, ok := c.servers[s]; ok {
		return st.capacity.Sub(st.used)
	}
	return Resources{}
}

// CanHost reports whether server s has room for container id (Eq. 8),
// ignoring the container's current placement if it is already on s.
func (c *Cluster) CanHost(s topology.NodeID, id ContainerID) bool {
	st, ok := c.servers[s]
	ct := c.Container(id)
	if !ok || ct == nil {
		return false
	}
	if ct.server == s {
		return true
	}
	return st.used.Fits(ct.Demand, st.capacity)
}

// Place puts container id on server s, unplacing it first if needed.
// Blessed (exempt) epochbump mutator: see SetServerCapacity.
func (c *Cluster) Place(id ContainerID, s topology.NodeID) error {
	ct := c.Container(id)
	if ct == nil {
		return fmt.Errorf("cluster: unknown container %d", id)
	}
	st, ok := c.servers[s]
	if !ok {
		return fmt.Errorf("cluster: unknown server %d", s)
	}
	if ct.server == s {
		return nil
	}
	if !st.used.Fits(ct.Demand, st.capacity) {
		return fmt.Errorf("cluster: server %d cannot host container %d: used %v + demand %v > capacity %v",
			s, id, st.used, ct.Demand, st.capacity)
	}
	if ct.server != topology.None {
		c.unplaceLocked(ct)
	}
	ct.server = s
	st.used = st.used.Add(ct.Demand)
	st.containers[id] = struct{}{}
	return nil
}

// Unplace removes container id from its server; no-op if unplaced.
func (c *Cluster) Unplace(id ContainerID) error {
	ct := c.Container(id)
	if ct == nil {
		return fmt.Errorf("cluster: unknown container %d", id)
	}
	if ct.server != topology.None {
		c.unplaceLocked(ct)
	}
	return nil
}

// unplaceLocked releases ct's server-side accounting. Blessed (exempt)
// epochbump mutator: see SetServerCapacity.
func (c *Cluster) unplaceLocked(ct *Container) {
	st := c.servers[ct.server]
	st.used = st.used.Sub(ct.Demand)
	delete(st.containers, ct.ID)
	ct.server = topology.None
}

// ContainersOn returns the containers placed on s, ascending by ID.
func (c *Cluster) ContainersOn(s topology.NodeID) []ContainerID {
	st, ok := c.servers[s]
	if !ok {
		return nil
	}
	out := make([]ContainerID, 0, len(st.containers))
	for id := range st.containers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Candidates returns every server that could host container id (Eq. 8's
// candidate set O(c_i)), ascending, including its current server.
func (c *Cluster) Candidates(id ContainerID) []topology.NodeID {
	return c.AppendCandidates(nil, id)
}

// AppendCandidates appends the feasible servers for the container to buf
// and returns the extended slice — Candidates without the per-call
// allocation, for callers that scan many containers with one reusable
// buffer.
func (c *Cluster) AppendCandidates(buf []topology.NodeID, id ContainerID) []topology.NodeID {
	ct := c.Container(id)
	if ct == nil {
		return buf
	}
	for _, s := range c.serverIDs {
		if c.CanHost(s, id) {
			buf = append(buf, s)
		}
	}
	return buf
}

// TotalFreeSlots reports how many additional containers of the given demand
// the cluster could host across all servers.
func (c *Cluster) TotalFreeSlots(demand Resources) int {
	if demand.IsZero() {
		return 0
	}
	total := 0
	for _, s := range c.serverIDs {
		free := c.Free(s)
		n := -1
		if demand.CPU > 0 {
			n = free.CPU / demand.CPU
		}
		if demand.Memory > 0 {
			if m := free.Memory / demand.Memory; n < 0 || m < n {
				n = m
			}
		}
		if n > 0 {
			total += n
		}
	}
	return total
}

// Validate checks internal invariants: placements are mutual and usage sums
// match. Intended for tests and debugging.
func (c *Cluster) Validate() error {
	for s, st := range c.servers {
		var sum Resources
		for id := range st.containers {
			ct := c.Container(id)
			if ct == nil || ct.server != s {
				return fmt.Errorf("cluster: server %d lists container %d which points at %v", s, id, ct)
			}
			sum = sum.Add(ct.Demand)
		}
		if sum != st.used {
			return fmt.Errorf("cluster: server %d used %v but containers sum to %v", s, st.used, sum)
		}
		if !st.used.Fits(Resources{}, st.capacity) {
			return fmt.Errorf("cluster: server %d over capacity: %v > %v", s, st.used, st.capacity)
		}
	}
	for _, ct := range c.containers {
		if ct.server == topology.None {
			continue
		}
		st, ok := c.servers[ct.server]
		if !ok {
			return fmt.Errorf("cluster: container %d on unknown server %d", ct.ID, ct.server)
		}
		if _, ok := st.containers[ct.ID]; !ok {
			return fmt.Errorf("cluster: container %d not listed on server %d", ct.ID, ct.server)
		}
	}
	return nil
}

// Snapshot captures the current placement so it can be restored after a
// tentative optimization pass.
func (c *Cluster) Snapshot() map[ContainerID]topology.NodeID {
	m := make(map[ContainerID]topology.NodeID, len(c.containers))
	for _, ct := range c.containers {
		m[ct.ID] = ct.server
	}
	return m
}

// Restore reverts to a snapshot produced by Snapshot.
func (c *Cluster) Restore(snap map[ContainerID]topology.NodeID) error {
	for _, ct := range c.containers {
		if ct.server != topology.None {
			c.unplaceLocked(ct)
		}
	}
	for id, s := range snap {
		if s == topology.None {
			continue
		}
		if err := c.Place(id, s); err != nil {
			return fmt.Errorf("cluster: restore: %w", err)
		}
	}
	return nil
}
