// Package hitplugin is the online phase of the paper's Hadoop integration
// (§6) — the mapred.job.topologyaware machinery that makes Hit-Scheduler a
// deployable plugin. For each submitted job it:
//
//  1. predicts the job's shuffle demand from the offline profile store
//     (§6's "profile the shuffle data rate for each application"),
//  2. solves the TAA placement with Hit-Scheduler on a planning snapshot
//     that mirrors the live cluster's current occupancy,
//  3. realizes the plan through the YARN ResourceManager as
//     Hit-ResourceRequests (§6.2–6.3), and
//  4. installs network policies for the job's predicted shuffle flows on
//     the shared controller, re-optimized against wherever the grants
//     actually landed.
//
// Completing a job releases its containers and policies and feeds the
// observed volumes back into the profile store, closing the offline/online
// loop.
package hitplugin

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/profile"
	"repro/internal/scheduler"
	"repro/internal/topology"
	"repro/internal/workload"
	"repro/internal/yarn"
)

// Plugin wires the pieces together. Not safe for concurrent use.
type Plugin struct {
	rm     *yarn.ResourceManager
	live   *cluster.Cluster
	ctl    *controller.Controller
	store  *profile.Store
	demand cluster.Resources
	rng    *rand.Rand
	nextFl flow.ID
	jobSeq int
}

// Job is a submission: what the user knows before running.
type Job struct {
	Benchmark  string
	InputGB    float64
	NumMaps    int
	NumReduces int
}

// Handle tracks a running job for completion.
type Handle struct {
	// App is the YARN application.
	App *yarn.Application
	// MapAllocs and ReduceAllocs are the granted containers, task-indexed.
	MapAllocs    []yarn.Allocation
	ReduceAllocs []yarn.Allocation
	// Flows are the job's predicted shuffle flows with installed policies.
	Flows []*flow.Flow
	// PredictedShuffleGB is the profile-based estimate used for planning.
	PredictedShuffleGB float64

	job Job
}

// New builds a plugin over a live ResourceManager and cluster. The
// controller and planning machinery are created internally; demand is the
// per-container ask used for every task.
func New(rm *yarn.ResourceManager, live *cluster.Cluster, store *profile.Store, demand cluster.Resources, seed int64) (*Plugin, error) {
	if rm == nil || live == nil || store == nil {
		return nil, fmt.Errorf("hitplugin: nil ResourceManager, cluster or store")
	}
	if demand.CPU <= 0 {
		return nil, fmt.Errorf("hitplugin: demand needs positive CPU, got %v", demand)
	}
	return &Plugin{
		rm:     rm,
		live:   live,
		ctl:    controller.New(live.Topology()),
		store:  store,
		demand: demand,
		rng:    rand.New(rand.NewSource(seed)),
	}, nil
}

// Controller exposes the plugin's policy controller (for inspection).
func (p *Plugin) Controller() *controller.Controller { return p.ctl }

// Submit plans, realizes and wires one job.
func (p *Plugin) Submit(job Job) (*Handle, error) {
	if job.NumMaps <= 0 || job.NumReduces <= 0 {
		return nil, fmt.Errorf("hitplugin: job needs positive task counts, got %d/%d", job.NumMaps, job.NumReduces)
	}
	if job.InputGB <= 0 {
		return nil, fmt.Errorf("hitplugin: job needs positive input, got %v", job.InputGB)
	}
	shuffleGB, err := p.store.PredictShuffleGB(job.Benchmark, job.InputGB)
	if err != nil {
		return nil, fmt.Errorf("hitplugin: %w (profile the benchmark offline first)", err)
	}

	// Predicted job: a uniform shuffle matrix carrying the estimated volume.
	wj := &workload.Job{
		ID:         p.jobSeq,
		Benchmark:  job.Benchmark,
		InputGB:    job.InputGB,
		NumMaps:    job.NumMaps,
		NumReduces: job.NumReduces,
	}
	p.jobSeq++
	cell := shuffleGB / float64(job.NumMaps*job.NumReduces)
	wj.Shuffle = make([][]float64, job.NumMaps)
	for m := range wj.Shuffle {
		wj.Shuffle[m] = make([]float64, job.NumReduces)
		for r := range wj.Shuffle[m] {
			wj.Shuffle[m][r] = cell
		}
	}
	wj.MapComputeSec = make([]float64, job.NumMaps)
	wj.ReduceComputeSec = make([]float64, job.NumReduces)

	// Planning snapshot: a scratch cluster whose per-server capacity equals
	// the live cluster's current free resources.
	scratch, err := cluster.New(p.live.Topology(), cluster.Resources{})
	if err != nil {
		return nil, err
	}
	for _, s := range p.live.Servers() {
		if err := scratch.SetServerCapacity(s, p.live.Free(s)); err != nil {
			return nil, err
		}
	}
	planCtl := controller.New(p.live.Topology())
	req, _, err := scheduler.NewJobRequest(scratch, planCtl, []*workload.Job{wj}, p.demand, p.rng)
	if err != nil {
		return nil, err
	}
	if err := (&core.HitScheduler{}).Schedule(req); err != nil {
		return nil, fmt.Errorf("hitplugin: planning: %w", err)
	}
	plan, err := yarn.PlanFromSchedule(req, p.demand)
	if err != nil {
		return nil, err
	}

	// Realize through YARN. The plan's task order matches req.Tasks: maps
	// then reduces per NewJobRequest.
	app := p.rm.Submit(fmt.Sprintf("%s-%d", job.Benchmark, p.jobSeq-1))
	allocs, err := yarn.Realize(p.rm, app, plan)
	if err != nil {
		return nil, fmt.Errorf("hitplugin: realization: %w", err)
	}
	h := &Handle{App: app, PredictedShuffleGB: shuffleGB, job: job}
	h.MapAllocs = allocs[:job.NumMaps]
	h.ReduceAllocs = allocs[job.NumMaps:]

	// Wire the flows against the ACTUAL grant locations and install
	// re-optimized policies on the shared controller.
	loc := flow.LocatorFunc(func(c cluster.ContainerID) topology.NodeID {
		ct := p.live.Container(c)
		if ct == nil {
			return topology.None
		}
		return ct.Server()
	})
	for m := 0; m < job.NumMaps; m++ {
		for r := 0; r < job.NumReduces; r++ {
			if cell <= 0 {
				continue
			}
			f := &flow.Flow{
				ID:          p.nextFl,
				JobID:       wj.ID,
				MapIndex:    m,
				ReduceIndex: r,
				Src:         h.MapAllocs[m].Container,
				Dst:         h.ReduceAllocs[r].Container,
				SizeGB:      cell,
				Rate:        cell,
			}
			p.nextFl++
			pol, err := p.ctl.OptimizePolicy(f, loc)
			if err != nil {
				return nil, fmt.Errorf("hitplugin: policy for flow %d: %w", f.ID, err)
			}
			if err := p.ctl.Install(f, pol); err != nil {
				return nil, fmt.Errorf("hitplugin: install flow %d: %w", f.ID, err)
			}
			h.Flows = append(h.Flows, f)
		}
	}
	return h, nil
}

// PreferredFraction reports how many of the handle's grants landed on their
// planned hosts.
func (h *Handle) PreferredFraction() float64 {
	total := len(h.MapAllocs) + len(h.ReduceAllocs)
	if total == 0 {
		return 0
	}
	n := 0
	for _, a := range h.MapAllocs {
		if a.Preferred {
			n++
		}
	}
	for _, a := range h.ReduceAllocs {
		if a.Preferred {
			n++
		}
	}
	return float64(n) / float64(total)
}

// Complete finishes a job: containers released, policies uninstalled, and
// the observed volumes folded back into the profile store. observedShuffleGB
// < 0 means "trust the prediction" (no measurement available).
func (p *Plugin) Complete(h *Handle, observedShuffleGB, observedRemoteMapGB float64) error {
	if h == nil {
		return fmt.Errorf("hitplugin: nil handle")
	}
	for _, f := range h.Flows {
		p.ctl.Uninstall(f.ID)
	}
	for _, a := range h.MapAllocs {
		if err := h.App.Release(a.Container); err != nil {
			return err
		}
	}
	for _, a := range h.ReduceAllocs {
		if err := h.App.Release(a.Container); err != nil {
			return err
		}
	}
	if observedShuffleGB < 0 {
		observedShuffleGB = h.PredictedShuffleGB
	}
	if observedRemoteMapGB < 0 {
		observedRemoteMapGB = 0
	}
	return p.store.Record(profile.Record{
		Benchmark:   h.job.Benchmark,
		InputGB:     h.job.InputGB,
		ShuffleGB:   observedShuffleGB,
		RemoteMapGB: observedRemoteMapGB,
	})
}
