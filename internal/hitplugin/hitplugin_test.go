package hitplugin

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/profile"
	"repro/internal/topology"
	"repro/internal/yarn"
)

func newPlugin(t *testing.T) (*Plugin, *cluster.Cluster, *profile.Store) {
	t.Helper()
	topo, err := topology.NewTree(2, 4, topology.LinkParams{Bandwidth: 1, SwitchCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	live, err := cluster.New(topo, cluster.Resources{CPU: 4, Memory: 8192})
	if err != nil {
		t.Fatal(err)
	}
	rm, err := yarn.NewResourceManager(live)
	if err != nil {
		t.Fatal(err)
	}
	store, err := profile.NewStore(0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the store with the catalog's ground truth for terasort.
	if err := store.Record(profile.Record{Benchmark: "terasort", InputGB: 10, ShuffleGB: 10, RemoteMapGB: 0.8}); err != nil {
		t.Fatal(err)
	}
	p, err := New(rm, live, store, cluster.Resources{CPU: 1, Memory: 512}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p, live, store
}

func TestNewValidation(t *testing.T) {
	p, live, store := newPlugin(t)
	_ = p
	if _, err := New(nil, live, store, cluster.Resources{CPU: 1}, 1); err == nil {
		t.Error("nil rm accepted")
	}
	rm, _ := yarn.NewResourceManager(live)
	if _, err := New(rm, nil, store, cluster.Resources{CPU: 1}, 1); err == nil {
		t.Error("nil cluster accepted")
	}
	if _, err := New(rm, live, nil, cluster.Resources{CPU: 1}, 1); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := New(rm, live, store, cluster.Resources{}, 1); err == nil {
		t.Error("zero demand accepted")
	}
}

func TestSubmitPlansRealizesAndInstallsPolicies(t *testing.T) {
	p, live, _ := newPlugin(t)
	h, err := p.Submit(Job{Benchmark: "terasort", InputGB: 4, NumMaps: 6, NumReduces: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.MapAllocs) != 6 || len(h.ReduceAllocs) != 3 {
		t.Fatalf("allocs = %d/%d", len(h.MapAllocs), len(h.ReduceAllocs))
	}
	// Idle cluster: every grant on the planned host.
	if got := h.PreferredFraction(); got != 1 {
		t.Errorf("preferred fraction = %v, want 1 on an idle cluster", got)
	}
	// Predicted shuffle = ratio 1.0 x 4 GB.
	if h.PredictedShuffleGB != 4 {
		t.Errorf("predicted shuffle = %v, want 4", h.PredictedShuffleGB)
	}
	// All 18 flows have installed, satisfied policies.
	if len(h.Flows) != 18 {
		t.Fatalf("flows = %d, want 18", len(h.Flows))
	}
	for _, f := range h.Flows {
		pol := p.Controller().Policy(f.ID)
		if pol == nil {
			t.Fatalf("flow %d missing policy", f.ID)
		}
		if err := pol.Satisfied(live.Topology()); err != nil {
			t.Errorf("flow %d: %v", f.ID, err)
		}
	}
	// Containers actually occupy the live cluster.
	used := 0
	for _, s := range live.Servers() {
		used += live.Used(s).CPU
	}
	if used != 9 {
		t.Errorf("live CPU used = %d, want 9", used)
	}
	if err := live.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSubmitErrors(t *testing.T) {
	p, _, _ := newPlugin(t)
	if _, err := p.Submit(Job{Benchmark: "terasort", InputGB: 4, NumMaps: 0, NumReduces: 1}); err == nil {
		t.Error("zero maps accepted")
	}
	if _, err := p.Submit(Job{Benchmark: "terasort", InputGB: 0, NumMaps: 1, NumReduces: 1}); err == nil {
		t.Error("zero input accepted")
	}
	if _, err := p.Submit(Job{Benchmark: "unprofiled", InputGB: 4, NumMaps: 1, NumReduces: 1}); err == nil {
		t.Error("unprofiled benchmark accepted")
	}
}

func TestCompleteReleasesAndLearns(t *testing.T) {
	p, live, store := newPlugin(t)
	h, err := p.Submit(Job{Benchmark: "terasort", InputGB: 4, NumMaps: 4, NumReduces: 2})
	if err != nil {
		t.Fatal(err)
	}
	before, _ := store.Estimate("terasort")
	// Observed shuffle lower than predicted: the store should drift down.
	if err := p.Complete(h, 2, 0.3); err != nil {
		t.Fatal(err)
	}
	after, _ := store.Estimate("terasort")
	if !(after.ShuffleRatio < before.ShuffleRatio) {
		t.Errorf("ratio did not drift down: %v -> %v", before.ShuffleRatio, after.ShuffleRatio)
	}
	if after.Samples != before.Samples+1 {
		t.Errorf("samples = %d", after.Samples)
	}
	// Cluster is empty again and policies are gone.
	for _, s := range live.Servers() {
		if !live.Used(s).IsZero() {
			t.Errorf("server %d still used: %v", s, live.Used(s))
		}
	}
	if p.Controller().NumPolicies() != 0 {
		t.Errorf("%d policies remain", p.Controller().NumPolicies())
	}
	// Negative observations mean "trust prediction": must not error.
	h2, err := p.Submit(Job{Benchmark: "terasort", InputGB: 4, NumMaps: 2, NumReduces: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Complete(h2, -1, -1); err != nil {
		t.Fatal(err)
	}
	if err := p.Complete(nil, 0, 0); err == nil {
		t.Error("nil handle accepted")
	}
}

func TestSubmitUnderPressureFallsBackButRuns(t *testing.T) {
	p, live, _ := newPlugin(t)
	// Occupy most of the cluster.
	for i, s := range live.Servers() {
		if i%2 == 0 {
			continue
		}
		ct, _ := live.NewContainer(cluster.Resources{CPU: 4, Memory: 1})
		if err := live.Place(ct.ID, s); err != nil {
			t.Fatal(err)
		}
	}
	h, err := p.Submit(Job{Benchmark: "terasort", InputGB: 4, NumMaps: 6, NumReduces: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.MapAllocs)+len(h.ReduceAllocs) != 9 {
		t.Fatalf("grants = %d", len(h.MapAllocs)+len(h.ReduceAllocs))
	}
	if err := live.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSequentialJobsShareFabric(t *testing.T) {
	p, _, _ := newPlugin(t)
	h1, err := p.Submit(Job{Benchmark: "terasort", InputGB: 4, NumMaps: 4, NumReduces: 2})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := p.Submit(Job{Benchmark: "terasort", InputGB: 4, NumMaps: 4, NumReduces: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.Controller().NumPolicies() != len(h1.Flows)+len(h2.Flows) {
		t.Errorf("policies = %d, want %d", p.Controller().NumPolicies(), len(h1.Flows)+len(h2.Flows))
	}
	if err := p.Complete(h1, -1, -1); err != nil {
		t.Fatal(err)
	}
	if p.Controller().NumPolicies() != len(h2.Flows) {
		t.Errorf("policies after h1 completion = %d", p.Controller().NumPolicies())
	}
}
