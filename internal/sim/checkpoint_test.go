package sim

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/workload"
)

// ckTopo/ckJobs shape a run that needs several map waves: one CPU per
// server makes slots scarce, so each job's maps spread across waves and
// every wave boundary is a real checkpoint site.
func ckRes() cluster.Resources { return cluster.Resources{CPU: 1, Memory: 2048} }

func ckJobs(t *testing.T, seed int64) []*workload.Job {
	t.Helper()
	return chaosJobs(t, 3, seed)
}

// runUninterrupted executes the full run, capturing every boundary
// checkpoint along the way.
func runUninterrupted(t *testing.T, seed int64, jobs []*workload.Job) (*Result, []*Checkpoint) {
	t.Helper()
	var cks []*Checkpoint
	eng, err := New(chaosTopo(t), ckRes(), &core.HitScheduler{}, Options{
		Seed:           seed,
		CheckpointSink: func(c *Checkpoint) error { cks = append(cks, c); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return res, cks
}

// TestCheckpointResumeBitIdentical is the core restore guarantee: a run
// killed at ANY wave boundary and resumed from that boundary's checkpoint
// produces a result fingerprint bit-identical to the uninterrupted run.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	for _, seed := range []int64{1, 5} {
		jobs := ckJobs(t, seed)
		want, cks := runUninterrupted(t, seed, jobs)
		if len(cks) < 2 {
			t.Fatalf("seed %d: only %d wave boundaries; workload too small to exercise restore", seed, len(cks))
		}
		for halt := 1; halt <= len(cks); halt++ {
			// Halted leg: run to the boundary and stop with ErrHalted.
			var last *Checkpoint
			eng, err := New(chaosTopo(t), ckRes(), &core.HitScheduler{}, Options{
				Seed:           seed,
				CheckpointSink: func(c *Checkpoint) error { last = c; return nil },
				HaltAfterWave:  halt,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Run(jobs); !errors.Is(err, ErrHalted) {
				t.Fatalf("seed %d halt %d: want ErrHalted, got %v", seed, halt, err)
			}
			if last == nil || last.Wave != halt-1 {
				t.Fatalf("seed %d halt %d: final checkpoint %+v", seed, halt, last)
			}

			// Resumed leg: fresh engine, continue from the checkpoint.
			resumed, err := New(chaosTopo(t), ckRes(), &core.HitScheduler{}, Options{
				Seed:   seed,
				Resume: last,
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := resumed.Run(jobs)
			if err != nil {
				t.Fatalf("seed %d halt %d: resumed run: %v", seed, halt, err)
			}
			if !reflect.DeepEqual(resultFingerprint(want), resultFingerprint(got)) {
				t.Errorf("seed %d: resume from wave %d diverges from uninterrupted run", seed, halt-1)
			}
		}
	}
}

// TestCheckpointSaveLoadRoundTrip pins the gob wire format: a checkpoint
// survives encode/decode unchanged, and the decoded copy still resumes to
// the identical result.
func TestCheckpointSaveLoadRoundTrip(t *testing.T) {
	jobs := ckJobs(t, 2)
	want, cks := runUninterrupted(t, 2, jobs)
	ck := cks[0]
	var buf bytes.Buffer
	if err := ck.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, loaded) {
		t.Fatalf("checkpoint changed across encode/decode:\n%+v\n%+v", ck, loaded)
	}
	eng, err := New(chaosTopo(t), ckRes(), &core.HitScheduler{}, Options{Seed: 2, Resume: loaded})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resultFingerprint(want), resultFingerprint(got)) {
		t.Error("resume from decoded checkpoint diverges")
	}
}

// TestCheckpointMismatchRejected: resuming under ANY changed input —
// different seed, different workload — fails with ErrCheckpointMismatch
// instead of silently diverging.
func TestCheckpointMismatchRejected(t *testing.T) {
	jobs := ckJobs(t, 3)
	_, cks := runUninterrupted(t, 3, jobs)
	ck := cks[0]

	otherSeed, err := New(chaosTopo(t), ckRes(), &core.HitScheduler{}, Options{Seed: 4, Resume: ck})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := otherSeed.Run(jobs); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("changed seed: want ErrCheckpointMismatch, got %v", err)
	}

	otherJobs, err := New(chaosTopo(t), ckRes(), &core.HitScheduler{}, Options{Seed: 3, Resume: ck})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := otherJobs.Run(ckJobs(t, 9)); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("changed workload: want ErrCheckpointMismatch, got %v", err)
	}

	badVersion := *ck
	badVersion.Version = 99
	vEng, err := New(chaosTopo(t), ckRes(), &core.HitScheduler{}, Options{Seed: 3, Resume: &badVersion})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vEng.Run(jobs); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("bad version: want ErrCheckpointMismatch, got %v", err)
	}
}

// TestCheckpointRefusesUncoveredModes: fault injection and engine reuse
// carry state the checkpoint format does not capture, so enabling
// checkpointing there must error out rather than write resumable lies.
func TestCheckpointRefusesUncoveredModes(t *testing.T) {
	jobs := ckJobs(t, 1)
	sink := func(*Checkpoint) error { return nil }

	faulty, err := New(chaosTopo(t), ckRes(), &core.HitScheduler{}, Options{
		Seed:           1,
		Faults:         &faults.Plan{Tasks: faults.TaskModel{FailureProb: 0.1, Seed: 1}},
		CheckpointSink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := faulty.Run(jobs); err == nil {
		t.Error("checkpointing a fault-injected run did not error")
	}

	reused, err := New(chaosTopo(t), ckRes(), &core.HitScheduler{}, Options{Seed: 1, CheckpointSink: sink})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reused.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if _, err := reused.Run(jobs); err == nil {
		t.Error("checkpointing a reused engine did not error")
	}
}
