// Package sim is the cluster simulator that stands in for the paper's
// 9-node Hadoop YARN testbed and 64-host Mininet network. It drives a full
// MapReduce lifecycle — wave-aware task scheduling through a pluggable
// Scheduler, map execution, the shuffle phase as concurrent transfers over
// the flow-level network simulator, and reduce execution — and reports the
// quantities the paper's evaluation plots: job completion times and map and
// reduce task times (Figure 6), average route length and shuffle delay
// (Figure 7), shuffle traffic cost (Figures 8 and 10), and aggregate shuffle
// throughput (Figure 9).
//
// Timing model. Jobs are submitted together at t=0. Each job's maps run in
// waves sized by the cluster's free container slots (reduces are placed with
// the first wave, as YARN starts reducers early; later map waves are
// scheduled with the reduce placements fixed, exercising §5.3.2). A map
// task's duration is its compute time plus its share of remote input fetch.
// Every shuffle flow becomes a network transfer starting when its producing
// map wave ends; all jobs' transfers share the network simultaneously, which
// is where scheduler quality shows up. A reduce finishes when its last
// inbound flow lands plus its compute time; the job completes with its last
// reduce.
package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/faults"
	"repro/internal/flow"
	"repro/internal/hdfs"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/scheduler"
	"repro/internal/supervise"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Options tunes the engine.
type Options struct {
	// ContainerDemand is the per-task resource ask (default 1 CPU / 1024 MB).
	ContainerDemand cluster.Resources
	// MapFetchBandwidth is the effective bandwidth (GB per time unit) at
	// which a map pulls remote input; zero defaults to 1.0.
	MapFetchBandwidth float64
	// NameNode, when set, materializes each job's input as HDFS blocks with
	// rack-aware replica placement; per-map remote-input traffic then
	// depends on where the scheduler lands each map (instead of the job's
	// statistical RemoteMapGB), and locality-aware schedulers can consult
	// Request.BlockOf.
	NameNode *hdfs.NameNode
	// StragglerProb makes each map task a straggler with this probability
	// (heterogeneous clusters, the setting of the LATE work the paper
	// cites); stragglers run StragglerFactor times longer.
	StragglerProb float64
	// StragglerFactor is the straggler slowdown multiplier (default 3).
	StragglerFactor float64
	// Speculation enables LATE-style backup tasks: a straggling map is
	// re-executed elsewhere, capping its effective duration at the wave's
	// non-straggler estimate plus one restart of the same length.
	Speculation bool
	// Seed drives every stochastic choice (generator-independent).
	Seed int64
	// Faults, when non-nil and non-empty, switches the run onto the
	// fault-injection path (see faultrun.go): fabric events fire at wave
	// boundaries, task attempts may fail or straggle per Faults.Tasks, and
	// the Result carries a RunReport. An empty plan leaves the legacy
	// fault-free path — and its exact RNG draw sequence — untouched.
	Faults *faults.Plan
	// CheckpointSink, when non-nil, receives the joint-loop run state at
	// every wave boundary (checkpoint.go). Checkpointing is restricted to
	// fault-free, non-HDFS runs on a fresh engine — the only modes whose
	// full state the format captures.
	CheckpointSink func(*Checkpoint) error
	// Resume, when non-nil, restores the run from a wave-boundary
	// checkpoint instead of starting at round 0; the resumed run's output
	// is bit-identical to the uninterrupted run. Fails with
	// ErrCheckpointMismatch when the checkpoint was taken under a
	// different configuration.
	Resume *Checkpoint
	// HaltAfterWave, when positive, stops the run after that many map
	// waves (immediately after the boundary checkpoint is written) with an
	// error wrapping ErrHalted — the orderly kill half of a
	// checkpoint/resume pair.
	HaltAfterWave int
}

func (o Options) withDefaults() Options {
	if o.ContainerDemand.CPU == 0 && o.ContainerDemand.Memory == 0 {
		o.ContainerDemand = cluster.Resources{CPU: 1, Memory: 1024}
	}
	if o.MapFetchBandwidth <= 0 {
		o.MapFetchBandwidth = 1
	}
	if o.StragglerFactor <= 0 {
		o.StragglerFactor = 3
	}
	return o
}

// Engine runs workloads against one topology + scheduler combination.
type Engine struct {
	topo   *topology.Topology
	cl     *cluster.Cluster
	ctl    *controller.Controller
	net    *netsim.Network
	sched  scheduler.Scheduler
	opts   Options
	rng    *rand.Rand
	rngSrc *supervise.CountingSource
	runSeq int
}

// New builds an engine over topo with per-server resources serverRes.
func New(topo *topology.Topology, serverRes cluster.Resources, sched scheduler.Scheduler, opts Options) (*Engine, error) {
	if topo == nil {
		return nil, fmt.Errorf("sim: nil topology")
	}
	if sched == nil {
		return nil, fmt.Errorf("sim: nil scheduler")
	}
	opts = opts.withDefaults()
	cl, err := cluster.New(topo, serverRes)
	if err != nil {
		return nil, err
	}
	ctl := controller.New(topo)
	// The counting wrapper is value-stream-transparent (see supervise's
	// stream-identity test); it exists so checkpoints can record — and
	// resumes replay — the exact RNG position.
	src := supervise.NewCountingSource(opts.Seed)
	return &Engine{
		topo:   topo,
		cl:     cl,
		ctl:    ctl,
		net:    netsim.NewNetwork(ctl.Oracle()),
		sched:  sched,
		opts:   opts,
		rng:    rand.New(src),
		rngSrc: src,
	}, nil
}

// Cluster exposes the engine's cluster (for inspection in tests/examples).
func (e *Engine) Cluster() *cluster.Cluster { return e.cl }

// Controller exposes the engine's policy controller.
func (e *Engine) Controller() *controller.Controller { return e.ctl }

// flowRecord snapshots one shuffle flow after scheduling.
type flowRecord struct {
	flow      *flow.Flow
	job       *workload.Job
	route     []topology.NodeID
	hops      int
	cost      float64 // rate x hops (Eq. 2)
	delay     float64 // size x route latency, GB·T
	latT      float64 // route latency in T
	startHint float64
}

// jobState is one job's progress through the wave loop. It lives at
// package scope (rather than inside RunWithArrivals) so checkpoint.go can
// serialize and rebuild it at wave boundaries.
type jobState struct {
	job       *workload.Job
	arrival   float64
	reduceCts []cluster.ContainerID
	mapCts    []cluster.ContainerID // index by map task
	mapWaveOf []int
	waveEnd   []float64 // map wave end times
	numWaves  int
	nextMap   int
	prevWave  []cluster.ContainerID // containers of the previous map wave
	flows     []*flowRecord
	file      *hdfs.File // input blocks when HDFS is enabled
	mapFetch  []float64  // per-map remote-read bytes (HDFS mode)
}

// JobStats aggregates one job's outcome.
type JobStats struct {
	JobID     int
	Benchmark string
	Class     workload.Class
	// Arrival is the job's submission time; Completion is the job's
	// duration measured from Arrival.
	Arrival    float64
	Completion float64
	// MapTimes[i] is map i's task duration; ReduceTimes likewise (including
	// shuffle wait).
	MapTimes    []float64
	ReduceTimes []float64
	// ShuffleBytes actually transferred over the network (locally-served
	// pairs excluded).
	ShuffleBytes float64
	// TrafficCost is the Eq. 2 shuffle cost (rate × hops summed).
	TrafficCost float64
	// DelayCost is the §2.3 GB·T metric (size × route latency summed).
	DelayCost float64
	// RemoteMapGB is the map-input bytes read across the network — measured
	// from HDFS replica placement when a NameNode is configured, the job's
	// statistical value otherwise.
	RemoteMapGB float64
	// MapWaves is how many scheduling waves the maps needed.
	MapWaves int
	// Failed marks a job aborted by the fault path (a task exhausted its
	// retry budget or the job could never be fully placed); its timing
	// fields are zero and it is excluded from the aggregate samples.
	Failed bool
}

// Result aggregates a Run.
type Result struct {
	Scheduler string
	Jobs      []*JobStats
	// JCT, MapTime, ReduceTime collect per-job / per-task samples.
	JCT        metrics.Sample
	MapTime    metrics.Sample
	ReduceTime metrics.Sample
	// TotalTrafficCost is the Eq. 2 objective over every flow.
	TotalTrafficCost float64
	// TotalDelayCost is the GB·T variant.
	TotalDelayCost float64
	// AvgRouteHops and AvgShuffleDelayT average per-flow route length and
	// propagation latency (Figure 7).
	AvgRouteHops     float64
	AvgShuffleDelayT float64
	// AvgFlowTransferTime averages the bandwidth-bound transfer times
	// (the "shuffle flow traffic time" of the abstract).
	AvgFlowTransferTime float64
	// ShuffleMakespan is when the last flow lands; ShuffleThroughput is
	// bytes moved per time unit during the shuffle (Figure 9).
	ShuffleMakespan   float64
	ShuffleThroughput float64
	// NumFlows counts network-crossing shuffle flows.
	NumFlows int
	// Report accounts for fault-path activity; nil on the fault-free path.
	Report *RunReport
}

// Run executes the workload (all jobs submitted at t=0) and returns
// aggregate metrics.
func (e *Engine) Run(jobs []*workload.Job) (*Result, error) {
	return e.RunWithArrivals(jobs, nil)
}

// RunWithArrivals executes the workload with per-job submission times
// (online arrivals): job i's map phase starts at arrivals[i] and its
// completion time is measured from that instant. A nil slice means all jobs
// arrive at t=0. Placement decisions still happen in submission order
// against the shared cluster; the arrival offsets shift each job's
// execution timeline and therefore which shuffle transfers overlap on the
// network.
func (e *Engine) RunWithArrivals(jobs []*workload.Job, arrivals []float64) (*Result, error) {
	res := &Result{Scheduler: e.sched.Name()}
	e.runSeq++
	if len(jobs) == 0 {
		return res, nil
	}
	if arrivals == nil {
		arrivals = make([]float64, len(jobs))
	}
	if len(arrivals) != len(jobs) {
		return nil, fmt.Errorf("sim: %d arrivals for %d jobs", len(arrivals), len(jobs))
	}
	for i, a := range arrivals {
		if a < 0 {
			return nil, fmt.Errorf("sim: negative arrival %v for job %d", a, i)
		}
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
	}
	ckActive := e.opts.CheckpointSink != nil || e.opts.Resume != nil || e.opts.HaltAfterWave > 0
	if ckActive {
		if err := e.checkpointable(); err != nil {
			return nil, err
		}
	}
	if !e.opts.Faults.Empty() {
		return e.runFaulty(res, jobs, arrivals)
	}

	states := make([]*jobState, len(jobs))
	nextFlowID := flow.ID(0)
	demand := e.opts.ContainerDemand
	wave := 0

	if ck := e.opts.Resume; ck != nil {
		var err error
		states, nextFlowID, wave, err = e.restore(ck, jobs, arrivals)
		if err != nil {
			return nil, err
		}
	} else {
		// Round 0: place all reduces plus the first map wave of every job.
		for i, job := range jobs {
			st := &jobState{
				job:       job,
				arrival:   arrivals[i],
				mapCts:    make([]cluster.ContainerID, job.NumMaps),
				mapWaveOf: make([]int, job.NumMaps),
			}
			for m := range st.mapCts {
				st.mapCts[m] = cluster.NoContainer
			}
			if e.opts.NameNode != nil {
				blockGB := job.InputGB / float64(job.NumMaps)
				name := fmt.Sprintf("run%d-job%d-input", e.runSeq, job.ID)
				file, err := e.opts.NameNode.Create(name, job.InputGB, blockGB)
				if err != nil {
					return nil, err
				}
				st.file = file
				st.mapFetch = make([]float64, job.NumMaps)
			}
			states[i] = st

			// Reduce containers.
			for r := 0; r < job.NumReduces; r++ {
				ct, err := e.cl.NewContainer(demand)
				if err != nil {
					return nil, err
				}
				st.reduceCts = append(st.reduceCts, ct.ID)
			}
		}
	}

	// Wave loop: schedule each job's next chunk of maps (first chunk shares a
	// request with the reduces) until all maps are placed. Slots are divided
	// fairly among the jobs still holding maps, as YARN's schedulers grant
	// containers across queues, so an early job cannot starve later ones.
	for {
		// Release every job's previous map wave first; those tasks finish
		// before this wave starts.
		remaining := 0
		reducesPending := 0
		for _, st := range states {
			if st.nextMap >= st.job.NumMaps {
				continue
			}
			remaining++
			if wave == 0 {
				reducesPending += st.job.NumReduces
			}
			for _, c := range st.prevWave {
				if err := e.cl.Unplace(c); err != nil {
					return nil, err
				}
			}
			st.prevWave = nil
		}
		if remaining == 0 {
			break
		}
		quota := (e.cl.TotalFreeSlots(demand) - reducesPending) / remaining
		if quota < 1 {
			quota = 1
		}

		anyWork := false
		for _, st := range states {
			if st.nextMap >= st.job.NumMaps {
				continue
			}
			anyWork = true

			req := &scheduler.Request{
				Cluster:    e.cl,
				Controller: e.ctl,
				Fixed:      make(map[cluster.ContainerID]bool),
				Rand:       e.rng,
			}
			if st.file != nil {
				req.BlockOf = make(map[cluster.ContainerID]hdfs.BlockID)
			}
			if wave == 0 {
				for r, c := range st.reduceCts {
					req.Tasks = append(req.Tasks, scheduler.Task{
						Job: st.job, Kind: workload.ReduceTask, Index: r, Container: c,
					})
				}
			} else {
				for _, c := range st.reduceCts {
					req.Fixed[c] = true
				}
			}

			batch := st.job.NumMaps - st.nextMap
			if batch > quota {
				batch = quota
			}
			var batchCts []cluster.ContainerID
			for k := 0; k < batch; k++ {
				m := st.nextMap + k
				ct, err := e.cl.NewContainer(demand)
				if err != nil {
					return nil, err
				}
				st.mapCts[m] = ct.ID
				st.mapWaveOf[m] = wave
				batchCts = append(batchCts, ct.ID)
				req.Tasks = append(req.Tasks, scheduler.Task{
					Job: st.job, Kind: workload.MapTask, Index: m, Container: ct.ID,
				})
				if st.file != nil {
					bi := m
					if bi >= len(st.file.Blocks) {
						bi = len(st.file.Blocks) - 1
					}
					req.BlockOf[ct.ID] = st.file.Blocks[bi]
				}
			}

			// Flows from this wave's maps to every reduce.
			for k := 0; k < batch; k++ {
				m := st.nextMap + k
				for r := 0; r < st.job.NumReduces; r++ {
					size := st.job.Shuffle[m][r]
					if size <= 0 {
						continue
					}
					fl := &flow.Flow{
						ID: nextFlowID, JobID: st.job.ID, MapIndex: m, ReduceIndex: r,
						Src: st.mapCts[m], Dst: st.reduceCts[r],
						SizeGB: size, Rate: size,
					}
					nextFlowID++
					req.Flows = append(req.Flows, fl)
				}
			}

			if err := e.sched.Schedule(req); err != nil {
				return nil, fmt.Errorf("sim: %s scheduling job %d wave %d: %w", e.sched.Name(), st.job.ID, wave, err)
			}

			// Snapshot routes before anything moves.
			loc := req.Locator()
			cm := e.ctl.CostModel()
			for _, fl := range req.Flows {
				pol := e.ctl.Policy(fl.ID)
				if pol == nil {
					return nil, fmt.Errorf("sim: flow %d has no policy after %s", fl.ID, e.sched.Name())
				}
				route, err := cm.RouteNodes(fl, pol, loc)
				if err != nil {
					return nil, err
				}
				hops, err := cm.RouteHops(fl, pol, loc)
				if err != nil {
					return nil, err
				}
				cost, err := cm.FlowCost(fl, pol, loc)
				if err != nil {
					return nil, err
				}
				walk, err := e.net.ExpandRoute(route)
				if err != nil {
					return nil, err
				}
				latT := e.ctl.Oracle().PathLatency(walk)
				st.flows = append(st.flows, &flowRecord{
					flow: fl, job: st.job,
					route: route, hops: hops, cost: cost,
					delay: fl.SizeGB * latT, latT: latT,
				})
			}
			// With HDFS enabled, measure each placed map's remote input read
			// from its nearest replica.
			if st.file != nil {
				for k := 0; k < batch; k++ {
					m := st.nextMap + k
					srv := e.cl.Container(st.mapCts[m]).Server()
					gb, err := e.opts.NameNode.RemoteReadGB(st.file, req.BlockOf[st.mapCts[m]], srv)
					if err != nil {
						return nil, err
					}
					st.mapFetch[m] = gb
				}
			}

			// Release this wave's flow policies once recorded; their switch
			// load should not constrain later waves (they run earlier in
			// time).
			for _, fl := range req.Flows {
				e.ctl.Uninstall(fl.ID)
			}

			st.prevWave = batchCts
			st.nextMap += batch
			st.numWaves = wave + 1
		}
		if !anyWork {
			break
		}
		// Wave boundary: every policy of the wave is recorded and
		// uninstalled, so the run state is exactly what checkpoint.go
		// serializes. Write the checkpoint first, then honor a halt — the
		// halted run's final checkpoint is the resume point.
		if e.opts.CheckpointSink != nil {
			if err := e.opts.CheckpointSink(e.checkpoint(states, jobs, arrivals, wave, nextFlowID)); err != nil {
				return nil, fmt.Errorf("sim: checkpoint sink at wave %d: %w", wave, err)
			}
		}
		if e.opts.HaltAfterWave > 0 && wave+1 >= e.opts.HaltAfterWave {
			return nil, fmt.Errorf("sim: halt requested after wave %d: %w", wave, ErrHalted)
		}
		wave++
		if wave > 10000 {
			return nil, fmt.Errorf("sim: wave loop did not terminate")
		}
	}

	// Timeline: map wave ends per job. Without HDFS, remote input is the
	// job's statistical RemoteMapGB spread over its maps; with HDFS, it is
	// each map's measured nearest-replica read.
	for _, st := range states {
		st.waveEnd = make([]float64, st.numWaves)
		statFetch := 0.0
		if st.job.NumMaps > 0 {
			statFetch = st.job.RemoteMapGB / float64(st.job.NumMaps) / e.opts.MapFetchBandwidth
		}
		prevEnd := st.arrival
		mapTimes := make([]float64, st.job.NumMaps)
		var remoteGB float64
		for w := 0; w < st.numWaves; w++ {
			waveMax := 0.0
			for m := 0; m < st.job.NumMaps; m++ {
				if st.mapWaveOf[m] != w || st.mapCts[m] == cluster.NoContainer {
					continue
				}
				fetch := statFetch
				if st.file != nil {
					fetch = st.mapFetch[m] / e.opts.MapFetchBandwidth
					remoteGB += st.mapFetch[m]
				} else {
					remoteGB += st.job.RemoteMapGB / float64(st.job.NumMaps)
				}
				d := st.job.MapComputeSec[m] + fetch
				if e.opts.StragglerProb > 0 && e.rng.Float64() < e.opts.StragglerProb {
					straggled := d * e.opts.StragglerFactor
					if e.opts.Speculation {
						// LATE: a backup launches once the task exceeds its
						// estimate; the winner finishes around two nominal
						// durations.
						capped := 2 * d
						if straggled < capped {
							capped = straggled
						}
						d = capped
					} else {
						d = straggled
					}
				}
				mapTimes[m] = d
				if d > waveMax {
					waveMax = d
				}
			}
			st.waveEnd[w] = prevEnd + waveMax
			prevEnd = st.waveEnd[w]
		}
		js := &JobStats{
			JobID:       st.job.ID,
			Benchmark:   st.job.Benchmark,
			Class:       st.job.Class,
			Arrival:     st.arrival,
			MapTimes:    mapTimes,
			MapWaves:    st.numWaves,
			RemoteMapGB: remoteGB,
		}
		res.Jobs = append(res.Jobs, js)
	}

	// Shuffle phase: every flow becomes a transfer starting at its map
	// wave's end.
	var transfers []*netsim.Transfer
	for _, st := range states {
		for _, fr := range st.flows {
			start := st.waveEnd[st.mapWaveOf[fr.flow.MapIndex]]
			fr.startHint = start
			transfers = append(transfers, &netsim.Transfer{
				ID:    fr.flow.ID,
				Route: fr.route,
				Bytes: fr.flow.SizeGB,
				Start: start,
			})
		}
	}
	net, err := e.net.Simulate(transfers)
	if err != nil {
		return nil, err
	}

	// Reduce completions and job stats.
	var hopSum, delaySum, xferSum float64
	var flowCount int
	var totalBytes float64
	for ji, st := range states {
		js := res.Jobs[ji]
		reduceReady := make([]float64, st.job.NumReduces)
		// A reduce cannot finish before the maps complete even with no data.
		lastWaveEnd := 0.0
		if st.numWaves > 0 {
			lastWaveEnd = st.waveEnd[st.numWaves-1]
		}
		for r := range reduceReady {
			reduceReady[r] = lastWaveEnd
		}
		for _, fr := range st.flows {
			fs := net.Flows[fr.flow.ID]
			if fs == nil {
				return nil, fmt.Errorf("sim: flow %d missing from network result", fr.flow.ID)
			}
			if fs.Finish > reduceReady[fr.flow.ReduceIndex] {
				reduceReady[fr.flow.ReduceIndex] = fs.Finish
			}
			js.ShuffleBytes += fr.flow.SizeGB
			js.TrafficCost += fr.cost
			js.DelayCost += fr.delay
			hopSum += float64(fr.hops)
			delaySum += fr.latT
			xferSum += fs.TransferTime
			flowCount++
			totalBytes += fr.flow.SizeGB
		}
		js.ReduceTimes = make([]float64, st.job.NumReduces)
		jct := lastWaveEnd
		for r := 0; r < st.job.NumReduces; r++ {
			finish := reduceReady[r] + st.job.ReduceComputeSec[r]
			// The reduce "task time" spans from shuffle start (first wave
			// end, when reducers begin pulling) to its completion.
			start := st.arrival
			if st.numWaves > 0 {
				start = st.waveEnd[0]
			}
			js.ReduceTimes[r] = finish - start
			if finish > jct {
				jct = finish
			}
		}
		js.Completion = jct - st.arrival
		res.JCT.Add(jct)
		res.MapTime.AddAll(js.MapTimes)
		res.ReduceTime.AddAll(js.ReduceTimes)
		res.TotalTrafficCost += js.TrafficCost
		res.TotalDelayCost += js.DelayCost
	}
	if flowCount > 0 {
		res.AvgRouteHops = hopSum / float64(flowCount)
		res.AvgShuffleDelayT = delaySum / float64(flowCount)
		res.AvgFlowTransferTime = xferSum / float64(flowCount)
	}
	res.NumFlows = flowCount
	res.ShuffleMakespan = net.Makespan
	if net.Makespan > 0 {
		res.ShuffleThroughput = totalBytes / net.Makespan
	}

	// The run is over: release every container it placed so the engine can
	// be reused for further runs against the same cluster.
	for _, st := range states {
		for _, c := range st.reduceCts {
			if err := e.cl.Unplace(c); err != nil {
				return nil, err
			}
		}
		for _, c := range st.mapCts {
			if c == cluster.NoContainer {
				continue
			}
			if err := e.cl.Unplace(c); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}
