package sim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/scheduler"
	"repro/internal/topology"
	"repro/internal/workload"
)

func chaosTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.NewFatTree(4, topology.LinkParams{Bandwidth: 1, SwitchCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func chaosJobs(t *testing.T, n int, seed int64) []*workload.Job {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.MinInputGB = 2
	cfg.MaxInputGB = 5
	cfg.MaxMaps = 6
	g, err := workload.NewGenerator(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g.Workload(n)
}

// resultFingerprint flattens everything observable about a run into exact
// bits — any nondeterminism shows up as a mismatch.
func resultFingerprint(res *Result) []uint64 {
	var fp []uint64
	add := func(f float64) { fp = append(fp, math.Float64bits(f)) }
	addInt := func(n int) { fp = append(fp, uint64(int64(n))) }
	add(res.JCT.Sum())
	addInt(res.JCT.N())
	add(res.TotalTrafficCost)
	add(res.TotalDelayCost)
	add(res.AvgRouteHops)
	add(res.AvgShuffleDelayT)
	add(res.AvgFlowTransferTime)
	add(res.ShuffleMakespan)
	add(res.ShuffleThroughput)
	addInt(res.NumFlows)
	for _, js := range res.Jobs {
		addInt(js.JobID)
		add(js.Completion)
		add(js.TrafficCost)
		add(js.ShuffleBytes)
		addInt(js.MapWaves)
		if js.Failed {
			addInt(1)
		} else {
			addInt(0)
		}
		for _, m := range js.MapTimes {
			add(m)
		}
		for _, r := range js.ReduceTimes {
			add(r)
		}
	}
	if rep := res.Report; rep != nil {
		addInt(rep.Events)
		addInt(rep.Evictions)
		addInt(rep.TaskFailures)
		addInt(rep.Retries)
		add(rep.RetryDelaySum)
		addInt(rep.FailedTasks)
		addInt(rep.SpeculativeLaunched)
		addInt(rep.SpeculativeWins)
		addInt(rep.ReroutedFlows)
		addInt(rep.DeferredPlacements)
		add(rep.RecoveryLatencySum)
		addInt(rep.ReactedFaults)
		for _, id := range rep.DroppedFlows {
			addInt(int(id))
		}
		for _, j := range rep.FailedJobs {
			addInt(j)
		}
	}
	return fp
}

// TestChaosFaultyRunsBitIdenticalAcrossReruns is the chaos harness: 4 seeds
// x 3 randomized fault schedules, every run repeated from scratch and
// required to replay bit-for-bit. The run itself enforces the invariants
// (zero overloaded switches after reaction, no policy through a dead
// switch) and errors out on violation, so a passing run is the proof.
func TestChaosFaultyRunsBitIdenticalAcrossReruns(t *testing.T) {
	specs := []struct {
		name string
		spec faults.Spec
	}{
		{"switch-heavy", faults.Spec{Horizon: 50, Rate: 16, Severity: 0.6, MTTR: 8, SwitchCrashW: 3, SwitchDegradeW: 1}},
		{"link-heavy", faults.Spec{Horizon: 50, Rate: 16, Severity: 0.8, MTTR: 8, LinkDegradeW: 3, SwitchDegradeW: 1}},
		{"server-heavy", faults.Spec{Horizon: 50, Rate: 12, Severity: 0.5, MTTR: 6, ServerCrashW: 3, SwitchCrashW: 1}},
	}
	for _, sp := range specs {
		sp := sp
		t.Run(sp.name, func(t *testing.T) {
			for _, seed := range []int64{1, 2, 3, 4} {
				jobs := chaosJobs(t, 2, seed)
				runOnce := func() (*Result, *faults.Plan) {
					topo := chaosTopo(t)
					plan := &faults.Plan{
						Events: faults.GenerateTimeline(rand.New(rand.NewSource(seed)), topo, sp.spec),
						Tasks: faults.TaskModel{
							FailureProb:   0.15,
							StragglerProb: 0.15,
							Speculation:   true,
							Seed:          uint64(seed),
						},
					}
					eng, err := New(topo, cluster.Resources{CPU: 4, Memory: 8192}, &core.HitScheduler{}, Options{Seed: seed, Faults: plan})
					if err != nil {
						t.Fatal(err)
					}
					res, err := eng.Run(jobs)
					if err != nil {
						t.Fatalf("seed %d: faulty run: %v", seed, err)
					}
					return res, plan
				}
				res, plan := runOnce()
				again, _ := runOnce()
				if !reflect.DeepEqual(resultFingerprint(res), resultFingerprint(again)) {
					t.Errorf("seed %d: rerun fingerprints diverge", seed)
				}

				// Accounting: every job completed or failed, every event applied.
				rep := res.Report
				if rep == nil {
					t.Fatalf("seed %d: fault run returned no report", seed)
				}
				if rep.Events != len(plan.Events) {
					t.Errorf("seed %d: applied %d of %d events", seed, rep.Events, len(plan.Events))
				}
				if len(res.Jobs) != len(jobs) {
					t.Fatalf("seed %d: %d job stats for %d jobs", seed, len(res.Jobs), len(jobs))
				}
				failed := 0
				for _, js := range res.Jobs {
					if js.Failed {
						failed++
						found := false
						for _, id := range rep.FailedJobs {
							if id == js.JobID {
								found = true
							}
						}
						if !found {
							t.Errorf("seed %d: job %d flagged failed but missing from FailedJobs", seed, js.JobID)
						}
					}
				}
				if len(rep.FailedJobs) != failed {
					t.Errorf("seed %d: FailedJobs lists %d, stats flag %d", seed, len(rep.FailedJobs), failed)
				}
				if res.JCT.N() != len(jobs)-failed {
					t.Errorf("seed %d: JCT has %d samples, want %d", seed, res.JCT.N(), len(jobs)-failed)
				}
			}
		})
	}
}

// TestChaosShardedMatchesSequential is the sharded scheduler's chaos
// gate: under randomized fault schedules — crashes, degradations, task
// failures, speculation — the optimistic multi-scheduler (Shards: 4)
// must produce a run fingerprint bit-identical to the sequential
// scheduler's. Every mid-run fault invalidates presolved proposals, so
// this exercises the arbiter's replay path far harder than the healthy
// parity tests; `make chaos` runs it under the race detector.
func TestChaosShardedMatchesSequential(t *testing.T) {
	spec := faults.Spec{Horizon: 50, Rate: 16, Severity: 0.6, MTTR: 8,
		SwitchCrashW: 2, SwitchDegradeW: 1, LinkDegradeW: 1, ServerCrashW: 1}
	for _, seed := range []int64{3, 7} {
		jobs := chaosJobs(t, 2, seed)
		run := func(shards int) *Result {
			topo := chaosTopo(t)
			plan := &faults.Plan{
				Events: faults.GenerateTimeline(rand.New(rand.NewSource(seed)), topo, spec),
				Tasks: faults.TaskModel{
					FailureProb:   0.15,
					StragglerProb: 0.15,
					Speculation:   true,
					Seed:          uint64(seed),
				},
			}
			eng, err := New(topo, cluster.Resources{CPU: 4, Memory: 8192},
				&core.HitScheduler{Shards: shards}, Options{Seed: seed, Faults: plan})
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run(jobs)
			if err != nil {
				t.Fatalf("seed %d shards %d: faulty run: %v", seed, shards, err)
			}
			return res
		}
		sequential := run(0)
		sharded := run(4)
		if !reflect.DeepEqual(resultFingerprint(sequential), resultFingerprint(sharded)) {
			t.Errorf("seed %d: sharded fingerprint diverges from sequential under faults", seed)
		}
	}
}

// TestChaosEmptyPlanMatchesLegacy pins the zero-fault contract: an empty
// plan takes the legacy path and must be indistinguishable — to the bit —
// from not configuring faults at all.
func TestChaosEmptyPlanMatchesLegacy(t *testing.T) {
	jobs := chaosJobs(t, 3, 11)
	run := func(plan *faults.Plan) *Result {
		eng, err := New(chaosTopo(t), cluster.Resources{CPU: 4, Memory: 8192}, &core.HitScheduler{}, Options{Seed: 11, Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	legacy := run(nil)
	empty := run(&faults.Plan{})
	if empty.Report != nil {
		t.Error("empty plan took the fault path")
	}
	if !reflect.DeepEqual(resultFingerprint(legacy), resultFingerprint(empty)) {
		t.Error("empty fault plan changed the run")
	}
}

// TestChaosScriptedCrashRecovers drives a hand-written crash/recover pair
// through the fault path and checks the fabric comes back pristine and the
// engine stays usable for a follow-up run.
func TestChaosScriptedCrashRecovers(t *testing.T) {
	topo := chaosTopo(t)
	var mid topology.NodeID = topology.None
	for _, w := range topo.Switches() {
		if topo.Node(w).Tier == 1 {
			mid = w
			break
		}
	}
	if mid == topology.None {
		t.Fatal("no aggregation switch in fat-tree")
	}
	plan := &faults.Plan{Events: []faults.Event{
		{Time: 0, Kind: faults.SwitchCrash, Node: mid, Seq: 0},
		{Time: 6, Kind: faults.SwitchRecover, Node: mid, Seq: 1},
	}}
	eng, err := New(topo, cluster.Resources{CPU: 4, Memory: 8192}, scheduler.Capacity{}, Options{Seed: 5, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	jobs := chaosJobs(t, 2, 5)
	res, err := eng.Run(jobs)
	if err != nil {
		t.Fatalf("scripted crash run: %v", err)
	}
	if res.Report == nil || res.Report.Events != 2 {
		t.Fatalf("expected both events applied, report = %+v", res.Report)
	}
	if !topo.Alive(mid) || topo.Node(mid).Capacity != 64 {
		t.Errorf("switch %d not restored: alive=%v cap=%v", mid, topo.Alive(mid), topo.Node(mid).Capacity)
	}
	// The engine must be reusable afterwards: the fault path released every
	// container and restored every nominal.
	if _, err := eng.Run(jobs); err != nil {
		t.Fatalf("rerun after faulty run: %v", err)
	}
}
