package sim

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/cluster"
	"repro/internal/flow"
	"repro/internal/supervise"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Checkpoint/restore serializes the joint scheduling loop's run state at a
// wave boundary so an interrupted run can resume and produce byte-identical
// output. The boundary is chosen deliberately: at the end of a wave body
// every flow policy of the wave has already been recorded and uninstalled,
// so the controller carries no installed state — the whole run reduces to
// placements, per-job progress, recorded flows, and the RNG stream
// position. Everything else (wave timelines, the shuffle simulation, all
// aggregate metrics) is recomputed deterministically from those inputs.
//
// Determinism argument: the only stateful inputs a later wave reads are
// (a) the cluster's placements and container set, restored exactly, by
// ascending container ID so the sequential NewContainer IDs and the
// order-independent Place accounting reproduce bit-identically; (b) the
// shared RNG, restored by replaying the recorded number of source draws
// (supervise.CountingSource.FastForward) — the generator is a pure
// function of seed and draw count; and (c) nextFlowID, stored directly.
// A configuration digest over every run input guards against resuming
// into a different world (ErrCheckpointMismatch).

// Sentinel errors of the checkpoint path, errors.Is-able through the
// wrapping applied by RunWithArrivals and cmd/hitsim.
var (
	// ErrHalted marks a run deliberately stopped by Options.HaltAfterWave
	// after writing its boundary checkpoint; it is an orderly exit, not a
	// failure.
	ErrHalted = errors.New("sim: run halted at wave boundary")
	// ErrCheckpointMismatch marks a resume whose checkpoint was taken
	// under a different configuration (scheduler, topology, seed,
	// workload, arrivals) than the resuming engine's.
	ErrCheckpointMismatch = errors.New("sim: checkpoint does not match run configuration")
)

// checkpointVersion gates the gob wire format.
const checkpointVersion = 1

// ContainerCK records one container: its sequential ID and the server it
// is placed on (topology.None when currently unplaced).
type ContainerCK struct {
	ID     cluster.ContainerID
	Server topology.NodeID
}

// FlowCK records one scheduled shuffle flow plus its frozen route metrics
// (the policy itself was uninstalled at the wave boundary; the metrics are
// what the rest of the run consumes).
type FlowCK struct {
	ID                    flow.ID
	MapIndex, ReduceIndex int
	Src, Dst              cluster.ContainerID
	SizeGB, Rate          float64
	Route                 []topology.NodeID
	Hops                  int
	Cost, Delay, LatT     float64
}

// JobCheckpoint is one job's scheduling progress.
type JobCheckpoint struct {
	NextMap   int
	NumWaves  int
	ReduceCts []ContainerCK
	// MapCts has one entry per map task; Server is topology.None for maps
	// whose containers have been released, and ID is cluster.NoContainer
	// for maps not yet created.
	MapCts    []ContainerCK
	MapWaveOf []int
	// PrevWave lists the container IDs of the job's most recent map wave
	// (still placed at the boundary; the next wave releases them).
	PrevWave []cluster.ContainerID
	Flows    []FlowCK
}

// Checkpoint is the joint-loop run state at one wave boundary.
type Checkpoint struct {
	Version int
	// Digest fingerprints every run input (scheduler, topology, options,
	// workload, arrivals); Restore refuses a mismatch.
	Digest uint64
	// Wave is the just-completed wave index; the resumed loop starts at
	// Wave+1.
	Wave       int
	NextFlowID flow.ID
	// RNGDraws is the number of source-level draws consumed so far; resume
	// fast-forwards a fresh seeded source by exactly this count.
	RNGDraws uint64
	// Supervisor optionally carries the scheduler-side resilience state
	// (degradation ladder, reason counters) so a resumed sharded run
	// continues the same hysteresis trajectory. The engine itself does not
	// read it — cmd/hitsim attaches and restores it.
	Supervisor *supervise.State
	Jobs       []JobCheckpoint
}

// Save gob-encodes the checkpoint.
func (c *Checkpoint) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(c)
}

// LoadCheckpoint decodes a checkpoint written by Save.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	if err := gob.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("sim: decoding checkpoint: %w", err)
	}
	if c.Version != checkpointVersion {
		return nil, fmt.Errorf("sim: checkpoint version %d, want %d: %w", c.Version, checkpointVersion, ErrCheckpointMismatch)
	}
	return &c, nil
}

// configDigest fingerprints every input that shapes the run: if any of
// them differs between checkpoint and resume, the resumed trajectory would
// silently diverge, so Restore fails instead.
func (e *Engine) configDigest(jobs []*workload.Job, arrivals []float64) uint64 {
	var d supervise.Digest
	d.Str(e.sched.Name())
	d.Str(e.topo.Name())
	d.Int(int64(e.topo.NumServers()))
	d.Int(int64(e.topo.NumSwitches()))
	d.Int(e.opts.Seed)
	d.Int(int64(e.opts.ContainerDemand.CPU))
	d.Int(int64(e.opts.ContainerDemand.Memory))
	d.Float(e.opts.MapFetchBandwidth)
	d.Float(e.opts.StragglerProb)
	d.Float(e.opts.StragglerFactor)
	d.Bool(e.opts.Speculation)
	d.Int(int64(len(jobs)))
	for _, j := range jobs {
		d.Int(int64(j.ID))
		d.Str(j.Benchmark)
		d.Int(int64(j.Class))
		d.Float(j.InputGB)
		d.Float(j.RemoteMapGB)
		d.Int(int64(j.NumMaps))
		d.Int(int64(j.NumReduces))
		for _, row := range j.Shuffle {
			for _, v := range row {
				d.Float(v)
			}
		}
		for _, v := range j.MapComputeSec {
			d.Float(v)
		}
		for _, v := range j.ReduceComputeSec {
			d.Float(v)
		}
	}
	for _, a := range arrivals {
		d.Float(a)
	}
	return d.Sum64()
}

// checkpointable rejects run modes the checkpoint format does not cover:
// fault injection re-randomizes at boundaries the checkpoint cannot see,
// HDFS mode carries NameNode block state outside the engine, and a reused
// engine starts from a non-pristine RNG/cluster.
func (e *Engine) checkpointable() error {
	switch {
	case !e.opts.Faults.Empty():
		return fmt.Errorf("sim: checkpoint/restore is incompatible with fault injection")
	case e.opts.NameNode != nil:
		return fmt.Errorf("sim: checkpoint/restore is incompatible with HDFS mode")
	case e.runSeq != 1:
		return fmt.Errorf("sim: checkpoint/restore requires a fresh engine (run %d)", e.runSeq)
	}
	return nil
}

// checkpoint captures the run state at the end of wave's body.
func (e *Engine) checkpoint(states []*jobState, jobs []*workload.Job, arrivals []float64, wave int, nextFlowID flow.ID) *Checkpoint {
	ck := &Checkpoint{
		Version:    checkpointVersion,
		Digest:     e.configDigest(jobs, arrivals),
		Wave:       wave,
		NextFlowID: nextFlowID,
		RNGDraws:   e.rngSrc.Draws(),
	}
	for _, st := range states {
		jc := JobCheckpoint{
			NextMap:   st.nextMap,
			NumWaves:  st.numWaves,
			MapWaveOf: append([]int(nil), st.mapWaveOf...),
			PrevWave:  append([]cluster.ContainerID(nil), st.prevWave...),
		}
		for _, c := range st.reduceCts {
			jc.ReduceCts = append(jc.ReduceCts, ContainerCK{ID: c, Server: e.cl.Container(c).Server()})
		}
		for _, c := range st.mapCts {
			mk := ContainerCK{ID: c, Server: topology.None}
			if c != cluster.NoContainer {
				mk.Server = e.cl.Container(c).Server()
			}
			jc.MapCts = append(jc.MapCts, mk)
		}
		for _, fr := range st.flows {
			jc.Flows = append(jc.Flows, FlowCK{
				ID: fr.flow.ID, MapIndex: fr.flow.MapIndex, ReduceIndex: fr.flow.ReduceIndex,
				Src: fr.flow.Src, Dst: fr.flow.Dst,
				SizeGB: fr.flow.SizeGB, Rate: fr.flow.Rate,
				Route: append([]topology.NodeID(nil), fr.route...),
				Hops:  fr.hops, Cost: fr.cost, Delay: fr.delay, LatT: fr.latT,
			})
		}
		ck.Jobs = append(ck.Jobs, jc)
	}
	return ck
}

// restore rebuilds the joint-loop state from a checkpoint on a fresh
// engine: containers are recreated in ascending ID order (reproducing the
// sequential NewContainer IDs), placed ones are re-placed, per-job
// progress and flow records are reinstated, and the RNG source is
// fast-forwarded to the recorded draw count. Returns the state slice,
// next flow ID, and the wave index the loop should continue from.
func (e *Engine) restore(ck *Checkpoint, jobs []*workload.Job, arrivals []float64) ([]*jobState, flow.ID, int, error) {
	if ck.Version != checkpointVersion {
		return nil, 0, 0, fmt.Errorf("sim: checkpoint version %d, want %d: %w", ck.Version, checkpointVersion, ErrCheckpointMismatch)
	}
	if got := e.configDigest(jobs, arrivals); got != ck.Digest {
		return nil, 0, 0, fmt.Errorf("sim: config digest %#x, checkpoint has %#x: %w", got, ck.Digest, ErrCheckpointMismatch)
	}
	if len(ck.Jobs) != len(jobs) {
		return nil, 0, 0, fmt.Errorf("sim: checkpoint has %d jobs, run has %d: %w", len(ck.Jobs), len(jobs), ErrCheckpointMismatch)
	}

	// Recreate every recorded container in ascending ID order so the
	// sequential NewContainer counter reproduces each recorded ID exactly;
	// a gap or duplicate means the checkpoint is corrupt.
	var all []ContainerCK
	for i := range ck.Jobs {
		jc := &ck.Jobs[i]
		if len(jc.MapCts) != jobs[i].NumMaps || len(jc.MapWaveOf) != jobs[i].NumMaps || len(jc.ReduceCts) != jobs[i].NumReduces {
			return nil, 0, 0, fmt.Errorf("sim: checkpoint job %d shape does not match workload: %w", i, ErrCheckpointMismatch)
		}
		all = append(all, jc.ReduceCts...)
		for _, mk := range jc.MapCts {
			if mk.ID != cluster.NoContainer {
				all = append(all, mk)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	demand := e.opts.ContainerDemand
	for _, rec := range all {
		ct, err := e.cl.NewContainer(demand)
		if err != nil {
			return nil, 0, 0, err
		}
		if ct.ID != rec.ID {
			return nil, 0, 0, fmt.Errorf("sim: restored container ID %d, checkpoint recorded %d: %w", ct.ID, rec.ID, ErrCheckpointMismatch)
		}
		if rec.Server != topology.None {
			if err := e.cl.Place(rec.ID, rec.Server); err != nil {
				return nil, 0, 0, err
			}
		}
	}

	states := make([]*jobState, len(jobs))
	for i, job := range jobs {
		jc := &ck.Jobs[i]
		st := &jobState{
			job:       job,
			arrival:   arrivals[i],
			nextMap:   jc.NextMap,
			numWaves:  jc.NumWaves,
			mapWaveOf: append([]int(nil), jc.MapWaveOf...),
			prevWave:  append([]cluster.ContainerID(nil), jc.PrevWave...),
			mapCts:    make([]cluster.ContainerID, job.NumMaps),
		}
		for m, mk := range jc.MapCts {
			st.mapCts[m] = mk.ID
		}
		for _, c := range jc.ReduceCts {
			st.reduceCts = append(st.reduceCts, c.ID)
		}
		for _, fc := range jc.Flows {
			fl := &flow.Flow{
				ID: fc.ID, JobID: job.ID, MapIndex: fc.MapIndex, ReduceIndex: fc.ReduceIndex,
				Src: fc.Src, Dst: fc.Dst, SizeGB: fc.SizeGB, Rate: fc.Rate,
			}
			st.flows = append(st.flows, &flowRecord{
				flow: fl, job: job,
				route: append([]topology.NodeID(nil), fc.Route...),
				hops:  fc.Hops, cost: fc.Cost, delay: fc.Delay, latT: fc.LatT,
			})
		}
		states[i] = st
	}
	if e.rngSrc.Draws() > ck.RNGDraws {
		return nil, 0, 0, fmt.Errorf("sim: RNG already past checkpoint position (%d > %d): %w",
			e.rngSrc.Draws(), ck.RNGDraws, ErrCheckpointMismatch)
	}
	e.rngSrc.FastForward(ck.RNGDraws)
	return states, ck.NextFlowID, ck.Wave + 1, nil
}
