package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/flow"
	"repro/internal/netsim"
	"repro/internal/scheduler"
	"repro/internal/topology"
	"repro/internal/workload"
)

// RunReport accounts for everything the fault path did to keep the run
// alive: how the fabric was perturbed and how the engine reacted. A job is
// either completed (its JobStats carries times) or listed in FailedJobs;
// a shuffle flow either transferred or appears in DroppedFlows — nothing
// vanishes silently.
type RunReport struct {
	// Events is the number of fabric events applied (faults + recoveries).
	Events int
	// Evictions counts containers evicted by server crashes.
	Evictions int
	// TaskFailures counts failed map attempts; Retries the re-executions
	// queued for them, with RetryDelaySum the total backoff they waited.
	TaskFailures  int
	Retries       int
	RetryDelaySum float64
	// FailedTasks counts maps that exhausted their retry budget; their jobs
	// are listed in FailedJobs (ascending, also flagged on JobStats).
	FailedTasks int
	FailedJobs  []int
	// SpeculativeLaunched / SpeculativeWins count straggler backups started
	// and backups that finished before the original.
	SpeculativeLaunched int
	SpeculativeWins     int
	// ReroutedFlows counts policies re-solved off dead or over-capacity
	// switches; DroppedFlows lists flows shed with no feasible alternative
	// (plus flows reported unroutable at schedule time).
	ReroutedFlows int
	DroppedFlows  []flow.ID
	// DeferredPlacements counts container placements pushed to a later wave
	// because no feasible server existed at the time.
	DeferredPlacements int
	// RecoveryLatencySum sums, over reacted fault events, the delay between
	// the fault firing and the wave boundary at which the engine reacted;
	// ReactedFaults is the count (mean latency = sum / count).
	RecoveryLatencySum float64
	ReactedFaults      int
}

// faultJob tracks one job through the fault-aware wave loop.
type faultJob struct {
	job       *workload.Job
	arrival   float64
	reduceCts []cluster.ContainerID
	mapCts    []cluster.ContainerID
	mapWaveOf []int
	attempts  []int     // attempts consumed per map
	readyAt   []float64 // earliest re-schedulable time per map (backoff)
	done      []bool
	mapTimes  []float64
	flows     []*flowRecord
	prevWave  []cluster.ContainerID
	failed    bool
	remoteGB  float64
	numWaves  int
}

func (st *faultJob) mapsDone() bool {
	for _, d := range st.done {
		if !d {
			return false
		}
	}
	return true
}

// runFaulty executes the workload against a fault plan. Unlike the legacy
// path, time is wave-synchronous on a single global clock: wave w spans
// [T_w, T_w + max attempt duration); fabric events fire at the boundary of
// the wave containing their timestamp (wave-quantized), after which the
// reactor restores the no-dead-switch / no-overload invariants before the
// wave's shuffle routes are snapshot. Jobs gate on their arrival time.
func (e *Engine) runFaulty(res *Result, jobs []*workload.Job, arrivals []float64) (*Result, error) {
	if e.opts.NameNode != nil {
		return nil, fmt.Errorf("sim: fault injection does not support HDFS block placement")
	}
	if e.opts.StragglerProb > 0 {
		return nil, fmt.Errorf("sim: set stragglers via Faults.Tasks in fault mode, not Options.StragglerProb")
	}
	plan := e.opts.Faults
	model := plan.Tasks
	if model.RetryBudget <= 0 {
		model.RetryBudget = 3 // the TaskModel default, needed raw below
	}
	rep := &RunReport{}
	res.Report = rep
	inj := faults.NewInjector(e.topo, e.cl)
	events := append([]faults.Event(nil), plan.Events...)
	faults.SortEvents(events)
	nextEv := 0
	loc := flow.ClusterLocator(e.cl)
	demand := e.opts.ContainerDemand
	nextFlowID := flow.ID(0)

	states := make([]*faultJob, len(jobs))
	for i, job := range jobs {
		st := &faultJob{
			job:       job,
			arrival:   arrivals[i],
			mapCts:    make([]cluster.ContainerID, job.NumMaps),
			mapWaveOf: make([]int, job.NumMaps),
			attempts:  make([]int, job.NumMaps),
			readyAt:   make([]float64, job.NumMaps),
			done:      make([]bool, job.NumMaps),
			mapTimes:  make([]float64, job.NumMaps),
		}
		for m := range st.mapCts {
			st.mapCts[m] = cluster.NoContainer
		}
		for r := 0; r < job.NumReduces; r++ {
			ct, err := e.cl.NewContainer(demand)
			if err != nil {
				return nil, err
			}
			st.reduceCts = append(st.reduceCts, ct.ID)
		}
		states[i] = st
	}

	// unplacedReduces lists a job's reduce containers needing (re)placement —
	// initially all of them, later any evicted by a server crash.
	unplacedReduces := func(st *faultJob) []cluster.ContainerID {
		var out []cluster.ContainerID
		for _, c := range st.reduceCts {
			if e.cl.Container(c).Server() == topology.None {
				out = append(out, c)
			}
		}
		return out
	}

	// applyEventsUntil applies every fabric event with Time <= until, then —
	// if anything fired — runs the reactor over the wave's installed flows
	// and enforces the liveness/capacity invariants. It returns the flows
	// the reactor shed and the containers server crashes evicted. The
	// injector mutates fabric state only through blessed epoch-bumping
	// setters (statically enforced by taalint's epochbump check), so the
	// oracle's caches are never stale when the reactor re-solves routes.
	applyEventsUntil := func(until float64, eps []faults.FlowEndpoints) (map[flow.ID]bool, map[cluster.ContainerID]bool, error) {
		fired := false
		evictedNow := make(map[cluster.ContainerID]bool)
		for nextEv < len(events) && events[nextEv].Time <= until {
			ev := events[nextEv]
			nextEv++
			evicted, err := inj.Apply(ev)
			if err != nil {
				return nil, nil, err
			}
			rep.Events++
			rep.Evictions += len(evicted)
			for _, c := range evicted {
				evictedNow[c] = true
			}
			// Faults drained after the last wave (until = +Inf) hit an idle
			// fabric — nothing reacts, so they don't enter the latency mean.
			if !math.IsInf(until, 1) {
				switch ev.Kind {
				case faults.SwitchCrash, faults.SwitchDegrade, faults.LinkDegrade, faults.ServerCrash:
					rep.RecoveryLatencySum += until - ev.Time
					rep.ReactedFaults++
				}
			}
			fired = true
		}
		if !fired {
			return nil, nil, nil
		}
		react, err := faults.React(e.ctl, eps)
		if err != nil {
			return nil, nil, err
		}
		rep.ReroutedFlows += react.Rerouted
		dropped := make(map[flow.ID]bool, len(react.Dropped))
		for _, id := range react.Dropped {
			dropped[id] = true
			rep.DroppedFlows = append(rep.DroppedFlows, id)
		}
		if over := e.ctl.OverloadedSwitches(); len(over) != 0 {
			return nil, nil, fmt.Errorf("sim: switches %v over capacity after reaction", over)
		}
		ids := make([]flow.ID, 0, e.ctl.NumPolicies())
		for id := range e.ctl.Policies() {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			for _, w := range e.ctl.Policy(id).List {
				if !e.topo.Alive(w) {
					return nil, nil, fmt.Errorf("sim: flow %d policy traverses dead switch %d after reaction", id, w)
				}
			}
		}
		return dropped, evictedNow, nil
	}

	simNow := 0.0
	var waveEnds []float64
	for iter := 0; ; iter++ {
		if iter > 10000 {
			return nil, fmt.Errorf("sim: fault wave loop did not terminate")
		}
		// Release the previous wave's map containers (Unplace is a no-op for
		// containers a server crash already evicted).
		for _, st := range states {
			for _, c := range st.prevWave {
				if err := e.cl.Unplace(c); err != nil {
					return nil, err
				}
			}
			st.prevWave = nil
		}

		// Pending and eligible work.
		remaining := 0
		reducesPending := 0
		anyEligible := false
		for _, st := range states {
			if st.failed || (st.mapsDone() && len(unplacedReduces(st)) == 0) {
				continue
			}
			remaining++
			if st.arrival > simNow {
				continue
			}
			ur := len(unplacedReduces(st))
			reducesPending += ur
			if ur > 0 {
				anyEligible = true
				continue
			}
			for m := range st.done {
				if !st.done[m] && st.attempts[m] < model.RetryBudget && st.readyAt[m] <= simNow {
					anyEligible = true
					break
				}
			}
		}
		if remaining == 0 {
			break
		}
		if !anyEligible {
			// Nothing can run now: advance to the next wakeup — an event, a
			// retry backoff expiring, or a job arrival.
			next := math.Inf(1)
			if nextEv < len(events) {
				next = events[nextEv].Time
			}
			for _, st := range states {
				if st.failed {
					continue
				}
				if st.arrival > simNow && st.arrival < next {
					next = st.arrival
				}
				for m := range st.done {
					if !st.done[m] && st.attempts[m] < model.RetryBudget &&
						st.readyAt[m] > simNow && st.readyAt[m] < next {
						next = st.readyAt[m]
					}
				}
			}
			if math.IsInf(next, 1) {
				// Stuck for good: no event or backoff can unblock the rest.
				for _, st := range states {
					if !st.failed && (!st.mapsDone() || len(unplacedReduces(st)) > 0) {
						st.failed = true
					}
				}
				break
			}
			simNow = next
			if _, _, err := applyEventsUntil(simNow, nil); err != nil {
				return nil, err
			}
			continue
		}

		quota := (e.cl.TotalFreeSlots(demand) - reducesPending) / remaining
		if quota < 1 {
			quota = 1
		}
		wave := len(waveEnds)

		type waveFlow struct {
			st     *faultJob
			fl     *flow.Flow
			record bool // successful attempt: snapshot + transfer
		}
		var waveFlows []waveFlow
		var waveEps []faults.FlowEndpoints
		waveDur := 0.0
		ranAny := false
		progressed := false // any placement landed (maps or reduces)

		for _, st := range states {
			if st.failed || st.arrival > simNow {
				continue
			}
			needReduces := unplacedReduces(st)
			var batch []int
			for m := range st.done {
				if len(batch) >= quota {
					break
				}
				if !st.done[m] && st.attempts[m] < model.RetryBudget && st.readyAt[m] <= simNow {
					batch = append(batch, m)
				}
			}
			// Maps need their reduces placed first (flows want endpoints);
			// a reduce-only request still makes placement progress.
			if len(needReduces) > 0 {
				batch = nil
			}
			if len(needReduces) == 0 && len(batch) == 0 {
				continue
			}

			req := &scheduler.Request{
				Cluster:    e.cl,
				Controller: e.ctl,
				Fixed:      make(map[cluster.ContainerID]bool),
				Rand:       e.rng,
				Degraded:   true,
				Report:     &scheduler.ScheduleReport{},
			}
			for r, c := range st.reduceCts {
				if e.cl.Container(c).Server() == topology.None {
					req.Tasks = append(req.Tasks, scheduler.Task{
						Job: st.job, Kind: workload.ReduceTask, Index: r, Container: c,
					})
				} else {
					req.Fixed[c] = true
				}
			}
			for _, m := range batch {
				if st.mapCts[m] == cluster.NoContainer {
					ct, err := e.cl.NewContainer(demand)
					if err != nil {
						return nil, err
					}
					st.mapCts[m] = ct.ID
				}
				req.Tasks = append(req.Tasks, scheduler.Task{
					Job: st.job, Kind: workload.MapTask, Index: m, Container: st.mapCts[m],
				})
			}
			for _, m := range batch {
				for r := 0; r < st.job.NumReduces; r++ {
					size := st.job.Shuffle[m][r]
					if size <= 0 {
						continue
					}
					fl := &flow.Flow{
						ID: nextFlowID, JobID: st.job.ID, MapIndex: m, ReduceIndex: r,
						Src: st.mapCts[m], Dst: st.reduceCts[r],
						SizeGB: size, Rate: size,
					}
					nextFlowID++
					req.Flows = append(req.Flows, fl)
				}
			}

			if err := e.sched.Schedule(req); err != nil {
				return nil, fmt.Errorf("sim: %s scheduling job %d wave %d: %w", e.sched.Name(), st.job.ID, wave, err)
			}

			unplaced := make(map[cluster.ContainerID]bool, len(req.Report.UnplacedContainers))
			for _, c := range req.Report.UnplacedContainers {
				unplaced[c] = true
				rep.DeferredPlacements++
			}
			if len(req.Tasks) > len(req.Report.UnplacedContainers) {
				progressed = true
			}
			unroutable := make(map[flow.ID]bool, len(req.Report.UnroutableFlows))
			for _, id := range req.Report.UnroutableFlows {
				unroutable[id] = true
				rep.DroppedFlows = append(rep.DroppedFlows, id)
			}

			statFetch := 0.0
			if st.job.NumMaps > 0 {
				statFetch = st.job.RemoteMapGB / float64(st.job.NumMaps) / e.opts.MapFetchBandwidth
			}
			succeeded := make(map[int]bool, len(batch))
			var placedCts []cluster.ContainerID
			for _, m := range batch {
				if unplaced[st.mapCts[m]] {
					continue // deferred, not an attempt; eligible again next wave
				}
				placedCts = append(placedCts, st.mapCts[m])
				ranAny = true
				attempt := st.attempts[m]
				st.attempts[m]++
				d := st.job.MapComputeSec[m] + statFetch
				dur, _, launched, won := model.AttemptDuration(d, st.job.ID, m, attempt)
				if launched {
					rep.SpeculativeLaunched++
				}
				if won {
					rep.SpeculativeWins++
				}
				if dur > waveDur {
					waveDur = dur
				}
				if model.AttemptFails(st.job.ID, m, attempt) {
					rep.TaskFailures++
					if st.attempts[m] >= model.RetryBudget {
						rep.FailedTasks++
						st.failed = true
					} else {
						delay := model.RetryDelay(st.attempts[m])
						rep.Retries++
						rep.RetryDelaySum += delay
						st.readyAt[m] = simNow + dur + delay
					}
					continue
				}
				succeeded[m] = true
				st.done[m] = true
				st.mapTimes[m] = dur
				st.mapWaveOf[m] = wave
				st.remoteGB += st.job.RemoteMapGB / float64(st.job.NumMaps)
			}
			if len(succeeded) > 0 && wave+1 > st.numWaves {
				st.numWaves = wave + 1
			}

			for _, fl := range req.Flows {
				if unroutable[fl.ID] {
					continue // reported dropped; no policy installed
				}
				if e.ctl.Policy(fl.ID) == nil {
					return nil, fmt.Errorf("sim: flow %d has no policy after %s", fl.ID, e.sched.Name())
				}
				if !succeeded[fl.MapIndex] || unplaced[fl.Src] || unplaced[fl.Dst] {
					// Failed or deferred attempt: its shuffle never happens.
					e.ctl.Uninstall(fl.ID)
					continue
				}
				waveFlows = append(waveFlows, waveFlow{st: st, fl: fl, record: true})
				waveEps = append(waveEps, faults.FlowEndpoints{
					Flow: fl, Src: loc.ServerOf(fl.Src), Dst: loc.ServerOf(fl.Dst),
				})
			}
			st.prevWave = placedCts
		}

		if !ranAny {
			if progressed {
				// Reduces landed but no map ran (maps gate on reduces being
				// placed): loop again at the same instant to schedule them.
				continue
			}
			// Placements deferred across the board (e.g. capacity lost to a
			// crash): progress needs an event, a backoff expiry, or an
			// arrival. Advance like the idle branch; if time cannot move,
			// fail what is stuck rather than spin.
			next := math.Inf(1)
			if nextEv < len(events) {
				next = events[nextEv].Time
			}
			for _, st := range states {
				if st.failed {
					continue
				}
				if st.arrival > simNow && st.arrival < next {
					next = st.arrival
				}
				for m := range st.done {
					if !st.done[m] && st.attempts[m] < model.RetryBudget &&
						st.readyAt[m] > simNow && st.readyAt[m] < next {
						next = st.readyAt[m]
					}
				}
			}
			if math.IsInf(next, 1) {
				for _, st := range states {
					if !st.failed && (!st.mapsDone() || len(unplacedReduces(st)) > 0) {
						st.failed = true
					}
				}
				break
			}
			if next > simNow {
				simNow = next
			}
			if _, _, err := applyEventsUntil(simNow, nil); err != nil {
				return nil, err
			}
			continue
		}

		// The wave runs over [simNow, waveEnd]. Fabric events inside that
		// window fire now (wave-quantized), and the reactor repairs the
		// wave's installed shuffle policies before routes are snapshot.
		waveEnd := simNow + waveDur
		droppedNow, evictedNow, err := applyEventsUntil(waveEnd, waveEps)
		if err != nil {
			return nil, err
		}

		// A server crash inside the wave loses the map attempts running on
		// it: undo their completion and re-queue them (evictions do not
		// consume the retry budget — the task did nothing wrong).
		if len(evictedNow) > 0 {
			for _, st := range states {
				for m := range st.done {
					if st.done[m] && st.mapWaveOf[m] == wave && evictedNow[st.mapCts[m]] {
						st.done[m] = false
						st.attempts[m]--
						st.mapTimes[m] = 0
						st.mapWaveOf[m] = 0
						st.readyAt[m] = waveEnd
						st.remoteGB -= st.job.RemoteMapGB / float64(st.job.NumMaps)
					}
				}
			}
		}

		cm := e.ctl.CostModel()
		for _, wf := range waveFlows {
			if droppedNow[wf.fl.ID] {
				continue // shed by the reactor; accounted in DroppedFlows
			}
			if !wf.st.done[wf.fl.MapIndex] {
				// The producing map was lost to an eviction: its re-run will
				// emit fresh flows.
				e.ctl.Uninstall(wf.fl.ID)
				continue
			}
			if evictedNow[wf.fl.Dst] {
				// The consuming reduce was lost mid-shuffle; it will be
				// re-placed, and this wave's transfer to it is shed.
				e.ctl.Uninstall(wf.fl.ID)
				rep.DroppedFlows = append(rep.DroppedFlows, wf.fl.ID)
				continue
			}
			pol := e.ctl.Policy(wf.fl.ID)
			if pol == nil {
				return nil, fmt.Errorf("sim: flow %d lost its policy mid-wave", wf.fl.ID)
			}
			route, err := cm.RouteNodes(wf.fl, pol, loc)
			if err != nil {
				return nil, err
			}
			hops, err := cm.RouteHops(wf.fl, pol, loc)
			if err != nil {
				return nil, err
			}
			cost, err := cm.FlowCost(wf.fl, pol, loc)
			if err != nil {
				return nil, err
			}
			walk, err := e.net.ExpandRoute(route)
			if err != nil {
				return nil, err
			}
			latT := e.ctl.Oracle().PathLatency(walk)
			wf.st.flows = append(wf.st.flows, &flowRecord{
				flow: wf.fl, job: wf.st.job,
				route: route, hops: hops, cost: cost,
				delay: wf.fl.SizeGB * latT, latT: latT,
				startHint: waveEnd,
			})
		}
		for _, wf := range waveFlows {
			e.ctl.Uninstall(wf.fl.ID)
		}
		waveEnds = append(waveEnds, waveEnd)
		simNow = waveEnd
	}

	// Drain the timeline (recoveries past the last wave) and verify the
	// fabric comes back clean, then restore any still-degraded nominals so
	// the engine stays reusable.
	if _, _, err := applyEventsUntil(math.Inf(1), nil); err != nil {
		return nil, err
	}
	if over := e.ctl.OverloadedSwitches(); len(over) != 0 {
		return nil, fmt.Errorf("sim: switches %v over capacity after recovery", over)
	}
	if err := inj.RestoreAll(); err != nil {
		return nil, err
	}

	// Stats + shuffle, mirroring the legacy path's aggregation.
	var transfers []*netsim.Transfer
	for _, st := range states {
		js := &JobStats{
			JobID:       st.job.ID,
			Benchmark:   st.job.Benchmark,
			Class:       st.job.Class,
			Arrival:     st.arrival,
			MapWaves:    st.numWaves,
			RemoteMapGB: st.remoteGB,
			Failed:      st.failed,
		}
		res.Jobs = append(res.Jobs, js)
		if st.failed {
			rep.FailedJobs = append(rep.FailedJobs, st.job.ID)
			continue
		}
		js.MapTimes = append([]float64(nil), st.mapTimes...)
		for _, fr := range st.flows {
			transfers = append(transfers, &netsim.Transfer{
				ID:    fr.flow.ID,
				Route: fr.route,
				Bytes: fr.flow.SizeGB,
				Start: fr.startHint,
			})
		}
	}
	sort.Ints(rep.FailedJobs)
	net, err := e.net.Simulate(transfers)
	if err != nil {
		return nil, err
	}

	var hopSum, delaySum, xferSum float64
	var flowCount int
	var totalBytes float64
	for ji, st := range states {
		if st.failed {
			continue
		}
		js := res.Jobs[ji]
		firstEnd, lastEnd := math.Inf(1), st.arrival
		for m := range st.done {
			end := waveEnds[st.mapWaveOf[m]]
			if end > lastEnd {
				lastEnd = end
			}
			if end < firstEnd {
				firstEnd = end
			}
		}
		if math.IsInf(firstEnd, 1) {
			firstEnd = st.arrival
		}
		reduceReady := make([]float64, st.job.NumReduces)
		for r := range reduceReady {
			reduceReady[r] = lastEnd
		}
		for _, fr := range st.flows {
			fs := net.Flows[fr.flow.ID]
			if fs == nil {
				return nil, fmt.Errorf("sim: flow %d missing from network result", fr.flow.ID)
			}
			if fs.Finish > reduceReady[fr.flow.ReduceIndex] {
				reduceReady[fr.flow.ReduceIndex] = fs.Finish
			}
			js.ShuffleBytes += fr.flow.SizeGB
			js.TrafficCost += fr.cost
			js.DelayCost += fr.delay
			hopSum += float64(fr.hops)
			delaySum += fr.latT
			xferSum += fs.TransferTime
			flowCount++
			totalBytes += fr.flow.SizeGB
		}
		js.ReduceTimes = make([]float64, st.job.NumReduces)
		jct := lastEnd
		for r := 0; r < st.job.NumReduces; r++ {
			finish := reduceReady[r] + st.job.ReduceComputeSec[r]
			js.ReduceTimes[r] = finish - firstEnd
			if finish > jct {
				jct = finish
			}
		}
		js.Completion = jct - st.arrival
		res.JCT.Add(jct)
		res.MapTime.AddAll(js.MapTimes)
		res.ReduceTime.AddAll(js.ReduceTimes)
		res.TotalTrafficCost += js.TrafficCost
		res.TotalDelayCost += js.DelayCost
	}
	if flowCount > 0 {
		res.AvgRouteHops = hopSum / float64(flowCount)
		res.AvgShuffleDelayT = delaySum / float64(flowCount)
		res.AvgFlowTransferTime = xferSum / float64(flowCount)
	}
	res.NumFlows = flowCount
	res.ShuffleMakespan = net.Makespan
	if net.Makespan > 0 {
		res.ShuffleThroughput = totalBytes / net.Makespan
	}

	for _, st := range states {
		for _, c := range st.reduceCts {
			if err := e.cl.Unplace(c); err != nil {
				return nil, err
			}
		}
		for _, c := range st.mapCts {
			if c == cluster.NoContainer {
				continue
			}
			if err := e.cl.Unplace(c); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}
