package sim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/scheduler"
	"repro/internal/topology"
	"repro/internal/workload"
)

func paperTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.NewTree(2, 4, topology.LinkParams{Bandwidth: 1, SwitchCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func genJobs(t *testing.T, n int, seed int64) []*workload.Job {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.MinInputGB = 2
	cfg.MaxInputGB = 6
	cfg.MaxMaps = 8
	g, err := workload.NewGenerator(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g.Workload(n)
}

func runSim(t *testing.T, topo *topology.Topology, s scheduler.Scheduler, jobs []*workload.Job, seed int64) *Result {
	t.Helper()
	eng, err := New(topo, cluster.Resources{CPU: 4, Memory: 8192}, s, Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(jobs)
	if err != nil {
		t.Fatalf("%s run: %v", s.Name(), err)
	}
	return res
}

func TestNewErrors(t *testing.T) {
	topo := paperTopo(t)
	if _, err := New(nil, cluster.Resources{CPU: 1}, scheduler.Capacity{}, Options{}); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := New(topo, cluster.Resources{CPU: 1}, nil, Options{}); err == nil {
		t.Error("nil scheduler accepted")
	}
}

func TestRunEmptyWorkload(t *testing.T) {
	topo := paperTopo(t)
	res := runSim(t, topo, scheduler.Capacity{}, nil, 1)
	if res.JCT.N() != 0 || res.NumFlows != 0 {
		t.Errorf("empty workload produced data: %+v", res)
	}
}

func TestRunRejectsInvalidJob(t *testing.T) {
	topo := paperTopo(t)
	eng, err := New(topo, cluster.Resources{CPU: 4, Memory: 8192}, scheduler.Capacity{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run([]*workload.Job{{NumMaps: 0, NumReduces: 1}}); err == nil {
		t.Error("invalid job accepted")
	}
}

func TestRunSingleJobAllSchedulers(t *testing.T) {
	jobs := genJobs(t, 1, 42)
	for _, s := range []scheduler.Scheduler{scheduler.Capacity{}, scheduler.PNA{}, scheduler.Random{}, &core.HitScheduler{}} {
		t.Run(s.Name(), func(t *testing.T) {
			topo := paperTopo(t)
			res := runSim(t, topo, s, jobs, 7)
			if res.Scheduler != s.Name() {
				t.Errorf("scheduler name = %q", res.Scheduler)
			}
			if res.JCT.N() != 1 {
				t.Fatalf("JCT samples = %d, want 1", res.JCT.N())
			}
			if res.JCT.Mean() <= 0 {
				t.Errorf("JCT = %v, want > 0", res.JCT.Mean())
			}
			if res.MapTime.N() != jobs[0].NumMaps {
				t.Errorf("map samples = %d, want %d", res.MapTime.N(), jobs[0].NumMaps)
			}
			if res.ReduceTime.N() != jobs[0].NumReduces {
				t.Errorf("reduce samples = %d, want %d", res.ReduceTime.N(), jobs[0].NumReduces)
			}
			if len(res.Jobs) != 1 {
				t.Fatalf("jobs = %d", len(res.Jobs))
			}
			js := res.Jobs[0]
			if js.Completion != res.JCT.Max() {
				t.Errorf("completion %v != JCT %v", js.Completion, res.JCT.Max())
			}
			// JCT must cover the map phase plus compute.
			if js.Completion < res.MapTime.Max() {
				t.Errorf("JCT %v < max map time %v", js.Completion, res.MapTime.Max())
			}
		})
	}
}

func TestHitBeatsCapacityOnShuffleHeavyWorkload(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.MinInputGB = 4
	cfg.MaxInputGB = 8
	cfg.MaxMaps = 8
	var hitCost, capCost, hitJCT, capJCT float64
	for seed := int64(0); seed < 5; seed++ {
		g, err := workload.NewGenerator(cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		var jobs []*workload.Job
		for i := 0; i < 3; i++ {
			j, err := g.SampleClass(workload.ShuffleHeavy)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
		hit := runSim(t, paperTopo(t), &core.HitScheduler{}, jobs, seed)
		capc := runSim(t, paperTopo(t), scheduler.Capacity{}, jobs, seed)
		hitCost += hit.TotalTrafficCost
		capCost += capc.TotalTrafficCost
		hitJCT += hit.JCT.Mean()
		capJCT += capc.JCT.Mean()
	}
	if hitCost >= capCost {
		t.Errorf("hit traffic cost %v >= capacity %v", hitCost, capCost)
	}
	if hitJCT >= capJCT {
		t.Errorf("hit mean JCT %v >= capacity %v", hitJCT, capJCT)
	}
	t.Logf("aggregate: hit cost=%.1f jct=%.1f | capacity cost=%.1f jct=%.1f",
		hitCost, hitJCT, capCost, capJCT)
}

func TestMultiWaveScheduling(t *testing.T) {
	// 2-server cluster with 2 CPU each = 4 slots; a job with 1 reduce and 6
	// maps needs multiple waves.
	topo, err := topology.NewTree(1, 2, topology.LinkParams{Bandwidth: 1, SwitchCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	job := &workload.Job{ID: 0, NumMaps: 6, NumReduces: 1, InputGB: 6}
	job.Shuffle = make([][]float64, 6)
	for m := range job.Shuffle {
		job.Shuffle[m] = []float64{1}
	}
	job.MapComputeSec = []float64{1, 1, 1, 1, 1, 1}
	job.ReduceComputeSec = []float64{1}

	eng, err := New(topo, cluster.Resources{CPU: 2, Memory: 8192}, &core.HitScheduler{}, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run([]*workload.Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].MapWaves < 2 {
		t.Errorf("map waves = %d, want >= 2 (6 maps, ~3 slots)", res.Jobs[0].MapWaves)
	}
	if res.MapTime.N() != 6 {
		t.Errorf("map samples = %d, want 6", res.MapTime.N())
	}
	// All 6 flows accounted for.
	if res.NumFlows != 6 {
		t.Errorf("flows = %d, want 6", res.NumFlows)
	}
	// The JCT must cover at least two sequential map waves (2 time units).
	if res.JCT.Max() < 2 {
		t.Errorf("JCT %v too small for multi-wave job", res.JCT.Max())
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	jobs := genJobs(t, 3, 11)
	a := runSim(t, paperTopo(t), &core.HitScheduler{}, jobs, 5)
	jobs2 := genJobs(t, 3, 11)
	b := runSim(t, paperTopo(t), &core.HitScheduler{}, jobs2, 5)
	if math.Abs(a.TotalTrafficCost-b.TotalTrafficCost) > 1e-9 {
		t.Errorf("cost diverged: %v vs %v", a.TotalTrafficCost, b.TotalTrafficCost)
	}
	if math.Abs(a.JCT.Mean()-b.JCT.Mean()) > 1e-9 {
		t.Errorf("JCT diverged: %v vs %v", a.JCT.Mean(), b.JCT.Mean())
	}
}

func TestResultMetricsConsistency(t *testing.T) {
	jobs := genJobs(t, 4, 21)
	res := runSim(t, paperTopo(t), scheduler.PNA{}, jobs, 9)
	var cost, delay, bytes float64
	for _, js := range res.Jobs {
		cost += js.TrafficCost
		delay += js.DelayCost
		bytes += js.ShuffleBytes
	}
	if math.Abs(cost-res.TotalTrafficCost) > 1e-6 {
		t.Errorf("job cost sum %v != total %v", cost, res.TotalTrafficCost)
	}
	if math.Abs(delay-res.TotalDelayCost) > 1e-6 {
		t.Errorf("job delay sum %v != total %v", delay, res.TotalDelayCost)
	}
	if res.AvgRouteHops <= 0 || res.AvgShuffleDelayT <= 0 {
		t.Errorf("route averages not positive: hops=%v delay=%v", res.AvgRouteHops, res.AvgShuffleDelayT)
	}
	if res.ShuffleMakespan <= 0 || res.ShuffleThroughput <= 0 {
		t.Errorf("shuffle makespan/throughput not positive: %v/%v", res.ShuffleMakespan, res.ShuffleThroughput)
	}
	// Throughput = bytes / makespan.
	if math.Abs(res.ShuffleThroughput-bytes/res.ShuffleMakespan) > 1e-6 {
		t.Errorf("throughput inconsistent")
	}
}

func TestEngineAccessors(t *testing.T) {
	topo := paperTopo(t)
	eng, err := New(topo, cluster.Resources{CPU: 2, Memory: 2048}, scheduler.Capacity{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Cluster() == nil || eng.Controller() == nil {
		t.Error("nil accessors")
	}
	if eng.Cluster().Topology() != topo {
		t.Error("topology mismatch")
	}
}

func TestRunWithHDFSMeasuresRemoteMapTraffic(t *testing.T) {
	topo := paperTopo(t)
	nn, err := hdfs.NewNameNode(topo, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	jobs := genJobs(t, 2, 31)
	eng, err := New(topo, cluster.Resources{CPU: 4, Memory: 8192}, scheduler.DelayScheduling{NameNode: nn, SkipBudget: 3},
		Options{Seed: 8, NameNode: nn})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Remote map traffic is measured, not statistical: with delay scheduling
	// and 3 replicas it should be far below the total input.
	var input, remote float64
	for i, js := range res.Jobs {
		input += jobs[i].InputGB
		remote += js.RemoteMapGB
	}
	if remote < 0 || remote >= input {
		t.Errorf("remote map GB = %v for %v GB input", remote, input)
	}
	// Delay scheduling should read less remotely than Random on the same
	// workload.
	topo2 := paperTopo(t)
	nn2, err := hdfs.NewNameNode(topo2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	jobs2 := genJobs(t, 2, 31)
	eng2, err := New(topo2, cluster.Resources{CPU: 4, Memory: 8192}, scheduler.Random{}, Options{Seed: 8, NameNode: nn2})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := eng2.Run(jobs2)
	if err != nil {
		t.Fatal(err)
	}
	var remoteRnd float64
	for _, js := range res2.Jobs {
		remoteRnd += js.RemoteMapGB
	}
	if remote >= remoteRnd {
		t.Errorf("delaysched remote %v >= random remote %v", remote, remoteRnd)
	}
	t.Logf("remote map GB: delaysched=%.2f random=%.2f (input %.1f)", remote, remoteRnd, input)
}

func TestRunWithHDFSRepeatedRunsDistinctFiles(t *testing.T) {
	topo := paperTopo(t)
	nn, err := hdfs.NewNameNode(topo, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(topo, cluster.Resources{CPU: 4, Memory: 8192}, scheduler.Capacity{}, Options{Seed: 2, NameNode: nn})
	if err != nil {
		t.Fatal(err)
	}
	jobs := genJobs(t, 1, 9)
	if _, err := eng.Run(jobs); err != nil {
		t.Fatal(err)
	}
	// A second Run must not collide on HDFS file names. Note containers from
	// the first run still occupy the cluster only if unreleased; maps were
	// released per wave and reduces remain — use fresh jobs small enough.
	jobs2 := genJobs(t, 1, 10)
	if _, err := eng.Run(jobs2); err != nil {
		t.Fatalf("second run: %v", err)
	}
}

func TestRunWithArrivalsShiftsTimelines(t *testing.T) {
	jobs := genJobs(t, 3, 17)
	topo := paperTopo(t)
	eng, err := New(topo, cluster.Resources{CPU: 4, Memory: 8192}, scheduler.Capacity{}, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	arrivals := []float64{0, 50, 100}
	res, err := eng.RunWithArrivals(jobs, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	for i, js := range res.Jobs {
		if js.Arrival != arrivals[i] {
			t.Errorf("job %d arrival = %v, want %v", i, js.Arrival, arrivals[i])
		}
		if js.Completion <= 0 {
			t.Errorf("job %d completion = %v", i, js.Completion)
		}
	}
	// Identical workload at t=0: completions should not be smaller with
	// staggering (less contention can only help or tie; mainly we check the
	// offsets did not corrupt durations by an order of magnitude).
	res0, err := eng.RunWithArrivals(genJobs(t, 3, 17), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.JCT.Mean() > res0.JCT.Mean()*3 {
		t.Errorf("arrival-shifted JCT %v wildly above batch %v", res.JCT.Mean(), res0.JCT.Mean())
	}
}

func TestRunWithArrivalsErrors(t *testing.T) {
	topo := paperTopo(t)
	eng, err := New(topo, cluster.Resources{CPU: 4, Memory: 8192}, scheduler.Capacity{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	jobs := genJobs(t, 2, 1)
	if _, err := eng.RunWithArrivals(jobs, []float64{0}); err == nil {
		t.Error("short arrivals accepted")
	}
	if _, err := eng.RunWithArrivals(jobs, []float64{0, -1}); err == nil {
		t.Error("negative arrival accepted")
	}
}

func TestRunWithPoissonArrivals(t *testing.T) {
	jobs := genJobs(t, 4, 23)
	arrivals, err := workload.PoissonArrivals(len(jobs), 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	topo := paperTopo(t)
	eng, err := New(topo, cluster.Resources{CPU: 4, Memory: 8192}, &core.HitScheduler{}, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunWithArrivals(jobs, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if res.JCT.N() != 4 {
		t.Fatalf("JCT samples = %d", res.JCT.N())
	}
	// Shuffle makespan extends past the last arrival when jobs do real work.
	if res.ShuffleMakespan <= arrivals[len(arrivals)-1] {
		t.Logf("note: shuffle finished before last arrival (light jobs): %v <= %v",
			res.ShuffleMakespan, arrivals[len(arrivals)-1])
	}
}

func TestRenderGantt(t *testing.T) {
	jobs := genJobs(t, 3, 41)
	res := runSim(t, paperTopo(t), scheduler.Capacity{}, jobs, 2)
	out := RenderGantt(res, 40)
	if !strings.Contains(out, "legend") {
		t.Errorf("missing legend:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3+2 { // header + 3 jobs + legend
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	for _, l := range lines[1 : len(lines)-1] {
		if !strings.Contains(l, "|") {
			t.Errorf("job row missing bar: %q", l)
		}
	}
	// Degenerate inputs.
	if got := RenderGantt(nil, 40); !strings.Contains(got, "no jobs") {
		t.Errorf("nil result: %q", got)
	}
	if got := RenderGantt(&Result{}, 40); !strings.Contains(got, "no jobs") {
		t.Errorf("empty result: %q", got)
	}
	// Tiny width clamps.
	if got := RenderGantt(res, 1); !strings.Contains(got, "20 cells") {
		t.Errorf("width not clamped:\n%s", got)
	}
}

func TestStragglersAndSpeculation(t *testing.T) {
	jobs := func() []*workload.Job { return genJobs(t, 3, 55) }
	runWith := func(opts Options) float64 {
		topo := paperTopo(t)
		eng, err := New(topo, cluster.Resources{CPU: 4, Memory: 8192}, scheduler.Capacity{}, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(jobs())
		if err != nil {
			t.Fatal(err)
		}
		return res.MapTime.Mean()
	}
	base := runWith(Options{Seed: 4})
	straggled := runWith(Options{Seed: 4, StragglerProb: 0.3, StragglerFactor: 4})
	speculated := runWith(Options{Seed: 4, StragglerProb: 0.3, StragglerFactor: 4, Speculation: true})
	if straggled <= base {
		t.Errorf("stragglers did not raise map times: %v <= %v", straggled, base)
	}
	if speculated >= straggled {
		t.Errorf("speculation did not help: %v >= %v", speculated, straggled)
	}
	if speculated < base {
		t.Errorf("speculation beat the straggler-free run: %v < %v", speculated, base)
	}
	t.Logf("mean map time: base=%.2f stragglers=%.2f speculation=%.2f", base, straggled, speculated)
}
