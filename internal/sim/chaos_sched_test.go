package sim

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/supervise"
)

// TestChaosSchedulerFaultsShardedMatchesSequential is the
// scheduler-internal fault leg of the chaos harness: 4 seeds x 3 fault
// schedules (panic-heavy, stall-heavy, poison-heavy) x Shards in {2,4},
// every sharded run under injected worker failures required to produce a
// fingerprint bit-identical to the plain sequential run. This is the
// tentpole guarantee of the supervised runtime — panics poison cells,
// stalls abandon them, poisons fail the checksum, and every one of those
// paths degrades to the ordered sequential replay, never to different
// bits. `make chaos` runs it under the race detector.
func TestChaosSchedulerFaultsShardedMatchesSequential(t *testing.T) {
	schedules := []struct {
		name string
		plan supervise.FaultPlan
		cfg  supervise.Config
	}{
		{"panic-heavy", supervise.FaultPlan{PanicPerMille: 500}, supervise.Config{}},
		// The stall schedule also tightens the op budget so injected
		// stalls and genuine budget exhaustion both fire.
		{"stall-heavy", supervise.FaultPlan{StallPerMille: 400}, supervise.Config{CellOpBudget: 64}},
		{"poison-heavy", supervise.FaultPlan{PoisonPerMille: 600}, supervise.Config{}},
	}
	for _, sp := range schedules {
		sp := sp
		t.Run(sp.name, func(t *testing.T) {
			var injected int
			for _, seed := range []int64{1, 2, 3, 4} {
				jobs := chaosJobs(t, 2, seed)
				run := func(shards int) (*Result, supervise.Stats) {
					var sup *supervise.Supervisor
					sched := &core.HitScheduler{Shards: shards}
					if shards > 0 {
						cfg := sp.cfg
						plan := sp.plan
						plan.Seed = uint64(seed)
						cfg.Faults = &plan
						sup = supervise.New(cfg)
						sched.Supervisor = sup
					}
					eng, err := New(chaosTopo(t), cluster.Resources{CPU: 4, Memory: 8192}, sched, Options{Seed: seed})
					if err != nil {
						t.Fatal(err)
					}
					res, err := eng.Run(jobs)
					if err != nil {
						t.Fatalf("seed %d shards %d: %v", seed, shards, err)
					}
					var st supervise.Stats
					if sup != nil {
						st = sup.Stats()
					}
					return res, st
				}
				sequential, _ := run(0)
				for _, shards := range []int{2, 4} {
					sharded, st := run(shards)
					if !reflect.DeepEqual(resultFingerprint(sequential), resultFingerprint(sharded)) {
						t.Errorf("seed %d shards %d: fingerprint diverges from sequential under %s faults",
							seed, shards, sp.name)
					}
					injected += st.Panics + st.Stalls + st.Poisons
					if st.TotalReplays()+st.Adopted == 0 {
						t.Errorf("seed %d shards %d: supervisor saw no commits", seed, shards)
					}
				}
			}
			if injected == 0 {
				t.Errorf("%s schedule injected no faults across all seeds; rates too low to test anything", sp.name)
			}
		})
	}
}

// TestChaosSupervisorSharedAcrossWaves drives one shared supervisor
// through a whole mixed-fault run at both shard counts and pins the stats
// determinism end to end: same seed, same schedule, same counters.
func TestChaosSupervisorSharedAcrossWaves(t *testing.T) {
	jobs := chaosJobs(t, 3, 6)
	run := func() supervise.Stats {
		sup := supervise.New(supervise.Config{
			CellOpBudget: 512,
			Faults:       &supervise.FaultPlan{Seed: 6, PanicPerMille: 250, StallPerMille: 250, PoisonPerMille: 250},
		})
		eng, err := New(chaosTopo(t), cluster.Resources{CPU: 4, Memory: 8192},
			&core.HitScheduler{Shards: 4, Supervisor: sup}, Options{Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(jobs); err != nil {
			t.Fatal(err)
		}
		return sup.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("shared-supervisor stats diverge across identical runs:\n%+v\n%+v", a, b)
	}
	if a.Panics+a.Stalls+a.Poisons == 0 {
		t.Fatal("mixed schedule injected nothing across a full run")
	}
}
