package sim

import (
	"fmt"
	"sort"
	"strings"
)

// RenderGantt draws an ASCII timeline of the run: one row per job showing
// its map phase ('M'), the shuffle+reduce tail ('R') and idle time before
// arrival ('.'). Width is the number of character cells the full makespan
// maps onto (minimum 20).
func RenderGantt(res *Result, width int) string {
	if res == nil || len(res.Jobs) == 0 {
		return "(no jobs)\n"
	}
	if width < 20 {
		width = 20
	}
	// Horizon: the latest job end.
	horizon := 0.0
	for _, js := range res.Jobs {
		if end := js.Arrival + js.Completion; end > horizon {
			horizon = end
		}
	}
	if horizon <= 0 {
		return "(degenerate timeline)\n"
	}
	cell := horizon / float64(width)

	jobs := append([]*JobStats(nil), res.Jobs...)
	sort.SliceStable(jobs, func(i, j int) bool {
		if jobs[i].Arrival != jobs[j].Arrival { //taalint:floateq sort comparator: exact compare keeps the order total and stable

			return jobs[i].Arrival < jobs[j].Arrival
		}
		return jobs[i].JobID < jobs[j].JobID
	})

	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %d cells x %.2f time units (horizon %.1f)\n", width, cell, horizon)
	for _, js := range jobs {
		// Map phase duration: the longest map wave chain is bounded by the
		// total map time; approximate with the max map time per wave count.
		mapDur := 0.0
		for _, d := range js.MapTimes {
			if d > mapDur {
				mapDur = d
			}
		}
		mapDur *= float64(js.MapWaves)
		if mapDur > js.Completion {
			mapDur = js.Completion
		}
		row := make([]byte, width)
		for i := range row {
			t := (float64(i) + 0.5) * cell
			switch {
			case t < js.Arrival:
				row[i] = '.'
			case t < js.Arrival+mapDur:
				row[i] = 'M'
			case t < js.Arrival+js.Completion:
				row[i] = 'R'
			default:
				row[i] = ' '
			}
		}
		fmt.Fprintf(&b, "job %2d %-14s |%s| %.1f\n", js.JobID, js.Benchmark, string(row), js.Completion)
	}
	b.WriteString("legend: . waiting  M map phase  R shuffle+reduce\n")
	return b.String()
}
