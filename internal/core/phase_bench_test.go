package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/scheduler"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Phase-isolation benchmarks: the joint loop's cost splits into Algorithm 1
// sweeps (policy optimization) and Algorithm 2 preference builds (the
// matrix behind stable matching). Benchmarking each phase alone makes a
// future regression attributable to a phase instead of the whole Schedule
// call.

// benchPhaseRequest builds a request on a depth-3 tree, mirrors Schedule's
// initialization (random placement + random installed policies), and
// returns it ready for single-phase runs.
func benchPhaseRequest(b *testing.B, fanout, maps, reduces int) (*scheduler.Request, []scheduler.Task) {
	b.Helper()
	topo, err := topology.NewTree(3, fanout, topology.LinkParams{Bandwidth: 1, SwitchCapacity: 1e9})
	if err != nil {
		b.Fatal(err)
	}
	cl, err := cluster.New(topo, cluster.Resources{CPU: 2, Memory: 8192})
	if err != nil {
		b.Fatal(err)
	}
	ctl := controller.New(topo)
	job := &workload.Job{ID: 0, NumMaps: maps, NumReduces: reduces, InputGB: float64(maps)}
	job.Shuffle = make([][]float64, maps)
	for m := range job.Shuffle {
		job.Shuffle[m] = make([]float64, reduces)
		for r := range job.Shuffle[m] {
			job.Shuffle[m][r] = 0.5
		}
	}
	job.MapComputeSec = make([]float64, maps)
	job.ReduceComputeSec = make([]float64, reduces)
	req, _, err := scheduler.NewJobRequest(cl, ctl, []*workload.Job{job},
		cluster.Resources{CPU: 1, Memory: 512}, rand.New(rand.NewSource(7)))
	if err != nil {
		b.Fatal(err)
	}
	h := &HitScheduler{}
	movable := h.movableTasks(req)
	for _, t := range movable {
		if req.Cluster.Container(t.Container).Placed() {
			continue
		}
		cands := req.Cluster.Candidates(t.Container)
		if len(cands) == 0 {
			b.Fatalf("no feasible server for container %d", t.Container)
		}
		if err := req.Cluster.Place(t.Container, cands[req.Rand.Intn(len(cands))]); err != nil {
			b.Fatal(err)
		}
	}
	loc := req.Locator()
	for _, f := range req.Flows {
		p, err := req.Controller.RandomPolicy(f, loc, req.Rand)
		if err != nil {
			b.Fatal(err)
		}
		if err := req.Controller.Install(f, p); err != nil {
			b.Fatal(err)
		}
	}
	return req, movable
}

// BenchmarkPolicyOptimization measures one Algorithm-1 sweep over every
// flow (phase 1 of the joint loop). The first sweep pays for the DAG
// solves; later sweeps exercise the steady-state cost — feasibility scans,
// cost evaluation, and pair-cache hits.
func BenchmarkPolicyOptimization(b *testing.B) {
	for _, size := range []struct{ fanout, maps, reduces int }{{4, 32, 16}, {6, 108, 54}} {
		b.Run(fmt.Sprintf("servers=%d", size.fanout*size.fanout*size.fanout), func(b *testing.B) {
			req, _ := benchPhaseRequest(b, size.fanout, size.maps, size.reduces)
			loc := req.Locator()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, f := range req.Flows {
					if _, err := req.Controller.OptimizeInstalled(f, loc); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkPreferenceMatrix measures one full preference build + stable
// matching for the reduce group (phase 2 of the joint loop). A fresh
// runState per iteration forces the complete build — no dirty-set reuse —
// so this tracks the un-memoized cost of the matrix.
func BenchmarkPreferenceMatrix(b *testing.B) {
	for _, size := range []struct{ fanout, maps, reduces int }{{4, 32, 16}, {6, 108, 54}} {
		b.Run(fmt.Sprintf("servers=%d", size.fanout*size.fanout*size.fanout), func(b *testing.B) {
			req, movable := benchPhaseRequest(b, size.fanout, size.maps, size.reduces)
			h := &HitScheduler{}
			loc := req.Locator()
			var reduces []scheduler.Task
			for _, t := range movable {
				if t.Kind == workload.ReduceTask {
					reduces = append(reduces, t)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := h.assignGroup(req, reduces, req.Flows, loc, newRunState(), 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
