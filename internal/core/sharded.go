// Sharded-path phase implementations. Each function here is the fan-out
// twin of a sequential loop in core.go: workers presolve against an
// oracle snapshot on up to Shards goroutines, and every mutation funnels
// through the multisched arbiter in the exact order the sequential loop
// would have produced — so the two paths are Float64bits-identical and
// only wall-clock differs. See DESIGN.md §10 for the determinism
// argument.
package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/flow"
	"repro/internal/multisched"
	"repro/internal/scheduler"
)

// placeInitialSharded is the Shards>1 twin of Schedule's §5.3.1 random
// placement loop. Candidate scans run per demand class on the shard
// workers; the RNG draws and Places stay sequential and land through the
// arbiter, which keeps each later container's candidate view identical
// to a live commit-time scan (multisched.CandidateSet).
func (h *HitScheduler) placeInitialSharded(ms *multisched.Service, req *scheduler.Request, movable []scheduler.Task, report *scheduler.ScheduleReport, dropped map[cluster.ContainerID]bool) error {
	var unplaced []cluster.ContainerID
	for _, t := range movable {
		if !req.Cluster.Container(t.Container).Placed() {
			unplaced = append(unplaced, t.Container)
		}
	}
	if len(unplaced) == 0 {
		return nil
	}
	cs, err := ms.PresolveCandidates(unplaced)
	if err != nil {
		return err
	}
	arb := ms.Arbiter()
	for _, id := range unplaced {
		if req.Cluster.Container(id).Placed() {
			continue
		}
		cands := cs.Candidates(id)
		if len(cands) == 0 {
			if report != nil {
				report.UnplacedContainers = append(report.UnplacedContainers, id)
				dropped[id] = true
				continue
			}
			return fmt.Errorf("core: %w for container %d", scheduler.ErrNoFeasibleServer, id)
		}
		if err := arb.Place(cs, id, cands[req.Rand.Intn(len(cands))]); err != nil {
			return err
		}
	}
	return nil
}

// optimizeFlowsSharded is the Shards>1 twin of phase 1. The skip slice is
// only a presolve HINT (don't spend workers on flows that look clean at
// fan-out time); the authoritative clean check reruns per flow at commit
// time exactly like the sequential loop, because FitsEverywhere can flip
// as installs accumulate. A flow hinted clean but dirty at commit has no
// proposal and replays live; a flow hinted dirty but clean at commit is
// skipped without touching its proposal. Both match sequential exactly.
func (h *HitScheduler) optimizeFlowsSharded(ms *multisched.Service, req *scheduler.Request, flows []*flow.Flow, loc flow.Locator, st *runState) error {
	var skip []bool
	if h.incremental() {
		skip = make([]bool, len(flows))
		for i, f := range flows {
			skip[i] = st.cleanFlow(req, f, loc)
		}
	}
	ps := ms.PresolveOptimize(flows, skip, loc)
	defer ps.Drain()
	arb := ms.Arbiter()
	for i, f := range flows {
		if h.incremental() && st.cleanFlow(req, f, loc) {
			continue
		}
		_, opt, info, err := arb.CommitOptimize(ps, i, loc)
		if err != nil {
			return err
		}
		st.record(f, loc, opt, info)
	}
	return nil
}

// reinstallSharded is the Shards>1 twin of reinstallPolicies' solve loop
// (the caller has already uninstalled every flow in order, and has
// already routed DisablePolicyOpt to the sequential RNG path). Same
// hint-then-recheck structure as phase 1; the Install itself funnels
// through the arbiter flow by flow.
func (h *HitScheduler) reinstallSharded(ms *multisched.Service, req *scheduler.Request, flows []*flow.Flow, loc flow.Locator, st *runState) error {
	var skip []bool
	if h.incremental() {
		skip = make([]bool, len(flows))
		for i, f := range flows {
			skip[i] = st.cleanFlow(req, f, loc)
		}
	}
	ps := ms.PresolveRoutes(flows, skip, loc)
	defer ps.Drain()
	arb := ms.Arbiter()
	for i, f := range flows {
		var p *flow.Policy
		if h.incremental() && st.cleanFlow(req, f, loc) {
			p = st.solves[f.ID].policy
		} else {
			var info controller.SolveInfo
			var err error
			p, info, err = arb.CommitRoute(ps, i, loc)
			if err != nil {
				return err
			}
			st.record(f, loc, p, info)
		}
		if err := arb.Install(f, p); err != nil {
			return fmt.Errorf("core: reinstall flow %d: %w", f.ID, err)
		}
	}
	return nil
}
