package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/flow"
	"repro/internal/scheduler"
	"repro/internal/topology"
	"repro/internal/workload"
)

// overcommittedRequest builds a request with more containers than the
// cluster has slots: 4 one-CPU servers versus 6 containers.
func overcommittedRequest(t *testing.T, seed int64) *scheduler.Request {
	t.Helper()
	cl, ctl := testEnv(t, 2, 2, cluster.Resources{CPU: 1, Memory: 4096})
	req, _ := buildRequest(t, cl, ctl, []*workload.Job{uniformJob(t, 1, 4, 2, 1)}, seed)
	return req
}

// TestScheduleWrapsErrNoFeasibleServer: the historical fail-fast contract,
// now with an errors.Is-able class.
func TestScheduleWrapsErrNoFeasibleServer(t *testing.T) {
	req := overcommittedRequest(t, 11)
	err := (&HitScheduler{}).Schedule(req)
	if err == nil {
		t.Fatal("expected failure on an overcommitted cluster")
	}
	if !errors.Is(err, scheduler.ErrNoFeasibleServer) {
		t.Errorf("error = %v, want wrap of scheduler.ErrNoFeasibleServer", err)
	}
}

// TestDegradedModeReportsUnplacedContainers: same overcommitted request,
// degraded mode on — the wave completes, the capacity shortfall lands in
// the report, and everything the cluster could hold is placed and routed.
func TestDegradedModeReportsUnplacedContainers(t *testing.T) {
	req := overcommittedRequest(t, 11)
	req.Degraded = true
	if err := (&HitScheduler{}).Schedule(req); err != nil {
		t.Fatalf("degraded Schedule: %v", err)
	}
	rep := req.Report
	if rep == nil || rep.Clean() {
		t.Fatalf("expected a non-clean report, got %+v", rep)
	}
	if got, want := len(rep.UnplacedContainers), 2; got != want {
		t.Errorf("UnplacedContainers = %d, want %d (6 containers, 4 slots)", got, want)
	}
	unplaced := make(map[cluster.ContainerID]bool)
	for _, c := range rep.UnplacedContainers {
		unplaced[c] = true
	}
	placed := 0
	for _, task := range req.Tasks {
		if req.Cluster.Container(task.Container).Placed() {
			placed++
		} else if !unplaced[task.Container] {
			t.Errorf("container %d unplaced but not reported", task.Container)
		}
	}
	if placed != 4 {
		t.Errorf("placed %d containers, want 4", placed)
	}
	// Every flow either has an installed policy or is reported unroutable.
	unroutable := 0
	reported := make(map[flow.ID]bool)
	for _, id := range rep.UnroutableFlows {
		reported[id] = true
	}
	for _, f := range req.Flows {
		p := req.Controller.Policy(f.ID)
		switch {
		case p != nil && reported[f.ID]:
			t.Errorf("flow %d both routed and reported unroutable", f.ID)
		case p == nil && !reported[f.ID]:
			t.Errorf("flow %d has no policy and is not reported", f.ID)
		case p == nil:
			unroutable++
		}
	}
	if unroutable == 0 {
		t.Error("expected some unroutable flows (dropped endpoints)")
	}
}

// TestDegradedModeReportsUnroutableFlows saturates the fabric (switch
// capacity below every flow rate) so placement succeeds but no cross-server
// flow is routable.
func TestDegradedModeReportsUnroutableFlows(t *testing.T) {
	topo, err := topology.NewTree(2, 2, topology.LinkParams{Bandwidth: 1, SwitchCapacity: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(topo, cluster.Resources{CPU: 2, Memory: 8192})
	if err != nil {
		t.Fatal(err)
	}
	ctl := controller.New(topo)
	req, _ := buildRequest(t, cl, ctl, []*workload.Job{uniformJob(t, 1, 2, 2, 3)}, 5)
	req.Degraded = true
	if err := (&HitScheduler{}).Schedule(req); err != nil {
		t.Fatalf("degraded Schedule: %v", err)
	}
	for _, task := range req.Tasks {
		if !req.Cluster.Container(task.Container).Placed() {
			t.Errorf("container %d unplaced", task.Container)
		}
	}
	rep := req.Report
	reported := make(map[flow.ID]bool)
	for _, id := range rep.UnroutableFlows {
		reported[id] = true
	}
	for _, f := range req.Flows {
		p := req.Controller.Policy(f.ID)
		if p == nil && !reported[f.ID] {
			t.Errorf("flow %d has no policy and is not reported unroutable", f.ID)
		}
		if p != nil && len(p.List) > 0 {
			// Routable flows here can only be same-server (empty policy).
			t.Errorf("flow %d got a cross-server route on a saturated fabric", f.ID)
		}
	}
}

// TestDegradedModeNoFaultBitIdentical: with a feasible request, degraded
// mode must not change a single RNG draw or placement — the flag only buys
// a different failure behavior, never a different success.
func TestDegradedModeNoFaultBitIdentical(t *testing.T) {
	run := func(degraded bool) (float64, map[cluster.ContainerID]topology.NodeID) {
		cl, ctl := testEnv(t, 2, 3, cluster.Resources{CPU: 2, Memory: 8192})
		req, _ := buildRequest(t, cl, ctl, []*workload.Job{uniformJob(t, 1, 6, 3, 1)}, 42)
		req.Degraded = degraded
		if err := (&HitScheduler{}).Schedule(req); err != nil {
			t.Fatal(err)
		}
		if degraded && !req.Report.Clean() {
			t.Fatalf("feasible request degraded: %+v", req.Report)
		}
		where := make(map[cluster.ContainerID]topology.NodeID)
		for _, task := range req.Tasks {
			where[task.Container] = req.Cluster.Container(task.Container).Server()
		}
		return totalCost(t, req), where
	}
	costA, whereA := run(false)
	costB, whereB := run(true)
	if math.Float64bits(costA) != math.Float64bits(costB) {
		t.Errorf("cost differs: plain %v degraded %v", costA, costB)
	}
	for c, s := range whereA {
		if whereB[c] != s {
			t.Errorf("container %d: plain server %d, degraded server %d", c, s, whereB[c])
		}
	}
}
