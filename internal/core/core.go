// Package core implements the paper's primary contribution: Hit-Scheduler,
// the Hierarchical-topology-aware MapReduce scheduler that jointly optimizes
// task assignment and network policy to minimize total shuffle traffic cost
// (the TAA problem of §3–4).
//
// The solution follows §5's separated optimization strategy:
//
//  1. Every flow starts from a random placement and a random policy.
//  2. Policy optimization (Algorithm 1) finds each flow's minimum-cost typed
//     switch route given current placements, and — by also exploring the
//     candidate servers of both endpoint containers (Figure 5's layered
//     flow-path graph) — accumulates a preference matrix P(server,
//     container) grading how much each server wants each container.
//  3. Task assignment (Algorithm 2) runs a modified many-to-one Gale–Shapley
//     matching between containers (ranking servers by the utility of moving
//     there, Eq. 10) and servers (ranking containers by the preference
//     matrix), respecting server capacities.
//  4. Policies are re-optimized for the new placement; the loop repeats
//     until the total cost stops improving.
//
// Wave structure (§5.3): when every Reduce container is already fixed (maps
// arriving in later waves), the scheduler switches to the greedy O(n²)
// subsequent-wave strategy: heaviest shuffle producers are paired with the
// lowest-delay feasible servers.
package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/flow"
	"repro/internal/parallel"
	"repro/internal/scheduler"
	"repro/internal/stablematch"
	"repro/internal/topology"
	"repro/internal/workload"
)

// HitScheduler implements scheduler.Scheduler with the paper's joint
// optimization. The zero value uses the defaults below; the ablation fields
// turn individual mechanisms off for the design-choice benchmarks.
type HitScheduler struct {
	// MaxIterations bounds the joint policy/assignment rounds. Zero selects
	// the default of 4; negative values are rejected by Schedule.
	MaxIterations int
	// Epsilon is the relative cost-improvement threshold below which the
	// loop stops. Zero selects the default of 1e-6; negative values are
	// rejected by Schedule.
	Epsilon float64
	// DisablePolicyOpt skips Algorithm 1's per-flow route optimization
	// (policies stay on their initial random routes). Ablation only.
	DisablePolicyOpt bool
	// DisableStableMatching replaces Algorithm 2 with per-container greedy
	// best-utility moves. Ablation only.
	DisableStableMatching bool
	// DisableIncremental turns off the dirty-set reuse across joint
	// iterations: every round then re-solves Algorithm 1 for every flow and
	// rebuilds every preference row from scratch. Results are bit-identical
	// either way (the incremental path only skips work it can prove is a
	// no-op), so this switch exists for parity tests and perf comparison.
	DisableIncremental bool
}

// Name implements scheduler.Scheduler.
func (h *HitScheduler) Name() string { return "hit" }

func (h *HitScheduler) maxIterations() int {
	if h.MaxIterations <= 0 {
		return 4
	}
	return h.MaxIterations
}

func (h *HitScheduler) epsilon() float64 {
	if h.Epsilon <= 0 {
		return 1e-6
	}
	return h.Epsilon
}

// incremental reports whether the dirty-set reuse is active. It is off
// under DisablePolicyOpt too: that ablation reinstalls random policies, and
// skipping any of those draws would shift the shared RNG stream.
func (h *HitScheduler) incremental() bool {
	return !h.DisableIncremental && !h.DisablePolicyOpt
}

// Schedule implements scheduler.Scheduler. Negative MaxIterations or
// Epsilon are configuration errors and are rejected up front; zero values
// select the documented defaults (4 iterations, 1e-6).
func (h *HitScheduler) Schedule(req *scheduler.Request) error {
	if h.MaxIterations < 0 {
		return fmt.Errorf("core: HitScheduler.MaxIterations must be non-negative, got %d (zero selects the default of 4)", h.MaxIterations)
	}
	if h.Epsilon < 0 {
		return fmt.Errorf("core: HitScheduler.Epsilon must be non-negative, got %g (zero selects the default of 1e-6)", h.Epsilon)
	}
	if err := req.Validate(); err != nil {
		return err
	}
	movable := h.movableTasks(req)
	flows := req.Flows

	var report *scheduler.ScheduleReport
	if req.Degraded {
		report = req.Report
		if report == nil {
			report = &scheduler.ScheduleReport{}
			req.Report = report
		}
	}

	// §5.3.1: random initial assignment for every unplaced container. In
	// degraded mode a container with no feasible server is reported and
	// skipped (with its flows) instead of aborting the wave.
	dropped := make(map[cluster.ContainerID]bool)
	for _, t := range movable {
		if req.Cluster.Container(t.Container).Placed() {
			continue
		}
		cands := req.Cluster.Candidates(t.Container)
		if len(cands) == 0 {
			if report != nil {
				report.UnplacedContainers = append(report.UnplacedContainers, t.Container)
				dropped[t.Container] = true
				continue
			}
			return fmt.Errorf("core: %w for container %d", scheduler.ErrNoFeasibleServer, t.Container)
		}
		if err := req.Cluster.Place(t.Container, cands[req.Rand.Intn(len(cands))]); err != nil {
			return err
		}
	}
	if len(dropped) > 0 {
		kept := movable[:0:0]
		for _, t := range movable {
			if !dropped[t.Container] {
				kept = append(kept, t)
			}
		}
		movable = kept
	}

	// Initial random policies (the paper's starting state for Algorithm 1).
	// In degraded mode an unroutable flow — no feasible switch or route, or
	// an endpoint left unplaced above — is reported and excluded from the
	// round's working set.
	loc := req.Locator()
	if report != nil {
		kept := flows[:0:0]
		for _, f := range flows {
			if loc.ServerOf(f.Src) == topology.None || loc.ServerOf(f.Dst) == topology.None {
				report.UnroutableFlows = append(report.UnroutableFlows, f.ID)
				continue
			}
			kept = append(kept, f)
		}
		flows = kept
	}
	routable := flows[:0:0]
	for _, f := range flows {
		p, err := req.Controller.RandomPolicy(f, loc, req.Rand)
		if err != nil {
			if report != nil && (errors.Is(err, controller.ErrNoFeasibleSwitch) || errors.Is(err, controller.ErrNoFeasibleRoute)) {
				report.UnroutableFlows = append(report.UnroutableFlows, f.ID)
				continue
			}
			return err
		}
		if err := req.Controller.Install(f, p); err != nil {
			return fmt.Errorf("core: initial policy for flow %d: %w", f.ID, err)
		}
		routable = append(routable, f)
	}
	flows = routable

	if h.isSubsequentWave(req, movable, flows) {
		return h.scheduleSubsequentWave(req, movable, flows)
	}
	return h.scheduleInitialWave(req, movable, flows)
}

// movableTasks returns the tasks whose containers this round may move.
func (h *HitScheduler) movableTasks(req *scheduler.Request) []scheduler.Task {
	var out []scheduler.Task
	for _, t := range req.Tasks {
		if !req.Fixed[t.Container] {
			out = append(out, t)
		}
	}
	return out
}

// isSubsequentWave reports whether this request matches §5.3.2: every
// movable task is a Map, and at least one flow terminates at a fixed
// (already placed) Reduce container.
func (h *HitScheduler) isSubsequentWave(req *scheduler.Request, movable []scheduler.Task, flows []*flow.Flow) bool {
	if len(movable) == 0 || len(req.Fixed) == 0 {
		return false
	}
	for _, t := range movable {
		if t.Kind != workload.MapTask {
			return false
		}
	}
	anyFixedDst := false
	for _, f := range flows {
		if req.Fixed[f.Dst] {
			anyFixedDst = true
			break
		}
	}
	return anyFixedDst
}

// flowSolve records one flow's most recent Algorithm-1 solve within a
// Schedule call: the solve's output policy (whether or not it was adopted),
// whether the solve ran over unfiltered stage lists, and the endpoint
// servers it saw. These are exactly the inputs cleanFlow needs to prove a
// re-solve would reproduce the same result bit for bit.
type flowSolve struct {
	policy   *flow.Policy
	full     bool
	src, dst topology.NodeID
}

// prefRow memoizes one container's preference build in assignGroup: the
// inputs it was derived from (original server, feasible server set,
// anchored peer servers per incident flow) and the derived outputs. When
// the inputs recur unchanged in a later iteration, the outputs are reused
// verbatim — containers untouched by the previous round's matching cost
// nothing to re-rank.
type prefRow struct {
	orig      topology.NodeID
	feasible  []int
	peerSrv   []topology.NodeID
	propPrefs []int
	votes     []int
}

// runState is the dirty-set bookkeeping for ONE Schedule call. It lives on
// the stack of the call, never on the HitScheduler, so a scheduler value
// can be reused across requests (and concurrently) exactly as before.
type runState struct {
	solves map[flow.ID]*flowSolve
	prefs  map[cluster.ContainerID]*prefRow
}

func newRunState() *runState {
	return &runState{
		solves: make(map[flow.ID]*flowSolve),
		prefs:  make(map[cluster.ContainerID]*prefRow),
	}
}

// record stores the outcome of an Algorithm-1 solve for f.
func (st *runState) record(f *flow.Flow, loc flow.Locator, p *flow.Policy, info controller.SolveInfo) {
	if p == nil {
		return
	}
	st.solves[f.ID] = &flowSolve{
		policy: p,
		full:   info.FullStages,
		src:    loc.ServerOf(f.Src),
		dst:    loc.ServerOf(f.Dst),
	}
}

// cleanFlow reports whether re-running Algorithm 1 for f is provably a
// no-op this instant: the last solve this run used unfiltered stage lists,
// both endpoints still sit on the servers that solve saw, and the fabric
// currently has headroom for f.Rate on every switch — so a fresh solve
// would see identical unfiltered stages and return the identical route,
// and OptimizeInstalled would decline to act exactly as it did before.
// Segment cost being load-independent (Eq. 2) is what makes the proof go
// through: load changes can only alter a solve through the feasibility
// filter, which FitsEverywhere shows is inert for this rate.
func (st *runState) cleanFlow(req *scheduler.Request, f *flow.Flow, loc flow.Locator) bool {
	rec := st.solves[f.ID]
	if rec == nil || !rec.full {
		return false
	}
	if loc.ServerOf(f.Src) != rec.src || loc.ServerOf(f.Dst) != rec.dst {
		return false
	}
	return req.Controller.FitsEverywhere(f.Rate)
}

// scheduleInitialWave runs the full joint optimization loop over the
// round's working flow set (req.Flows minus any degraded-mode exclusions).
func (h *HitScheduler) scheduleInitialWave(req *scheduler.Request, movable []scheduler.Task, flows []*flow.Flow) error {
	loc := req.Locator()
	st := newRunState()
	best, err := req.Controller.TotalCost(flows, loc)
	if err != nil {
		return err
	}
	bestSnap := req.Cluster.Snapshot()

	for iter := 0; iter < h.maxIterations(); iter++ {
		// Phase 1 — network policy optimization (Algorithm 1 per flow).
		// From iteration 2 on, flows whose endpoints the matching did not
		// move (and whose last solve was over unfiltered stages, still
		// unfiltered now) are clean: re-solving is a proven no-op, so the
		// sweep touches only the dirty set.
		if !h.DisablePolicyOpt {
			for _, f := range flows {
				if h.incremental() && st.cleanFlow(req, f, loc) {
					continue
				}
				_, opt, info, err := req.Controller.OptimizeInstalledDetailed(f, loc)
				if err != nil {
					return err
				}
				st.record(f, loc, opt, info)
			}
		}

		// Phase 2 — task assignment via preference matrix + stable matching
		// (Algorithm 2).
		if err := h.assign(req, movable, flows, loc, st); err != nil {
			return err
		}

		// Phase 3 — policies must follow the new placement (type templates
		// change when endpoints move racks).
		if err := h.reinstallPolicies(req, flows, loc, st); err != nil {
			return err
		}

		cost, err := req.Controller.TotalCost(flows, loc)
		if err != nil {
			return err
		}
		if cost < best*(1-h.epsilon()) {
			best = cost
			bestSnap = req.Cluster.Snapshot()
			continue
		}
		// No material improvement: restore the best placement seen and stop.
		// Restoring moves endpoints, which cleanFlow detects per flow by
		// comparing servers — no explicit invalidation needed.
		if cost > best {
			if err := req.Cluster.Restore(bestSnap); err != nil {
				return err
			}
			if err := h.reinstallPolicies(req, flows, loc, st); err != nil {
				return err
			}
		}
		break
	}
	return nil
}

// reinstallPolicies recomputes and installs the best policy for every flow
// under the current placement. With policy optimization disabled it installs
// fresh random policies matching the (possibly new) type templates. Clean
// flows (cleanFlow) reinstall their recorded solve output without paying
// for the DP again; the uninstall/install sequence itself always runs in
// full flow order, so switch loads accumulate in the historical order.
func (h *HitScheduler) reinstallPolicies(req *scheduler.Request, flows []*flow.Flow, loc flow.Locator, st *runState) error {
	// Release the old routes first: stale switch loads from pre-move policies
	// must not make the post-move optimum look infeasible.
	for _, f := range flows {
		req.Controller.Uninstall(f.ID)
	}
	for _, f := range flows {
		var p *flow.Policy
		var err error
		switch {
		case h.DisablePolicyOpt:
			p, err = req.Controller.RandomPolicy(f, loc, req.Rand)
		case h.incremental() && st.cleanFlow(req, f, loc):
			p = st.solves[f.ID].policy
		default:
			var info controller.SolveInfo
			p, info, err = req.Controller.OptimizePolicyDetailed(f, loc)
			if err == nil {
				st.record(f, loc, p, info)
			}
		}
		if err != nil {
			return err
		}
		if err := req.Controller.Install(f, p); err != nil {
			return fmt.Errorf("core: reinstall flow %d: %w", f.ID, err)
		}
	}
	return nil
}

// prefEntry orders container/server preference pairs.
type prefEntry struct {
	idx   int
	grade float64
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalNodeIDs(a, b []topology.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assign performs one round of the Tasks Assignment Algorithm (Algorithm 2).
//
// Map and Reduce containers are matched in alternating sub-rounds — reduces
// first (shuffle destinations chase their sources), then maps. Within a
// sub-round every flow endpoint outside the group is anchored at its current
// server, which makes each group member's cost independent of its peers'
// simultaneous moves: exactly the independence §5.1.3's separability argument
// licenses, turned into coordinate descent. Utilities assume the flow's
// route is re-optimized after the move (the paper's grades "will be updated
// when rescheduling a new routing path"), so they reduce to rate ×
// hop-distance deltas against the anchored peer.
func (h *HitScheduler) assign(req *scheduler.Request, movable []scheduler.Task, flows []*flow.Flow, loc flow.Locator, st *runState) error {
	var reduces, maps []scheduler.Task
	for _, t := range movable {
		if t.Kind == workload.ReduceTask {
			reduces = append(reduces, t)
		} else {
			maps = append(maps, t)
		}
	}
	for _, group := range [][]scheduler.Task{reduces, maps} {
		if len(group) == 0 {
			continue
		}
		if err := h.assignGroup(req, group, flows, loc, st); err != nil {
			return err
		}
	}
	return nil
}

// parallelThreshold is the preference-matrix work size (containers ×
// servers) above which assignGroup fans out across containers. Small groups
// stay sequential: goroutine fan-out costs more than the loops it saves.
const parallelThreshold = 4096

// assignGroup matches one kind-homogeneous container group onto servers.
func (h *HitScheduler) assignGroup(req *scheduler.Request, group []scheduler.Task, flows []*flow.Flow, loc flow.Locator, st *runState) error {
	servers := req.Cluster.Servers()
	serverIdx := make(map[topology.NodeID]int, len(servers))
	for i, s := range servers {
		serverIdx[s] = i
	}
	containers := make([]cluster.ContainerID, len(group))
	for i, t := range group {
		containers[i] = t.Container
	}
	oracle := req.Controller.Oracle()

	// Incident flows and anchored peer servers per container.
	incident := make([][]*flow.Flow, len(containers))
	peerSrv := make([][]topology.NodeID, len(containers))
	for i, c := range containers {
		for _, f := range flow.IncidentFlows(c, flows) {
			peer := f.Src
			if peer == c {
				peer = f.Dst
			}
			ps := loc.ServerOf(peer)
			if ps == topology.None {
				continue
			}
			incident[i] = append(incident[i], f)
			peerSrv[i] = append(peerSrv[i], ps)
		}
	}

	// Release the whole group's demand before computing feasibility, so that
	// pairwise exchanges between otherwise-full servers stay reachable — the
	// matching, not the incumbent placement, decides who lands where.
	original := make(map[cluster.ContainerID]topology.NodeID, len(containers))
	for _, c := range containers {
		original[c] = req.Cluster.Container(c).Server()
		if err := req.Cluster.Unplace(c); err != nil {
			return err
		}
	}

	// Per-container preference build (Algorithm 1's preference-matrix rows
	// plus Eq. 10 proposer rankings). Every container's pass writes only its
	// own index, so the fan-out is deterministic: results are identical to
	// the sequential loop regardless of worker count, and the merge into the
	// grade matrix below happens column-by-column with no shared writes.
	// The cluster is only read (CanHost) between the Unplace above and the
	// Place calls below, so concurrent reads are safe. st.prefs is read
	// concurrently here and written only after the fan-out returns.
	//
	// Within a container's pass, incident flows are grouped by anchored peer
	// server: one distance row and one nearest-feasible vote per DISTINCT
	// peer server serves every flow anchored there, so the per-container
	// work scales with distinct endpoint pairs rather than flows. Cost sums
	// still accumulate in flow order, keeping the floats bit-identical to
	// the ungrouped loop.
	useMemo := h.incremental()
	feasible := make([][]int, len(containers))
	propPrefs := make([][]int, len(containers))
	votes := make([][]int, len(containers)) // per incident flow: voted server index, -1 = none
	rows := make([]*prefRow, len(containers))
	workers := 0
	if len(containers)*len(servers) < parallelThreshold {
		workers = 1
	}
	// Every write below is addressed by ci (taalint mergeorder contract):
	// workers own disjoint slots, so the merge order is the index order.
	err := parallel.ForEach(len(containers), workers, func(ci int) error {
		c := containers[ci]
		var feas []int
		for si, s := range servers {
			if req.Cluster.CanHost(s, c) {
				feas = append(feas, si)
			}
		}
		if len(feas) == 0 {
			return fmt.Errorf("core: %w for container %d", scheduler.ErrNoFeasibleServer, c)
		}
		feasible[ci] = feas

		// Dirty check: a container whose original server, feasible set, and
		// anchored peers all recur from the previous round would rebuild the
		// exact same row — reuse it.
		if useMemo {
			if prev := st.prefs[c]; prev != nil && prev.orig == original[c] &&
				equalInts(prev.feasible, feas) && equalNodeIDs(prev.peerSrv, peerSrv[ci]) {
				propPrefs[ci] = prev.propPrefs
				votes[ci] = prev.votes
				rows[ci] = prev
				return nil
			}
		}

		// Distinct anchored peer servers in first-appearance order;
		// peerOf[k] indexes the per-peer tables for incident flow k.
		distinct := make([]topology.NodeID, 0, len(peerSrv[ci]))
		peerIdx := make(map[topology.NodeID]int, len(peerSrv[ci]))
		peerOf := make([]int, len(peerSrv[ci]))
		for k, ps := range peerSrv[ci] {
			pi, ok := peerIdx[ps]
			if !ok {
				pi = len(distinct)
				peerIdx[ps] = pi
				distinct = append(distinct, ps)
			}
			peerOf[k] = pi
		}
		rowOf := make([][]int32, len(distinct))
		for pi, ps := range distinct {
			rowOf[pi] = oracle.DistRow(ps)
		}

		// Anchored re-routed cost of hosting this container on server s:
		// Σ rate × dist(peer, s) — the flow cost after Algorithm 1
		// re-optimizes the route for the new endpoint. Accumulated in flow
		// order over the prefetched rows.
		anchored := func(s topology.NodeID) float64 {
			var cost float64
			for k, f := range incident[ci] {
				d := rowOf[peerOf[k]][s]
				if d < 0 {
					continue
				}
				cost += f.Rate * float64(d)
			}
			return cost
		}

		// Proposer preferences: servers by utility (Eq. 10) = current cost
		// minus candidate cost, descending.
		curCost := anchored(original[c])
		entries := make([]prefEntry, 0, len(feas))
		for _, si := range feas {
			entries = append(entries, prefEntry{idx: si, grade: curCost - anchored(servers[si])})
		}
		sort.SliceStable(entries, func(a, b int) bool { return entries[a].grade > entries[b].grade })
		prop := make([]int, len(entries))
		for k, e := range entries {
			prop[k] = e.idx
		}
		propPrefs[ci] = prop

		// Preference-matrix votes (Algorithm 1 lines 11–13): every flow
		// votes its rate onto the feasible server nearest its anchored peer
		// — the endpoint of the flow's optimal path in Figure 5's layered
		// graph. The vote is a function of the peer server alone, so it is
		// computed once per distinct peer and fanned out to the flows.
		cands := make([]topology.NodeID, len(feas))
		for k, si := range feas {
			cands[k] = servers[si]
		}
		voteOf := make([]int, len(distinct))
		for pi, ps := range distinct {
			best := oracle.NearestByDist(ps, cands)
			if best == topology.None {
				voteOf[pi] = -1
				continue
			}
			voteOf[pi] = serverIdx[best]
		}
		vts := make([]int, len(incident[ci]))
		for k := range incident[ci] {
			vts[k] = voteOf[peerOf[k]]
		}
		votes[ci] = vts

		if useMemo {
			rows[ci] = &prefRow{
				orig:      original[c],
				feasible:  feas,
				peerSrv:   peerSrv[ci],
				propPrefs: prop,
				votes:     vts,
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if useMemo {
		for ci, c := range containers {
			if rows[ci] != nil {
				st.prefs[c] = rows[ci]
			}
		}
	}

	// Deterministic merge of the votes into the host-preference grades.
	grades := make([][]float64, len(servers))
	for i := range grades {
		grades[i] = make([]float64, len(containers))
	}
	for ci := range containers {
		for k, f := range incident[ci] {
			if si := votes[ci][k]; si >= 0 {
				grades[si][ci] += f.Rate
			}
		}
	}
	hostPrefs := make([][]int, len(servers))
	for si := range servers {
		entries := make([]prefEntry, 0, len(containers))
		for ci := range containers {
			entries = append(entries, prefEntry{idx: ci, grade: grades[si][ci]})
		}
		sort.SliceStable(entries, func(a, b int) bool { return entries[a].grade > entries[b].grade })
		hostPrefs[si] = make([]int, len(entries))
		for k, e := range entries {
			hostPrefs[si][k] = e.idx
		}
	}

	// CPU is the binding capacity dimension for the matching.
	capacity := make([]float64, len(servers))
	for si, s := range servers {
		capacity[si] = float64(req.Cluster.Free(s).CPU)
	}
	loads := make([]float64, len(containers))
	for ci, c := range containers {
		loads[ci] = float64(req.Cluster.Container(c).Demand.CPU)
		if loads[ci] <= 0 {
			loads[ci] = 1 // zero-CPU containers still occupy a scheduling slot
		}
	}

	place := func(c cluster.ContainerID, s topology.NodeID) error {
		if s != topology.None {
			if err := req.Cluster.Place(c, s); err == nil {
				return nil
			}
		}
		// Memory (the unmodeled dimension) blocked the slot: fall back to the
		// original server, then any feasible one.
		if orig := original[c]; orig != topology.None && orig != s {
			if err := req.Cluster.Place(c, orig); err == nil {
				return nil
			}
		}
		for _, alt := range req.Cluster.Candidates(c) {
			if err := req.Cluster.Place(c, alt); err == nil {
				return nil
			}
		}
		return fmt.Errorf("core: %w for container %d after matching", scheduler.ErrNoFeasibleServer, c)
	}

	if h.DisableStableMatching {
		// Ablation: greedy sequential best-utility placement.
		for ci, c := range containers {
			placed := false
			for _, si := range propPrefs[ci] {
				if req.Cluster.CanHost(servers[si], c) {
					if err := req.Cluster.Place(c, servers[si]); err == nil {
						placed = true
						break
					}
				}
			}
			if !placed {
				if err := place(c, original[c]); err != nil {
					return err
				}
			}
		}
		return nil
	}

	res, err := stablematch.Match(&stablematch.Instance{
		NumProposers:  len(containers),
		NumHosts:      len(servers),
		ProposerPrefs: propPrefs,
		HostPrefs:     hostPrefs,
		Load:          loads,
		Capacity:      capacity,
	})
	if err != nil {
		return err
	}
	for ci, hostIdx := range res.HostOf {
		c := containers[ci]
		target := original[c]
		if hostIdx != stablematch.Unmatched {
			target = servers[hostIdx]
		}
		if err := place(c, target); err != nil {
			return err
		}
	}
	return nil
}

// scheduleSubsequentWave implements §5.3.2: reduce placements are fixed, so
// each shuffle flow's destination is static; maps are placed greedily in
// descending shuffle-output order onto the feasible server with the lowest
// added communication delay, then policies are optimized.
func (h *HitScheduler) scheduleSubsequentWave(req *scheduler.Request, movable []scheduler.Task, flows []*flow.Flow) error {
	loc := req.Locator()
	tasks := append([]scheduler.Task(nil), movable...)
	scheduler.SortTasksByShuffleOutput(tasks)
	oracle := req.Controller.Oracle()

	for _, t := range tasks {
		c := t.Container
		incident := flow.IncidentFlows(c, flows)
		best := topology.None
		bestCost := 0.0
		for _, s := range req.Cluster.Candidates(c) {
			var cost float64
			for _, f := range incident {
				var peer cluster.ContainerID
				if f.Src == c {
					peer = f.Dst
				} else {
					peer = f.Src
				}
				ps := loc.ServerOf(peer)
				if ps == topology.None {
					continue
				}
				d := oracle.Dist(s, ps)
				if d < 0 {
					continue
				}
				cost += f.Rate * float64(d)
			}
			if best == topology.None || cost < bestCost {
				best, bestCost = s, cost
			}
		}
		if best == topology.None {
			return fmt.Errorf("core: %w for map container %d", scheduler.ErrNoFeasibleServer, c)
		}
		// The container was randomly placed during initialization; move it.
		if err := req.Cluster.Place(c, best); err != nil {
			return err
		}
	}
	return h.reinstallPolicies(req, flows, loc, newRunState())
}
