// Package core implements the paper's primary contribution: Hit-Scheduler,
// the Hierarchical-topology-aware MapReduce scheduler that jointly optimizes
// task assignment and network policy to minimize total shuffle traffic cost
// (the TAA problem of §3–4).
//
// The solution follows §5's separated optimization strategy:
//
//  1. Every flow starts from a random placement and a random policy.
//  2. Policy optimization (Algorithm 1) finds each flow's minimum-cost typed
//     switch route given current placements, and — by also exploring the
//     candidate servers of both endpoint containers (Figure 5's layered
//     flow-path graph) — accumulates a preference matrix P(server,
//     container) grading how much each server wants each container.
//  3. Task assignment (Algorithm 2) runs a modified many-to-one Gale–Shapley
//     matching between containers (ranking servers by the utility of moving
//     there, Eq. 10) and servers (ranking containers by the preference
//     matrix), respecting server capacities.
//  4. Policies are re-optimized for the new placement; the loop repeats
//     until the total cost stops improving.
//
// Wave structure (§5.3): when every Reduce container is already fixed (maps
// arriving in later waves), the scheduler switches to the greedy O(n²)
// subsequent-wave strategy: heaviest shuffle producers are paired with the
// lowest-delay feasible servers.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/flow"
	"repro/internal/multisched"
	"repro/internal/parallel"
	"repro/internal/scheduler"
	"repro/internal/stablematch"
	"repro/internal/supervise"
	"repro/internal/topology"
	"repro/internal/workload"
)

// HitScheduler implements scheduler.Scheduler with the paper's joint
// optimization. The zero value uses the defaults below; the ablation fields
// turn individual mechanisms off for the design-choice benchmarks.
type HitScheduler struct {
	// MaxIterations bounds the joint policy/assignment rounds. Zero selects
	// the default of 4; negative values are rejected by Schedule.
	MaxIterations int
	// Epsilon is the relative cost-improvement threshold below which the
	// loop stops. Zero selects the default of 1e-6; negative values are
	// rejected by Schedule.
	Epsilon float64
	// DisablePolicyOpt skips Algorithm 1's per-flow route optimization
	// (policies stay on their initial random routes). Ablation only.
	DisablePolicyOpt bool
	// DisableStableMatching replaces Algorithm 2 with per-container greedy
	// best-utility moves. Ablation only.
	DisableStableMatching bool
	// DisableIncremental turns off the dirty-set reuse across joint
	// iterations: every round then re-solves Algorithm 1 for every flow and
	// rebuilds every preference row from scratch. Results are bit-identical
	// either way (the incremental path only skips work it can prove is a
	// no-op), so this switch exists for parity tests and perf comparison.
	DisableIncremental bool
	// Shards > 1 runs the wave through the sharded optimistic scheduler
	// (internal/multisched): candidate scans, Algorithm-1 presolves and the
	// preference build fan out over up to Shards goroutines organized by
	// topology cell, and a deterministic arbiter commits in sequential flow
	// order. Output is Float64bits-identical to Shards <= 1 at any shard
	// count (DESIGN.md §10); with Shards <= 1 the sequential code paths run
	// byte-for-byte unchanged.
	Shards int
	// Workers caps the fan-out of the parallel inner phases (preference
	// build, stable-match validation). Zero derives the cap from Shards
	// when sharded, else from GOMAXPROCS exactly as before — set it only
	// to keep a sharded scheduler from oversubscribing shared cores.
	Workers int
	// Supervisor, when non-nil, is the resilience runtime threaded through
	// the sharded service (internal/supervise): panic isolation, operation
	// budgets, conflict-storm degradation, and — for the chaos harness —
	// deterministic scheduler-internal fault injection. Sharing one
	// Supervisor across Schedule calls lets its hysteresis span waves;
	// nil gives each Schedule call a fresh default supervisor. Sequential
	// runs (Shards <= 1) never consult it. Under every supervised failure
	// mode the output stays Float64bits-identical to sequential — the
	// supervisor only ever redirects flows onto the sequential replay
	// path, never changes a value.
	Supervisor *supervise.Supervisor
}

// fanout resolves the inner-phase worker cap: an explicit Workers wins,
// a sharded run reuses its shard budget, and the sequential default (0,
// meaning GOMAXPROCS inside parallel.ForEach) stays as it always was.
func (h *HitScheduler) fanout() int {
	if h.Workers > 0 {
		return h.Workers
	}
	if h.Shards > 1 {
		return h.Shards
	}
	return 0
}

// Name implements scheduler.Scheduler.
func (h *HitScheduler) Name() string { return "hit" }

func (h *HitScheduler) maxIterations() int {
	if h.MaxIterations <= 0 {
		return 4
	}
	return h.MaxIterations
}

func (h *HitScheduler) epsilon() float64 {
	if h.Epsilon <= 0 {
		return 1e-6
	}
	return h.Epsilon
}

// incremental reports whether the dirty-set reuse is active. It is off
// under DisablePolicyOpt too: that ablation reinstalls random policies, and
// skipping any of those draws would shift the shared RNG stream.
func (h *HitScheduler) incremental() bool {
	return !h.DisableIncremental && !h.DisablePolicyOpt
}

// Schedule implements scheduler.Scheduler. Negative MaxIterations or
// Epsilon are configuration errors and are rejected up front; zero values
// select the documented defaults (4 iterations, 1e-6).
func (h *HitScheduler) Schedule(req *scheduler.Request) error {
	if h.MaxIterations < 0 {
		return fmt.Errorf("core: HitScheduler.MaxIterations must be non-negative, got %d (zero selects the default of 4)", h.MaxIterations)
	}
	if h.Epsilon < 0 {
		return fmt.Errorf("core: HitScheduler.Epsilon must be non-negative, got %g (zero selects the default of 1e-6)", h.Epsilon)
	}
	if err := req.Validate(); err != nil {
		return err
	}
	movable := h.movableTasks(req)
	flows := req.Flows

	// The sharded service (nil when Shards <= 1, which leaves every
	// sequential code path below byte-for-byte untouched).
	var ms *multisched.Service
	if h.Shards > 1 {
		ms = multisched.NewSupervised(req.Controller, req.Cluster, h.Shards, h.Supervisor)
	}

	var report *scheduler.ScheduleReport
	if req.Degraded {
		report = req.Report
		if report == nil {
			report = &scheduler.ScheduleReport{}
			req.Report = report
		}
	}

	// §5.3.1: random initial assignment for every unplaced container. In
	// degraded mode a container with no feasible server is reported and
	// skipped (with its flows) instead of aborting the wave.
	dropped := make(map[cluster.ContainerID]bool)
	if ms != nil {
		if err := h.placeInitialSharded(ms, req, movable, report, dropped); err != nil {
			return err
		}
	} else {
		var candBuf []topology.NodeID
		for _, t := range movable {
			if req.Cluster.Container(t.Container).Placed() {
				continue
			}
			cands := req.Cluster.AppendCandidates(candBuf[:0], t.Container)
			candBuf = cands
			if len(cands) == 0 {
				if report != nil {
					report.UnplacedContainers = append(report.UnplacedContainers, t.Container)
					dropped[t.Container] = true
					continue
				}
				return fmt.Errorf("core: %w for container %d", scheduler.ErrNoFeasibleServer, t.Container)
			}
			if err := req.Cluster.Place(t.Container, cands[req.Rand.Intn(len(cands))]); err != nil {
				return err
			}
		}
	}
	if len(dropped) > 0 {
		kept := movable[:0:0]
		for _, t := range movable {
			if !dropped[t.Container] {
				kept = append(kept, t)
			}
		}
		movable = kept
	}

	// Initial random policies (the paper's starting state for Algorithm 1).
	// In degraded mode an unroutable flow — no feasible switch or route, or
	// an endpoint left unplaced above — is reported and excluded from the
	// round's working set.
	loc := req.Locator()
	if report != nil {
		kept := flows[:0:0]
		for _, f := range flows {
			if loc.ServerOf(f.Src) == topology.None || loc.ServerOf(f.Dst) == topology.None {
				report.UnroutableFlows = append(report.UnroutableFlows, f.ID)
				continue
			}
			kept = append(kept, f)
		}
		flows = kept
	}
	// Sharded runs pre-warm the oracle's template/stage caches on the
	// shard workers; the sequential draw-and-install loop below then runs
	// against warm caches. Pure reads — results are unchanged.
	if ms != nil {
		ms.WarmTemplates(flows, loc)
	}
	routable := flows[:0:0]
	for _, f := range flows {
		p, err := req.Controller.RandomPolicy(f, loc, req.Rand)
		if err != nil {
			if report != nil && (errors.Is(err, controller.ErrNoFeasibleSwitch) || errors.Is(err, controller.ErrNoFeasibleRoute)) {
				report.UnroutableFlows = append(report.UnroutableFlows, f.ID)
				continue
			}
			return err
		}
		if err := req.Controller.Install(f, p); err != nil {
			return fmt.Errorf("core: initial policy for flow %d: %w", f.ID, err)
		}
		routable = append(routable, f)
	}
	flows = routable

	if h.isSubsequentWave(req, movable, flows) {
		return h.scheduleSubsequentWave(req, movable, flows)
	}
	return h.scheduleInitialWave(ms, req, movable, flows)
}

// movableTasks returns the tasks whose containers this round may move.
func (h *HitScheduler) movableTasks(req *scheduler.Request) []scheduler.Task {
	var out []scheduler.Task
	for _, t := range req.Tasks {
		if !req.Fixed[t.Container] {
			out = append(out, t)
		}
	}
	return out
}

// isSubsequentWave reports whether this request matches §5.3.2: every
// movable task is a Map, and at least one flow terminates at a fixed
// (already placed) Reduce container.
func (h *HitScheduler) isSubsequentWave(req *scheduler.Request, movable []scheduler.Task, flows []*flow.Flow) bool {
	if len(movable) == 0 || len(req.Fixed) == 0 {
		return false
	}
	for _, t := range movable {
		if t.Kind != workload.MapTask {
			return false
		}
	}
	anyFixedDst := false
	for _, f := range flows {
		if req.Fixed[f.Dst] {
			anyFixedDst = true
			break
		}
	}
	return anyFixedDst
}

// flowSolve records one flow's most recent Algorithm-1 solve within a
// Schedule call: the solve's output policy (whether or not it was adopted),
// whether the solve ran over unfiltered stage lists, and the endpoint
// servers it saw. These are exactly the inputs cleanFlow needs to prove a
// re-solve would reproduce the same result bit for bit.
type flowSolve struct {
	policy   *flow.Policy
	full     bool
	src, dst topology.NodeID
}

// prefRow memoizes one container's preference build in assignGroup: the
// inputs it was derived from (original server, feasible server set,
// anchored peer servers per incident flow) and the derived outputs. When
// the inputs recur unchanged in a later iteration, the outputs are reused
// verbatim — containers untouched by the previous round's matching cost
// nothing to re-rank.
type prefRow struct {
	orig      topology.NodeID
	feasible  []int
	peerSrv   []topology.NodeID
	propPrefs []int
	votes     []int
}

// runState is the dirty-set bookkeeping for ONE Schedule call. It lives on
// the stack of the call, never on the HitScheduler, so a scheduler value
// can be reused across requests (and concurrently) exactly as before.
type runState struct {
	solves map[flow.ID]*flowSolve
	prefs  map[cluster.ContainerID]*prefRow
	// matchers holds one slab-reusing stable matcher per container group
	// (reduces, maps): successive iterations of the joint loop re-match the
	// same group, so the dense scratch — and, when nothing changed, the
	// previous matching itself — carries over. Only used when incremental()
	// is on; the DisableIncremental parity path calls stablematch.Match
	// directly every time.
	matchers [2]*stablematch.Matcher
	// rows caches per-peer-server distance rows across assignGroup calls.
	// Rows are pure functions of (topology, liveness), so the cache is keyed
	// by both versions and dropped whole on any change — the structural
	// oracle recomputes a row per DistRow call (that is what keeps ITS
	// footprint O(V)), so this call-scoped memo is what bounds the build at
	// O(distinct peers × V) per Schedule instead of per group per iteration.
	// Incremental-only: the DisableIncremental parity path refetches.
	rows        map[topology.NodeID][]int32
	rowsTopoVer uint64
	rowsLiveVer uint64
}

func newRunState() *runState {
	return &runState{
		solves: make(map[flow.ID]*flowSolve),
		prefs:  make(map[cluster.ContainerID]*prefRow),
	}
}

// record stores the outcome of an Algorithm-1 solve for f.
func (st *runState) record(f *flow.Flow, loc flow.Locator, p *flow.Policy, info controller.SolveInfo) {
	if p == nil {
		return
	}
	st.solves[f.ID] = &flowSolve{
		policy: p,
		full:   info.FullStages,
		src:    loc.ServerOf(f.Src),
		dst:    loc.ServerOf(f.Dst),
	}
}

// cleanFlow reports whether re-running Algorithm 1 for f is provably a
// no-op this instant: the last solve this run used unfiltered stage lists,
// both endpoints still sit on the servers that solve saw, and the fabric
// currently has headroom for f.Rate on every switch — so a fresh solve
// would see identical unfiltered stages and return the identical route,
// and OptimizeInstalled would decline to act exactly as it did before.
// Segment cost being load-independent (Eq. 2) is what makes the proof go
// through: load changes can only alter a solve through the feasibility
// filter, which FitsEverywhere shows is inert for this rate.
func (st *runState) cleanFlow(req *scheduler.Request, f *flow.Flow, loc flow.Locator) bool {
	rec := st.solves[f.ID]
	if rec == nil || !rec.full {
		return false
	}
	if loc.ServerOf(f.Src) != rec.src || loc.ServerOf(f.Dst) != rec.dst {
		return false
	}
	return req.Controller.FitsEverywhere(f.Rate)
}

// scheduleInitialWave runs the full joint optimization loop over the
// round's working flow set (req.Flows minus any degraded-mode exclusions).
// ms is the sharded service, or nil for the sequential path.
func (h *HitScheduler) scheduleInitialWave(ms *multisched.Service, req *scheduler.Request, movable []scheduler.Task, flows []*flow.Flow) error {
	loc := req.Locator()
	st := newRunState()
	best, err := req.Controller.TotalCost(flows, loc)
	if err != nil {
		return err
	}
	bestSnap := req.Cluster.Snapshot()

	for iter := 0; iter < h.maxIterations(); iter++ {
		// Phase 1 — network policy optimization (Algorithm 1 per flow).
		// From iteration 2 on, flows whose endpoints the matching did not
		// move (and whose last solve was over unfiltered stages, still
		// unfiltered now) are clean: re-solving is a proven no-op, so the
		// sweep touches only the dirty set.
		if !h.DisablePolicyOpt {
			if ms != nil {
				if err := h.optimizeFlowsSharded(ms, req, flows, loc, st); err != nil {
					return err
				}
			} else {
				for _, f := range flows {
					if h.incremental() && st.cleanFlow(req, f, loc) {
						continue
					}
					_, opt, info, err := req.Controller.OptimizeInstalledDetailed(f, loc)
					if err != nil {
						return err
					}
					st.record(f, loc, opt, info)
				}
			}
		}

		// Phase 2 — task assignment via preference matrix + stable matching
		// (Algorithm 2).
		if err := h.assign(req, movable, flows, loc, st); err != nil {
			return err
		}

		// Phase 3 — policies must follow the new placement (type templates
		// change when endpoints move racks).
		if err := h.reinstallPolicies(ms, req, flows, loc, st); err != nil {
			return err
		}

		cost, err := req.Controller.TotalCost(flows, loc)
		if err != nil {
			return err
		}
		if cost < best*(1-h.epsilon()) {
			best = cost
			bestSnap = req.Cluster.Snapshot()
			continue
		}
		// No material improvement: restore the best placement seen and stop.
		// Restoring moves endpoints, which cleanFlow detects per flow by
		// comparing servers — no explicit invalidation needed.
		if cost > best {
			if err := req.Cluster.Restore(bestSnap); err != nil {
				return err
			}
			if err := h.reinstallPolicies(ms, req, flows, loc, st); err != nil {
				return err
			}
		}
		break
	}
	return nil
}

// reinstallPolicies recomputes and installs the best policy for every flow
// under the current placement. With policy optimization disabled it installs
// fresh random policies matching the (possibly new) type templates. Clean
// flows (cleanFlow) reinstall their recorded solve output without paying
// for the DP again; the uninstall/install sequence itself always runs in
// full flow order, so switch loads accumulate in the historical order.
func (h *HitScheduler) reinstallPolicies(ms *multisched.Service, req *scheduler.Request, flows []*flow.Flow, loc flow.Locator, st *runState) error {
	// Release the old routes first: stale switch loads from pre-move policies
	// must not make the post-move optimum look infeasible.
	for _, f := range flows {
		req.Controller.Uninstall(f.ID)
	}
	// The sharded path covers the Algorithm-1 reinstalls; random policies
	// (DisablePolicyOpt) draw from the sequential RNG and stay here.
	if ms != nil && !h.DisablePolicyOpt {
		return h.reinstallSharded(ms, req, flows, loc, st)
	}
	for _, f := range flows {
		var p *flow.Policy
		var err error
		switch {
		case h.DisablePolicyOpt:
			p, err = req.Controller.RandomPolicy(f, loc, req.Rand)
		case h.incremental() && st.cleanFlow(req, f, loc):
			p = st.solves[f.ID].policy
		default:
			var info controller.SolveInfo
			p, info, err = req.Controller.OptimizePolicyDetailed(f, loc)
			if err == nil {
				st.record(f, loc, p, info)
			}
		}
		if err != nil {
			return err
		}
		if err := req.Controller.Install(f, p); err != nil {
			return fmt.Errorf("core: reinstall flow %d: %w", f.ID, err)
		}
	}
	return nil
}

// prefEntry orders container/server preference pairs.
type prefEntry struct {
	idx   int
	grade float64
}

// assignScratch pools the per-container working buffers of the preference
// build, so a 10k-server wave does not allocate (and GC) a fresh grade
// vector, bucket table, and permutation scratch for every container.
// Buffer identity never leaks into results — every buffer is either fully
// overwritten or explicitly reset before use — so pooling cannot perturb
// determinism.
type assignScratch struct {
	grades   []float64
	slot     []int32
	distinct []float64
	sorted   []float64
	slotRank []int32
	counts   []int32
	offs     []int32
	accCost  []float64
	accSet   []bool
	isPeer   []bool

	// htabKeys/htabVals form a flat open-addressed hash table (linear
	// probing, val -1 = empty) mapping grade bit patterns to bucket slots.
	// It replaces a map[uint64]int32 on the ranking hot path: at 10k
	// servers the build probes it ~2M times per wave, and the flat probe is
	// several times cheaper than a runtime map access. Lookup/insert only,
	// never iterated, so determinism is untouched.
	htabKeys []uint64
	htabVals []int32
	htabMask uint64
}

var assignScratchPool = sync.Pool{New: func() any { return new(assignScratch) }}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// growBoolZeroed returns a length-n all-false slice (memclr on reuse).
func growBoolZeroed(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// htabReset sizes the flat hash table and marks every slot empty. The table
// tracks DISTINCT grades — a few hundred even on 10k-server rows — so it
// starts small (L1-resident) regardless of row length and doubles via
// htabGrow when the caller's distinct count passes half the slots.
func (sc *assignScratch) htabReset(n int) {
	sz := 16
	for sz < 2*n && sz < 1024 {
		sz <<= 1
	}
	if cap(sc.htabKeys) < sz {
		sc.htabKeys = make([]uint64, sz)
		sc.htabVals = make([]int32, sz)
	}
	sc.htabKeys = sc.htabKeys[:sz]
	sc.htabVals = sc.htabVals[:sz]
	for i := range sc.htabVals {
		sc.htabVals[i] = -1
	}
	sc.htabMask = uint64(sz - 1)
}

// htabGrow doubles the table and reinserts every distinct grade; slot j of
// sc.distinct is value j, so the rebuild needs no saved keys.
func (sc *assignScratch) htabGrow() {
	sz := 2 * len(sc.htabVals)
	sc.htabKeys = make([]uint64, sz)
	sc.htabVals = make([]int32, sz)
	for i := range sc.htabVals {
		sc.htabVals[i] = -1
	}
	sc.htabMask = uint64(sz - 1)
	for j, g := range sc.distinct {
		sc.htabPut(math.Float64bits(g), int32(j))
	}
}

// htabPut returns the slot stored for key b, inserting next if absent;
// inserted reports which happened.
func (sc *assignScratch) htabPut(b uint64, next int32) (slot int32, inserted bool) {
	h := (b * 0x9e3779b97f4a7c15) & sc.htabMask
	for {
		v := sc.htabVals[h]
		if v < 0 {
			sc.htabKeys[h] = b
			sc.htabVals[h] = next
			return next, true
		}
		if sc.htabKeys[h] == b {
			return v, false
		}
		h = (h + 1) & sc.htabMask
	}
}

// htabGet returns the slot for key b, which must be present.
func (sc *assignScratch) htabGet(b uint64) int32 {
	h := (b * 0x9e3779b97f4a7c15) & sc.htabMask
	for {
		if sc.htabVals[h] >= 0 && sc.htabKeys[h] == b {
			return sc.htabVals[h]
		}
		h = (h + 1) & sc.htabMask
	}
}

// stableRankDesc writes vals permuted into stable descending-grade order
// into out (all three slices share one length). It produces exactly the
// permutation sort.SliceStable yields under a grade-descending comparator:
// grades are bucketed by exact float64 value — −0 normalized to +0, since
// neither zero orders before the other under `>` — and buckets are emitted
// largest-grade-first with input order preserved inside each. One counting
// pass replaces the comparator callbacks, so a row costs O(n + k log k) for
// k distinct grades (k ≈ racks on the anchored fast path). Returns false on
// a NaN grade — never produced by finite rates × integer distances, but the
// comparator algorithm defines that case, so the caller must fall back to
// sortDescFallback.
func (sc *assignScratch) stableRankDesc(grades []float64, vals, out []int) bool {
	n := len(grades)
	slot := growI32(sc.slot, n)
	sc.slot = slot
	sc.distinct = sc.distinct[:0]
	sc.htabReset(n)
	for i, g := range grades {
		if math.IsNaN(g) {
			return false
		}
		b := math.Float64bits(g)
		if b == 1<<63 { // -0: same bucket as +0
			b = 0
		}
		s, inserted := sc.htabPut(b, int32(len(sc.distinct)))
		if inserted {
			sc.distinct = append(sc.distinct, math.Float64frombits(b))
			if 2*len(sc.distinct) > len(sc.htabVals) {
				sc.htabGrow()
			}
		}
		slot[i] = s
	}
	k := len(sc.distinct)
	sorted := append(sc.sorted[:0], sc.distinct...)
	sc.sorted = sorted
	sort.Float64s(sorted) // ascending; descending rank = k-1-j
	slotRank := growI32(sc.slotRank, k)
	sc.slotRank = slotRank
	for j, g := range sorted {
		slotRank[sc.htabGet(math.Float64bits(g))] = int32(k - 1 - j)
	}
	counts := growI32(sc.counts, k)
	sc.counts = counts
	for r := range counts {
		counts[r] = 0
	}
	for _, s := range slot {
		counts[slotRank[s]]++
	}
	offs := growI32(sc.offs, k)
	sc.offs = offs
	var sum int32
	for r, c := range counts {
		offs[r] = sum
		sum += c
	}
	for i := 0; i < n; i++ {
		r := slotRank[slot[i]]
		out[offs[r]] = vals[i]
		offs[r]++
	}
	return true
}

// sortDescFallback is the comparator-defined path stableRankDesc defers to
// on NaN grades: literally the original sort.SliceStable build.
func sortDescFallback(grades []float64, vals, out []int) {
	entries := make([]prefEntry, len(grades))
	for i := range grades {
		entries[i] = prefEntry{idx: vals[i], grade: grades[i]}
	}
	sort.SliceStable(entries, func(a, b int) bool { return entries[a].grade > entries[b].grade })
	for i, e := range entries {
		out[i] = e.idx
	}
}

// nearestByRow is netstate.(*Oracle).NearestByDist over an already-fetched
// distance row: same compare, same unreachable skip, same lower-ID
// tie-break. The incremental preference build uses it so one row fetch
// serves both the anchored cost sums and the vote; the DisableIncremental
// parity path keeps calling the oracle, pinning this replica against it.
func nearestByRow(row []int32, cands []topology.NodeID) topology.NodeID {
	best := topology.None
	bestD := int32(-1)
	for _, c := range cands {
		d := row[c]
		if d < 0 {
			continue
		}
		if bestD == -1 || d < bestD || (d == bestD && c < best) {
			bestD, best = d, c
		}
	}
	return best
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalNodeIDs(a, b []topology.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assign performs one round of the Tasks Assignment Algorithm (Algorithm 2).
//
// Map and Reduce containers are matched in alternating sub-rounds — reduces
// first (shuffle destinations chase their sources), then maps. Within a
// sub-round every flow endpoint outside the group is anchored at its current
// server, which makes each group member's cost independent of its peers'
// simultaneous moves: exactly the independence §5.1.3's separability argument
// licenses, turned into coordinate descent. Utilities assume the flow's
// route is re-optimized after the move (the paper's grades "will be updated
// when rescheduling a new routing path"), so they reduce to rate ×
// hop-distance deltas against the anchored peer.
func (h *HitScheduler) assign(req *scheduler.Request, movable []scheduler.Task, flows []*flow.Flow, loc flow.Locator, st *runState) error {
	var reduces, maps []scheduler.Task
	for _, t := range movable {
		if t.Kind == workload.ReduceTask {
			reduces = append(reduces, t)
		} else {
			maps = append(maps, t)
		}
	}
	for gi, group := range [][]scheduler.Task{reduces, maps} {
		if len(group) == 0 {
			continue
		}
		if err := h.assignGroup(req, group, flows, loc, st, gi); err != nil {
			return err
		}
	}
	return nil
}

// parallelThreshold is the preference-matrix work size (containers ×
// servers) above which assignGroup fans out across containers. Small groups
// stay sequential: goroutine fan-out costs more than the loops it saves.
const parallelThreshold = 4096

// demandClass shares per-demand facts across the containers of one group.
// Every group container stands unplaced when feasibility is computed, so
// CanHost depends only on the container's resource demand: containers with
// identical demands see the identical feasible-server set, candidate list,
// and — candidates being the only per-container input — identical
// nearest-feasible votes per anchored peer server. One O(V) scan per
// distinct demand replaces one per container.
type demandClass struct {
	feas  []int
	cands []topology.NodeID
	votes map[topology.NodeID]int // anchored peer server → voted server index, -1 = none
}

// assignGroup matches one kind-homogeneous container group onto servers.
// gi selects the group's slab-reusing matcher in st (0 = reduces, 1 = maps).
func (h *HitScheduler) assignGroup(req *scheduler.Request, group []scheduler.Task, flows []*flow.Flow, loc flow.Locator, st *runState, gi int) error {
	servers := req.Cluster.Servers()
	serverIdx := make(map[topology.NodeID]int, len(servers))
	for i, s := range servers {
		serverIdx[s] = i
	}
	containers := make([]cluster.ContainerID, len(group))
	for i, t := range group {
		containers[i] = t.Container
	}
	oracle := req.Controller.Oracle()

	// Incident flows and anchored peer servers per container.
	incident := make([][]*flow.Flow, len(containers))
	peerSrv := make([][]topology.NodeID, len(containers))
	for i, c := range containers {
		for _, f := range flow.IncidentFlows(c, flows) {
			peer := f.Src
			if peer == c {
				peer = f.Dst
			}
			ps := loc.ServerOf(peer)
			if ps == topology.None {
				continue
			}
			incident[i] = append(incident[i], f)
			peerSrv[i] = append(peerSrv[i], ps)
		}
	}

	// Release the whole group's demand before computing feasibility, so that
	// pairwise exchanges between otherwise-full servers stay reachable — the
	// matching, not the incumbent placement, decides who lands where.
	original := make(map[cluster.ContainerID]topology.NodeID, len(containers))
	for _, c := range containers {
		original[c] = req.Cluster.Container(c).Server()
		if err := req.Cluster.Unplace(c); err != nil {
			return err
		}
	}

	// Demand classes: the group is fully unplaced here, so feasibility is a
	// function of the demand vector alone and is scanned once per class.
	classes := make(map[cluster.Resources]*demandClass, 2)
	classOf := make([]*demandClass, len(containers))
	for ci, c := range containers {
		d := req.Cluster.Container(c).Demand
		cl := classes[d]
		if cl == nil {
			var feas []int
			for si, s := range servers {
				if req.Cluster.CanHost(s, c) {
					feas = append(feas, si)
				}
			}
			cands := make([]topology.NodeID, len(feas))
			for k, si := range feas {
				cands[k] = servers[si]
			}
			cl = &demandClass{feas: feas, cands: cands, votes: make(map[topology.NodeID]int)}
			classes[d] = cl
		}
		classOf[ci] = cl
	}

	// Dirty check (run before the shared tables are built, so a fully clean
	// round pays for neither rows nor votes): a container whose original
	// server, feasible set, and anchored peers all recur from the previous
	// round would rebuild the exact same row — reuse it.
	useMemo := h.incremental()
	memoHit := make([]*prefRow, len(containers))

	// Group-level shared tables, built sequentially (deterministic oracle
	// call order) and only read by the fan-out below:
	//   rows[ps]      — one distance row per distinct anchored peer server,
	//                   memoized across groups and iterations in st (keyed
	//                   by topology/liveness version) on the incremental
	//                   path;
	//   cl.votes[ps]  — the class's nearest-feasible vote for that peer
	//                   (Algorithm 1 lines 11–13), a function of (peer,
	//                   candidate list) only. Incremental runs derive it
	//                   from the fetched row with the oracle's own compare
	//                   and lower-ID tie-break; the DisableIncremental
	//                   parity path asks the oracle itself, pinning the
	//                   row-scan replica against NearestByDist.
	topo := req.Cluster.Topology()
	var rows map[topology.NodeID][]int32
	if useMemo {
		tv, lv := topo.Version(), topo.LivenessVersion()
		if st.rows == nil || st.rowsTopoVer != tv || st.rowsLiveVer != lv {
			st.rows = make(map[topology.NodeID][]int32)
			st.rowsTopoVer, st.rowsLiveVer = tv, lv
		}
		rows = st.rows
	} else {
		rows = make(map[topology.NodeID][]int32)
	}
	for ci, c := range containers {
		if useMemo {
			if prev := st.prefs[c]; prev != nil && prev.orig == original[c] &&
				equalInts(prev.feasible, classOf[ci].feas) && equalNodeIDs(prev.peerSrv, peerSrv[ci]) {
				memoHit[ci] = prev
				continue
			}
		}
		cl := classOf[ci]
		for _, ps := range peerSrv[ci] {
			if _, ok := rows[ps]; !ok {
				rows[ps] = oracle.DistRow(ps)
			}
			if _, ok := cl.votes[ps]; !ok {
				var best topology.NodeID
				if useMemo {
					best = nearestByRow(rows[ps], cl.cands)
				} else {
					best = oracle.NearestByDist(ps, cl.cands)
				}
				if best == topology.None {
					cl.votes[ps] = -1
				} else {
					cl.votes[ps] = serverIdx[best]
				}
			}
		}
	}

	// Single-homed anchored fast path: when every server hangs off exactly
	// one access switch and the fabric is healthy, dist(peer, s) =
	// 1 + dist(peer, access(s)) for every server s that is not the peer
	// itself — so the anchored cost sum is shared by every server of a rack
	// and the per-container scan shrinks from O(flows × feasible servers)
	// to O(flows × access switches). Peer servers themselves keep the
	// direct per-flow loop: their own distance is 0, not 1 + dist.
	// accSlotOf maps each server index to a dense per-rack slot so the
	// per-container cost table is an array, not a map.
	anchorable := topo.ServersSingleHomed() && topo.AllAlive()
	var accSlotOf []int32
	var accNodes []topology.NodeID
	if anchorable {
		accSlotOf = make([]int32, len(servers))
		accIdx := make(map[topology.NodeID]int32, 64)
		for si, s := range servers {
			a := oracle.AccessSwitch(s)
			slot, ok := accIdx[a]
			if !ok {
				slot = int32(len(accNodes))
				accIdx[a] = slot
				accNodes = append(accNodes, a)
			}
			accSlotOf[si] = slot
		}
	}

	// Per-container preference build (Algorithm 1's preference-matrix rows
	// plus Eq. 10 proposer rankings). Every container's pass writes only its
	// own index, so the fan-out is deterministic: results are identical to
	// the sequential loop regardless of worker count, and the merge into the
	// grade rows below happens column-by-column with no shared writes. The
	// shared tables above (rows, classes, accessOf, original) are read-only
	// during the fan-out, and st.prefs is written only after it returns.
	//
	// Cost sums always accumulate in flow order, keeping the floats
	// bit-identical to the ungrouped per-flow loop.
	propPrefs := make([][]int, len(containers))
	votes := make([][]int, len(containers)) // per incident flow: voted server index, -1 = none
	prefRows := make([]*prefRow, len(containers))
	workers := h.fanout()
	if len(containers)*len(servers) < parallelThreshold {
		workers = 1
	}
	// Every write below is addressed by ci (taalint mergeorder contract):
	// workers own disjoint slots, so the merge order is the index order.
	err := parallel.ForEach(len(containers), workers, func(ci int) error {
		c := containers[ci]
		cl := classOf[ci]
		if len(cl.feas) == 0 {
			return fmt.Errorf("core: %w for container %d", scheduler.ErrNoFeasibleServer, c)
		}
		if prev := memoHit[ci]; prev != nil {
			propPrefs[ci] = prev.propPrefs
			votes[ci] = prev.votes
			prefRows[ci] = prev
			return nil
		}

		// Distinct anchored peer servers in first-appearance order;
		// peerOf[k] indexes the per-peer rows for incident flow k.
		distinct := make([]topology.NodeID, 0, len(peerSrv[ci]))
		peerIdx := make(map[topology.NodeID]int, len(peerSrv[ci]))
		peerOf := make([]int, len(peerSrv[ci]))
		for k, ps := range peerSrv[ci] {
			pi, ok := peerIdx[ps]
			if !ok {
				pi = len(distinct)
				peerIdx[ps] = pi
				distinct = append(distinct, ps)
			}
			peerOf[k] = pi
		}
		rowOf := make([][]int32, len(distinct))
		for pi, ps := range distinct {
			rowOf[pi] = rows[ps]
		}

		sc := assignScratchPool.Get().(*assignScratch)
		defer assignScratchPool.Put(sc)

		// Anchored re-routed cost of hosting this container on server s:
		// Σ rate × dist(peer, s) — the flow cost after Algorithm 1
		// re-optimizes the route for the new endpoint. Accumulated in flow
		// order over the prefetched rows.
		direct := func(s topology.NodeID) float64 {
			var cost float64
			for k, f := range incident[ci] {
				d := rowOf[peerOf[k]][s]
				if d < 0 {
					continue
				}
				cost += f.Rate * float64(d)
			}
			return cost
		}
		costAt := func(si int) float64 { return direct(servers[si]) }
		if anchorable {
			// accCost[slot] = Σ rate × float64(1 + dist(peer, access)) in
			// flow order: term-for-term the same float64 values direct()
			// sums for any non-peer server of that rack (the distances are
			// equal ints, so the conversions and products are bit-
			// identical), computed once per access switch instead of once
			// per server. Peer servers fall back to direct().
			accCost := growF64(sc.accCost, len(accNodes))
			sc.accCost = accCost
			accSet := growBoolZeroed(sc.accSet, len(accNodes))
			sc.accSet = accSet
			isPeer := growBoolZeroed(sc.isPeer, len(servers))
			sc.isPeer = isPeer
			for _, ps := range distinct {
				isPeer[serverIdx[ps]] = true
			}
			costAt = func(si int) float64 {
				if isPeer[si] {
					return direct(servers[si])
				}
				slot := accSlotOf[si]
				if !accSet[slot] {
					var cost float64
					a := accNodes[slot]
					for k, f := range incident[ci] {
						da := rowOf[peerOf[k]][a]
						if da < 0 {
							continue
						}
						cost += f.Rate * float64(1+da)
					}
					accCost[slot] = cost
					accSet[slot] = true
				}
				return accCost[slot]
			}
		}

		// Proposer preferences: servers by utility (Eq. 10) = current cost
		// minus candidate cost, descending.
		curCost := costAt(serverIdx[original[c]])
		grades := growF64(sc.grades, len(cl.feas))
		sc.grades = grades
		for i, si := range cl.feas {
			grades[i] = curCost - costAt(si)
		}
		prop := make([]int, len(cl.feas))
		if !sc.stableRankDesc(grades, cl.feas, prop) {
			sortDescFallback(grades, cl.feas, prop)
		}
		propPrefs[ci] = prop

		// Fan the class's per-peer votes out to this container's flows.
		vts := make([]int, len(incident[ci]))
		for k, ps := range peerSrv[ci] {
			vts[k] = cl.votes[ps]
		}
		votes[ci] = vts

		if useMemo {
			prefRows[ci] = &prefRow{
				orig:      original[c],
				feasible:  cl.feas,
				peerSrv:   peerSrv[ci],
				propPrefs: prop,
				votes:     vts,
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if useMemo {
		for ci, c := range containers {
			if prefRows[ci] != nil {
				st.prefs[c] = prefRows[ci]
			}
		}
	}

	// Deterministic merge of the votes into the host-preference grades.
	// Votes are sparse — at most one server per incident flow — so only
	// voted servers carry a grade row; every other server's grades are all
	// zero, and a stable descending sort of an all-equal row is the identity
	// permutation, shared once below instead of allocated per server.
	gradeRows := make(map[int][]float64, len(containers))
	for ci := range containers {
		for k, f := range incident[ci] {
			if si := votes[ci][k]; si >= 0 {
				row := gradeRows[si]
				if row == nil {
					row = make([]float64, len(containers))
					gradeRows[si] = row
				}
				row[ci] += f.Rate
			}
		}
	}
	identity := make([]int, len(containers))
	for ci := range identity {
		identity[ci] = ci
	}
	hostPrefs := make([][]int, len(servers))
	sc := assignScratchPool.Get().(*assignScratch)
	for si := range servers {
		row := gradeRows[si]
		if row == nil {
			hostPrefs[si] = identity
			continue
		}
		out := make([]int, len(containers))
		if !sc.stableRankDesc(row, identity, out) {
			sortDescFallback(row, identity, out)
		}
		hostPrefs[si] = out
	}
	assignScratchPool.Put(sc)

	// CPU is the binding capacity dimension for the matching.
	capacity := make([]float64, len(servers))
	for si, s := range servers {
		capacity[si] = float64(req.Cluster.Free(s).CPU)
	}
	loads := make([]float64, len(containers))
	for ci, c := range containers {
		loads[ci] = float64(req.Cluster.Container(c).Demand.CPU)
		if loads[ci] <= 0 {
			loads[ci] = 1 // zero-CPU containers still occupy a scheduling slot
		}
	}

	place := func(c cluster.ContainerID, s topology.NodeID) error {
		if s != topology.None {
			if err := req.Cluster.Place(c, s); err == nil {
				return nil
			}
		}
		// Memory (the unmodeled dimension) blocked the slot: fall back to the
		// original server, then any feasible one.
		if orig := original[c]; orig != topology.None && orig != s {
			if err := req.Cluster.Place(c, orig); err == nil {
				return nil
			}
		}
		for _, alt := range req.Cluster.Candidates(c) {
			if err := req.Cluster.Place(c, alt); err == nil {
				return nil
			}
		}
		return fmt.Errorf("core: %w for container %d after matching", scheduler.ErrNoFeasibleServer, c)
	}

	if h.DisableStableMatching {
		// Ablation: greedy sequential best-utility placement.
		for ci, c := range containers {
			placed := false
			for _, si := range propPrefs[ci] {
				if req.Cluster.CanHost(servers[si], c) {
					if err := req.Cluster.Place(c, servers[si]); err == nil {
						placed = true
						break
					}
				}
			}
			if !placed {
				if err := place(c, original[c]); err != nil {
					return err
				}
			}
		}
		return nil
	}

	inst := &stablematch.Instance{
		NumProposers:  len(containers),
		NumHosts:      len(servers),
		ProposerPrefs: propPrefs,
		HostPrefs:     hostPrefs,
		Load:          loads,
		Capacity:      capacity,
	}
	// Incremental runs keep one Matcher per group alive for the whole
	// Schedule call: scratch slabs carry over, and an iteration whose
	// preference build fully memo-hit replays the previous stable matching
	// (provably identical — deferred acceptance is deterministic). The
	// DisableIncremental path matches from scratch; parity tests pin the
	// two bit-equal.
	var res *stablematch.Result
	if h.incremental() {
		if st.matchers[gi] == nil {
			st.matchers[gi] = &stablematch.Matcher{Workers: h.fanout()}
		}
		res, err = st.matchers[gi].Match(inst)
	} else {
		res, err = stablematch.Match(inst)
	}
	if err != nil {
		return err
	}
	for ci, hostIdx := range res.HostOf {
		c := containers[ci]
		target := original[c]
		if hostIdx != stablematch.Unmatched {
			target = servers[hostIdx]
		}
		if err := place(c, target); err != nil {
			return err
		}
	}
	return nil
}

// scheduleSubsequentWave implements §5.3.2: reduce placements are fixed, so
// each shuffle flow's destination is static; maps are placed greedily in
// descending shuffle-output order onto the feasible server with the lowest
// added communication delay, then policies are optimized.
func (h *HitScheduler) scheduleSubsequentWave(req *scheduler.Request, movable []scheduler.Task, flows []*flow.Flow) error {
	loc := req.Locator()
	tasks := append([]scheduler.Task(nil), movable...)
	scheduler.SortTasksByShuffleOutput(tasks)
	oracle := req.Controller.Oracle()

	for _, t := range tasks {
		c := t.Container
		incident := flow.IncidentFlows(c, flows)
		best := topology.None
		bestCost := 0.0
		for _, s := range req.Cluster.Candidates(c) {
			var cost float64
			for _, f := range incident {
				var peer cluster.ContainerID
				if f.Src == c {
					peer = f.Dst
				} else {
					peer = f.Src
				}
				ps := loc.ServerOf(peer)
				if ps == topology.None {
					continue
				}
				d := oracle.Dist(s, ps)
				if d < 0 {
					continue
				}
				cost += f.Rate * float64(d)
			}
			if best == topology.None || cost < bestCost {
				best, bestCost = s, cost
			}
		}
		if best == topology.None {
			return fmt.Errorf("core: %w for map container %d", scheduler.ErrNoFeasibleServer, c)
		}
		// The container was randomly placed during initialization; move it.
		if err := req.Cluster.Place(c, best); err != nil {
			return err
		}
	}
	// Subsequent waves stay sequential: the greedy per-container scan is
	// RNG- and order-free but cheap, and not worth a sharded variant.
	return h.reinstallPolicies(nil, req, flows, loc, newRunState())
}
