// Package core implements the paper's primary contribution: Hit-Scheduler,
// the Hierarchical-topology-aware MapReduce scheduler that jointly optimizes
// task assignment and network policy to minimize total shuffle traffic cost
// (the TAA problem of §3–4).
//
// The solution follows §5's separated optimization strategy:
//
//  1. Every flow starts from a random placement and a random policy.
//  2. Policy optimization (Algorithm 1) finds each flow's minimum-cost typed
//     switch route given current placements, and — by also exploring the
//     candidate servers of both endpoint containers (Figure 5's layered
//     flow-path graph) — accumulates a preference matrix P(server,
//     container) grading how much each server wants each container.
//  3. Task assignment (Algorithm 2) runs a modified many-to-one Gale–Shapley
//     matching between containers (ranking servers by the utility of moving
//     there, Eq. 10) and servers (ranking containers by the preference
//     matrix), respecting server capacities.
//  4. Policies are re-optimized for the new placement; the loop repeats
//     until the total cost stops improving.
//
// Wave structure (§5.3): when every Reduce container is already fixed (maps
// arriving in later waves), the scheduler switches to the greedy O(n²)
// subsequent-wave strategy: heaviest shuffle producers are paired with the
// lowest-delay feasible servers.
package core

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/flow"
	"repro/internal/parallel"
	"repro/internal/scheduler"
	"repro/internal/stablematch"
	"repro/internal/topology"
	"repro/internal/workload"
)

// HitScheduler implements scheduler.Scheduler with the paper's joint
// optimization. The zero value uses the defaults below; the ablation fields
// turn individual mechanisms off for the design-choice benchmarks.
type HitScheduler struct {
	// MaxIterations bounds the joint policy/assignment rounds (default 4).
	MaxIterations int
	// Epsilon is the relative cost-improvement threshold below which the
	// loop stops (default 1e-6).
	Epsilon float64
	// DisablePolicyOpt skips Algorithm 1's per-flow route optimization
	// (policies stay on their initial random routes). Ablation only.
	DisablePolicyOpt bool
	// DisableStableMatching replaces Algorithm 2 with per-container greedy
	// best-utility moves. Ablation only.
	DisableStableMatching bool
}

// Name implements scheduler.Scheduler.
func (h *HitScheduler) Name() string { return "hit" }

func (h *HitScheduler) maxIterations() int {
	if h.MaxIterations <= 0 {
		return 4
	}
	return h.MaxIterations
}

func (h *HitScheduler) epsilon() float64 {
	if h.Epsilon <= 0 {
		return 1e-6
	}
	return h.Epsilon
}

// Schedule implements scheduler.Scheduler.
func (h *HitScheduler) Schedule(req *scheduler.Request) error {
	if err := req.Validate(); err != nil {
		return err
	}
	movable := h.movableTasks(req)

	// §5.3.1: random initial assignment for every unplaced container.
	for _, t := range movable {
		if req.Cluster.Container(t.Container).Placed() {
			continue
		}
		cands := req.Cluster.Candidates(t.Container)
		if len(cands) == 0 {
			return fmt.Errorf("core: no feasible server for container %d", t.Container)
		}
		if err := req.Cluster.Place(t.Container, cands[req.Rand.Intn(len(cands))]); err != nil {
			return err
		}
	}

	// Initial random policies (the paper's starting state for Algorithm 1).
	loc := req.Locator()
	for _, f := range req.Flows {
		p, err := req.Controller.RandomPolicy(f, loc, req.Rand)
		if err != nil {
			return err
		}
		if err := req.Controller.Install(f, p); err != nil {
			return fmt.Errorf("core: initial policy for flow %d: %w", f.ID, err)
		}
	}

	if h.isSubsequentWave(req, movable) {
		return h.scheduleSubsequentWave(req, movable)
	}
	return h.scheduleInitialWave(req, movable)
}

// movableTasks returns the tasks whose containers this round may move.
func (h *HitScheduler) movableTasks(req *scheduler.Request) []scheduler.Task {
	var out []scheduler.Task
	for _, t := range req.Tasks {
		if !req.Fixed[t.Container] {
			out = append(out, t)
		}
	}
	return out
}

// isSubsequentWave reports whether this request matches §5.3.2: every
// movable task is a Map, and at least one flow terminates at a fixed
// (already placed) Reduce container.
func (h *HitScheduler) isSubsequentWave(req *scheduler.Request, movable []scheduler.Task) bool {
	if len(movable) == 0 || len(req.Fixed) == 0 {
		return false
	}
	for _, t := range movable {
		if t.Kind != workload.MapTask {
			return false
		}
	}
	anyFixedDst := false
	for _, f := range req.Flows {
		if req.Fixed[f.Dst] {
			anyFixedDst = true
			break
		}
	}
	return anyFixedDst
}

// scheduleInitialWave runs the full joint optimization loop.
func (h *HitScheduler) scheduleInitialWave(req *scheduler.Request, movable []scheduler.Task) error {
	loc := req.Locator()
	best, err := req.Controller.TotalCost(req.Flows, loc)
	if err != nil {
		return err
	}
	bestSnap := req.Cluster.Snapshot()

	for iter := 0; iter < h.maxIterations(); iter++ {
		// Phase 1 — network policy optimization (Algorithm 1 per flow).
		if !h.DisablePolicyOpt {
			for _, f := range req.Flows {
				if _, err := req.Controller.OptimizeInstalled(f, loc); err != nil {
					return err
				}
			}
		}

		// Phase 2 — task assignment via preference matrix + stable matching
		// (Algorithm 2).
		if err := h.assign(req, movable, loc); err != nil {
			return err
		}

		// Phase 3 — policies must follow the new placement (type templates
		// change when endpoints move racks).
		if err := h.reinstallPolicies(req, loc); err != nil {
			return err
		}

		cost, err := req.Controller.TotalCost(req.Flows, loc)
		if err != nil {
			return err
		}
		if cost < best*(1-h.epsilon()) {
			best = cost
			bestSnap = req.Cluster.Snapshot()
			continue
		}
		// No material improvement: restore the best placement seen and stop.
		if cost > best {
			if err := req.Cluster.Restore(bestSnap); err != nil {
				return err
			}
			if err := h.reinstallPolicies(req, loc); err != nil {
				return err
			}
		}
		break
	}
	return nil
}

// reinstallPolicies recomputes and installs the best policy for every flow
// under the current placement. With policy optimization disabled it installs
// fresh random policies matching the (possibly new) type templates.
func (h *HitScheduler) reinstallPolicies(req *scheduler.Request, loc flow.Locator) error {
	// Release the old routes first: stale switch loads from pre-move policies
	// must not make the post-move optimum look infeasible.
	for _, f := range req.Flows {
		req.Controller.Uninstall(f.ID)
	}
	for _, f := range req.Flows {
		var p *flow.Policy
		var err error
		if h.DisablePolicyOpt {
			p, err = req.Controller.RandomPolicy(f, loc, req.Rand)
		} else {
			p, err = req.Controller.OptimizePolicy(f, loc)
		}
		if err != nil {
			return err
		}
		if err := req.Controller.Install(f, p); err != nil {
			return fmt.Errorf("core: reinstall flow %d: %w", f.ID, err)
		}
	}
	return nil
}

// prefEntry orders container/server preference pairs.
type prefEntry struct {
	idx   int
	grade float64
}

// assign performs one round of the Tasks Assignment Algorithm (Algorithm 2).
//
// Map and Reduce containers are matched in alternating sub-rounds — reduces
// first (shuffle destinations chase their sources), then maps. Within a
// sub-round every flow endpoint outside the group is anchored at its current
// server, which makes each group member's cost independent of its peers'
// simultaneous moves: exactly the independence §5.1.3's separability argument
// licenses, turned into coordinate descent. Utilities assume the flow's
// route is re-optimized after the move (the paper's grades "will be updated
// when rescheduling a new routing path"), so they reduce to rate ×
// hop-distance deltas against the anchored peer.
func (h *HitScheduler) assign(req *scheduler.Request, movable []scheduler.Task, loc flow.Locator) error {
	var reduces, maps []scheduler.Task
	for _, t := range movable {
		if t.Kind == workload.ReduceTask {
			reduces = append(reduces, t)
		} else {
			maps = append(maps, t)
		}
	}
	for _, group := range [][]scheduler.Task{reduces, maps} {
		if len(group) == 0 {
			continue
		}
		if err := h.assignGroup(req, group, loc); err != nil {
			return err
		}
	}
	return nil
}

// parallelThreshold is the preference-matrix work size (containers ×
// servers) above which assignGroup fans out across containers. Small groups
// stay sequential: goroutine fan-out costs more than the loops it saves.
const parallelThreshold = 4096

// assignGroup matches one kind-homogeneous container group onto servers.
func (h *HitScheduler) assignGroup(req *scheduler.Request, group []scheduler.Task, loc flow.Locator) error {
	servers := req.Cluster.Servers()
	serverIdx := make(map[topology.NodeID]int, len(servers))
	for i, s := range servers {
		serverIdx[s] = i
	}
	containers := make([]cluster.ContainerID, len(group))
	for i, t := range group {
		containers[i] = t.Container
	}
	oracle := req.Controller.Oracle()

	// Incident flows and anchored peer servers per container.
	incident := make([][]*flow.Flow, len(containers))
	peerSrv := make([][]topology.NodeID, len(containers))
	for i, c := range containers {
		for _, f := range flow.IncidentFlows(c, req.Flows) {
			peer := f.Src
			if peer == c {
				peer = f.Dst
			}
			ps := loc.ServerOf(peer)
			if ps == topology.None {
				continue
			}
			incident[i] = append(incident[i], f)
			peerSrv[i] = append(peerSrv[i], ps)
		}
	}

	// Release the whole group's demand before computing feasibility, so that
	// pairwise exchanges between otherwise-full servers stay reachable — the
	// matching, not the incumbent placement, decides who lands where.
	original := make(map[cluster.ContainerID]topology.NodeID, len(containers))
	for _, c := range containers {
		original[c] = req.Cluster.Container(c).Server()
		if err := req.Cluster.Unplace(c); err != nil {
			return err
		}
	}

	// Anchored re-routed cost of hosting container ci on server s:
	// Σ rate × dist(peer, s) — the flow cost after Algorithm 1 re-optimizes
	// the route for the new endpoint. Distances come from the oracle's
	// shared tables, which are safe under the concurrent fan-out below.
	anchoredCost := func(ci int, s topology.NodeID) float64 {
		var cost float64
		for k, f := range incident[ci] {
			d := oracle.Dist(peerSrv[ci][k], s)
			if d < 0 {
				continue
			}
			cost += f.Rate * float64(d)
		}
		return cost
	}

	// Per-container preference build (Algorithm 1's preference-matrix rows
	// plus Eq. 10 proposer rankings). Every container's pass writes only its
	// own index, so the fan-out is deterministic: results are identical to
	// the sequential loop regardless of worker count, and the merge into the
	// grade matrix below happens column-by-column with no shared writes.
	// The cluster is only read (CanHost) between the Unplace above and the
	// Place calls below, so concurrent reads are safe.
	feasible := make([][]int, len(containers))
	propPrefs := make([][]int, len(containers))
	votes := make([][]int, len(containers)) // per incident flow: voted server index, -1 = none
	workers := 0
	if len(containers)*len(servers) < parallelThreshold {
		workers = 1
	}
	err := parallel.ForEach(len(containers), workers, func(ci int) error {
		c := containers[ci]
		for si, s := range servers {
			if req.Cluster.CanHost(s, c) {
				feasible[ci] = append(feasible[ci], si)
			}
		}
		if len(feasible[ci]) == 0 {
			return fmt.Errorf("core: container %d has no feasible server", c)
		}

		// Proposer preferences: servers by utility (Eq. 10) = current cost
		// minus candidate cost, descending.
		curCost := anchoredCost(ci, original[c])
		entries := make([]prefEntry, 0, len(feasible[ci]))
		for _, si := range feasible[ci] {
			entries = append(entries, prefEntry{idx: si, grade: curCost - anchoredCost(ci, servers[si])})
		}
		sort.SliceStable(entries, func(a, b int) bool { return entries[a].grade > entries[b].grade })
		propPrefs[ci] = make([]int, len(entries))
		for k, e := range entries {
			propPrefs[ci][k] = e.idx
		}

		// Preference-matrix votes (Algorithm 1 lines 11–13): every flow
		// votes its rate onto the feasible server nearest its anchored peer
		// — the endpoint of the flow's optimal path in Figure 5's layered
		// graph. A cached distance-row lookup replaces the fresh BFS the
		// seed ran per (container, flow) pair.
		cands := make([]topology.NodeID, len(feasible[ci]))
		for k, si := range feasible[ci] {
			cands[k] = servers[si]
		}
		votes[ci] = make([]int, len(incident[ci]))
		for k := range incident[ci] {
			best := oracle.NearestByDist(peerSrv[ci][k], cands)
			if best == topology.None {
				votes[ci][k] = -1
				continue
			}
			votes[ci][k] = serverIdx[best]
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Deterministic merge of the votes into the host-preference grades.
	grades := make([][]float64, len(servers))
	for i := range grades {
		grades[i] = make([]float64, len(containers))
	}
	for ci := range containers {
		for k, f := range incident[ci] {
			if si := votes[ci][k]; si >= 0 {
				grades[si][ci] += f.Rate
			}
		}
	}
	hostPrefs := make([][]int, len(servers))
	for si := range servers {
		entries := make([]prefEntry, 0, len(containers))
		for ci := range containers {
			entries = append(entries, prefEntry{idx: ci, grade: grades[si][ci]})
		}
		sort.SliceStable(entries, func(a, b int) bool { return entries[a].grade > entries[b].grade })
		hostPrefs[si] = make([]int, len(entries))
		for k, e := range entries {
			hostPrefs[si][k] = e.idx
		}
	}

	// CPU is the binding capacity dimension for the matching.
	capacity := make([]float64, len(servers))
	for si, s := range servers {
		capacity[si] = float64(req.Cluster.Free(s).CPU)
	}
	loads := make([]float64, len(containers))
	for ci, c := range containers {
		loads[ci] = float64(req.Cluster.Container(c).Demand.CPU)
		if loads[ci] <= 0 {
			loads[ci] = 1 // zero-CPU containers still occupy a scheduling slot
		}
	}

	place := func(c cluster.ContainerID, s topology.NodeID) error {
		if s != topology.None {
			if err := req.Cluster.Place(c, s); err == nil {
				return nil
			}
		}
		// Memory (the unmodeled dimension) blocked the slot: fall back to the
		// original server, then any feasible one.
		if orig := original[c]; orig != topology.None && orig != s {
			if err := req.Cluster.Place(c, orig); err == nil {
				return nil
			}
		}
		for _, alt := range req.Cluster.Candidates(c) {
			if err := req.Cluster.Place(c, alt); err == nil {
				return nil
			}
		}
		return fmt.Errorf("core: container %d has no feasible server after matching", c)
	}

	if h.DisableStableMatching {
		// Ablation: greedy sequential best-utility placement.
		for ci, c := range containers {
			placed := false
			for _, si := range propPrefs[ci] {
				if req.Cluster.CanHost(servers[si], c) {
					if err := req.Cluster.Place(c, servers[si]); err == nil {
						placed = true
						break
					}
				}
			}
			if !placed {
				if err := place(c, original[c]); err != nil {
					return err
				}
			}
		}
		return nil
	}

	res, err := stablematch.Match(&stablematch.Instance{
		NumProposers:  len(containers),
		NumHosts:      len(servers),
		ProposerPrefs: propPrefs,
		HostPrefs:     hostPrefs,
		Load:          loads,
		Capacity:      capacity,
	})
	if err != nil {
		return err
	}
	for ci, hostIdx := range res.HostOf {
		c := containers[ci]
		target := original[c]
		if hostIdx != stablematch.Unmatched {
			target = servers[hostIdx]
		}
		if err := place(c, target); err != nil {
			return err
		}
	}
	return nil
}

// scheduleSubsequentWave implements §5.3.2: reduce placements are fixed, so
// each shuffle flow's destination is static; maps are placed greedily in
// descending shuffle-output order onto the feasible server with the lowest
// added communication delay, then policies are optimized.
func (h *HitScheduler) scheduleSubsequentWave(req *scheduler.Request, movable []scheduler.Task) error {
	loc := req.Locator()
	tasks := append([]scheduler.Task(nil), movable...)
	scheduler.SortTasksByShuffleOutput(tasks)
	oracle := req.Controller.Oracle()

	for _, t := range tasks {
		c := t.Container
		incident := flow.IncidentFlows(c, req.Flows)
		best := topology.None
		bestCost := 0.0
		for _, s := range req.Cluster.Candidates(c) {
			var cost float64
			for _, f := range incident {
				var peer cluster.ContainerID
				if f.Src == c {
					peer = f.Dst
				} else {
					peer = f.Src
				}
				ps := loc.ServerOf(peer)
				if ps == topology.None {
					continue
				}
				d := oracle.Dist(s, ps)
				if d < 0 {
					continue
				}
				cost += f.Rate * float64(d)
			}
			if best == topology.None || cost < bestCost {
				best, bestCost = s, cost
			}
		}
		if best == topology.None {
			return fmt.Errorf("core: no feasible server for map container %d", c)
		}
		// The container was randomly placed during initialization; move it.
		if err := req.Cluster.Place(c, best); err != nil {
			return err
		}
	}
	return h.reinstallPolicies(req, loc)
}
