package core_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/netstate"
	"repro/internal/scheduler"
	"repro/internal/topology"
	"repro/internal/workload"
)

// TestHitShardedParity asserts the sharded optimistic path is invisible:
// for any shard count, placements, routes, and total cost (compared by
// Float64bits) are identical to the sequential scheduler. Both capacity
// regimes run — tight caps make FitsEverywhere flip mid-wave so commits
// actually take the replay path, infinite caps keep every proposal
// adoptable — and a multi-job instance exercises multi-cell fan-out.
func TestHitShardedParity(t *testing.T) {
	type outcome struct {
		placements []topology.NodeID
		routes     [][]topology.NodeID
		cost       float64
	}

	run := func(t *testing.T, shards int, seed int64, switchCap float64, jobs int) outcome {
		t.Helper()
		topo, err := topology.NewTree(3, 4, topology.LinkParams{
			Bandwidth: 10, Latency: 0.1, SwitchCapacity: switchCap,
		})
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cluster.New(topo, cluster.Resources{CPU: 4, Memory: 8192})
		if err != nil {
			t.Fatal(err)
		}
		o := netstate.New(topo)
		ctl := controller.NewWithOracle(topo, o)

		rng := rand.New(rand.NewSource(seed))
		var ws []*workload.Job
		for j := 0; j < jobs; j++ {
			job := &workload.Job{ID: j, NumMaps: 6, NumReduces: 4, InputGB: 6}
			job.Shuffle = make([][]float64, job.NumMaps)
			for i := range job.Shuffle {
				job.Shuffle[i] = make([]float64, job.NumReduces)
				for k := range job.Shuffle[i] {
					job.Shuffle[i][k] = rng.Float64() * 5
				}
			}
			job.MapComputeSec = make([]float64, job.NumMaps)
			job.ReduceComputeSec = make([]float64, job.NumReduces)
			ws = append(ws, job)
		}

		req, _, err := scheduler.NewJobRequest(cl, ctl, ws,
			cluster.Resources{CPU: 1, Memory: 1024}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		h := &core.HitScheduler{Shards: shards}
		if err := h.Schedule(req); err != nil {
			t.Fatal(err)
		}
		var out outcome
		for _, task := range req.Tasks {
			out.placements = append(out.placements, cl.Container(task.Container).Server())
		}
		for _, f := range req.Flows {
			if p := ctl.Policy(f.ID); p != nil {
				out.routes = append(out.routes, append([]topology.NodeID{}, p.List...))
			} else {
				out.routes = append(out.routes, nil)
			}
		}
		c, err := ctl.TotalCost(req.Flows, req.Locator())
		if err != nil {
			t.Fatal(err)
		}
		out.cost = c
		return out
	}

	for _, caps := range []struct {
		name string
		cap  float64
	}{
		{"tight-caps", 150},
		{"infinite-caps", topology.InfiniteCapacity},
	} {
		t.Run(caps.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				seq := run(t, 0, seed, caps.cap, 3)
				for _, shards := range []int{2, 4} {
					got := run(t, shards, seed, caps.cap, 3)
					if len(got.placements) != len(seq.placements) {
						t.Fatalf("seed %d shards %d: placement count %d vs %d",
							seed, shards, len(got.placements), len(seq.placements))
					}
					for i := range got.placements {
						if got.placements[i] != seq.placements[i] {
							t.Fatalf("seed %d shards %d: placement %d differs: sharded %d, sequential %d",
								seed, shards, i, got.placements[i], seq.placements[i])
						}
					}
					for i := range got.routes {
						a, b := got.routes[i], seq.routes[i]
						if len(a) != len(b) {
							t.Fatalf("seed %d shards %d: route %d length %d vs %d",
								seed, shards, i, len(a), len(b))
						}
						for k := range a {
							if a[k] != b[k] {
								t.Fatalf("seed %d shards %d: route %d differs at hop %d: %v vs %v",
									seed, shards, i, k, a, b)
							}
						}
					}
					if math.Float64bits(got.cost) != math.Float64bits(seq.cost) {
						t.Fatalf("seed %d shards %d: total cost sharded %v (bits %x), sequential %v (bits %x)",
							seed, shards, got.cost, math.Float64bits(got.cost),
							seq.cost, math.Float64bits(seq.cost))
					}
				}
			}
		})
	}
}

// TestHitShardedDegradedParity repeats the parity check in degraded mode
// (report attached, zero-capacity servers forcing unplaced containers) so
// the sharded phase-0 dropped/degraded branches are covered too.
func TestHitShardedDegradedParity(t *testing.T) {
	run := func(t *testing.T, shards int) ([]cluster.ContainerID, []topology.NodeID) {
		t.Helper()
		topo, err := topology.NewTree(3, 3, topology.LinkParams{
			Bandwidth: 10, Latency: 0.1, SwitchCapacity: 200,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Capacity for only part of the workload: some containers must drop.
		cl, err := cluster.New(topo, cluster.Resources{CPU: 1, Memory: 1024})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range topo.Servers() {
			if int(s)%2 == 0 {
				if err := cl.SetServerCapacity(s, cluster.Resources{}); err != nil {
					t.Fatal(err)
				}
			}
		}
		ctl := controller.New(topo)
		job := &workload.Job{ID: 0, NumMaps: 14, NumReduces: 6, InputGB: 6}
		job.Shuffle = make([][]float64, job.NumMaps)
		rng := rand.New(rand.NewSource(7))
		for i := range job.Shuffle {
			job.Shuffle[i] = make([]float64, job.NumReduces)
			for k := range job.Shuffle[i] {
				job.Shuffle[i][k] = rng.Float64() * 5
			}
		}
		job.MapComputeSec = make([]float64, job.NumMaps)
		job.ReduceComputeSec = make([]float64, job.NumReduces)
		req, _, err := scheduler.NewJobRequest(cl, ctl, []*workload.Job{job},
			cluster.Resources{CPU: 1, Memory: 1024}, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		req.Degraded = true
		h := &core.HitScheduler{Shards: shards}
		if err := h.Schedule(req); err != nil {
			t.Fatal(err)
		}
		var placements []topology.NodeID
		for _, task := range req.Tasks {
			placements = append(placements, cl.Container(task.Container).Server())
		}
		return req.Report.UnplacedContainers, placements
	}

	seqUnplaced, seqPlaced := run(t, 0)
	if len(seqUnplaced) == 0 {
		t.Fatal("degraded fixture placed everything; test needs unplaced containers")
	}
	shUnplaced, shPlaced := run(t, 4)
	if len(shUnplaced) != len(seqUnplaced) {
		t.Fatalf("unplaced count differs: sharded %v, sequential %v", shUnplaced, seqUnplaced)
	}
	for i := range seqUnplaced {
		if shUnplaced[i] != seqUnplaced[i] {
			t.Fatalf("unplaced[%d] differs: sharded %d, sequential %d", i, shUnplaced[i], seqUnplaced[i])
		}
	}
	for i := range seqPlaced {
		if shPlaced[i] != seqPlaced[i] {
			t.Fatalf("placement %d differs: sharded %d, sequential %d", i, shPlaced[i], seqPlaced[i])
		}
	}
}
