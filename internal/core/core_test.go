package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/scheduler"
	"repro/internal/topology"
	"repro/internal/workload"
)

func testEnv(t *testing.T, depth, fanout int, per cluster.Resources) (*cluster.Cluster, *controller.Controller) {
	t.Helper()
	topo, err := topology.NewTree(depth, fanout, topology.LinkParams{
		Bandwidth: 1, SwitchCapacity: topology.InfiniteCapacity,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(topo, per)
	if err != nil {
		t.Fatal(err)
	}
	return cl, controller.New(topo)
}

func uniformJob(t *testing.T, id, m, r int, cell float64) *workload.Job {
	t.Helper()
	j := &workload.Job{ID: id, NumMaps: m, NumReduces: r, InputGB: float64(m)}
	j.Shuffle = make([][]float64, m)
	for i := range j.Shuffle {
		j.Shuffle[i] = make([]float64, r)
		for k := range j.Shuffle[i] {
			j.Shuffle[i][k] = cell
		}
	}
	j.MapComputeSec = make([]float64, m)
	j.ReduceComputeSec = make([]float64, r)
	return j
}

func buildRequest(t *testing.T, cl *cluster.Cluster, ctl *controller.Controller, jobs []*workload.Job, seed int64) (*scheduler.Request, []scheduler.JobTasks) {
	t.Helper()
	req, jt, err := scheduler.NewJobRequest(cl, ctl, jobs, cluster.Resources{CPU: 1, Memory: 1024}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return req, jt
}

func checkScheduled(t *testing.T, req *scheduler.Request) {
	t.Helper()
	for _, task := range req.Tasks {
		if !req.Cluster.Container(task.Container).Placed() {
			t.Errorf("container %d unplaced", task.Container)
		}
	}
	topo := req.Cluster.Topology()
	for _, f := range req.Flows {
		p := req.Controller.Policy(f.ID)
		if p == nil {
			t.Errorf("flow %d has no policy", f.ID)
			continue
		}
		if err := p.Satisfied(topo); err != nil {
			t.Errorf("flow %d policy unsatisfied: %v", f.ID, err)
		}
	}
	if err := req.Cluster.Validate(); err != nil {
		t.Errorf("cluster invariants: %v", err)
	}
}

func totalCost(t *testing.T, req *scheduler.Request) float64 {
	t.Helper()
	c, err := req.Controller.TotalCost(req.Flows, req.Locator())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// runScheduler executes s on a fresh environment and returns the total cost.
func runScheduler(t *testing.T, s scheduler.Scheduler, jobs func(t *testing.T) []*workload.Job, seed int64, fanout int) float64 {
	t.Helper()
	cl, ctl := testEnv(t, 2, fanout, cluster.Resources{CPU: 2, Memory: 8192})
	req, _ := buildRequest(t, cl, ctl, jobs(t), seed)
	if err := s.Schedule(req); err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	checkScheduled(t, req)
	return totalCost(t, req)
}

func TestHitSchedulesEverything(t *testing.T) {
	cl, ctl := testEnv(t, 2, 4, cluster.Resources{CPU: 4, Memory: 8192})
	req, _ := buildRequest(t, cl, ctl, []*workload.Job{uniformJob(t, 0, 6, 3, 2)}, 1)
	h := &HitScheduler{}
	if h.Name() != "hit" {
		t.Errorf("Name = %q", h.Name())
	}
	if err := h.Schedule(req); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	checkScheduled(t, req)
}

func TestHitBeatsCapacityAndRandomInAggregate(t *testing.T) {
	jobs := func(t *testing.T) []*workload.Job {
		return []*workload.Job{uniformJob(t, 0, 6, 4, 3), uniformJob(t, 1, 4, 2, 1)}
	}
	var hit, capc, rnd float64
	for seed := int64(0); seed < 8; seed++ {
		hit += runScheduler(t, &HitScheduler{}, jobs, seed, 4)
		capc += runScheduler(t, scheduler.Capacity{}, jobs, seed, 4)
		rnd += runScheduler(t, scheduler.Random{}, jobs, seed, 4)
	}
	if hit >= capc {
		t.Errorf("hit aggregate cost %v >= capacity %v", hit, capc)
	}
	if hit >= rnd {
		t.Errorf("hit aggregate cost %v >= random %v", hit, rnd)
	}
	t.Logf("aggregate cost: hit=%.1f capacity=%.1f random=%.1f", hit, capc, rnd)
}

func TestHitNearBruteForceOnTinyInstance(t *testing.T) {
	jobs := func(t *testing.T) []*workload.Job {
		return []*workload.Job{uniformJob(t, 0, 2, 1, 5)}
	}
	var hit, opt float64
	for seed := int64(0); seed < 6; seed++ {
		hit += runScheduler(t, &HitScheduler{}, jobs, seed, 2)
		opt += runScheduler(t, scheduler.BruteForce{}, jobs, seed, 2)
	}
	if hit < opt-1e-9 {
		t.Errorf("hit %v beat the exhaustive optimum %v: cost accounting broken", hit, opt)
	}
	if hit > opt*2+1e-9 {
		t.Errorf("hit aggregate %v more than 2x optimal %v", hit, opt)
	}
	t.Logf("tiny instance aggregate: hit=%.1f optimal=%.1f", hit, opt)
}

func TestHitDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []topology.NodeID {
		cl, ctl := testEnv(t, 2, 4, cluster.Resources{CPU: 2, Memory: 8192})
		req, _ := buildRequest(t, cl, ctl, []*workload.Job{uniformJob(t, 0, 4, 2, 2)}, seed)
		if err := (&HitScheduler{}).Schedule(req); err != nil {
			t.Fatal(err)
		}
		var out []topology.NodeID
		for _, task := range req.Tasks {
			out = append(out, cl.Container(task.Container).Server())
		}
		return out
	}
	a, b := run(5), run(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at task %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestHitColocatesSingleFlowPair(t *testing.T) {
	// One map and one reduce with a huge flow and roomy servers: the optimal
	// assignment puts them on the same server (cost 0) or same rack; Hit
	// must find cost substantially below the cross-rack worst case.
	cl, ctl := testEnv(t, 2, 4, cluster.Resources{CPU: 4, Memory: 8192})
	req, jt := buildRequest(t, cl, ctl, []*workload.Job{uniformJob(t, 0, 1, 1, 10)}, 3)
	if err := (&HitScheduler{}).Schedule(req); err != nil {
		t.Fatal(err)
	}
	checkScheduled(t, req)
	ms := cl.Container(jt[0].Maps[0]).Server()
	rs := cl.Container(jt[0].Reduces[0]).Server()
	if ms != rs {
		t.Errorf("map on %d, reduce on %d; want co-located (cost 0 feasible)", ms, rs)
	}
	if got := totalCost(t, req); got != 0 {
		t.Errorf("cost = %v, want 0 for co-located pair", got)
	}
}

func TestHitSubsequentWaveFixedReducesStay(t *testing.T) {
	cl, ctl := testEnv(t, 2, 4, cluster.Resources{CPU: 4, Memory: 16384})
	req, jt := buildRequest(t, cl, ctl, []*workload.Job{uniformJob(t, 0, 4, 2, 3)}, 2)
	// Pin reduces on known servers (simulating the completed reduce wave).
	srv := cl.Servers()
	pinned := map[cluster.ContainerID]topology.NodeID{}
	for i, c := range jt[0].Reduces {
		if err := cl.Place(c, srv[i]); err != nil {
			t.Fatal(err)
		}
		req.Fixed[c] = true
		pinned[c] = srv[i]
	}
	if err := (&HitScheduler{}).Schedule(req); err != nil {
		t.Fatal(err)
	}
	checkScheduled(t, req)
	for c, want := range pinned {
		if got := cl.Container(c).Server(); got != want {
			t.Errorf("fixed reduce %d moved to %d", c, got)
		}
	}
	// The greedy map pass should pull maps near the reduces: total cost must
	// beat a capacity run on the same pinned setup.
	hitCost := totalCost(t, req)

	cl2, ctl2 := testEnv(t, 2, 4, cluster.Resources{CPU: 4, Memory: 16384})
	req2, jt2 := buildRequest(t, cl2, ctl2, []*workload.Job{uniformJob(t, 0, 4, 2, 3)}, 2)
	for i, c := range jt2[0].Reduces {
		if err := cl2.Place(c, cl2.Servers()[i]); err != nil {
			t.Fatal(err)
		}
		req2.Fixed[c] = true
	}
	if err := (scheduler.Capacity{}).Schedule(req2); err != nil {
		t.Fatal(err)
	}
	capCost := totalCost(t, req2)
	if hitCost > capCost+1e-9 {
		t.Errorf("subsequent-wave hit cost %v > capacity %v", hitCost, capCost)
	}
	t.Logf("subsequent wave: hit=%.1f capacity=%.1f", hitCost, capCost)
}

func TestHitAblationsDoNotBeatFullHit(t *testing.T) {
	jobs := func(t *testing.T) []*workload.Job {
		return []*workload.Job{uniformJob(t, 0, 6, 4, 3)}
	}
	var full, noPolicy, noMatch float64
	for seed := int64(0); seed < 8; seed++ {
		full += runScheduler(t, &HitScheduler{}, jobs, seed, 4)
		noPolicy += runScheduler(t, &HitScheduler{DisablePolicyOpt: true}, jobs, seed, 4)
		noMatch += runScheduler(t, &HitScheduler{DisableStableMatching: true}, jobs, seed, 4)
	}
	t.Logf("aggregate cost: full=%.1f no-policy-opt=%.1f no-matching=%.1f", full, noPolicy, noMatch)
	if full > noPolicy+1e-9 {
		t.Errorf("full hit %v worse than no-policy-opt ablation %v", full, noPolicy)
	}
	// Greedy assignment can occasionally tie; full must never be worse in
	// aggregate.
	if full > noMatch+1e-9 {
		t.Errorf("full hit %v worse than no-matching ablation %v", full, noMatch)
	}
}

func TestHitRespectsSwitchCapacity(t *testing.T) {
	// Tight switch capacities force flows to spread across the fabric; every
	// installed policy must respect the limits (Install enforces, so success
	// implies feasibility).
	topo, err := topology.NewFatTree(4, topology.LinkParams{Bandwidth: 1, SwitchCapacity: 30})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(topo, cluster.Resources{CPU: 4, Memory: 8192})
	if err != nil {
		t.Fatal(err)
	}
	ctl := controller.New(topo)
	req, _, err := scheduler.NewJobRequest(cl, ctl, []*workload.Job{uniformJob(t, 0, 8, 4, 2)},
		cluster.Resources{CPU: 1, Memory: 512}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := (&HitScheduler{}).Schedule(req); err != nil {
		t.Fatalf("Schedule under tight capacity: %v", err)
	}
	checkScheduled(t, req)
	if over := ctl.OverloadedSwitches(); len(over) != 0 {
		t.Errorf("overloaded switches after scheduling: %v", over)
	}
}

func TestHitEmptyRequest(t *testing.T) {
	cl, ctl := testEnv(t, 1, 2, cluster.Resources{CPU: 1, Memory: 1})
	req := &scheduler.Request{Cluster: cl, Controller: ctl, Rand: rand.New(rand.NewSource(1))}
	if err := (&HitScheduler{}).Schedule(req); err != nil {
		t.Fatalf("empty request: %v", err)
	}
}

func TestHitCaseStudyScenario(t *testing.T) {
	// §2.3: jobs of 34 GB (heavy) and 10 GB (light) shuffle, one map + one
	// reduce each, maps pinned to S1, two reduce slots left on S2 and S4.
	// Capacity-style placement (R1->S4, R2->S2) costs 34*3 + 10*1 = 112 GB·T;
	// the optimum (R1->S2, R2->S4) costs 34*1 + 10*3 = 64 GB·T. Hit must find it.
	topo, servers, err := topology.NewCaseStudyTree(topology.LinkParams{
		Bandwidth: 1, SwitchCapacity: topology.InfiniteCapacity,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(topo, cluster.Resources{CPU: 2, Memory: 4096})
	if err != nil {
		t.Fatal(err)
	}
	ctl := controller.New(topo)
	heavy := uniformJob(t, 0, 1, 1, 34)
	light := uniformJob(t, 1, 1, 1, 10)
	req, jt, err := scheduler.NewJobRequest(cl, ctl, []*workload.Job{heavy, light},
		cluster.Resources{CPU: 1, Memory: 1024}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Pin both maps on S1 (as the case study observed), fill S1 and S3 so the
	// reduces must go to S2/S4.
	if err := cl.Place(jt[0].Maps[0], servers[0]); err != nil {
		t.Fatal(err)
	}
	if err := cl.Place(jt[1].Maps[0], servers[0]); err != nil {
		t.Fatal(err)
	}
	req.Fixed[jt[0].Maps[0]] = true
	req.Fixed[jt[1].Maps[0]] = true
	blockA, _ := cl.NewContainer(cluster.Resources{CPU: 2, Memory: 1})
	if err := cl.Place(blockA.ID, servers[2]); err != nil { // fill S3
		t.Fatal(err)
	}
	// The case study caps each server at two tasks; S2 and S4 already run one
	// task each, leaving exactly one reduce slot apiece.
	blockB, _ := cl.NewContainer(cluster.Resources{CPU: 1, Memory: 1})
	if err := cl.Place(blockB.ID, servers[1]); err != nil {
		t.Fatal(err)
	}
	blockC, _ := cl.NewContainer(cluster.Resources{CPU: 1, Memory: 1})
	if err := cl.Place(blockC.ID, servers[3]); err != nil {
		t.Fatal(err)
	}

	if err := (&HitScheduler{}).Schedule(req); err != nil {
		t.Fatal(err)
	}
	checkScheduled(t, req)

	// Evaluate in the case study's GB·T metric.
	cm := ctl.CostModel()
	loc := req.Locator()
	var delay float64
	for _, f := range req.Flows {
		d, err := cm.FlowDelay(f, ctl.Policy(f.ID), loc)
		if err != nil {
			t.Fatal(err)
		}
		delay += d
	}
	if delay != 64 {
		t.Errorf("case-study shuffle delay = %v GB·T, want 64 (optimal)", delay)
	}
	// R1 (heavy) must sit with its map's rack: S2.
	if got := cl.Container(jt[0].Reduces[0]).Server(); got != servers[1] {
		t.Errorf("heavy reduce on %v, want S2 (%v)", got, servers[1])
	}
	if got := cl.Container(jt[1].Reduces[0]).Server(); got != servers[3] {
		t.Errorf("light reduce on %v, want S4 (%v)", got, servers[3])
	}
}

func TestHitOptionOverrides(t *testing.T) {
	h := &HitScheduler{MaxIterations: 2, Epsilon: 0.5}
	if h.maxIterations() != 2 || h.epsilon() != 0.5 {
		t.Error("overrides ignored")
	}
	d := &HitScheduler{}
	if d.maxIterations() != 4 || d.epsilon() != 1e-6 {
		t.Error("defaults wrong")
	}
}

func TestHitRejectsInvalidRequest(t *testing.T) {
	if err := (&HitScheduler{}).Schedule(&scheduler.Request{}); err == nil {
		t.Error("invalid request accepted")
	}
}

func TestHitRejectsNegativeConfig(t *testing.T) {
	cl, ctl := testEnv(t, 2, 2, cluster.Resources{CPU: 4, Memory: 4096})
	jobs := []*workload.Job{uniformJob(t, 0, 2, 1, 1)}

	req, _ := buildRequest(t, cl, ctl, jobs, 1)
	err := (&HitScheduler{MaxIterations: -1}).Schedule(req)
	if err == nil {
		t.Fatal("negative MaxIterations accepted")
	}
	if got := err.Error(); !strings.Contains(got, "MaxIterations") {
		t.Errorf("error %q does not name MaxIterations", got)
	}

	err = (&HitScheduler{Epsilon: -0.5}).Schedule(req)
	if err == nil {
		t.Fatal("negative Epsilon accepted")
	}
	if got := err.Error(); !strings.Contains(got, "Epsilon") {
		t.Errorf("error %q does not name Epsilon", got)
	}

	// Zero still selects the documented defaults and schedules fine.
	if err := (&HitScheduler{}).Schedule(req); err != nil {
		t.Fatalf("zero-value scheduler failed: %v", err)
	}
	checkScheduled(t, req)
}

func TestHitNoFeasibleServer(t *testing.T) {
	cl, ctl := testEnv(t, 1, 2, cluster.Resources{CPU: 1, Memory: 64})
	// Two 1-CPU servers; 3 single-CPU tasks cannot fit.
	req, _ := buildRequest(t, cl, ctl, []*workload.Job{uniformJob(t, 0, 2, 1, 1)}, 1)
	if err := (&HitScheduler{}).Schedule(req); err == nil {
		t.Error("infeasible request accepted")
	}
}

func TestHitSingleIterationStillImproves(t *testing.T) {
	jobs := func(t *testing.T) []*workload.Job {
		return []*workload.Job{uniformJob(t, 0, 4, 2, 3)}
	}
	var one, capc float64
	for seed := int64(0); seed < 4; seed++ {
		one += runScheduler(t, &HitScheduler{MaxIterations: 1}, jobs, seed, 4)
		capc += runScheduler(t, scheduler.Capacity{}, jobs, seed, 4)
	}
	if one >= capc {
		t.Errorf("single-iteration hit %v >= capacity %v", one, capc)
	}
}

func BenchmarkHitSchedule64Servers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		topo, err := topology.NewTree(3, 4, topology.LinkParams{Bandwidth: 1, SwitchCapacity: 1e9})
		if err != nil {
			b.Fatal(err)
		}
		cl, err := cluster.New(topo, cluster.Resources{CPU: 2, Memory: 8192})
		if err != nil {
			b.Fatal(err)
		}
		ctl := controller.New(topo)
		job := &workload.Job{ID: 0, NumMaps: 16, NumReduces: 8, InputGB: 16}
		job.Shuffle = make([][]float64, 16)
		for m := range job.Shuffle {
			job.Shuffle[m] = make([]float64, 8)
			for r := range job.Shuffle[m] {
				job.Shuffle[m][r] = 0.25
			}
		}
		job.MapComputeSec = make([]float64, 16)
		job.ReduceComputeSec = make([]float64, 8)
		req, _, err := scheduler.NewJobRequest(cl, ctl, []*workload.Job{job},
			cluster.Resources{CPU: 1, Memory: 512}, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := (&HitScheduler{}).Schedule(req); err != nil {
			b.Fatal(err)
		}
	}
}
