package core_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/netstate"
	"repro/internal/scheduler"
	"repro/internal/topology"
	"repro/internal/workload"
)

// TestSchedulerOracleParity asserts that memoization is invisible: under a
// fixed seed, every scheduler produces bit-identical placements, policies
// and total cost whether the controller runs on a caching oracle
// (netstate.New) or the uncached reference (netstate.NewUncached).
func TestSchedulerOracleParity(t *testing.T) {
	type outcome struct {
		placements []topology.NodeID
		routes     [][]topology.NodeID
		cost       float64
	}

	run := func(t *testing.T, sched scheduler.Scheduler, cached bool, seed int64) outcome {
		t.Helper()
		topo, err := topology.NewTree(3, 3, topology.LinkParams{
			Bandwidth: 10, Latency: 0.1, SwitchCapacity: 200,
		})
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cluster.New(topo, cluster.Resources{CPU: 4, Memory: 8192})
		if err != nil {
			t.Fatal(err)
		}
		var o *netstate.Oracle
		if cached {
			o = netstate.New(topo)
		} else {
			o = netstate.NewUncached(topo)
		}
		ctl := controller.NewWithOracle(topo, o)

		job := &workload.Job{ID: 0, NumMaps: 6, NumReduces: 4, InputGB: 6}
		job.Shuffle = make([][]float64, job.NumMaps)
		rng := rand.New(rand.NewSource(seed))
		for i := range job.Shuffle {
			job.Shuffle[i] = make([]float64, job.NumReduces)
			for k := range job.Shuffle[i] {
				job.Shuffle[i][k] = rng.Float64() * 5
			}
		}
		job.MapComputeSec = make([]float64, job.NumMaps)
		job.ReduceComputeSec = make([]float64, job.NumReduces)

		req, _, err := scheduler.NewJobRequest(cl, ctl, []*workload.Job{job},
			cluster.Resources{CPU: 1, Memory: 1024}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.Schedule(req); err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		var out outcome
		for _, task := range req.Tasks {
			out.placements = append(out.placements, cl.Container(task.Container).Server())
		}
		for _, f := range req.Flows {
			if p := ctl.Policy(f.ID); p != nil {
				route := append([]topology.NodeID{}, p.List...)
				out.routes = append(out.routes, route)
			} else {
				out.routes = append(out.routes, nil)
			}
		}
		c, err := ctl.TotalCost(req.Flows, req.Locator())
		if err != nil {
			t.Fatal(err)
		}
		out.cost = c
		return out
	}

	scheds := []scheduler.Scheduler{
		&core.HitScheduler{},
		scheduler.Capacity{},
		scheduler.PNA{},
		scheduler.CAM{},
		scheduler.Random{},
	}
	for _, sched := range scheds {
		t.Run(sched.Name(), func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				with := run(t, sched, true, seed)
				without := run(t, sched, false, seed)
				if len(with.placements) != len(without.placements) {
					t.Fatalf("seed %d: placement count %d vs %d",
						seed, len(with.placements), len(without.placements))
				}
				for i := range with.placements {
					if with.placements[i] != without.placements[i] {
						t.Fatalf("seed %d: placement %d differs: cached %d, uncached %d",
							seed, i, with.placements[i], without.placements[i])
					}
				}
				for i := range with.routes {
					a, b := with.routes[i], without.routes[i]
					if len(a) != len(b) {
						t.Fatalf("seed %d: route %d length %d vs %d", seed, i, len(a), len(b))
					}
					for k := range a {
						if a[k] != b[k] {
							t.Fatalf("seed %d: route %d differs at hop %d: %v vs %v",
								seed, i, k, a, b)
						}
					}
				}
				if with.cost != without.cost {
					t.Fatalf("seed %d: total cost cached %v, uncached %v",
						seed, with.cost, without.cost)
				}
			}
		})
	}
}

// TestHitIncrementalParity asserts the dirty-set incremental joint loop is
// invisible: with and without DisableIncremental, over multiple seeds and
// both capacity regimes (tight caps exercise the filtered-stage path,
// infinite caps the full-stage path), placements, routes, and total cost
// are bit-identical (costs compared by Float64bits). The incremental run
// must also issue strictly fewer pair-route queries than the full run —
// clean flows skip the solver outright — otherwise this test would
// vacuously compare two full recomputes.
func TestHitIncrementalParity(t *testing.T) {
	type outcome struct {
		placements []topology.NodeID
		routes     [][]topology.NodeID
		cost       float64
		queries    uint64
	}

	run := func(t *testing.T, incremental bool, seed int64, switchCap float64) outcome {
		t.Helper()
		topo, err := topology.NewTree(3, 3, topology.LinkParams{
			Bandwidth: 10, Latency: 0.1, SwitchCapacity: switchCap,
		})
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cluster.New(topo, cluster.Resources{CPU: 4, Memory: 8192})
		if err != nil {
			t.Fatal(err)
		}
		o := netstate.New(topo)
		ctl := controller.NewWithOracle(topo, o)

		job := &workload.Job{ID: 0, NumMaps: 6, NumReduces: 4, InputGB: 6}
		job.Shuffle = make([][]float64, job.NumMaps)
		rng := rand.New(rand.NewSource(seed))
		for i := range job.Shuffle {
			job.Shuffle[i] = make([]float64, job.NumReduces)
			for k := range job.Shuffle[i] {
				job.Shuffle[i][k] = rng.Float64() * 5
			}
		}
		job.MapComputeSec = make([]float64, job.NumMaps)
		job.ReduceComputeSec = make([]float64, job.NumReduces)

		req, _, err := scheduler.NewJobRequest(cl, ctl, []*workload.Job{job},
			cluster.Resources{CPU: 1, Memory: 1024}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		h := &core.HitScheduler{DisableIncremental: !incremental}
		if err := h.Schedule(req); err != nil {
			t.Fatal(err)
		}
		var out outcome
		for _, task := range req.Tasks {
			out.placements = append(out.placements, cl.Container(task.Container).Server())
		}
		for _, f := range req.Flows {
			if p := ctl.Policy(f.ID); p != nil {
				out.routes = append(out.routes, append([]topology.NodeID{}, p.List...))
			} else {
				out.routes = append(out.routes, nil)
			}
		}
		c, err := ctl.TotalCost(req.Flows, req.Locator())
		if err != nil {
			t.Fatal(err)
		}
		out.cost = c
		hits, misses := o.PairRouteStats()
		out.queries = hits + misses
		return out
	}

	for _, caps := range []struct {
		name string
		cap  float64
	}{
		{"tight-caps", 200},
		{"infinite-caps", topology.InfiniteCapacity},
	} {
		t.Run(caps.name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				inc := run(t, true, seed, caps.cap)
				full := run(t, false, seed, caps.cap)
				if len(inc.placements) != len(full.placements) {
					t.Fatalf("seed %d: placement count %d vs %d",
						seed, len(inc.placements), len(full.placements))
				}
				for i := range inc.placements {
					if inc.placements[i] != full.placements[i] {
						t.Fatalf("seed %d: placement %d differs: incremental %d, full %d",
							seed, i, inc.placements[i], full.placements[i])
					}
				}
				for i := range inc.routes {
					a, b := inc.routes[i], full.routes[i]
					if len(a) != len(b) {
						t.Fatalf("seed %d: route %d length %d vs %d", seed, i, len(a), len(b))
					}
					for k := range a {
						if a[k] != b[k] {
							t.Fatalf("seed %d: route %d differs at hop %d: %v vs %v",
								seed, i, k, a, b)
						}
					}
				}
				if math.Float64bits(inc.cost) != math.Float64bits(full.cost) {
					t.Fatalf("seed %d: total cost incremental %v (bits %x), full %v (bits %x)",
						seed, inc.cost, math.Float64bits(inc.cost),
						full.cost, math.Float64bits(full.cost))
				}
				if inc.queries >= full.queries {
					t.Fatalf("seed %d: incremental run issued %d pair-route queries, full run %d — dirty-set skipping never engaged",
						seed, inc.queries, full.queries)
				}
			}
		})
	}
}

// TestHitParallelPreferenceBuildParity runs Hit-Scheduler on a cluster large
// enough (512 servers) that the preference-matrix build fans out across
// containers, and asserts placements match the uncached (and therefore
// sequential-equivalent) run exactly. Under -race this also exercises the
// concurrent oracle readers.
func TestHitParallelPreferenceBuildParity(t *testing.T) {
	if testing.Short() {
		t.Skip("512-server parity run skipped in -short mode")
	}
	run := func(cached bool) ([]topology.NodeID, float64) {
		topo, err := topology.NewTree(3, 8, topology.LinkParams{
			Bandwidth: 10, SwitchCapacity: topology.InfiniteCapacity,
		})
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cluster.New(topo, cluster.Resources{CPU: 2, Memory: 4096})
		if err != nil {
			t.Fatal(err)
		}
		var o *netstate.Oracle
		if cached {
			o = netstate.New(topo)
		} else {
			o = netstate.NewUncached(topo)
		}
		ctl := controller.NewWithOracle(topo, o)
		// 12 maps × 512 servers crosses the fan-out threshold.
		job := &workload.Job{ID: 0, NumMaps: 12, NumReduces: 6, InputGB: 12}
		job.Shuffle = make([][]float64, job.NumMaps)
		rng := rand.New(rand.NewSource(42))
		for i := range job.Shuffle {
			job.Shuffle[i] = make([]float64, job.NumReduces)
			for k := range job.Shuffle[i] {
				job.Shuffle[i][k] = rng.Float64() * 3
			}
		}
		job.MapComputeSec = make([]float64, job.NumMaps)
		job.ReduceComputeSec = make([]float64, job.NumReduces)
		req, _, err := scheduler.NewJobRequest(cl, ctl, []*workload.Job{job},
			cluster.Resources{CPU: 1, Memory: 512}, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		if err := (&core.HitScheduler{}).Schedule(req); err != nil {
			t.Fatal(err)
		}
		var placements []topology.NodeID
		for _, task := range req.Tasks {
			placements = append(placements, cl.Container(task.Container).Server())
		}
		cost, err := ctl.TotalCost(req.Flows, req.Locator())
		if err != nil {
			t.Fatal(err)
		}
		return placements, cost
	}
	p1, c1 := run(true)
	p2, c2 := run(false)
	if len(p1) != len(p2) {
		t.Fatalf("placement counts differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("placement %d differs: parallel/cached %d, uncached %d", i, p1[i], p2[i])
		}
	}
	if c1 != c2 {
		t.Fatalf("total cost differs: %v vs %v", c1, c2)
	}
}
