package scheduler

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/flow"
	"repro/internal/topology"
	"repro/internal/workload"
)

// testEnv creates a fresh tree cluster + controller.
func testEnv(t *testing.T, depth, fanout int, per cluster.Resources) (*cluster.Cluster, *controller.Controller) {
	t.Helper()
	topo, err := topology.NewTree(depth, fanout, topology.LinkParams{
		Bandwidth: 1, SwitchCapacity: topology.InfiniteCapacity,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(topo, per)
	if err != nil {
		t.Fatal(err)
	}
	return cl, controller.New(topo)
}

// uniformJob builds an m x r job with `cell` GB per shuffle pair.
func uniformJob(t *testing.T, id, m, r int, cell float64) *workload.Job {
	t.Helper()
	j := &workload.Job{ID: id, NumMaps: m, NumReduces: r, InputGB: float64(m)}
	j.Shuffle = make([][]float64, m)
	for i := range j.Shuffle {
		j.Shuffle[i] = make([]float64, r)
		for k := range j.Shuffle[i] {
			j.Shuffle[i][k] = cell
		}
	}
	j.MapComputeSec = make([]float64, m)
	j.ReduceComputeSec = make([]float64, r)
	return j
}

func buildRequest(t *testing.T, cl *cluster.Cluster, ctl *controller.Controller, jobs []*workload.Job, seed int64) (*Request, []JobTasks) {
	t.Helper()
	req, jt, err := NewJobRequest(cl, ctl, jobs, cluster.Resources{CPU: 1, Memory: 1024}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return req, jt
}

// checkScheduled asserts every task container is placed, policies exist for
// all flows and are satisfied, and the cluster invariants hold.
func checkScheduled(t *testing.T, req *Request) {
	t.Helper()
	for _, task := range req.Tasks {
		if !req.Cluster.Container(task.Container).Placed() {
			t.Errorf("container %d unplaced after scheduling", task.Container)
		}
	}
	topo := req.Cluster.Topology()
	for _, f := range req.Flows {
		p := req.Controller.Policy(f.ID)
		if p == nil {
			t.Errorf("flow %d has no policy", f.ID)
			continue
		}
		if err := p.Satisfied(topo); err != nil {
			t.Errorf("flow %d policy unsatisfied: %v", f.ID, err)
		}
	}
	if err := req.Cluster.Validate(); err != nil {
		t.Errorf("cluster invariants: %v", err)
	}
}

func totalCost(t *testing.T, req *Request) float64 {
	t.Helper()
	c, err := req.Controller.TotalCost(req.Flows, req.Locator())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCapacitySchedulesEverything(t *testing.T) {
	cl, ctl := testEnv(t, 2, 4, cluster.Resources{CPU: 4, Memory: 4096})
	req, _ := buildRequest(t, cl, ctl, []*workload.Job{uniformJob(t, 0, 6, 3, 1)}, 1)
	if err := (Capacity{}).Schedule(req); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	checkScheduled(t, req)
	if got := totalCost(t, req); got <= 0 {
		t.Errorf("total cost = %v, want > 0 for a spread-out job", got)
	}
}

func TestCapacitySpreadsLoad(t *testing.T) {
	// 16 servers x 4 CPU, 16 single-CPU tasks: most-free-first never stacks
	// a second task while an empty server remains.
	cl, ctl := testEnv(t, 2, 4, cluster.Resources{CPU: 4, Memory: 4096})
	req, _ := buildRequest(t, cl, ctl, []*workload.Job{uniformJob(t, 0, 8, 8, 1)}, 1)
	if err := (Capacity{}).Schedule(req); err != nil {
		t.Fatal(err)
	}
	for _, s := range cl.Servers() {
		if got := len(cl.ContainersOn(s)); got != 1 {
			t.Errorf("server %d hosts %d containers, want exactly 1 (spread)", s, got)
		}
	}
}

func TestRandomSchedulerDeterministicPerSeed(t *testing.T) {
	place := func(seed int64) []topology.NodeID {
		cl, ctl := testEnv(t, 2, 4, cluster.Resources{CPU: 4, Memory: 4096})
		req, _ := buildRequest(t, cl, ctl, []*workload.Job{uniformJob(t, 0, 4, 2, 1)}, seed)
		if err := (Random{}).Schedule(req); err != nil {
			t.Fatal(err)
		}
		checkScheduled(t, req)
		var out []topology.NodeID
		for _, task := range req.Tasks {
			out = append(out, cl.Container(task.Container).Server())
		}
		return out
	}
	a := place(7)
	b := place(7)
	c := place(8)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical placements (suspicious)")
	}
}

func TestPNABiasesReducesTowardMaps(t *testing.T) {
	// One map, one reduce, heavy flow. PNA should co-locate them on the same
	// rack far more often than uniform (1/fanout at rack granularity).
	sameRack := 0
	const trials = 60
	for seed := int64(0); seed < trials; seed++ {
		cl, ctl := testEnv(t, 2, 4, cluster.Resources{CPU: 1, Memory: 4096})
		req, jt := buildRequest(t, cl, ctl, []*workload.Job{uniformJob(t, 0, 1, 1, 20)}, seed)
		if err := (PNA{}).Schedule(req); err != nil {
			t.Fatal(err)
		}
		checkScheduled(t, req)
		topo := cl.Topology()
		ms := cl.Container(jt[0].Maps[0]).Server()
		rs := cl.Container(jt[0].Reduces[0]).Server()
		if topo.AccessSwitch(ms) == topo.AccessSwitch(rs) {
			sameRack++
		}
	}
	// Uniform placement across 4 racks would co-locate ~25% of the time;
	// PNA's inverse-cost weighting drives it to ~50%. Requiring 40% keeps
	// the assertion far above uniform yet statistically safe for n=60.
	if sameRack < trials*2/5 {
		t.Errorf("PNA co-located reduce with map in %d/%d trials; want >= %d", sameRack, trials, trials*2/5)
	}
}

func TestPNAHandlesZeroCostCandidates(t *testing.T) {
	// Reduce with no incident flows (maps all filtered): all costs zero.
	cl, ctl := testEnv(t, 2, 2, cluster.Resources{CPU: 2, Memory: 4096})
	job := uniformJob(t, 0, 1, 1, 0) // zero shuffle -> no flows built
	req, _ := buildRequest(t, cl, ctl, []*workload.Job{job}, 3)
	if len(req.Flows) != 0 {
		t.Fatalf("zero-cell job built %d flows", len(req.Flows))
	}
	if err := (PNA{}).Schedule(req); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	checkScheduled(t, req)
}

func TestBruteForceBeatsBaselinesOnTinyInstance(t *testing.T) {
	runWith := func(s Scheduler, seed int64) float64 {
		cl, ctl := testEnv(t, 2, 2, cluster.Resources{CPU: 1, Memory: 2048})
		req, _ := buildRequest(t, cl, ctl, []*workload.Job{uniformJob(t, 0, 2, 1, 5)}, seed)
		if err := s.Schedule(req); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		checkScheduled(t, req)
		return totalCost(t, req)
	}
	for seed := int64(0); seed < 5; seed++ {
		opt := runWith(BruteForce{}, seed)
		capc := runWith(Capacity{}, seed)
		rnd := runWith(Random{}, seed)
		if opt > capc+1e-9 {
			t.Errorf("seed %d: bruteforce %v > capacity %v", seed, opt, capc)
		}
		if opt > rnd+1e-9 {
			t.Errorf("seed %d: bruteforce %v > random %v", seed, opt, rnd)
		}
	}
}

func TestBruteForceRejectsLargeSearch(t *testing.T) {
	cl, ctl := testEnv(t, 2, 4, cluster.Resources{CPU: 8, Memory: 65536})
	req, _ := buildRequest(t, cl, ctl, []*workload.Job{uniformJob(t, 0, 10, 10, 1)}, 1)
	if err := (BruteForce{MaxAssignments: 1000}).Schedule(req); err == nil {
		t.Error("oversized search accepted")
	}
}

func TestRequestValidateErrors(t *testing.T) {
	cl, ctl := testEnv(t, 1, 2, cluster.Resources{CPU: 1, Memory: 1})
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		req  Request
	}{
		{"nil cluster", Request{Controller: ctl, Rand: rng}},
		{"nil controller", Request{Cluster: cl, Rand: rng}},
		{"nil rand", Request{Cluster: cl, Controller: ctl}},
		{"unknown container", Request{Cluster: cl, Controller: ctl, Rand: rng,
			Tasks: []Task{{Container: 99}}}},
		{"bad flow", Request{Cluster: cl, Controller: ctl, Rand: rng,
			Flows: []*flow.Flow{{ID: 0, Src: 1, Dst: 1}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.req.Validate(); err == nil {
				t.Error("invalid request accepted")
			}
		})
	}
}

func TestRequestValidateFixedUnplaced(t *testing.T) {
	cl, ctl := testEnv(t, 1, 2, cluster.Resources{CPU: 2, Memory: 2048})
	ct, err := cl.NewContainer(cluster.Resources{CPU: 1, Memory: 1})
	if err != nil {
		t.Fatal(err)
	}
	req := Request{
		Cluster: cl, Controller: ctl, Rand: rand.New(rand.NewSource(1)),
		Tasks: []Task{{Container: ct.ID}},
		Fixed: map[cluster.ContainerID]bool{ct.ID: true},
	}
	if err := req.Validate(); err == nil {
		t.Error("fixed-but-unplaced container accepted")
	}
	if err := cl.Place(ct.ID, cl.Servers()[0]); err != nil {
		t.Fatal(err)
	}
	if err := req.Validate(); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
}

func TestSchedulersRespectFixedContainers(t *testing.T) {
	for _, s := range []Scheduler{Capacity{}, Random{}, PNA{}} {
		t.Run(s.Name(), func(t *testing.T) {
			cl, ctl := testEnv(t, 2, 2, cluster.Resources{CPU: 4, Memory: 8192})
			req, jt := buildRequest(t, cl, ctl, []*workload.Job{uniformJob(t, 0, 2, 2, 1)}, 4)
			// Pin the reduces.
			pinned := map[cluster.ContainerID]topology.NodeID{}
			for _, c := range jt[0].Reduces {
				srv := cl.Servers()[0]
				if err := cl.Place(c, srv); err != nil {
					t.Fatal(err)
				}
				req.Fixed[c] = true
				pinned[c] = srv
			}
			if err := s.Schedule(req); err != nil {
				t.Fatal(err)
			}
			for c, want := range pinned {
				if got := cl.Container(c).Server(); got != want {
					t.Errorf("fixed container %d moved to %d", c, got)
				}
			}
			checkScheduled(t, req)
		})
	}
}

func TestSortTasksByShuffleOutput(t *testing.T) {
	job := uniformJob(t, 0, 3, 2, 1)
	job.Shuffle[0] = []float64{5, 5} // map 0 outputs 10
	job.Shuffle[1] = []float64{1, 1} // map 1 outputs 2
	job.Shuffle[2] = []float64{3, 3} // map 2 outputs 6
	tasks := []Task{
		{Job: job, Kind: workload.MapTask, Index: 1},
		{Job: job, Kind: workload.MapTask, Index: 0},
		{Job: job, Kind: workload.MapTask, Index: 2},
		{Job: job, Kind: workload.ReduceTask, Index: 0}, // consumes 9
		{Job: nil},
	}
	SortTasksByShuffleOutput(tasks)
	if tasks[0].Index != 0 || tasks[0].Kind != workload.MapTask {
		t.Errorf("heaviest first: got index %d", tasks[0].Index)
	}
	if tasks[1].Kind != workload.ReduceTask {
		t.Errorf("second should be the 9 GB reduce, got %v %d", tasks[1].Kind, tasks[1].Index)
	}
	if tasks[len(tasks)-1].Job != nil {
		t.Error("nil-job task should sort last")
	}
}

func TestNewJobRequestErrors(t *testing.T) {
	cl, ctl := testEnv(t, 1, 2, cluster.Resources{CPU: 1, Memory: 1})
	rng := rand.New(rand.NewSource(1))
	if _, _, err := NewJobRequest(nil, ctl, nil, cluster.Resources{}, rng); err == nil {
		t.Error("nil cluster accepted")
	}
	if _, _, err := NewJobRequest(cl, ctl, nil, cluster.Resources{}, nil); err == nil {
		t.Error("nil rng accepted")
	}
	bad := &workload.Job{NumMaps: 0, NumReduces: 1}
	if _, _, err := NewJobRequest(cl, ctl, []*workload.Job{bad}, cluster.Resources{}, rng); err == nil {
		t.Error("invalid job accepted")
	}
}

func TestCAMSchedulesAndBeatsCapacityOnCost(t *testing.T) {
	runCost := func(s Scheduler, seed int64) float64 {
		cl, ctl := testEnv(t, 2, 4, cluster.Resources{CPU: 2, Memory: 8192})
		req, _ := buildRequest(t, cl, ctl, []*workload.Job{uniformJob(t, 0, 6, 4, 3)}, seed)
		if err := s.Schedule(req); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		checkScheduled(t, req)
		return totalCost(t, req)
	}
	var cam, capc float64
	for seed := int64(0); seed < 6; seed++ {
		cam += runCost(CAM{}, seed)
		capc += runCost(Capacity{}, seed)
	}
	if cam > capc {
		t.Errorf("CAM aggregate cost %v > capacity %v", cam, capc)
	}
	t.Logf("aggregate cost: cam=%.1f capacity=%.1f", cam, capc)
}

func TestCAMOptimalOnTinyInstance(t *testing.T) {
	// With maps pinned Capacity-style first, CAM's reduce placement is an
	// exact min-cost assignment; compare against brute force with the same
	// map pre-placement.
	cl, ctl := testEnv(t, 2, 2, cluster.Resources{CPU: 1, Memory: 2048})
	job := uniformJob(t, 0, 2, 2, 4)
	req, jt := buildRequest(t, cl, ctl, []*workload.Job{job}, 2)
	// Pre-place maps exactly as CAM would (most-free order).
	for _, c := range jt[0].Maps {
		s, err := mostFreeServer(cl, c)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Place(c, s); err != nil {
			t.Fatal(err)
		}
		req.Fixed[c] = true
	}
	if err := (CAM{}).Schedule(req); err != nil {
		t.Fatal(err)
	}
	camCost := totalCost(t, req)

	cl2, ctl2 := testEnv(t, 2, 2, cluster.Resources{CPU: 1, Memory: 2048})
	req2, jt2 := buildRequest(t, cl2, ctl2, []*workload.Job{job}, 2)
	for _, c := range jt2[0].Maps {
		s, err := mostFreeServer(cl2, c)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl2.Place(c, s); err != nil {
			t.Fatal(err)
		}
		req2.Fixed[c] = true
	}
	if err := (BruteForce{}).Schedule(req2); err != nil {
		t.Fatal(err)
	}
	optCost := totalCost(t, req2)
	if camCost > optCost+1e-9 {
		t.Errorf("CAM cost %v > brute-force optimum %v with fixed maps", camCost, optCost)
	}
}

func TestCAMRespectsFixed(t *testing.T) {
	cl, ctl := testEnv(t, 2, 2, cluster.Resources{CPU: 4, Memory: 8192})
	req, jt := buildRequest(t, cl, ctl, []*workload.Job{uniformJob(t, 0, 2, 2, 1)}, 4)
	srv := cl.Servers()[0]
	if err := cl.Place(jt[0].Reduces[0], srv); err != nil {
		t.Fatal(err)
	}
	req.Fixed[jt[0].Reduces[0]] = true
	if err := (CAM{}).Schedule(req); err != nil {
		t.Fatal(err)
	}
	if got := cl.Container(jt[0].Reduces[0]).Server(); got != srv {
		t.Errorf("fixed reduce moved to %d", got)
	}
	checkScheduled(t, req)
}

func TestSchedulerNames(t *testing.T) {
	names := map[string]Scheduler{
		"capacity":   Capacity{},
		"random":     Random{},
		"pna":        PNA{},
		"bruteforce": BruteForce{},
		"cam":        CAM{},
		"delaysched": DelayScheduling{},
	}
	for want, s := range names {
		if got := s.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestInstallShortestPoliciesFallsBackUnderSaturation(t *testing.T) {
	// Shortest paths all share the single aggregation chain of the paper
	// tree; with tight switch capacity the second flow's shortest path is
	// infeasible and the optimizer fallback must route it (or report a
	// coherent error when no route exists at all).
	topo, err := topology.NewPaperTree(topology.LinkParams{Bandwidth: 1, SwitchCapacity: 3})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(topo, cluster.Resources{CPU: 4, Memory: 8192})
	if err != nil {
		t.Fatal(err)
	}
	ctl := controller.New(topo)
	// Two heavy cross-rack flows: rate 2 each; access switches hold 3.
	job := uniformJob(t, 0, 2, 1, 2)
	req, jt := buildRequestWith(t, cl, ctl, job, 5)
	// Pin both maps in rack 0 and the reduce in rack 1 so flows share the
	// aggregation chain.
	srv := cl.Servers()
	if err := cl.Place(jt.Maps[0], srv[0]); err != nil {
		t.Fatal(err)
	}
	if err := cl.Place(jt.Maps[1], srv[1]); err != nil {
		t.Fatal(err)
	}
	if err := cl.Place(jt.Reduces[0], srv[9]); err != nil {
		t.Fatal(err)
	}
	req.Fixed[jt.Maps[0]] = true
	req.Fixed[jt.Maps[1]] = true
	req.Fixed[jt.Reduces[0]] = true
	err = InstallShortestPolicies(req)
	// Both flows must traverse the single aggregation switch (cap 3, need
	// 4): no feasible routing exists, so a coherent error is correct.
	if err == nil {
		// If it succeeded, every policy must be installed and satisfied.
		for _, f := range req.Flows {
			if ctl.Policy(f.ID) == nil {
				t.Fatalf("flow %d missing policy", f.ID)
			}
		}
	} else if !strings.Contains(err.Error(), "unroutable") {
		t.Errorf("unexpected error: %v", err)
	}
}

// buildRequestWith is buildRequest for a single prepared job.
func buildRequestWith(t *testing.T, cl *cluster.Cluster, ctl *controller.Controller, job *workload.Job, seed int64) (*Request, JobTasks) {
	t.Helper()
	req, jt, err := NewJobRequest(cl, ctl, []*workload.Job{job}, cluster.Resources{CPU: 1, Memory: 512}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return req, jt[0]
}

func TestCapacityNoRoomError(t *testing.T) {
	cl, ctl := testEnv(t, 1, 2, cluster.Resources{CPU: 1, Memory: 64})
	// 2 servers x 1 CPU; a 3-task job cannot fit.
	req, _ := buildRequest(t, cl, ctl, []*workload.Job{uniformJob(t, 0, 2, 1, 1)}, 1)
	if err := (Capacity{}).Schedule(req); err == nil {
		t.Error("over-committed request accepted")
	}
	if err := (PNA{}).Schedule(req); err == nil {
		t.Error("PNA accepted over-committed request")
	}
	if err := (Random{}).Schedule(req); err == nil {
		t.Error("Random accepted over-committed request")
	}
	if err := (CAM{}).Schedule(req); err == nil {
		t.Error("CAM accepted over-committed request")
	}
}
