package scheduler

import (
	"fmt"
	"math"

	"repro/internal/flow"
	"repro/internal/mincostflow"
	"repro/internal/topology"
	"repro/internal/workload"
)

// CAM approximates the minimum-cost-flow resource manager of Li et al.
// [HPDC'12] ("CAM: a topology aware minimum cost flow based resource
// manager"), a related-work baseline: map tasks are placed Capacity-style,
// then every reduce task is assigned by an exact minimum-cost assignment
// over static hop-count costs. Unlike Hit-Scheduler it neither re-optimizes
// maps, nor iterates, nor manages network policies (flows take shortest
// paths) — it is the strongest static-cost placement baseline.
type CAM struct{}

// Name implements Scheduler.
func (CAM) Name() string { return "cam" }

// Schedule implements Scheduler.
func (CAM) Schedule(req *Request) error {
	if err := req.Validate(); err != nil {
		return err
	}
	oracle := req.Controller.Oracle()

	// Maps first, Capacity-style.
	var reduces []Task
	for _, t := range unplacedTasks(req) {
		if t.Kind == workload.ReduceTask {
			// Degraded mode pre-filters reduces no server can host so the
			// assignment below stays feasible for the rest.
			if req.Degraded && len(req.Cluster.Candidates(t.Container)) == 0 {
				deferUnplaced(req, t.Container)
				continue
			}
			reduces = append(reduces, t)
			continue
		}
		s, err := mostFreeServer(req.Cluster, t.Container)
		if err != nil {
			if deferUnplaced(req, t.Container) {
				continue
			}
			return fmt.Errorf("scheduler: cam: %w", err)
		}
		if err := req.Cluster.Place(t.Container, s); err != nil {
			return err
		}
	}

	if len(reduces) > 0 {
		servers := req.Cluster.Servers()
		loc := req.Locator()
		// cost[r][s] = sum of incident flow bytes x hop distance from the
		// flow's placed peer; capacity = free CPU slots (the matching
		// dimension used across the repository).
		cost := make([][]float64, len(reduces))
		for ri, t := range reduces {
			cost[ri] = make([]float64, len(servers))
			incident := flow.IncidentFlows(t.Container, req.Flows)
			for si, s := range servers {
				if !req.Cluster.CanHost(s, t.Container) {
					cost[ri][si] = math.Inf(1)
					continue
				}
				var c float64
				for _, f := range incident {
					peer := f.Src
					if peer == t.Container {
						peer = f.Dst
					}
					ps := loc.ServerOf(peer)
					if ps == topology.None {
						continue
					}
					d := oracle.Dist(ps, s)
					if d > 0 {
						c += f.SizeGB * float64(d)
					}
				}
				cost[ri][si] = c
			}
		}
		caps := make([]int, len(servers))
		for si, s := range servers {
			free := req.Cluster.Free(s)
			caps[si] = free.CPU
			if caps[si] < 0 {
				caps[si] = 0
			}
		}
		assign, _, err := mincostflow.Assignment(cost, caps)
		if err != nil {
			return fmt.Errorf("scheduler: cam: %w", err)
		}
		for ri, si := range assign {
			if si < 0 {
				if deferUnplaced(req, reduces[ri].Container) {
					continue
				}
				return fmt.Errorf("scheduler: cam: %w: reduce container %d unassigned", ErrNoFeasibleServer, reduces[ri].Container)
			}
			if err := req.Cluster.Place(reduces[ri].Container, servers[si]); err != nil {
				// CPU said yes but memory refused: fall back to most-free.
				s, ferr := mostFreeServer(req.Cluster, reduces[ri].Container)
				if ferr != nil {
					return fmt.Errorf("scheduler: cam: %v (after %v)", ferr, err)
				}
				if err := req.Cluster.Place(reduces[ri].Container, s); err != nil {
					return err
				}
			}
		}
	}
	return InstallShortestPolicies(req)
}
