package scheduler

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/topology"
	"repro/internal/workload"
)

// DelayScheduling approximates the delay-scheduling policy of Zaharia et
// al. [EuroSys'10], the map-locality technique the paper's related work
// contrasts with: a map task briefly forgoes scheduling opportunities until
// a slot opens on a node holding its input block, then relaxes to its
// replicas' racks, then to any node. Reduce tasks are placed Capacity-style
// and shuffle policies follow shortest paths — exactly the paper's point
// that locality-only schedulers "do not guarantee locality for shuffle
// stages".
//
// The one-shot placement model folds the waiting into locality levels: a
// positive SkipBudget admits the rack-local fallback; zero drops straight
// from node-local to anywhere (a locality-indifferent scheduler).
type DelayScheduling struct {
	// NameNode resolves map input block locations. Required.
	NameNode *hdfs.NameNode
	// SkipBudget is the number of scheduling opportunities a task may skip
	// (D in the original paper); any positive value enables the rack-local
	// fallback tier.
	SkipBudget int
}

// Name implements Scheduler.
func (DelayScheduling) Name() string { return "delaysched" }

// Schedule implements Scheduler.
func (d DelayScheduling) Schedule(req *Request) error {
	if err := req.Validate(); err != nil {
		return err
	}
	if d.NameNode == nil {
		return fmt.Errorf("scheduler: delaysched: nil NameNode")
	}
	oracle := req.Controller.Oracle()
	for _, t := range unplacedTasks(req) {
		if t.Kind != workload.MapTask {
			continue // reduces below
		}
		block, ok := req.BlockOf[t.Container]
		if !ok {
			// No input block recorded: place like Capacity.
			s, err := mostFreeServer(req.Cluster, t.Container)
			if err != nil {
				if deferUnplaced(req, t.Container) {
					continue
				}
				return fmt.Errorf("scheduler: delaysched: %w", err)
			}
			if err := req.Cluster.Place(t.Container, s); err != nil {
				return err
			}
			continue
		}
		target := topology.None
		// Tier 1: node-local.
		for _, s := range d.NameNode.Replicas(block) {
			if req.Cluster.CanHost(s, t.Container) {
				target = s
				break
			}
		}
		// Tier 2: rack-local (only with skip budget).
		if target == topology.None && d.SkipBudget > 0 {
			racks := map[topology.NodeID]bool{}
			for _, s := range d.NameNode.Replicas(block) {
				racks[oracle.AccessSwitch(s)] = true
			}
			for _, s := range req.Cluster.Candidates(t.Container) {
				if racks[oracle.AccessSwitch(s)] {
					target = s
					break
				}
			}
		}
		// Tier 3: anywhere.
		if target == topology.None {
			s, err := mostFreeServer(req.Cluster, t.Container)
			if err != nil {
				if deferUnplaced(req, t.Container) {
					continue
				}
				return fmt.Errorf("scheduler: delaysched: %w", err)
			}
			target = s
		}
		if err := req.Cluster.Place(t.Container, target); err != nil {
			return err
		}
	}
	// Reduces: Capacity-style.
	for _, t := range unplacedTasks(req) {
		if t.Kind != workload.ReduceTask {
			continue
		}
		s, err := mostFreeServer(req.Cluster, t.Container)
		if err != nil {
			if deferUnplaced(req, t.Container) {
				continue
			}
			return fmt.Errorf("scheduler: delaysched: %w", err)
		}
		if err := req.Cluster.Place(t.Container, s); err != nil {
			return err
		}
	}
	return InstallShortestPolicies(req)
}

// LocalityStats counts map tasks per achieved locality level.
type LocalityStats struct {
	NodeLocal, RackLocal, Remote int
}

// Total returns the counted map tasks.
func (l LocalityStats) Total() int { return l.NodeLocal + l.RackLocal + l.Remote }

// NodeLocalFraction returns the node-local share (0 when empty).
func (l LocalityStats) NodeLocalFraction() float64 {
	if l.Total() == 0 {
		return 0
	}
	return float64(l.NodeLocal) / float64(l.Total())
}

// MeasureLocality classifies every placed map task with a recorded block.
func MeasureLocality(req *Request, nn *hdfs.NameNode) (LocalityStats, error) {
	var stats LocalityStats
	for _, t := range req.Tasks {
		if t.Kind != workload.MapTask {
			continue
		}
		block, ok := req.BlockOf[t.Container]
		if !ok {
			continue
		}
		ct := req.Cluster.Container(t.Container)
		if ct == nil || !ct.Placed() {
			continue
		}
		loc, err := nn.LocalityOf(block, ct.Server())
		if err != nil {
			return stats, err
		}
		switch loc {
		case hdfs.NodeLocal:
			stats.NodeLocal++
		case hdfs.RackLocal:
			stats.RackLocal++
		default:
			stats.Remote++
		}
	}
	return stats, nil
}

// AssignJobBlocks writes a job's input as an HDFS file (one block per map
// task) and records the block of each map container in req.BlockOf,
// creating the map when needed. It returns the created file.
func AssignJobBlocks(req *Request, nn *hdfs.NameNode, job *workload.Job, mapContainers []cluster.ContainerID) (*hdfs.File, error) {
	if nn == nil {
		return nil, fmt.Errorf("scheduler: nil NameNode")
	}
	if len(mapContainers) != job.NumMaps {
		return nil, fmt.Errorf("scheduler: %d map containers for %d maps", len(mapContainers), job.NumMaps)
	}
	blockGB := job.InputGB / float64(job.NumMaps)
	if blockGB <= 0 {
		blockGB = 0.001
	}
	file, err := nn.Create(fmt.Sprintf("job-%d-input", job.ID), job.InputGB, blockGB)
	if err != nil {
		return nil, err
	}
	if req.BlockOf == nil {
		req.BlockOf = make(map[cluster.ContainerID]hdfs.BlockID)
	}
	for m, c := range mapContainers {
		// Files round up to at least one block; clamp the index.
		bi := m
		if bi >= len(file.Blocks) {
			bi = len(file.Blocks) - 1
		}
		req.BlockOf[c] = file.Blocks[bi]
	}
	return file, nil
}
