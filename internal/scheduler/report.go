package scheduler

import (
	"errors"

	"repro/internal/cluster"
	"repro/internal/flow"
)

// ErrNoFeasibleServer is the sentinel wrapped by every "no feasible server"
// failure in the placement layers (core's random init, the post-matching
// fallback, the subsequent-wave greedy pass). Callers branch on failure
// class with errors.Is instead of string matching — a contract taalint's
// errcompare check now enforces across every decision package.
var ErrNoFeasibleServer = errors.New("no feasible server")

// ScheduleReport is the degraded-mode outcome of one scheduling round: what
// the scheduler could NOT serve instead of failing the whole wave. Entries
// appear in deterministic (input) order.
type ScheduleReport struct {
	// UnplacedContainers lists containers for which no server had capacity;
	// they remain unplaced and their flows are skipped.
	UnplacedContainers []cluster.ContainerID
	// UnroutableFlows lists flows for which no feasible policy exists
	// (ErrNoFeasibleSwitch / ErrNoFeasibleRoute, or an endpoint was left
	// unplaced); they carry no installed policy after the round.
	UnroutableFlows []flow.ID
}

// Clean reports whether the round served everything.
func (r *ScheduleReport) Clean() bool {
	return r == nil || (len(r.UnplacedContainers) == 0 && len(r.UnroutableFlows) == 0)
}

// ensureReport returns the request's report, allocating one on demand (the
// degraded contract: if the caller passed nil, the scheduler stores its own).
func ensureReport(req *Request) *ScheduleReport {
	if req.Report == nil {
		req.Report = &ScheduleReport{}
	}
	return req.Report
}

// deferUnplaced absorbs an infeasible placement in degraded mode: the
// container is recorded, stays unplaced, and its flows will be reported
// unroutable downstream. Returns false when the request is not degraded —
// the caller keeps its historical fail-fast behavior.
func deferUnplaced(req *Request, c cluster.ContainerID) bool {
	if !req.Degraded {
		return false
	}
	ensureReport(req).UnplacedContainers = append(ensureReport(req).UnplacedContainers, c)
	return true
}

// deferUnroutable absorbs an infeasible flow in degraded mode.
func deferUnroutable(req *Request, id flow.ID) bool {
	if !req.Degraded {
		return false
	}
	ensureReport(req).UnroutableFlows = append(ensureReport(req).UnroutableFlows, id)
	return true
}
