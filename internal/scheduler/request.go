package scheduler

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/flow"
	"repro/internal/workload"
)

// JobTasks records the containers created for one job's tasks.
type JobTasks struct {
	Job     *workload.Job
	Maps    []cluster.ContainerID
	Reduces []cluster.ContainerID
}

// NewJobRequest creates one container per Map and Reduce task of every job
// (all tasks in a single wave), builds the corresponding shuffle flows, and
// assembles a ready-to-schedule Request. demand is the per-container
// resource ask; rng drives the schedulers' stochastic choices.
func NewJobRequest(cl *cluster.Cluster, ctl *controller.Controller, jobs []*workload.Job, demand cluster.Resources, rng *rand.Rand) (*Request, []JobTasks, error) {
	if cl == nil || ctl == nil {
		return nil, nil, fmt.Errorf("scheduler: nil cluster or controller")
	}
	if rng == nil {
		return nil, nil, fmt.Errorf("scheduler: nil rng")
	}
	req := &Request{
		Cluster:    cl,
		Controller: ctl,
		Fixed:      make(map[cluster.ContainerID]bool),
		Rand:       rng,
	}
	var jobTasks []JobTasks
	nextFlowID := flow.ID(0)
	for _, job := range jobs {
		if err := job.Validate(); err != nil {
			return nil, nil, err
		}
		jt := JobTasks{Job: job}
		for m := 0; m < job.NumMaps; m++ {
			ct, err := cl.NewContainer(demand)
			if err != nil {
				return nil, nil, err
			}
			jt.Maps = append(jt.Maps, ct.ID)
			req.Tasks = append(req.Tasks, Task{Job: job, Kind: workload.MapTask, Index: m, Container: ct.ID})
		}
		for r := 0; r < job.NumReduces; r++ {
			ct, err := cl.NewContainer(demand)
			if err != nil {
				return nil, nil, err
			}
			jt.Reduces = append(jt.Reduces, ct.ID)
			req.Tasks = append(req.Tasks, Task{Job: job, Kind: workload.ReduceTask, Index: r, Container: ct.ID})
		}
		flows, err := flow.BuildJobFlows(job, jt.Maps, jt.Reduces, nextFlowID, flow.BuildOptions{})
		if err != nil {
			return nil, nil, err
		}
		if len(flows) > 0 {
			nextFlowID = flows[len(flows)-1].ID + 1
		}
		req.Flows = append(req.Flows, flows...)
		jobTasks = append(jobTasks, jt)
	}
	return req, jobTasks, nil
}
