// Package scheduler defines the task-placement interface shared by every
// scheduling strategy in the evaluation, plus the baselines the paper
// compares Hit-Scheduler against: YARN's Capacity scheduler
// (topology-unaware), the Probabilistic Network-Aware scheduler of Shen et
// al. [CLUSTER'16] (static costs, single fixed path), a uniform Random
// scheduler, and an exhaustive BruteForce oracle for tiny instances.
//
// The Hit-Scheduler itself — the paper's contribution — lives in
// internal/core and implements the same Scheduler interface.
package scheduler

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/flow"
	"repro/internal/hdfs"
	"repro/internal/netstate"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Task is one Map or Reduce task awaiting placement; its container has been
// created (unplaced) by the caller.
type Task struct {
	Job       *workload.Job
	Kind      workload.TaskKind
	Index     int
	Container cluster.ContainerID
}

// Request is one scheduling round: place every task's container on a server
// and install a network policy for every flow.
type Request struct {
	Cluster    *cluster.Cluster
	Controller *controller.Controller
	// Tasks lists the containers to place. Containers already placed (from
	// earlier waves) are listed in Fixed and must not move.
	Tasks []Task
	// Flows lists every shuffle flow whose policy this round must (re)install.
	// Endpoints may be containers from Tasks or from Fixed.
	Flows []*flow.Flow
	// Fixed marks containers whose placement is immutable this round
	// (e.g. the single reduce wave while later map waves are scheduled,
	// §5.3.2).
	Fixed map[cluster.ContainerID]bool
	// BlockOf records each map container's HDFS input block, when the
	// workload carries real block placements (see AssignJobBlocks). Only
	// locality-aware schedulers consult it.
	BlockOf map[cluster.ContainerID]hdfs.BlockID
	// Rand drives any stochastic choices. Required.
	Rand *rand.Rand
	// Degraded opts into graceful degradation: on infeasibility the
	// scheduler skips the affected container or flow and records it in
	// Report instead of failing the entire wave. Off by default — the
	// fault-free paths keep their historical fail-fast contract (and their
	// exact RNG draw sequence).
	Degraded bool
	// Report receives the degradation outcome when Degraded is set. If nil,
	// the scheduler allocates one and stores it here.
	Report *ScheduleReport
}

// Validate checks the request is well-formed.
func (r *Request) Validate() error {
	if r.Cluster == nil || r.Controller == nil {
		return fmt.Errorf("scheduler: nil cluster or controller")
	}
	if r.Rand == nil {
		return fmt.Errorf("scheduler: nil Rand")
	}
	for _, t := range r.Tasks {
		ct := r.Cluster.Container(t.Container)
		if ct == nil {
			return fmt.Errorf("scheduler: task container %d unknown", t.Container)
		}
		if r.Fixed[t.Container] && !ct.Placed() {
			return fmt.Errorf("scheduler: container %d fixed but unplaced", t.Container)
		}
	}
	for _, f := range r.Flows {
		if err := f.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Locator returns a live locator over the request's cluster.
func (r *Request) Locator() flow.Locator { return flow.ClusterLocator(r.Cluster) }

// Scheduler is a placement strategy.
type Scheduler interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Schedule places every non-fixed task container and installs policies
	// for every flow in the request.
	Schedule(req *Request) error
}

// InstallShortestPolicies installs the deterministic shortest-path policy
// for every flow in the request; used by topology-unaware baselines. In
// degraded mode, flows with an unplaced endpoint or no feasible policy are
// recorded in the report and skipped instead of failing the round.
func InstallShortestPolicies(req *Request) error {
	loc := req.Locator()
	for _, f := range req.Flows {
		if req.Degraded && (loc.ServerOf(f.Src) == topology.None || loc.ServerOf(f.Dst) == topology.None) {
			deferUnroutable(req, f.ID)
			continue
		}
		p, err := req.Controller.ShortestPolicy(f, loc)
		if err != nil {
			if infeasibleFlow(err) && deferUnroutable(req, f.ID) {
				continue
			}
			return err
		}
		if err := req.Controller.Install(f, p); err != nil {
			// The shortest path may be saturated; fall back to the
			// capacity-aware optimizer so the baseline still functions under
			// pressure (real fabrics drop to ECMP siblings similarly).
			opt, optErr := req.Controller.OptimizePolicy(f, loc)
			if optErr != nil {
				if infeasibleFlow(optErr) && deferUnroutable(req, f.ID) {
					continue
				}
				return fmt.Errorf("scheduler: flow %d unroutable: %v (shortest: %v)", f.ID, optErr, err)
			}
			if err := req.Controller.Install(f, opt); err != nil {
				return fmt.Errorf("scheduler: flow %d unroutable: %w", f.ID, err)
			}
		}
	}
	return nil
}

// infeasibleFlow reports whether err is a routing infeasibility degraded
// mode absorbs (as opposed to a programming error worth failing on).
func infeasibleFlow(err error) bool {
	return errors.Is(err, controller.ErrNoFeasibleSwitch) || errors.Is(err, controller.ErrNoFeasibleRoute)
}

// unplacedTasks returns the tasks whose containers still need a server.
func unplacedTasks(req *Request) []Task {
	var out []Task
	for _, t := range req.Tasks {
		if req.Fixed[t.Container] {
			continue
		}
		if ct := req.Cluster.Container(t.Container); ct != nil && !ct.Placed() {
			out = append(out, t)
		}
	}
	return out
}

// Capacity approximates Hadoop YARN's Capacity scheduler: containers are
// granted on the servers with the most free resources (spreading load for
// utilization), with no knowledge of the network topology. Policies are
// plain shortest paths.
type Capacity struct{}

// Name implements Scheduler.
func (Capacity) Name() string { return "capacity" }

// Schedule implements Scheduler.
func (Capacity) Schedule(req *Request) error {
	if err := req.Validate(); err != nil {
		return err
	}
	for _, t := range unplacedTasks(req) {
		s, err := mostFreeServer(req.Cluster, t.Container)
		if err != nil {
			if deferUnplaced(req, t.Container) {
				continue
			}
			return fmt.Errorf("scheduler: capacity: %w", err)
		}
		if err := req.Cluster.Place(t.Container, s); err != nil {
			return err
		}
	}
	return InstallShortestPolicies(req)
}

// mostFreeServer picks the feasible server with the largest free CPU (ties:
// largest free memory, then lowest ID — mirroring YARN's most-free-first
// ordering).
func mostFreeServer(cl *cluster.Cluster, c cluster.ContainerID) (topology.NodeID, error) {
	best := topology.None
	var bestFree cluster.Resources
	for _, s := range cl.Servers() {
		if !cl.CanHost(s, c) {
			continue
		}
		free := cl.Free(s)
		if best == topology.None ||
			free.CPU > bestFree.CPU ||
			(free.CPU == bestFree.CPU && free.Memory > bestFree.Memory) {
			best, bestFree = s, free
		}
	}
	if best == topology.None {
		return topology.None, fmt.Errorf("%w: none can host container %d", ErrNoFeasibleServer, c)
	}
	return best, nil
}

// Random places every container uniformly at random among feasible servers
// and installs random (type-correct but location-oblivious) policies. It is
// the paper's "random initial assignment" materialized as a scheduler, and
// the weakest baseline.
type Random struct{}

// Name implements Scheduler.
func (Random) Name() string { return "random" }

// Schedule implements Scheduler.
func (Random) Schedule(req *Request) error {
	if err := req.Validate(); err != nil {
		return err
	}
	for _, t := range unplacedTasks(req) {
		cands := req.Cluster.Candidates(t.Container)
		if len(cands) == 0 {
			if deferUnplaced(req, t.Container) {
				continue
			}
			return fmt.Errorf("scheduler: random: %w for container %d", ErrNoFeasibleServer, t.Container)
		}
		if err := req.Cluster.Place(t.Container, cands[req.Rand.Intn(len(cands))]); err != nil {
			return err
		}
	}
	loc := req.Locator()
	for _, f := range req.Flows {
		if req.Degraded && (loc.ServerOf(f.Src) == topology.None || loc.ServerOf(f.Dst) == topology.None) {
			deferUnroutable(req, f.ID)
			continue
		}
		p, err := req.Controller.RandomPolicy(f, loc, req.Rand)
		if err != nil {
			if infeasibleFlow(err) && deferUnroutable(req, f.ID) {
				continue
			}
			return err
		}
		if err := req.Controller.Install(f, p); err != nil {
			return fmt.Errorf("scheduler: random: install flow %d: %w", f.ID, err)
		}
	}
	return nil
}

// PNA is the Probabilistic Network-Aware scheduler [Shen et al.,
// CLUSTER'16] as the paper characterizes it: it knows the topology and link
// bandwidth but assumes the network cost between two nodes is STATIC (hop
// count) and that each flow follows a single fixed path. Map tasks are
// placed like Capacity; each Reduce task is then placed probabilistically,
// weighting every feasible server by the inverse of its transfer cost from
// the already-placed maps plus a rack-contention term (the original
// scheduler's bandwidth awareness: bytes already converging on a rack make
// it less attractive).
type PNA struct {
	// Gamma sharpens the probability weighting: weight = (1/cost)^Gamma.
	// Zero defaults to 2 (the characteristic "probabilistic, mostly greedy"
	// behavior).
	Gamma float64
	// ContentionHops weights the bytes already destined to a rack when
	// costing a new placement there (zero defaults to 2: the up-and-down
	// hops of a rack uplink).
	ContentionHops float64
	// TopK bounds the sampled candidate set to the K cheapest servers (zero
	// defaults to 16). Without the bound, inverse-cost sampling over very
	// large clusters puts most probability mass on the huge population of
	// far servers — the opposite of the scheduler's intent on the small
	// clusters it was designed for.
	TopK int
}

// Name implements Scheduler.
func (PNA) Name() string { return "pna" }

// Schedule implements Scheduler.
func (p PNA) Schedule(req *Request) error {
	if err := req.Validate(); err != nil {
		return err
	}
	gamma := p.Gamma
	if gamma == 0 { //taalint:floateq zero is the explicit "use default" sentinel on the config field

		gamma = 2
	}
	oracle := req.Controller.Oracle()

	// Maps first, Capacity-style.
	var reduces []Task
	for _, t := range unplacedTasks(req) {
		if t.Kind == workload.ReduceTask {
			reduces = append(reduces, t)
			continue
		}
		s, err := mostFreeServer(req.Cluster, t.Container)
		if err != nil {
			if deferUnplaced(req, t.Container) {
				continue
			}
			return fmt.Errorf("scheduler: pna: %w", err)
		}
		if err := req.Cluster.Place(t.Container, s); err != nil {
			return err
		}
	}

	// Reduces: probabilistic placement by inverse cost (static hop distance
	// plus the rack-contention term).
	contention := p.ContentionHops
	if contention == 0 { //taalint:floateq zero is the explicit "use default" sentinel on the config field

		contention = 2
	}
	rackBytes := make(map[topology.NodeID]float64)
	serverBytes := make(map[topology.NodeID]float64)
	loc := req.Locator()
	for _, t := range reduces {
		cands := req.Cluster.Candidates(t.Container)
		if len(cands) == 0 {
			if deferUnplaced(req, t.Container) {
				continue
			}
			return fmt.Errorf("scheduler: pna: %w for container %d", ErrNoFeasibleServer, t.Container)
		}
		inBytes := reduceInputBytes(t.Container, req.Flows)
		costs := make([]float64, len(cands))
		for i, s := range cands {
			c := staticReduceCost(oracle, t.Container, s, req.Flows, loc)
			c += rackBytes[oracle.AccessSwitch(s)] * contention
			c += serverBytes[s] * contention * 2 // terminal downlink is the scarcest hop
			costs[i] = c
		}
		// Sample inverse-cost among only the K cheapest candidates: over very
		// large clusters, unbounded inverse-cost sampling puts most of its
		// probability mass on the huge population of far servers, inverting
		// the scheduler's intent on the small clusters it was designed for.
		topK := p.TopK
		if topK <= 0 {
			topK = 16
		}
		order := make([]int, len(cands))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return costs[order[a]] < costs[order[b]] })
		if len(order) > topK {
			order = order[:topK]
		}
		weights := make([]float64, len(order))
		var total float64
		for k, idx := range order {
			w := 2.0 // zero-cost (fully local) candidates get the best finite weight
			if costs[idx] > 0 {
				w = 1 / costs[idx]
			}
			w = math.Pow(w, gamma)
			weights[k] = w
			total += w
		}
		x := req.Rand.Float64() * total
		chosen := cands[order[len(order)-1]]
		for k, w := range weights {
			if x < w {
				chosen = cands[order[k]]
				break
			}
			x -= w
		}
		if err := req.Cluster.Place(t.Container, chosen); err != nil {
			return err
		}
		rackBytes[oracle.AccessSwitch(chosen)] += inBytes
		serverBytes[chosen] += inBytes
	}
	return InstallShortestPolicies(req)
}

// reduceInputBytes sums the shuffle bytes destined for container c.
func reduceInputBytes(c cluster.ContainerID, flows []*flow.Flow) float64 {
	var sum float64
	for _, f := range flows {
		if f.Dst == c {
			sum += f.SizeGB
		}
	}
	return sum
}

// staticReduceCost is PNA's view of placing reduce container c on server s:
// Σ over incident flows of size × hop-distance from the (placed) peer.
// Unplaced peers contribute nothing (they will be weighted when placed).
// Distances come from the oracle's memoized per-source tables, so repeated
// candidate scans reuse one BFS per placed peer.
func staticReduceCost(o *netstate.Oracle, c cluster.ContainerID, s topology.NodeID, flows []*flow.Flow, loc flow.Locator) float64 {
	var cost float64
	for _, f := range flows {
		var peer cluster.ContainerID
		switch c {
		case f.Dst:
			peer = f.Src
		case f.Src:
			peer = f.Dst
		default:
			continue
		}
		ps := loc.ServerOf(peer)
		if ps == topology.None {
			continue
		}
		d := o.Dist(ps, s)
		if d < 0 {
			continue
		}
		cost += f.SizeGB * float64(d)
	}
	return cost
}

// BruteForce exhaustively enumerates every feasible assignment of the
// request's containers to servers, scoring each with optimizer-routed
// policies, and applies the cheapest. It is exponential and guarded to tiny
// instances; it exists as a test oracle for Hit-Scheduler's quality.
type BruteForce struct {
	// MaxAssignments caps the search; exceeded requests fail. Zero means
	// 200000.
	MaxAssignments int
}

// Name implements Scheduler.
func (BruteForce) Name() string { return "bruteforce" }

// Schedule implements Scheduler.
func (b BruteForce) Schedule(req *Request) error {
	if err := req.Validate(); err != nil {
		return err
	}
	limit := b.MaxAssignments
	if limit == 0 {
		limit = 200000
	}
	tasks := unplacedTasks(req)
	servers := req.Cluster.Servers()

	// Estimate search size.
	size := 1
	for range tasks {
		size *= len(servers)
		if size > limit {
			return fmt.Errorf("scheduler: bruteforce: search space exceeds %d assignments", limit)
		}
	}

	assign := make([]topology.NodeID, len(tasks))
	bestCost := -1.0
	var best []topology.NodeID
	loc := req.Locator()

	var rec func(i int) error
	rec = func(i int) error {
		if i == len(tasks) {
			cost, err := bruteEvaluate(req, loc)
			if err != nil {
				return nil // infeasible routing under this assignment; skip
			}
			if bestCost < 0 || cost < bestCost {
				bestCost = cost
				best = append(best[:0], assign...)
			}
			return nil
		}
		for _, s := range servers {
			if !req.Cluster.CanHost(s, tasks[i].Container) {
				continue
			}
			if err := req.Cluster.Place(tasks[i].Container, s); err != nil {
				continue
			}
			assign[i] = s
			if err := rec(i + 1); err != nil {
				return err
			}
			if err := req.Cluster.Unplace(tasks[i].Container); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return err
	}
	if bestCost < 0 {
		return fmt.Errorf("scheduler: bruteforce: no feasible assignment")
	}
	for i, t := range tasks {
		if err := req.Cluster.Place(t.Container, best[i]); err != nil {
			return err
		}
	}
	// Final policies on the winning assignment.
	for _, f := range req.Flows {
		p, err := req.Controller.OptimizePolicy(f, loc)
		if err != nil {
			return err
		}
		if err := req.Controller.Install(f, p); err != nil {
			return err
		}
	}
	return nil
}

// bruteEvaluate scores the current (fully placed) assignment: optimizer
// policies per flow, summed cost. It leaves no policies installed.
func bruteEvaluate(req *Request, loc flow.Locator) (float64, error) {
	cm := req.Controller.CostModel()
	var total float64
	for _, f := range req.Flows {
		p, err := req.Controller.OptimizePolicy(f, loc)
		if err != nil {
			return 0, err
		}
		c, err := cm.FlowCost(f, p, loc)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}

// SortTasksByShuffleOutput orders tasks by the shuffle bytes they produce or
// consume, descending — the pairing order of §5.3.2.
func SortTasksByShuffleOutput(tasks []Task) {
	volume := func(t Task) float64 {
		if t.Job == nil {
			return 0
		}
		if t.Kind == workload.MapTask {
			return t.Job.MapOutputGB(t.Index)
		}
		return t.Job.ReduceInputGB(t.Index)
	}
	sort.SliceStable(tasks, func(i, j int) bool { return volume(tasks[i]) > volume(tasks[j]) })
}
