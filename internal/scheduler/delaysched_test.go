package scheduler

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/workload"
)

func newNameNode(t *testing.T, cl *cluster.Cluster) *hdfs.NameNode {
	t.Helper()
	nn, err := hdfs.NewNameNode(cl.Topology(), 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	return nn
}

func TestDelaySchedulingAchievesLocality(t *testing.T) {
	cl, ctl := testEnv(t, 2, 4, cluster.Resources{CPU: 4, Memory: 8192})
	nn := newNameNode(t, cl)
	job := uniformJob(t, 0, 12, 4, 0.5)
	job.InputGB = 12
	req, jt := buildRequest(t, cl, ctl, []*workload.Job{job}, 2)
	if _, err := AssignJobBlocks(req, nn, job, jt[0].Maps); err != nil {
		t.Fatal(err)
	}
	if err := (DelayScheduling{NameNode: nn, SkipBudget: 3}).Schedule(req); err != nil {
		t.Fatal(err)
	}
	checkScheduled(t, req)
	stats, err := MeasureLocality(req, nn)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total() != 12 {
		t.Fatalf("measured %d maps, want 12", stats.Total())
	}
	// With 3 replicas on 16 roomy servers, delay scheduling should place
	// nearly every map node-locally.
	if stats.NodeLocalFraction() < 0.9 {
		t.Errorf("node-local fraction = %v, want >= 0.9 (%+v)", stats.NodeLocalFraction(), stats)
	}
}

func TestDelaySchedulingBeatsCapacityOnLocality(t *testing.T) {
	var dsStats, capStats LocalityStats
	{
		cl, ctl := testEnv(t, 2, 4, cluster.Resources{CPU: 2, Memory: 8192})
		nn := newNameNode(t, cl)
		job := uniformJob(t, 0, 10, 4, 0.5)
		job.InputGB = 10
		req, jt := buildRequest(t, cl, ctl, []*workload.Job{job}, 3)
		if _, err := AssignJobBlocks(req, nn, job, jt[0].Maps); err != nil {
			t.Fatal(err)
		}
		if err := (DelayScheduling{NameNode: nn, SkipBudget: 3}).Schedule(req); err != nil {
			t.Fatal(err)
		}
		dsStats, _ = MeasureLocality(req, nn)
	}
	{
		cl, ctl := testEnv(t, 2, 4, cluster.Resources{CPU: 2, Memory: 8192})
		nn := newNameNode(t, cl)
		job := uniformJob(t, 0, 10, 4, 0.5)
		job.InputGB = 10
		req, jt := buildRequest(t, cl, ctl, []*workload.Job{job}, 3)
		if _, err := AssignJobBlocks(req, nn, job, jt[0].Maps); err != nil {
			t.Fatal(err)
		}
		if err := (Capacity{}).Schedule(req); err != nil {
			t.Fatal(err)
		}
		capStats, _ = MeasureLocality(req, nn)
	}
	if dsStats.NodeLocalFraction() <= capStats.NodeLocalFraction() {
		t.Errorf("delaysched locality %v <= capacity %v", dsStats.NodeLocalFraction(), capStats.NodeLocalFraction())
	}
	t.Logf("node-local: delaysched %.0f%%, capacity %.0f%%",
		dsStats.NodeLocalFraction()*100, capStats.NodeLocalFraction()*100)
}

func TestDelaySchedulingZeroBudgetSkipsRackTier(t *testing.T) {
	// Fill every replica host of every block; with SkipBudget 0 the
	// scheduler must fall to "anywhere" (never rack-tier). We just verify it
	// completes and achieves zero node-local placements.
	cl, ctl := testEnv(t, 2, 4, cluster.Resources{CPU: 1, Memory: 8192})
	nn := newNameNode(t, cl)
	job := uniformJob(t, 0, 4, 2, 0.5)
	job.InputGB = 4
	req, jt := buildRequest(t, cl, ctl, []*workload.Job{job}, 4)
	if _, err := AssignJobBlocks(req, nn, job, jt[0].Maps); err != nil {
		t.Fatal(err)
	}
	// Block every replica host with a filler container.
	blocked := map[int64]bool{}
	for _, c := range jt[0].Maps {
		for _, s := range nn.Replicas(req.BlockOf[c]) {
			if blocked[int64(s)] {
				continue
			}
			ct, err := cl.NewContainer(cluster.Resources{CPU: 1, Memory: 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := cl.Place(ct.ID, s); err == nil {
				blocked[int64(s)] = true
			}
		}
	}
	if err := (DelayScheduling{NameNode: nn, SkipBudget: 0}).Schedule(req); err != nil {
		t.Fatal(err)
	}
	stats, err := MeasureLocality(req, nn)
	if err != nil {
		t.Fatal(err)
	}
	if stats.NodeLocal != 0 {
		t.Errorf("node-local = %d with all replica hosts full", stats.NodeLocal)
	}
	checkScheduled(t, req)
}

func TestDelaySchedulingWithoutBlocksFallsBack(t *testing.T) {
	cl, ctl := testEnv(t, 2, 2, cluster.Resources{CPU: 4, Memory: 8192})
	nn := newNameNode(t, cl)
	req, _ := buildRequest(t, cl, ctl, []*workload.Job{uniformJob(t, 0, 3, 2, 1)}, 5)
	// No AssignJobBlocks: BlockOf is empty.
	if err := (DelayScheduling{NameNode: nn}).Schedule(req); err != nil {
		t.Fatal(err)
	}
	checkScheduled(t, req)
	stats, err := MeasureLocality(req, nn)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total() != 0 {
		t.Errorf("stats counted %d maps without blocks", stats.Total())
	}
	if stats.NodeLocalFraction() != 0 {
		t.Error("empty stats fraction should be 0")
	}
}

func TestDelaySchedulingNilNameNode(t *testing.T) {
	cl, ctl := testEnv(t, 1, 2, cluster.Resources{CPU: 2, Memory: 2048})
	req, _ := buildRequest(t, cl, ctl, []*workload.Job{uniformJob(t, 0, 1, 1, 1)}, 1)
	if err := (DelayScheduling{}).Schedule(req); err == nil {
		t.Error("nil NameNode accepted")
	}
}

func TestAssignJobBlocksErrors(t *testing.T) {
	cl, ctl := testEnv(t, 2, 2, cluster.Resources{CPU: 4, Memory: 8192})
	nn := newNameNode(t, cl)
	job := uniformJob(t, 0, 2, 1, 1)
	job.InputGB = 2
	req, jt := buildRequest(t, cl, ctl, []*workload.Job{job}, 6)
	if _, err := AssignJobBlocks(req, nil, job, jt[0].Maps); err == nil {
		t.Error("nil NameNode accepted")
	}
	if _, err := AssignJobBlocks(req, nn, job, jt[0].Maps[:1]); err == nil {
		t.Error("short container list accepted")
	}
	if _, err := AssignJobBlocks(req, nn, job, jt[0].Maps); err != nil {
		t.Fatalf("valid call failed: %v", err)
	}
	// Second call collides on the file name.
	if _, err := AssignJobBlocks(req, nn, job, jt[0].Maps); err == nil {
		t.Error("duplicate file accepted")
	}
}
