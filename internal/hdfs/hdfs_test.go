package hdfs

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func newNN(t *testing.T, depth, fanout, repl int) (*NameNode, *topology.Topology) {
	t.Helper()
	topo, err := topology.NewTree(depth, fanout, topology.LinkParams{})
	if err != nil {
		t.Fatal(err)
	}
	nn, err := NewNameNode(topo, repl, 7)
	if err != nil {
		t.Fatal(err)
	}
	return nn, topo
}

func TestNewNameNodeErrors(t *testing.T) {
	topo, _ := topology.NewTree(1, 2, topology.LinkParams{})
	if _, err := NewNameNode(nil, 3, 1); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := NewNameNode(topo, 0, 1); err == nil {
		t.Error("replication 0 accepted")
	}
	if _, err := NewNameNode(topo, 3, 1); err == nil {
		t.Error("replication > servers accepted")
	}
}

func TestCreateBasics(t *testing.T) {
	nn, _ := newNN(t, 2, 4, 3)
	f, err := nn.Create("input", 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 8 {
		t.Errorf("blocks = %d, want 8", len(f.Blocks))
	}
	if f.TotalGB() != 4 {
		t.Errorf("TotalGB = %v", f.TotalGB())
	}
	for _, b := range f.Blocks {
		if got := len(nn.Replicas(b)); got != 3 {
			t.Errorf("block %d has %d replicas, want 3", b, got)
		}
	}
	if err := nn.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Duplicate name rejected.
	if _, err := nn.Create("input", 1, 0.5); err == nil {
		t.Error("duplicate file accepted")
	}
	// Lookup.
	if got, ok := nn.File("input"); !ok || got != f {
		t.Error("File lookup broken")
	}
	if _, ok := nn.File("nope"); ok {
		t.Error("missing file found")
	}
	if nn.NumBlocks() != 8 {
		t.Errorf("NumBlocks = %d", nn.NumBlocks())
	}
	if nn.Replication() != 3 {
		t.Errorf("Replication = %d", nn.Replication())
	}
}

func TestCreateErrors(t *testing.T) {
	nn, topo := newNN(t, 2, 4, 3)
	if _, err := nn.Create("a", 0, 1); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := nn.Create("b", 1, 0); err == nil {
		t.Error("zero block accepted")
	}
	if _, err := nn.CreateFrom("c", 1, 1, topo.Switches()[0]); err == nil {
		t.Error("switch writer accepted")
	}
}

func TestPlacementPolicyRackSpread(t *testing.T) {
	nn, topo := newNN(t, 2, 4, 3)
	writer := topo.Servers()[0]
	f, err := nn.CreateFrom("data", 8, 1, writer)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range f.Blocks {
		locs := nn.Replicas(b)
		if locs[0] != writer {
			t.Errorf("first replica on %d, want writer %d", locs[0], writer)
		}
		// Replica 2 must be on a different rack than the writer.
		r0 := topo.AccessSwitch(writer)
		r1 := topo.AccessSwitch(locs[1])
		if r0 == r1 {
			t.Errorf("second replica in writer's rack")
		}
		// Replica 3 shares replica 2's rack on a different node.
		r2 := topo.AccessSwitch(locs[2])
		if r1 != r2 {
			t.Errorf("third replica rack %d, want %d", r2, r1)
		}
		if locs[1] == locs[2] {
			t.Error("replicas 2 and 3 on the same node")
		}
	}
}

func TestSingleRackFallback(t *testing.T) {
	// depth 1: one access switch, one rack. Replication must still succeed
	// via the fallback path.
	nn, _ := newNN(t, 1, 4, 3)
	f, err := nn.Create("x", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range f.Blocks {
		if got := len(nn.Replicas(b)); got != 3 {
			t.Errorf("block %d replicas = %d, want 3", b, got)
		}
	}
	if err := nn.Validate(); err != nil {
		t.Error(err)
	}
}

func TestLocalityOf(t *testing.T) {
	nn, topo := newNN(t, 2, 4, 3)
	writer := topo.Servers()[0]
	f, err := nn.CreateFrom("y", 1, 1, writer)
	if err != nil {
		t.Fatal(err)
	}
	b := f.Blocks[0]
	if loc, err := nn.LocalityOf(b, writer); err != nil || loc != NodeLocal {
		t.Errorf("writer locality = %v, %v; want node-local", loc, err)
	}
	// A rack-mate of the writer that is not a replica: rack-local.
	rackMate := topology.None
	for _, s := range topo.Servers() {
		if s == writer || topo.AccessSwitch(s) != topo.AccessSwitch(writer) {
			continue
		}
		isReplica := false
		for _, r := range nn.Replicas(b) {
			if r == s {
				isReplica = true
			}
		}
		if !isReplica {
			rackMate = s
			break
		}
	}
	if rackMate != topology.None {
		if loc, _ := nn.LocalityOf(b, rackMate); loc != RackLocal {
			t.Errorf("rack-mate locality = %v, want rack-local", loc)
		}
	}
	if _, err := nn.LocalityOf(BlockID(999), writer); err == nil {
		t.Error("unknown block accepted")
	}
	if NodeLocal.String() != "node-local" || RackLocal.String() != "rack-local" || Remote.String() != "remote" {
		t.Error("locality strings wrong")
	}
	if Locality(9).String() == "" {
		t.Error("unknown locality string empty")
	}
}

func TestNearestReplicaAndRemoteRead(t *testing.T) {
	nn, topo := newNN(t, 2, 4, 3)
	writer := topo.Servers()[0]
	f, err := nn.CreateFrom("z", 1, 1, writer)
	if err != nil {
		t.Fatal(err)
	}
	b := f.Blocks[0]
	s, d, err := nn.NearestReplica(b, writer)
	if err != nil || s != writer || d != 0 {
		t.Errorf("NearestReplica(writer) = (%d, %d, %v)", s, d, err)
	}
	gb, err := nn.RemoteReadGB(f, b, writer)
	if err != nil || gb != 0 {
		t.Errorf("node-local remote read = %v", gb)
	}
	// A server in a rack with no replicas reads the whole block remotely.
	for _, srv := range topo.Servers() {
		loc, _ := nn.LocalityOf(b, srv)
		if loc == Remote {
			gb, err := nn.RemoteReadGB(f, b, srv)
			if err != nil || gb != f.BlockGB {
				t.Errorf("remote read = %v, want %v", gb, f.BlockGB)
			}
			break
		}
	}
	if _, _, err := nn.NearestReplica(BlockID(999), writer); err == nil {
		t.Error("unknown block accepted")
	}
	if _, err := nn.RemoteReadGB(f, BlockID(999), writer); err == nil {
		t.Error("unknown block accepted")
	}
}

func TestDecommissionReReplicates(t *testing.T) {
	nn, topo := newNN(t, 2, 4, 3)
	if _, err := nn.Create("big", 16, 1); err != nil {
		t.Fatal(err)
	}
	victim := topo.Servers()[0]
	// Find how many blocks the victim holds.
	before := nn.BlocksOn(victim)
	moved, err := nn.Decommission(victim)
	if err != nil {
		t.Fatal(err)
	}
	if moved != before {
		t.Errorf("moved %d, want %d", moved, before)
	}
	if nn.BlocksOn(victim) != 0 {
		t.Errorf("victim still holds %d blocks", nn.BlocksOn(victim))
	}
	// Every block still fully replicated, and no replica on the victim.
	for b := BlockID(0); int(b) < nn.NumBlocks(); b++ {
		locs := nn.Replicas(b)
		if len(locs) != 3 {
			t.Errorf("block %d replicas = %d after decommission", b, len(locs))
		}
		for _, s := range locs {
			if s == victim {
				t.Errorf("block %d still on victim", b)
			}
		}
	}
	if err := nn.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if _, err := nn.Decommission(topo.Switches()[0]); err == nil {
		t.Error("decommissioning a switch accepted")
	}
}

func TestUsageRoughlyBalanced(t *testing.T) {
	nn, topo := newNN(t, 2, 4, 3)
	for i := 0; i < 20; i++ {
		if _, err := nn.Create(fileName(i), 8, 1); err != nil {
			t.Fatal(err)
		}
	}
	min, max := 1<<30, 0
	for _, s := range topo.Servers() {
		u := nn.BlocksOn(s)
		if u < min {
			min = u
		}
		if u > max {
			max = u
		}
	}
	// 480 replicas over 16 servers = 30 each; the two-least-loaded picker
	// keeps the spread tight except that every block's first replica sits on
	// the (uniformly random) writer.
	if max > 3*min+10 {
		t.Errorf("imbalanced usage: min %d, max %d", min, max)
	}
}

func fileName(i int) string { return string(rune('a'+i%26)) + string(rune('0'+i/26)) }

// TestQuickReplicasAlwaysDistinctAndComplete: any file on any topology gets
// fully replicated blocks with distinct homes.
func TestQuickReplicasAlwaysDistinctAndComplete(t *testing.T) {
	topo, err := topology.NewTree(2, 3, topology.LinkParams{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, sizeSeed, replSeed uint8) bool {
		repl := int(replSeed%3) + 1
		nn, err := NewNameNode(topo, repl, seed)
		if err != nil {
			return false
		}
		size := 0.5 + float64(sizeSeed%16)
		file, err := nn.Create("f", size, 1)
		if err != nil {
			return false
		}
		for _, b := range file.Blocks {
			locs := nn.Replicas(b)
			if len(locs) != repl {
				return false
			}
			seen := map[topology.NodeID]bool{}
			for _, s := range locs {
				if seen[s] || !topo.Node(s).IsServer() {
					return false
				}
				seen[s] = true
			}
		}
		return nn.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
