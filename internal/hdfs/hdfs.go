// Package hdfs models the distributed-filesystem side of the paper's
// motivation (§1–2): map input blocks spread over the cluster with HDFS's
// rack-aware replica placement, so a map task's input is node-local,
// rack-local, or remote depending on where its container lands. The remote
// map traffic of Figure 1 — and the delay-scheduling baseline the related
// work compares against — both derive from these placements.
//
// The NameNode implements Hadoop's default block-placement policy: the
// first replica on the writer's node (or a random node), the second on a
// different rack, the third on the same rack as the second but a different
// node; further replicas land on random under-loaded nodes.
package hdfs

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/netstate"
	"repro/internal/topology"
)

// BlockID identifies one block within a NameNode.
type BlockID int

// Locality classifies how close a reader is to a block replica.
type Locality int

const (
	// NodeLocal: a replica lives on the reader's server.
	NodeLocal Locality = iota
	// RackLocal: a replica lives under the reader's access switch.
	RackLocal
	// Remote: every replica is in another rack.
	Remote
)

// String returns "node-local", "rack-local" or "remote".
func (l Locality) String() string {
	switch l {
	case NodeLocal:
		return "node-local"
	case RackLocal:
		return "rack-local"
	case Remote:
		return "remote"
	default:
		return fmt.Sprintf("locality(%d)", int(l))
	}
}

// File is a named sequence of equally-sized blocks.
type File struct {
	Name    string
	Blocks  []BlockID
	BlockGB float64
}

// TotalGB returns the file size.
func (f *File) TotalGB() float64 { return float64(len(f.Blocks)) * f.BlockGB }

// NameNode tracks block replica placements over a topology's servers.
type NameNode struct {
	topo *topology.Topology
	// oracle serves rack and hop-distance queries through the shared
	// netstate caches instead of per-call BFS on the raw topology.
	oracle      *netstate.Oracle
	replication int
	rng         *rand.Rand
	files       map[string]*File
	replicas    map[BlockID][]topology.NodeID
	usage       map[topology.NodeID]int
	nextBlock   BlockID
	// rackOf caches each server's access switch.
	rackOf map[topology.NodeID]topology.NodeID
	racks  map[topology.NodeID][]topology.NodeID // access switch -> servers
}

// NewNameNode builds a NameNode with the given replication factor (Hadoop's
// default is 3) and deterministic seed.
func NewNameNode(topo *topology.Topology, replication int, seed int64) (*NameNode, error) {
	if topo == nil {
		return nil, fmt.Errorf("hdfs: nil topology")
	}
	if replication < 1 {
		return nil, fmt.Errorf("hdfs: replication must be >= 1, got %d", replication)
	}
	if replication > topo.NumServers() {
		return nil, fmt.Errorf("hdfs: replication %d exceeds %d servers", replication, topo.NumServers())
	}
	nn := &NameNode{
		topo:        topo,
		oracle:      netstate.New(topo),
		replication: replication,
		rng:         rand.New(rand.NewSource(seed)),
		files:       make(map[string]*File),
		replicas:    make(map[BlockID][]topology.NodeID),
		usage:       make(map[topology.NodeID]int),
		rackOf:      make(map[topology.NodeID]topology.NodeID),
		racks:       make(map[topology.NodeID][]topology.NodeID),
	}
	for _, s := range topo.Servers() {
		acc := nn.oracle.AccessSwitch(s)
		nn.rackOf[s] = acc
		nn.racks[acc] = append(nn.racks[acc], s)
	}
	return nn, nil
}

// Replication returns the replica count per block.
func (nn *NameNode) Replication() int { return nn.replication }

// NumBlocks returns the total block count.
func (nn *NameNode) NumBlocks() int { return len(nn.replicas) }

// Create writes a file of sizeGB split into blockGB blocks from a random
// writer node. It fails if the name exists.
func (nn *NameNode) Create(name string, sizeGB, blockGB float64) (*File, error) {
	servers := nn.topo.Servers()
	writer := servers[nn.rng.Intn(len(servers))]
	return nn.CreateFrom(name, sizeGB, blockGB, writer)
}

// CreateFrom writes a file with the given writer node (first replica home).
func (nn *NameNode) CreateFrom(name string, sizeGB, blockGB float64, writer topology.NodeID) (*File, error) {
	if _, dup := nn.files[name]; dup {
		return nil, fmt.Errorf("hdfs: file %q exists", name)
	}
	if sizeGB <= 0 || blockGB <= 0 {
		return nil, fmt.Errorf("hdfs: non-positive size/block (%v, %v)", sizeGB, blockGB)
	}
	if !nn.topo.Valid(writer) || !nn.topo.Node(writer).IsServer() {
		return nil, fmt.Errorf("hdfs: writer %d is not a server", writer)
	}
	n := int((sizeGB + blockGB - 1e-12) / blockGB)
	if n < 1 {
		n = 1
	}
	f := &File{Name: name, BlockGB: blockGB}
	for i := 0; i < n; i++ {
		id := nn.nextBlock
		nn.nextBlock++
		locs := nn.placeBlock(writer)
		nn.replicas[id] = locs
		for _, s := range locs {
			nn.usage[s]++
		}
		f.Blocks = append(f.Blocks, id)
	}
	nn.files[name] = f
	return f, nil
}

// placeBlock applies the default placement policy starting from writer.
func (nn *NameNode) placeBlock(writer topology.NodeID) []topology.NodeID {
	chosen := []topology.NodeID{writer}
	used := map[topology.NodeID]bool{writer: true}

	// Second replica: different rack when one exists.
	if len(chosen) < nn.replication {
		if s := nn.pickServer(func(c topology.NodeID) bool {
			return !used[c] && nn.rackOf[c] != nn.rackOf[writer]
		}); s != topology.None {
			chosen = append(chosen, s)
			used[s] = true
		}
	}
	// Third replica: same rack as the second, different node.
	if len(chosen) >= 2 && len(chosen) < nn.replication {
		second := chosen[1]
		if s := nn.pickServer(func(c topology.NodeID) bool {
			return !used[c] && nn.rackOf[c] == nn.rackOf[second]
		}); s != topology.None {
			chosen = append(chosen, s)
			used[s] = true
		}
	}
	// Remaining replicas (or fallbacks when the cluster has one rack):
	// random under-loaded nodes.
	for len(chosen) < nn.replication {
		s := nn.pickServer(func(c topology.NodeID) bool { return !used[c] })
		if s == topology.None {
			break
		}
		chosen = append(chosen, s)
		used[s] = true
	}
	return chosen
}

// pickServer draws uniformly among the two least-loaded eligible servers to
// keep block counts balanced while staying random.
func (nn *NameNode) pickServer(ok func(topology.NodeID) bool) topology.NodeID {
	var eligible []topology.NodeID
	for _, s := range nn.topo.Servers() {
		if ok(s) {
			eligible = append(eligible, s)
		}
	}
	if len(eligible) == 0 {
		return topology.None
	}
	sort.Slice(eligible, func(i, j int) bool {
		ui, uj := nn.usage[eligible[i]], nn.usage[eligible[j]]
		if ui != uj {
			return ui < uj
		}
		return eligible[i] < eligible[j]
	})
	top := 2
	if len(eligible) < top {
		top = len(eligible)
	}
	return eligible[nn.rng.Intn(top)]
}

// File returns a file by name.
func (nn *NameNode) File(name string) (*File, bool) {
	f, ok := nn.files[name]
	return f, ok
}

// Replicas returns a block's replica servers (do not modify).
func (nn *NameNode) Replicas(b BlockID) []topology.NodeID { return nn.replicas[b] }

// BlocksOn returns how many replicas server s stores.
func (nn *NameNode) BlocksOn(s topology.NodeID) int { return nn.usage[s] }

// LocalityOf classifies reading block b from server reader.
func (nn *NameNode) LocalityOf(b BlockID, reader topology.NodeID) (Locality, error) {
	locs, ok := nn.replicas[b]
	if !ok {
		return Remote, fmt.Errorf("hdfs: unknown block %d", b)
	}
	best := Remote
	for _, s := range locs {
		switch {
		case s == reader:
			return NodeLocal, nil
		case nn.rackOf[s] == nn.rackOf[reader]:
			best = RackLocal
		}
	}
	return best, nil
}

// NearestReplica returns the replica closest to reader (by hop distance)
// and its distance.
func (nn *NameNode) NearestReplica(b BlockID, reader topology.NodeID) (topology.NodeID, int, error) {
	locs, ok := nn.replicas[b]
	if !ok {
		return topology.None, -1, fmt.Errorf("hdfs: unknown block %d", b)
	}
	best, bestD := topology.None, -1
	for _, s := range locs {
		d := nn.oracle.Dist(reader, s)
		if d < 0 {
			continue
		}
		if bestD == -1 || d < bestD || (d == bestD && s < best) {
			best, bestD = s, d
		}
	}
	if best == topology.None {
		return topology.None, -1, fmt.Errorf("hdfs: block %d unreachable from %d", b, reader)
	}
	return best, bestD, nil
}

// RemoteReadGB returns the bytes that cross the network when reading block
// b from reader: zero when node-local, the block size otherwise.
func (nn *NameNode) RemoteReadGB(f *File, b BlockID, reader topology.NodeID) (float64, error) {
	loc, err := nn.LocalityOf(b, reader)
	if err != nil {
		return 0, err
	}
	if loc == NodeLocal {
		return 0, nil
	}
	return f.BlockGB, nil
}

// Decommission removes server s: every replica it held is re-replicated
// onto another eligible server (different from existing replica homes). It
// returns the number of blocks re-replicated.
func (nn *NameNode) Decommission(s topology.NodeID) (int, error) {
	if !nn.topo.Valid(s) || !nn.topo.Node(s).IsServer() {
		return 0, fmt.Errorf("hdfs: %d is not a server", s)
	}
	moved := 0
	for b, locs := range nn.replicas {
		idx := -1
		for i, loc := range locs {
			if loc == s {
				idx = i
				break
			}
		}
		if idx < 0 {
			continue
		}
		used := map[topology.NodeID]bool{s: true}
		for _, loc := range locs {
			used[loc] = true
		}
		repl := nn.pickServer(func(c topology.NodeID) bool { return !used[c] })
		if repl == topology.None {
			// No other server available: drop the replica.
			nn.replicas[b] = append(locs[:idx], locs[idx+1:]...)
		} else {
			locs[idx] = repl
			nn.usage[repl]++
			moved++
		}
		nn.usage[s]--
	}
	if nn.usage[s] != 0 {
		return moved, fmt.Errorf("hdfs: usage accounting broken for %d", s)
	}
	delete(nn.usage, s)
	return moved, nil
}

// Validate checks internal invariants (replica counts, usage sums, no
// duplicate replica homes per block).
func (nn *NameNode) Validate() error {
	count := make(map[topology.NodeID]int)
	for b, locs := range nn.replicas {
		seen := make(map[topology.NodeID]bool, len(locs))
		for _, s := range locs {
			if seen[s] {
				return fmt.Errorf("hdfs: block %d has duplicate replica on %d", b, s)
			}
			seen[s] = true
			count[s]++
		}
		if len(locs) == 0 {
			return fmt.Errorf("hdfs: block %d has no replicas", b)
		}
	}
	for s, c := range count {
		if nn.usage[s] != c {
			return fmt.Errorf("hdfs: usage[%d] = %d, want %d", s, nn.usage[s], c)
		}
	}
	return nil
}
