package yarn

import (
	"testing"

	"repro/internal/cluster"
)

func TestConfigureQueuesValidation(t *testing.T) {
	rm, _, _ := newRM(t, cluster.Resources{CPU: 1, Memory: 1024})
	if err := rm.ConfigureQueues(nil); err == nil {
		t.Error("empty config accepted")
	}
	if err := rm.ConfigureQueues(map[string]float64{"": 1}); err == nil {
		t.Error("empty name accepted")
	}
	if err := rm.ConfigureQueues(map[string]float64{"a": 0}); err == nil {
		t.Error("zero share accepted")
	}
	if err := rm.ConfigureQueues(map[string]float64{"a": 3, "b": 1}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if got := rm.Queues(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Queues = %v", got)
	}
	// After submission, reconfiguration is rejected.
	if _, err := rm.SubmitToQueue("app", "a"); err != nil {
		t.Fatal(err)
	}
	if err := rm.ConfigureQueues(map[string]float64{"c": 1}); err == nil {
		t.Error("late reconfiguration accepted")
	}
}

func TestSubmitToQueueErrors(t *testing.T) {
	rm, _, _ := newRM(t, cluster.Resources{CPU: 1, Memory: 1024})
	if _, err := rm.SubmitToQueue("app", "a"); err == nil {
		t.Error("submit without queues accepted")
	}
	if err := rm.ConfigureQueues(map[string]float64{"a": 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := rm.SubmitToQueue("app", "nope"); err == nil {
		t.Error("unknown queue accepted")
	}
}

func TestQueueSharesGovernContention(t *testing.T) {
	// 16 servers x 1 CPU = 16 slots. Queue "big" (share 3) and "small"
	// (share 1) each want 16 containers; grants should split ~12:4.
	rm, cl, _ := newRM(t, cluster.Resources{CPU: 1, Memory: 1024})
	if err := rm.ConfigureQueues(map[string]float64{"big": 3, "small": 1}); err != nil {
		t.Fatal(err)
	}
	big, err := rm.SubmitToQueue("big-app", "big")
	if err != nil {
		t.Fatal(err)
	}
	small, err := rm.SubmitToQueue("small-app", "small")
	if err != nil {
		t.Fatal(err)
	}
	ask := ResourceRequest{ResourceName: AnyHost, NumContainers: 16,
		Capability: cluster.Resources{CPU: 1, Memory: 64}}
	if err := big.Ask(ask); err != nil {
		t.Fatal(err)
	}
	if err := small.Ask(ask); err != nil {
		t.Fatal(err)
	}
	// Heartbeat nodes one at a time: the under-served-queue-first rule
	// alternates grants toward the 3:1 ratio.
	for _, s := range cl.Servers() {
		if _, err := rm.Heartbeat(s); err != nil {
			t.Fatal(err)
		}
	}
	gotBig := len(big.TakeAllocations())
	gotSmall := len(small.TakeAllocations())
	if gotBig+gotSmall != 16 {
		t.Fatalf("grants = %d + %d, want 16 total", gotBig, gotSmall)
	}
	// 3:1 of 16 is 12:4; allow one slot of slack.
	if gotBig < 11 || gotBig > 13 {
		t.Errorf("big queue got %d slots, want ~12", gotBig)
	}
	if got := rm.QueueUsage("big"); got != gotBig {
		t.Errorf("QueueUsage(big) = %d, want %d", got, gotBig)
	}
}

func TestQueueStarvationRecovers(t *testing.T) {
	// Small queue's app arrives late; after the big app releases, the small
	// queue is served first (most under-served).
	rm, cl, _ := newRM(t, cluster.Resources{CPU: 1, Memory: 1024})
	if err := rm.ConfigureQueues(map[string]float64{"big": 1, "small": 1}); err != nil {
		t.Fatal(err)
	}
	big, _ := rm.SubmitToQueue("big-app", "big")
	if err := big.Ask(ResourceRequest{ResourceName: AnyHost, NumContainers: 16,
		Capability: cluster.Resources{CPU: 1, Memory: 64}}); err != nil {
		t.Fatal(err)
	}
	if err := rm.RunUntilSatisfied(5); err != nil {
		t.Fatal(err)
	}
	bigAllocs := big.TakeAllocations()
	if len(bigAllocs) != 16 {
		t.Fatalf("big got %d", len(bigAllocs))
	}
	small, _ := rm.SubmitToQueue("small-app", "small")
	if err := small.Ask(ResourceRequest{ResourceName: AnyHost, NumContainers: 2,
		Capability: cluster.Resources{CPU: 1, Memory: 64}}); err != nil {
		t.Fatal(err)
	}
	// Release two big containers; the freed slots must go to small.
	for i := 0; i < 2; i++ {
		if err := big.Release(bigAllocs[i].Container); err != nil {
			t.Fatal(err)
		}
	}
	if err := rm.RunUntilSatisfied(5); err != nil {
		t.Fatal(err)
	}
	if got := len(small.TakeAllocations()); got != 2 {
		t.Errorf("small got %d grants after release, want 2", got)
	}
	_ = cl
}
