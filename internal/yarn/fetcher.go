package yarn

import (
	"fmt"

	"repro/internal/netstate"
	"repro/internal/topology"
)

// DelayFetcher models the paper's modified shuffle Fetcher (§6.1): the
// transfer delay between two machines is the shuffle cost over the path
// divided by the path's bandwidth, Delay = C(s_i, s_j) / B_ij, plus the
// per-switch forwarding delay. It is the fast closed-form estimator the
// Hadoop-side implementation sleeps on to mimic hierarchical-network
// latency; the flow-level simulator is the ground truth it approximates.
//
// Paths and bottleneck bandwidths come from a netstate.Oracle, so repeated
// fetches between the same server pair reuse one BFS and one bottleneck
// scan (until a bandwidth change bumps the topology version).
type DelayFetcher struct {
	oracle *netstate.Oracle
	// UnitCost is c_s, the per-hop cost multiplier (default 1).
	UnitCost float64
}

// NewDelayFetcher builds a fetcher over the topology with a private oracle.
func NewDelayFetcher(topo *topology.Topology) *DelayFetcher {
	return NewDelayFetcherWithOracle(netstate.New(topo))
}

// NewDelayFetcherWithOracle builds a fetcher sharing an existing oracle (and
// therefore its memoized path tables) with the rest of the system.
func NewDelayFetcherWithOracle(o *netstate.Oracle) *DelayFetcher {
	return &DelayFetcher{oracle: o, UnitCost: 1}
}

// PathBandwidth returns the bottleneck link bandwidth on the shortest path
// between two servers (B_ij), or an error when disconnected.
func (d *DelayFetcher) PathBandwidth(src, dst topology.NodeID) (float64, error) {
	if src == dst {
		return 0, fmt.Errorf("yarn: same-server fetch has no path bandwidth")
	}
	bw, err := d.oracle.PathBandwidth(src, dst)
	if err != nil {
		return 0, fmt.Errorf("yarn: %w", err)
	}
	return bw, nil
}

// FetchDelay estimates the delay of pulling sizeGB of map output from src
// to dst: transfer time at the bottleneck bandwidth plus the route's
// propagation latency in T units. Same-server fetches are free.
func (d *DelayFetcher) FetchDelay(src, dst topology.NodeID, sizeGB float64) (float64, error) {
	if sizeGB < 0 {
		return 0, fmt.Errorf("yarn: negative fetch size %v", sizeGB)
	}
	if src == dst {
		return 0, nil
	}
	bw, err := d.PathBandwidth(src, dst)
	if err != nil {
		return 0, err
	}
	path := d.oracle.ShortestPath(src, dst)
	cost := sizeGB * d.UnitCost
	return cost/bw + d.oracle.PathLatency(path), nil
}
