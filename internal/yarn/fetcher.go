package yarn

import (
	"fmt"

	"repro/internal/topology"
)

// DelayFetcher models the paper's modified shuffle Fetcher (§6.1): the
// transfer delay between two machines is the shuffle cost over the path
// divided by the path's bandwidth, Delay = C(s_i, s_j) / B_ij, plus the
// per-switch forwarding delay. It is the fast closed-form estimator the
// Hadoop-side implementation sleeps on to mimic hierarchical-network
// latency; the flow-level simulator is the ground truth it approximates.
type DelayFetcher struct {
	topo *topology.Topology
	// UnitCost is c_s, the per-hop cost multiplier (default 1).
	UnitCost float64
}

// NewDelayFetcher builds a fetcher over the topology.
func NewDelayFetcher(topo *topology.Topology) *DelayFetcher {
	return &DelayFetcher{topo: topo, UnitCost: 1}
}

// PathBandwidth returns the bottleneck link bandwidth on the shortest path
// between two servers (B_ij), or an error when disconnected.
func (d *DelayFetcher) PathBandwidth(src, dst topology.NodeID) (float64, error) {
	if src == dst {
		return 0, fmt.Errorf("yarn: same-server fetch has no path bandwidth")
	}
	path := d.topo.ShortestPath(src, dst)
	if path == nil {
		return 0, fmt.Errorf("yarn: no path between %d and %d", src, dst)
	}
	min := -1.0
	for i := 1; i < len(path); i++ {
		l, ok := d.topo.Link(path[i-1], path[i])
		if !ok {
			return 0, fmt.Errorf("yarn: missing link %d-%d", path[i-1], path[i])
		}
		if min < 0 || l.Bandwidth < min {
			min = l.Bandwidth
		}
	}
	return min, nil
}

// FetchDelay estimates the delay of pulling sizeGB of map output from src
// to dst: transfer time at the bottleneck bandwidth plus the route's
// propagation latency in T units. Same-server fetches are free.
func (d *DelayFetcher) FetchDelay(src, dst topology.NodeID, sizeGB float64) (float64, error) {
	if sizeGB < 0 {
		return 0, fmt.Errorf("yarn: negative fetch size %v", sizeGB)
	}
	if src == dst {
		return 0, nil
	}
	bw, err := d.PathBandwidth(src, dst)
	if err != nil {
		return 0, err
	}
	path := d.topo.ShortestPath(src, dst)
	cost := sizeGB * d.UnitCost
	return cost/bw + d.topo.PathLatency(path), nil
}
