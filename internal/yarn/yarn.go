// Package yarn reproduces the Hadoop YARN resource-management layer the
// paper implements Hit-Scheduler against (§6): applications negotiate
// containers with a ResourceManager through ResourceRequests; node
// heartbeats drive allocation; and the paper's Hit-ResourceRequest variant
// (§6.2) carries a preferred host — the placement the topology-aware
// optimizer computed — which the ResourceManager honors when the preferred
// node heartbeats with spare resources ("getContainer(Hit-ResourceRequest,
// node)", §6.3).
//
// The model is deliberately single-threaded and deterministic: heartbeats
// are explicit method calls, so simulations and tests control the exact
// interleaving.
package yarn

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/netstate"
	"repro/internal/topology"
)

// AnyHost is the ResourceName wildcard: any node may satisfy the request.
const AnyHost = "*"

// ResourceRequest mirrors YARN's resource ask. A request with ResourceName
// naming a host is the paper's Hit-ResourceRequest: the preferred machine
// for a specific task, read from mapred.job.topologyaware.taskdict (§6.2).
type ResourceRequest struct {
	// Priority orders requests within an application (lower = earlier).
	Priority int
	// ResourceName is AnyHost, a host name (preferred server), or a rack
	// name of the form "/rack-<accessSwitchID>".
	ResourceName string
	// Capability is the resource ask per container.
	Capability cluster.Resources
	// NumContainers of this shape requested.
	NumContainers int
	// RelaxLocality permits falling back to rack-mates and then to any node
	// when the preferred host cannot satisfy the ask. Hit-ResourceRequests
	// set it so jobs make progress under pressure.
	RelaxLocality bool
}

// Validate checks the request's shape.
func (r *ResourceRequest) Validate() error {
	if r.NumContainers <= 0 {
		return fmt.Errorf("yarn: request needs NumContainers >= 1, got %d", r.NumContainers)
	}
	if r.Capability.CPU < 0 || r.Capability.Memory < 0 {
		return fmt.Errorf("yarn: negative capability %v", r.Capability)
	}
	if r.ResourceName == "" {
		return fmt.Errorf("yarn: empty ResourceName (use AnyHost)")
	}
	return nil
}

// Allocation is one granted container.
type Allocation struct {
	Container cluster.ContainerID
	Node      topology.NodeID
	// Preferred reports whether the grant honored the request's preferred
	// host (always true for AnyHost requests).
	Preferred bool
	Priority  int
}

// AppID identifies a submitted application.
type AppID int

// pendingRequest tracks an unsatisfied ask. skips counts heartbeats that
// passed without serving it — YARN's "scheduling opportunities", which
// gate locality relaxation exactly as delay scheduling prescribes.
type pendingRequest struct {
	req       ResourceRequest
	remaining int
	seq       int // submission order tiebreak
	skips     int
}

type appState struct {
	id          AppID
	name        string
	queue       string // "" when queues are not configured
	pending     []*pendingRequest
	allocations []Allocation
	containers  map[cluster.ContainerID]bool
	nextSeq     int
}

// ResourceManager grants containers on a cluster in response to node
// heartbeats, honoring preferred hosts the way §6.3 describes. A request
// with RelaxLocality waits RelaxAfter scheduling opportunities before
// accepting rack-mates of its preferred host and twice that before
// accepting any node (YARN's locality delay).
type ResourceManager struct {
	cl   *cluster.Cluster
	topo *topology.Topology
	// oracle answers rack (access-switch) queries; all path/distance
	// lookups go through netstate rather than the raw topology.
	oracle *netstate.Oracle
	apps   map[AppID]*appState
	order  []AppID // FIFO across applications
	nextID AppID
	// hostByName resolves ResourceName host strings.
	hostByName map[string]topology.NodeID
	// RelaxAfter is the scheduling-opportunity budget before locality
	// relaxation; defaults to the server count (one full sweep).
	RelaxAfter int
	// queueShare holds normalized leaf-queue shares (nil = no queues).
	queueShare map[string]float64
}

// NewResourceManager wraps a cluster.
func NewResourceManager(cl *cluster.Cluster) (*ResourceManager, error) {
	if cl == nil {
		return nil, fmt.Errorf("yarn: nil cluster")
	}
	rm := &ResourceManager{
		cl:         cl,
		topo:       cl.Topology(),
		oracle:     netstate.New(cl.Topology()),
		apps:       make(map[AppID]*appState),
		hostByName: make(map[string]topology.NodeID),
	}
	for _, s := range cl.Servers() {
		rm.hostByName[rm.topo.Node(s).Name] = s
	}
	rm.RelaxAfter = cl.Topology().NumServers()
	return rm, nil
}

// RackOf returns the rack name of a server ("/rack-<accessSwitchID>"), or
// "" for non-servers.
func (rm *ResourceManager) RackOf(server topology.NodeID) string {
	acc := rm.oracle.AccessSwitch(server)
	if acc == topology.None {
		return ""
	}
	return fmt.Sprintf("/rack-%d", acc)
}

// HostNode resolves a host name to its node ID.
func (rm *ResourceManager) HostNode(name string) (topology.NodeID, bool) {
	n, ok := rm.hostByName[name]
	return n, ok
}

// HostName returns a server's name.
func (rm *ResourceManager) HostName(server topology.NodeID) string {
	if !rm.topo.Valid(server) {
		return ""
	}
	return rm.topo.Node(server).Name
}

// Submit registers an application and returns its handle.
func (rm *ResourceManager) Submit(name string) *Application {
	id := rm.nextID
	rm.nextID++
	st := &appState{id: id, name: name, containers: make(map[cluster.ContainerID]bool)}
	rm.apps[id] = st
	rm.order = append(rm.order, id)
	return &Application{rm: rm, id: id}
}

// Application is an ApplicationMaster's handle onto the ResourceManager.
type Application struct {
	rm *ResourceManager
	id AppID
}

// ID returns the application ID.
func (a *Application) ID() AppID { return a.id }

// Ask submits a ResourceRequest (the AM → RM allocate call).
func (a *Application) Ask(req ResourceRequest) error {
	if err := req.Validate(); err != nil {
		return err
	}
	st, ok := a.rm.apps[a.id]
	if !ok {
		return fmt.Errorf("yarn: application %d not registered", a.id)
	}
	if req.ResourceName != AnyHost && req.ResourceName[0] != '/' {
		if _, ok := a.rm.hostByName[req.ResourceName]; !ok {
			return fmt.Errorf("yarn: unknown preferred host %q", req.ResourceName)
		}
	}
	st.pending = append(st.pending, &pendingRequest{req: req, remaining: req.NumContainers, seq: st.nextSeq})
	st.nextSeq++
	sort.SliceStable(st.pending, func(i, j int) bool {
		if st.pending[i].req.Priority != st.pending[j].req.Priority {
			return st.pending[i].req.Priority < st.pending[j].req.Priority
		}
		return st.pending[i].seq < st.pending[j].seq
	})
	return nil
}

// TakeAllocations drains and returns the application's granted containers.
func (a *Application) TakeAllocations() []Allocation {
	st := a.rm.apps[a.id]
	if st == nil {
		return nil
	}
	out := st.allocations
	st.allocations = nil
	return out
}

// Pending returns the number of containers still unsatisfied.
func (a *Application) Pending() int {
	st := a.rm.apps[a.id]
	if st == nil {
		return 0
	}
	n := 0
	for _, p := range st.pending {
		n += p.remaining
	}
	return n
}

// Release returns a container's resources to the cluster (task finished).
func (a *Application) Release(c cluster.ContainerID) error {
	st := a.rm.apps[a.id]
	if st == nil || !st.containers[c] {
		return fmt.Errorf("yarn: application %d does not own container %d", a.id, c)
	}
	delete(st.containers, c)
	return a.rm.cl.Unplace(c)
}

// matchLevel classifies how well a node satisfies a request's locality.
type matchLevel int

const (
	matchNone matchLevel = iota
	matchAny
	matchRack
	matchHost
)

// match classifies how node relates to the request's locality preference,
// honoring the skip budget: lower-locality matches only open up after the
// request has been passed over enough times.
func (rm *ResourceManager) match(p *pendingRequest, node topology.NodeID) matchLevel {
	req := &p.req
	switch {
	case req.ResourceName == AnyHost:
		return matchAny
	case req.ResourceName[0] == '/':
		// Rack-named request: the rack IS the preference; relaxation to any
		// node after one budget.
		if rm.RackOf(node) == req.ResourceName {
			return matchRack
		}
		if req.RelaxLocality && p.skips >= rm.relaxAfter() {
			return matchAny
		}
	default:
		pref, ok := rm.hostByName[req.ResourceName]
		if !ok {
			return matchNone
		}
		if pref == node {
			return matchHost
		}
		if !req.RelaxLocality {
			return matchNone
		}
		if rm.RackOf(pref) == rm.RackOf(node) {
			if p.skips >= rm.relaxAfter() {
				return matchRack
			}
			return matchNone
		}
		if p.skips >= 2*rm.relaxAfter() {
			return matchAny
		}
	}
	return matchNone
}

func (rm *ResourceManager) relaxAfter() int {
	if rm.RelaxAfter > 0 {
		return rm.RelaxAfter
	}
	return rm.topo.NumServers()
}

// fullyRelaxed reports whether waiting longer cannot widen the request's
// candidate set.
func (rm *ResourceManager) fullyRelaxed(p *pendingRequest) bool {
	switch {
	case p.req.ResourceName == AnyHost:
		return true
	case !p.req.RelaxLocality:
		return true
	case p.req.ResourceName[0] == '/':
		return p.skips >= rm.relaxAfter()
	default:
		return p.skips >= 2*rm.relaxAfter()
	}
}

// Heartbeat processes one NodeManager heartbeat: the RM walks applications
// FIFO and grants containers on this node to the best-matching pending
// requests until the node has no spare resources. It returns the number of
// containers granted.
func (rm *ResourceManager) Heartbeat(node topology.NodeID) (int, error) {
	if !rm.topo.Valid(node) || !rm.topo.Node(node).IsServer() {
		return 0, fmt.Errorf("yarn: heartbeat from non-server node %d", node)
	}
	granted := 0
	for _, id := range rm.appOrder() {
		st := rm.apps[id]
		// Grant host-preferring requests first, then rack, then any.
		for _, level := range []matchLevel{matchHost, matchRack, matchAny} {
			for _, p := range st.pending {
				if p.remaining == 0 {
					continue
				}
				if rm.match(p, node) != level {
					continue
				}
				for p.remaining > 0 {
					ct, err := rm.cl.NewContainer(p.req.Capability)
					if err != nil {
						return granted, err
					}
					if err := rm.cl.Place(ct.ID, node); err != nil {
						// Node full (or capability larger than free room):
						// drop the container record and stop trying here.
						break
					}
					p.remaining--
					st.containers[ct.ID] = true
					st.allocations = append(st.allocations, Allocation{
						Container: ct.ID,
						Node:      node,
						Preferred: level == matchHost || p.req.ResourceName == AnyHost,
						Priority:  p.req.Priority,
					})
					granted++
				}
			}
		}
		// Unserved requests consumed a scheduling opportunity.
		for _, p := range st.pending {
			if p.remaining > 0 {
				p.skips++
			}
		}
		st.pending = compactPending(st.pending)
	}
	return granted, nil
}

func compactPending(ps []*pendingRequest) []*pendingRequest {
	out := ps[:0]
	for _, p := range ps {
		if p.remaining > 0 {
			out = append(out, p)
		}
	}
	return out
}

// HeartbeatAll heartbeats every server once, in ascending node order, and
// returns the total grants. Driving it repeatedly converges to either all
// requests satisfied or a fixed point (cluster full).
func (rm *ResourceManager) HeartbeatAll() (int, error) {
	total := 0
	for _, s := range rm.cl.Servers() {
		n, err := rm.Heartbeat(s)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// RunUntilSatisfied heartbeats all nodes until every application's pending
// count reaches zero or no progress is possible; it returns an error in the
// latter case.
func (rm *ResourceManager) RunUntilSatisfied(maxRounds int) error {
	if maxRounds <= 0 {
		maxRounds = 100
	}
	for round := 0; round < maxRounds; round++ {
		pending := 0
		for _, id := range rm.order {
			for _, p := range rm.apps[id].pending {
				pending += p.remaining
			}
		}
		if pending == 0 {
			return nil
		}
		granted, err := rm.HeartbeatAll()
		if err != nil {
			return err
		}
		if granted == 0 {
			// A barren sweep still helps while some request can relax
			// further; once every request is fully relaxed, it is final.
			stuck := true
			for _, id := range rm.order {
				for _, p := range rm.apps[id].pending {
					if p.remaining > 0 && !rm.fullyRelaxed(p) {
						stuck = false
					}
				}
			}
			if stuck {
				return fmt.Errorf("yarn: %d container(s) unsatisfiable (cluster full or locality too strict)", pending)
			}
		}
	}
	return fmt.Errorf("yarn: requests not satisfied after %d rounds", maxRounds)
}
