package yarn

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/scheduler"
	"repro/internal/topology"
	"repro/internal/workload"
)

// uniformJob builds an m x r job with `cell` GB per shuffle pair.
func uniformJob(t *testing.T, m, r int, cell float64) *workload.Job {
	t.Helper()
	j := &workload.Job{ID: 0, NumMaps: m, NumReduces: r, InputGB: float64(m)}
	j.Shuffle = make([][]float64, m)
	for i := range j.Shuffle {
		j.Shuffle[i] = make([]float64, r)
		for k := range j.Shuffle[i] {
			j.Shuffle[i][k] = cell
		}
	}
	j.MapComputeSec = make([]float64, m)
	j.ReduceComputeSec = make([]float64, r)
	return j
}

// TestHitThroughYARN runs the full §6 pipeline: Hit-Scheduler solves TAA on
// a scratch cluster, the solution becomes Hit-ResourceRequests, and the live
// ResourceManager grants containers on exactly the preferred hosts (the
// cluster being idle).
func TestHitThroughYARN(t *testing.T) {
	topo, err := topology.NewTree(2, 4, topology.LinkParams{Bandwidth: 1, SwitchCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Scratch cluster for planning.
	scratch, err := cluster.New(topo, cluster.Resources{CPU: 4, Memory: 8192})
	if err != nil {
		t.Fatal(err)
	}
	ctl := controller.New(topo)
	job := uniformJob(t, 6, 3, 2)
	req, _, err := scheduler.NewJobRequest(scratch, ctl, []*workload.Job{job},
		cluster.Resources{CPU: 1, Memory: 512}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := (&core.HitScheduler{}).Schedule(req); err != nil {
		t.Fatal(err)
	}
	plan, err := PlanFromSchedule(req, cluster.Resources{CPU: 1, Memory: 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Preferred) != 9 {
		t.Fatalf("plan has %d tasks, want 9", len(plan.Preferred))
	}

	// Live cluster served by YARN.
	live, err := cluster.New(topo, cluster.Resources{CPU: 4, Memory: 8192})
	if err != nil {
		t.Fatal(err)
	}
	rm, err := NewResourceManager(live)
	if err != nil {
		t.Fatal(err)
	}
	app := rm.Submit("hit-job")
	allocs, err := Realize(rm, app, plan)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range allocs {
		if a.Node != plan.Preferred[i] {
			t.Errorf("task %d granted on %d, want preferred %d", i, a.Node, plan.Preferred[i])
		}
		if !a.Preferred {
			t.Errorf("task %d grant not marked preferred", i)
		}
	}
	if err := live.Validate(); err != nil {
		t.Errorf("live cluster: %v", err)
	}
}

// TestRealizeFallsBackUnderPressure fills the preferred hosts on the live
// cluster; RelaxLocality lets the grants land elsewhere yet all tasks run.
func TestRealizeFallsBackUnderPressure(t *testing.T) {
	topo, err := topology.NewTree(2, 2, topology.LinkParams{})
	if err != nil {
		t.Fatal(err)
	}
	live, err := cluster.New(topo, cluster.Resources{CPU: 2, Memory: 4096})
	if err != nil {
		t.Fatal(err)
	}
	rm, err := NewResourceManager(live)
	if err != nil {
		t.Fatal(err)
	}
	target := live.Servers()[0]
	// Fill the preferred host.
	for i := 0; i < 2; i++ {
		ct, _ := live.NewContainer(cluster.Resources{CPU: 1, Memory: 1})
		if err := live.Place(ct.ID, target); err != nil {
			t.Fatal(err)
		}
	}
	app := rm.Submit("pressured")
	allocs, err := Realize(rm, app, Plan{
		Preferred:  []topology.NodeID{target, target},
		Capability: cluster.Resources{CPU: 1, Memory: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range allocs {
		if a.Node == target {
			t.Errorf("task %d landed on the full preferred host", i)
		}
		if a.Preferred {
			t.Errorf("task %d fallback grant marked preferred", i)
		}
	}
}

func TestRealizeErrors(t *testing.T) {
	topo, _ := topology.NewTree(1, 2, topology.LinkParams{})
	live, _ := cluster.New(topo, cluster.Resources{CPU: 1, Memory: 1024})
	rm, _ := NewResourceManager(live)
	app := rm.Submit("bad")
	if _, err := Realize(nil, app, Plan{}); err == nil {
		t.Error("nil RM accepted")
	}
	if got, err := Realize(rm, app, Plan{}); err != nil || got != nil {
		t.Error("empty plan should be a successful no-op")
	}
	if _, err := Realize(rm, app, Plan{
		Preferred:  []topology.NodeID{topo.Switches()[0]},
		Capability: cluster.Resources{CPU: 1},
	}); err == nil {
		t.Error("switch as preferred host accepted")
	}
	// Unsatisfiable: more tasks than cluster slots.
	app2 := rm.Submit("big")
	var prefs []topology.NodeID
	for i := 0; i < 5; i++ {
		prefs = append(prefs, live.Servers()[0])
	}
	if _, err := Realize(rm, app2, Plan{Preferred: prefs, Capability: cluster.Resources{CPU: 1}}); err == nil {
		t.Error("oversubscribed plan accepted")
	}
}

func TestPlanFromScheduleUnplaced(t *testing.T) {
	topo, _ := topology.NewTree(1, 2, topology.LinkParams{})
	cl, _ := cluster.New(topo, cluster.Resources{CPU: 2, Memory: 2048})
	ctl := controller.New(topo)
	job := uniformJob(t, 1, 1, 1)
	req, _, err := scheduler.NewJobRequest(cl, ctl, []*workload.Job{job},
		cluster.Resources{CPU: 1, Memory: 1}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlanFromSchedule(req, cluster.Resources{CPU: 1}); err == nil {
		t.Error("unscheduled request accepted")
	}
}
