package yarn

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/topology"
)

func newRM(t *testing.T, per cluster.Resources) (*ResourceManager, *cluster.Cluster, *topology.Topology) {
	t.Helper()
	topo, err := topology.NewTree(2, 4, topology.LinkParams{Bandwidth: 2, SwitchCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(topo, per)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := NewResourceManager(cl)
	if err != nil {
		t.Fatal(err)
	}
	return rm, cl, topo
}

func TestNewResourceManagerNil(t *testing.T) {
	if _, err := NewResourceManager(nil); err == nil {
		t.Error("nil cluster accepted")
	}
}

func TestRequestValidate(t *testing.T) {
	bad := []ResourceRequest{
		{ResourceName: AnyHost, NumContainers: 0},
		{ResourceName: AnyHost, NumContainers: -1},
		{ResourceName: "", NumContainers: 1},
		{ResourceName: AnyHost, NumContainers: 1, Capability: cluster.Resources{CPU: -1}},
	}
	for i, r := range bad {
		if r.Validate() == nil {
			t.Errorf("case %d: invalid request accepted", i)
		}
	}
	good := ResourceRequest{ResourceName: AnyHost, NumContainers: 2, Capability: cluster.Resources{CPU: 1}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
}

func TestAnyHostAllocation(t *testing.T) {
	rm, cl, _ := newRM(t, cluster.Resources{CPU: 2, Memory: 2048})
	app := rm.Submit("wordcount")
	if err := app.Ask(ResourceRequest{
		ResourceName: AnyHost, NumContainers: 5,
		Capability: cluster.Resources{CPU: 1, Memory: 512},
	}); err != nil {
		t.Fatal(err)
	}
	if app.Pending() != 5 {
		t.Errorf("pending = %d, want 5", app.Pending())
	}
	if err := rm.RunUntilSatisfied(10); err != nil {
		t.Fatal(err)
	}
	allocs := app.TakeAllocations()
	if len(allocs) != 5 {
		t.Fatalf("allocations = %d, want 5", len(allocs))
	}
	for _, a := range allocs {
		if cl.Container(a.Container) == nil || cl.Container(a.Container).Server() != a.Node {
			t.Errorf("allocation %v inconsistent with cluster state", a)
		}
		if !a.Preferred {
			t.Errorf("AnyHost grant marked non-preferred: %+v", a)
		}
	}
	// Drained.
	if got := app.TakeAllocations(); got != nil {
		t.Errorf("second drain returned %v", got)
	}
}

func TestPreferredHostHonored(t *testing.T) {
	rm, cl, topo := newRM(t, cluster.Resources{CPU: 4, Memory: 4096})
	target := cl.Servers()[7]
	name := rm.HostName(target)
	if name == "" {
		t.Fatal("no host name")
	}
	app := rm.Submit("hit-job")
	if err := app.Ask(ResourceRequest{
		ResourceName: name, NumContainers: 2,
		Capability:    cluster.Resources{CPU: 1, Memory: 256},
		RelaxLocality: true,
	}); err != nil {
		t.Fatal(err)
	}
	// Heartbeat a non-preferred node in a DIFFERENT rack first: with
	// RelaxLocality the RM may match it at "any" level, but the preferred
	// host must win when we heartbeat the full cluster in order... pin the
	// behavior: heartbeat only the preferred node.
	n, err := rm.Heartbeat(target)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("granted %d on preferred host, want 2", n)
	}
	for _, a := range app.TakeAllocations() {
		if a.Node != target || !a.Preferred {
			t.Errorf("allocation %+v, want preferred host %d", a, target)
		}
	}
	_ = topo
}

func TestRelaxLocalityFallsBack(t *testing.T) {
	rm, cl, _ := newRM(t, cluster.Resources{CPU: 1, Memory: 1024})
	target := cl.Servers()[0]
	// Fill the preferred host completely.
	blocker, err := cl.NewContainer(cluster.Resources{CPU: 1, Memory: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Place(blocker.ID, target); err != nil {
		t.Fatal(err)
	}
	app := rm.Submit("fallback")
	if err := app.Ask(ResourceRequest{
		ResourceName: rm.HostName(target), NumContainers: 1,
		Capability:    cluster.Resources{CPU: 1, Memory: 256},
		RelaxLocality: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := rm.RunUntilSatisfied(5); err != nil {
		t.Fatal(err)
	}
	allocs := app.TakeAllocations()
	if len(allocs) != 1 {
		t.Fatalf("allocations = %d", len(allocs))
	}
	if allocs[0].Node == target {
		t.Error("granted on a full host")
	}
	if allocs[0].Preferred {
		t.Error("fallback grant marked preferred")
	}
}

func TestStrictLocalityBlocks(t *testing.T) {
	rm, cl, _ := newRM(t, cluster.Resources{CPU: 1, Memory: 1024})
	target := cl.Servers()[0]
	blocker, _ := cl.NewContainer(cluster.Resources{CPU: 1, Memory: 1})
	if err := cl.Place(blocker.ID, target); err != nil {
		t.Fatal(err)
	}
	app := rm.Submit("strict")
	if err := app.Ask(ResourceRequest{
		ResourceName: rm.HostName(target), NumContainers: 1,
		Capability:    cluster.Resources{CPU: 1, Memory: 256},
		RelaxLocality: false,
	}); err != nil {
		t.Fatal(err)
	}
	err := rm.RunUntilSatisfied(3)
	if err == nil {
		t.Fatal("strict request satisfied despite full preferred host")
	}
	if !strings.Contains(err.Error(), "unsatisfiable") {
		t.Errorf("unexpected error: %v", err)
	}
	if app.Pending() != 1 {
		t.Errorf("pending = %d, want 1", app.Pending())
	}
}

func TestRackRequests(t *testing.T) {
	rm, cl, topo := newRM(t, cluster.Resources{CPU: 2, Memory: 2048})
	server := cl.Servers()[5]
	rack := rm.RackOf(server)
	if rack == "" || rack[0] != '/' {
		t.Fatalf("rack name %q", rack)
	}
	app := rm.Submit("rack-job")
	if err := app.Ask(ResourceRequest{
		ResourceName: rack, NumContainers: 3,
		Capability: cluster.Resources{CPU: 1, Memory: 128},
	}); err != nil {
		t.Fatal(err)
	}
	if err := rm.RunUntilSatisfied(5); err != nil {
		t.Fatal(err)
	}
	for _, a := range app.TakeAllocations() {
		if rm.RackOf(a.Node) != rack {
			t.Errorf("grant on %d outside rack %s", a.Node, rack)
		}
	}
	if rm.RackOf(topo.Switches()[0]) != "" {
		t.Error("rack of a switch should be empty")
	}
}

func TestPriorityOrdering(t *testing.T) {
	rm, _, _ := newRM(t, cluster.Resources{CPU: 1, Memory: 1024})
	app := rm.Submit("prio")
	// Low priority asked first, high priority second; high must win the
	// single slot per node... grant order within one heartbeat follows
	// priority.
	if err := app.Ask(ResourceRequest{ResourceName: AnyHost, NumContainers: 1, Priority: 5,
		Capability: cluster.Resources{CPU: 1, Memory: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := app.Ask(ResourceRequest{ResourceName: AnyHost, NumContainers: 1, Priority: 1,
		Capability: cluster.Resources{CPU: 1, Memory: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := rm.Heartbeat(rm.cl.Servers()[0]); err != nil {
		t.Fatal(err)
	}
	allocs := app.TakeAllocations()
	if len(allocs) != 1 {
		t.Fatalf("allocs = %d, want 1 (node holds one container)", len(allocs))
	}
	if allocs[0].Priority != 1 {
		t.Errorf("granted priority %d first, want 1", allocs[0].Priority)
	}
}

func TestUnknownPreferredHostRejected(t *testing.T) {
	rm, _, _ := newRM(t, cluster.Resources{CPU: 1, Memory: 1})
	app := rm.Submit("bad")
	if err := app.Ask(ResourceRequest{ResourceName: "no-such-host", NumContainers: 1}); err == nil {
		t.Error("unknown host accepted")
	}
}

func TestReleaseReturnsResources(t *testing.T) {
	rm, cl, _ := newRM(t, cluster.Resources{CPU: 1, Memory: 1024})
	app := rm.Submit("rel")
	if err := app.Ask(ResourceRequest{ResourceName: AnyHost, NumContainers: 1,
		Capability: cluster.Resources{CPU: 1, Memory: 512}}); err != nil {
		t.Fatal(err)
	}
	if err := rm.RunUntilSatisfied(3); err != nil {
		t.Fatal(err)
	}
	a := app.TakeAllocations()[0]
	used := cl.Used(a.Node)
	if used.CPU != 1 {
		t.Fatalf("used = %v", used)
	}
	if err := app.Release(a.Container); err != nil {
		t.Fatal(err)
	}
	if got := cl.Used(a.Node); !got.IsZero() {
		t.Errorf("used after release = %v", got)
	}
	if err := app.Release(a.Container); err == nil {
		t.Error("double release accepted")
	}
	other := rm.Submit("other")
	if err := other.Release(a.Container); err == nil {
		t.Error("foreign release accepted")
	}
}

func TestHeartbeatErrors(t *testing.T) {
	rm, _, topo := newRM(t, cluster.Resources{CPU: 1, Memory: 1})
	if _, err := rm.Heartbeat(topo.Switches()[0]); err == nil {
		t.Error("heartbeat from switch accepted")
	}
	if _, err := rm.Heartbeat(topology.NodeID(-1)); err == nil {
		t.Error("heartbeat from invalid node accepted")
	}
}

func TestHostNodeLookup(t *testing.T) {
	rm, cl, _ := newRM(t, cluster.Resources{CPU: 1, Memory: 1})
	s := cl.Servers()[3]
	n, ok := rm.HostNode(rm.HostName(s))
	if !ok || n != s {
		t.Errorf("HostNode round-trip = (%d, %v)", n, ok)
	}
	if _, ok := rm.HostNode("bogus"); ok {
		t.Error("bogus host resolved")
	}
	if rm.HostName(topology.NodeID(-1)) != "" {
		t.Error("invalid node has a name")
	}
}

func TestFIFOAcrossApplications(t *testing.T) {
	rm, _, _ := newRM(t, cluster.Resources{CPU: 1, Memory: 1024})
	first := rm.Submit("first")
	second := rm.Submit("second")
	cap1 := cluster.Resources{CPU: 1, Memory: 1}
	if err := first.Ask(ResourceRequest{ResourceName: AnyHost, NumContainers: 1, Capability: cap1}); err != nil {
		t.Fatal(err)
	}
	if err := second.Ask(ResourceRequest{ResourceName: AnyHost, NumContainers: 1, Capability: cap1}); err != nil {
		t.Fatal(err)
	}
	if _, err := rm.Heartbeat(rm.cl.Servers()[0]); err != nil {
		t.Fatal(err)
	}
	if len(first.TakeAllocations()) != 1 {
		t.Error("first app not served first")
	}
	if len(second.TakeAllocations()) != 0 {
		t.Error("second app served out of order")
	}
}

func TestDelayFetcher(t *testing.T) {
	_, cl, topo := newRM(t, cluster.Resources{CPU: 1, Memory: 1})
	f := NewDelayFetcher(topo)
	srv := cl.Servers()

	// Same server: free.
	d, err := f.FetchDelay(srv[0], srv[0], 10)
	if err != nil || d != 0 {
		t.Errorf("same-server fetch = (%v, %v), want (0, nil)", d, err)
	}
	// Same rack: path bandwidth 2, 1 switch. Delay = 10/2 + 1 = 6.
	d, err = f.FetchDelay(srv[0], srv[1], 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-6) > 1e-9 {
		t.Errorf("same-rack fetch delay = %v, want 6", d)
	}
	// Cross-rack: 3 switches. Delay = 10/2 + 3 = 8.
	d, err = f.FetchDelay(srv[0], srv[15], 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-8) > 1e-9 {
		t.Errorf("cross-rack fetch delay = %v, want 8", d)
	}
	if _, err := f.FetchDelay(srv[0], srv[1], -1); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := f.PathBandwidth(srv[0], srv[0]); err == nil {
		t.Error("same-server path bandwidth accepted")
	}
}

func TestDelayFetcherMatchesNetsimSingleFlow(t *testing.T) {
	// For a single uncontended flow, the fetcher's transfer estimate must
	// equal the fluid simulator's completion time (the propagation term is
	// reported separately by netsim).
	_, cl, topo := newRM(t, cluster.Resources{CPU: 1, Memory: 1})
	f := NewDelayFetcher(topo)
	srv := cl.Servers()
	size := 7.0
	bw, err := f.PathBandwidth(srv[0], srv[15])
	if err != nil {
		t.Fatal(err)
	}
	res, err := netsim.Simulate(topo, []*netsim.Transfer{{
		ID: 0, Route: []topology.NodeID{srv[0], srv[15]}, Bytes: size,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Flows[0].TransferTime, size/bw; math.Abs(got-want) > 1e-9 {
		t.Errorf("netsim transfer %v != fetcher estimate %v", got, want)
	}
}
