package yarn

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/scheduler"
	"repro/internal/topology"
)

// Plan is a scheduler's placement decision: each planned container's
// preferred server. The bridge converts it into Hit-ResourceRequests and
// realizes it through the ResourceManager, exactly the §6.3 flow: "we
// assign resource by calling getContainer(Hit-ResourceRequest, node) if the
// task preferred container matches the current node with available
// resource".
type Plan struct {
	// Preferred maps each planned task index to its preferred server.
	Preferred []topology.NodeID
	// Capability is the per-container ask.
	Capability cluster.Resources
}

// Realize submits one Hit-ResourceRequest per planned task and drives
// heartbeats until every container is granted. It returns the granted
// allocations, index-aligned with the plan (matching each grant to the
// request's preferred host; grants on fallback nodes are matched after
// preferred ones).
func Realize(rm *ResourceManager, app *Application, plan Plan) ([]Allocation, error) {
	if rm == nil || app == nil {
		return nil, fmt.Errorf("yarn: nil ResourceManager or Application")
	}
	if len(plan.Preferred) == 0 {
		return nil, nil
	}
	// One request per task, priority = task index so grants are attributable.
	for i, pref := range plan.Preferred {
		name := rm.HostName(pref)
		if name == "" {
			return nil, fmt.Errorf("yarn: plan task %d prefers invalid node %d", i, pref)
		}
		if err := app.Ask(ResourceRequest{
			Priority:      i,
			ResourceName:  name,
			Capability:    plan.Capability,
			NumContainers: 1,
			RelaxLocality: true,
		}); err != nil {
			return nil, err
		}
	}
	if err := rm.RunUntilSatisfied(0); err != nil {
		return nil, err
	}
	allocs := app.TakeAllocations()
	if len(allocs) != len(plan.Preferred) {
		return nil, fmt.Errorf("yarn: %d grants for %d planned tasks", len(allocs), len(plan.Preferred))
	}
	// Priority identifies the originating task.
	out := make([]Allocation, len(plan.Preferred))
	seen := make([]bool, len(plan.Preferred))
	for _, a := range allocs {
		if a.Priority < 0 || a.Priority >= len(out) || seen[a.Priority] {
			return nil, fmt.Errorf("yarn: grant with unexpected priority %d", a.Priority)
		}
		out[a.Priority] = a
		seen[a.Priority] = true
	}
	return out, nil
}

// PlanFromSchedule extracts a Plan from an already-scheduled request: the
// placement each task's container received becomes its preferred host. This
// is how the Hit-Scheduler's TAA solution (computed on a scratch cluster)
// turns into the Hit-ResourceRequests the live ResourceManager serves.
func PlanFromSchedule(req *scheduler.Request, capability cluster.Resources) (Plan, error) {
	plan := Plan{Capability: capability}
	for _, t := range req.Tasks {
		ct := req.Cluster.Container(t.Container)
		if ct == nil || !ct.Placed() {
			return Plan{}, fmt.Errorf("yarn: task container %d unplaced; schedule first", t.Container)
		}
		plan.Preferred = append(plan.Preferred, ct.Server())
	}
	return plan, nil
}
