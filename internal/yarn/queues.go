package yarn

import (
	"fmt"
	"sort"
)

// Queue shares implement the multi-tenant side of the paper's setting: the
// Capacity scheduler's defining feature is named queues with guaranteed
// cluster fractions. Applications submit into a queue; when multiple
// queues compete, the ResourceManager serves the most under-served queue
// first (used CPU relative to its share), falling back to FIFO within a
// queue. An absent queue configuration degrades to plain FIFO across all
// applications.

// ConfigureQueues installs leaf queues with relative shares (normalized
// internally; they need not sum to 1). It fails on duplicate or empty
// names and non-positive shares, and may only be called before any
// application is submitted.
func (rm *ResourceManager) ConfigureQueues(shares map[string]float64) error {
	if len(rm.apps) > 0 {
		return fmt.Errorf("yarn: queues must be configured before applications are submitted")
	}
	if len(shares) == 0 {
		return fmt.Errorf("yarn: no queues given")
	}
	// Validate and total in name order: the share normalization below is a
	// float sum, and its rounding must not depend on map iteration.
	names := make([]string, 0, len(shares))
	for name := range shares {
		names = append(names, name)
	}
	sort.Strings(names)
	total := 0.0
	for _, name := range names {
		share := shares[name]
		if name == "" {
			return fmt.Errorf("yarn: empty queue name")
		}
		if share <= 0 {
			return fmt.Errorf("yarn: queue %q share %v must be positive", name, share)
		}
		total += share
	}
	rm.queueShare = make(map[string]float64, len(shares))
	for _, name := range names {
		rm.queueShare[name] = shares[name] / total
	}
	return nil
}

// Queues lists configured queue names, sorted.
func (rm *ResourceManager) Queues() []string {
	out := make([]string, 0, len(rm.queueShare))
	for q := range rm.queueShare {
		out = append(out, q)
	}
	sort.Strings(out)
	return out
}

// SubmitToQueue registers an application in a configured queue.
func (rm *ResourceManager) SubmitToQueue(name, queue string) (*Application, error) {
	if len(rm.queueShare) == 0 {
		return nil, fmt.Errorf("yarn: no queues configured")
	}
	if _, ok := rm.queueShare[queue]; !ok {
		return nil, fmt.Errorf("yarn: unknown queue %q", queue)
	}
	app := rm.Submit(name)
	rm.apps[app.id].queue = queue
	return app, nil
}

// QueueUsage returns the CPU currently held by a queue's applications.
func (rm *ResourceManager) QueueUsage(queue string) int {
	used := 0
	for _, st := range rm.apps {
		if st.queue != queue {
			continue
		}
		for c := range st.containers {
			if ct := rm.cl.Container(c); ct != nil && ct.Placed() {
				used += ct.Demand.CPU
			}
		}
	}
	return used
}

// appOrder returns application IDs in scheduling order: with queues
// configured, ascending by the owning queue's used-CPU/share ratio (most
// under-served queue first), then submission order; without queues, plain
// FIFO.
func (rm *ResourceManager) appOrder() []AppID {
	if len(rm.queueShare) == 0 {
		return rm.order
	}
	usage := make(map[string]float64, len(rm.queueShare))
	for q := range rm.queueShare {
		usage[q] = float64(rm.QueueUsage(q))
	}
	out := append([]AppID(nil), rm.order...)
	ratio := func(id AppID) float64 {
		q := rm.apps[id].queue
		share, ok := rm.queueShare[q]
		if !ok || share <= 0 {
			return 1e18 // unqueued apps go last when queues are configured
		}
		return usage[q] / share
	}
	sort.SliceStable(out, func(i, j int) bool { return ratio(out[i]) < ratio(out[j]) })
	return out
}
