// Package parallel provides the small fan-out primitive the experiment
// harness uses to run independent simulations concurrently: a bounded
// worker pool over an index range with first-error collection. Results stay
// deterministic because every task writes only to its own index and owns
// its engine, RNG and cluster — the pool changes wall-clock time, never
// values.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
)

// ForEach runs fn(i) for i in [0, n) on up to `workers` goroutines
// (workers <= 0 means GOMAXPROCS) and returns the first error by index
// order. All tasks run even when one fails, so partial side effects stay
// deterministic.
//
// Callers are bound by taalint's mergeorder contract: fn must be a
// function literal whose writes to captured state are index-addressed by
// i (each worker owns its slot), or the captured slice must be explicitly
// sorted after ForEach returns — completion order is scheduler-dependent
// and must never reach a decision value.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if fn == nil {
		return fmt.Errorf("parallel: nil function")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = safeCall(fn, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// safeCall shields the pool from panics in fn, converting them to errors so
// one bad task cannot kill the process from a worker goroutine.
func safeCall(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("parallel: task %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}

// Map runs fn for every index and collects the results in order.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
