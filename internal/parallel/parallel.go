// Package parallel provides the small fan-out primitive the experiment
// harness uses to run independent simulations concurrently: a bounded
// worker pool over an index range with first-error collection. Results stay
// deterministic because every task writes only to its own index and owns
// its engine, RNG and cluster — the pool changes wall-clock time, never
// values.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for i in [0, n) on up to `workers` goroutines
// (workers <= 0 means GOMAXPROCS) and returns the first error by index
// order. All tasks run even when one fails, so partial side effects stay
// deterministic.
//
// Callers are bound by taalint's mergeorder contract: fn must be a
// function literal whose writes to captured state are index-addressed by
// i (each worker owns its slot), or the captured slice must be explicitly
// sorted after ForEach returns — completion order is scheduler-dependent
// and must never reach a decision value.
//
// fn is also bound by the snapshotfreeze contract: netstate read-API
// results it captures (dist rows, templates, stage lists) are shared
// views, frozen while workers run — storing them into per-index slots is
// fine; writing through them is not. Copy before mutating.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if fn == nil {
		return fmt.Errorf("parallel: nil function")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = safeCall(fn, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// safeCall shields the pool from panics in fn, converting them to errors so
// one bad task cannot kill the process from a worker goroutine.
func safeCall(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("parallel: task %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}

// Group is a nested-safe concurrency limiter: one token budget shared by
// every ForEach issued through it, no matter how deeply the calls nest.
// Plain ForEach inside ForEach multiplies worker counts (outer×inner
// goroutines all runnable at once — exactly the oversubscription the
// sharded scheduler must avoid); a Group instead lets an inner fan-out
// borrow only whatever tokens its siblings are not using.
//
// Deadlock freedom: the calling goroutine always executes tasks itself and
// never waits for a token, so progress is guaranteed even when the budget
// is exhausted by the callers' own ancestors. Helper goroutines are spawned
// opportunistically, one per token acquired, and return their token when
// the task stream drains.
type Group struct {
	limit  int
	tokens chan struct{}
}

// NewGroup returns a Group that will run at most limit tasks concurrently
// across all nested ForEach calls (limit <= 0 means GOMAXPROCS).
func NewGroup(limit int) *Group {
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	// Callers work without a token, so limit-1 helper tokens give a
	// non-nested ForEach exactly `limit` concurrent tasks; under nesting
	// the ancestors already count toward the budget and the free-token
	// pool shrinks accordingly.
	return &Group{limit: limit, tokens: make(chan struct{}, limit-1)}
}

// Limit returns the group's concurrency budget.
func (g *Group) Limit() int { return g.limit }

// ForEach runs fn(i) for i in [0, n) under the group's shared budget and
// returns the first error by index order; all tasks run even when one
// fails. The same determinism contract as the package-level ForEach
// applies: fn's captured writes must be index-addressed.
func (g *Group) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if fn == nil {
		return fmt.Errorf("parallel: nil function")
	}
	errs := make([]error, n)
	var next atomic.Int64
	run := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			errs[i] = safeCall(fn, i)
		}
	}
	var wg sync.WaitGroup
	// Spawn one helper per free token, capped at n-1 (the caller takes the
	// stream too). A nested call finds its ancestors holding tokens and
	// simply spawns fewer helpers — the shared budget is never exceeded.
spawn:
	for h := 0; h < n-1; h++ {
		select {
		case g.tokens <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-g.tokens }()
				run()
			}()
		default:
			break spawn // budget exhausted; the caller drains the rest
		}
	}
	run()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn for every index and collects the results in order.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
