package parallel

import (
	"errors"
	"fmt"
	"time"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	const n = 200
	var counts [n]int32
	if err := ForEach(n, 8, func(i int) error {
		atomic.AddInt32(&counts[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestForEachFirstErrorByIndex(t *testing.T) {
	sentinel3 := errors.New("three")
	sentinel7 := errors.New("seven")
	err := ForEach(10, 4, func(i int) error {
		switch i {
		case 3:
			return sentinel3
		case 7:
			return sentinel7
		}
		return nil
	})
	if !errors.Is(err, sentinel3) {
		t.Errorf("err = %v, want the lowest-index error", err)
	}
}

func TestForEachAllTasksRunDespiteError(t *testing.T) {
	var ran int32
	_ = ForEach(50, 4, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			return errors.New("early")
		}
		return nil
	})
	if ran != 50 {
		t.Errorf("ran %d tasks, want 50", ran)
	}
}

func TestForEachEdgeCases(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("n=0: %v", err)
	}
	if err := ForEach(-5, 4, nil); err != nil {
		t.Errorf("negative n: %v", err)
	}
	if err := ForEach(3, 4, nil); err == nil {
		t.Error("nil fn accepted")
	}
	// workers <= 0 defaults; workers > n clamps.
	if err := ForEach(3, 0, func(int) error { return nil }); err != nil {
		t.Error(err)
	}
	if err := ForEach(2, 100, func(int) error { return nil }); err != nil {
		t.Error(err)
	}
}

func TestForEachRecoversPanics(t *testing.T) {
	err := ForEach(4, 2, func(i int) error {
		if i == 2 {
			panic("boom")
		}
		return nil
	})
	if err == nil || !contains(err.Error(), "panicked") {
		t.Errorf("panic not converted to error: %v", err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}

func TestMapOrdersResults(t *testing.T) {
	out, err := Map(20, 4, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if _, err := Map(5, 2, func(i int) (int, error) {
		if i == 4 {
			return 0, errors.New("bad")
		}
		return i, nil
	}); err == nil {
		t.Error("error swallowed")
	}
}

// TestQuickDeterministicResults: for pure fn, Map output is independent of
// worker count.
func TestQuickDeterministicResults(t *testing.T) {
	f := func(nSeed, wSeed uint8) bool {
		n := int(nSeed%32) + 1
		w := int(wSeed%8) + 1
		a, err1 := Map(n, 1, func(i int) (int, error) { return 3*i + 1, nil })
		b, err2 := Map(n, w, func(i int) (int, error) { return 3*i + 1, nil })
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestGroupNestedBudget is the regression test for nested fan-out: a Group
// with limit L must never run more than L tasks at once even when every
// outer task issues its own inner ForEach through the same group. Plain
// ForEach-inside-ForEach multiplies worker counts; the shared token budget
// must not.
func TestGroupNestedBudget(t *testing.T) {
	const limit = 3
	g := NewGroup(limit)
	var cur, peak atomic.Int64
	enter := func() {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
	}
	sum := make([]int64, 8*16)
	err := g.ForEach(8, func(outer int) error {
		return g.ForEach(16, func(inner int) error {
			enter()
			defer cur.Add(-1)
			time.Sleep(200 * time.Microsecond)
			sum[outer*16+inner] = int64(outer*16 + inner)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > limit {
		t.Fatalf("nested Group.ForEach ran %d tasks concurrently, budget is %d", p, limit)
	}
	for i, v := range sum {
		if v != int64(i) {
			t.Fatalf("task %d did not run (got %d)", i, v)
		}
	}
}

// TestGroupErrorOrder: first error by index, all tasks still run.
func TestGroupErrorOrder(t *testing.T) {
	g := NewGroup(4)
	var ran atomic.Int64
	err := g.ForEach(10, func(i int) error {
		ran.Add(1)
		if i == 3 || i == 7 {
			return fmt.Errorf("task %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "task 3" {
		t.Fatalf("want first error by index (task 3), got %v", err)
	}
	if ran.Load() != 10 {
		t.Fatalf("want all 10 tasks to run, ran %d", ran.Load())
	}
}

// TestGroupPanic: panics become errors, the pool survives.
func TestGroupPanic(t *testing.T) {
	g := NewGroup(2)
	err := g.ForEach(4, func(i int) error {
		if i == 2 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not converted to error")
	}
}

// TestGroupLimitOne: a unit budget degrades to the caller running every
// task itself, still correctly and in bounded concurrency.
func TestGroupLimitOne(t *testing.T) {
	g := NewGroup(1)
	if g.Limit() != 1 {
		t.Fatalf("Limit() = %d", g.Limit())
	}
	var cur, peak atomic.Int64
	err := g.ForEach(6, func(i int) error {
		c := cur.Add(1)
		defer cur.Add(-1)
		if c > peak.Load() {
			peak.Store(c)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() != 1 {
		t.Fatalf("limit-1 group ran %d tasks concurrently", peak.Load())
	}
}
