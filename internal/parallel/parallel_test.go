package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	const n = 200
	var counts [n]int32
	if err := ForEach(n, 8, func(i int) error {
		atomic.AddInt32(&counts[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestForEachFirstErrorByIndex(t *testing.T) {
	sentinel3 := errors.New("three")
	sentinel7 := errors.New("seven")
	err := ForEach(10, 4, func(i int) error {
		switch i {
		case 3:
			return sentinel3
		case 7:
			return sentinel7
		}
		return nil
	})
	if !errors.Is(err, sentinel3) {
		t.Errorf("err = %v, want the lowest-index error", err)
	}
}

func TestForEachAllTasksRunDespiteError(t *testing.T) {
	var ran int32
	_ = ForEach(50, 4, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			return errors.New("early")
		}
		return nil
	})
	if ran != 50 {
		t.Errorf("ran %d tasks, want 50", ran)
	}
}

func TestForEachEdgeCases(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("n=0: %v", err)
	}
	if err := ForEach(-5, 4, nil); err != nil {
		t.Errorf("negative n: %v", err)
	}
	if err := ForEach(3, 4, nil); err == nil {
		t.Error("nil fn accepted")
	}
	// workers <= 0 defaults; workers > n clamps.
	if err := ForEach(3, 0, func(int) error { return nil }); err != nil {
		t.Error(err)
	}
	if err := ForEach(2, 100, func(int) error { return nil }); err != nil {
		t.Error(err)
	}
}

func TestForEachRecoversPanics(t *testing.T) {
	err := ForEach(4, 2, func(i int) error {
		if i == 2 {
			panic("boom")
		}
		return nil
	})
	if err == nil || !contains(err.Error(), "panicked") {
		t.Errorf("panic not converted to error: %v", err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}

func TestMapOrdersResults(t *testing.T) {
	out, err := Map(20, 4, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if _, err := Map(5, 2, func(i int) (int, error) {
		if i == 4 {
			return 0, errors.New("bad")
		}
		return i, nil
	}); err == nil {
		t.Error("error swallowed")
	}
}

// TestQuickDeterministicResults: for pure fn, Map output is independent of
// worker count.
func TestQuickDeterministicResults(t *testing.T) {
	f := func(nSeed, wSeed uint8) bool {
		n := int(nSeed%32) + 1
		w := int(wSeed%8) + 1
		a, err1 := Map(n, 1, func(i int) (int, error) { return 3*i + 1, nil })
		b, err2 := Map(n, w, func(i int) (int, error) { return 3*i + 1, nil })
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
