// Package profile implements the offline phase of the paper's Hadoop
// integration (§6): profiling the shuffle data rate of each application.
// Completed jobs report their observed input/shuffle/remote-map volumes;
// the store keeps exponentially weighted per-benchmark ratios and predicts
// the shuffle demand of future submissions — the numbers the online phase's
// mapred.job.topologyaware class feeds to Hit-ResourceRequest construction.
//
// The store serializes to JSON so profiles survive across runs.
package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/workload"
)

// Record is one completed job's observation.
type Record struct {
	Benchmark   string  `json:"benchmark"`
	InputGB     float64 `json:"input_gb"`
	ShuffleGB   float64 `json:"shuffle_gb"`
	RemoteMapGB float64 `json:"remote_map_gb"`
}

// Validate checks the record.
func (r *Record) Validate() error {
	if r.Benchmark == "" {
		return fmt.Errorf("profile: empty benchmark name")
	}
	if r.InputGB <= 0 {
		return fmt.Errorf("profile: non-positive input %v", r.InputGB)
	}
	if r.ShuffleGB < 0 || r.RemoteMapGB < 0 {
		return fmt.Errorf("profile: negative volumes (%v, %v)", r.ShuffleGB, r.RemoteMapGB)
	}
	return nil
}

// Estimate is the store's belief about one benchmark.
type Estimate struct {
	ShuffleRatio   float64 `json:"shuffle_ratio"`
	RemoteMapRatio float64 `json:"remote_map_ratio"`
	Samples        int     `json:"samples"`
}

type storeJSON struct {
	Alpha      float64             `json:"alpha"`
	Benchmarks map[string]Estimate `json:"benchmarks"`
}

// Store accumulates profiles. Not safe for concurrent use.
type Store struct {
	alpha   float64
	byBench map[string]Estimate
}

// NewStore creates a store with EWMA weight alpha in (0, 1]: each new
// observation contributes alpha of the updated ratio (alpha 1 = only the
// latest observation counts).
func NewStore(alpha float64) (*Store, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("profile: alpha must be in (0, 1], got %v", alpha)
	}
	return &Store{alpha: alpha, byBench: make(map[string]Estimate)}, nil
}

// Record folds one observation into the benchmark's estimate.
func (s *Store) Record(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	cur, ok := s.byBench[r.Benchmark]
	obsShuffle := r.ShuffleGB / r.InputGB
	obsRemote := r.RemoteMapGB / r.InputGB
	if !ok {
		s.byBench[r.Benchmark] = Estimate{ShuffleRatio: obsShuffle, RemoteMapRatio: obsRemote, Samples: 1}
		return nil
	}
	cur.ShuffleRatio = (1-s.alpha)*cur.ShuffleRatio + s.alpha*obsShuffle
	cur.RemoteMapRatio = (1-s.alpha)*cur.RemoteMapRatio + s.alpha*obsRemote
	cur.Samples++
	s.byBench[r.Benchmark] = cur
	return nil
}

// RecordJob profiles a workload.Job's ground truth (useful for warming a
// store from a generator).
func (s *Store) RecordJob(j *workload.Job) error {
	if j == nil {
		return fmt.Errorf("profile: nil job")
	}
	return s.Record(Record{
		Benchmark:   j.Benchmark,
		InputGB:     j.InputGB,
		ShuffleGB:   j.TotalShuffleGB(),
		RemoteMapGB: j.RemoteMapGB,
	})
}

// Estimate returns the current belief for a benchmark.
func (s *Store) Estimate(bench string) (Estimate, bool) {
	e, ok := s.byBench[bench]
	return e, ok
}

// PredictShuffleGB predicts a new submission's shuffle volume.
func (s *Store) PredictShuffleGB(bench string, inputGB float64) (float64, error) {
	if inputGB <= 0 {
		return 0, fmt.Errorf("profile: non-positive input %v", inputGB)
	}
	e, ok := s.byBench[bench]
	if !ok {
		return 0, fmt.Errorf("profile: no profile for %q", bench)
	}
	return e.ShuffleRatio * inputGB, nil
}

// Benchmarks lists profiled benchmark names, sorted.
func (s *Store) Benchmarks() []string {
	out := make([]string, 0, len(s.byBench))
	for b := range s.byBench {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of profiled benchmarks.
func (s *Store) Len() int { return len(s.byBench) }

// Save writes the store as JSON.
func (s *Store) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(storeJSON{Alpha: s.alpha, Benchmarks: s.byBench})
}

// Load reads a store written by Save.
func Load(r io.Reader) (*Store, error) {
	var sj storeJSON
	if err := json.NewDecoder(r).Decode(&sj); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	st, err := NewStore(sj.Alpha)
	if err != nil {
		return nil, err
	}
	for b, e := range sj.Benchmarks {
		if b == "" || e.Samples < 1 || e.ShuffleRatio < 0 || e.RemoteMapRatio < 0 {
			return nil, fmt.Errorf("profile: corrupt entry %q: %+v", b, e)
		}
		st.byBench[b] = e
	}
	return st, nil
}

// Classify maps an estimated shuffle ratio onto the paper's Table 1 classes
// using the catalog's natural break points (heavy >= 0.6, medium >= 0.2).
func Classify(shuffleRatio float64) workload.Class {
	switch {
	case shuffleRatio >= 0.6:
		return workload.ShuffleHeavy
	case shuffleRatio >= 0.2:
		return workload.ShuffleMedium
	default:
		return workload.ShuffleLight
	}
}
