package profile

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestNewStoreAlpha(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5} {
		if _, err := NewStore(a); err == nil {
			t.Errorf("alpha %v accepted", a)
		}
	}
	if _, err := NewStore(0.3); err != nil {
		t.Errorf("valid alpha rejected: %v", err)
	}
}

func TestRecordAndPredict(t *testing.T) {
	s, _ := NewStore(0.5)
	if err := s.Record(Record{Benchmark: "terasort", InputGB: 10, ShuffleGB: 10, RemoteMapGB: 0.8}); err != nil {
		t.Fatal(err)
	}
	e, ok := s.Estimate("terasort")
	if !ok {
		t.Fatal("no estimate")
	}
	if e.ShuffleRatio != 1.0 || e.Samples != 1 {
		t.Errorf("estimate = %+v", e)
	}
	got, err := s.PredictShuffleGB("terasort", 20)
	if err != nil || math.Abs(got-20) > 1e-9 {
		t.Errorf("prediction = %v, %v", got, err)
	}
	if _, err := s.PredictShuffleGB("grep", 5); err == nil {
		t.Error("unknown benchmark predicted")
	}
	if _, err := s.PredictShuffleGB("terasort", 0); err == nil {
		t.Error("zero input accepted")
	}
}

func TestEWMARecencyWeighting(t *testing.T) {
	s, _ := NewStore(0.5)
	must := func(r Record) {
		t.Helper()
		if err := s.Record(r); err != nil {
			t.Fatal(err)
		}
	}
	must(Record{Benchmark: "join", InputGB: 10, ShuffleGB: 10}) // ratio 1.0
	must(Record{Benchmark: "join", InputGB: 10, ShuffleGB: 5})  // obs 0.5 -> 0.75
	e, _ := s.Estimate("join")
	if math.Abs(e.ShuffleRatio-0.75) > 1e-9 {
		t.Errorf("EWMA = %v, want 0.75", e.ShuffleRatio)
	}
	if e.Samples != 2 {
		t.Errorf("samples = %d", e.Samples)
	}
	// Drifting workloads converge toward the new regime.
	for i := 0; i < 20; i++ {
		must(Record{Benchmark: "join", InputGB: 10, ShuffleGB: 2}) // ratio 0.2
	}
	e, _ = s.Estimate("join")
	if math.Abs(e.ShuffleRatio-0.2) > 0.01 {
		t.Errorf("post-drift ratio = %v, want ~0.2", e.ShuffleRatio)
	}
}

func TestRecordValidation(t *testing.T) {
	s, _ := NewStore(0.5)
	bad := []Record{
		{Benchmark: "", InputGB: 1},
		{Benchmark: "x", InputGB: 0},
		{Benchmark: "x", InputGB: 1, ShuffleGB: -1},
		{Benchmark: "x", InputGB: 1, RemoteMapGB: -1},
	}
	for i, r := range bad {
		if err := s.Record(r); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := s.RecordJob(nil); err == nil {
		t.Error("nil job accepted")
	}
}

func TestRecordJobMatchesGenerator(t *testing.T) {
	g, err := workload.NewGenerator(workload.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := NewStore(0.3)
	for i := 0; i < 50; i++ {
		if err := s.RecordJob(g.Sample()); err != nil {
			t.Fatal(err)
		}
	}
	// Every catalog benchmark that appeared should estimate close to its
	// true shuffle ratio (generation is exact per benchmark).
	for _, name := range s.Benchmarks() {
		b, err := workload.BenchmarkByName(name)
		if err != nil {
			t.Fatalf("unknown profiled benchmark %q", name)
		}
		e, _ := s.Estimate(name)
		if math.Abs(e.ShuffleRatio-b.ShuffleRatio) > 1e-6 {
			t.Errorf("%s: ratio %v, want %v", name, e.ShuffleRatio, b.ShuffleRatio)
		}
		if Classify(e.ShuffleRatio) != b.Class {
			t.Errorf("%s classified as %v, want %v", name, Classify(e.ShuffleRatio), b.Class)
		}
	}
	if s.Len() == 0 {
		t.Error("no benchmarks profiled")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s, _ := NewStore(0.4)
	if err := s.Record(Record{Benchmark: "grep", InputGB: 10, ShuffleGB: 0.1, RemoteMapGB: 0.6}); err != nil {
		t.Fatal(err)
	}
	if err := s.Record(Record{Benchmark: "terasort", InputGB: 8, ShuffleGB: 8, RemoteMapGB: 0.64}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d benchmarks", loaded.Len())
	}
	for _, name := range []string{"grep", "terasort"} {
		a, _ := s.Estimate(name)
		b, ok := loaded.Estimate(name)
		if !ok || a != b {
			t.Errorf("%s: %+v != %+v", name, a, b)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"alpha": 0, "benchmarks": {}}`)); err == nil {
		t.Error("zero alpha accepted")
	}
	if _, err := Load(strings.NewReader(`{"alpha": 0.5, "benchmarks": {"x": {"shuffle_ratio": -1, "samples": 1}}}`)); err == nil {
		t.Error("negative ratio accepted")
	}
	if _, err := Load(strings.NewReader(`{"alpha": 0.5, "benchmarks": {"x": {"shuffle_ratio": 1, "samples": 0}}}`)); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestClassifyBoundaries(t *testing.T) {
	cases := []struct {
		ratio float64
		want  workload.Class
	}{
		{1.0, workload.ShuffleHeavy},
		{0.6, workload.ShuffleHeavy},
		{0.59, workload.ShuffleMedium},
		{0.2, workload.ShuffleMedium},
		{0.19, workload.ShuffleLight},
		{0, workload.ShuffleLight},
	}
	for _, tc := range cases {
		if got := Classify(tc.ratio); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.ratio, got, tc.want)
		}
	}
}
