package experiments

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// TestFigure6DoubleRunDeterminism executes the Figure 6 pipeline twice with
// the same seed and asserts the results are byte-identical down to the last
// float bit. This is the dynamic twin of what the maporder and rngsource
// taalint checks enforce statically: if any layer consults map iteration
// order, the global RNG, or the wall clock, the two fingerprints diverge.
func TestFigure6DoubleRunDeterminism(t *testing.T) {
	first, err := Figure6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	second, err := Figure6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	fp1, fp2 := fig6Fingerprint(first), fig6Fingerprint(second)
	if fp1 != fp2 {
		t.Fatalf("same-seed runs diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", fp1, fp2)
	}
	// A different seed must actually change the fingerprint, or the
	// fingerprint is too coarse to prove anything.
	other, err := Figure6(Config{Seed: 2, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if fig6Fingerprint(other) == fp1 {
		t.Fatal("fingerprint is seed-insensitive; it cannot witness determinism")
	}
}

// fig6Fingerprint serializes every metric in a Fig6Result with exact float
// bit patterns, so equality means bit-identical results.
func fig6Fingerprint(r *Fig6Result) string {
	var b strings.Builder
	bits := func(v float64) string { return fmt.Sprintf("%016x", math.Float64bits(v)) }
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "run=%s\n", run.Name)
		for _, s := range []struct {
			label  string
			values []float64
		}{
			{"jct", run.JCT.Values()},
			{"map", run.MapTime.Values()},
			{"reduce", run.ReduceTime.Values()},
		} {
			fmt.Fprintf(&b, "  %s:", s.label)
			for _, v := range s.values {
				fmt.Fprintf(&b, " %s", bits(v))
			}
			fmt.Fprintln(&b)
		}
		fmt.Fprintf(&b, "  hops=%s delay=%s xfer=%s tput=%s cost=%s\n",
			bits(run.AvgRouteHops), bits(run.AvgShuffleDelayT),
			bits(run.AvgTransferTime), bits(run.Throughput), bits(run.TotalTrafficCost))
	}
	fmt.Fprintf(&b, "impCap=%s impPNA=%s\n",
		bits(r.JCTImprovementVsCapacity), bits(r.JCTImprovementVsPNA))
	return b.String()
}
