package experiments

import (
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/scheduler"
	"repro/internal/taasearch"
	"repro/internal/workload"
)

// QualityRow is one instance size's comparison.
type QualityRow struct {
	Tasks      int
	HitCost    float64
	AnnealCost float64
	GapPct     float64
}

// QualityResult quantifies the optimality gap of Hit-Scheduler's
// stable-matching heuristic versus a long simulated-annealing search over
// the same TAA instances — an extension answering "how close to optimal is
// the paper's O(M×N) algorithm?"
type QualityResult struct {
	Rows []QualityRow
}

// QualityGap runs both solvers over growing instance sizes on the testbed
// tree and reports the relative cost gap.
func QualityGap(cfg Config) (*QualityResult, error) {
	cfg = cfg.withDefaults()
	sizes := [][2]int{{4, 2}, {8, 4}, {16, 8}}
	iters := 30000
	if cfg.Quick {
		sizes = [][2]int{{4, 2}, {8, 4}}
		iters = 8000
	}
	res := &QualityResult{}
	for _, size := range sizes {
		maps, reduces := size[0], size[1]
		type cellOut struct{ hit, ann float64 }
		cells, err := parallel.Map(cfg.Repeats, 0, func(rep int) (cellOut, error) {
			seed := cfg.Seed + int64(rep)*631
			runCost := func(s scheduler.Scheduler) (float64, error) {
				topo, err := testbedTopology(1)
				if err != nil {
					return 0, err
				}
				cl, err := cluster.New(topo, cluster.Resources{CPU: 2, Memory: 8192})
				if err != nil {
					return 0, err
				}
				ctl := controller.New(topo)
				g, err := jobGen(cfg, seed)
				if err != nil {
					return 0, err
				}
				job, err := g.SampleClass(workload.ShuffleHeavy)
				if err != nil {
					return 0, err
				}
				// Resize the sampled job to the target task counts while
				// keeping its byte volume.
				resized := &workload.Job{
					Benchmark: job.Benchmark, Class: job.Class,
					InputGB: job.InputGB, NumMaps: maps, NumReduces: reduces,
				}
				cell := job.TotalShuffleGB() / float64(maps*reduces)
				resized.Shuffle = make([][]float64, maps)
				for m := range resized.Shuffle {
					resized.Shuffle[m] = make([]float64, reduces)
					for r := range resized.Shuffle[m] {
						resized.Shuffle[m][r] = cell
					}
				}
				resized.MapComputeSec = make([]float64, maps)
				resized.ReduceComputeSec = make([]float64, reduces)
				req, _, err := scheduler.NewJobRequest(cl, ctl, []*workload.Job{resized},
					cluster.Resources{CPU: 1, Memory: 512}, rand.New(rand.NewSource(seed)))
				if err != nil {
					return 0, err
				}
				if err := s.Schedule(req); err != nil {
					return 0, err
				}
				return ctl.TotalCost(req.Flows, req.Locator())
			}
			hit, err := runCost(&core.HitScheduler{})
			if err != nil {
				return cellOut{}, err
			}
			ann, err := runCost(&taasearch.Annealer{Iterations: iters})
			if err != nil {
				return cellOut{}, err
			}
			return cellOut{hit: hit, ann: ann}, nil
		})
		if err != nil {
			return nil, err
		}
		row := QualityRow{Tasks: maps + reduces}
		for _, c := range cells {
			row.HitCost += c.hit
			row.AnnealCost += c.ann
		}
		n := float64(cfg.Repeats)
		row.HitCost /= n
		row.AnnealCost /= n
		if row.AnnealCost > 0 {
			row.GapPct = (row.HitCost - row.AnnealCost) / row.AnnealCost * 100
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the table.
func (r *QualityResult) Render() string {
	tb := metrics.NewTable("Optimality gap: Hit-Scheduler vs simulated annealing (same TAA instances)",
		"tasks", "hit cost", "anneal cost", "gap (%)")
	for _, row := range r.Rows {
		tb.AddRowf([]string{"%d", "%.1f", "%.1f", "%.1f"},
			row.Tasks, row.HitCost, row.AnnealCost, row.GapPct)
	}
	return tb.String()
}

// CSV implements CSVable.
func (r *QualityResult) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{itoa(row.Tasks), f(row.HitCost), f(row.AnnealCost), f(row.GapPct)})
	}
	return writeCSV([]string{"tasks", "hit_cost", "anneal_cost", "gap_pct"}, rows)
}

func itoa(v int) string { return f(float64(v)) }
