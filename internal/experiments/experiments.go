// Package experiments regenerates every table and figure of the paper's
// evaluation (§2 and §7) on the simulated substrate: Table 1 (workload mix),
// Figure 1 (shuffle vs remote-map traffic volume), Figure 3 (the case
// study), Figure 6 (CDFs of job/map/reduce times), Figure 7 (average route
// length and shuffle delay), Figure 8 (job classes and network
// architectures), Figure 9 (bandwidth sensitivity at 512 nodes) and Figure
// 10 (job-count sensitivity). Each experiment returns a structured result
// with a Render method producing the paper-style rows; cmd/hitbench and the
// repository-level benchmarks drive them.
package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/taasearch"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Config sizes the experiments. The zero value is upgraded to the defaults
// used throughout EXPERIMENTS.md; Quick shrinks everything for unit tests.
type Config struct {
	Seed    int64
	Repeats int  // independent seeds averaged per data point
	Quick   bool // smaller workloads and sweeps
}

func (c Config) withDefaults() Config {
	if c.Repeats <= 0 {
		if c.Quick {
			c.Repeats = 2
		} else {
			c.Repeats = 3
		}
	}
	return c
}

// SchedulerNames lists the compared strategies in presentation order.
func SchedulerNames() []string { return []string{"capacity", "pna", "hit"} }

// newScheduler instantiates a fresh scheduler by name (fresh per run so no
// state leaks between experiments).
func newScheduler(name string) (scheduler.Scheduler, error) {
	switch name {
	case "capacity":
		return scheduler.Capacity{}, nil
	case "pna":
		return scheduler.PNA{}, nil
	case "hit":
		return &core.HitScheduler{}, nil
	case "random":
		return scheduler.Random{}, nil
	case "hit-nopolicy":
		return &core.HitScheduler{DisablePolicyOpt: true}, nil
	case "hit-nomatching":
		return &core.HitScheduler{DisableStableMatching: true}, nil
	case "cam":
		return scheduler.CAM{}, nil
	case "anneal":
		return &taasearch.Annealer{}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown scheduler %q", name)
	}
}

// testbedTopology builds the evaluation network of §7.1 (the 64-host,
// 10-switch tree) with the given link bandwidth.
func testbedTopology(bandwidth float64) (*topology.Topology, error) {
	return topology.NewPaperTree(topology.LinkParams{
		Bandwidth: bandwidth,
		// Switch processing capacity is expressed against flow rates (which
		// follow shuffle sizes), so it stays absolute under bandwidth sweeps.
		SwitchCapacity: 48,
		// Production trees are oversubscribed; 4:1 keeps rack uplinks the
		// contended resource the way the paper's shared testbed network is.
		Oversubscription: 4,
	})
}

// jobGen builds the Table 1 workload generator used by the evaluation.
func jobGen(cfg Config, seed int64) (*workload.Generator, error) {
	wcfg := workload.DefaultConfig()
	if cfg.Quick {
		wcfg.MinInputGB, wcfg.MaxInputGB, wcfg.MaxMaps = 2, 5, 6
	} else {
		wcfg.MinInputGB, wcfg.MaxInputGB, wcfg.MaxMaps = 4, 16, 16
	}
	return workload.NewGenerator(wcfg, seed)
}

// runOnce executes one scheduler over one workload on a fresh engine.
func runOnce(topo *topology.Topology, schedName string, jobs []*workload.Job, seed int64) (*sim.Result, error) {
	s, err := newScheduler(schedName)
	if err != nil {
		return nil, err
	}
	// The paper's case study configures each server to host at most two
	// tasks; the same density keeps endpoint links from becoming artificial
	// hotspots when tasks co-locate.
	eng, err := sim.New(topo, cluster.Resources{CPU: 2, Memory: 8192}, s, sim.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	return eng.Run(jobs)
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

// Table1Result reproduces the benchmark characterization table.
type Table1Result struct {
	Rows []workload.Benchmark
}

// Table1 returns the catalog exactly as Table 1 lists it.
func Table1() *Table1Result {
	return &Table1Result{Rows: workload.Catalog()}
}

// Render formats the table.
func (r *Table1Result) Render() string {
	tb := metrics.NewTable("Table 1: Benchmarks Characterization",
		"benchmark", "class", "share(%)", "shuffle/input", "remote-map/input")
	for _, b := range r.Rows {
		tb.AddRowf([]string{"%s", "%s", "%.0f", "%.2f", "%.2f"},
			b.Name, b.Class.String(), b.Share, b.ShuffleRatio, b.RemoteMapRatio)
	}
	return tb.String()
}

// ---------------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------------

// Fig1Row is one class's traffic decomposition.
type Fig1Row struct {
	Class          workload.Class
	ShuffleGB      float64
	RemoteMapGB    float64
	ShuffleFrac    float64
	RemoteMapFrac  float64
	JobsAggregated int
}

// Fig1Result decomposes total communication volume per job class.
type Fig1Result struct {
	Rows []Fig1Row
}

// Figure1 aggregates generated jobs per class and splits their
// communication volume into shuffle and remote-map components, reproducing
// Figure 1's observation that shuffle dominates (>75%) for shuffle-heavy
// jobs while remote map stays under 20%.
func Figure1(cfg Config) (*Fig1Result, error) {
	cfg = cfg.withDefaults()
	n := 400
	if cfg.Quick {
		n = 100
	}
	res := &Fig1Result{}
	for _, class := range workload.Classes() {
		g, err := jobGen(cfg, cfg.Seed+int64(class)*101)
		if err != nil {
			return nil, err
		}
		row := Fig1Row{Class: class}
		for i := 0; i < n; i++ {
			j, err := g.SampleClass(class)
			if err != nil {
				return nil, err
			}
			row.ShuffleGB += j.TotalShuffleGB()
			row.RemoteMapGB += j.RemoteMapGB
			row.JobsAggregated++
		}
		total := row.ShuffleGB + row.RemoteMapGB
		if total > 0 {
			row.ShuffleFrac = row.ShuffleGB / total
			row.RemoteMapFrac = row.RemoteMapGB / total
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the figure as rows.
func (r *Fig1Result) Render() string {
	tb := metrics.NewTable("Figure 1: Traffic Volume During Shuffle Phase",
		"class", "shuffle(GB)", "remote-map(GB)", "shuffle(%)", "remote-map(%)")
	for _, row := range r.Rows {
		tb.AddRowf([]string{"%s", "%.0f", "%.0f", "%.1f", "%.1f"},
			row.Class.String(), row.ShuffleGB, row.RemoteMapGB,
			row.ShuffleFrac*100, row.RemoteMapFrac*100)
	}
	return tb.String()
}

// ---------------------------------------------------------------------------
// Figure 3 (case study)
// ---------------------------------------------------------------------------

// Fig3Result reproduces the §2.3 case study numbers.
type Fig3Result struct {
	CapacityDelayGBT float64 // the observed Capacity-scheduler placement
	HitDelayGBT      float64 // the topology-aware placement
	ImprovementPct   float64
}

// Figure3 rebuilds the exact case-study scenario: two jobs (34 GB and 10 GB
// shuffle), maps on S1, reduce slots on S2/S4 only, and compares the
// capacity-style placement (112 GB·T) with Hit-Scheduler's (64 GB·T).
func Figure3() (*Fig3Result, error) {
	run := func(hit bool) (float64, error) {
		topo, servers, err := topology.NewCaseStudyTree(topology.LinkParams{
			Bandwidth: 1, SwitchCapacity: topology.InfiniteCapacity,
		})
		if err != nil {
			return 0, err
		}
		cl, err := cluster.New(topo, cluster.Resources{CPU: 2, Memory: 4096})
		if err != nil {
			return 0, err
		}
		ctl := controller.New(topo)
		mk := func(id int, size float64) *workload.Job {
			return &workload.Job{
				ID: id, NumMaps: 1, NumReduces: 1, InputGB: size,
				Shuffle:       [][]float64{{size}},
				MapComputeSec: []float64{1}, ReduceComputeSec: []float64{1},
			}
		}
		jobs := []*workload.Job{mk(0, 34), mk(1, 10)}
		req, jt, err := scheduler.NewJobRequest(cl, ctl, jobs, cluster.Resources{CPU: 1, Memory: 1024}, rand.New(rand.NewSource(1)))
		if err != nil {
			return 0, err
		}
		// Maps observed on S1; S3 full; S2 and S4 with one free slot each.
		if err := cl.Place(jt[0].Maps[0], servers[0]); err != nil {
			return 0, err
		}
		if err := cl.Place(jt[1].Maps[0], servers[0]); err != nil {
			return 0, err
		}
		req.Fixed[jt[0].Maps[0]] = true
		req.Fixed[jt[1].Maps[0]] = true
		for _, blocked := range []struct {
			srv topology.NodeID
			cpu int
		}{{servers[2], 2}, {servers[1], 1}, {servers[3], 1}} {
			ct, err := cl.NewContainer(cluster.Resources{CPU: blocked.cpu, Memory: 1})
			if err != nil {
				return 0, err
			}
			if err := cl.Place(ct.ID, blocked.srv); err != nil {
				return 0, err
			}
		}
		var s scheduler.Scheduler = &core.HitScheduler{}
		if !hit {
			// The case study's log-derived placement: R1 (heavy) on S4, R2 on
			// S2 — the cross-rack heavy flow. Pin it directly.
			if err := cl.Place(jt[0].Reduces[0], servers[3]); err != nil {
				return 0, err
			}
			if err := cl.Place(jt[1].Reduces[0], servers[1]); err != nil {
				return 0, err
			}
			req.Fixed[jt[0].Reduces[0]] = true
			req.Fixed[jt[1].Reduces[0]] = true
			s = scheduler.Capacity{}
		}
		if err := s.Schedule(req); err != nil {
			return 0, err
		}
		cm := ctl.CostModel()
		loc := req.Locator()
		var delay float64
		for _, f := range req.Flows {
			d, err := cm.FlowDelay(f, ctl.Policy(f.ID), loc)
			if err != nil {
				return 0, err
			}
			delay += d
		}
		return delay, nil
	}
	capDelay, err := run(false)
	if err != nil {
		return nil, err
	}
	hitDelay, err := run(true)
	if err != nil {
		return nil, err
	}
	return &Fig3Result{
		CapacityDelayGBT: capDelay,
		HitDelayGBT:      hitDelay,
		ImprovementPct:   metrics.Improvement(capDelay, hitDelay) * 100,
	}, nil
}

// Render formats the case study comparison.
func (r *Fig3Result) Render() string {
	tb := metrics.NewTable("Figure 3 / §2.3 case study: total shuffle delay cost",
		"placement", "delay (GB·T)")
	tb.AddRowf([]string{"%s", "%.0f"}, "capacity (observed)", r.CapacityDelayGBT)
	tb.AddRowf([]string{"%s", "%.0f"}, "hit (topology-aware)", r.HitDelayGBT)
	tb.AddRow("improvement", fmt.Sprintf("%.0f%% (paper: ~42%%)", r.ImprovementPct))
	return tb.String()
}
