package experiments

import (
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// OnlineRow is one scheduler's aggregate under Poisson arrivals.
type OnlineRow struct {
	Scheduler string
	JCTMean   float64
	JCTP90    float64
	Cost      float64
}

// OnlineResult compares schedulers under online job arrivals — an extension
// beyond the paper's batch submissions: jobs arrive as a Poisson process
// and each is scheduled against whatever the cluster and fabric look like
// at that moment.
type OnlineResult struct {
	Rows []OnlineRow
	// ArrivalRate in jobs per time unit.
	ArrivalRate float64
}

// Online runs the arrival experiment.
func Online(cfg Config) (*OnlineResult, error) {
	cfg = cfg.withDefaults()
	nJobs := 8
	rate := 0.02
	if cfg.Quick {
		nJobs = 3
	}
	res := &OnlineResult{ArrivalRate: rate}
	for _, name := range SchedulerNames() {
		row := OnlineRow{Scheduler: name}
		for rep := 0; rep < cfg.Repeats; rep++ {
			seed := cfg.Seed + int64(rep)*941
			g, err := jobGen(cfg, seed)
			if err != nil {
				return nil, err
			}
			jobs := g.Workload(nJobs)
			arrivals, err := workload.PoissonArrivals(nJobs, rate, seed)
			if err != nil {
				return nil, err
			}
			topo, err := testbedTopology(0.08)
			if err != nil {
				return nil, err
			}
			s, err := newScheduler(name)
			if err != nil {
				return nil, err
			}
			eng, err := sim.New(topo, cluster.Resources{CPU: 2, Memory: 8192}, s, sim.Options{Seed: seed})
			if err != nil {
				return nil, err
			}
			r, err := eng.RunWithArrivals(jobs, arrivals)
			if err != nil {
				return nil, err
			}
			row.JCTMean += r.JCT.Mean()
			row.JCTP90 += r.JCT.Percentile(90)
			row.Cost += r.TotalTrafficCost
		}
		n := float64(cfg.Repeats)
		row.JCTMean /= n
		row.JCTP90 /= n
		row.Cost /= n
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// JCT returns the named scheduler's mean JCT, or -1.
func (r *OnlineResult) JCT(name string) float64 {
	for _, row := range r.Rows {
		if row.Scheduler == name {
			return row.JCTMean
		}
	}
	return -1
}

// Render formats the table.
func (r *OnlineResult) Render() string {
	tb := metrics.NewTable("Online arrivals (Poisson) — extension beyond the paper's batch runs",
		"scheduler", "JCT mean", "JCT p90", "shuffle cost")
	for _, row := range r.Rows {
		tb.AddRowf([]string{"%s", "%.1f", "%.1f", "%.1f"},
			row.Scheduler, row.JCTMean, row.JCTP90, row.Cost)
	}
	return tb.String()
}
