package experiments

import (
	"encoding/csv"
	"strconv"
	"strings"
)

// CSVable results can dump plot-ready data rows. Every figure result
// implements it, so `hitbench -csv` emits files a plotting tool can consume
// directly (one header row, comma-separated).
type CSVable interface {
	CSV() string
}

func writeCSV(header []string, rows [][]string) string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(header)
	_ = w.WriteAll(rows)
	w.Flush()
	return b.String()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// CSV implements CSVable.
func (r *Table1Result) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, b := range r.Rows {
		rows = append(rows, []string{b.Name, b.Class.String(), f(b.Share), f(b.ShuffleRatio), f(b.RemoteMapRatio)})
	}
	return writeCSV([]string{"benchmark", "class", "share_pct", "shuffle_ratio", "remote_map_ratio"}, rows)
}

// CSV implements CSVable.
func (r *Fig1Result) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Class.String(), f(row.ShuffleGB), f(row.RemoteMapGB), f(row.ShuffleFrac), f(row.RemoteMapFrac)})
	}
	return writeCSV([]string{"class", "shuffle_gb", "remote_map_gb", "shuffle_frac", "remote_map_frac"}, rows)
}

// CSV implements CSVable.
func (r *Fig3Result) CSV() string {
	return writeCSV([]string{"placement", "delay_gbt"}, [][]string{
		{"capacity", f(r.CapacityDelayGBT)},
		{"hit", f(r.HitDelayGBT)},
	})
}

// CSV implements CSVable: the Figure 6(a) CDF points per scheduler.
func (r *Fig6Result) CSV() string {
	var rows [][]string
	for _, run := range r.Runs {
		for _, pt := range run.JCT.CDF(64) {
			rows = append(rows, []string{run.Name, f(pt.Value), f(pt.Fraction)})
		}
	}
	return writeCSV([]string{"scheduler", "jct", "fraction"}, rows)
}

// CSV implements CSVable.
func (r *Fig7Result) CSV() string {
	rows := make([][]string, 0, len(r.Runs))
	for _, run := range r.Runs {
		rows = append(rows, []string{run.Name, f(run.AvgRouteHops), f(run.AvgShuffleDelayT), f(run.AvgTransferTime)})
	}
	return writeCSV([]string{"scheduler", "avg_route_hops", "avg_shuffle_delay_t", "avg_transfer_time"}, rows)
}

// CSV implements CSVable.
func (r *Fig7PacketResult) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Scheduler, f(row.AvgDelayT), f(row.P99DelayT), f(row.LossRate), f(row.AvgHops)})
	}
	return writeCSV([]string{"scheduler", "avg_delay_t", "p99_delay_t", "loss_rate", "avg_hops"}, rows)
}

// CSV implements CSVable.
func (r *Fig8aResult) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Class.String(), row.Scheduler, f(row.CostReduction)})
	}
	return writeCSV([]string{"class", "scheduler", "cost_reduction"}, rows)
}

// CSV implements CSVable.
func (r *Fig8bResult) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Architecture, row.Scheduler, f(row.ShuffleCost)})
	}
	return writeCSV([]string{"architecture", "scheduler", "shuffle_cost"}, rows)
}

// CSV implements CSVable.
func (r *Fig9Result) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{f(row.BandwidthMbps), f(row.HitImprovement), f(row.PNAImprovement)})
	}
	return writeCSV([]string{"bandwidth_mbps", "hit_improvement", "pna_improvement"}, rows)
}

// CSV implements CSVable.
func (r *Fig10Result) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{strconv.Itoa(row.Jobs), f(row.HitCostReduction), f(row.PNACostReduction)})
	}
	return writeCSV([]string{"jobs", "hit_cost_reduction", "pna_cost_reduction"}, rows)
}

// CSV implements CSVable.
func (r *BaselineResult) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Scheduler, f(row.ShuffleCost), f(row.JCTMean), f(row.AvgHops)})
	}
	return writeCSV([]string{"scheduler", "shuffle_cost", "jct_mean", "avg_hops"}, rows)
}

// CSV implements CSVable.
func (r *OnlineResult) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Scheduler, f(row.JCTMean), f(row.JCTP90), f(row.Cost)})
	}
	return writeCSV([]string{"scheduler", "jct_mean", "jct_p90", "shuffle_cost"}, rows)
}

// CSV implements CSVable.
func (r *FailureResult) CSV() string {
	return writeCSV([]string{"metric", "value"}, [][]string{
		{"cost_before", f(r.CostBefore)},
		{"overloaded_after_failure", strconv.Itoa(r.OverloadedAfterFailure)},
		{"flows_rerouted", strconv.Itoa(r.FlowsRerouted)},
		{"overloaded_after_recovery", strconv.Itoa(r.OverloadedAfterRecovery)},
		{"cost_after", f(r.CostAfter)},
	})
}

// CSV implements CSVable.
func (r *FailureSweepResult) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			f(row.Rate), f(row.Severity), f(row.BaselineJCT), f(row.FaultyJCT),
			f(row.Inflation), f(row.RecoveryLatency), f(row.Rerouted),
			f(row.Dropped), f(row.Evictions), f(row.Retries), f(row.FailedJobs),
		})
	}
	return writeCSV([]string{
		"fault_rate", "severity", "baseline_jct", "faulty_jct", "jct_inflation",
		"recovery_latency_t", "rerouted_flows", "dropped_flows", "evictions",
		"retries", "failed_jobs",
	}, rows)
}

// CSV implements CSVable.
func (r *AblationResult) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Variant, f(row.ShuffleCost), f(row.JCTMean)})
	}
	return writeCSV([]string{"variant", "shuffle_cost", "jct_mean"}, rows)
}

// Interface checks: every experiment result is CSVable.
var (
	_ CSVable = (*Table1Result)(nil)
	_ CSVable = (*Fig1Result)(nil)
	_ CSVable = (*Fig3Result)(nil)
	_ CSVable = (*Fig6Result)(nil)
	_ CSVable = (*Fig7Result)(nil)
	_ CSVable = (*Fig7PacketResult)(nil)
	_ CSVable = (*Fig8aResult)(nil)
	_ CSVable = (*Fig8bResult)(nil)
	_ CSVable = (*Fig9Result)(nil)
	_ CSVable = (*Fig10Result)(nil)
	_ CSVable = (*BaselineResult)(nil)
	_ CSVable = (*OnlineResult)(nil)
	_ CSVable = (*FailureResult)(nil)
	_ CSVable = (*FailureSweepResult)(nil)
	_ CSVable = (*AblationResult)(nil)
)
