package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// Figures 6 & 7 (shared runs: testbed workload on the paper tree)
// ---------------------------------------------------------------------------

// SchedulerRun aggregates one scheduler's samples across repeats.
type SchedulerRun struct {
	Name       string
	JCT        metrics.Sample
	MapTime    metrics.Sample
	ReduceTime metrics.Sample
	// Figure 7 quantities (averaged over repeats).
	AvgRouteHops     float64
	AvgShuffleDelayT float64
	AvgTransferTime  float64
	// Cost / throughput aggregates.
	TotalTrafficCost float64
	Throughput       float64
}

// Fig6Result carries per-scheduler distributions for Figures 6(a–c) and the
// per-flow route metrics for Figures 7(a–b).
type Fig6Result struct {
	Runs []*SchedulerRun // capacity, pna, hit order
	// JCTImprovementVsCapacity / VsPNA summarize Figure 6(a) the way the
	// abstract quotes it (28% and 11%).
	JCTImprovementVsCapacity float64
	JCTImprovementVsPNA      float64
}

// Figure6 runs the Table 1 workload mix on the 64-host testbed tree under
// Capacity, PNA and Hit, collecting the distributions Figures 6 and 7 plot.
func Figure6(cfg Config) (*Fig6Result, error) {
	cfg = cfg.withDefaults()
	nJobs := 8
	// Slow links relative to compute make the shuffle phase dominate job
	// completion, as it does on the paper's shared multi-tenant network
	// (§2.1); 0.08 GB per time unit reproduces the paper's headline JCT
	// improvement.
	bandwidth := 0.08
	if cfg.Quick {
		nJobs = 3
	}
	res := &Fig6Result{}
	cells, err := runCells(SchedulerNames(), cfg.Repeats, func(name string, rep int) (*topology.Topology, []*workload.Job, int64, error) {
		seed := cfg.Seed + int64(rep)*977
		g, err := jobGen(cfg, seed)
		if err != nil {
			return nil, nil, 0, err
		}
		topo, err := testbedTopology(bandwidth)
		if err != nil {
			return nil, nil, 0, err
		}
		return topo, g.Workload(nJobs), seed, nil
	})
	if err != nil {
		return nil, err
	}
	for si, name := range SchedulerNames() {
		run := &SchedulerRun{Name: name}
		var hops, delayT, xfer, tput float64
		for _, r := range cells[si] {
			run.JCT.AddAll(r.JCT.Values())
			run.MapTime.AddAll(r.MapTime.Values())
			run.ReduceTime.AddAll(r.ReduceTime.Values())
			hops += r.AvgRouteHops
			delayT += r.AvgShuffleDelayT
			xfer += r.AvgFlowTransferTime
			tput += r.ShuffleThroughput
			run.TotalTrafficCost += r.TotalTrafficCost
		}
		n := float64(cfg.Repeats)
		run.AvgRouteHops = hops / n
		run.AvgShuffleDelayT = delayT / n
		run.AvgTransferTime = xfer / n
		run.Throughput = tput / n
		res.Runs = append(res.Runs, run)
	}
	capMean := res.Runs[0].JCT.Mean()
	pnaMean := res.Runs[1].JCT.Mean()
	hitMean := res.Runs[2].JCT.Mean()
	res.JCTImprovementVsCapacity = metrics.Improvement(capMean, hitMean)
	res.JCTImprovementVsPNA = metrics.Improvement(pnaMean, hitMean)
	return res, nil
}

// Run returns the named scheduler's aggregate, or nil.
func (r *Fig6Result) Run(name string) *SchedulerRun {
	for _, run := range r.Runs {
		if run.Name == name {
			return run
		}
	}
	return nil
}

// Render formats Figure 6's summary (means and key percentiles; the CDF
// points are available via each run's samples).
func (r *Fig6Result) Render() string {
	tb := metrics.NewTable("Figure 6: job completion, map and reduce task times",
		"scheduler", "JCT mean", "JCT p50", "JCT p90", "map mean", "reduce mean")
	for _, run := range r.Runs {
		tb.AddRowf([]string{"%s", "%.1f", "%.1f", "%.1f", "%.1f", "%.1f"},
			run.Name, run.JCT.Mean(), run.JCT.Percentile(50), run.JCT.Percentile(90),
			run.MapTime.Mean(), run.ReduceTime.Mean())
	}
	out := tb.String()
	out += fmt.Sprintf("hit JCT improvement: %.0f%% vs capacity (paper: 28%%), %.0f%% vs pna (paper: 11%%)\n",
		r.JCTImprovementVsCapacity*100, r.JCTImprovementVsPNA*100)
	return out
}

// RenderCDF emits the Figure 6(a) CDF series (step points per scheduler).
func (r *Fig6Result) RenderCDF(points int) string {
	tb := metrics.NewTable("Figure 6(a): CDF of job completion times", "scheduler", "JCT", "fraction")
	for _, run := range r.Runs {
		for _, pt := range run.JCT.CDF(points) {
			tb.AddRowf([]string{"%s", "%.1f", "%.2f"}, run.Name, pt.Value, pt.Fraction)
		}
	}
	return tb.String()
}

// Fig7Result presents the route-length and shuffle-delay comparison.
type Fig7Result struct {
	Runs []*SchedulerRun
	// HopsImprovement and DelayImprovement compare hit vs capacity
	// (paper: 6.5 -> 4.4 hops = ~30%; 189 -> 131 us = ~32%).
	HopsImprovement  float64
	DelayImprovement float64
}

// Figure7 derives the Figure 7 metrics from the Figure 6 runs.
func Figure7(cfg Config) (*Fig7Result, error) {
	f6, err := Figure6(cfg)
	if err != nil {
		return nil, err
	}
	return Fig7FromFig6(f6), nil
}

// Fig7FromFig6 reuses already-collected Figure 6 runs.
func Fig7FromFig6(f6 *Fig6Result) *Fig7Result {
	res := &Fig7Result{Runs: f6.Runs}
	capRun := f6.Run("capacity")
	hitRun := f6.Run("hit")
	if capRun != nil && hitRun != nil {
		res.HopsImprovement = metrics.Improvement(capRun.AvgRouteHops, hitRun.AvgRouteHops)
		res.DelayImprovement = metrics.Improvement(capRun.AvgShuffleDelayT, hitRun.AvgShuffleDelayT)
	}
	return res
}

// Render formats Figure 7.
func (r *Fig7Result) Render() string {
	tb := metrics.NewTable("Figure 7: shuffle traffic flow",
		"scheduler", "avg route (hops)", "avg shuffle delay (T)", "avg transfer time")
	for _, run := range r.Runs {
		tb.AddRowf([]string{"%s", "%.2f", "%.2f", "%.2f"},
			run.Name, run.AvgRouteHops, run.AvgShuffleDelayT, run.AvgTransferTime)
	}
	out := tb.String()
	out += fmt.Sprintf("hit vs capacity: route length -%.0f%% (paper: ~30%%), shuffle delay -%.0f%% (paper: ~32%%)\n",
		r.HopsImprovement*100, r.DelayImprovement*100)
	return out
}

// ---------------------------------------------------------------------------
// Figure 8(a): shuffle-cost reduction by job class
// ---------------------------------------------------------------------------

// Fig8aRow is one class's cost reduction for one scheduler.
type Fig8aRow struct {
	Class         workload.Class
	Scheduler     string
	CostReduction float64 // vs capacity
}

// Fig8aResult carries all rows.
type Fig8aResult struct {
	Rows []Fig8aRow
}

// Figure8a runs a single job of each class (averaged over repeats) on the
// testbed tree and reports the shuffle-cost reduction of Hit and PNA versus
// Capacity. The paper reports ~38% (hit) and ~21% (pna) for shuffle-heavy,
// with smaller gains for medium/light.
func Figure8a(cfg Config) (*Fig8aResult, error) {
	cfg = cfg.withDefaults()
	res := &Fig8aResult{}
	for _, class := range workload.Classes() {
		class := class
		cells, err := runCells(SchedulerNames(), cfg.Repeats, func(name string, rep int) (*topology.Topology, []*workload.Job, int64, error) {
			seed := cfg.Seed + int64(rep)*577 + int64(class)
			g, err := jobGen(cfg, seed)
			if err != nil {
				return nil, nil, 0, err
			}
			job, err := g.SampleClass(class)
			if err != nil {
				return nil, nil, 0, err
			}
			topo, err := testbedTopology(1)
			if err != nil {
				return nil, nil, 0, err
			}
			return topo, []*workload.Job{job}, seed, nil
		})
		if err != nil {
			return nil, err
		}
		costs := map[string]float64{}
		for si, name := range SchedulerNames() {
			for _, r := range cells[si] {
				costs[name] += r.TotalTrafficCost
			}
		}
		for _, name := range []string{"pna", "hit"} {
			res.Rows = append(res.Rows, Fig8aRow{
				Class:         class,
				Scheduler:     name,
				CostReduction: metrics.Improvement(costs["capacity"], costs[name]),
			})
		}
	}
	return res, nil
}

// Reduction returns the stored reduction for (class, scheduler).
func (r *Fig8aResult) Reduction(class workload.Class, sched string) float64 {
	for _, row := range r.Rows {
		if row.Class == class && row.Scheduler == sched {
			return row.CostReduction
		}
	}
	return 0
}

// Render formats Figure 8(a).
func (r *Fig8aResult) Render() string {
	tb := metrics.NewTable("Figure 8(a): shuffle cost reduction vs capacity, by job type",
		"class", "scheduler", "cost reduction (%)")
	for _, row := range r.Rows {
		tb.AddRowf([]string{"%s", "%s", "%.1f"},
			row.Class.String(), row.Scheduler, row.CostReduction*100)
	}
	return tb.String()
}

// ---------------------------------------------------------------------------
// Figure 8(b): shuffle cost across network architectures
// ---------------------------------------------------------------------------

// Fig8bRow is one (architecture, scheduler) cost cell.
type Fig8bRow struct {
	Architecture string
	Scheduler    string
	ShuffleCost  float64
}

// Fig8bResult carries the architecture sweep.
type Fig8bResult struct {
	Rows []Fig8bRow
}

// Figure8b runs a shuffle-heavy workload across Tree, Fat-Tree, BCube and
// VL2 fabrics of comparable size; the paper reports Hit beating PNA ~19%
// and Capacity ~32% across architectures.
func Figure8b(cfg Config) (*Fig8bResult, error) {
	cfg = cfg.withDefaults()
	nJobs := 4
	minServers := 32
	if cfg.Quick {
		nJobs = 2
		minServers = 16
	}
	res := &Fig8bResult{}
	for _, arch := range topology.ArchitectureNames() {
		arch := arch
		cells, err := runCells(SchedulerNames(), cfg.Repeats, func(name string, rep int) (*topology.Topology, []*workload.Job, int64, error) {
			seed := cfg.Seed + int64(rep)*733
			g, err := jobGen(cfg, seed)
			if err != nil {
				return nil, nil, 0, err
			}
			var jobs []*workload.Job
			for i := 0; i < nJobs; i++ {
				j, err := g.SampleClass(workload.ShuffleHeavy)
				if err != nil {
					return nil, nil, 0, err
				}
				jobs = append(jobs, j)
			}
			topo, err := topology.NewArchitecture(arch, minServers, topology.LinkParams{
				Bandwidth: 1, SwitchCapacity: 48,
			})
			if err != nil {
				return nil, nil, 0, err
			}
			return topo, jobs, seed, nil
		})
		if err != nil {
			return nil, err
		}
		costs := map[string]float64{}
		for si, name := range SchedulerNames() {
			for _, r := range cells[si] {
				costs[name] += r.TotalTrafficCost
			}
		}
		for _, name := range SchedulerNames() {
			res.Rows = append(res.Rows, Fig8bRow{
				Architecture: arch, Scheduler: name, ShuffleCost: costs[name] / float64(cfg.Repeats),
			})
		}
	}
	return res, nil
}

// Cost returns the stored cost for (arch, scheduler), or -1.
func (r *Fig8bResult) Cost(arch, sched string) float64 {
	for _, row := range r.Rows {
		if row.Architecture == arch && row.Scheduler == sched {
			return row.ShuffleCost
		}
	}
	return -1
}

// Render formats Figure 8(b).
func (r *Fig8bResult) Render() string {
	tb := metrics.NewTable("Figure 8(b): shuffle cost by network architecture",
		"architecture", "scheduler", "shuffle cost")
	for _, row := range r.Rows {
		tb.AddRowf([]string{"%s", "%s", "%.1f"}, row.Architecture, row.Scheduler, row.ShuffleCost)
	}
	return tb.String()
}

// ---------------------------------------------------------------------------
// Figure 9: bandwidth sensitivity on a 512-node tree
// ---------------------------------------------------------------------------

// Fig9Row is one bandwidth point.
type Fig9Row struct {
	BandwidthMbps float64
	// ThroughputImprovement vs capacity per scheduler.
	HitImprovement float64
	PNAImprovement float64
}

// Fig9Result carries the sweep.
type Fig9Result struct {
	Rows []Fig9Row
}

// Figure9 sweeps the link bandwidth on a 512-server tree (depth 3, fanout
// 8) and reports shuffle-throughput improvement of Hit and PNA over
// Capacity. The paper sweeps 0.1–60 Mbps and sees Hit's edge grow as
// bandwidth shrinks (up to ~48% at 0.1 Mbps).
func Figure9(cfg Config) (*Fig9Result, error) {
	cfg = cfg.withDefaults()
	bandwidths := []float64{0.1, 1, 10, 30, 60}
	nJobs := 6
	fanout := 8 // 8^3 = 512 servers
	if cfg.Quick {
		bandwidths = []float64{0.1, 10}
		nJobs = 2
		fanout = 4 // 64 servers
	}
	res := &Fig9Result{}
	for _, bw := range bandwidths {
		bw := bw
		cells, err := runCells(SchedulerNames(), cfg.Repeats, func(name string, rep int) (*topology.Topology, []*workload.Job, int64, error) {
			seed := cfg.Seed + int64(rep)*389
			g, err := jobGen(cfg, seed)
			if err != nil {
				return nil, nil, 0, err
			}
			var jobs []*workload.Job
			for i := 0; i < nJobs; i++ {
				j, err := g.SampleClass(workload.ShuffleHeavy)
				if err != nil {
					return nil, nil, 0, err
				}
				jobs = append(jobs, j)
			}
			// Bandwidth in "Mbps" maps to link capacity units directly; the
			// comparison is relative so only the ratio to demand matters.
			// Switch processing capacity stays absolute — Figure 9 varies
			// link bandwidth, not switch fabric speed.
			topo, err := topology.NewTree(3, fanout, topology.LinkParams{
				Bandwidth:        bw / 10,
				SwitchCapacity:   48,
				Oversubscription: 4,
			})
			if err != nil {
				return nil, nil, 0, err
			}
			return topo, jobs, seed, nil
		})
		if err != nil {
			return nil, err
		}
		tput := map[string]float64{}
		for si, name := range SchedulerNames() {
			for _, r := range cells[si] {
				tput[name] += r.ShuffleThroughput
			}
		}
		res.Rows = append(res.Rows, Fig9Row{
			BandwidthMbps:  bw,
			HitImprovement: relGain(tput["hit"], tput["capacity"]),
			PNAImprovement: relGain(tput["pna"], tput["capacity"]),
		})
	}
	return res, nil
}

// relGain returns (x - base) / base, or 0 when base is 0.
func relGain(x, base float64) float64 {
	if base == 0 { //taalint:floateq exact-zero division guard: a zero baseline means "absent", not "tiny"

		return 0
	}
	return (x - base) / base
}

// Render formats Figure 9.
func (r *Fig9Result) Render() string {
	tb := metrics.NewTable("Figure 9: throughput improvement vs capacity under varying bandwidth",
		"bandwidth (Mbps)", "hit (%)", "pna (%)")
	for _, row := range r.Rows {
		tb.AddRowf([]string{"%.1f", "%.1f", "%.1f"},
			row.BandwidthMbps, row.HitImprovement*100, row.PNAImprovement*100)
	}
	return tb.String()
}

// ---------------------------------------------------------------------------
// Figure 10: sensitivity to job count
// ---------------------------------------------------------------------------

// Fig10Row is one job-count point.
type Fig10Row struct {
	Jobs             int
	HitCostReduction float64
	PNACostReduction float64
}

// Fig10Result carries the sweep.
type Fig10Result struct {
	Rows []Fig10Row
}

// Figure10 sweeps the number of concurrent jobs (3–18 in the paper) and
// reports the shuffle-cost reduction versus Capacity. The paper runs this
// sweep on the large-scale simulation (512 nodes), where compute slots stay
// plentiful and the growing job count pressures the NETWORK: beyond ~12
// jobs the switch-capacity constraints force the topology-unaware baseline
// onto ever longer detours while Hit keeps flows local — the paper's
// rising-then-plateauing shape.
func Figure10(cfg Config) (*Fig10Result, error) {
	cfg = cfg.withDefaults()
	jobCounts := []int{3, 6, 9, 12, 15, 18}
	fanout := 8 // 512 servers
	if cfg.Quick {
		jobCounts = []int{3, 6}
		fanout = 4
	}
	res := &Fig10Result{}
	for _, n := range jobCounts {
		n := n
		cells, err := runCells(SchedulerNames(), cfg.Repeats, func(name string, rep int) (*topology.Topology, []*workload.Job, int64, error) {
			seed := cfg.Seed + int64(rep)*211
			wcfg := workload.DefaultConfig()
			wcfg.MinInputGB, wcfg.MaxInputGB, wcfg.MaxMaps = 2, 8, 8
			g, err := workload.NewGenerator(wcfg, seed)
			if err != nil {
				return nil, nil, 0, err
			}
			topo, err := topology.NewTree(3, fanout, topology.LinkParams{
				Bandwidth:        1,
				SwitchCapacity:   24,
				Oversubscription: 4,
			})
			if err != nil {
				return nil, nil, 0, err
			}
			return topo, g.Workload(n), seed, nil
		})
		if err != nil {
			return nil, err
		}
		costs := map[string]float64{}
		for si, name := range SchedulerNames() {
			for _, r := range cells[si] {
				costs[name] += r.TotalTrafficCost
			}
		}
		res.Rows = append(res.Rows, Fig10Row{
			Jobs:             n,
			HitCostReduction: metrics.Improvement(costs["capacity"], costs["hit"]),
			PNACostReduction: metrics.Improvement(costs["capacity"], costs["pna"]),
		})
	}
	return res, nil
}

// Render formats Figure 10.
func (r *Fig10Result) Render() string {
	tb := metrics.NewTable("Figure 10: shuffle cost reduction vs job count",
		"jobs", "hit (%)", "pna (%)")
	for _, row := range r.Rows {
		tb.AddRowf([]string{"%d", "%.1f", "%.1f"},
			row.Jobs, row.HitCostReduction*100, row.PNACostReduction*100)
	}
	return tb.String()
}

// ---------------------------------------------------------------------------
// Ablation: the design choices DESIGN.md calls out
// ---------------------------------------------------------------------------

// AblationRow is one variant's aggregate cost.
type AblationRow struct {
	Variant     string
	ShuffleCost float64
	JCTMean     float64
}

// AblationResult compares full Hit against its ablated variants.
type AblationResult struct {
	Rows []AblationRow
}

// Ablation runs full Hit, Hit without policy optimization, Hit without
// stable matching, and Random on the same workload.
func Ablation(cfg Config) (*AblationResult, error) {
	cfg = cfg.withDefaults()
	nJobs := 6
	if cfg.Quick {
		nJobs = 3
	}
	variants := []string{"hit", "hit-nopolicy", "hit-nomatching", "random"}
	res := &AblationResult{}
	for _, name := range variants {
		var cost, jct float64
		for rep := 0; rep < cfg.Repeats; rep++ {
			seed := cfg.Seed + int64(rep)*499
			g, err := jobGen(cfg, seed)
			if err != nil {
				return nil, err
			}
			jobs := g.Workload(nJobs)
			topo, err := testbedTopology(1)
			if err != nil {
				return nil, err
			}
			r, err := runOnce(topo, name, jobs, seed)
			if err != nil {
				return nil, err
			}
			cost += r.TotalTrafficCost
			jct += r.JCT.Mean()
		}
		res.Rows = append(res.Rows, AblationRow{
			Variant:     name,
			ShuffleCost: cost / float64(cfg.Repeats),
			JCTMean:     jct / float64(cfg.Repeats),
		})
	}
	return res, nil
}

// Render formats the ablation table.
func (r *AblationResult) Render() string {
	tb := metrics.NewTable("Ablation: Hit-Scheduler design choices",
		"variant", "shuffle cost", "JCT mean")
	for _, row := range r.Rows {
		tb.AddRowf([]string{"%s", "%.1f", "%.1f"}, row.Variant, row.ShuffleCost, row.JCTMean)
	}
	return tb.String()
}
