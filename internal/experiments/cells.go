package experiments

import (
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// cellBuilder prepares one independent simulation cell: the fabric, the
// workload and the seed for (scheduler name, repeat). Every cell owns its
// topology, cluster, controller and RNG, so cells run concurrently without
// sharing state; results are deterministic regardless of worker count.
type cellBuilder func(name string, rep int) (*topology.Topology, []*workload.Job, int64, error)

// runCells executes one simulation per (scheduler, repeat) cell on a worker
// pool and returns results indexed [scheduler][repeat].
func runCells(names []string, repeats int, build cellBuilder) ([][]*sim.Result, error) {
	type cell struct {
		name string
		si   int
		rep  int
	}
	var cells []cell
	for si, name := range names {
		for rep := 0; rep < repeats; rep++ {
			cells = append(cells, cell{name: name, si: si, rep: rep})
		}
	}
	flat, err := parallel.Map(len(cells), 0, func(i int) (*sim.Result, error) {
		c := cells[i]
		topo, jobs, seed, err := build(c.name, c.rep)
		if err != nil {
			return nil, err
		}
		return runOnce(topo, c.name, jobs, seed)
	})
	if err != nil {
		return nil, err
	}
	out := make([][]*sim.Result, len(names))
	for i := range out {
		out[i] = make([]*sim.Result, repeats)
	}
	for i, c := range cells {
		out[c.si][c.rep] = flat[i]
	}
	return out, nil
}
