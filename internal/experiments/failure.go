package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// FailureResult records the switch-degradation recovery experiment: an
// extension exercising the controller's dynamic policy management (the
// paper's Figure 2 scenario made operational — a switch loses capacity and
// the affected shuffle flows are rerouted onto same-type alternatives).
type FailureResult struct {
	// CostBefore is the total shuffle cost with the healthy fabric.
	CostBefore float64
	// OverloadedAfterFailure counts switches pushed over capacity by the
	// degradation.
	OverloadedAfterFailure int
	// FlowsRerouted is how many flows the controller moved to recover.
	FlowsRerouted int
	// CostAfter is the total cost on the degraded fabric after recovery.
	CostAfter float64
	// OverloadedAfterRecovery must be zero for successful recovery.
	OverloadedAfterRecovery int
}

// FailureRecovery schedules a shuffle-heavy wave with Hit, halves the
// capacity of the hottest aggregation-tier switch, and lets the controller
// rebalance. Fat-tree fabrics always offer same-type alternatives, so
// recovery must succeed with zero remaining overload and only a modest cost
// increase.
func FailureRecovery(cfg Config) (*FailureResult, error) {
	cfg = cfg.withDefaults()
	nJobs := 4
	if cfg.Quick {
		nJobs = 2
	}
	topo, err := topology.NewFatTree(4, topology.LinkParams{Bandwidth: 1, SwitchCapacity: 64})
	if err != nil {
		return nil, err
	}
	cl, err := cluster.New(topo, cluster.Resources{CPU: 4, Memory: 8192})
	if err != nil {
		return nil, err
	}
	ctl := controller.New(topo)
	// Single-wave request: size jobs so every task fits at once.
	wcfg := workload.DefaultConfig()
	wcfg.MinInputGB, wcfg.MaxInputGB, wcfg.MaxMaps = 2, 6, 6
	g, err := workload.NewGenerator(wcfg, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var jobs []*workload.Job
	for i := 0; i < nJobs; i++ {
		j, err := g.SampleClass(workload.ShuffleHeavy)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	s, err := newScheduler("hit")
	if err != nil {
		return nil, err
	}
	req, _, err := scheduler.NewJobRequest(cl, ctl, jobs, cluster.Resources{CPU: 1, Memory: 1024}, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	if err := s.Schedule(req); err != nil {
		return nil, err
	}
	loc := req.Locator()
	res := &FailureResult{}
	res.CostBefore, err = ctl.TotalCost(req.Flows, loc)
	if err != nil {
		return nil, err
	}

	// Degrade the hottest aggregation switch to half its current load.
	var hottest topology.NodeID = topology.None
	var maxLoad float64
	for _, w := range ctl.Oracle().SwitchesOfType(topology.TypeAggregation) {
		if l := ctl.Load(w); l > maxLoad {
			hottest, maxLoad = w, l
		}
	}
	if hottest == topology.None || maxLoad <= 0 {
		return nil, fmt.Errorf("experiments: no loaded aggregation switch to degrade")
	}
	if err := topo.SetSwitchCapacity(hottest, maxLoad/2); err != nil {
		return nil, err
	}
	res.OverloadedAfterFailure = len(ctl.OverloadedSwitches())

	res.FlowsRerouted, err = ctl.RebalanceOverloaded(req.Flows, loc)
	if err != nil {
		return nil, err
	}
	res.OverloadedAfterRecovery = len(ctl.OverloadedSwitches())
	res.CostAfter, err = ctl.TotalCost(req.Flows, loc)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// FailureSweepRow is one (fault-rate, severity) cell of the sweep, averaged
// over Config.Repeats seeds.
type FailureSweepRow struct {
	// Rate is the expected fabric faults per 100 T of horizon.
	Rate float64
	// Severity scales degrade factors and task-level fault probabilities.
	Severity float64
	// BaselineJCT is the mean JCT of the identical workload with no faults.
	BaselineJCT float64
	// FaultyJCT is the mean JCT of completed jobs under the fault plan.
	FaultyJCT float64
	// Inflation is FaultyJCT / BaselineJCT.
	Inflation float64
	// RecoveryLatency is the mean delay between a fault firing and the
	// reactor repairing the fabric (wave-quantized, in T).
	RecoveryLatency float64
	// Rerouted and Dropped count flows the reactor re-solved or shed.
	Rerouted, Dropped float64
	// Evictions counts containers displaced by server crashes; Retries
	// counts map re-attempts after task failures or evictions.
	Evictions, Retries float64
	// FailedJobs counts jobs that exhausted every retry budget.
	FailedJobs float64
}

// FailureSweepResult is the seeded fault-rate sweep: the same workload run
// under a grid of randomized fault schedules (rate x severity), each cell
// compared against a zero-fault baseline of the identical seed.
type FailureSweepResult struct {
	Rows []FailureSweepRow
}

// FailureSweep runs the Hit scheduler over a fault-rate x severity grid on
// the redundant fat-tree fabric. Each cell draws Repeats randomized
// timelines (seeded, so reruns are bit-identical), runs the full simulator
// fault path — retries, speculation, reactor reroutes — and reports JCT
// inflation over the zero-fault baseline plus recovery latency.
func FailureSweep(cfg Config) (*FailureSweepResult, error) {
	cfg = cfg.withDefaults()
	rates := []float64{4, 8, 16}
	sevs := []float64{0.3, 0.6, 0.9}
	nJobs := 8
	if cfg.Quick {
		rates = []float64{4, 16}
		sevs = []float64{0.6}
		nJobs = 3
	}

	// One run of the rep's workload on a fresh fabric; a nil plan is the
	// zero-fault baseline (identical seed, legacy simulator path).
	run := func(seed int64, plan func(*topology.Topology) *faults.Plan) (*sim.Result, error) {
		topo, err := topology.NewFatTree(4, topology.LinkParams{Bandwidth: 1, SwitchCapacity: 64})
		if err != nil {
			return nil, err
		}
		wcfg := workload.DefaultConfig()
		wcfg.MinInputGB, wcfg.MaxInputGB, wcfg.MaxMaps = 2, 5, 6
		g, err := workload.NewGenerator(wcfg, seed)
		if err != nil {
			return nil, err
		}
		jobs := g.Workload(nJobs)
		opts := sim.Options{Seed: seed}
		if plan != nil {
			opts.Faults = plan(topo)
		}
		eng, err := sim.New(topo, cluster.Resources{CPU: 4, Memory: 8192}, &core.HitScheduler{}, opts)
		if err != nil {
			return nil, err
		}
		return eng.Run(jobs)
	}

	res := &FailureSweepResult{}
	// Baselines depend only on the seed, not on the grid cell: run them once.
	baseJCT := make([]float64, cfg.Repeats)
	for rep := 0; rep < cfg.Repeats; rep++ {
		r, err := run(cfg.Seed+int64(rep)*941, nil)
		if err != nil {
			return nil, err
		}
		baseJCT[rep] = r.JCT.Mean()
	}

	for _, rate := range rates {
		for _, sev := range sevs {
			row := FailureSweepRow{Rate: rate, Severity: sev}
			for i := 0; i < cfg.Repeats; i++ {
				seed := cfg.Seed + int64(i)*941
				r, err := run(seed, func(topo *topology.Topology) *faults.Plan {
					return &faults.Plan{
						Events: faults.GenerateTimeline(rand.New(rand.NewSource(seed)), topo, faults.Spec{
							Horizon:  80,
							Rate:     rate,
							Severity: sev,
							MTTR:     10,
							// Crash-heavy mix: crashes are what exercise the
							// reactor's reroutes and the cluster's evictions.
							SwitchCrashW: 2, SwitchDegradeW: 1, LinkDegradeW: 1, ServerCrashW: 2,
						}),
						Tasks: faults.TaskModel{
							FailureProb:   0.1 * sev,
							StragglerProb: 0.1 * sev,
							Speculation:   true,
							Seed:          uint64(seed),
						},
					}
				})
				if err != nil {
					return nil, fmt.Errorf("experiments: failsweep rate=%g sev=%g seed=%d: %w", rate, sev, seed, err)
				}
				rep := r.Report
				if rep == nil {
					return nil, fmt.Errorf("experiments: failsweep: fault run returned no report")
				}
				row.BaselineJCT += baseJCT[i]
				row.FaultyJCT += r.JCT.Mean()
				if rep.ReactedFaults > 0 {
					row.RecoveryLatency += rep.RecoveryLatencySum / float64(rep.ReactedFaults)
				}
				row.Rerouted += float64(rep.ReroutedFlows)
				row.Dropped += float64(len(rep.DroppedFlows))
				row.Evictions += float64(rep.Evictions)
				row.Retries += float64(rep.Retries)
				row.FailedJobs += float64(len(rep.FailedJobs))
			}
			n := float64(cfg.Repeats)
			row.BaselineJCT /= n
			row.FaultyJCT /= n
			row.RecoveryLatency /= n
			row.Rerouted /= n
			row.Dropped /= n
			row.Evictions /= n
			row.Retries /= n
			row.FailedJobs /= n
			if row.BaselineJCT > 0 {
				row.Inflation = row.FaultyJCT / row.BaselineJCT
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Render formats the sweep table.
func (r *FailureSweepResult) Render() string {
	tb := metrics.NewTable("Fault-rate sweep: JCT inflation and recovery latency vs fault load (hit)",
		"rate/100T", "severity", "JCT base", "JCT faulty", "inflation", "recovery T", "rerouted", "dropped", "failed jobs")
	for _, row := range r.Rows {
		tb.AddRowf([]string{"%.0f", "%.1f", "%.1f", "%.1f", "%.2f", "%.1f", "%.1f", "%.1f", "%.1f"},
			row.Rate, row.Severity, row.BaselineJCT, row.FaultyJCT, row.Inflation,
			row.RecoveryLatency, row.Rerouted, row.Dropped, row.FailedJobs)
	}
	return tb.String()
}

// Render formats the recovery report.
func (r *FailureResult) Render() string {
	tb := metrics.NewTable("Failure injection: aggregation switch loses half its capacity",
		"metric", "value")
	tb.AddRowf([]string{"%s", "%.1f"}, "shuffle cost before failure", r.CostBefore)
	tb.AddRowf([]string{"%s", "%d"}, "overloaded switches after failure", r.OverloadedAfterFailure)
	tb.AddRowf([]string{"%s", "%d"}, "flows rerouted by controller", r.FlowsRerouted)
	tb.AddRowf([]string{"%s", "%d"}, "overloaded switches after recovery", r.OverloadedAfterRecovery)
	tb.AddRowf([]string{"%s", "%.1f"}, "shuffle cost after recovery", r.CostAfter)
	return tb.String()
}
