package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/metrics"
	"repro/internal/scheduler"
	"repro/internal/topology"
	"repro/internal/workload"
)

// FailureResult records the switch-degradation recovery experiment: an
// extension exercising the controller's dynamic policy management (the
// paper's Figure 2 scenario made operational — a switch loses capacity and
// the affected shuffle flows are rerouted onto same-type alternatives).
type FailureResult struct {
	// CostBefore is the total shuffle cost with the healthy fabric.
	CostBefore float64
	// OverloadedAfterFailure counts switches pushed over capacity by the
	// degradation.
	OverloadedAfterFailure int
	// FlowsRerouted is how many flows the controller moved to recover.
	FlowsRerouted int
	// CostAfter is the total cost on the degraded fabric after recovery.
	CostAfter float64
	// OverloadedAfterRecovery must be zero for successful recovery.
	OverloadedAfterRecovery int
}

// FailureRecovery schedules a shuffle-heavy wave with Hit, halves the
// capacity of the hottest aggregation-tier switch, and lets the controller
// rebalance. Fat-tree fabrics always offer same-type alternatives, so
// recovery must succeed with zero remaining overload and only a modest cost
// increase.
func FailureRecovery(cfg Config) (*FailureResult, error) {
	cfg = cfg.withDefaults()
	nJobs := 4
	if cfg.Quick {
		nJobs = 2
	}
	topo, err := topology.NewFatTree(4, topology.LinkParams{Bandwidth: 1, SwitchCapacity: 64})
	if err != nil {
		return nil, err
	}
	cl, err := cluster.New(topo, cluster.Resources{CPU: 4, Memory: 8192})
	if err != nil {
		return nil, err
	}
	ctl := controller.New(topo)
	// Single-wave request: size jobs so every task fits at once.
	wcfg := workload.DefaultConfig()
	wcfg.MinInputGB, wcfg.MaxInputGB, wcfg.MaxMaps = 2, 6, 6
	g, err := workload.NewGenerator(wcfg, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var jobs []*workload.Job
	for i := 0; i < nJobs; i++ {
		j, err := g.SampleClass(workload.ShuffleHeavy)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	s, err := newScheduler("hit")
	if err != nil {
		return nil, err
	}
	req, _, err := scheduler.NewJobRequest(cl, ctl, jobs, cluster.Resources{CPU: 1, Memory: 1024}, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	if err := s.Schedule(req); err != nil {
		return nil, err
	}
	loc := req.Locator()
	res := &FailureResult{}
	res.CostBefore, err = ctl.TotalCost(req.Flows, loc)
	if err != nil {
		return nil, err
	}

	// Degrade the hottest aggregation switch to half its current load.
	var hottest topology.NodeID = topology.None
	var maxLoad float64
	for _, w := range ctl.Oracle().SwitchesOfType(topology.TypeAggregation) {
		if l := ctl.Load(w); l > maxLoad {
			hottest, maxLoad = w, l
		}
	}
	if hottest == topology.None || maxLoad <= 0 {
		return nil, fmt.Errorf("experiments: no loaded aggregation switch to degrade")
	}
	if err := topo.SetSwitchCapacity(hottest, maxLoad/2); err != nil {
		return nil, err
	}
	res.OverloadedAfterFailure = len(ctl.OverloadedSwitches())

	res.FlowsRerouted, err = ctl.RebalanceOverloaded(req.Flows, loc)
	if err != nil {
		return nil, err
	}
	res.OverloadedAfterRecovery = len(ctl.OverloadedSwitches())
	res.CostAfter, err = ctl.TotalCost(req.Flows, loc)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats the recovery report.
func (r *FailureResult) Render() string {
	tb := metrics.NewTable("Failure injection: aggregation switch loses half its capacity",
		"metric", "value")
	tb.AddRowf([]string{"%s", "%.1f"}, "shuffle cost before failure", r.CostBefore)
	tb.AddRowf([]string{"%s", "%d"}, "overloaded switches after failure", r.OverloadedAfterFailure)
	tb.AddRowf([]string{"%s", "%d"}, "flows rerouted by controller", r.FlowsRerouted)
	tb.AddRowf([]string{"%s", "%d"}, "overloaded switches after recovery", r.OverloadedAfterRecovery)
	tb.AddRowf([]string{"%s", "%.1f"}, "shuffle cost after recovery", r.CostAfter)
	return tb.String()
}
