package experiments

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func quickCfg() Config { return Config{Seed: 1, Quick: true} }

func TestTable1(t *testing.T) {
	r := Table1()
	if len(r.Rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(r.Rows))
	}
	out := r.Render()
	for _, name := range []string{"terasort", "grep", "inverted-index"} {
		if !strings.Contains(out, name) {
			t.Errorf("render missing %q", name)
		}
	}
}

func TestFigure1ShapeMatchesPaper(t *testing.T) {
	r, err := Figure1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byClass := map[workload.Class]Fig1Row{}
	for _, row := range r.Rows {
		byClass[row.Class] = row
	}
	// Paper: heavy jobs shuffle > 75% of traffic, remote map < 20%.
	heavy := byClass[workload.ShuffleHeavy]
	if heavy.ShuffleFrac <= 0.75 {
		t.Errorf("heavy shuffle fraction = %v, want > 0.75", heavy.ShuffleFrac)
	}
	if heavy.RemoteMapFrac >= 0.20 {
		t.Errorf("heavy remote-map fraction = %v, want < 0.20", heavy.RemoteMapFrac)
	}
	// Ordering: heavy > medium > light shuffle fractions.
	if !(heavy.ShuffleFrac > byClass[workload.ShuffleMedium].ShuffleFrac &&
		byClass[workload.ShuffleMedium].ShuffleFrac > byClass[workload.ShuffleLight].ShuffleFrac) {
		t.Errorf("shuffle fraction ordering violated: %+v", r.Rows)
	}
	if !strings.Contains(r.Render(), "shuffle-heavy") {
		t.Error("render missing class names")
	}
}

func TestFigure3ReproducesCaseStudy(t *testing.T) {
	r, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if r.CapacityDelayGBT != 112 {
		t.Errorf("capacity delay = %v GB·T, want 112 (paper)", r.CapacityDelayGBT)
	}
	if r.HitDelayGBT != 64 {
		t.Errorf("hit delay = %v GB·T, want 64 (paper)", r.HitDelayGBT)
	}
	if r.ImprovementPct < 40 || r.ImprovementPct > 45 {
		t.Errorf("improvement = %v%%, want ~42%%", r.ImprovementPct)
	}
	if !strings.Contains(r.Render(), "112") {
		t.Error("render missing capacity value")
	}
}

func TestFigure6And7Shape(t *testing.T) {
	f6, err := Figure6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.Runs) != 3 {
		t.Fatalf("runs = %d", len(f6.Runs))
	}
	hit := f6.Run("hit")
	capc := f6.Run("capacity")
	if hit == nil || capc == nil || f6.Run("nope") != nil {
		t.Fatal("Run lookup broken")
	}
	// Shape: traffic cost is the robust discriminator at quick sizes; JCT
	// carries a large compute component, so allow slight noise there.
	if hit.TotalTrafficCost >= capc.TotalTrafficCost {
		t.Errorf("hit cost %v >= capacity %v", hit.TotalTrafficCost, capc.TotalTrafficCost)
	}
	if hit.JCT.Mean() > capc.JCT.Mean()*1.05 {
		t.Errorf("hit JCT %v materially above capacity %v", hit.JCT.Mean(), capc.JCT.Mean())
	}
	f7 := Fig7FromFig6(f6)
	if hit.AvgRouteHops > capc.AvgRouteHops {
		t.Errorf("hit hops %v > capacity %v", hit.AvgRouteHops, capc.AvgRouteHops)
	}
	if f7.HopsImprovement <= 0 || f7.DelayImprovement <= 0 {
		t.Errorf("fig7 improvements not positive: hops %v delay %v", f7.HopsImprovement, f7.DelayImprovement)
	}
	if !strings.Contains(f6.Render(), "hit") || !strings.Contains(f7.Render(), "hops") {
		t.Error("render output incomplete")
	}
	if !strings.Contains(f6.RenderCDF(5), "fraction") {
		t.Error("CDF render incomplete")
	}
}

func TestFigure8aShape(t *testing.T) {
	r, err := Figure8a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 classes x 2 schedulers)", len(r.Rows))
	}
	// Shape: hit's reduction on heavy workloads is positive and at least
	// matches pna's.
	hitHeavy := r.Reduction(workload.ShuffleHeavy, "hit")
	pnaHeavy := r.Reduction(workload.ShuffleHeavy, "pna")
	if hitHeavy <= 0 {
		t.Errorf("hit heavy reduction = %v, want > 0", hitHeavy)
	}
	if hitHeavy < pnaHeavy {
		t.Errorf("hit heavy reduction %v < pna %v", hitHeavy, pnaHeavy)
	}
	// Heavy gains meet or beat light gains for hit.
	if hitHeavy < r.Reduction(workload.ShuffleLight, "hit")-0.05 {
		t.Errorf("heavy reduction %v materially below light %v", hitHeavy, r.Reduction(workload.ShuffleLight, "hit"))
	}
	if !strings.Contains(r.Render(), "shuffle-heavy") {
		t.Error("render incomplete")
	}
}

func TestFigure8bShape(t *testing.T) {
	r, err := Figure8b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 (4 archs x 3 schedulers)", len(r.Rows))
	}
	for _, arch := range []string{"tree", "fattree", "bcube", "vl2"} {
		hit := r.Cost(arch, "hit")
		capc := r.Cost(arch, "capacity")
		if hit < 0 || capc < 0 {
			t.Fatalf("%s: missing cells", arch)
		}
		if hit > capc {
			t.Errorf("%s: hit cost %v > capacity %v", arch, hit, capc)
		}
	}
	if r.Cost("nope", "hit") != -1 {
		t.Error("unknown arch lookup should be -1")
	}
	if !strings.Contains(r.Render(), "fattree") {
		t.Error("render incomplete")
	}
}

func TestFigure9Shape(t *testing.T) {
	r, err := Figure9(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d (quick)", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.HitImprovement < 0 {
			t.Errorf("bw %v: hit throughput improvement %v < 0", row.BandwidthMbps, row.HitImprovement)
		}
		if row.HitImprovement < row.PNAImprovement-0.05 {
			t.Errorf("bw %v: hit %v materially below pna %v", row.BandwidthMbps, row.HitImprovement, row.PNAImprovement)
		}
	}
	if !strings.Contains(r.Render(), "Mbps") {
		t.Error("render incomplete")
	}
}

func TestFigure10Shape(t *testing.T) {
	r, err := Figure10(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d (quick)", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.HitCostReduction <= 0 {
			t.Errorf("jobs %d: hit reduction %v, want > 0", row.Jobs, row.HitCostReduction)
		}
		if row.HitCostReduction < row.PNACostReduction-0.05 {
			t.Errorf("jobs %d: hit %v materially below pna %v", row.Jobs, row.HitCostReduction, row.PNACostReduction)
		}
	}
	if !strings.Contains(r.Render(), "jobs") {
		t.Error("render incomplete")
	}
}

func TestAblationShape(t *testing.T) {
	r, err := Ablation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	costs := map[string]float64{}
	for _, row := range r.Rows {
		costs[row.Variant] = row.ShuffleCost
	}
	if costs["hit"] > costs["random"] {
		t.Errorf("full hit %v worse than random %v", costs["hit"], costs["random"])
	}
	if costs["hit"] > costs["hit-nopolicy"]+1e-9 {
		t.Errorf("full hit %v worse than no-policy ablation %v", costs["hit"], costs["hit-nopolicy"])
	}
	if !strings.Contains(r.Render(), "hit-nomatching") {
		t.Error("render incomplete")
	}
}

func TestNewSchedulerUnknown(t *testing.T) {
	if _, err := newScheduler("bogus"); err == nil {
		t.Error("unknown scheduler accepted")
	}
	for _, n := range append(SchedulerNames(), "random", "hit-nopolicy", "hit-nomatching") {
		if _, err := newScheduler(n); err != nil {
			t.Errorf("newScheduler(%q): %v", n, err)
		}
	}
}

func TestFigure7PacketShape(t *testing.T) {
	r, err := Figure7Packet(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	var capDelay, hitDelay float64
	for _, row := range r.Rows {
		if row.AvgDelayT <= 0 || row.P99DelayT < row.AvgDelayT {
			t.Errorf("%s: bad delays %v/%v", row.Scheduler, row.AvgDelayT, row.P99DelayT)
		}
		switch row.Scheduler {
		case "capacity":
			capDelay = row.AvgDelayT
		case "hit":
			hitDelay = row.AvgDelayT
		}
	}
	if hitDelay >= capDelay {
		t.Errorf("hit packet delay %v >= capacity %v", hitDelay, capDelay)
	}
	if r.DelayImprovement <= 0 {
		t.Errorf("delay improvement = %v", r.DelayImprovement)
	}
	if !strings.Contains(r.Render(), "p99") {
		t.Error("render incomplete")
	}
}

func TestFailureRecoveryShape(t *testing.T) {
	r, err := FailureRecovery(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.OverloadedAfterFailure < 1 {
		t.Errorf("degradation produced %d overloaded switches, want >= 1", r.OverloadedAfterFailure)
	}
	if r.FlowsRerouted < 1 {
		t.Errorf("rerouted %d flows, want >= 1", r.FlowsRerouted)
	}
	if r.OverloadedAfterRecovery != 0 {
		t.Errorf("%d switches still overloaded after recovery", r.OverloadedAfterRecovery)
	}
	if r.CostAfter < r.CostBefore {
		t.Errorf("cost decreased after degradation: %v -> %v", r.CostBefore, r.CostAfter)
	}
	if !strings.Contains(r.Render(), "rerouted") {
		t.Error("render incomplete")
	}
}

func TestFailureSweepShape(t *testing.T) {
	r, err := FailureSweep(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("quick sweep has %d rows, want 2", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.BaselineJCT <= 0 || row.FaultyJCT <= 0 {
			t.Errorf("rate %g sev %g: non-positive JCT (base %v, faulty %v)",
				row.Rate, row.Severity, row.BaselineJCT, row.FaultyJCT)
		}
		if row.Inflation < 1 {
			t.Errorf("rate %g sev %g: faults sped the workload up (inflation %v)",
				row.Rate, row.Severity, row.Inflation)
		}
		if row.RecoveryLatency < 0 {
			t.Errorf("rate %g sev %g: negative recovery latency %v",
				row.Rate, row.Severity, row.RecoveryLatency)
		}
	}
	// The sweep is seeded end to end: rerunning it reproduces every cell.
	again, err := FailureSweep(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.CSV() != again.CSV() {
		t.Error("fault sweep is not reproducible across reruns")
	}
	if !strings.Contains(r.Render(), "inflation") {
		t.Error("render incomplete")
	}
}

func TestBaselinesOrdering(t *testing.T) {
	r, err := Baselines(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	hit := r.Cost("hit")
	capc := r.Cost("capacity")
	rnd := r.Cost("random")
	cam := r.Cost("cam")
	if hit < 0 || capc < 0 || rnd < 0 || cam < 0 {
		t.Fatal("missing rows")
	}
	if hit > capc {
		t.Errorf("hit cost %v > capacity %v", hit, capc)
	}
	if hit > cam {
		t.Errorf("hit cost %v > cam %v (hit should win: it also moves maps and policies)", hit, cam)
	}
	if capc > rnd {
		t.Errorf("capacity cost %v > random %v", capc, rnd)
	}
	if r.Cost("nope") != -1 {
		t.Error("unknown scheduler lookup should be -1")
	}
	if !strings.Contains(r.Render(), "cam") {
		t.Error("render incomplete")
	}
}

func TestOnlineShape(t *testing.T) {
	r, err := Online(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	hit := r.JCT("hit")
	capc := r.JCT("capacity")
	if hit <= 0 || capc <= 0 {
		t.Fatalf("missing JCTs: hit=%v capacity=%v", hit, capc)
	}
	if hit > capc*1.05 {
		t.Errorf("hit online JCT %v materially above capacity %v", hit, capc)
	}
	if r.JCT("nope") != -1 {
		t.Error("unknown scheduler lookup should be -1")
	}
	if !strings.Contains(r.Render(), "Poisson") {
		t.Error("render incomplete")
	}
}

func TestCSVEmission(t *testing.T) {
	// Cheap results only; the CSV path is format logic, not simulation.
	t1 := Table1()
	if out := t1.CSV(); !strings.Contains(out, "benchmark,class") || !strings.Contains(out, "terasort") {
		t.Errorf("table1 CSV:\n%s", out)
	}
	f3, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if out := f3.CSV(); !strings.Contains(out, "112") {
		t.Errorf("fig3 CSV:\n%s", out)
	}
	f1, err := Figure1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if out := f1.CSV(); strings.Count(out, "\n") != 4 { // header + 3 classes
		t.Errorf("fig1 CSV rows:\n%s", out)
	}
	f6, err := Figure6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if out := f6.CSV(); !strings.Contains(out, "scheduler,jct,fraction") {
		t.Errorf("fig6 CSV header:\n%s", out[:60])
	}
	f7 := Fig7FromFig6(f6)
	if out := f7.CSV(); !strings.Contains(out, "avg_route_hops") {
		t.Error("fig7 CSV header missing")
	}
}

func TestQualityGapShape(t *testing.T) {
	r, err := QualityGap(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.AnnealCost <= 0 || row.HitCost <= 0 {
			t.Errorf("non-positive costs: %+v", row)
		}
		// Hit must be within 80% of the annealing bound at quick sizes.
		if row.GapPct > 80 {
			t.Errorf("tasks %d: gap %v%% too large", row.Tasks, row.GapPct)
		}
	}
	if !strings.Contains(r.Render(), "gap") || !strings.Contains(r.CSV(), "gap_pct") {
		t.Error("render/CSV incomplete")
	}
}
