package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/metrics"
	"repro/internal/packetsim"
	"repro/internal/scheduler"
	"repro/internal/workload"
)

// Fig7PacketRow is one scheduler's packet-level measurement.
type Fig7PacketRow struct {
	Scheduler string
	// AvgDelayT is the mean per-packet end-to-end delay (in T-equivalent
	// time units — the analogue of Figure 7(b)'s microseconds).
	AvgDelayT float64
	// P99DelayT is the 99th-percentile packet delay.
	P99DelayT float64
	// LossRate is the fraction of packets dropped at finite switch queues.
	LossRate float64
	// AvgHops is the packet-weighted route length.
	AvgHops float64
}

// Fig7PacketResult is the packet-level (D-ITG style) companion to Figure 7:
// per-packet delays measured by injecting each scheduled shuffle flow into
// the packet simulator.
type Fig7PacketResult struct {
	Rows []Fig7PacketRow
	// DelayImprovement is hit vs capacity (paper: 189 us -> 131 us, ~32%).
	DelayImprovement float64
}

// Figure7Packet schedules one shuffle-heavy wave under each scheduler and
// measures per-packet delay and loss with the packet-level simulator.
func Figure7Packet(cfg Config) (*Fig7PacketResult, error) {
	cfg = cfg.withDefaults()
	nJobs := 4
	if cfg.Quick {
		nJobs = 2
	}
	res := &Fig7PacketResult{}
	byName := map[string]*Fig7PacketRow{}
	for _, name := range SchedulerNames() {
		row := &Fig7PacketRow{Scheduler: name}
		byName[name] = row
		var reps float64
		for rep := 0; rep < cfg.Repeats; rep++ {
			seed := cfg.Seed + int64(rep)*601
			g, err := jobGen(cfg, seed)
			if err != nil {
				return nil, err
			}
			var jobs []*workload.Job
			for i := 0; i < nJobs; i++ {
				j, err := g.SampleClass(workload.ShuffleHeavy)
				if err != nil {
					return nil, err
				}
				jobs = append(jobs, j)
			}
			topo, err := testbedTopology(1)
			if err != nil {
				return nil, err
			}
			cl, err := cluster.New(topo, cluster.Resources{CPU: 2, Memory: 8192})
			if err != nil {
				return nil, err
			}
			ctl := controller.New(topo)
			s, err := newScheduler(name)
			if err != nil {
				return nil, err
			}
			req, _, err := scheduler.NewJobRequest(cl, ctl, jobs, cluster.Resources{CPU: 1, Memory: 1024}, rand.New(rand.NewSource(seed)))
			if err != nil {
				return nil, err
			}
			if err := s.Schedule(req); err != nil {
				return nil, err
			}
			// Feed every scheduled flow's concrete route to the packet sim.
			cm := ctl.CostModel()
			loc := req.Locator()
			var specs []*packetsim.FlowSpec
			for _, f := range req.Flows {
				route, err := cm.RouteNodes(f, ctl.Policy(f.ID), loc)
				if err != nil {
					return nil, err
				}
				walk, err := ctl.Oracle().ExpandRoute(route)
				if err != nil {
					return nil, err
				}
				specs = append(specs, &packetsim.FlowSpec{
					ID:    f.ID,
					Route: walk,
					Bytes: f.SizeGB,
				})
			}
			pr, err := packetsim.Simulate(topo, specs, packetsim.Config{
				PacketGB:          0.05,
				LatencyPerT:       1,
				QueueCap:          256,
				MaxPacketsPerFlow: 32,
			})
			if err != nil {
				return nil, err
			}
			row.AvgDelayT += pr.AvgDelay()
			row.P99DelayT += pr.DelayPercentile(99)
			row.LossRate += pr.LossRate()
			// Iterate flows in ID order: hops/n are float accumulators
			// whose rounding must not depend on map iteration.
			var hops, n float64
			for _, id := range pr.FlowIDs() {
				if fr := pr.Flows[id]; fr.Sent > 0 {
					hops += float64(fr.Hops)
					n++
				}
			}
			if n > 0 {
				row.AvgHops += hops / n
			}
			reps++
		}
		row.AvgDelayT /= reps
		row.P99DelayT /= reps
		row.LossRate /= reps
		row.AvgHops /= reps
		res.Rows = append(res.Rows, *row)
	}
	capRow, hitRow := byName["capacity"], byName["hit"]
	if capRow.AvgDelayT > 0 {
		res.DelayImprovement = (capRow.AvgDelayT - hitRow.AvgDelayT) / capRow.AvgDelayT
	}
	return res, nil
}

// Render formats the packet-level table.
func (r *Fig7PacketResult) Render() string {
	tb := metrics.NewTable("Figure 7(b) packet-level (D-ITG style): per-packet shuffle delay",
		"scheduler", "avg delay", "p99 delay", "loss", "avg hops")
	for _, row := range r.Rows {
		tb.AddRowf([]string{"%s", "%.2f", "%.2f", "%.4f", "%.2f"},
			row.Scheduler, row.AvgDelayT, row.P99DelayT, row.LossRate, row.AvgHops)
	}
	out := tb.String()
	out += fmt.Sprintf("hit vs capacity packet delay: -%.0f%% (paper: ~32%%)\n", r.DelayImprovement*100)
	return out
}
