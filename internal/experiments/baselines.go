package experiments

import (
	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/workload"
)

// BaselineRow is one scheduler's aggregate over the comparison workload.
type BaselineRow struct {
	Scheduler   string
	ShuffleCost float64
	JCTMean     float64
	AvgHops     float64
}

// BaselineResult compares every implemented placement strategy — the
// paper's three (capacity, pna, hit) plus the related-work CAM
// (min-cost-flow placement) and the random strawman — on one workload.
type BaselineResult struct {
	Rows []BaselineRow
}

// Baselines runs the comparison on the testbed tree with a Table 1 mix.
func Baselines(cfg Config) (*BaselineResult, error) {
	cfg = cfg.withDefaults()
	nJobs := 6
	if cfg.Quick {
		nJobs = 3
	}
	names := []string{"random", "capacity", "pna", "cam", "hit"}
	res := &BaselineResult{}
	cells, err := runCells(names, cfg.Repeats, func(name string, rep int) (*topology.Topology, []*workload.Job, int64, error) {
		seed := cfg.Seed + int64(rep)*811
		g, err := jobGen(cfg, seed)
		if err != nil {
			return nil, nil, 0, err
		}
		topo, err := testbedTopology(1)
		if err != nil {
			return nil, nil, 0, err
		}
		return topo, g.Workload(nJobs), seed, nil
	})
	if err != nil {
		return nil, err
	}
	for si, name := range names {
		row := BaselineRow{Scheduler: name}
		for _, r := range cells[si] {
			row.ShuffleCost += r.TotalTrafficCost
			row.JCTMean += r.JCT.Mean()
			row.AvgHops += r.AvgRouteHops
		}
		n := float64(cfg.Repeats)
		row.ShuffleCost /= n
		row.JCTMean /= n
		row.AvgHops /= n
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Cost returns the named scheduler's cost, or -1.
func (r *BaselineResult) Cost(name string) float64 {
	for _, row := range r.Rows {
		if row.Scheduler == name {
			return row.ShuffleCost
		}
	}
	return -1
}

// Render formats the comparison.
func (r *BaselineResult) Render() string {
	tb := metrics.NewTable("Baseline comparison (Table 1 workload mix on the testbed tree)",
		"scheduler", "shuffle cost", "JCT mean", "avg hops")
	for _, row := range r.Rows {
		tb.AddRowf([]string{"%s", "%.1f", "%.1f", "%.2f"},
			row.Scheduler, row.ShuffleCost, row.JCTMean, row.AvgHops)
	}
	return tb.String()
}
