// Package topology models hierarchical data-center network topologies:
// servers, typed switches with processing capacities, and links with
// bandwidth and latency. It provides the multi-tier architectures the paper
// evaluates (Tree, Fat-Tree, VL2, BCube) plus generic graph queries used by
// the policy optimizer: BFS distances, shortest-path enumeration, and the
// layered shortest-path DAG that defines which switches may serve each stage
// of a shuffle flow's route.
//
// All topologies are undirected graphs. Node identity is a dense integer
// NodeID so that per-node state elsewhere in the system can live in slices.
package topology

import (
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a node (server or switch) within one Topology.
// IDs are dense: 0..NumNodes()-1.
type NodeID int

// None is the zero-value "no node" sentinel. Valid node IDs start at 0, so
// None is deliberately negative.
const None NodeID = -1

// Kind discriminates servers from switches.
type Kind uint8

const (
	// KindServer is a host machine that can run containers.
	KindServer Kind = iota
	// KindSwitch is a network switch at some tier of the hierarchy.
	KindSwitch
)

// String returns "server" or "switch".
func (k Kind) String() string {
	switch k {
	case KindServer:
		return "server"
	case KindSwitch:
		return "switch"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Common switch type names used by the built-in architectures. The policy
// model matches switches by this string (w.type in the paper), so alternative
// candidates for a policy stage must share the type.
const (
	TypeAccess       = "access"
	TypeAggregation  = "aggregation"
	TypeCore         = "core"
	TypeIntermediate = "intermediate" // VL2 intermediate tier
	TypeLevel        = "level"        // BCube level switches: TypeLevel+"0", "1", ...
)

// Node is a vertex of the topology graph.
type Node struct {
	ID   NodeID
	Kind Kind
	Name string
	// Type is the switch type (w.type in the paper); empty for servers.
	Type string
	// Tier is the hierarchy level for switches: 0 = access (closest to
	// servers), growing upward. Servers have Tier -1.
	Tier int
	// Capacity is the switch processing capacity (w.capacity): the maximum
	// aggregate flow rate, in data units per time unit, the switch can carry.
	// Zero or negative for servers. math.Inf(1) means unconstrained.
	Capacity float64
}

// IsServer reports whether the node is a server.
func (n Node) IsServer() bool { return n.Kind == KindServer }

// IsSwitch reports whether the node is a switch.
func (n Node) IsSwitch() bool { return n.Kind == KindSwitch }

// Link is an undirected edge between two nodes.
type Link struct {
	A, B NodeID
	// Bandwidth in data units per time unit (e.g. GB/s).
	Bandwidth float64
	// Latency is the per-traversal delay contribution of this link, in the
	// paper's abstract switch-delay unit T.
	Latency float64
}

// Other returns the endpoint of l that is not n. It panics if n is not an
// endpoint of l.
func (l Link) Other(n NodeID) NodeID {
	switch n {
	case l.A:
		return l.B
	case l.B:
		return l.A
	}
	panic(fmt.Sprintf("topology: node %d is not an endpoint of link %d-%d", n, l.A, l.B))
}

// Topology is an immutable-after-build network graph. Build one with the
// architecture constructors (NewTree, NewFatTree, NewVL2, NewBCube) or
// assemble a custom one with NewBuilder.
type Topology struct {
	name     string
	nodes    []Node
	links    []Link
	adj      [][]NodeID       // adjacency lists, sorted
	linkIdx  map[linkKey]int  // canonicalized endpoint pair -> index into links
	servers  []NodeID         // sorted
	switches []NodeID         // sorted
	dist     map[NodeID][]int // BFS distance cache, filled lazily per source
	// version counts in-place mutations (switch capacity, link bandwidth).
	// netstate snapshots fold it into their epoch so capacity-dependent
	// caches invalidate; the graph structure itself never changes, so
	// distance/path caches stay valid across versions.
	version uint64
	// alive is the liveness mask for failure injection: alive[i] == false
	// means node i has crashed and must not appear on any path. nil means
	// every node is alive (the common case; no per-hop overhead). Dead
	// nodes change the EFFECTIVE structure — BFS, shortest paths, DAGs and
	// type inventories all route around them — so liveness mutations get
	// their own version counter, folded into netstate's Epoch, and clear
	// the local BFS cache.
	alive       []bool
	liveVersion uint64
	numDead     int
	// coords and arch are the structural coordinate oracle emitted by the
	// architecture generators (see coords.go); arch.family stays
	// FamilyIrregular for hand-built topologies. singleHomed caches whether
	// every server has exactly one (switch) neighbor.
	coords      []coordRec
	arch        structure
	singleHomed bool
}

type linkKey struct{ a, b NodeID }

func canonicalKey(a, b NodeID) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// Name returns the human-readable architecture name ("tree", "fattree", ...).
func (t *Topology) Name() string { return t.name }

// NumNodes returns the total node count (servers + switches).
func (t *Topology) NumNodes() int { return len(t.nodes) }

// NumServers returns the server count.
func (t *Topology) NumServers() int { return len(t.servers) }

// NumSwitches returns the switch count.
func (t *Topology) NumSwitches() int { return len(t.switches) }

// NumLinks returns the link count.
func (t *Topology) NumLinks() int { return len(t.links) }

// Version returns the mutation counter: it increments on every in-place
// parameter change (SetSwitchCapacity, SetLinkBandwidth). Snapshot layers
// (internal/netstate) fold it into their epoch to invalidate
// capacity-dependent caches. The graph structure is immutable after Build,
// so hop distances and shortest paths are version-independent.
func (t *Topology) Version() uint64 { return t.version }

// Node returns the node with the given ID. It panics on out-of-range IDs.
func (t *Topology) Node(id NodeID) Node { return t.nodes[id] }

// Valid reports whether id names a node of t.
func (t *Topology) Valid(id NodeID) bool { return id >= 0 && int(id) < len(t.nodes) }

// Servers returns the IDs of all servers, in ascending order. The returned
// slice must not be modified.
func (t *Topology) Servers() []NodeID { return t.servers }

// Switches returns the IDs of all switches, in ascending order. The returned
// slice must not be modified.
func (t *Topology) Switches() []NodeID { return t.switches }

// Links returns all links. The returned slice must not be modified.
func (t *Topology) Links() []Link { return t.links }

// Neighbors returns the adjacency list of id, sorted ascending. The returned
// slice must not be modified.
func (t *Topology) Neighbors(id NodeID) []NodeID { return t.adj[id] }

// Degree returns the number of links incident to id.
func (t *Topology) Degree(id NodeID) int { return len(t.adj[id]) }

// SetSwitchCapacity overrides a switch's processing capacity in place. It
// exists for failure injection — degrading or restoring a switch mid-
// experiment — and returns an error for non-switches. Blessed epochbump
// mutator: taalint proves the parameter-version bump on every mutating
// path, and rejects capacity writes anywhere else.
func (t *Topology) SetSwitchCapacity(id NodeID, capacity float64) error {
	if !t.Valid(id) || !t.nodes[id].IsSwitch() {
		return fmt.Errorf("topology: node %d is not a switch", id)
	}
	if capacity < 0 {
		return fmt.Errorf("topology: negative capacity %v", capacity)
	}
	t.nodes[id].Capacity = capacity
	t.version++
	return nil
}

// SetLinkBandwidth overrides a link's bandwidth in place (failure
// injection: degraded or restored links). Blessed epochbump mutator: see
// SetSwitchCapacity.
func (t *Topology) SetLinkBandwidth(a, b NodeID, bandwidth float64) error {
	i, ok := t.linkIdx[canonicalKey(a, b)]
	if !ok {
		return fmt.Errorf("topology: no link %d-%d", a, b)
	}
	if bandwidth <= 0 {
		return fmt.Errorf("topology: non-positive bandwidth %v", bandwidth)
	}
	t.links[i].Bandwidth = bandwidth
	t.version++
	return nil
}

// Alive reports whether node id is live. Nodes are alive unless crashed via
// SetNodeAlive; out-of-range IDs report false.
func (t *Topology) Alive(id NodeID) bool {
	if !t.Valid(id) {
		return false
	}
	return t.alive == nil || t.alive[id]
}

// AllAlive reports whether no node is currently crashed.
func (t *Topology) AllAlive() bool { return t.numDead == 0 }

// LivenessVersion counts liveness mutations (SetNodeAlive flips). Unlike
// Version it signals EFFECTIVE STRUCTURE change: a dead node disappears
// from paths, DAGs and type inventories, so structure-derived caches
// (netstate distance rows, shortest paths, templates, pair routes) must be
// rebuilt when it moves.
func (t *Topology) LivenessVersion() uint64 { return t.liveVersion }

// SetNodeAlive crashes (alive=false) or recovers (alive=true) a node in
// place — the fault-injection entry point for switch and server crashes.
// A no-op flip (already in the requested state) does not bump the liveness
// version. Crashing nodes can disconnect the graph; queries then report
// the affected pairs as unreachable rather than failing. Blessed epochbump
// mutator: taalint proves the liveness-version bump on every mutating path
// — the one bump whose omission once served stale routes at runtime.
func (t *Topology) SetNodeAlive(id NodeID, alive bool) error {
	if !t.Valid(id) {
		return fmt.Errorf("topology: unknown node %d", id)
	}
	if t.Alive(id) == alive {
		return nil
	}
	if t.alive == nil {
		t.alive = make([]bool, len(t.nodes))
		for i := range t.alive {
			t.alive[i] = true
		}
	}
	t.alive[id] = alive
	if alive {
		t.numDead--
	} else {
		t.numDead++
	}
	t.liveVersion++
	// The BFS cache below encodes paths through the old liveness mask.
	t.dist = make(map[NodeID][]int)
	return nil
}

// LinkIndex returns the dense index of the link between a and b in Links(),
// if one exists. Dense link indices let flow-level simulators key per-link
// state in slices instead of maps.
func (t *Topology) LinkIndex(a, b NodeID) (int, bool) {
	i, ok := t.linkIdx[canonicalKey(a, b)]
	return i, ok
}

// Link returns the link between a and b, if one exists.
func (t *Topology) Link(a, b NodeID) (Link, bool) {
	i, ok := t.linkIdx[canonicalKey(a, b)]
	if !ok {
		return Link{}, false
	}
	return t.links[i], true
}

// Adjacent reports whether a and b share a link.
func (t *Topology) Adjacent(a, b NodeID) bool {
	_, ok := t.linkIdx[canonicalKey(a, b)]
	return ok
}

// SwitchesOfType returns all live switches whose Type equals typ,
// ascending. Crashed switches are excluded: they cannot serve any policy
// stage.
func (t *Topology) SwitchesOfType(typ string) []NodeID {
	var out []NodeID
	for _, id := range t.switches {
		if t.nodes[id].Type == typ && t.Alive(id) {
			out = append(out, id)
		}
	}
	return out
}

// AccessSwitch returns the access switch a server attaches to: its unique
// switch neighbor of lowest tier. It returns None for non-servers or isolated
// servers.
func (t *Topology) AccessSwitch(server NodeID) NodeID {
	if !t.Valid(server) || !t.nodes[server].IsServer() {
		return None
	}
	best := None
	bestTier := math.MaxInt
	for _, nb := range t.adj[server] {
		if !t.Alive(nb) {
			continue
		}
		if n := t.nodes[nb]; n.IsSwitch() && n.Tier < bestTier {
			best, bestTier = nb, n.Tier
		}
	}
	return best
}

// Dist returns the hop distance (number of links) on a shortest path between
// a and b, or -1 if they are disconnected.
func (t *Topology) Dist(a, b NodeID) int {
	d := t.bfs(a)
	return d[b]
}

// bfs returns (and caches) BFS distances from src; unreachable nodes get
// -1. Dead nodes are never traversed: a dead source reaches nothing, and
// paths route around dead intermediates (SetNodeAlive clears this cache on
// every liveness flip).
func (t *Topology) bfs(src NodeID) []int {
	if d, ok := t.dist[src]; ok {
		return d
	}
	d := make([]int, len(t.nodes))
	for i := range d {
		d[i] = -1
	}
	if !t.Alive(src) {
		t.dist[src] = d
		return d
	}
	d[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range t.adj[u] {
			if d[v] == -1 && t.Alive(v) {
				d[v] = d[u] + 1
				queue = append(queue, v)
			}
		}
	}
	t.dist[src] = d
	return d
}

// Connected reports whether every node is reachable from every other.
func (t *Topology) Connected() bool {
	if len(t.nodes) == 0 {
		return true
	}
	d := t.bfs(0)
	for _, x := range d {
		if x < 0 {
			return false
		}
	}
	return true
}

// ShortestPath returns one shortest path from src to dst, inclusive of both
// endpoints, preferring lower node IDs at ties. It returns nil if src and dst
// are disconnected.
func (t *Topology) ShortestPath(src, dst NodeID) []NodeID {
	if src == dst {
		return []NodeID{src}
	}
	dd := t.bfs(dst)
	if dd[src] < 0 {
		return nil
	}
	path := []NodeID{src}
	cur := src
	for cur != dst {
		next := None
		for _, nb := range t.adj[cur] {
			if dd[nb] == dd[cur]-1 {
				next = nb
				break // adjacency is sorted, so this is the lowest-ID choice
			}
		}
		if next == None {
			return nil // unreachable given dd[src] >= 0; defensive
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// PathDAG is the DAG of all shortest paths between a fixed (src, dst) pair.
// Stage 0 holds only src and the last stage only dst; Stages[i] lists every
// node that appears at hop i on some shortest path. Any walk that picks one
// node per stage, moving only between adjacent picks, is a valid shortest
// route — this is exactly the set of alternatives the paper's network-policy
// optimizer chooses among when it "reschedules the i-th switch of a policy".
type PathDAG struct {
	Src, Dst NodeID
	// Stages[i] lists the candidate nodes for hop i, ascending. len(Stages)
	// == hop distance + 1.
	Stages [][]NodeID
}

// Hops returns the number of links on any path through the DAG.
func (d *PathDAG) Hops() int { return len(d.Stages) - 1 }

// SwitchStages returns the stages strictly between the endpoints — the
// positions a policy's switch list covers.
func (d *PathDAG) SwitchStages() [][]NodeID {
	if len(d.Stages) < 2 {
		return nil
	}
	return d.Stages[1 : len(d.Stages)-1]
}

// ShortestPathDAG computes the all-shortest-paths DAG between src and dst.
// A node v belongs to stage i iff dist(src,v) == i and dist(v,dst) == L-i,
// where L = dist(src,dst). It returns nil if src and dst are disconnected.
func (t *Topology) ShortestPathDAG(src, dst NodeID) *PathDAG {
	ds := t.bfs(src)
	dd := t.bfs(dst)
	total := ds[dst]
	if total < 0 {
		return nil
	}
	dag := &PathDAG{Src: src, Dst: dst, Stages: make([][]NodeID, total+1)}
	for id := range t.nodes {
		n := NodeID(id)
		if ds[n] >= 0 && dd[n] >= 0 && ds[n]+dd[n] == total {
			dag.Stages[ds[n]] = append(dag.Stages[ds[n]], n)
		}
	}
	for _, s := range dag.Stages {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	return dag
}

// PathLatency sums the per-switch and per-link delay along a node path,
// expressed in the paper's unit T: each switch traversed contributes 1 T
// (as in the §2.3 case study) and each link contributes its Latency.
func (t *Topology) PathLatency(path []NodeID) float64 {
	var total float64
	for i, id := range path {
		if t.nodes[id].IsSwitch() {
			total += 1
		}
		if i+1 < len(path) {
			if l, ok := t.Link(id, path[i+1]); ok {
				total += l.Latency
			}
		}
	}
	return total
}

// ValidatePath reports an error unless path is a walk over existing links
// from path[0] to path[len-1] with no immediate repetitions.
func (t *Topology) ValidatePath(path []NodeID) error {
	if len(path) == 0 {
		return fmt.Errorf("topology: empty path")
	}
	for i, id := range path {
		if !t.Valid(id) {
			return fmt.Errorf("topology: path node %d out of range", id)
		}
		if i == 0 {
			continue
		}
		if path[i-1] == id {
			return fmt.Errorf("topology: path repeats node %d at position %d", id, i)
		}
		if !t.Adjacent(path[i-1], id) {
			return fmt.Errorf("topology: path nodes %d and %d are not adjacent", path[i-1], id)
		}
	}
	return nil
}

// Builder incrementally assembles a Topology.
type Builder struct {
	t   *Topology
	err error
}

// NewBuilder returns an empty Builder for a topology with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{t: &Topology{
		name:    name,
		linkIdx: make(map[linkKey]int),
		dist:    make(map[NodeID][]int),
	}}
}

// AddServer appends a server node and returns its ID.
func (b *Builder) AddServer(name string) NodeID {
	id := NodeID(len(b.t.nodes))
	b.t.nodes = append(b.t.nodes, Node{ID: id, Kind: KindServer, Name: name, Tier: -1})
	b.t.adj = append(b.t.adj, nil)
	b.t.coords = append(b.t.coords, coordRec{pod: -1, idx: -1})
	b.t.servers = append(b.t.servers, id)
	return id
}

// setCoord records the structural coordinate of a node; only the
// architecture generators call it.
func (b *Builder) setCoord(id NodeID, pod, idx int) {
	b.t.coords[id] = coordRec{pod: int32(pod), idx: int32(idx)}
}

// setStructure records the architecture descriptor; only the architecture
// generators call it.
func (b *Builder) setStructure(s structure) { b.t.arch = s }

// AddSwitch appends a switch node with the given type, tier and capacity and
// returns its ID. Pass math.Inf(1) for an unconstrained switch.
func (b *Builder) AddSwitch(name, typ string, tier int, capacity float64) NodeID {
	id := NodeID(len(b.t.nodes))
	b.t.nodes = append(b.t.nodes, Node{
		ID: id, Kind: KindSwitch, Name: name, Type: typ, Tier: tier, Capacity: capacity,
	})
	b.t.adj = append(b.t.adj, nil)
	b.t.coords = append(b.t.coords, coordRec{pod: -1, idx: -1})
	b.t.switches = append(b.t.switches, id)
	return id
}

// Connect links a and b with the given bandwidth and latency. Duplicate or
// self links record an error surfaced by Build.
func (b *Builder) Connect(a, c NodeID, bandwidth, latency float64) {
	if b.err != nil {
		return
	}
	if a == c {
		b.err = fmt.Errorf("topology: self-link on node %d", a)
		return
	}
	if !b.t.Valid(a) || !b.t.Valid(c) {
		b.err = fmt.Errorf("topology: link endpoint out of range (%d, %d)", a, c)
		return
	}
	key := canonicalKey(a, c)
	if _, dup := b.t.linkIdx[key]; dup {
		b.err = fmt.Errorf("topology: duplicate link %d-%d", a, c)
		return
	}
	if bandwidth <= 0 {
		b.err = fmt.Errorf("topology: non-positive bandwidth on link %d-%d", a, c)
		return
	}
	b.t.linkIdx[key] = len(b.t.links)
	b.t.links = append(b.t.links, Link{A: a, B: c, Bandwidth: bandwidth, Latency: latency})
	b.t.adj[a] = append(b.t.adj[a], c)
	b.t.adj[c] = append(b.t.adj[c], a)
}

// Build finalizes and returns the topology, or the first error recorded
// during construction.
func (b *Builder) Build() (*Topology, error) {
	if b.err != nil {
		return nil, b.err
	}
	for i := range b.t.adj {
		a := b.t.adj[i]
		sort.Slice(a, func(x, y int) bool { return a[x] < a[y] })
	}
	if len(b.t.servers) == 0 {
		return nil, fmt.Errorf("topology: %q has no servers", b.t.name)
	}
	if !b.t.Connected() {
		return nil, fmt.Errorf("topology: %q is not connected", b.t.name)
	}
	b.t.singleHomed = true
	for _, s := range b.t.servers {
		if len(b.t.adj[s]) != 1 || !b.t.nodes[b.t.adj[s][0]].IsSwitch() {
			b.t.singleHomed = false
			break
		}
	}
	return b.t, nil
}

// MustBuild is Build that panics on error; for use by the architecture
// constructors whose inputs are validated beforehand.
func (b *Builder) MustBuild() *Topology {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}
