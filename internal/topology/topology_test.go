package topology

import (
	"math"
	"testing"
	"testing/quick"
)

// buildDiamond returns a small multipath topology:
//
//	   sw0 (core)
//	  /    \
//	sw1    sw2   (aggregation, parallel)
//	  \    /
//	   sw3 (access A)      sw4 (access B, under sw0 directly)
//	  /   \                   \
//	s0     s1                  s2
func buildDiamond(t *testing.T) (*Topology, map[string]NodeID) {
	t.Helper()
	b := NewBuilder("diamond")
	ids := map[string]NodeID{}
	ids["sw0"] = b.AddSwitch("sw0", TypeCore, 2, 10)
	ids["sw1"] = b.AddSwitch("sw1", TypeAggregation, 1, 10)
	ids["sw2"] = b.AddSwitch("sw2", TypeAggregation, 1, 10)
	ids["sw3"] = b.AddSwitch("sw3", TypeAccess, 0, 10)
	ids["sw4"] = b.AddSwitch("sw4", TypeAccess, 0, 10)
	ids["s0"] = b.AddServer("s0")
	ids["s1"] = b.AddServer("s1")
	ids["s2"] = b.AddServer("s2")
	b.Connect(ids["sw0"], ids["sw1"], 1, 0)
	b.Connect(ids["sw0"], ids["sw2"], 1, 0)
	b.Connect(ids["sw1"], ids["sw3"], 1, 0)
	b.Connect(ids["sw2"], ids["sw3"], 1, 0)
	b.Connect(ids["sw0"], ids["sw4"], 1, 0)
	b.Connect(ids["sw3"], ids["s0"], 1, 0)
	b.Connect(ids["sw3"], ids["s1"], 1, 0)
	b.Connect(ids["sw4"], ids["s2"], 1, 0)
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo, ids
}

func TestBuilderCounts(t *testing.T) {
	topo, _ := buildDiamond(t)
	if got, want := topo.NumNodes(), 8; got != want {
		t.Errorf("NumNodes = %d, want %d", got, want)
	}
	if got, want := topo.NumServers(), 3; got != want {
		t.Errorf("NumServers = %d, want %d", got, want)
	}
	if got, want := topo.NumSwitches(), 5; got != want {
		t.Errorf("NumSwitches = %d, want %d", got, want)
	}
	if got, want := topo.NumLinks(), 8; got != want {
		t.Errorf("NumLinks = %d, want %d", got, want)
	}
	if !topo.Connected() {
		t.Error("Connected = false, want true")
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("self link", func(t *testing.T) {
		b := NewBuilder("bad")
		s := b.AddServer("s0")
		b.Connect(s, s, 1, 0)
		if _, err := b.Build(); err == nil {
			t.Error("Build accepted a self-link")
		}
	})
	t.Run("duplicate link", func(t *testing.T) {
		b := NewBuilder("bad")
		s := b.AddServer("s0")
		w := b.AddSwitch("w0", TypeAccess, 0, 1)
		b.Connect(s, w, 1, 0)
		b.Connect(w, s, 1, 0)
		if _, err := b.Build(); err == nil {
			t.Error("Build accepted a duplicate link")
		}
	})
	t.Run("zero bandwidth", func(t *testing.T) {
		b := NewBuilder("bad")
		s := b.AddServer("s0")
		w := b.AddSwitch("w0", TypeAccess, 0, 1)
		b.Connect(s, w, 0, 0)
		if _, err := b.Build(); err == nil {
			t.Error("Build accepted zero bandwidth")
		}
	})
	t.Run("out of range endpoint", func(t *testing.T) {
		b := NewBuilder("bad")
		s := b.AddServer("s0")
		b.Connect(s, NodeID(99), 1, 0)
		if _, err := b.Build(); err == nil {
			t.Error("Build accepted out-of-range endpoint")
		}
	})
	t.Run("no servers", func(t *testing.T) {
		b := NewBuilder("bad")
		b.AddSwitch("w0", TypeAccess, 0, 1)
		if _, err := b.Build(); err == nil {
			t.Error("Build accepted a server-less topology")
		}
	})
	t.Run("disconnected", func(t *testing.T) {
		b := NewBuilder("bad")
		b.AddServer("s0")
		b.AddServer("s1")
		if _, err := b.Build(); err == nil {
			t.Error("Build accepted a disconnected topology")
		}
	})
}

func TestDistAndShortestPath(t *testing.T) {
	topo, ids := buildDiamond(t)
	if got := topo.Dist(ids["s0"], ids["s1"]); got != 2 {
		t.Errorf("Dist(s0,s1) = %d, want 2", got)
	}
	if got := topo.Dist(ids["s0"], ids["s2"]); got != 5 {
		t.Errorf("Dist(s0,s2) = %d, want 5", got)
	}
	if got := topo.Dist(ids["s0"], ids["s0"]); got != 0 {
		t.Errorf("Dist(s0,s0) = %d, want 0", got)
	}
	path := topo.ShortestPath(ids["s0"], ids["s2"])
	if len(path) != 6 {
		t.Fatalf("ShortestPath(s0,s2) len = %d, want 6 (%v)", len(path), path)
	}
	if err := topo.ValidatePath(path); err != nil {
		t.Errorf("ValidatePath: %v", err)
	}
	if path[0] != ids["s0"] || path[len(path)-1] != ids["s2"] {
		t.Errorf("path endpoints wrong: %v", path)
	}
	if got := topo.ShortestPath(ids["s1"], ids["s1"]); len(got) != 1 || got[0] != ids["s1"] {
		t.Errorf("ShortestPath to self = %v, want single node", got)
	}
}

func TestShortestPathDAGStages(t *testing.T) {
	topo, ids := buildDiamond(t)
	dag := topo.ShortestPathDAG(ids["s0"], ids["s2"])
	if dag == nil {
		t.Fatal("ShortestPathDAG returned nil")
	}
	if got := dag.Hops(); got != 5 {
		t.Fatalf("Hops = %d, want 5", got)
	}
	// Stage 2 (after s0, sw3) must hold both parallel aggregation switches.
	stage2 := dag.Stages[2]
	if len(stage2) != 2 {
		t.Fatalf("stage 2 = %v, want the two aggregation switches", stage2)
	}
	want := map[NodeID]bool{ids["sw1"]: true, ids["sw2"]: true}
	for _, n := range stage2 {
		if !want[n] {
			t.Errorf("unexpected node %d in stage 2", n)
		}
	}
	// Endpoints are singletons.
	if len(dag.Stages[0]) != 1 || dag.Stages[0][0] != ids["s0"] {
		t.Errorf("stage 0 = %v, want [s0]", dag.Stages[0])
	}
	last := dag.Stages[len(dag.Stages)-1]
	if len(last) != 1 || last[0] != ids["s2"] {
		t.Errorf("last stage = %v, want [s2]", last)
	}
	// Switch stages exclude endpoints.
	if got := len(dag.SwitchStages()); got != 4 {
		t.Errorf("SwitchStages count = %d, want 4", got)
	}
}

func TestPathDAGEveryStageChoiceIsAWalk(t *testing.T) {
	topo, ids := buildDiamond(t)
	dag := topo.ShortestPathDAG(ids["s0"], ids["s2"])
	// Every combination of one node per stage with adjacent consecutive picks
	// must validate; here the only free stage is stage 2.
	for _, mid := range dag.Stages[2] {
		path := []NodeID{dag.Stages[0][0], dag.Stages[1][0], mid, dag.Stages[3][0], dag.Stages[4][0], dag.Stages[5][0]}
		if err := topo.ValidatePath(path); err != nil {
			t.Errorf("stage walk through %d invalid: %v", mid, err)
		}
	}
}

func TestAccessSwitch(t *testing.T) {
	topo, ids := buildDiamond(t)
	if got := topo.AccessSwitch(ids["s0"]); got != ids["sw3"] {
		t.Errorf("AccessSwitch(s0) = %d, want sw3=%d", got, ids["sw3"])
	}
	if got := topo.AccessSwitch(ids["s2"]); got != ids["sw4"] {
		t.Errorf("AccessSwitch(s2) = %d, want sw4=%d", got, ids["sw4"])
	}
	if got := topo.AccessSwitch(ids["sw0"]); got != None {
		t.Errorf("AccessSwitch(switch) = %d, want None", got)
	}
	if got := topo.AccessSwitch(NodeID(-5)); got != None {
		t.Errorf("AccessSwitch(invalid) = %d, want None", got)
	}
}

func TestSwitchesOfType(t *testing.T) {
	topo, _ := buildDiamond(t)
	if got := len(topo.SwitchesOfType(TypeAggregation)); got != 2 {
		t.Errorf("aggregation switches = %d, want 2", got)
	}
	if got := len(topo.SwitchesOfType(TypeAccess)); got != 2 {
		t.Errorf("access switches = %d, want 2", got)
	}
	if got := len(topo.SwitchesOfType("nope")); got != 0 {
		t.Errorf("unknown type switches = %d, want 0", got)
	}
}

func TestPathLatencyCountsSwitches(t *testing.T) {
	topo, ids := buildDiamond(t)
	// s0 -> sw3 -> sw1 -> sw0 -> sw4 -> s2 traverses 4 switches -> 4 T.
	path := topo.ShortestPath(ids["s0"], ids["s2"])
	if got := topo.PathLatency(path); got != 4 {
		t.Errorf("PathLatency = %v, want 4", got)
	}
	// The case-study convention: S1<->S2 under the same access switch is 1 T... but
	// between racks (3 switches) it is 3 T.
	p2 := topo.ShortestPath(ids["s0"], ids["s1"])
	if got := topo.PathLatency(p2); got != 1 {
		t.Errorf("same-rack PathLatency = %v, want 1", got)
	}
}

func TestValidatePathErrors(t *testing.T) {
	topo, ids := buildDiamond(t)
	cases := []struct {
		name string
		path []NodeID
	}{
		{"empty", nil},
		{"out of range", []NodeID{NodeID(100)}},
		{"repeat", []NodeID{ids["s0"], ids["s0"]}},
		{"not adjacent", []NodeID{ids["s0"], ids["s2"]}},
	}
	for _, tc := range cases {
		if err := topo.ValidatePath(tc.path); err == nil {
			t.Errorf("%s: ValidatePath accepted %v", tc.name, tc.path)
		}
	}
}

func TestLinkLookup(t *testing.T) {
	topo, ids := buildDiamond(t)
	l, ok := topo.Link(ids["sw0"], ids["sw1"])
	if !ok {
		t.Fatal("Link(sw0,sw1) not found")
	}
	if l.Other(ids["sw0"]) != ids["sw1"] || l.Other(ids["sw1"]) != ids["sw0"] {
		t.Error("Link.Other endpoints wrong")
	}
	if _, ok := topo.Link(ids["s0"], ids["s1"]); ok {
		t.Error("Link(s0,s1) should not exist")
	}
	if !topo.Adjacent(ids["sw1"], ids["sw0"]) {
		t.Error("Adjacent(sw1,sw0) = false, want true (order independent)")
	}
}

func TestLinkOtherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Other on non-endpoint did not panic")
		}
	}()
	l := Link{A: 1, B: 2}
	l.Other(3)
}

func TestKindString(t *testing.T) {
	if KindServer.String() != "server" || KindSwitch.String() != "switch" {
		t.Error("Kind.String wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown Kind.String empty")
	}
}

func TestNodePredicates(t *testing.T) {
	topo, ids := buildDiamond(t)
	if !topo.Node(ids["s0"]).IsServer() || topo.Node(ids["s0"]).IsSwitch() {
		t.Error("server predicates wrong")
	}
	if !topo.Node(ids["sw0"]).IsSwitch() || topo.Node(ids["sw0"]).IsServer() {
		t.Error("switch predicates wrong")
	}
	if topo.Valid(NodeID(-1)) || topo.Valid(NodeID(topo.NumNodes())) {
		t.Error("Valid accepted out-of-range ID")
	}
}

// TestQuickDistSymmetric: BFS distance is symmetric on random trees.
func TestQuickDistSymmetric(t *testing.T) {
	f := func(depthSeed, fanoutSeed uint8) bool {
		depth := int(depthSeed%3) + 1
		fanout := int(fanoutSeed%3) + 2
		topo, err := NewTree(depth, fanout, LinkParams{})
		if err != nil {
			return false
		}
		srv := topo.Servers()
		a, b := srv[0], srv[len(srv)-1]
		return topo.Dist(a, b) == topo.Dist(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickTriangleInequality: dist obeys the triangle inequality over
// server triples in random trees.
func TestQuickTriangleInequality(t *testing.T) {
	topo, err := NewTree(3, 3, LinkParams{})
	if err != nil {
		t.Fatal(err)
	}
	srv := topo.Servers()
	f := func(i, j, k uint16) bool {
		a := srv[int(i)%len(srv)]
		b := srv[int(j)%len(srv)]
		c := srv[int(k)%len(srv)]
		return topo.Dist(a, c) <= topo.Dist(a, b)+topo.Dist(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickDAGConsistent: for random server pairs in a fat-tree, every stage
// of the shortest-path DAG is non-empty and consecutive stages connect.
func TestQuickDAGConsistent(t *testing.T) {
	topo, err := NewFatTree(4, LinkParams{})
	if err != nil {
		t.Fatal(err)
	}
	srv := topo.Servers()
	f := func(i, j uint16) bool {
		a := srv[int(i)%len(srv)]
		b := srv[int(j)%len(srv)]
		if a == b {
			return true
		}
		dag := topo.ShortestPathDAG(a, b)
		if dag == nil || dag.Hops() != topo.Dist(a, b) {
			return false
		}
		for si, stage := range dag.Stages {
			if len(stage) == 0 {
				return false
			}
			if si == 0 {
				continue
			}
			// Every node in this stage must have at least one neighbor in the
			// previous stage.
			for _, n := range stage {
				ok := false
				for _, p := range dag.Stages[si-1] {
					if topo.Adjacent(p, n) {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestInfiniteCapacitySwitch(t *testing.T) {
	b := NewBuilder("inf")
	w := b.AddSwitch("w", TypeAccess, 0, InfiniteCapacity)
	s := b.AddServer("s")
	b.Connect(w, s, 1, 0)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(topo.Node(w).Capacity, 1) {
		t.Error("capacity not infinite")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on invalid topology")
		}
	}()
	b := NewBuilder("bad")
	b.AddServer("s0")
	b.AddServer("s1")
	b.MustBuild()
}

func BenchmarkShortestPathDAGFatTree8(b *testing.B) {
	topo, err := NewFatTree(8, LinkParams{})
	if err != nil {
		b.Fatal(err)
	}
	srv := topo.Servers()
	// Warm the BFS cache once so the benchmark measures DAG assembly.
	topo.Dist(srv[0], srv[len(srv)-1])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dag := topo.ShortestPathDAG(srv[0], srv[len(srv)-1]); dag == nil {
			b.Fatal("nil DAG")
		}
	}
}
