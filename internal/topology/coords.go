// Structural coordinate oracle: the four built-in architectures (Tree,
// Fat-Tree, VL2, BCube) are regular enough that hop distances, the tier of
// the highest switch on a shortest path, and the switch-type template of the
// lowest-ID shortest path all have closed forms over per-node coordinates.
// The generators emit those coordinates plus an architecture descriptor at
// construction time; the helpers below answer in O(1) (O(tiers) for trees,
// O(digits) for BCube) without touching the BFS machinery.
//
// The closed forms describe the HEALTHY graph only. Every helper refuses —
// returns ok=false — while any node is crashed (numDead > 0) or when the
// topology was hand-assembled via NewBuilder (FamilyIrregular), so callers
// fall back to BFS per query. internal/netstate is the intended caller; a
// taalint check (oraclebypass) keeps decision packages from bypassing the
// netstate oracle and calling these directly.
package topology

import (
	"fmt"
	"strconv"
)

// Family identifies which built-in architecture generated a topology, and
// therefore which coordinate scheme its structural closed forms use.
type Family uint8

const (
	// FamilyIrregular marks hand-built topologies with no structural oracle.
	FamilyIrregular Family = iota
	// FamilyTree covers NewTree/NewTreeWithRacks/NewPaperTree/NewCaseStudyTree.
	FamilyTree
	// FamilyFatTree covers NewFatTree.
	FamilyFatTree
	// FamilyVL2 covers NewVL2.
	FamilyVL2
	// FamilyBCube covers NewBCube.
	FamilyBCube
)

// String returns the family name used in diagnostics and docs.
func (f Family) String() string {
	switch f {
	case FamilyIrregular:
		return "irregular"
	case FamilyTree:
		return "tree"
	case FamilyFatTree:
		return "fattree"
	case FamilyVL2:
		return "vl2"
	case FamilyBCube:
		return "bcube"
	default:
		return fmt.Sprintf("family(%d)", uint8(f))
	}
}

// coordRec is the per-node coordinate emitted by the generators. Meaning is
// family-specific; the node's tier lives in Node.Tier:
//
//	Tree:     switch idx = index within its tier; server pod = access-switch
//	          index, idx = global server ordinal.
//	Fat-Tree: core idx = i (group i/half, member i%half); agg/edge pod = pod,
//	          idx = position in pod; server pod = pod, idx = edge*half + s.
//	VL2:      intermediate/aggregation idx = position in tier; ToR idx = rack;
//	          server pod = rack, idx = global server ordinal.
//	BCube:    server idx = base-n address; level-l switch idx = j (the
//	          address with digit l removed).
type coordRec struct{ pod, idx int32 }

// structure is the architecture descriptor the generators emit alongside
// coordinates: the handful of parameters the closed forms need.
type structure struct {
	family Family

	// types[t] is the switch type at tier t (all families; BCube level types).
	types []string

	// Tree: fan[t] = children per tier-t switch (t >= 1); len(fan) = depth.
	fan []int

	// Fat-Tree: half = k/2.
	half int

	// VL2: dA = aggregation count; rack r homes to aggs r%dA and (r+1)%dA.
	// vl2Base is the node ID of rack 0's ToR; spt = servers per ToR.
	dA, vl2Base, spt int

	// BCube: base n and levels = k+1 digit positions.
	n, levels int
}

// maxBCubeDigits bounds BCube address width for stack-allocated digit
// scratch: the generator caps servers at 2^20, so levels <= 21 with n=2.
const maxBCubeDigits = 24

// Structural reports whether the topology carries a structural coordinate
// oracle (it was built by one of the architecture generators). Liveness does
// not change this; degraded graphs refuse per query instead.
func (t *Topology) Structural() bool { return t.arch.family != FamilyIrregular }

// Family returns the architecture family that generated this topology, or
// FamilyIrregular for hand-built graphs.
func (t *Topology) Family() Family { return t.arch.family }

// ServersSingleHomed reports whether every server attaches to exactly one
// switch (degree 1). When true, d(x, s) = 1 + d(x, access(s)) for any x != s
// on the healthy graph — the identity the placement hot path uses to share
// distance work across all servers of a rack.
func (t *Topology) ServersSingleHomed() bool { return t.singleHomed }

// StructuralDist returns the hop distance between a and b computed from
// coordinates alone, matching Dist exactly on the healthy graph. ok=false
// when the topology is irregular, any node is crashed, or an ID is invalid —
// callers must then fall back to BFS.
func (t *Topology) StructuralDist(a, b NodeID) (int, bool) {
	if t.arch.family == FamilyIrregular || t.numDead > 0 || !t.Valid(a) || !t.Valid(b) {
		return 0, false
	}
	if a == b {
		return 0, true
	}
	switch t.arch.family {
	case FamilyTree:
		return t.treeDist(a, b), true
	case FamilyFatTree:
		return t.fatTreeDist(a, b), true
	case FamilyVL2:
		return t.vl2Dist(a, b), true
	case FamilyBCube:
		return t.bcubeDist(a, b), true
	}
	return 0, false
}

// ServerCell returns the structural cell a server belongs to: the
// access-switch index for Tree, the pod for Fat-Tree, the rack for VL2, and
// the level-0 switch group (address / n) for BCube. Cells partition
// scheduling work across shards, so unlike the distance oracles this
// tolerates crashed nodes — a dead server still has a home cell. ok=false
// only for irregular topologies, invalid IDs, and non-servers.
func (t *Topology) ServerCell(s NodeID) (int, bool) {
	if t.arch.family == FamilyIrregular || !t.Valid(s) || !t.nodes[s].IsServer() {
		return 0, false
	}
	c := t.coords[s]
	switch t.arch.family {
	case FamilyTree, FamilyFatTree, FamilyVL2:
		return int(c.pod), true
	case FamilyBCube:
		return int(c.idx) / t.arch.n, true
	}
	return 0, false
}

// LowestCommonTier returns the tier of the highest-tier node on the lowest-ID
// shortest path between two SERVERS: the "how far up the hierarchy does this
// flow climb" answer (-1 when a == b, where the path has no switch at all).
// ok=false for non-servers, irregular topologies, or degraded graphs.
func (t *Topology) LowestCommonTier(a, b NodeID) (int, bool) {
	if t.arch.family == FamilyIrregular || t.numDead > 0 ||
		!t.Valid(a) || !t.Valid(b) || !t.nodes[a].IsServer() || !t.nodes[b].IsServer() {
		return 0, false
	}
	if a == b {
		return -1, true
	}
	ca, cb := t.coords[a], t.coords[b]
	switch t.arch.family {
	case FamilyTree:
		tier, ia, ib := 0, int(ca.pod), int(cb.pod)
		for ia != ib {
			ia /= t.arch.fan[tier+1]
			ib /= t.arch.fan[tier+1]
			tier++
		}
		return tier, true
	case FamilyFatTree:
		switch {
		case ca.pod == cb.pod && ca.idx/int32(t.arch.half) == cb.idx/int32(t.arch.half):
			return 0, true
		case ca.pod == cb.pod:
			return 1, true
		default:
			return 2, true
		}
	case FamilyVL2:
		switch {
		case ca.pod == cb.pod:
			return 0, true
		case t.vl2RacksShareAgg(int(ca.pod), int(cb.pod)):
			return 1, true
		default:
			return 2, true
		}
	case FamilyBCube:
		top := -1
		x, y := int(ca.idx), int(cb.idx)
		for l := 0; l < t.arch.levels; l++ {
			if x%t.arch.n != y%t.arch.n {
				top = l
			}
			x /= t.arch.n
			y /= t.arch.n
		}
		return top, true
	}
	return 0, false
}

// StageTemplate returns the switch-type sequence of the lowest-ID shortest
// path between two SERVERS — exactly the types of the interior nodes of
// ShortestPath(a, b), without materializing the path. nil (ok=true) when
// a == b. ok=false for non-servers, irregular topologies, or degraded graphs.
func (t *Topology) StageTemplate(a, b NodeID) ([]string, bool) {
	if t.arch.family == FamilyIrregular || t.numDead > 0 ||
		!t.Valid(a) || !t.Valid(b) || !t.nodes[a].IsServer() || !t.nodes[b].IsServer() {
		return nil, false
	}
	if a == b {
		return nil, true
	}
	types := t.arch.types
	ca, cb := t.coords[a], t.coords[b]
	switch t.arch.family {
	case FamilyTree:
		top, _ := t.LowestCommonTier(a, b)
		tmpl := make([]string, 2*top+1)
		for i := 0; i <= top; i++ {
			tmpl[i] = types[i]
			tmpl[len(tmpl)-1-i] = types[i]
		}
		return tmpl, true
	case FamilyFatTree:
		switch {
		case ca.pod == cb.pod && ca.idx/int32(t.arch.half) == cb.idx/int32(t.arch.half):
			return []string{types[0]}, true
		case ca.pod == cb.pod:
			return []string{types[0], types[1], types[0]}, true
		default:
			return []string{types[0], types[1], types[2], types[1], types[0]}, true
		}
	case FamilyVL2:
		switch {
		case ca.pod == cb.pod:
			return []string{types[0]}, true
		case t.vl2RacksShareAgg(int(ca.pod), int(cb.pod)):
			return []string{types[0], types[1], types[0]}, true
		default:
			return []string{types[0], types[1], types[2], types[1], types[0]}, true
		}
	case FamilyBCube:
		// The lowest-ID shortest path corrects differing digits in ascending
		// level order: at every server hop, the adjacent switches that reduce
		// distance are exactly those at still-differing levels, and level-l
		// switch IDs strictly precede level-(l+1) IDs.
		var tmpl []string
		x, y := int(ca.idx), int(cb.idx)
		for l := 0; l < t.arch.levels; l++ {
			if x%t.arch.n != y%t.arch.n {
				tmpl = append(tmpl, types[l])
			}
			x /= t.arch.n
			y /= t.arch.n
		}
		return tmpl, true
	}
	return nil, false
}

// treeLift maps a node to (tier, index-within-tier, hops spent): servers
// lift one hop onto their access switch.
func (t *Topology) treeLift(x NodeID) (tier, idx, hops int) {
	n := t.nodes[x]
	if n.IsServer() {
		return 0, int(t.coords[x].pod), 1
	}
	return n.Tier, int(t.coords[x].idx), 0
}

func (t *Topology) treeDist(a, b NodeID) int {
	ta, ia, hops := t.treeLift(a)
	tb, ib, h2 := t.treeLift(b)
	hops += h2
	fan := t.arch.fan
	for ta < tb {
		ia /= fan[ta+1]
		ta++
		hops++
	}
	for tb < ta {
		ib /= fan[tb+1]
		tb++
		hops++
	}
	for ia != ib {
		ia /= fan[ta+1]
		ib /= fan[ta+1]
		ta++
		hops += 2
	}
	return hops
}

func (t *Topology) fatTreeDist(a, b NodeID) int {
	if t.nodes[a].Tier > t.nodes[b].Tier {
		a, b = b, a
	}
	half := int32(t.arch.half)
	ca, cb := t.coords[a], t.coords[b]
	ta, tb := t.nodes[a].Tier, t.nodes[b].Tier
	samePod := ca.pod == cb.pod
	switch {
	case ta == -1 && tb == -1: // server, server
		switch {
		case samePod && ca.idx/half == cb.idx/half:
			return 2
		case samePod:
			return 4
		default:
			return 6
		}
	case ta == -1 && tb == 0: // server, edge
		switch {
		case samePod && ca.idx/half == cb.idx:
			return 1
		case samePod:
			return 3
		default:
			return 5
		}
	case ta == -1 && tb == 1: // server, agg (edge reaches every pod agg)
		if samePod {
			return 2
		}
		return 4
	case ta == -1: // server, core
		return 3
	case ta == 0 && tb == 0: // edge, edge
		if samePod {
			return 2
		}
		return 4
	case ta == 0 && tb == 1: // edge, agg
		if samePod {
			return 1
		}
		return 3
	case ta == 0: // edge, core
		return 2
	case ta == 1 && tb == 1: // agg, agg
		if samePod || ca.idx == cb.idx {
			return 2
		}
		return 4
	case ta == 1: // agg, core: direct iff the core sits in the agg's group
		if cb.idx/half == ca.idx {
			return 1
		}
		return 3
	default: // core, core: same group shares every agg column
		if ca.idx/half == cb.idx/half {
			return 2
		}
		return 4
	}
}

// vl2RacksShareAgg reports whether racks r1 and r2 home to a common
// aggregation switch (rack r homes to aggs r%dA and (r+1)%dA).
func (t *Topology) vl2RacksShareAgg(r1, r2 int) bool {
	dA := t.arch.dA
	a1, b1 := r1%dA, (r1+1)%dA
	a2, b2 := r2%dA, (r2+1)%dA
	return a1 == a2 || a1 == b2 || b1 == a2 || b1 == b2
}

// vl2TorDist is the distance from ToR of rack r to a non-server node x.
func (t *Topology) vl2TorDist(r int, x NodeID) int {
	cx := t.coords[x]
	switch t.nodes[x].Tier {
	case 0: // another ToR
		r2 := int(cx.idx)
		switch {
		case r == r2:
			return 0
		case t.vl2RacksShareAgg(r, r2):
			return 2
		default:
			return 4
		}
	case 1: // aggregation
		dA := t.arch.dA
		if int(cx.idx) == r%dA || int(cx.idx) == (r+1)%dA {
			return 1
		}
		return 3
	default: // intermediate
		return 2
	}
}

func (t *Topology) vl2Dist(a, b NodeID) int {
	if t.nodes[a].Tier > t.nodes[b].Tier {
		a, b = b, a
	}
	ca := t.coords[a]
	if t.nodes[a].IsServer() {
		if t.nodes[b].IsServer() {
			cb := t.coords[b]
			if ca.pod == cb.pod {
				return 2
			}
			return 2 + t.vl2TorDist(int(ca.pod), t.torOf(int(cb.pod)))
		}
		return 1 + t.vl2TorDist(int(ca.pod), b)
	}
	ta, tb := t.nodes[a].Tier, t.nodes[b].Tier
	switch {
	case ta == 0:
		return t.vl2TorDist(int(ca.idx), b)
	case ta == 1 && tb == 1: // agg, agg via any intermediate
		return 2
	case ta == 1: // agg, intermediate: fully meshed
		return 1
	default: // intermediate, intermediate via any agg
		return 2
	}
}

// torOf returns the ToR switch node of VL2 rack r. ToRs are not contiguous
// (each is followed by its rack's servers), so reconstruct the ID from the
// construction layout: dI intermediates, dA aggs, then per rack one ToR plus
// spt servers.
func (t *Topology) torOf(r int) NodeID {
	return NodeID(t.arch.vl2Base + r*(1+t.arch.spt))
}

// bcubeDigits expands x into base-n digits, least-significant first.
func (t *Topology) bcubeDigits(x int, out *[maxBCubeDigits]int, count int) {
	for i := 0; i < count; i++ {
		out[i] = x % t.arch.n
		x /= t.arch.n
	}
}

func (t *Topology) bcubeDist(a, b NodeID) int {
	if t.nodes[a].Tier > t.nodes[b].Tier || (t.nodes[a].IsSwitch() && t.nodes[b].IsServer()) {
		a, b = b, a
	}
	L := t.arch.levels
	n := t.arch.n
	ca, cb := t.coords[a], t.coords[b]
	if t.nodes[a].IsServer() && t.nodes[b].IsServer() {
		// One server hop plus one switch hop per differing digit.
		h := 0
		x, y := int(ca.idx), int(cb.idx)
		for l := 0; l < L; l++ {
			if x%n != y%n {
				h++
			}
			x /= n
			y /= n
		}
		return 2 * h
	}
	if t.nodes[a].IsServer() { // server vs level-l switch
		l := t.nodes[b].Tier
		digit := 1
		for i := 0; i < l; i++ {
			digit *= n
		}
		addr := int(ca.idx)
		removed := (addr/(digit*n))*digit + addr%digit
		if removed == int(cb.idx) {
			return 1
		}
		h := 0
		x, y := removed, int(cb.idx)
		for i := 0; i < L-1; i++ {
			if x%n != y%n {
				h++
			}
			x /= n
			y /= n
		}
		return 1 + 2*h
	}
	// switch vs switch (a != b): hop onto a member server of the first
	// switch — its free digit matches anything — then correct the rest.
	l1, l2 := t.nodes[a].Tier, t.nodes[b].Tier
	if l1 == l2 {
		h := 0
		x, y := int(ca.idx), int(cb.idx)
		for i := 0; i < L-1; i++ {
			if x%n != y%n {
				h++
			}
			x /= n
			y /= n
		}
		return 2 + 2*h
	}
	const wild = -1
	var full, da, db [maxBCubeDigits]int
	t.bcubeDigits(int(ca.idx), &da, L-1)
	t.bcubeDigits(int(cb.idx), &db, L-1)
	// Insert the wildcard digit of switch a at level l1, then drop level l2.
	pos := 0
	for i := 0; i < L; i++ {
		if i == l1 {
			full[i] = wild
			continue
		}
		full[i] = da[pos]
		pos++
	}
	h := 0
	pos = 0
	for i := 0; i < L; i++ {
		if i == l2 {
			continue
		}
		if full[i] != wild && full[i] != db[pos] {
			h++
		}
		pos++
	}
	return 2 + 2*h
}

// bcubeTypes builds the BCube per-level type names ("level0", "level1", ...).
func bcubeTypes(levels int) []string {
	out := make([]string, levels)
	for l := range out {
		out[l] = TypeLevel + strconv.Itoa(l)
	}
	return out
}
