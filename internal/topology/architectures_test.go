package topology

import (
	"fmt"
	"testing"
)

func TestNewTreeCounts(t *testing.T) {
	cases := []struct {
		depth, fanout                  int
		wantServers, wantSwitches      int
		wantServerToServerMaxHops      int
		wantServerToServerSameRackHops int
	}{
		{1, 4, 4, 1, 2, 2},
		{2, 2, 4, 3, 4, 2},
		{3, 2, 8, 7, 6, 2},
		{3, 4, 64, 21, 6, 2},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("d%df%d", tc.depth, tc.fanout), func(t *testing.T) {
			topo, err := NewTree(tc.depth, tc.fanout, LinkParams{})
			if err != nil {
				t.Fatalf("NewTree: %v", err)
			}
			if got := topo.NumServers(); got != tc.wantServers {
				t.Errorf("servers = %d, want %d", got, tc.wantServers)
			}
			if got := topo.NumSwitches(); got != tc.wantSwitches {
				t.Errorf("switches = %d, want %d", got, tc.wantSwitches)
			}
			srv := topo.Servers()
			first, last := srv[0], srv[len(srv)-1]
			if tc.wantServers > 1 {
				if got := topo.Dist(first, last); got != tc.wantServerToServerMaxHops {
					t.Errorf("max server dist = %d, want %d", got, tc.wantServerToServerMaxHops)
				}
				if got := topo.Dist(srv[0], srv[1]); got != tc.wantServerToServerSameRackHops {
					t.Errorf("same rack dist = %d, want %d", got, tc.wantServerToServerSameRackHops)
				}
			}
		})
	}
}

func TestNewTreeErrors(t *testing.T) {
	if _, err := NewTree(0, 2, LinkParams{}); err == nil {
		t.Error("depth 0 accepted")
	}
	if _, err := NewTree(2, 0, LinkParams{}); err == nil {
		t.Error("fanout 0 accepted")
	}
}

func TestNewPaperTree(t *testing.T) {
	topo, err := NewPaperTree(LinkParams{})
	if err != nil {
		t.Fatalf("NewPaperTree: %v", err)
	}
	if got := topo.NumServers(); got != 64 {
		t.Errorf("servers = %d, want 64", got)
	}
	if got := topo.NumSwitches(); got != 10 {
		t.Errorf("switches = %d, want 10 (matches the paper's 64 hosts / 10 switches)", got)
	}
	if got := len(topo.SwitchesOfType(TypeAccess)); got != 8 {
		t.Errorf("access switches = %d, want 8", got)
	}
	if got := len(topo.SwitchesOfType(TypeCore)); got != 1 {
		t.Errorf("core switches = %d, want 1", got)
	}
	// Cross-rack path: server - access - agg - access - server = 4 hops;
	// far servers are still only 4 because there is a single aggregation.
	srv := topo.Servers()
	if got := topo.Dist(srv[0], srv[63]); got != 4 {
		t.Errorf("cross-rack dist = %d, want 4", got)
	}
}

func TestNewCaseStudyTree(t *testing.T) {
	topo, servers, err := NewCaseStudyTree(LinkParams{})
	if err != nil {
		t.Fatalf("NewCaseStudyTree: %v", err)
	}
	if got := topo.NumServers(); got != 4 {
		t.Errorf("servers = %d, want 4", got)
	}
	// §2.3: delay S1 -> S2 (same access switch) is 1 T; S1 -> S4 (via root) is 3 T.
	p12 := topo.ShortestPath(servers[0], servers[1])
	if got := topo.PathLatency(p12); got != 1 {
		t.Errorf("S1-S2 latency = %v T, want 1", got)
	}
	p14 := topo.ShortestPath(servers[0], servers[3])
	if got := topo.PathLatency(p14); got != 3 {
		t.Errorf("S1-S4 latency = %v T, want 3 (case study)", got)
	}
}

func TestNewFatTree(t *testing.T) {
	topo, err := NewFatTree(4, LinkParams{})
	if err != nil {
		t.Fatalf("NewFatTree: %v", err)
	}
	if got := topo.NumServers(); got != 16 {
		t.Errorf("servers = %d, want 16 (k^3/4)", got)
	}
	if got := topo.NumSwitches(); got != 20 {
		t.Errorf("switches = %d, want 20 (4 core + 8 agg + 8 edge)", got)
	}
	if got := len(topo.SwitchesOfType(TypeCore)); got != 4 {
		t.Errorf("core = %d, want 4", got)
	}
	// Multipath: two servers in different pods must have > 1 shortest path
	// alternative at the core stage.
	srv := topo.Servers()
	dag := topo.ShortestPathDAG(srv[0], srv[15])
	if dag == nil {
		t.Fatal("no DAG between far servers")
	}
	multi := false
	for _, stage := range dag.SwitchStages() {
		if len(stage) > 1 {
			multi = true
		}
	}
	if !multi {
		t.Error("fat-tree inter-pod route has no alternative switches; want multipath")
	}
}

func TestNewFatTreeErrors(t *testing.T) {
	for _, k := range []int{0, 1, 3, -2} {
		if _, err := NewFatTree(k, LinkParams{}); err == nil {
			t.Errorf("k=%d accepted", k)
		}
	}
}

func TestNewVL2(t *testing.T) {
	topo, err := NewVL2(4, 2, 2, 4, LinkParams{})
	if err != nil {
		t.Fatalf("NewVL2: %v", err)
	}
	if got := topo.NumServers(); got != 32 {
		t.Errorf("servers = %d, want 32 (4*2 ToR * 4)", got)
	}
	if got := len(topo.SwitchesOfType(TypeIntermediate)); got != 2 {
		t.Errorf("intermediate = %d, want 2", got)
	}
	if got := len(topo.SwitchesOfType(TypeAggregation)); got != 4 {
		t.Errorf("aggregation = %d, want 4", got)
	}
	if got := len(topo.SwitchesOfType(TypeAccess)); got != 8 {
		t.Errorf("ToR = %d, want 8", got)
	}
	// Each ToR is dual-homed: degree = 2 agg + servers.
	for _, tor := range topo.SwitchesOfType(TypeAccess) {
		if got := topo.Degree(tor); got != 2+4 {
			t.Errorf("ToR degree = %d, want 6", got)
		}
	}
}

func TestNewVL2Errors(t *testing.T) {
	if _, err := NewVL2(1, 2, 2, 4, LinkParams{}); err == nil {
		t.Error("dA=1 accepted")
	}
	if _, err := NewVL2(4, 0, 2, 4, LinkParams{}); err == nil {
		t.Error("dI=0 accepted")
	}
	if _, err := NewVL2(4, 2, 0, 4, LinkParams{}); err == nil {
		t.Error("tPerAgg=0 accepted")
	}
	if _, err := NewVL2(4, 2, 2, 0, LinkParams{}); err == nil {
		t.Error("serversPerToR=0 accepted")
	}
}

func TestNewBCube(t *testing.T) {
	topo, err := NewBCube(4, 1, LinkParams{})
	if err != nil {
		t.Fatalf("NewBCube: %v", err)
	}
	if got := topo.NumServers(); got != 16 {
		t.Errorf("servers = %d, want 16 (n^(k+1))", got)
	}
	if got := topo.NumSwitches(); got != 8 {
		t.Errorf("switches = %d, want 8 (2 levels * 4)", got)
	}
	// Every server attaches to exactly k+1 = 2 switches.
	for _, s := range topo.Servers() {
		if got := topo.Degree(s); got != 2 {
			t.Errorf("server %d degree = %d, want 2", s, got)
		}
	}
	// Every switch connects exactly n = 4 servers.
	for _, w := range topo.Switches() {
		if got := topo.Degree(w); got != 4 {
			t.Errorf("switch %d degree = %d, want 4", w, got)
		}
	}
	// Servers sharing a level-0 switch are 2 hops apart; others 4 max via
	// one relay server.
	srv := topo.Servers()
	if got := topo.Dist(srv[0], srv[1]); got != 2 {
		t.Errorf("same level-0 group dist = %d, want 2", got)
	}
	if got := topo.Dist(srv[0], srv[5]); got != 4 {
		t.Errorf("diagonal dist = %d, want 4 (via relay)", got)
	}
}

func TestNewBCubeErrors(t *testing.T) {
	if _, err := NewBCube(1, 1, LinkParams{}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NewBCube(2, -1, LinkParams{}); err == nil {
		t.Error("k=-1 accepted")
	}
	if _, err := NewBCube(64, 4, LinkParams{}); err == nil {
		t.Error("huge BCube accepted")
	}
}

func TestNewArchitecture(t *testing.T) {
	for _, name := range ArchitectureNames() {
		t.Run(name, func(t *testing.T) {
			topo, err := NewArchitecture(name, 16, LinkParams{})
			if err != nil {
				t.Fatalf("NewArchitecture(%q): %v", name, err)
			}
			if topo.NumServers() < 16 {
				t.Errorf("servers = %d, want >= 16", topo.NumServers())
			}
			if !topo.Connected() {
				t.Error("not connected")
			}
		})
	}
	if _, err := NewArchitecture("hypercube", 16, LinkParams{}); err == nil {
		t.Error("unknown architecture accepted")
	}
	if _, err := NewArchitecture("tree", 0, LinkParams{}); err == nil {
		t.Error("minServers=0 accepted")
	}
}

func TestDefaultLinkParams(t *testing.T) {
	p := DefaultLinkParams()
	if p.Bandwidth <= 0 || p.SwitchCapacity <= 0 {
		t.Errorf("defaults not positive: %+v", p)
	}
	// orDefault fills zero values.
	var zero LinkParams
	filled := zero.orDefault()
	if filled.Bandwidth != p.Bandwidth || filled.SwitchCapacity != p.SwitchCapacity {
		t.Errorf("orDefault = %+v, want %+v", filled, p)
	}
	// Negative latency is clamped.
	neg := LinkParams{Bandwidth: 1, Latency: -3, SwitchCapacity: 1}.orDefault()
	if neg.Latency != 0 {
		t.Errorf("negative latency not clamped: %v", neg.Latency)
	}
}

func TestArchitecturesAreConnectedAndTyped(t *testing.T) {
	builders := map[string]func() (*Topology, error){
		"tree-3-8": func() (*Topology, error) { return NewTree(3, 8, LinkParams{}) },
		"fattree6": func() (*Topology, error) { return NewFatTree(6, LinkParams{}) },
		"vl2":      func() (*Topology, error) { return NewVL2(6, 3, 2, 8, LinkParams{}) },
		"bcube":    func() (*Topology, error) { return NewBCube(3, 2, LinkParams{}) },
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			topo, err := build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if !topo.Connected() {
				t.Fatal("not connected")
			}
			for _, w := range topo.Switches() {
				if topo.Node(w).Type == "" {
					t.Errorf("switch %d has empty type", w)
				}
				if topo.Node(w).Capacity <= 0 {
					t.Errorf("switch %d has non-positive capacity", w)
				}
			}
			for _, s := range topo.Servers() {
				if topo.AccessSwitch(s) == None {
					t.Errorf("server %d has no access switch", s)
				}
			}
		})
	}
}
