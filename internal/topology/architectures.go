package topology

import (
	"fmt"
	"math"
)

// LinkParams carries the per-tier link characteristics used by the
// architecture constructors.
type LinkParams struct {
	// Bandwidth of every constructed link, in data units per time unit.
	Bandwidth float64
	// Latency contribution of every link, in delay units T. The per-switch
	// delay of 1 T is accounted separately by PathLatency.
	Latency float64
	// SwitchCapacity is the aggregate rate each switch can carry
	// (w.capacity). Use math.Inf(1) for unconstrained switches.
	SwitchCapacity float64
	// Oversubscription thins the tree's switch-to-switch uplinks the way
	// production data centers do: an uplink carries Bandwidth x fanout /
	// Oversubscription, so with 8 servers per rack and 4:1 oversubscription
	// the rack uplink offers a quarter of the rack's aggregate edge
	// bandwidth. Zero (the default) keeps every link at Bandwidth
	// (non-blocking). Applies to NewTree, NewPaperTree and NewCaseStudyTree;
	// Fat-Tree, VL2 and BCube are rearrangeably non-blocking by construction
	// and ignore it.
	Oversubscription float64
}

// DefaultLinkParams returns the parameters used throughout the evaluation
// unless an experiment overrides them: 1.0 data units per time unit per link,
// zero extra link latency (all delay comes from switch traversals), and
// switch capacity equal to 8x the link bandwidth (a modest oversubscription,
// so that hot switches can actually saturate).
func DefaultLinkParams() LinkParams {
	return LinkParams{Bandwidth: 1.0, Latency: 0, SwitchCapacity: 8.0}
}

func (p LinkParams) orDefault() LinkParams {
	d := DefaultLinkParams()
	if p.Bandwidth <= 0 {
		p.Bandwidth = d.Bandwidth
	}
	if p.SwitchCapacity == 0 { //taalint:floateq zero means "unset, use default"; negative means explicitly uncapacitated

		p.SwitchCapacity = d.SwitchCapacity
	}
	if p.Latency < 0 {
		p.Latency = 0
	}
	if p.Oversubscription < 0 {
		p.Oversubscription = 0
	}
	return p
}

// uplinkBandwidth returns the switch-to-switch link bandwidth for a switch
// with the given downstream fanout under the configured oversubscription.
func (p LinkParams) uplinkBandwidth(fanout int) float64 {
	if p.Oversubscription <= 0 {
		return p.Bandwidth
	}
	bw := p.Bandwidth * float64(fanout) / p.Oversubscription
	if bw <= 0 {
		return p.Bandwidth
	}
	return bw
}

// NewTree builds a classic single-rooted multi-tier tree: one core switch at
// the top, `fanout` children per switch for `depth` switch tiers, and
// `fanout` servers under each access (lowest-tier) switch.
//
// depth counts switch tiers: depth=1 is a single access switch with fanout
// servers; depth=3 with fanout=2 is core -> 2 aggregation -> 4 access -> 8
// servers. Switch types are "core" for the root, "aggregation" for every
// middle tier, and "access" for the lowest tier (with depth==1 the single
// switch is typed "access").
func NewTree(depth, fanout int, p LinkParams) (*Topology, error) {
	return NewTreeWithRacks(depth, fanout, fanout, p)
}

// NewTreeWithRacks is NewTree with the rack size decoupled from the switch
// fanout: `fanout` children per switch through the switch tiers, but
// `serversPerRack` servers under each access switch. This is how the
// scalability benchmarks reach 10k servers without exploding the switch
// count (depth=3, fanout=10, serversPerRack=100 gives exactly 10000 servers
// behind 111 switches).
func NewTreeWithRacks(depth, fanout, serversPerRack int, p LinkParams) (*Topology, error) {
	if depth < 1 {
		return nil, fmt.Errorf("topology: tree depth must be >= 1, got %d", depth)
	}
	if fanout < 1 {
		return nil, fmt.Errorf("topology: tree fanout must be >= 1, got %d", fanout)
	}
	if serversPerRack < 1 {
		return nil, fmt.Errorf("topology: tree serversPerRack must be >= 1, got %d", serversPerRack)
	}
	p = p.orDefault()
	b := NewBuilder("tree")

	// Tier numbering: access = 0 ... root = depth-1.
	typeFor := func(tier int) string {
		switch {
		case tier == 0:
			return TypeAccess
		case tier == depth-1:
			return TypeCore
		default:
			return TypeAggregation
		}
	}
	types := make([]string, depth)
	fan := make([]int, depth)
	for t := 0; t < depth; t++ {
		types[t] = typeFor(t)
		fan[t] = fanout
	}

	root := b.AddSwitch("core0", typeFor(depth-1), depth-1, p.SwitchCapacity)
	b.setCoord(root, -1, 0)
	prev := []NodeID{root}
	for tier := depth - 2; tier >= 0; tier-- {
		uplink := p.uplinkBandwidth(fanout)
		if tier == 0 {
			uplink = p.uplinkBandwidth(serversPerRack)
		}
		var cur []NodeID
		for pi, parent := range prev {
			for c := 0; c < fanout; c++ {
				name := fmt.Sprintf("%s%d_%d", typeFor(tier), tier, pi*fanout+c)
				sw := b.AddSwitch(name, typeFor(tier), tier, p.SwitchCapacity)
				b.setCoord(sw, -1, pi*fanout+c)
				b.Connect(parent, sw, uplink, p.Latency)
				cur = append(cur, sw)
			}
		}
		prev = cur
	}
	for ai, access := range prev {
		for s := 0; s < serversPerRack; s++ {
			srv := b.AddServer(fmt.Sprintf("s%d", ai*serversPerRack+s))
			b.setCoord(srv, ai, ai*serversPerRack+s)
			b.Connect(access, srv, p.Bandwidth, p.Latency)
		}
	}
	b.setStructure(structure{family: FamilyTree, types: types, fan: fan})
	return b.Build()
}

// NewPaperTree builds the testbed network of §7.1: a tree of depth 3 with
// fanout 8 at the access tier — 64 hosts behind 8 access switches, one
// aggregation switch and one core switch (10 switches total, matching the
// paper's "64 hosts connected to 10 switches").
func NewPaperTree(p LinkParams) (*Topology, error) {
	p = p.orDefault()
	b := NewBuilder("tree")
	core := b.AddSwitch("core0", TypeCore, 2, p.SwitchCapacity)
	b.setCoord(core, -1, 0)
	agg := b.AddSwitch("aggregation1_0", TypeAggregation, 1, p.SwitchCapacity)
	b.setCoord(agg, -1, 0)
	b.Connect(core, agg, p.uplinkBandwidth(8), p.Latency)
	for a := 0; a < 8; a++ {
		acc := b.AddSwitch(fmt.Sprintf("access0_%d", a), TypeAccess, 0, p.SwitchCapacity)
		b.setCoord(acc, -1, a)
		b.Connect(agg, acc, p.uplinkBandwidth(8), p.Latency)
		for s := 0; s < 8; s++ {
			srv := b.AddServer(fmt.Sprintf("s%d", a*8+s))
			b.setCoord(srv, a, a*8+s)
			b.Connect(acc, srv, p.Bandwidth, p.Latency)
		}
	}
	// fan[t] = children per tier-t switch: the aggregation switch fans to 8
	// access switches, the core to a single aggregation switch.
	b.setStructure(structure{
		family: FamilyTree,
		types:  []string{TypeAccess, TypeAggregation, TypeCore},
		fan:    []int{0, 8, 1},
	})
	return b.Build()
}

// NewCaseStudyTree builds the 4-slave topology of the §2.3 case study
// (Figure 3): servers S1,S2 under one access switch, S3,S4 under another,
// both access switches under a single root. Server IDs are returned in
// S1..S4 order.
func NewCaseStudyTree(p LinkParams) (*Topology, [4]NodeID, error) {
	p = p.orDefault()
	b := NewBuilder("tree")
	root := b.AddSwitch("core0", TypeCore, 1, p.SwitchCapacity)
	b.setCoord(root, -1, 0)
	accL := b.AddSwitch("access0_0", TypeAccess, 0, p.SwitchCapacity)
	b.setCoord(accL, -1, 0)
	accR := b.AddSwitch("access0_1", TypeAccess, 0, p.SwitchCapacity)
	b.setCoord(accR, -1, 1)
	b.Connect(root, accL, p.uplinkBandwidth(2), p.Latency)
	b.Connect(root, accR, p.uplinkBandwidth(2), p.Latency)
	var servers [4]NodeID
	for i := 0; i < 2; i++ {
		servers[i] = b.AddServer(fmt.Sprintf("s%d", i+1))
		b.setCoord(servers[i], 0, i)
		b.Connect(accL, servers[i], p.Bandwidth, p.Latency)
	}
	for i := 2; i < 4; i++ {
		servers[i] = b.AddServer(fmt.Sprintf("s%d", i+1))
		b.setCoord(servers[i], 1, i)
		b.Connect(accR, servers[i], p.Bandwidth, p.Latency)
	}
	b.setStructure(structure{
		family: FamilyTree,
		types:  []string{TypeAccess, TypeCore},
		fan:    []int{0, 2},
	})
	t, err := b.Build()
	return t, servers, err
}

// NewFatTree builds a k-ary fat-tree [Leiserson'85 / Al-Fares'08 form]:
// (k/2)^2 core switches, k pods each holding k/2 aggregation and k/2 edge
// (access) switches, and k/2 servers per edge switch — k^3/4 servers total.
// k must be even and >= 2.
func NewFatTree(k int, p LinkParams) (*Topology, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat-tree k must be even and >= 2, got %d", k)
	}
	p = p.orDefault()
	b := NewBuilder("fattree")
	half := k / 2

	cores := make([]NodeID, half*half)
	for i := range cores {
		cores[i] = b.AddSwitch(fmt.Sprintf("core%d", i), TypeCore, 2, p.SwitchCapacity)
		b.setCoord(cores[i], -1, i)
	}
	for pod := 0; pod < k; pod++ {
		aggs := make([]NodeID, half)
		for a := 0; a < half; a++ {
			aggs[a] = b.AddSwitch(fmt.Sprintf("aggregation_p%d_%d", pod, a), TypeAggregation, 1, p.SwitchCapacity)
			b.setCoord(aggs[a], pod, a)
			// Aggregation switch a in each pod connects to core group a.
			for c := 0; c < half; c++ {
				b.Connect(aggs[a], cores[a*half+c], p.Bandwidth, p.Latency)
			}
		}
		for e := 0; e < half; e++ {
			edge := b.AddSwitch(fmt.Sprintf("access_p%d_%d", pod, e), TypeAccess, 0, p.SwitchCapacity)
			b.setCoord(edge, pod, e)
			for _, agg := range aggs {
				b.Connect(edge, agg, p.Bandwidth, p.Latency)
			}
			for s := 0; s < half; s++ {
				srv := b.AddServer(fmt.Sprintf("s_p%d_%d_%d", pod, e, s))
				b.setCoord(srv, pod, e*half+s)
				b.Connect(edge, srv, p.Bandwidth, p.Latency)
			}
		}
	}
	b.setStructure(structure{
		family: FamilyFatTree,
		types:  []string{TypeAccess, TypeAggregation, TypeCore},
		half:   half,
	})
	return b.Build()
}

// NewVL2 builds a VL2-style Clos network [Greenberg'09]: dI intermediate
// switches at the top, dA aggregation switches each connected to every
// intermediate switch, and dA*tPerAgg top-of-rack (access) switches, each
// ToR dual-homed to two aggregation switches, with serversPerToR servers
// per rack.
func NewVL2(dA, dI, tPerAgg, serversPerToR int, p LinkParams) (*Topology, error) {
	if dA < 2 || dI < 1 || tPerAgg < 1 || serversPerToR < 1 {
		return nil, fmt.Errorf("topology: invalid VL2 parameters dA=%d dI=%d tPerAgg=%d servers=%d",
			dA, dI, tPerAgg, serversPerToR)
	}
	p = p.orDefault()
	b := NewBuilder("vl2")

	inters := make([]NodeID, dI)
	for i := range inters {
		inters[i] = b.AddSwitch(fmt.Sprintf("intermediate%d", i), TypeIntermediate, 2, p.SwitchCapacity)
		b.setCoord(inters[i], -1, i)
	}
	aggs := make([]NodeID, dA)
	for a := range aggs {
		aggs[a] = b.AddSwitch(fmt.Sprintf("aggregation%d", a), TypeAggregation, 1, p.SwitchCapacity)
		b.setCoord(aggs[a], -1, a)
		for _, in := range inters {
			b.Connect(aggs[a], in, p.Bandwidth, p.Latency)
		}
	}
	nToR := dA * tPerAgg
	for r := 0; r < nToR; r++ {
		tor := b.AddSwitch(fmt.Sprintf("access%d", r), TypeAccess, 0, p.SwitchCapacity)
		b.setCoord(tor, -1, r)
		// Dual-home to two consecutive aggregation switches.
		b.Connect(tor, aggs[r%dA], p.Bandwidth, p.Latency)
		b.Connect(tor, aggs[(r+1)%dA], p.Bandwidth, p.Latency)
		for s := 0; s < serversPerToR; s++ {
			srv := b.AddServer(fmt.Sprintf("s_r%d_%d", r, s))
			b.setCoord(srv, r, r*serversPerToR+s)
			b.Connect(tor, srv, p.Bandwidth, p.Latency)
		}
	}
	b.setStructure(structure{
		family:  FamilyVL2,
		types:   []string{TypeAccess, TypeAggregation, TypeIntermediate},
		dA:      dA,
		vl2Base: dI + dA,
		spt:     serversPerToR,
	})
	return b.Build()
}

// NewBCube builds a BCube(n, k) server-centric network [Guo'09]: n^(k+1)
// servers, with k+1 levels of switches; level l holds n^k switches of type
// "level<l>" and each connects n servers that differ only in digit l of
// their base-n address. Servers participate in forwarding (they have
// multiple switch attachments), which the generic path machinery handles
// naturally.
func NewBCube(n, k int, p LinkParams) (*Topology, error) {
	if n < 2 || k < 0 {
		return nil, fmt.Errorf("topology: BCube needs n >= 2, k >= 0; got n=%d k=%d", n, k)
	}
	nServers := 1
	for i := 0; i <= k; i++ {
		nServers *= n
		if nServers > 1<<20 {
			return nil, fmt.Errorf("topology: BCube(%d,%d) too large", n, k)
		}
	}
	p = p.orDefault()
	b := NewBuilder("bcube")

	servers := make([]NodeID, nServers)
	for i := range servers {
		servers[i] = b.AddServer(fmt.Sprintf("s%d", i))
		b.setCoord(servers[i], -1, i)
	}
	// Level l: n^k switches; switch j at level l connects servers whose
	// address with digit l removed equals j.
	nPerLevel := nServers / n
	for l := 0; l <= k; l++ {
		digit := 1
		for i := 0; i < l; i++ {
			digit *= n
		}
		for j := 0; j < nPerLevel; j++ {
			sw := b.AddSwitch(fmt.Sprintf("level%d_%d", l, j), fmt.Sprintf("%s%d", TypeLevel, l), l, p.SwitchCapacity)
			b.setCoord(sw, l, j)
			// Reconstruct the n member servers: insert each value of digit l
			// into position l of j's mixed-radix representation.
			low := j % digit
			high := j / digit
			for v := 0; v < n; v++ {
				addr := high*digit*n + v*digit + low
				b.Connect(sw, servers[addr], p.Bandwidth, p.Latency)
			}
		}
	}
	b.setStructure(structure{
		family: FamilyBCube,
		types:  bcubeTypes(k + 1),
		n:      n,
		levels: k + 1,
	})
	return b.Build()
}

// ArchitectureNames lists the built-in architecture constructors in the
// order the paper's Figure 8(b) presents them.
func ArchitectureNames() []string { return []string{"tree", "fattree", "bcube", "vl2"} }

// NewArchitecture builds one of the four evaluated architectures by name,
// sized to hold at least minServers servers. The concrete sizes follow the
// evaluation setup: trees grow fanout, fat-trees grow k, VL2 grows racks,
// BCube grows n.
func NewArchitecture(name string, minServers int, p LinkParams) (*Topology, error) {
	if minServers < 1 {
		return nil, fmt.Errorf("topology: minServers must be >= 1, got %d", minServers)
	}
	switch name {
	case "tree":
		// depth 3; pick the smallest fanout with fanout^3 >= minServers.
		f := 2
		for f*f*f < minServers {
			f++
		}
		return NewTree(3, f, p)
	case "fattree":
		k := 2
		for k*k*k/4 < minServers {
			k += 2
		}
		return NewFatTree(k, p)
	case "vl2":
		dA, dI := 4, 2
		tPerAgg := 1
		perToR := 4
		for dA*tPerAgg*perToR < minServers {
			tPerAgg++
		}
		return NewVL2(dA, dI, tPerAgg, perToR, p)
	case "bcube":
		n := 2
		for n*n < minServers {
			n++
		}
		return NewBCube(n, 1, p)
	default:
		return nil, fmt.Errorf("topology: unknown architecture %q", name)
	}
}

// InfiniteCapacity is a convenience alias for an unconstrained switch.
var InfiniteCapacity = math.Inf(1)
