package topology

import (
	"fmt"
	"testing"
)

// structuralCases enumerates the generator configurations the parity sweep
// covers: all four families at several sizes, including the degenerate edges
// (depth-1 trees, k=2 fat-trees, single-rack VL2, k=0 BCube).
func structuralCases(t *testing.T) map[string]*Topology {
	t.Helper()
	p := DefaultLinkParams()
	out := make(map[string]*Topology)
	add := func(name string, topo *Topology, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = topo
	}
	for _, d := range []int{1, 2, 3} {
		for _, f := range []int{1, 2, 3} {
			topo, err := NewTree(d, f, p)
			add(fmt.Sprintf("tree_d%d_f%d", d, f), topo, err)
		}
	}
	rack, err := NewTreeWithRacks(3, 2, 5, p)
	add("tree_rack_d3_f2_s5", rack, err)
	rack2, err := NewTreeWithRacks(2, 3, 1, p)
	add("tree_rack_d2_f3_s1", rack2, err)
	paper, err := NewPaperTree(p)
	add("papertree", paper, err)
	study, _, err := NewCaseStudyTree(p)
	add("casestudy", study, err)
	for _, k := range []int{2, 4, 6} {
		topo, err := NewFatTree(k, p)
		add(fmt.Sprintf("fattree_k%d", k), topo, err)
	}
	for _, c := range [][4]int{{2, 1, 1, 1}, {2, 2, 2, 3}, {4, 2, 3, 2}, {5, 3, 2, 4}} {
		topo, err := NewVL2(c[0], c[1], c[2], c[3], p)
		add(fmt.Sprintf("vl2_%d_%d_%d_%d", c[0], c[1], c[2], c[3]), topo, err)
	}
	for _, c := range [][2]int{{2, 0}, {2, 2}, {3, 1}, {4, 1}, {2, 3}} {
		topo, err := NewBCube(c[0], c[1], p)
		add(fmt.Sprintf("bcube_n%d_k%d", c[0], c[1]), topo, err)
	}
	return out
}

func sortedCaseNames(cases map[string]*Topology) []string {
	names := make([]string, 0, len(cases))
	for name := range cases {
		names = append(names, name)
	}
	for i := 1; i < len(names); i++ { // insertion sort: deterministic order
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// TestStructuralDistParity checks StructuralDist == BFS Dist for EVERY node
// pair of every structural case.
func TestStructuralDistParity(t *testing.T) {
	cases := structuralCases(t)
	for _, name := range sortedCaseNames(cases) {
		topo := cases[name]
		t.Run(name, func(t *testing.T) {
			if !topo.Structural() {
				t.Fatalf("generator did not mark topology structural")
			}
			n := topo.NumNodes()
			for a := 0; a < n; a++ {
				bfsRow := make([]int, n)
				for b := 0; b < n; b++ {
					bfsRow[b] = topo.Dist(NodeID(a), NodeID(b))
				}
				for b := 0; b < n; b++ {
					got, ok := topo.StructuralDist(NodeID(a), NodeID(b))
					if !ok {
						t.Fatalf("StructuralDist(%d,%d) refused on healthy graph", a, b)
					}
					if got != bfsRow[b] {
						t.Fatalf("StructuralDist(%d,%d)=%d, BFS=%d (a=%v b=%v)",
							a, b, got, bfsRow[b], topo.Node(NodeID(a)), topo.Node(NodeID(b)))
					}
				}
			}
		})
	}
}

// TestLowestCommonTierParity checks LowestCommonTier against the highest
// tier on the lowest-ID shortest path, for every server pair.
func TestLowestCommonTierParity(t *testing.T) {
	cases := structuralCases(t)
	for _, name := range sortedCaseNames(cases) {
		topo := cases[name]
		t.Run(name, func(t *testing.T) {
			for _, a := range topo.Servers() {
				for _, b := range topo.Servers() {
					got, ok := topo.LowestCommonTier(a, b)
					if !ok {
						t.Fatalf("LowestCommonTier(%d,%d) refused on healthy graph", a, b)
					}
					want := -1
					for _, id := range topo.ShortestPath(a, b) {
						if tier := topo.Node(id).Tier; tier > want {
							want = tier
						}
					}
					if got != want {
						t.Fatalf("LowestCommonTier(%d,%d)=%d, path max tier=%d", a, b, got, want)
					}
				}
			}
		})
	}
}

// TestStageTemplateParity checks StageTemplate against the interior types of
// the lowest-ID shortest path, for every server pair.
func TestStageTemplateParity(t *testing.T) {
	cases := structuralCases(t)
	for _, name := range sortedCaseNames(cases) {
		topo := cases[name]
		t.Run(name, func(t *testing.T) {
			for _, a := range topo.Servers() {
				for _, b := range topo.Servers() {
					got, ok := topo.StageTemplate(a, b)
					if !ok {
						t.Fatalf("StageTemplate(%d,%d) refused on healthy graph", a, b)
					}
					// Reference: switch types along the lowest-ID shortest
					// path (BCube paths hop through intermediate servers,
					// which carry no type — netstate's TypeTemplate skips
					// them the same way).
					var want []string
					for _, id := range topo.ShortestPath(a, b) {
						if topo.Node(id).IsSwitch() {
							want = append(want, topo.Node(id).Type)
						}
					}
					if len(got) != len(want) {
						t.Fatalf("StageTemplate(%d,%d)=%v, path types=%v", a, b, got, want)
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("StageTemplate(%d,%d)=%v, path types=%v", a, b, got, want)
						}
					}
				}
			}
		})
	}
}

// TestStructuralRefusals pins the fallback contract: irregular topologies
// and degraded graphs must refuse, and recovery must re-enable the oracle.
func TestStructuralRefusals(t *testing.T) {
	b := NewBuilder("custom")
	sw := b.AddSwitch("sw", TypeAccess, 0, 10)
	s1 := b.AddServer("s1")
	s2 := b.AddServer("s2")
	b.Connect(sw, s1, 1, 0)
	b.Connect(sw, s2, 1, 0)
	custom, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if custom.Structural() {
		t.Fatal("hand-built topology claims to be structural")
	}
	if _, ok := custom.StructuralDist(s1, s2); ok {
		t.Fatal("StructuralDist answered on an irregular topology")
	}

	topo, err := NewTree(3, 2, DefaultLinkParams())
	if err != nil {
		t.Fatal(err)
	}
	srv := topo.Servers()
	if _, ok := topo.StructuralDist(srv[0], srv[1]); !ok {
		t.Fatal("StructuralDist refused on healthy tree")
	}
	if !topo.ServersSingleHomed() {
		t.Fatal("tree servers should be single-homed")
	}
	if err := topo.SetNodeAlive(srv[2], false); err != nil {
		t.Fatal(err)
	}
	if _, ok := topo.StructuralDist(srv[0], srv[1]); ok {
		t.Fatal("StructuralDist answered on a degraded graph")
	}
	if _, ok := topo.LowestCommonTier(srv[0], srv[1]); ok {
		t.Fatal("LowestCommonTier answered on a degraded graph")
	}
	if _, ok := topo.StageTemplate(srv[0], srv[1]); ok {
		t.Fatal("StageTemplate answered on a degraded graph")
	}
	if err := topo.SetNodeAlive(srv[2], true); err != nil {
		t.Fatal(err)
	}
	if d, ok := topo.StructuralDist(srv[0], srv[1]); !ok || d != 2 {
		t.Fatalf("StructuralDist after recovery = %d, %v; want 2, true", d, ok)
	}

	// BCube servers are multi-homed; the rack identity must not be claimed.
	bc, err := NewBCube(2, 1, DefaultLinkParams())
	if err != nil {
		t.Fatal(err)
	}
	if bc.ServersSingleHomed() {
		t.Fatal("BCube servers claim to be single-homed")
	}
}

// TestServerCell checks the structural cell partition: same-rack/pod
// servers share a cell, cells differ across pods, non-servers and
// irregular graphs refuse, and — unlike the distance oracles — crashed
// nodes keep their home cell (cells partition scheduling WORK, not paths).
func TestServerCell(t *testing.T) {
	topo, err := NewTree(3, 3, DefaultLinkParams())
	if err != nil {
		t.Fatal(err)
	}
	srv := topo.Servers()
	// Tree(3,3): 9 access switches of 3 servers each; pods group by access
	// switch, so servers 0..2 share a cell and server 3 starts the next.
	c0, ok := topo.ServerCell(srv[0])
	if !ok {
		t.Fatal("ServerCell refused a healthy tree server")
	}
	if c1, _ := topo.ServerCell(srv[1]); c1 != c0 {
		t.Fatalf("same-rack servers in cells %d and %d", c0, c1)
	}
	if c3, _ := topo.ServerCell(srv[3]); c3 == c0 {
		t.Fatalf("cross-rack servers share cell %d", c0)
	}
	if _, ok := topo.ServerCell(topo.AccessSwitch(srv[0])); ok {
		t.Fatal("ServerCell answered for a switch")
	}
	if _, ok := topo.ServerCell(NodeID(1 << 20)); ok {
		t.Fatal("ServerCell answered for an invalid ID")
	}
	if err := topo.SetNodeAlive(srv[0], false); err != nil {
		t.Fatal(err)
	}
	if c, ok := topo.ServerCell(srv[0]); !ok || c != c0 {
		t.Fatalf("crashed server lost its cell: %d, %v; want %d, true", c, ok, c0)
	}

	ft, err := NewFatTree(4, DefaultLinkParams())
	if err != nil {
		t.Fatal(err)
	}
	cells := make(map[int]int)
	for _, s := range ft.Servers() {
		c, ok := ft.ServerCell(s)
		if !ok {
			t.Fatalf("ServerCell refused fat-tree server %d", s)
		}
		cells[c]++
	}
	// k=4 fat-tree: 4 pods of 4 servers.
	if len(cells) != 4 {
		t.Fatalf("fat-tree k=4 has %d cells, want 4 pods", len(cells))
	}
	for c, n := range cells {
		if n != 4 {
			t.Fatalf("fat-tree pod cell %d holds %d servers, want 4", c, n)
		}
	}

	bc, err := NewBCube(2, 1, DefaultLinkParams())
	if err != nil {
		t.Fatal(err)
	}
	bcCells := make(map[int]int)
	for _, s := range bc.Servers() {
		c, ok := bc.ServerCell(s)
		if !ok {
			t.Fatalf("ServerCell refused BCube server %d", s)
		}
		bcCells[c]++
	}
	// BCube(2,1): 4 servers in level-0 groups of n=2.
	if len(bcCells) != 2 {
		t.Fatalf("BCube(2,1) has %d cells, want 2", len(bcCells))
	}
}
