package faults

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestParseTimelineMalformed is the malformed-input table: every rejected
// shape, with the sentinel classification checked via errors.Is where one
// applies.
func TestParseTimelineMalformed(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want error // nil = any error acceptable
	}{
		{"missing t=", "switch-crash node=3", nil},
		{"unknown kind", "t=5 melt node=3", nil},
		{"negative time", "t=-1 switch-crash node=3", nil},
		{"bad time", "t=soon switch-crash node=3", nil},
		{"missing node", "t=5 switch-crash", nil},
		{"link kind without link", "t=5 link-degrade node=3", nil},
		{"malformed link", "t=5 link-degrade link=27 factor=0.5", nil},
		{"factor out of range", "t=5 switch-degrade node=3 factor=1.5", nil},
		{"unknown field", "t=5 switch-crash node=3 color=red", nil},
		{"bad id", "t=5 switch-crash node=3 id=first", nil},
		{"negative id", "t=5 switch-crash node=3 id=-2", nil},
		{
			"duplicate explicit IDs",
			"t=5 switch-crash node=3 id=7\nt=6 switch-recover node=3 id=7",
			ErrDuplicateEventID,
		},
		{
			"explicit ID collides with implicit ordinal",
			"t=5 switch-crash node=3\nt=6 switch-recover node=3 id=0",
			ErrDuplicateEventID,
		},
		{
			"timestamps out of order",
			"t=10 switch-crash node=3\nt=5 switch-recover node=3",
			ErrOutOfOrderEvent,
		},
		{
			"out of order after comment lines",
			"# drill\nt=10 switch-crash node=3\n\n# later\nt=9.5 switch-recover node=3",
			ErrOutOfOrderEvent,
		},
	}
	for _, tc := range cases {
		_, err := ParseTimeline(tc.src)
		if err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.src)
			continue
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: error %v does not wrap %v", tc.name, err, tc.want)
		}
		// Sentinels must stay distinguishable from each other.
		if tc.want == ErrDuplicateEventID && errors.Is(err, ErrOutOfOrderEvent) {
			t.Errorf("%s: duplicate-ID error also matches out-of-order", tc.name)
		}
	}
}

// TestParseTimelineExplicitIDs: id= overrides the tiebreak sequence and
// round-trips through Format.
func TestParseTimelineExplicitIDs(t *testing.T) {
	src := "t=5 switch-crash node=3 id=9\nt=5 switch-recover node=3 id=2\n"
	evs, err := ParseTimeline(src)
	if err != nil {
		t.Fatal(err)
	}
	// Equal times: canonical order is by Seq, so the recover (id=2) sorts
	// first.
	if evs[0].Kind != SwitchRecover || evs[0].Seq != 2 || evs[1].Seq != 9 {
		t.Fatalf("explicit IDs not honored: %+v", evs)
	}
	again, err := ParseTimeline(Format(evs))
	if err != nil {
		t.Fatalf("re-parse formatted timeline: %v", err)
	}
	if !reflect.DeepEqual(evs, again) {
		t.Errorf("explicit-ID round trip diverged:\n%v\n%v", evs, again)
	}
}

// FuzzParseTimeline is the fuzz-style corpus check: whatever the input,
// the parser must never panic, and any accepted timeline must round-trip
// through Format into the identical event list.
func FuzzParseTimeline(f *testing.F) {
	for _, seed := range []string{
		"",
		"# comment only\n",
		"t=5 switch-degrade node=3 factor=0.25\nt=12.5 switch-crash node=9",
		"t=20 link-degrade link=2-7 factor=0.5\nt=45 link-recover link=2-7",
		"t=30 server-crash node=21\nt=50 server-recover node=21",
		"t=5 switch-crash node=3 id=9\nt=5 switch-recover node=3 id=2",
		"t=10 switch-crash node=3\nt=5 switch-recover node=3",
		"t=5 switch-crash node=3 id=7\nt=6 switch-recover node=3 id=7",
		"t=1e3 switch-crash node=0",
		"t=5 melt node=3",
		"t=5 switch-crash node=3 color=red",
		"t=\x00nope",
		strings.Repeat("t=1 switch-crash node=1 id=1\n", 3),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		evs, err := ParseTimeline(src)
		if err != nil {
			return // rejection is fine; not panicking is the invariant
		}
		out := Format(evs)
		again, err := ParseTimeline(out)
		if err != nil {
			t.Fatalf("Format output rejected: %v\n%q", err, out)
		}
		if !reflect.DeepEqual(evs, again) {
			t.Fatalf("round trip diverged for %q:\n%v\n%v", src, evs, again)
		}
	})
}
