// Package faults is the deterministic fault-injection engine: a scripted
// timeline of typed fabric events (switch crash / capacity degrade /
// recover, link degradation, server crash / recover) plus a hash-seeded
// task-level model (map attempt failures, straggler slowdowns). Timelines
// are generated from an injected *rand.Rand or parsed from a declarative
// text spec; either way the same inputs always produce the same schedule,
// so a faulty run replays bit-identically from its seed.
//
// The package splits responsibilities three ways:
//
//   - Plan / GenerateTimeline / ParseTimeline: WHAT goes wrong and when.
//   - Injector: applies a fabric event to the topology + cluster and
//     remembers every nominal value it overwrote, so recovery events (and
//     RestoreAll at end of run) put the fabric back exactly.
//   - Reactor helpers (reactor.go): how the policy layer recovers —
//     re-solving installed routes that traverse a dead switch and shedding
//     load until no switch is over capacity.
//
// Task-level randomness (TaskModel) is hash-based rather than stream-based:
// each (job, task, attempt) draw is a pure function of the model seed, so
// the outcome does not depend on the order the simulator happens to ask —
// retries and speculative backups cannot shift any other task's luck.
package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/topology"
)

// Kind enumerates fabric event types.
type Kind int

const (
	// SwitchCrash marks a switch dead: it leaves every routing structure
	// (liveness mask) and its capacity drops to zero until recovery.
	SwitchCrash Kind = iota
	// SwitchDegrade multiplies a switch's processing capacity by Factor.
	SwitchDegrade
	// SwitchRecover restores a switch's liveness and nominal capacity.
	SwitchRecover
	// LinkDegrade multiplies a link's bandwidth by Factor.
	LinkDegrade
	// LinkRecover restores a link's nominal bandwidth.
	LinkRecover
	// ServerCrash kills a server: its containers are evicted, its capacity
	// drops to zero and it leaves the liveness mask.
	ServerCrash
	// ServerRecover restores a server's liveness and nominal resources.
	ServerRecover
)

var kindNames = map[Kind]string{
	SwitchCrash:   "switch-crash",
	SwitchDegrade: "switch-degrade",
	SwitchRecover: "switch-recover",
	LinkDegrade:   "link-degrade",
	LinkRecover:   "link-recover",
	ServerCrash:   "server-crash",
	ServerRecover: "server-recover",
}

// String returns the declarative-spec name of the kind.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one scheduled fabric fault or recovery.
type Event struct {
	// Time is when the event fires, in the simulator's T unit.
	Time float64
	// Kind selects the event type.
	Kind Kind
	// Node targets switch and server events.
	Node topology.NodeID
	// A, B target link events.
	A, B topology.NodeID
	// Factor is the degrade multiplier in (0, 1] for *Degrade events.
	Factor float64
	// Seq breaks time ties deterministically (generation order).
	Seq int
}

// Plan is a complete fault schedule for one run: the fabric timeline plus
// the task-level model. The zero value (and nil) injects nothing.
type Plan struct {
	// Events must be in timeline order (SortEvents).
	Events []Event
	// Tasks models per-attempt map failures and stragglers.
	Tasks TaskModel
}

// Empty reports whether the plan injects no fabric events and no
// task-level faults.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Events) == 0 && p.Tasks.Inert())
}

// SortEvents orders events by (Time, Seq) — the canonical timeline order.
func SortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Time != evs[j].Time { //taalint:floateq exact-tie ordering; Seq breaks genuine ties deterministically

			return evs[i].Time < evs[j].Time
		}
		return evs[i].Seq < evs[j].Seq
	})
}

// Spec parameterizes GenerateTimeline.
type Spec struct {
	// Horizon is the timeline span: every fault fires in [0, Horizon).
	Horizon float64
	// Rate is the expected number of fabric faults per 100 T of horizon.
	Rate float64
	// Severity in (0, 1] scales degrade events: a degraded component keeps
	// (1 − Severity) of its nominal capacity/bandwidth (floored at 5%).
	Severity float64
	// MTTR is the mean downtime; each fault's recovery fires MTTR × [0.5,
	// 1.5) after it (uniform, from the generator's rng).
	MTTR float64
	// Mix weights for the four fault classes; all zero selects the default
	// mix (2 switch-degrade : 1 switch-crash : 1 link-degrade : 1
	// server-crash).
	SwitchCrashW, SwitchDegradeW, LinkDegradeW, ServerCrashW float64
}

func (s Spec) withDefaults() Spec {
	if s.Horizon <= 0 {
		s.Horizon = 100
	}
	if s.Severity <= 0 || s.Severity > 1 {
		s.Severity = 0.5
	}
	if s.MTTR <= 0 {
		s.MTTR = s.Horizon / 4
	}
	if s.SwitchCrashW == 0 && s.SwitchDegradeW == 0 && s.LinkDegradeW == 0 && s.ServerCrashW == 0 { //taalint:floateq zero weights are the explicit "use default mix" sentinel

		s.SwitchCrashW, s.SwitchDegradeW, s.LinkDegradeW, s.ServerCrashW = 1, 2, 1, 1
	}
	return s
}

// degradeFactor converts severity to the surviving-capacity multiplier.
func (s Spec) degradeFactor() float64 {
	f := 1 - s.Severity
	if f < 0.05 {
		f = 0.05
	}
	return f
}

// crashableSwitches returns switches safe to crash outright: above the
// access tier and with at least one live same-type sibling, so same-type
// rerouting (the paper's Figure 2 scenario) stays possible.
func crashableSwitches(topo *topology.Topology) []topology.NodeID {
	byType := make(map[string]int)
	for _, w := range topo.Switches() {
		if topo.Alive(w) {
			byType[topo.Node(w).Type]++
		}
	}
	var out []topology.NodeID
	for _, w := range topo.Switches() {
		n := topo.Node(w)
		if topo.Alive(w) && n.Tier > 0 && byType[n.Type] > 1 {
			out = append(out, w)
		}
	}
	return out
}

// GenerateTimeline draws a randomized fault schedule from rng: round(Rate ×
// Horizon / 100) faults at uniform times, each paired with a recovery event
// MTTR × [0.5, 1.5) later (clamped inside the horizon is NOT enforced —
// recoveries may land past Horizon, which a run applies at its end). The
// draw sequence is fixed, so one rng seed always yields one timeline.
func GenerateTimeline(rng *rand.Rand, topo *topology.Topology, spec Spec) []Event {
	spec = spec.withDefaults()
	n := int(spec.Rate*spec.Horizon/100 + 0.5)
	crashable := crashableSwitches(topo)
	switches := topo.Switches()
	servers := topo.Servers()
	links := topo.Links()
	total := spec.SwitchCrashW + spec.SwitchDegradeW + spec.LinkDegradeW + spec.ServerCrashW
	factor := spec.degradeFactor()

	var evs []Event
	seq := 0
	emit := func(ev Event) {
		ev.Seq = seq
		seq++
		evs = append(evs, ev)
	}
	for i := 0; i < n; i++ {
		t := rng.Float64() * spec.Horizon
		up := t + spec.MTTR*(0.5+rng.Float64())
		pick := rng.Float64() * total
		switch {
		case pick < spec.SwitchCrashW && len(crashable) > 0:
			w := crashable[rng.Intn(len(crashable))]
			emit(Event{Time: t, Kind: SwitchCrash, Node: w})
			emit(Event{Time: up, Kind: SwitchRecover, Node: w})
		case pick < spec.SwitchCrashW+spec.SwitchDegradeW && len(switches) > 0:
			w := switches[rng.Intn(len(switches))]
			emit(Event{Time: t, Kind: SwitchDegrade, Node: w, Factor: factor})
			emit(Event{Time: up, Kind: SwitchRecover, Node: w})
		case pick < spec.SwitchCrashW+spec.SwitchDegradeW+spec.LinkDegradeW && len(links) > 0:
			l := links[rng.Intn(len(links))]
			emit(Event{Time: t, Kind: LinkDegrade, A: l.A, B: l.B, Factor: factor})
			emit(Event{Time: up, Kind: LinkRecover, A: l.A, B: l.B})
		case len(servers) > 0:
			s := servers[rng.Intn(len(servers))]
			emit(Event{Time: t, Kind: ServerCrash, Node: s})
			emit(Event{Time: up, Kind: ServerRecover, Node: s})
		}
	}
	SortEvents(evs)
	return evs
}
