package faults

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/controller"
	"repro/internal/flow"
	"repro/internal/topology"
)

// reactorEnv installs cross-pod flows via OptimizeBetween so the reactor
// has recorded endpoints to re-solve from.
func reactorEnv(t *testing.T) (*topology.Topology, *controller.Controller, []FlowEndpoints) {
	t.Helper()
	topo := testFatTree(t)
	ctl := controller.New(topo)
	srv := topo.Servers()
	var eps []FlowEndpoints
	pairs := [][2]int{{0, 15}, {1, 14}, {2, 13}}
	for i, pr := range pairs {
		f := &flow.Flow{ID: flow.ID(i), Src: 1, Dst: 2, SizeGB: 5, Rate: 5}
		p, err := ctl.OptimizeBetween(f, srv[pr[0]], srv[pr[1]])
		if err != nil {
			t.Fatalf("OptimizeBetween flow %d: %v", i, err)
		}
		if err := ctl.Install(f, p); err != nil {
			t.Fatalf("Install flow %d: %v", i, err)
		}
		eps = append(eps, FlowEndpoints{Flow: f, Src: srv[pr[0]], Dst: srv[pr[1]]})
	}
	return topo, ctl, eps
}

// midSwitchOf returns the first above-access switch in the flow's policy.
func midSwitchOf(t *testing.T, ctl *controller.Controller, topo *topology.Topology, id flow.ID) topology.NodeID {
	t.Helper()
	p := ctl.Policy(id)
	if p == nil {
		t.Fatalf("flow %d has no policy", id)
	}
	for _, w := range p.List {
		if topo.Node(w).Tier > 0 {
			return w
		}
	}
	t.Fatalf("flow %d policy %v has no above-access switch", id, p.List)
	return topology.None
}

func assertInvariants(t *testing.T, ctl *controller.Controller, topo *topology.Topology) {
	t.Helper()
	for id, p := range ctl.Policies() {
		for _, w := range p.List {
			if !topo.Alive(w) {
				t.Errorf("flow %d policy traverses dead switch %d", id, w)
			}
		}
	}
	if over := ctl.OverloadedSwitches(); len(over) != 0 {
		t.Errorf("switches still over capacity: %v", over)
	}
}

func TestChaosReactorReroutesOffDeadSwitch(t *testing.T) {
	topo, ctl, eps := reactorEnv(t)
	inj := NewInjector(topo, nil)

	dead := midSwitchOf(t, ctl, topo, 0)
	if _, err := inj.Apply(Event{Kind: SwitchCrash, Node: dead}); err != nil {
		t.Fatalf("crash: %v", err)
	}
	res, err := React(ctl, eps)
	if err != nil {
		t.Fatalf("React: %v", err)
	}
	if res.Rerouted == 0 {
		t.Error("no flow rerouted off the dead switch")
	}
	if len(res.Dropped) != 0 {
		t.Errorf("dropped flows %v on a fabric with live siblings", res.Dropped)
	}
	assertInvariants(t, ctl, topo)

	// Recovery plus a second pass is a no-op on a healthy fabric.
	if _, err := inj.Apply(Event{Kind: SwitchRecover, Node: dead}); err != nil {
		t.Fatal(err)
	}
	res, err = React(ctl, eps)
	if err != nil {
		t.Fatalf("React after recovery: %v", err)
	}
	if res.Rerouted != 0 || len(res.Dropped) != 0 {
		t.Errorf("healthy fabric pass touched flows: %+v", res)
	}
	assertInvariants(t, ctl, topo)
}

func TestChaosReactorShedsOverload(t *testing.T) {
	topo, ctl, eps := reactorEnv(t)
	inj := NewInjector(topo, nil)

	// Degrade a loaded switch below its carried rate: React must move the
	// victim to a sibling (or shed it) until nothing is over capacity.
	w := midSwitchOf(t, ctl, topo, 1)
	if _, err := inj.Apply(Event{Kind: SwitchDegrade, Node: w, Factor: 0.01}); err != nil {
		t.Fatalf("degrade: %v", err)
	}
	if len(ctl.OverloadedSwitches()) == 0 {
		t.Fatal("degrade did not overload the switch — test premise broken")
	}
	res, err := React(ctl, eps)
	if err != nil {
		t.Fatalf("React: %v", err)
	}
	if res.Rerouted+len(res.Dropped) == 0 {
		t.Error("overload cleared without touching any flow")
	}
	assertInvariants(t, ctl, topo)
}

func TestChaosReactorDropsUnroutableFlow(t *testing.T) {
	topo, ctl, eps := reactorEnv(t)
	inj := NewInjector(topo, nil)

	// Kill the access switch of flow 2's source server: no route can exist,
	// so the reactor must shed the flow rather than error out.
	acc := topo.AccessSwitch(eps[2].Src)
	if acc == topology.None {
		t.Fatal("source server has no access switch")
	}
	if _, err := inj.Apply(Event{Kind: SwitchCrash, Node: acc}); err != nil {
		t.Fatalf("crash: %v", err)
	}
	res, err := React(ctl, eps)
	if err != nil {
		t.Fatalf("React: %v", err)
	}
	found := false
	for _, id := range res.Dropped {
		if id == eps[2].Flow.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("flow %d should have been dropped, got %+v", eps[2].Flow.ID, res)
	}
	if ctl.Policy(eps[2].Flow.ID) != nil {
		t.Error("dropped flow still has an installed policy")
	}
	assertInvariants(t, ctl, topo)
}

// TestChaosInjectorReplayBitIdentical drives a generated timeline through
// two independent fabrics and demands bit-identical state at every step.
func TestChaosInjectorReplayBitIdentical(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		spec := Spec{Horizon: 100, Rate: 10, Severity: 0.7}
		run := func() [][]uint64 {
			topo := testFatTree(t)
			evs := GenerateTimeline(rand.New(rand.NewSource(seed)), topo, spec)
			inj := NewInjector(topo, nil)
			var trace [][]uint64
			for _, ev := range evs {
				if ev.Kind == ServerCrash || ev.Kind == ServerRecover {
					continue // network-only injector in this test
				}
				if _, err := inj.Apply(ev); err != nil {
					t.Fatalf("seed %d apply %v: %v", seed, ev, err)
				}
				var fp []uint64
				for _, w := range topo.Switches() {
					fp = append(fp, math.Float64bits(topo.Node(w).Capacity))
				}
				for _, l := range topo.Links() {
					fp = append(fp, math.Float64bits(l.Bandwidth))
				}
				trace = append(trace, fp)
			}
			return trace
		}
		if !reflect.DeepEqual(run(), run()) {
			t.Errorf("seed %d: replay diverged", seed)
		}
	}
}
