package faults

// TaskModel draws per-attempt task faults as pure hash functions of
// (seed, job, task, attempt): every draw is independent of query order, so
// a retry or speculative launch cannot shift any other task's outcome —
// the property that keeps faulty runs bit-identical under replay.
type TaskModel struct {
	// FailureProb is the probability any single map attempt fails and must
	// be re-executed.
	FailureProb float64
	// RetryBudget caps re-executions per task; zero selects 3. When every
	// attempt up to the budget fails, the task — and its job — is marked
	// failed and accounted in the run report.
	RetryBudget int
	// BackoffT is the delay before retry k (doubling per attempt:
	// BackoffT × 2^(k−1)); zero selects 1 T.
	BackoffT float64
	// StragglerProb is the per-attempt straggler probability.
	StragglerProb float64
	// StragglerFactor is the straggler slowdown multiplier; zero selects 3.
	StragglerFactor float64
	// SpeculationThreshold is the slowdown (observed / nominal duration)
	// past which a speculative backup launches; zero selects 1.5.
	SpeculationThreshold float64
	// Speculation enables backup launches for stragglers (first finisher
	// wins; see sim's fault path).
	Speculation bool
	// Seed keys every hash draw.
	Seed uint64
}

// Inert reports whether the model never perturbs any task.
func (m TaskModel) Inert() bool {
	return m.FailureProb <= 0 && m.StragglerProb <= 0
}

func (m TaskModel) retryBudget() int {
	if m.RetryBudget <= 0 {
		return 3
	}
	return m.RetryBudget
}

func (m TaskModel) backoffT() float64 {
	if m.BackoffT <= 0 {
		return 1
	}
	return m.BackoffT
}

func (m TaskModel) stragglerFactor() float64 {
	if m.StragglerFactor <= 0 {
		return 3
	}
	return m.StragglerFactor
}

func (m TaskModel) speculationThreshold() float64 {
	if m.SpeculationThreshold <= 0 {
		return 1.5
	}
	return m.SpeculationThreshold
}

// splitmix64's finalizer: a bijective avalanche over uint64.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// salts separate the failure and straggler draw families.
const (
	saltFailure   = 0x8af6_0626_3a1b_9c7d
	saltStraggler = 0xd1b5_4a32_d192_ed03
)

// u01 maps (seed, salt, job, task, attempt) to [0, 1) with 53-bit
// precision.
func (m TaskModel) u01(salt uint64, jobID, index, attempt int) float64 {
	h := mix64(m.Seed ^ salt)
	h = mix64(h ^ uint64(int64(jobID)))
	h = mix64(h ^ uint64(int64(index)))
	h = mix64(h ^ uint64(int64(attempt)))
	return float64(h>>11) / (1 << 53)
}

// AttemptFails reports whether attempt `attempt` (0-based) of map task
// (jobID, index) fails.
func (m TaskModel) AttemptFails(jobID, index, attempt int) bool {
	return m.FailureProb > 0 && m.u01(saltFailure, jobID, index, attempt) < m.FailureProb
}

// Straggles reports whether the attempt runs StragglerFactor× slow.
func (m TaskModel) Straggles(jobID, index, attempt int) bool {
	return m.StragglerProb > 0 && m.u01(saltStraggler, jobID, index, attempt) < m.StragglerProb
}

// RetryDelay is the deterministic backoff before re-execution `attempt`
// (1-based: the delay preceding that attempt).
func (m TaskModel) RetryDelay(attempt int) float64 {
	d := m.backoffT()
	for k := 1; k < attempt; k++ {
		d *= 2
	}
	return d
}

// AttemptDuration resolves one attempt's wall time from its nominal
// duration d: stragglers run stragglerFactor× slower; with speculation on
// and the slowdown past the threshold, a backup launches (launched) and
// the winner finishes at min(straggled, threshold + nominal) — the backup
// starts once the slowdown is detected and runs a nominal-length copy.
// won reports the backup finishing first.
func (m TaskModel) AttemptDuration(d float64, jobID, index, attempt int) (dur float64, straggled, launched, won bool) {
	if !m.Straggles(jobID, index, attempt) {
		return d, false, false, false
	}
	slow := d * m.stragglerFactor()
	if !m.Speculation || m.stragglerFactor() <= m.speculationThreshold() {
		return slow, true, false, false
	}
	backup := d*m.speculationThreshold() + d
	if backup < slow {
		return backup, true, true, true
	}
	return slow, true, true, false
}
