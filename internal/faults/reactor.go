package faults

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/controller"
	"repro/internal/flow"
	"repro/internal/topology"
)

// FlowEndpoints pins a flow to the servers its endpoints resided on when
// its policy was recorded — the locator-free handle the reactor needs,
// since the containers behind a recorded flow may already be released.
type FlowEndpoints struct {
	Flow     *flow.Flow
	Src, Dst topology.NodeID
}

// ReactResult summarizes one recovery pass.
type ReactResult struct {
	// Rerouted counts policies re-solved off dead switches plus flows moved
	// by the capacity pass.
	Rerouted int
	// Dropped lists flows whose policy had to be shed (no feasible
	// alternative), ascending. They carry no installed policy afterwards.
	Dropped []flow.ID
}

// React restores the two policy-layer invariants after fabric events:
// (1) no installed policy traverses a dead switch, and (2) no switch
// carries more load than its (possibly degraded) capacity. Unroutable or
// unsheddable flows are uninstalled and reported dropped rather than left
// violating either invariant, so the pass always terminates with a clean
// fabric. Flows absent from eps cannot be touched; if such a flow pins an
// overload in place, React returns an error.
func React(ctl *controller.Controller, eps []FlowEndpoints) (ReactResult, error) {
	var res ReactResult
	byID := make(map[flow.ID]FlowEndpoints, len(eps))
	for _, ep := range eps {
		byID[ep.Flow.ID] = ep
	}
	topo := ctl.Topology()

	// Pass 1: policies through dead switches, in flow-ID order.
	ids := make([]flow.ID, 0, len(eps))
	for _, ep := range eps {
		ids = append(ids, ep.Flow.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := ctl.Policy(id)
		if p == nil {
			continue
		}
		dead := false
		for _, w := range p.List {
			if !topo.Alive(w) {
				dead = true
				break
			}
		}
		if !dead {
			continue
		}
		ep := byID[id]
		ctl.Uninstall(id)
		opt, err := ctl.OptimizeBetween(ep.Flow, ep.Src, ep.Dst)
		if err != nil {
			if errors.Is(err, controller.ErrNoFeasibleSwitch) || errors.Is(err, controller.ErrNoFeasibleRoute) {
				res.Dropped = append(res.Dropped, id)
				continue
			}
			return res, err
		}
		if err := ctl.Install(ep.Flow, opt); err != nil {
			return res, fmt.Errorf("faults: reinstall rerouted flow %d: %w", id, err)
		}
		res.Rerouted++
	}

	// Pass 2: shed overload. Mirrors controller.RebalanceOverloaded's
	// victim choice (largest rate through the first overloaded switch,
	// flow-ID tie-break) but degrades to dropping the victim when no
	// feasible reroute exists — the zero-overload guarantee.
	for guard := 0; ; guard++ {
		over := ctl.OverloadedSwitches()
		if len(over) == 0 {
			return res, nil
		}
		if guard > len(eps)+ctl.NumPolicies()+1 {
			return res, fmt.Errorf("faults: overload shedding did not converge")
		}
		w := over[0]
		var victim FlowEndpoints
		found := false
		for _, id := range ids {
			p := ctl.Policy(id)
			if p == nil {
				continue
			}
			onW := false
			for _, sw := range p.List {
				if sw == w {
					onW = true
					break
				}
			}
			if onW {
				ep := byID[id]
				if !found || ep.Flow.Rate > victim.Flow.Rate {
					victim, found = ep, true
				}
			}
		}
		if !found {
			return res, fmt.Errorf("faults: switch %d overloaded by flows outside the reactor's set", w)
		}
		ctl.Uninstall(victim.Flow.ID)
		opt, err := ctl.OptimizeBetween(victim.Flow, victim.Src, victim.Dst)
		if err == nil {
			if insErr := ctl.Install(victim.Flow, opt); insErr == nil {
				res.Rerouted++
				continue
			}
		} else if !errors.Is(err, controller.ErrNoFeasibleSwitch) && !errors.Is(err, controller.ErrNoFeasibleRoute) {
			return res, err
		}
		// No feasible home: the flow stays uninstalled (load shed).
		res.Dropped = append(res.Dropped, victim.Flow.ID)
	}
}
