package faults

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/topology"
)

type linkKey struct{ a, b topology.NodeID }

func canonLink(a, b topology.NodeID) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// Injector applies fabric events to a topology (+ optional cluster) and
// remembers every nominal value it overwrites, so recovery events — and
// RestoreAll at the end of a run — put the fabric back exactly as built.
// Crash/degrade events are idempotent: re-crashing a dead component or
// recovering a healthy one is a no-op on the remembered nominals.
type Injector struct {
	topo *topology.Topology
	cl   *cluster.Cluster // may be nil for pure network scenarios

	nominalCap map[topology.NodeID]float64
	nominalBW  map[linkKey]float64
	nominalRes map[topology.NodeID]cluster.Resources
}

// NewInjector builds an injector over the fabric. cl may be nil when no
// server events will be applied.
func NewInjector(topo *topology.Topology, cl *cluster.Cluster) *Injector {
	return &Injector{
		topo:       topo,
		cl:         cl,
		nominalCap: make(map[topology.NodeID]float64),
		nominalBW:  make(map[linkKey]float64),
		nominalRes: make(map[topology.NodeID]cluster.Resources),
	}
}

func (in *Injector) rememberCap(w topology.NodeID) {
	if _, ok := in.nominalCap[w]; !ok {
		in.nominalCap[w] = in.topo.Node(w).Capacity
	}
}

func (in *Injector) rememberBW(a, b topology.NodeID) error {
	k := canonLink(a, b)
	if _, ok := in.nominalBW[k]; ok {
		return nil
	}
	l, ok := in.topo.Link(a, b)
	if !ok {
		return fmt.Errorf("faults: no link %d-%d", a, b)
	}
	in.nominalBW[k] = l.Bandwidth
	return nil
}

// Apply executes one event. For ServerCrash it returns the evicted
// containers (ascending ID); every other kind returns nil. Every fabric
// mutation routes through the blessed topology setters (SetSwitchCapacity,
// SetLinkBandwidth, SetNodeAlive) so the matching epoch bump is statically
// guaranteed — taalint's epochbump check rejects any direct field write.
func (in *Injector) Apply(ev Event) ([]cluster.ContainerID, error) {
	switch ev.Kind {
	case SwitchCrash:
		if !in.topo.Alive(ev.Node) {
			return nil, nil
		}
		in.rememberCap(ev.Node)
		if err := in.topo.SetSwitchCapacity(ev.Node, 0); err != nil {
			return nil, err
		}
		return nil, in.topo.SetNodeAlive(ev.Node, false)

	case SwitchDegrade:
		if ev.Factor <= 0 || ev.Factor > 1 {
			return nil, fmt.Errorf("faults: switch-degrade factor %v out of (0,1]", ev.Factor)
		}
		in.rememberCap(ev.Node)
		return nil, in.topo.SetSwitchCapacity(ev.Node, in.nominalCap[ev.Node]*ev.Factor)

	case SwitchRecover:
		if err := in.topo.SetNodeAlive(ev.Node, true); err != nil {
			return nil, err
		}
		if nom, ok := in.nominalCap[ev.Node]; ok {
			return nil, in.topo.SetSwitchCapacity(ev.Node, nom)
		}
		return nil, nil

	case LinkDegrade:
		if ev.Factor <= 0 || ev.Factor > 1 {
			return nil, fmt.Errorf("faults: link-degrade factor %v out of (0,1]", ev.Factor)
		}
		if err := in.rememberBW(ev.A, ev.B); err != nil {
			return nil, err
		}
		return nil, in.topo.SetLinkBandwidth(ev.A, ev.B, in.nominalBW[canonLink(ev.A, ev.B)]*ev.Factor)

	case LinkRecover:
		if nom, ok := in.nominalBW[canonLink(ev.A, ev.B)]; ok {
			return nil, in.topo.SetLinkBandwidth(ev.A, ev.B, nom)
		}
		return nil, nil

	case ServerCrash:
		if !in.topo.Alive(ev.Node) {
			return nil, nil
		}
		if in.cl == nil {
			return nil, fmt.Errorf("faults: server event without a cluster")
		}
		evicted := append([]cluster.ContainerID(nil), in.cl.ContainersOn(ev.Node)...)
		sort.Slice(evicted, func(i, j int) bool { return evicted[i] < evicted[j] })
		for _, c := range evicted {
			if err := in.cl.Unplace(c); err != nil {
				return nil, err
			}
		}
		if _, ok := in.nominalRes[ev.Node]; !ok {
			in.nominalRes[ev.Node] = in.cl.Capacity(ev.Node)
		}
		if err := in.cl.SetServerCapacity(ev.Node, cluster.Resources{}); err != nil {
			return nil, err
		}
		return evicted, in.topo.SetNodeAlive(ev.Node, false)

	case ServerRecover:
		if in.cl == nil {
			return nil, fmt.Errorf("faults: server event without a cluster")
		}
		if err := in.topo.SetNodeAlive(ev.Node, true); err != nil {
			return nil, err
		}
		if nom, ok := in.nominalRes[ev.Node]; ok {
			return nil, in.cl.SetServerCapacity(ev.Node, nom)
		}
		return nil, nil

	default:
		return nil, fmt.Errorf("faults: unknown event kind %d", int(ev.Kind))
	}
}

// RestoreAll revives every component and restores every remembered nominal
// value — the end-of-run cleanup that keeps an engine reusable.
func (in *Injector) RestoreAll() error {
	caps := make([]topology.NodeID, 0, len(in.nominalCap))
	for w := range in.nominalCap {
		caps = append(caps, w)
	}
	sort.Slice(caps, func(i, j int) bool { return caps[i] < caps[j] })
	for _, w := range caps {
		if err := in.topo.SetNodeAlive(w, true); err != nil {
			return err
		}
		if err := in.topo.SetSwitchCapacity(w, in.nominalCap[w]); err != nil {
			return err
		}
	}
	bws := make([]linkKey, 0, len(in.nominalBW))
	for k := range in.nominalBW {
		bws = append(bws, k)
	}
	sort.Slice(bws, func(i, j int) bool {
		if bws[i].a != bws[j].a {
			return bws[i].a < bws[j].a
		}
		return bws[i].b < bws[j].b
	})
	for _, k := range bws {
		if err := in.topo.SetLinkBandwidth(k.a, k.b, in.nominalBW[k]); err != nil {
			return err
		}
	}
	srvs := make([]topology.NodeID, 0, len(in.nominalRes))
	for s := range in.nominalRes {
		srvs = append(srvs, s)
	}
	sort.Slice(srvs, func(i, j int) bool { return srvs[i] < srvs[j] })
	for _, s := range srvs {
		if err := in.topo.SetNodeAlive(s, true); err != nil {
			return err
		}
		if err := in.cl.SetServerCapacity(s, in.nominalRes[s]); err != nil {
			return err
		}
	}
	return nil
}
