package faults

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/topology"
)

func testFatTree(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.NewFatTree(4, topology.LinkParams{Bandwidth: 10, Latency: 0.1, SwitchCapacity: 100})
	if err != nil {
		t.Fatalf("NewFatTree: %v", err)
	}
	return topo
}

func TestParseFormatRoundTrip(t *testing.T) {
	src := `
# pod failure drill
t=5 switch-degrade node=3 factor=0.25
t=12.5 switch-crash node=9
t=20 link-degrade link=2-7 factor=0.5
t=30 server-crash node=21
t=40 switch-recover node=9
t=45 link-recover link=2-7
t=50 server-recover node=21
t=55 switch-recover node=3
`
	evs, err := ParseTimeline(src)
	if err != nil {
		t.Fatalf("ParseTimeline: %v", err)
	}
	if len(evs) != 8 {
		t.Fatalf("parsed %d events, want 8", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatalf("events not in timeline order at %d", i)
		}
	}
	if evs[0].Kind != SwitchDegrade || evs[0].Node != 3 || evs[0].Factor != 0.25 {
		t.Errorf("first event = %+v", evs[0])
	}
	if evs[2].Kind != LinkDegrade || evs[2].A != 2 || evs[2].B != 7 {
		t.Errorf("link event = %+v", evs[2])
	}

	again, err := ParseTimeline(Format(evs))
	if err != nil {
		t.Fatalf("re-parse formatted timeline: %v", err)
	}
	if !reflect.DeepEqual(evs, again) {
		t.Errorf("format/parse round trip diverged:\n%v\n%v", evs, again)
	}
}

func TestParseTimelineErrors(t *testing.T) {
	for _, bad := range []string{
		"switch-crash node=3",                  // missing t=
		"t=5 melt node=3",                      // unknown kind
		"t=-1 switch-crash node=3",             // negative time
		"t=5 switch-crash",                     // missing node
		"t=5 link-degrade node=3",              // link kind without link=
		"t=5 switch-degrade node=3 factor=1.5", // factor out of range
		"t=5 switch-crash node=3 color=red",    // unknown field
	} {
		if _, err := ParseTimeline(bad); err == nil {
			t.Errorf("ParseTimeline(%q) accepted invalid input", bad)
		}
	}
}

func TestGenerateTimelineDeterministic(t *testing.T) {
	topo := testFatTree(t)
	spec := Spec{Horizon: 100, Rate: 8, Severity: 0.6}
	a := GenerateTimeline(rand.New(rand.NewSource(42)), topo, spec)
	b := GenerateTimeline(rand.New(rand.NewSource(42)), topo, spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different timelines")
	}
	c := GenerateTimeline(rand.New(rand.NewSource(43)), topo, spec)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical timelines")
	}
	if len(a) == 0 {
		t.Fatal("rate 8 over horizon 100 produced no events")
	}

	// Every fault must be paired with a later recovery of the same target,
	// and outright crashes must only hit crashable switches.
	crashable := make(map[topology.NodeID]bool)
	for _, w := range crashableSwitches(topo) {
		crashable[w] = true
	}
	recoverSeen := make(map[topology.NodeID]float64)
	for _, ev := range a {
		switch ev.Kind {
		case SwitchCrash:
			if !crashable[ev.Node] {
				t.Errorf("crash targets non-crashable switch %d", ev.Node)
			}
		case SwitchRecover, ServerRecover:
			recoverSeen[ev.Node] = ev.Time
		}
	}
	for _, ev := range a {
		if ev.Kind == SwitchCrash || ev.Kind == ServerCrash {
			up, ok := recoverSeen[ev.Node]
			if !ok || up < ev.Time {
				t.Errorf("%s of %d at t=%v has no later recovery", ev.Kind, ev.Node, ev.Time)
			}
		}
	}
}

func TestInjectorRestoresNominals(t *testing.T) {
	topo := testFatTree(t)
	cl, err := cluster.New(topo, cluster.Resources{CPU: 4, Memory: 8192})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	srv := topo.Servers()[2]
	ct, err := cl.NewContainer(cluster.Resources{CPU: 1, Memory: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Place(ct.ID, srv); err != nil {
		t.Fatal(err)
	}

	fingerprint := func() []uint64 {
		var fp []uint64
		for _, w := range topo.Switches() {
			fp = append(fp, math.Float64bits(topo.Node(w).Capacity))
			if topo.Alive(w) {
				fp = append(fp, 1)
			} else {
				fp = append(fp, 0)
			}
		}
		for _, l := range topo.Links() {
			fp = append(fp, math.Float64bits(l.Bandwidth))
		}
		for _, s := range topo.Servers() {
			fp = append(fp, uint64(cl.Capacity(s).CPU), uint64(cl.Capacity(s).Memory))
		}
		return fp
	}
	pristine := fingerprint()

	inj := NewInjector(topo, cl)
	w := topo.Switches()[0]
	w2 := topo.Switches()[5]
	l := topo.Links()[0]

	if _, err := inj.Apply(Event{Kind: SwitchCrash, Node: w2}); err != nil {
		t.Fatalf("SwitchCrash: %v", err)
	}
	if topo.Alive(w2) || topo.Node(w2).Capacity != 0 {
		t.Fatalf("crashed switch alive=%v cap=%v", topo.Alive(w2), topo.Node(w2).Capacity)
	}
	// Re-crashing a dead switch must not clobber the remembered nominal.
	if _, err := inj.Apply(Event{Kind: SwitchCrash, Node: w2}); err != nil {
		t.Fatalf("idempotent SwitchCrash: %v", err)
	}
	if _, err := inj.Apply(Event{Kind: SwitchDegrade, Node: w, Factor: 0.3}); err != nil {
		t.Fatalf("SwitchDegrade: %v", err)
	}
	if got := topo.Node(w).Capacity; got != 30 {
		t.Fatalf("degraded capacity = %v, want 30", got)
	}
	if _, err := inj.Apply(Event{Kind: LinkDegrade, A: l.A, B: l.B, Factor: 0.5}); err != nil {
		t.Fatalf("LinkDegrade: %v", err)
	}
	evicted, err := inj.Apply(Event{Kind: ServerCrash, Node: srv})
	if err != nil {
		t.Fatalf("ServerCrash: %v", err)
	}
	if len(evicted) != 1 || evicted[0] != ct.ID {
		t.Fatalf("evicted = %v, want [%d]", evicted, ct.ID)
	}
	if topo.Alive(srv) || cl.Capacity(srv) != (cluster.Resources{}) {
		t.Fatal("crashed server still alive or has capacity")
	}

	// Targeted recoveries restore exact nominals.
	if _, err := inj.Apply(Event{Kind: SwitchRecover, Node: w2}); err != nil {
		t.Fatal(err)
	}
	if !topo.Alive(w2) || topo.Node(w2).Capacity != 100 {
		t.Fatalf("recovered switch alive=%v cap=%v", topo.Alive(w2), topo.Node(w2).Capacity)
	}

	if err := inj.RestoreAll(); err != nil {
		t.Fatalf("RestoreAll: %v", err)
	}
	if got := fingerprint(); !reflect.DeepEqual(got, pristine) {
		t.Error("RestoreAll did not return the fabric to its pristine state")
	}
}

func TestTaskModelHashDraws(t *testing.T) {
	m := TaskModel{FailureProb: 0.3, StragglerProb: 0.2, Seed: 77}

	// Draws are pure: query order and repetition cannot change outcomes.
	first := make([]bool, 0, 24)
	for job := 0; job < 2; job++ {
		for idx := 0; idx < 3; idx++ {
			for att := 0; att < 2; att++ {
				first = append(first, m.AttemptFails(job, idx, att), m.Straggles(job, idx, att))
			}
		}
	}
	second := make([]bool, 0, 24)
	for att := 1; att >= 0; att-- {
		for idx := 2; idx >= 0; idx-- {
			for job := 1; job >= 0; job-- {
				second = append(second, m.AttemptFails(job, idx, att), m.Straggles(job, idx, att))
			}
		}
	}
	// Reverse-order walk visits the same (job, idx, att) triples; re-index to compare.
	want := make([]bool, len(first))
	i := 0
	for att := 1; att >= 0; att-- {
		for idx := 2; idx >= 0; idx-- {
			for job := 1; job >= 0; job-- {
				k := ((job*3+idx)*2 + att) * 2
				want[i], want[i+1] = first[k], first[k+1]
				i += 2
			}
		}
	}
	if !reflect.DeepEqual(second, want) {
		t.Fatal("hash draws depended on query order")
	}

	if (TaskModel{FailureProb: 1, Seed: 1}).AttemptFails(0, 0, 0) != true {
		t.Error("FailureProb 1 must always fail")
	}
	if (TaskModel{Seed: 1}).AttemptFails(0, 0, 0) {
		t.Error("zero FailureProb must never fail")
	}
	if !(TaskModel{}).Inert() || (TaskModel{StragglerProb: 0.1}).Inert() {
		t.Error("Inert misclassifies")
	}

	// Backoff doubles per attempt from BackoffT.
	mb := TaskModel{BackoffT: 2}
	for att, want := range map[int]float64{1: 2, 2: 4, 3: 8} {
		if got := mb.RetryDelay(att); got != want {
			t.Errorf("RetryDelay(%d) = %v, want %v", att, got, want)
		}
	}

	// Straggler timing: slowdown without speculation, capped with it.
	ms := TaskModel{StragglerProb: 1, StragglerFactor: 4, SpeculationThreshold: 1.5, Seed: 9}
	dur, straggled, launched, won := ms.AttemptDuration(10, 0, 0, 0)
	if !straggled || launched || won || dur != 40 {
		t.Errorf("no-speculation straggler: dur=%v straggled=%v launched=%v won=%v", dur, straggled, launched, won)
	}
	ms.Speculation = true
	dur, straggled, launched, won = ms.AttemptDuration(10, 0, 0, 0)
	if !straggled || !launched || !won || dur != 25 {
		t.Errorf("speculative straggler: dur=%v launched=%v won=%v, want 25 true true", dur, launched, won)
	}
	// A mild straggler never trips the detection threshold: no backup.
	mild := TaskModel{StragglerProb: 1, StragglerFactor: 1.2, SpeculationThreshold: 1.5, Speculation: true, Seed: 9}
	dur, straggled, launched, won = mild.AttemptDuration(10, 0, 0, 0)
	if !straggled || launched || won || dur != 12 {
		t.Errorf("mild straggler: dur=%v launched=%v won=%v, want 12 false false", dur, launched, won)
	}
	// Past the threshold but the original still wins: launched without a win.
	lose := TaskModel{StragglerProb: 1, StragglerFactor: 2, SpeculationThreshold: 1.5, Speculation: true, Seed: 9}
	dur, straggled, launched, won = lose.AttemptDuration(10, 0, 0, 0)
	if !straggled || !launched || won || dur != 20 {
		t.Errorf("losing backup: dur=%v launched=%v won=%v, want 20 true false", dur, launched, won)
	}
}

func TestPlanEmptyAndKindString(t *testing.T) {
	var p *Plan
	if !p.Empty() {
		t.Error("nil plan must be empty")
	}
	if !(&Plan{}).Empty() {
		t.Error("zero plan must be empty")
	}
	if (&Plan{Tasks: TaskModel{FailureProb: 0.1}}).Empty() {
		t.Error("plan with task faults is not empty")
	}
	if SwitchCrash.String() != "switch-crash" || !strings.HasPrefix(Kind(99).String(), "kind(") {
		t.Error("Kind.String misbehaves")
	}
}
