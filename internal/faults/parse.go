package faults

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/topology"
)

// Malformed-timeline sentinels, matchable with errors.Is through the
// line-context wrapping ParseTimeline applies.
var (
	// ErrDuplicateEventID marks two events carrying the same sequence ID
	// (explicit id= fields, or an explicit ID colliding with an implicit
	// line ordinal) — the tiebreak order would be ambiguous.
	ErrDuplicateEventID = errors.New("faults: duplicate event ID")
	// ErrOutOfOrderEvent marks a line whose timestamp precedes the line
	// before it; timelines are authored in timeline order so that the
	// implicit sequence IDs match the tie-break order the run replays.
	ErrOutOfOrderEvent = errors.New("faults: out-of-order event")
)

// ParseTimeline reads the declarative timeline format: one event per line,
//
//	t=<time> <kind> node=<id> [factor=<f>] [id=<n>]
//	t=<time> <kind> link=<a>-<b> [factor=<f>] [id=<n>]
//
// with '#' comments and blank lines ignored. Kinds are the Kind.String
// names (switch-crash, switch-degrade, switch-recover, link-degrade,
// link-recover, server-crash, server-recover). Lines must be in
// nondecreasing time order (ErrOutOfOrderEvent otherwise). The optional
// id=<n> field overrides the event's sequence ID — the deterministic
// tiebreak for equal-time events — which defaults to the event's ordinal;
// duplicated IDs are rejected (ErrDuplicateEventID). The returned slice
// is in canonical (Time, Seq) order.
func ParseTimeline(src string) ([]Event, error) {
	kindOf := make(map[string]Kind, len(kindNames))
	for k := SwitchCrash; k <= ServerRecover; k++ {
		kindOf[k.String()] = k
	}
	var evs []Event
	seen := make(map[int]int) // Seq -> 1-based line, for duplicate reports
	prevTime := 0.0
	for ln, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("faults: line %d: want 't=<time> <kind> ...', got %q", ln+1, line)
		}
		ev := Event{Seq: len(evs), Factor: 1}
		tv, ok := strings.CutPrefix(fields[0], "t=")
		if !ok {
			return nil, fmt.Errorf("faults: line %d: first field must be t=<time>", ln+1)
		}
		t, err := strconv.ParseFloat(tv, 64)
		if err != nil || t < 0 {
			return nil, fmt.Errorf("faults: line %d: bad time %q", ln+1, tv)
		}
		ev.Time = t
		if len(evs) > 0 && t < prevTime {
			return nil, fmt.Errorf("faults: line %d: t=%g before preceding t=%g: %w", ln+1, t, prevTime, ErrOutOfOrderEvent)
		}
		prevTime = t
		k, ok := kindOf[fields[1]]
		if !ok {
			return nil, fmt.Errorf("faults: line %d: unknown event kind %q", ln+1, fields[1])
		}
		ev.Kind = k
		ev.Node = topology.None
		ev.A, ev.B = topology.None, topology.None
		for _, f := range fields[2:] {
			switch {
			case strings.HasPrefix(f, "node="):
				id, err := strconv.Atoi(f[len("node="):])
				if err != nil {
					return nil, fmt.Errorf("faults: line %d: bad node %q", ln+1, f)
				}
				ev.Node = topology.NodeID(id)
			case strings.HasPrefix(f, "link="):
				a, b, ok := strings.Cut(f[len("link="):], "-")
				if !ok {
					return nil, fmt.Errorf("faults: line %d: link wants a-b, got %q", ln+1, f)
				}
				ai, errA := strconv.Atoi(a)
				bi, errB := strconv.Atoi(b)
				if errA != nil || errB != nil {
					return nil, fmt.Errorf("faults: line %d: bad link endpoints %q", ln+1, f)
				}
				ev.A, ev.B = topology.NodeID(ai), topology.NodeID(bi)
			case strings.HasPrefix(f, "factor="):
				fv, err := strconv.ParseFloat(f[len("factor="):], 64)
				if err != nil || fv <= 0 || fv > 1 {
					return nil, fmt.Errorf("faults: line %d: factor must be in (0,1], got %q", ln+1, f)
				}
				ev.Factor = fv
			case strings.HasPrefix(f, "id="):
				id, err := strconv.Atoi(f[len("id="):])
				if err != nil || id < 0 {
					return nil, fmt.Errorf("faults: line %d: bad event ID %q", ln+1, f)
				}
				ev.Seq = id
			default:
				return nil, fmt.Errorf("faults: line %d: unknown field %q", ln+1, f)
			}
		}
		switch ev.Kind {
		case LinkDegrade, LinkRecover:
			if ev.A == topology.None || ev.B == topology.None {
				return nil, fmt.Errorf("faults: line %d: %s needs link=a-b", ln+1, ev.Kind)
			}
		default:
			if ev.Node == topology.None {
				return nil, fmt.Errorf("faults: line %d: %s needs node=<id>", ln+1, ev.Kind)
			}
		}
		if first, dup := seen[ev.Seq]; dup {
			return nil, fmt.Errorf("faults: line %d: event ID %d already used on line %d: %w", ln+1, ev.Seq, first, ErrDuplicateEventID)
		}
		seen[ev.Seq] = ln + 1
		evs = append(evs, ev)
	}
	SortEvents(evs)
	return evs, nil
}

// Format renders events back into the declarative format ParseTimeline
// reads (round-trip stable for parsed input). An explicit id= field is
// emitted only when an event's Seq differs from its ordinal position —
// i.e. only when the default assignment would not reproduce it.
func Format(evs []Event) string {
	var b strings.Builder
	for i, ev := range evs {
		fmt.Fprintf(&b, "t=%g %s", ev.Time, ev.Kind)
		switch ev.Kind {
		case LinkDegrade, LinkRecover:
			fmt.Fprintf(&b, " link=%d-%d", ev.A, ev.B)
		default:
			fmt.Fprintf(&b, " node=%d", ev.Node)
		}
		if ev.Kind == SwitchDegrade || ev.Kind == LinkDegrade {
			fmt.Fprintf(&b, " factor=%g", ev.Factor)
		}
		if ev.Seq != i {
			fmt.Fprintf(&b, " id=%d", ev.Seq)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
