package multisched_test

import (
	"math"
	"testing"

	"repro/internal/multisched"
	"repro/internal/supervise"
)

// commitParity drives the full presolve/commit cycle on instance a under
// the supervised service and the plain sequential calls on twin instance
// b, asserting per-flow utilities, policies and total cost are
// bit-identical. Returns the supervisor stats for fault assertions.
func commitParity(t *testing.T, seed int64, shards int, sup *supervise.Supervisor) supervise.Stats {
	t.Helper()
	a := buildInstance(t, seed, 150)
	b := buildInstance(t, seed, 150)
	ms := multisched.NewSupervised(a.ctl, a.cl, shards, sup)
	arb := ms.Arbiter()
	loc := a.req.Locator()
	ps := ms.PresolveOptimize(a.req.Flows, nil, loc)
	defer ps.Drain()
	for i, f := range a.req.Flows {
		util, pol, _, err := arb.CommitOptimize(ps, i, loc)
		if err != nil {
			t.Fatalf("seed %d: commit flow %d: %v", seed, f.ID, err)
		}
		wantUtil, wantPol, _, err := b.ctl.OptimizeInstalledDetailed(b.req.Flows[i], b.req.Locator())
		if err != nil {
			t.Fatalf("seed %d: sequential flow %d: %v", seed, f.ID, err)
		}
		if math.Float64bits(util) != math.Float64bits(wantUtil) {
			t.Fatalf("seed %d flow %d: utility %v vs sequential %v", seed, f.ID, util, wantUtil)
		}
		if !samePolicy(pol, wantPol) {
			t.Fatalf("seed %d flow %d: policy %+v vs sequential %+v", seed, f.ID, pol, wantPol)
		}
	}
	ca, err := a.ctl.TotalCost(a.req.Flows, a.req.Locator())
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.ctl.TotalCost(b.req.Flows, b.req.Locator())
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(ca) != math.Float64bits(cb) {
		t.Fatalf("seed %d: total cost %v vs sequential %v", seed, ca, cb)
	}
	st := arb.Stats()
	if st.Adopted+st.Replayed != len(a.req.Flows) {
		t.Fatalf("seed %d: stats %+v don't cover %d flows", seed, st, len(a.req.Flows))
	}
	return ms.Supervisor().Stats()
}

// TestSupervisedPanicIsolationParity injects worker panics at a rate that
// poisons most cells and demands the output stay bit-identical to the
// sequential scheduler: a panicking presolver degrades the wave (its cells
// replay in order), never the values.
func TestSupervisedPanicIsolationParity(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		sup := supervise.New(supervise.Config{
			Faults: &supervise.FaultPlan{Seed: uint64(seed), PanicPerMille: 700},
		})
		st := commitParity(t, seed, 4, sup)
		if st.Panics == 0 {
			t.Errorf("seed %d: no injected panic fired", seed)
		}
		if st.Replays[supervise.ReasonPanic] == 0 {
			t.Errorf("seed %d: poisoned cells produced no panic replays: %+v", seed, st)
		}
	}
}

// TestSupervisedStallBudgetParity exhausts cell budgets (injected stalls
// plus a deliberately tight budget) and demands the abandoned flows fall
// back to ordered sequential replay with identical output.
func TestSupervisedStallBudgetParity(t *testing.T) {
	// Tight budget: one flow per cell at most (opsPerFlow=8 + route).
	sup := supervise.New(supervise.Config{
		CellOpBudget: 18,
		Faults:       &supervise.FaultPlan{Seed: 9, StallPerMille: 400},
	})
	st := commitParity(t, 2, 4, sup)
	if st.Stalls == 0 {
		t.Errorf("no injected stall fired: %+v", st)
	}
	if st.OverBudget == 0 || st.Replays[supervise.ReasonBudget] == 0 {
		t.Errorf("tight budget abandoned nothing: %+v", st)
	}
}

// TestSupervisedPoisonChecksumParity corrupts every solved proposal after
// its checksum was stamped; the arbiter must catch every corruption
// (ReasonChecksum), adopt nothing it cannot trust, and still produce the
// sequential bits.
func TestSupervisedPoisonChecksumParity(t *testing.T) {
	sup := supervise.New(supervise.Config{
		Faults: &supervise.FaultPlan{Seed: 5, PoisonPerMille: 1000},
	})
	st := commitParity(t, 3, 4, sup)
	if st.Poisons == 0 {
		t.Fatalf("no proposal poisoned: %+v", st)
	}
	if st.Adopted != 0 {
		t.Errorf("adopted %d poisoned proposals", st.Adopted)
	}
	if st.Replays[supervise.ReasonChecksum] == 0 {
		t.Errorf("checksum caught nothing: %+v", st)
	}
}

// TestSupervisedStormSkipsPresolve pre-trips the conflict-storm ladder on
// a 2-shard service (one degradation step disables presolve entirely) and
// asserts the whole wave replays sequentially — with identical output and
// every replay classified ReasonStorm.
func TestSupervisedStormSkipsPresolve(t *testing.T) {
	sup := supervise.New(supervise.Config{Window: 4, QuietPeriod: 1 << 20})
	for i := 0; i < 4; i++ {
		sup.Commit(supervise.ReasonStale) // trip the window by hand
	}
	if sup.Stats().Level != 1 {
		t.Fatalf("ladder did not trip: %+v", sup.Stats())
	}
	pre := sup.Stats()
	st := commitParity(t, 1, 2, sup)
	storms := st.Replays[supervise.ReasonStorm] - pre.Replays[supervise.ReasonStorm]
	adopts := st.Adopted - pre.Adopted
	if adopts != 0 || storms == 0 {
		t.Errorf("degraded service still presolved: adopts=%d storms=%d (%+v)", adopts, storms, st)
	}
}

// TestSupervisedStatsDeterministic reruns an injected-fault cycle and
// demands identical supervisor stats: injection draws hash stable
// coordinates, so worker timing never reaches a counter the tests read.
func TestSupervisedStatsDeterministic(t *testing.T) {
	run := func() supervise.Stats {
		sup := supervise.New(supervise.Config{
			CellOpBudget: 40,
			Faults:       &supervise.FaultPlan{Seed: 77, PanicPerMille: 300, StallPerMille: 300, PoisonPerMille: 300},
		})
		return commitParity(t, 4, 4, sup)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("supervisor stats diverge across identical runs:\n%+v\n%+v", a, b)
	}
	if a.Panics+a.Stalls+a.Poisons == 0 {
		t.Fatalf("mixed schedule injected nothing: %+v", a)
	}
}
