package multisched_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/flow"
	"repro/internal/multisched"
	"repro/internal/netstate"
	"repro/internal/scheduler"
	"repro/internal/topology"
	"repro/internal/workload"
)

// instance is one scheduled workload ready for optimization: containers
// placed and random policies installed, so OptimizeInstalledDetailed has an
// incumbent to improve on. Two instances built with the same seed are
// bit-identical.
type instance struct {
	ctl *controller.Controller
	cl  *cluster.Cluster
	req *scheduler.Request
}

func buildInstance(t *testing.T, seed int64, switchCap float64) *instance {
	t.Helper()
	topo, err := topology.NewTree(3, 4, topology.LinkParams{
		Bandwidth: 10, Latency: 0.1, SwitchCapacity: switchCap,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(topo, cluster.Resources{CPU: 4, Memory: 8192})
	if err != nil {
		t.Fatal(err)
	}
	ctl := controller.NewWithOracle(topo, netstate.New(topo))
	job := &workload.Job{ID: 0, NumMaps: 8, NumReduces: 4, InputGB: 8}
	job.Shuffle = make([][]float64, job.NumMaps)
	rng := rand.New(rand.NewSource(seed))
	for i := range job.Shuffle {
		job.Shuffle[i] = make([]float64, job.NumReduces)
		for k := range job.Shuffle[i] {
			job.Shuffle[i][k] = rng.Float64() * 5
		}
	}
	job.MapComputeSec = make([]float64, job.NumMaps)
	job.ReduceComputeSec = make([]float64, job.NumReduces)
	req, _, err := scheduler.NewJobRequest(cl, ctl, []*workload.Job{job},
		cluster.Resources{CPU: 1, Memory: 1024}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	if err := (scheduler.Random{}).Schedule(req); err != nil {
		t.Fatal(err)
	}
	return &instance{ctl: ctl, cl: cl, req: req}
}

func samePolicy(a, b *flow.Policy) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Flow != b.Flow || len(a.List) != len(b.List) || len(a.Types) != len(b.Types) {
		return false
	}
	for i := range a.List {
		if a.List[i] != b.List[i] {
			return false
		}
	}
	for i := range a.Types {
		if a.Types[i] != b.Types[i] {
			return false
		}
	}
	return true
}

// TestCommitOptimizeMatchesSequential drives the presolve/commit cycle by
// hand against a twin instance optimized with the plain sequential calls,
// on a congested fabric where commits themselves invalidate later
// proposals (installs bump the epoch and shift switch loads), so both the
// adopt and the replay paths run — and asserts per-flow utilities, final
// policies, and total cost are bit-identical.
func TestCommitOptimizeMatchesSequential(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		a := buildInstance(t, seed, 150)
		b := buildInstance(t, seed, 150)
		ms := multisched.New(a.ctl, a.cl, 4)
		arb := ms.Arbiter()
		loc := a.req.Locator()
		ps := ms.PresolveOptimize(a.req.Flows, nil, loc)
		defer ps.Drain()
		for i, f := range a.req.Flows {
			util, pol, _, err := arb.CommitOptimize(ps, i, loc)
			if err != nil {
				t.Fatalf("seed %d: commit flow %d: %v", seed, f.ID, err)
			}
			wantUtil, wantPol, _, err := b.ctl.OptimizeInstalledDetailed(b.req.Flows[i], b.req.Locator())
			if err != nil {
				t.Fatalf("seed %d: sequential flow %d: %v", seed, f.ID, err)
			}
			if math.Float64bits(util) != math.Float64bits(wantUtil) {
				t.Fatalf("seed %d flow %d: utility %v vs sequential %v", seed, f.ID, util, wantUtil)
			}
			if !samePolicy(pol, wantPol) {
				t.Fatalf("seed %d flow %d: policy %+v vs sequential %+v", seed, f.ID, pol, wantPol)
			}
		}
		ca, err := a.ctl.TotalCost(a.req.Flows, a.req.Locator())
		if err != nil {
			t.Fatal(err)
		}
		cb, err := b.ctl.TotalCost(b.req.Flows, b.req.Locator())
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(ca) != math.Float64bits(cb) {
			t.Fatalf("seed %d: total cost %v vs sequential %v", seed, ca, cb)
		}
		st := arb.Stats()
		if st.Adopted+st.Replayed != len(a.req.Flows) {
			t.Fatalf("seed %d: stats %+v don't cover %d flows", seed, st, len(a.req.Flows))
		}
	}
}

// TestArbiterStatsDeterministic runs the same presolve/commit cycle twice
// on identical instances and asserts the adopt/replay split is identical:
// validation must depend only on the deterministic state sequence, never
// on worker timing.
func TestArbiterStatsDeterministic(t *testing.T) {
	run := func(shards int) multisched.Stats {
		in := buildInstance(t, 11, 150)
		ms := multisched.New(in.ctl, in.cl, shards)
		arb := ms.Arbiter()
		loc := in.req.Locator()
		ps := ms.PresolveOptimize(in.req.Flows, nil, loc)
		defer ps.Drain()
		for i := range in.req.Flows {
			if _, _, _, err := arb.CommitOptimize(ps, i, loc); err != nil {
				t.Fatal(err)
			}
		}
		return arb.Stats()
	}
	first := run(4)
	if again := run(4); again != first {
		t.Fatalf("stats differ across identical runs: %+v vs %+v", first, again)
	}
}

// TestCommitRouteStaleSnapshotReplays forces staleness between presolve
// and commit — an unrelated install bumps the oracle epoch AND moves
// switch loads — and asserts the commits still equal the sequential
// solves on a twin instance.
func TestCommitRouteStaleSnapshotReplays(t *testing.T) {
	a := buildInstance(t, 5, 150)
	b := buildInstance(t, 5, 150)
	loc := a.req.Locator()
	// Uninstall everything (phase-3 shape: flows have no incumbent).
	for _, f := range a.req.Flows {
		a.ctl.Uninstall(f.ID)
	}
	for _, f := range b.req.Flows {
		b.ctl.Uninstall(f.ID)
	}
	ms := multisched.New(a.ctl, a.cl, 2)
	arb := ms.Arbiter()
	ps := ms.PresolveRoutes(a.req.Flows, nil, loc)
	ps.Drain() // everything presolved against the pre-install snapshot
	for i, f := range a.req.Flows {
		pol, _, err := arb.CommitRoute(ps, i, loc)
		if err != nil {
			t.Fatalf("commit flow %d: %v", f.ID, err)
		}
		if err := arb.Install(f, pol); err != nil {
			t.Fatalf("install flow %d: %v", f.ID, err)
		}
		wantPol, _, err := b.ctl.OptimizePolicyDetailed(b.req.Flows[i], b.req.Locator())
		if err != nil {
			t.Fatalf("sequential flow %d: %v", f.ID, err)
		}
		if err := b.ctl.Install(b.req.Flows[i], wantPol); err != nil {
			t.Fatal(err)
		}
		if !samePolicy(pol, wantPol) {
			t.Fatalf("flow %d: policy %+v vs sequential %+v", f.ID, pol, wantPol)
		}
	}
}

// TestCandidateSetTracksFills places containers through the arbiter and
// asserts the precomputed candidate view stays equal to a live scan after
// every single placement.
func TestCandidateSetTracksFills(t *testing.T) {
	topo, err := topology.NewTree(2, 3, topology.LinkParams{Bandwidth: 10, SwitchCapacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny servers: each holds exactly one container, so every Place
	// shrinks the candidate lists.
	cl, err := cluster.New(topo, cluster.Resources{CPU: 1, Memory: 1024})
	if err != nil {
		t.Fatal(err)
	}
	ctl := controller.New(topo)
	var ids []cluster.ContainerID
	for i := 0; i < 6; i++ {
		ct, err := cl.NewContainer(cluster.Resources{CPU: 1, Memory: 1024})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, ct.ID)
	}
	ms := multisched.New(ctl, cl, 2)
	cs, err := ms.PresolveCandidates(ids)
	if err != nil {
		t.Fatal(err)
	}
	arb := ms.Arbiter()
	rng := rand.New(rand.NewSource(3))
	for _, id := range ids {
		got := cs.Candidates(id)
		want := cl.Candidates(id)
		if len(got) != len(want) {
			t.Fatalf("container %d: candidate view %v vs live scan %v", id, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("container %d: candidate view %v vs live scan %v", id, got, want)
			}
		}
		if len(got) == 0 {
			t.Fatalf("container %d: no candidates left", id)
		}
		if err := arb.Place(cs, id, got[rng.Intn(len(got))]); err != nil {
			t.Fatal(err)
		}
	}
	if st := arb.Stats(); st.Places != len(ids) {
		t.Fatalf("Places = %d, want %d", st.Places, len(ids))
	}
}
