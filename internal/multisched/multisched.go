// Package multisched is the sharded optimistic scheduling service: N
// worker goroutines presolve Algorithm-1 policy routes against an
// immutable snapshot of the epoch-versioned netstate oracle, and a
// deterministic arbiter — always the scheduling goroutine, never a worker
// — commits the results in the exact order the sequential scheduler would
// have produced them.
//
// # Speculate, then replay in order
//
// The design is speculation plus ordered replay, not partitioned
// ownership. Workers only read: the oracle's concurrent-safe read API
// (distances, type templates, stage lists, the pair-route cache), the
// locator, and old-policy pointers prefetched before fan-out (Install
// stores clones, so an installed policy object is immutable). Every
// mutation — Install, Uninstall, Place — happens on the arbiter's
// goroutine, through its commit entrypoints, in canonical commit order.
//
// Canonical commit order is the sequential scheduler's flow order, NOT
// cell-major order. Switch loads accumulate float-by-float as policies
// install, and feasibility decisions on a congested fabric depend on that
// running sum; committing cell-by-cell would reorder the additions and
// diverge from the sequential baseline. Cells only shape the PRESOLVE
// stream: a cell groups the flows whose source servers share a rack/pod
// (netstate.Oracle.CellOf), workers claim cells in first-flow order, and
// the arbiter pipelines — it commits flow i as soon as i's cell is done,
// while workers are still presolving later cells.
//
// # Validation
//
// A commit adopts a proposal only when the proposal provably equals what
// a live sequential solve would return, checked by the arbiter at commit
// time (arbiter.go); anything else — stale liveness, moved endpoints, a
// replaced incumbent policy, missing switch headroom, a failed or skipped
// presolve — falls back to the exact sequential controller call ("ordered
// replay"). Adoption therefore never changes a result, only its cost:
// outputs are Float64bits-identical across runs, shard counts, and -race.
//
// The taalint `arbitercommit` check enforces the read-only worker
// contract statically: no blessed cluster/controller mutator may be
// reachable from a goroutine launched in this package.
package multisched

import (
	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/flow"
	"repro/internal/netstate"
	"repro/internal/parallel"
	"repro/internal/supervise"
	"repro/internal/topology"
)

// Service owns the shard worker budget and the arbiter for one scheduler.
// A Service is bound to one controller/cluster pair; create it once per
// Schedule call (it is two small allocations) or reuse it across calls on
// the same pair — it holds no per-wave state. Resilience state (the
// degradation ladder, fault injection, panic accounting) lives in the
// supervisor, which MAY be shared across Services so hysteresis spans
// waves and Schedule calls.
type Service struct {
	ctl    *controller.Controller
	cl     *cluster.Cluster
	oracle *netstate.Oracle
	shards int
	grp    *parallel.Group
	arb    Arbiter
	sup    *supervise.Supervisor
}

// New returns a Service running presolves on up to shards goroutines
// (shards < 1 is treated as 1) under a fresh default supervisor.
func New(ctl *controller.Controller, cl *cluster.Cluster, shards int) *Service {
	return NewSupervised(ctl, cl, shards, nil)
}

// NewSupervised is New with an explicit resilience runtime. A nil sup
// gets a fresh default supervisor (no fault injection, effectively
// unbounded budgets, default storm hysteresis).
func NewSupervised(ctl *controller.Controller, cl *cluster.Cluster, shards int, sup *supervise.Supervisor) *Service {
	if shards < 1 {
		shards = 1
	}
	if sup == nil {
		sup = supervise.New(supervise.Config{})
	}
	s := &Service{
		ctl:    ctl,
		cl:     cl,
		oracle: ctl.Oracle(),
		shards: shards,
		grp:    parallel.NewGroup(shards),
		sup:    sup,
	}
	s.arb.s = s
	return s
}

// Shards returns the worker budget.
func (s *Service) Shards() int { return s.shards }

// Supervisor returns the service's resilience runtime.
func (s *Service) Supervisor() *supervise.Supervisor { return s.sup }

// Arbiter returns the service's commit funnel. All cluster/controller
// mutations of a sharded schedule flow through its methods, on the
// caller's (scheduling) goroutine.
func (s *Service) Arbiter() *Arbiter { return &s.arb }

// solveBetween is the worker-side Algorithm-1 presolve: the unfiltered
// (Full) stage solve of controller.OptimizeBetween, minus the load-derived
// feasibility prescan workers must not read. When the arbiter later
// confirms FitsEverywhere(f.Rate) at commit time, the sequential solve
// would have seen allFit=true and run this exact query — so the proposal
// equals the live result bit for bit. ok=false abandons the proposal
// (the replay reproduces any genuine error sequentially).
func (s *Service) solveBetween(f *flow.Flow, src, dst topology.NodeID) (*flow.Policy, controller.SolveInfo, bool) {
	var info controller.SolveInfo
	if src == topology.None || dst == topology.None ||
		!s.oracle.Topology().Valid(src) || !s.oracle.Topology().Valid(dst) {
		return nil, info, false
	}
	if src == dst {
		info.FullStages = true
		return &flow.Policy{Flow: f.ID}, info, true
	}
	types, err := s.oracle.TypeTemplate(src, dst)
	if err != nil {
		return nil, info, false
	}
	if len(types) == 0 {
		info.FullStages = true
		return &flow.Policy{Flow: f.ID}, info, true
	}
	stages := s.oracle.StagesForTemplate(types)
	for i := range stages {
		if len(stages[i]) == 0 {
			return nil, info, false
		}
	}
	info.FullStages = true
	list, _, hit, ok := s.oracle.BestRoute(src, dst, netstate.RouteQuery{
		Rate:     f.Rate,
		UnitCost: s.ctl.CostModel().UnitCost,
		Stages:   stages,
		Full:     true,
	})
	info.CacheHit = hit
	if !ok {
		return nil, info, false
	}
	return &flow.Policy{
		Flow:  f.ID,
		List:  append([]topology.NodeID(nil), list...),
		Types: append([]string(nil), types...),
	}, info, true
}

// WarmTemplates preloads the oracle's type-template and stage-list caches
// for every flow's endpoint pair on the shard workers, so the sequential
// random-policy loop that follows only pays cache hits. Pure reads; errors
// (unroutable pairs) are deliberately ignored — the sequential loop
// rediscovers and reports them in order.
func (s *Service) WarmTemplates(flows []*flow.Flow, loc flow.Locator) {
	if s.shards <= 1 || len(flows) == 0 {
		return
	}
	_ = s.grp.ForEach(len(flows), func(i int) error {
		f := flows[i]
		src, dst := loc.ServerOf(f.Src), loc.ServerOf(f.Dst)
		if src == topology.None || dst == topology.None || src == dst {
			return nil
		}
		if types, err := s.oracle.TypeTemplate(src, dst); err == nil && len(types) > 0 {
			s.oracle.StagesForTemplate(types)
		}
		return nil
	})
}
