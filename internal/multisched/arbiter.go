package multisched

import (
	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/flow"
	"repro/internal/supervise"
	"repro/internal/topology"
)

// Arbiter is the single mutation funnel of a sharded schedule. Every
// Install, Uninstall and Place of the sharded path goes through a method
// on this type, invoked on the scheduling goroutine in canonical
// (sequential flow) order — never from a worker. The taalint
// `arbitercommit` check pins that statically.
//
// Each commit either ADOPTS a proposal the validation protocol proves
// equal to a live sequential solve, or REPLAYS the exact sequential
// controller call. Both land the same bits; adoption just skips the DP.
// Every commit outcome also feeds the supervisor's conflict-storm
// hysteresis (supervise.Supervisor.Commit), in the same canonical order,
// so degradation decisions are deterministic.
type Arbiter struct {
	s     *Service
	stats Stats
}

// Stats counts commit outcomes. All counters are deterministic for
// a fixed input — validation depends only on the deterministic state
// sequence, never on worker timing — so tests may assert on them.
// Replay classification by reason lives in the supervisor's stats
// (Service.Supervisor().Stats().Replays).
type Stats struct {
	// Adopted proposals passed validation and were committed as-is.
	Adopted int
	// Replayed commits fell back to the live sequential solve (invalid,
	// failed, or skip-hinted-then-dirty proposals).
	Replayed int
	// Installs and Places count the funnelled raw mutations.
	Installs int
	Places   int
}

// Stats returns the commit counters accumulated so far.
func (a *Arbiter) Stats() Stats { return a.stats }

// judge is the commit-time validation protocol shared by both commit
// kinds, returning ReasonNone when the proposal may be adopted and the
// replay classification otherwise. A proposal may be adopted when:
//
//  1. the worker produced one (OK) — else ReasonMiss;
//  2. its integrity checksum matches the payload — else ReasonChecksum
//     (a poisoned or corrupted proposal must never be adopted);
//  3. liveness is unchanged since the snapshot (epoch-CAS on the liveness
//     component): every structure cache the worker read is still current;
//  4. the flow's endpoints sit where the worker saw them — checked via
//     the full epoch-CAS short-circuit first: if Oracle.Epoch() still
//     equals the snapshot, nothing at all has moved and the field checks
//     are skipped. Cost presolves (needOld) additionally require the
//     incumbent policy to be the exact object the worker costed against
//     (pointer CAS; installed policies are immutable clones);
//  5. FitsEverywhere(f.Rate) holds LIVE. This is required even when the
//     epoch is unchanged: workers skip the load-derived feasibility
//     prescan, so the proposal is the unfiltered-stages solve, and only
//     cluster-wide headroom at commit time proves the sequential solve
//     would also have been unfiltered. Eq. 2 costs are load-independent,
//     so this is the ONLY load-sensitive input — with it, the proposal
//     equals the live solve bit for bit.
//
// Checks 3-5 fail with ReasonStale.
func (a *Arbiter) judge(ps *ProposalSet, pr *Proposal, f *flow.Flow, needOld bool) supervise.Reason {
	if pr == nil || !pr.OK {
		return supervise.ReasonMiss
	}
	if pr.Sum != proposalSum(pr) {
		return supervise.ReasonChecksum
	}
	if !ps.snap.LiveUnchanged() {
		return supervise.ReasonStale
	}
	if !ps.snap.Current() {
		if ps.loc.ServerOf(f.Src) != pr.Src || ps.loc.ServerOf(f.Dst) != pr.Dst {
			return supervise.ReasonStale
		}
		if needOld && a.s.ctl.Policy(f.ID) != pr.OldPolicy {
			return supervise.ReasonStale
		}
	}
	if !a.s.ctl.FitsEverywhere(f.Rate) {
		return supervise.ReasonStale
	}
	return supervise.ReasonNone
}

// CommitOptimize commits flow i of a PresolveOptimize set: the sharded
// equivalent of controller.OptimizeInstalledDetailed. Adoption funnels
// the decision through the controller's shared AdoptIfCheaper rule;
// anything else replays live, with the reason recorded in the
// supervisor's stats.
func (a *Arbiter) CommitOptimize(ps *ProposalSet, i int, loc flow.Locator) (float64, *flow.Policy, controller.SolveInfo, error) {
	f := ps.flows[i]
	pr, why := ps.wait(i)
	if why == supervise.ReasonNone {
		why = a.judge(ps, pr, f, true)
	}
	if why == supervise.ReasonNone {
		a.stats.Adopted++
		a.s.sup.Commit(supervise.ReasonNone)
		util, err := a.s.ctl.AdoptIfCheaper(f, pr.Policy, pr.OldCost, pr.NewCost)
		return util, pr.Policy, pr.Info, err
	}
	a.stats.Replayed++
	a.s.sup.Commit(why)
	return a.s.ctl.OptimizeInstalledDetailed(f, loc)
}

// CommitRoute commits flow i of a PresolveRoutes set: the sharded
// equivalent of controller.OptimizePolicyDetailed for an uninstalled flow
// (phase 3 reinstalls). The result is NOT installed — the caller funnels
// it through Install next, exactly like the sequential loop.
func (a *Arbiter) CommitRoute(ps *ProposalSet, i int, loc flow.Locator) (*flow.Policy, controller.SolveInfo, error) {
	f := ps.flows[i]
	pr, why := ps.wait(i)
	if why == supervise.ReasonNone {
		why = a.judge(ps, pr, f, false)
	}
	if why == supervise.ReasonNone {
		a.stats.Adopted++
		a.s.sup.Commit(supervise.ReasonNone)
		return pr.Policy, pr.Info, nil
	}
	a.stats.Replayed++
	a.s.sup.Commit(why)
	return a.s.ctl.OptimizePolicyDetailed(f, loc)
}

// Install funnels a policy install through the arbiter.
func (a *Arbiter) Install(f *flow.Flow, p *flow.Policy) error {
	a.stats.Installs++
	return a.s.ctl.Install(f, p)
}

// Place funnels a container placement through the arbiter and updates the
// candidate set's per-class feasibility (candidates.go), keeping later
// draws exactly equal to sequential commit-time scans. cs may be nil when
// no candidate set is in play.
func (a *Arbiter) Place(cs *CandidateSet, id cluster.ContainerID, s topology.NodeID) error {
	a.stats.Places++
	if err := a.s.cl.Place(id, s); err != nil {
		return err
	}
	if cs != nil {
		cs.notePlaced(s)
	}
	return nil
}
