package multisched

import (
	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/flow"
	"repro/internal/topology"
)

// Arbiter is the single mutation funnel of a sharded schedule. Every
// Install, Uninstall and Place of the sharded path goes through a method
// on this type, invoked on the scheduling goroutine in canonical
// (sequential flow) order — never from a worker. The taalint
// `arbitercommit` check pins that statically.
//
// Each commit either ADOPTS a proposal the validation protocol proves
// equal to a live sequential solve, or REPLAYS the exact sequential
// controller call. Both land the same bits; adoption just skips the DP.
type Arbiter struct {
	s     *Service
	stats Stats
}

// Stats counts commit outcomes. All three counters are deterministic for
// a fixed input — validation depends only on the deterministic state
// sequence, never on worker timing — so tests may assert on them.
type Stats struct {
	// Adopted proposals passed validation and were committed as-is.
	Adopted int
	// Replayed commits fell back to the live sequential solve (invalid,
	// failed, or skip-hinted-then-dirty proposals).
	Replayed int
	// Installs and Places count the funnelled raw mutations.
	Installs int
	Places   int
}

// Stats returns the commit counters accumulated so far.
func (a *Arbiter) Stats() Stats { return a.stats }

// valid is the commit-time validation protocol shared by both commit
// kinds. A proposal may be adopted when:
//
//  1. the worker produced one (OK) — else nothing to judge;
//  2. liveness is unchanged since the snapshot (epoch-CAS on the liveness
//     component): every structure cache the worker read is still current;
//  3. the flow's endpoints sit where the worker saw them — checked via
//     the full epoch-CAS short-circuit first: if Oracle.Epoch() still
//     equals the snapshot, nothing at all has moved and the field checks
//     are skipped;
//  4. FitsEverywhere(f.Rate) holds LIVE. This is required even when the
//     epoch is unchanged: workers skip the load-derived feasibility
//     prescan, so the proposal is the unfiltered-stages solve, and only
//     cluster-wide headroom at commit time proves the sequential solve
//     would also have been unfiltered. Eq. 2 costs are load-independent,
//     so this is the ONLY load-sensitive input — with it, the proposal
//     equals the live solve bit for bit.
func (a *Arbiter) valid(ps *ProposalSet, pr *Proposal, f *flow.Flow) bool {
	if pr == nil || !pr.OK || !ps.snap.LiveUnchanged() {
		return false
	}
	if !ps.snap.Current() {
		if ps.loc.ServerOf(f.Src) != pr.Src || ps.loc.ServerOf(f.Dst) != pr.Dst {
			return false
		}
	}
	return a.s.ctl.FitsEverywhere(f.Rate)
}

// CommitOptimize commits flow i of a PresolveOptimize set: the sharded
// equivalent of controller.OptimizeInstalledDetailed. Adoption
// additionally requires the incumbent policy to be the exact object the
// worker costed against (pointer CAS; installed policies are immutable
// clones), then funnels the decision through the controller's shared
// AdoptIfCheaper rule. Anything else replays live.
func (a *Arbiter) CommitOptimize(ps *ProposalSet, i int, loc flow.Locator) (float64, *flow.Policy, controller.SolveInfo, error) {
	f := ps.flows[i]
	pr := ps.wait(i)
	if pr != nil && a.valid(ps, pr, f) &&
		(ps.snap.Current() || a.s.ctl.Policy(f.ID) == pr.OldPolicy) {
		a.stats.Adopted++
		util, err := a.s.ctl.AdoptIfCheaper(f, pr.Policy, pr.OldCost, pr.NewCost)
		return util, pr.Policy, pr.Info, err
	}
	a.stats.Replayed++
	return a.s.ctl.OptimizeInstalledDetailed(f, loc)
}

// CommitRoute commits flow i of a PresolveRoutes set: the sharded
// equivalent of controller.OptimizePolicyDetailed for an uninstalled flow
// (phase 3 reinstalls). The result is NOT installed — the caller funnels
// it through Install next, exactly like the sequential loop.
func (a *Arbiter) CommitRoute(ps *ProposalSet, i int, loc flow.Locator) (*flow.Policy, controller.SolveInfo, error) {
	f := ps.flows[i]
	pr := ps.wait(i)
	if pr != nil && a.valid(ps, pr, f) {
		a.stats.Adopted++
		return pr.Policy, pr.Info, nil
	}
	a.stats.Replayed++
	return a.s.ctl.OptimizePolicyDetailed(f, loc)
}

// Install funnels a policy install through the arbiter.
func (a *Arbiter) Install(f *flow.Flow, p *flow.Policy) error {
	a.stats.Installs++
	return a.s.ctl.Install(f, p)
}

// Place funnels a container placement through the arbiter and updates the
// candidate set's per-class feasibility (candidates.go), keeping later
// draws exactly equal to sequential commit-time scans. cs may be nil when
// no candidate set is in play.
func (a *Arbiter) Place(cs *CandidateSet, id cluster.ContainerID, s topology.NodeID) error {
	a.stats.Places++
	if err := a.s.cl.Place(id, s); err != nil {
		return err
	}
	if cs != nil {
		cs.notePlaced(s)
	}
	return nil
}
