package multisched

import (
	"repro/internal/cluster"
	"repro/internal/topology"
)

// CandidateSet is the sharded form of the initial-placement candidate
// scans (§5.3.1). The sequential loop scans every server per container,
// AFTER all earlier placements of the wave — so lists shrink as servers
// fill, and the scan order is load-bearing for the RNG draws. The sharded
// form exploits that containers sharing a demand vector see identical
// scans: one parallel scan per distinct demand class at wave start, then
// a commit-time subtraction of the servers that have since filled below
// the class demand. Capacity only decreases during a wave (phase 0 only
// places), so "class list minus newly-full servers" is EXACTLY the list a
// live scan would produce — same members, same order, same RNG draw.
type CandidateSet struct {
	cl      *cluster.Cluster
	classes map[cluster.Resources]*demandClass
}

type demandClass struct {
	demand cluster.Resources
	// base is the feasible server list at scan time, in server-ID order
	// (the sequential scan order).
	base []topology.NodeID
	// removed marks base members that stopped fitting the class demand
	// after a commit; scratch holds the filtered view.
	removed map[topology.NodeID]bool
	scratch []topology.NodeID
}

// PresolveCandidates scans the candidate lists for every distinct demand
// class among ids, one class per shard task. Call before the first Place
// of the wave; read back per container via Candidates, and route every
// subsequent placement through Arbiter.Place so the set tracks fills.
func (s *Service) PresolveCandidates(ids []cluster.ContainerID) (*CandidateSet, error) {
	cs := &CandidateSet{cl: s.cl, classes: make(map[cluster.Resources]*demandClass)}
	var order []*demandClass
	reps := make([]cluster.ContainerID, 0, 4)
	for _, id := range ids {
		ct := s.cl.Container(id)
		if ct == nil {
			continue
		}
		if _, ok := cs.classes[ct.Demand]; !ok {
			dc := &demandClass{demand: ct.Demand}
			cs.classes[ct.Demand] = dc
			order = append(order, dc)
			reps = append(reps, id)
		}
	}
	err := s.grp.ForEach(len(order), func(k int) error {
		order[k].base = s.cl.AppendCandidates(nil, reps[k])
		return nil
	})
	return cs, err
}

// Candidates returns container id's feasible-server list as a live scan
// at this instant would: the class base minus servers that filled since
// the scan, order preserved. The returned slice is only valid until the
// next Arbiter.Place.
func (cs *CandidateSet) Candidates(id cluster.ContainerID) []topology.NodeID {
	ct := cs.cl.Container(id)
	if ct == nil {
		return nil
	}
	dc := cs.classes[ct.Demand]
	if dc == nil {
		// Not presolved (shouldn't happen on the core path); fall back to
		// a live scan so the answer stays exact.
		return cs.cl.Candidates(id)
	}
	if len(dc.removed) == 0 {
		return dc.base
	}
	dc.scratch = dc.scratch[:0]
	for _, s := range dc.base {
		if !dc.removed[s] {
			dc.scratch = append(dc.scratch, s)
		}
	}
	return dc.scratch
}

// notePlaced records that server s just received a container: any class
// whose demand no longer fits s's free capacity drops s from its view.
// Called by Arbiter.Place; runs on the arbiter goroutine.
func (cs *CandidateSet) notePlaced(s topology.NodeID) {
	free := cs.cl.Free(s)
	//taalint:maporder each class is updated independently from s and free alone; no cross-class state, so iteration order is unobservable
	for _, dc := range cs.classes {
		if dc.removed[s] {
			continue
		}
		if dc.demand.CPU > free.CPU || dc.demand.Memory > free.Memory {
			if dc.removed == nil {
				dc.removed = make(map[topology.NodeID]bool)
			}
			dc.removed[s] = true
		}
	}
}
