package multisched

import (
	"sync"
	"sync/atomic"

	"repro/internal/controller"
	"repro/internal/flow"
	"repro/internal/netstate"
	"repro/internal/topology"
)

// Proposal is one flow's presolved result, produced by a worker against
// the ProposalSet's snapshot and judged by the arbiter at commit time. OK
// is false when the flow was skip-hinted, its endpoints were unresolvable,
// or the snapshot solve failed — the commit then replays live.
type Proposal struct {
	Src, Dst topology.NodeID
	// OldPolicy is the flow's installed policy at fan-out time, prefetched
	// sequentially (cost presolves only). Install stores clones, so the
	// pointed-to object is immutable; pointer equality at commit time
	// proves the incumbent — and thus OldCost — is still current.
	OldPolicy *flow.Policy
	Policy    *flow.Policy
	Info      controller.SolveInfo
	// OldCost/NewCost are Eq. 2 costs, load-independent and therefore
	// valid at any later epoch with unchanged liveness and endpoints.
	OldCost, NewCost float64
	OK               bool
}

// ProposalSet is one phase's fan-out: the immutable inputs, the per-flow
// proposals, and the cell completion signals the arbiter blocks on. Create
// via PresolveOptimize or PresolveRoutes; always Drain before abandoning
// the set (e.g. on an error-path return), so no worker outlives the
// state it reads.
type ProposalSet struct {
	svc       *Service
	flows     []*flow.Flow
	loc       flow.Locator
	snap      netstate.Snapshot
	withCosts bool

	props []Proposal
	// cells[k] lists the (ascending) flow indices of the k-th cell, cells
	// ordered by first flow index so workers claim the earliest-committing
	// work first. cellIdx[i] = k, or -1 for skip-hinted flows.
	cells    [][]int32
	cellDone []chan struct{}
	cellIdx  []int32

	next atomic.Int64
	wg   sync.WaitGroup
}

// PresolveOptimize fans out phase-1 presolves (route plus old/new cost)
// for every non-skip flow and returns immediately; workers fill proposals
// cell by cell. The old-policy pointers and the snapshot are captured
// sequentially, before any worker starts.
func (s *Service) PresolveOptimize(flows []*flow.Flow, skip []bool, loc flow.Locator) *ProposalSet {
	ps := s.newSet(flows, skip, loc, true)
	for i, f := range flows {
		if skip == nil || !skip[i] {
			ps.props[i].OldPolicy = s.ctl.Policy(f.ID)
		}
	}
	ps.start()
	return ps
}

// PresolveRoutes fans out phase-3 presolves (route only; flows are
// uninstalled, so there is no incumbent to cost against).
func (s *Service) PresolveRoutes(flows []*flow.Flow, skip []bool, loc flow.Locator) *ProposalSet {
	ps := s.newSet(flows, skip, loc, false)
	ps.start()
	return ps
}

func (s *Service) newSet(flows []*flow.Flow, skip []bool, loc flow.Locator, withCosts bool) *ProposalSet {
	ps := &ProposalSet{
		svc:       s,
		flows:     flows,
		loc:       loc,
		snap:      s.oracle.Snapshot(),
		withCosts: withCosts,
		props:     make([]Proposal, len(flows)),
		cellIdx:   make([]int32, len(flows)),
	}
	slotOf := make(map[int]int)
	for i, f := range flows {
		if skip != nil && skip[i] {
			ps.cellIdx[i] = -1
			continue
		}
		cell := s.oracle.CellOf(loc.ServerOf(f.Src))
		slot, ok := slotOf[cell]
		if !ok {
			slot = len(ps.cells)
			slotOf[cell] = slot
			ps.cells = append(ps.cells, nil)
			ps.cellDone = append(ps.cellDone, make(chan struct{}))
		}
		ps.cells[slot] = append(ps.cells[slot], int32(i))
		ps.cellIdx[i] = int32(slot)
	}
	return ps
}

// start launches min(shards, cells) workers. Workers claim cells from an
// atomic counter in slot order (earliest first flow first), presolve every
// flow of the cell, and close the cell's done channel — the arbiter's
// Wait unblocks per cell, overlapping commits with later presolves.
func (ps *ProposalSet) start() {
	n := ps.svc.shards
	if n > len(ps.cells) {
		n = len(ps.cells)
	}
	for w := 0; w < n; w++ {
		ps.wg.Add(1)
		go func() {
			defer ps.wg.Done()
			for {
				c := int(ps.next.Add(1)) - 1
				if c >= len(ps.cells) {
					return
				}
				ps.runCell(c)
			}
		}()
	}
}

// runCell presolves one cell. A panic abandons the cell's remaining
// proposals (left !OK) rather than killing the process: the ordered
// replay recomputes them sequentially and reproduces any genuine failure
// in deterministic order.
func (ps *ProposalSet) runCell(c int) {
	defer close(ps.cellDone[c])
	defer func() { _ = recover() }()
	for _, fi := range ps.cells[c] {
		ps.solveFlow(int(fi))
	}
}

func (ps *ProposalSet) solveFlow(i int) {
	f := ps.flows[i]
	pr := &ps.props[i]
	pr.Src, pr.Dst = ps.loc.ServerOf(f.Src), ps.loc.ServerOf(f.Dst)
	pol, info, ok := ps.svc.solveBetween(f, pr.Src, pr.Dst)
	if !ok {
		return
	}
	pr.Policy, pr.Info = pol, info
	if ps.withCosts {
		cost := ps.svc.ctl.CostModel()
		oldCost, err := cost.FlowCost(f, pr.OldPolicy, ps.loc)
		if err != nil {
			return
		}
		newCost, err := cost.FlowCost(f, pol, ps.loc)
		if err != nil {
			return
		}
		pr.OldCost, pr.NewCost = oldCost, newCost
	}
	pr.OK = true
}

// wait blocks until flow i's cell has been fully presolved and returns
// its proposal, or nil for skip-hinted flows.
func (ps *ProposalSet) wait(i int) *Proposal {
	slot := ps.cellIdx[i]
	if slot < 0 {
		return nil
	}
	<-ps.cellDone[slot]
	return &ps.props[i]
}

// Drain blocks until every worker has exited. Defer it wherever a
// ProposalSet is created: the workers read the locator, cluster and
// oracle, and must not overlap whatever mutation follows an early return.
func (ps *ProposalSet) Drain() { ps.wg.Wait() }
