package multisched

import (
	"sync"
	"sync/atomic"

	"repro/internal/controller"
	"repro/internal/flow"
	"repro/internal/netstate"
	"repro/internal/supervise"
	"repro/internal/topology"
)

// Proposal is one flow's presolved result, produced by a worker against
// the ProposalSet's snapshot and judged by the arbiter at commit time. OK
// is false when the flow was skip-hinted, its endpoints were unresolvable,
// or the snapshot solve failed — the commit then replays live.
type Proposal struct {
	Src, Dst topology.NodeID
	// OldPolicy is the flow's installed policy at fan-out time, prefetched
	// sequentially (cost presolves only). Install stores clones, so the
	// pointed-to object is immutable; pointer equality at commit time
	// proves the incumbent — and thus OldCost — is still current.
	OldPolicy *flow.Policy
	Policy    *flow.Policy
	Info      controller.SolveInfo
	// OldCost/NewCost are Eq. 2 costs, load-independent and therefore
	// valid at any later epoch with unchanged liveness and endpoints.
	OldCost, NewCost float64
	OK               bool
	// Sum is the integrity checksum over the payload, written by the
	// worker after a successful solve and re-verified by the arbiter: a
	// corrupted proposal replays (ReasonChecksum) instead of adopting.
	Sum uint64
}

// proposalSum hashes every adoption-relevant field of a solved proposal.
// The worker stamps it after solving; the arbiter recomputes it before
// adopting, so any payload corruption between the two (a poisoned
// proposal, a worker bug, bit-rot) is caught deterministically.
func proposalSum(pr *Proposal) uint64 {
	var d supervise.Digest
	d.Int(int64(pr.Src))
	d.Int(int64(pr.Dst))
	if pr.Policy != nil {
		d.Int(int64(pr.Policy.Flow))
		d.Int(int64(len(pr.Policy.List)))
		for _, n := range pr.Policy.List {
			d.Int(int64(n))
		}
		d.Int(int64(len(pr.Policy.Types)))
		for _, ty := range pr.Policy.Types {
			d.Str(ty)
		}
	}
	d.Bool(pr.Info.FullStages)
	d.Bool(pr.Info.CacheHit)
	d.Float(pr.OldCost)
	d.Float(pr.NewCost)
	return d.Sum64()
}

// Cell-slot markers in cellIdx: skipSlot flags skip-hinted flows (always
// replayed, as before); stormSlot flags flows whose presolve was
// suppressed by conflict-storm degradation (supervise), which replay with
// ReasonStorm.
const (
	skipSlot  int32 = -1
	stormSlot int32 = -2
)

// opsPerFlow is the flat budget charge per presolved flow; a solved flow
// additionally pays its route length. The unit is "oracle operations",
// deliberately coarse — the budget exists to bound runaway cells
// deterministically, not to meter real work.
const opsPerFlow = 8

// ProposalSet is one phase's fan-out: the immutable inputs, the per-flow
// proposals, and the cell completion signals the arbiter blocks on. Create
// via PresolveOptimize or PresolveRoutes; always Drain before abandoning
// the set (e.g. on an error-path return), so no worker outlives the
// state it reads.
type ProposalSet struct {
	svc       *Service
	flows     []*flow.Flow
	loc       flow.Locator
	snap      netstate.Snapshot
	withCosts bool

	props []Proposal
	// cells[k] lists the (ascending) flow indices of the k-th cell, cells
	// ordered by first flow index so workers claim the earliest-committing
	// work first. cellIdx[i] = k, skipSlot for skip-hinted flows, or
	// stormSlot when degradation suppressed the whole fan-out.
	cells [][]int32
	// cellDone[k] closes exactly once, by runCell — the single closing
	// owner taalint's chandiscipline check enforces. The close is
	// deferred, so it fires on panic and budget-abandonment paths too;
	// the arbiter's wait can therefore block on it unconditionally.
	cellDone []chan struct{}
	cellIdx  []int32
	// poisoned[k] marks cell k's worker panicked: every flow of the cell
	// replays sequentially. abandoned[k] marks the cell ran over its
	// operation budget: its unsolved tail replays.
	poisoned  []atomic.Bool
	abandoned []atomic.Bool

	// phase is the supervisor's fan-out sequence number, namespacing
	// deterministic fault-injection draws; fan is the degradation-adjusted
	// worker budget (0 = presolve suppressed).
	phase uint64
	fan   int

	next atomic.Int64
	wg   sync.WaitGroup
}

// PresolveOptimize fans out phase-1 presolves (route plus old/new cost)
// for every non-skip flow and returns immediately; workers fill proposals
// cell by cell. The old-policy pointers and the snapshot are captured
// sequentially, before any worker starts.
func (s *Service) PresolveOptimize(flows []*flow.Flow, skip []bool, loc flow.Locator) *ProposalSet {
	ps := s.newSet(flows, skip, loc, true)
	for i, f := range flows {
		if ps.cellIdx[i] >= 0 {
			ps.props[i].OldPolicy = s.ctl.Policy(f.ID)
		}
	}
	ps.start()
	return ps
}

// PresolveRoutes fans out phase-3 presolves (route only; flows are
// uninstalled, so there is no incumbent to cost against).
func (s *Service) PresolveRoutes(flows []*flow.Flow, skip []bool, loc flow.Locator) *ProposalSet {
	ps := s.newSet(flows, skip, loc, false)
	ps.start()
	return ps
}

func (s *Service) newSet(flows []*flow.Flow, skip []bool, loc flow.Locator, withCosts bool) *ProposalSet {
	ps := &ProposalSet{
		svc:       s,
		flows:     flows,
		loc:       loc,
		snap:      s.oracle.Snapshot(),
		withCosts: withCosts,
		props:     make([]Proposal, len(flows)),
		cellIdx:   make([]int32, len(flows)),
		phase:     s.sup.NextPhase(),
		fan:       s.sup.EffectiveShards(s.shards),
	}
	if ps.fan < 1 {
		// Conflict-storm degradation: skip the fan-out entirely. Every
		// non-skip flow replays through the sequential controller path —
		// the safe path — until the supervisor re-escalates.
		for i := range flows {
			ps.cellIdx[i] = stormSlot
			if skip != nil && skip[i] {
				ps.cellIdx[i] = skipSlot
			}
		}
		return ps
	}
	slotOf := make(map[int]int)
	for i, f := range flows {
		if skip != nil && skip[i] {
			ps.cellIdx[i] = skipSlot
			continue
		}
		cell := s.oracle.CellOf(loc.ServerOf(f.Src))
		slot, ok := slotOf[cell]
		if !ok {
			slot = len(ps.cells)
			slotOf[cell] = slot
			ps.cells = append(ps.cells, nil)
			ps.cellDone = append(ps.cellDone, make(chan struct{}))
		}
		ps.cells[slot] = append(ps.cells[slot], int32(i))
		ps.cellIdx[i] = int32(slot)
	}
	ps.poisoned = make([]atomic.Bool, len(ps.cells))
	ps.abandoned = make([]atomic.Bool, len(ps.cells))
	return ps
}

// start launches min(fan, cells) workers through the supervisor's
// recover-wrapped entry point (the `panicpath` contract — no naked go
// statements in decision packages). Workers claim cells from an atomic
// counter in slot order (earliest first flow first), presolve every flow
// of the cell, and close the cell's done channel — the arbiter's wait
// unblocks per cell, overlapping commits with later presolves.
func (ps *ProposalSet) start() {
	n := ps.fan
	if n > len(ps.cells) {
		n = len(ps.cells)
	}
	for w := 0; w < n; w++ {
		ps.wg.Add(1)
		ps.svc.sup.Go(func() {
			defer ps.wg.Done()
			for {
				c := int(ps.next.Add(1)) - 1
				if c >= len(ps.cells) {
					return
				}
				ps.runCell(c)
			}
		})
	}
}

// runCell presolves one cell under panic isolation: a panic (injected or
// genuine) poisons the cell — every one of its flows replays through the
// ordered sequential path, which recomputes them and reproduces any
// genuine failure in deterministic order — and the done channel closes
// regardless, so the arbiter never blocks on a dead cell.
func (ps *ProposalSet) runCell(c int) {
	defer close(ps.cellDone[c])
	if panicked, _ := ps.svc.sup.Isolate(func() { ps.presolveCell(c) }); panicked {
		ps.poisoned[c].Store(true)
	}
}

// presolveCell is the budgeted cell body. The operation budget is the
// deterministic straggler guard: its spend sequence depends only on the
// cell's flow list and solve results, so the abandonment point — and
// therefore which flows fall back to sequential replay — is identical on
// every run and at every shard count.
func (ps *ProposalSet) presolveCell(c int) {
	sup := ps.svc.sup
	faults := sup.Faults()
	if faults.PanicCell(ps.phase, c) {
		panic("multisched: injected worker panic")
	}
	bud := sup.CellBudget()
	if faults.StallCell(ps.phase, c) {
		sup.NoteStall()
		bud.Exhaust()
	}
	for _, fi := range ps.cells[c] {
		if !bud.Spend(opsPerFlow) {
			ps.abandoned[c].Store(true)
			sup.NoteOverBudget()
			return
		}
		i := int(fi)
		ps.solveFlow(i)
		if pr := &ps.props[i]; pr.OK {
			if pr.Policy != nil {
				bud.Spend(int64(len(pr.Policy.List)))
			}
			if faults.PoisonFlow(ps.phase, i) {
				poisonProposal(pr)
				sup.NotePoison()
			}
		}
	}
}

// poisonProposal corrupts a solved proposal's payload WITHOUT updating
// its checksum — modeling the bit-flips and stale-buffer bugs the
// integrity sum exists to catch. The arbiter must detect the mismatch and
// replay; adopting a poisoned proposal would corrupt the run.
func poisonProposal(pr *Proposal) {
	switch {
	case pr.Policy != nil && len(pr.Policy.List) > 0:
		pr.Policy.List[0]++
	case pr.OK:
		pr.NewCost = pr.NewCost + 1
	}
}

func (ps *ProposalSet) solveFlow(i int) {
	f := ps.flows[i]
	pr := &ps.props[i]
	pr.Src, pr.Dst = ps.loc.ServerOf(f.Src), ps.loc.ServerOf(f.Dst)
	pol, info, ok := ps.svc.solveBetween(f, pr.Src, pr.Dst)
	if !ok {
		return
	}
	pr.Policy, pr.Info = pol, info
	if ps.withCosts {
		cost := ps.svc.ctl.CostModel()
		oldCost, err := cost.FlowCost(f, pr.OldPolicy, ps.loc)
		if err != nil {
			return
		}
		newCost, err := cost.FlowCost(f, pol, ps.loc)
		if err != nil {
			return
		}
		pr.OldCost, pr.NewCost = oldCost, newCost
	}
	pr.OK = true
	pr.Sum = proposalSum(pr)
}

// wait blocks until flow i's cell has been fully presolved (or poisoned
// or abandoned) and returns its proposal plus the supervisor reason that
// forces a replay: ReasonPanic for a poisoned cell, ReasonBudget for an
// over-budget cell's unsolved tail, ReasonStorm under degradation,
// ReasonMiss for skip-hinted flows. ReasonNone leaves the proposal to
// the arbiter's judgement.
func (ps *ProposalSet) wait(i int) (*Proposal, supervise.Reason) {
	slot := ps.cellIdx[i]
	switch slot {
	case skipSlot:
		return nil, supervise.ReasonMiss
	case stormSlot:
		return nil, supervise.ReasonStorm
	}
	<-ps.cellDone[slot]
	if ps.poisoned[slot].Load() {
		return nil, supervise.ReasonPanic
	}
	pr := &ps.props[i]
	if !pr.OK && ps.abandoned[slot].Load() {
		return nil, supervise.ReasonBudget
	}
	return pr, supervise.ReasonNone
}

// Drain blocks until every worker has exited. Defer it wherever a
// ProposalSet is created: the workers read the locator, cluster and
// oracle, and must not overlap whatever mutation follows an early return.
func (ps *ProposalSet) Drain() { ps.wg.Wait() }
