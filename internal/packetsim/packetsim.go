// Package packetsim is a packet-level discrete-event network simulator, the
// stand-in for the D-ITG traffic measurements of §7.1: where internal/netsim
// treats transfers as fluid flows, packetsim injects individual packets,
// queues them FIFO at every link, applies per-switch forwarding latency, and
// drops packets when a switch's finite queue overflows — the "packets of
// this shuffle traffic flow being rejected" failure of Figure 2. It measures
// the per-packet end-to-end delays Figure 7(b) reports in microseconds.
//
// Units: bytes are GB, bandwidth is GB per time unit, and per-switch
// forwarding latency is LatencyPerT time units per T (the abstract
// switch-delay unit used across the repository).
package packetsim

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/flow"
	"repro/internal/metrics"
	"repro/internal/topology"
)

// Config tunes the packet model.
type Config struct {
	// PacketGB is the packet size (default 0.01 GB — coarse packets keep
	// event counts tractable while preserving queueing behavior).
	PacketGB float64
	// LatencyPerT converts the topology's T units into simulation time
	// (default 1.0).
	LatencyPerT float64
	// QueueCap bounds each switch's output queue in packets; arrivals to a
	// full queue are dropped. Zero means unbounded.
	QueueCap int
	// MaxPacketsPerFlow caps packet counts per flow (default 256) so huge
	// transfers sample rather than enumerate; byte totals are preserved by
	// scaling the packet size per flow.
	MaxPacketsPerFlow int
}

func (c Config) withDefaults() Config {
	if c.PacketGB <= 0 {
		c.PacketGB = 0.01
	}
	if c.LatencyPerT <= 0 {
		c.LatencyPerT = 1
	}
	if c.MaxPacketsPerFlow <= 0 {
		c.MaxPacketsPerFlow = 256
	}
	return c
}

// FlowSpec is one packet stream over a fixed route.
type FlowSpec struct {
	ID flow.ID
	// Route is the concrete node walk (use netsim.ExpandRoute for policy
	// routes with gaps).
	Route []topology.NodeID
	// Bytes to send.
	Bytes float64
	// Start time of the first packet.
	Start float64
	// Interval between packet injections; zero derives it from the first
	// link's bandwidth (back-to-back at line rate).
	Interval float64
}

// FlowResult summarizes one flow's packet telemetry.
type FlowResult struct {
	ID        flow.ID
	Sent      int
	Delivered int
	Dropped   int
	// Delay collects per-packet end-to-end delays of delivered packets.
	Delay metrics.Sample
	// Hops is the route length in links.
	Hops int
}

// LossRate returns dropped/sent (0 when nothing sent).
func (f *FlowResult) LossRate() float64 {
	if f.Sent == 0 {
		return 0
	}
	return float64(f.Dropped) / float64(f.Sent)
}

// Result aggregates a run.
type Result struct {
	Flows map[flow.ID]*FlowResult
	// TotalSent/Delivered/Dropped across flows.
	TotalSent, TotalDelivered, TotalDropped int
}

// AvgDelay returns the mean end-to-end delay over all delivered packets.
func (r *Result) AvgDelay() float64 {
	var sum float64
	n := 0
	for _, f := range r.Flows {
		sum += f.Delay.Sum()
		n += f.Delay.N()
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// LossRate returns the global drop fraction.
func (r *Result) LossRate() float64 {
	if r.TotalSent == 0 {
		return 0
	}
	return float64(r.TotalDropped) / float64(r.TotalSent)
}

// event is a packet arriving at route position pos at time t.
type event struct {
	t      float64
	seq    int // FIFO tiebreak
	flow   int // index into specs
	packet int
	pos    int // index into walk: packet has arrived at walk[pos]
	size   float64
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t { //taalint:floateq total-order comparator: exact compare required for heap consistency

		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// linkState tracks a directed link's FIFO transmitter.
type linkState struct {
	bandwidth float64
	freeAt    float64
}

// Simulate runs the packet simulation to completion.
func Simulate(topo *topology.Topology, specs []*FlowSpec, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{Flows: make(map[flow.ID]*FlowResult, len(specs))}

	type flowState struct {
		spec     *FlowSpec
		walk     []topology.NodeID
		packetGB float64
		interval float64
	}
	states := make([]*flowState, 0, len(specs))
	for _, sp := range specs {
		if _, dup := res.Flows[sp.ID]; dup {
			return nil, fmt.Errorf("packetsim: duplicate flow %d", sp.ID)
		}
		if sp.Bytes < 0 || sp.Start < 0 || sp.Interval < 0 {
			return nil, fmt.Errorf("packetsim: flow %d has negative parameters", sp.ID)
		}
		if len(sp.Route) == 0 {
			return nil, fmt.Errorf("packetsim: flow %d has empty route", sp.ID)
		}
		if err := topo.ValidatePath(sp.Route); err != nil {
			return nil, fmt.Errorf("packetsim: flow %d: %w", sp.ID, err)
		}
		fr := &FlowResult{ID: sp.ID, Hops: len(sp.Route) - 1}
		res.Flows[sp.ID] = fr

		pktGB := cfg.PacketGB
		n := 0
		if sp.Bytes > 0 {
			n = int(sp.Bytes/pktGB + 0.999999)
			if n > cfg.MaxPacketsPerFlow {
				n = cfg.MaxPacketsPerFlow
				pktGB = sp.Bytes / float64(n)
			}
		}
		if n == 0 || len(sp.Route) == 1 {
			continue // nothing to transmit (local or empty flow)
		}
		interval := sp.Interval
		if interval <= 0 {
			l, ok := topo.Link(sp.Route[0], sp.Route[1])
			if !ok {
				return nil, fmt.Errorf("packetsim: flow %d missing first link", sp.ID)
			}
			interval = pktGB / l.Bandwidth
		}
		fr.Sent = n
		res.TotalSent += n
		states = append(states, &flowState{spec: sp, walk: sp.Route, packetGB: pktGB, interval: interval})
	}

	links := make(map[[2]topology.NodeID]*linkState)
	getLink := func(a, b topology.NodeID) (*linkState, error) {
		k := [2]topology.NodeID{a, b}
		if ls, ok := links[k]; ok {
			return ls, nil
		}
		l, ok := topo.Link(a, b)
		if !ok {
			return nil, fmt.Errorf("packetsim: missing link %d-%d", a, b)
		}
		ls := &linkState{bandwidth: l.Bandwidth}
		links[k] = ls
		return ls, nil
	}

	h := &eventHeap{}
	seq := 0
	startOf := make(map[[2]int]float64) // (flow, packet) -> injection time
	for fi, st := range states {
		for p := 0; p < res.Flows[st.spec.ID].Sent; p++ {
			t := st.spec.Start + float64(p)*st.interval
			heap.Push(h, event{t: t, seq: seq, flow: fi, packet: p, pos: 0, size: st.packetGB})
			startOf[[2]int{fi, p}] = t
			seq++
		}
	}

	for h.Len() > 0 {
		ev := heap.Pop(h).(event)
		st := states[ev.flow]
		fr := res.Flows[st.spec.ID]
		node := st.walk[ev.pos]

		if ev.pos == len(st.walk)-1 {
			// Delivered.
			fr.Delivered++
			res.TotalDelivered++
			fr.Delay.Add(ev.t - startOf[[2]int{ev.flow, ev.packet}])
			continue
		}
		// Forwarding latency at switches (the per-T delay).
		depart := ev.t
		if topo.Node(node).IsSwitch() {
			depart += cfg.LatencyPerT
		}
		next := st.walk[ev.pos+1]
		ls, err := getLink(node, next)
		if err != nil {
			return nil, err
		}
		// Queue cap applies at switch egress.
		if cfg.QueueCap > 0 && topo.Node(node).IsSwitch() {
			// Packets currently waiting on this link.
			waiting := 0
			if ls.freeAt > depart {
				waiting = int((ls.freeAt - depart) / (ev.size / ls.bandwidth))
			}
			if waiting >= cfg.QueueCap {
				fr.Dropped++
				res.TotalDropped++
				continue
			}
		}
		txStart := depart
		if ls.freeAt > txStart {
			txStart = ls.freeAt
		}
		txDone := txStart + ev.size/ls.bandwidth
		ls.freeAt = txDone
		heap.Push(h, event{t: txDone, seq: seq, flow: ev.flow, packet: ev.packet, pos: ev.pos + 1, size: ev.size})
		seq++
	}
	return res, nil
}

// DelayPercentile pools all delivered packet delays and returns the p-th
// percentile.
func (r *Result) DelayPercentile(p float64) float64 {
	var all metrics.Sample
	for _, f := range r.Flows {
		all.AddAll(f.Delay.Values())
	}
	return all.Percentile(p)
}

// FlowIDs returns the flow IDs ascending (stable iteration helper).
func (r *Result) FlowIDs() []flow.ID {
	out := make([]flow.ID, 0, len(r.Flows))
	for id := range r.Flows {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
