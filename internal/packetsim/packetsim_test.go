package packetsim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/flow"
	"repro/internal/topology"
)

// lineTopo builds s0 - w0 - w1 - s1 with the given bandwidth.
func lineTopo(t *testing.T, bw float64) (*topology.Topology, []topology.NodeID) {
	t.Helper()
	b := topology.NewBuilder("line")
	w0 := b.AddSwitch("w0", topology.TypeAccess, 0, topology.InfiniteCapacity)
	w1 := b.AddSwitch("w1", topology.TypeAccess, 0, topology.InfiniteCapacity)
	s0 := b.AddServer("s0")
	s1 := b.AddServer("s1")
	b.Connect(s0, w0, bw, 0)
	b.Connect(w0, w1, bw, 0)
	b.Connect(w1, s1, bw, 0)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo, []topology.NodeID{s0, w0, w1, s1}
}

func TestSinglePacketDelay(t *testing.T) {
	topo, n := lineTopo(t, 1)
	spec := &FlowSpec{ID: 0, Route: []topology.NodeID{n[0], n[1], n[2], n[3]}, Bytes: 0.01}
	res, err := Simulate(topo, []*FlowSpec{spec}, Config{PacketGB: 0.01, LatencyPerT: 1})
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Flows[0]
	if fr.Sent != 1 || fr.Delivered != 1 || fr.Dropped != 0 {
		t.Fatalf("sent/delivered/dropped = %d/%d/%d", fr.Sent, fr.Delivered, fr.Dropped)
	}
	// Delay = 3 transmissions x 0.01 + 2 switch latencies x 1 = 2.03.
	if got := fr.Delay.Mean(); math.Abs(got-2.03) > 1e-9 {
		t.Errorf("delay = %v, want 2.03", got)
	}
	if fr.Hops != 3 {
		t.Errorf("hops = %d", fr.Hops)
	}
	if res.LossRate() != 0 {
		t.Errorf("loss = %v", res.LossRate())
	}
}

func TestPipelinedPacketsQueueAtBottleneck(t *testing.T) {
	topo, n := lineTopo(t, 1)
	// 5 packets injected back-to-back: the middle link serializes them; the
	// last packet's delay exceeds the first's.
	spec := &FlowSpec{ID: 0, Route: []topology.NodeID{n[0], n[1], n[2], n[3]}, Bytes: 0.05}
	res, err := Simulate(topo, []*FlowSpec{spec}, Config{PacketGB: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Flows[0]
	if fr.Delivered != 5 {
		t.Fatalf("delivered = %d, want 5", fr.Delivered)
	}
	if fr.Delay.Max() <= fr.Delay.Min() {
		t.Errorf("no queueing spread: min %v max %v", fr.Delay.Min(), fr.Delay.Max())
	}
}

func TestCrossTrafficIncreasesDelay(t *testing.T) {
	topo, n := lineTopo(t, 1)
	route := []topology.NodeID{n[0], n[1], n[2], n[3]}
	solo, err := Simulate(topo, []*FlowSpec{{ID: 0, Route: route, Bytes: 0.05}}, Config{PacketGB: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	both, err := Simulate(topo, []*FlowSpec{
		{ID: 0, Route: route, Bytes: 0.05},
		{ID: 1, Route: route, Bytes: 0.05},
	}, Config{PacketGB: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if both.Flows[0].Delay.Mean() <= solo.Flows[0].Delay.Mean() {
		t.Errorf("cross traffic did not raise delay: %v vs %v",
			both.Flows[0].Delay.Mean(), solo.Flows[0].Delay.Mean())
	}
}

func TestQueueCapDropsPackets(t *testing.T) {
	// Four sources converge on one egress link: queueing builds at the
	// shared switch, and with a tiny queue cap packets must drop.
	b := topology.NewBuilder("star")
	w0 := b.AddSwitch("w0", topology.TypeAccess, 0, topology.InfiniteCapacity)
	w1 := b.AddSwitch("w1", topology.TypeAccess, 0, topology.InfiniteCapacity)
	sink := b.AddServer("sink")
	b.Connect(w0, w1, 1, 0)
	b.Connect(w1, sink, 4, 0)
	var sources []topology.NodeID
	for i := 0; i < 4; i++ {
		src := b.AddServer("s")
		b.Connect(src, w0, 1, 0)
		sources = append(sources, src)
	}
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var specs []*FlowSpec
	for i, src := range sources {
		specs = append(specs, &FlowSpec{
			ID:    flow.ID(i),
			Route: []topology.NodeID{src, w0, w1, sink},
			Bytes: 0.2,
		})
	}
	res, err := Simulate(topo, specs, Config{PacketGB: 0.01, QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDropped == 0 {
		t.Error("no drops despite tiny queues and heavy load")
	}
	if res.LossRate() <= 0 || res.LossRate() >= 1 {
		t.Errorf("loss rate = %v", res.LossRate())
	}
	// Conservation: sent = delivered + dropped.
	if res.TotalSent != res.TotalDelivered+res.TotalDropped {
		t.Errorf("conservation violated: %d != %d + %d", res.TotalSent, res.TotalDelivered, res.TotalDropped)
	}
}

func TestLocalFlowNoPackets(t *testing.T) {
	topo, n := lineTopo(t, 1)
	res, err := Simulate(topo, []*FlowSpec{{ID: 0, Route: []topology.NodeID{n[0]}, Bytes: 1}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[0].Sent != 0 {
		t.Errorf("local flow sent %d packets", res.Flows[0].Sent)
	}
	if res.AvgDelay() != 0 {
		t.Errorf("avg delay = %v", res.AvgDelay())
	}
}

func TestMaxPacketsPerFlowScalesSize(t *testing.T) {
	topo, n := lineTopo(t, 10)
	spec := &FlowSpec{ID: 0, Route: []topology.NodeID{n[0], n[1], n[2], n[3]}, Bytes: 100}
	res, err := Simulate(topo, []*FlowSpec{spec}, Config{PacketGB: 0.01, MaxPacketsPerFlow: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[0].Sent != 16 {
		t.Errorf("sent = %d, want capped 16", res.Flows[0].Sent)
	}
}

func TestSimulateErrors(t *testing.T) {
	topo, n := lineTopo(t, 1)
	route := []topology.NodeID{n[0], n[1], n[2], n[3]}
	if _, err := Simulate(topo, []*FlowSpec{{ID: 0, Route: route, Bytes: 1}, {ID: 0, Route: route, Bytes: 1}}, Config{}); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := Simulate(topo, []*FlowSpec{{ID: 0, Route: nil, Bytes: 1}}, Config{}); err == nil {
		t.Error("empty route accepted")
	}
	if _, err := Simulate(topo, []*FlowSpec{{ID: 0, Route: route, Bytes: -1}}, Config{}); err == nil {
		t.Error("negative bytes accepted")
	}
	if _, err := Simulate(topo, []*FlowSpec{{ID: 0, Route: []topology.NodeID{n[0], n[3]}, Bytes: 1}}, Config{}); err == nil {
		t.Error("non-adjacent route accepted")
	}
}

func TestDelayPercentileAndFlowIDs(t *testing.T) {
	topo, n := lineTopo(t, 1)
	route := []topology.NodeID{n[0], n[1], n[2], n[3]}
	res, err := Simulate(topo, []*FlowSpec{
		{ID: 3, Route: route, Bytes: 0.05},
		{ID: 1, Route: route, Bytes: 0.05},
	}, Config{PacketGB: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.FlowIDs(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("FlowIDs = %v", got)
	}
	p50 := res.DelayPercentile(50)
	p99 := res.DelayPercentile(99)
	if p50 <= 0 || p99 < p50 {
		t.Errorf("percentiles wrong: p50=%v p99=%v", p50, p99)
	}
}

// TestQuickConservationAndMonotoneDelay: across random topologies and flow
// sets, sent = delivered + dropped and every delivered delay >= the
// zero-load lower bound (transmissions + switch latencies).
func TestQuickConservationAndMonotoneDelay(t *testing.T) {
	topo, err := topology.NewTree(2, 3, topology.LinkParams{Bandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := topo.Servers()
	f := func(seed int64, nFlows uint8) bool {
		count := int(nFlows%4) + 1
		base := int(uint64(seed) % 1000)
		var specs []*FlowSpec
		for i := 0; i < count; i++ {
			a := srv[(base+i*3)%len(srv)]
			b := srv[(base+i*5+1)%len(srv)]
			if a == b {
				continue
			}
			specs = append(specs, &FlowSpec{
				ID:    flow.ID(i),
				Route: topo.ShortestPath(a, b),
				Bytes: 0.02 + float64(i)*0.01,
			})
		}
		if len(specs) == 0 {
			return true
		}
		res, err := Simulate(topo, specs, Config{PacketGB: 0.01})
		if err != nil {
			return false
		}
		if res.TotalSent != res.TotalDelivered+res.TotalDropped {
			return false
		}
		for _, sp := range specs {
			fr := res.Flows[sp.ID]
			if fr.Delivered == 0 {
				continue
			}
			// Zero-load bound: hops transmissions + switches' latency.
			switches := 0
			for _, nd := range sp.Route {
				if topo.Node(nd).IsSwitch() {
					switches++
				}
			}
			bound := float64(fr.Hops)*0.01/1.0 + float64(switches)*1.0
			if fr.Delay.Min() < bound-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
