package controller

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/flow"
	"repro/internal/topology"
)

// env pins containers to servers with a map-backed locator over a fat-tree.
type env struct {
	topo *topology.Topology
	ctl  *Controller
	loc  map[cluster.ContainerID]topology.NodeID
}

func (e *env) locator() flow.Locator {
	return flow.LocatorFunc(func(c cluster.ContainerID) topology.NodeID {
		if s, ok := e.loc[c]; ok {
			return s
		}
		return topology.None
	})
}

func newEnv(t *testing.T, p topology.LinkParams) *env {
	t.Helper()
	topo, err := topology.NewFatTree(4, p)
	if err != nil {
		t.Fatalf("NewFatTree: %v", err)
	}
	return &env{topo: topo, ctl: New(topo), loc: make(map[cluster.ContainerID]topology.NodeID)}
}

func (e *env) flowBetween(id flow.ID, a, b cluster.ContainerID, srvA, srvB topology.NodeID, rate float64) *flow.Flow {
	e.loc[a] = srvA
	e.loc[b] = srvB
	return &flow.Flow{ID: id, Src: a, Dst: b, SizeGB: rate, Rate: rate}
}

func TestInstallUninstallLoadAccounting(t *testing.T) {
	e := newEnv(t, topology.LinkParams{})
	srv := e.topo.Servers()
	f := e.flowBetween(0, 1, 2, srv[0], srv[15], 2)
	p, err := e.ctl.ShortestPolicy(f, e.locator())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ctl.Install(f, p); err != nil {
		t.Fatalf("Install: %v", err)
	}
	if e.ctl.NumPolicies() != 1 {
		t.Errorf("NumPolicies = %d", e.ctl.NumPolicies())
	}
	for _, w := range p.List {
		if got := e.ctl.Load(w); got != 2 {
			t.Errorf("load(%d) = %v, want 2", w, got)
		}
	}
	// Reinstalling the same flow must not double-count.
	if err := e.ctl.Install(f, p); err != nil {
		t.Fatalf("reinstall: %v", err)
	}
	for _, w := range p.List {
		if got := e.ctl.Load(w); got != 2 {
			t.Errorf("load(%d) after reinstall = %v, want 2", w, got)
		}
	}
	e.ctl.Uninstall(f.ID)
	for _, w := range p.List {
		if got := e.ctl.Load(w); got != 0 {
			t.Errorf("load(%d) after uninstall = %v, want 0", w, got)
		}
	}
	// Uninstalling twice is a no-op.
	e.ctl.Uninstall(f.ID)
	if e.ctl.NumPolicies() != 0 {
		t.Error("policies remain after uninstall")
	}
}

func TestInstallRejectsOverCapacity(t *testing.T) {
	// Capacity 3 per switch; two rate-2 flows sharing a switch must conflict.
	e := newEnv(t, topology.LinkParams{Bandwidth: 1, SwitchCapacity: 3})
	srv := e.topo.Servers()
	f1 := e.flowBetween(0, 1, 2, srv[0], srv[1], 2)
	f2 := e.flowBetween(1, 3, 4, srv[0], srv[1], 2)
	p1, _ := e.ctl.ShortestPolicy(f1, e.locator())
	p2, _ := e.ctl.ShortestPolicy(f2, e.locator())
	if err := e.ctl.Install(f1, p1); err != nil {
		t.Fatal(err)
	}
	if err := e.ctl.Install(f2, p2); err == nil {
		t.Fatal("second flow fit through a saturated access switch")
	}
	// The first remains installed.
	if e.ctl.Policy(f1.ID) == nil {
		t.Error("first policy lost")
	}
}

func TestInstallValidation(t *testing.T) {
	e := newEnv(t, topology.LinkParams{})
	srv := e.topo.Servers()
	f := e.flowBetween(0, 1, 2, srv[0], srv[1], 1)
	p, _ := e.ctl.ShortestPolicy(f, e.locator())
	// Wrong flow ID on policy.
	bad := p.Clone()
	bad.Flow = 9
	if err := e.ctl.Install(f, bad); err == nil {
		t.Error("mismatched policy flow accepted")
	}
	// Unsatisfied policy.
	bad = p.Clone()
	bad.Types[0] = "bogus"
	if err := e.ctl.Install(f, bad); err == nil {
		t.Error("unsatisfied policy accepted")
	}
	// Invalid flow.
	selfFlow := &flow.Flow{ID: 3, Src: 5, Dst: 5, SizeGB: 1, Rate: 1}
	if err := e.ctl.Install(selfFlow, p); err == nil {
		t.Error("invalid flow accepted")
	}
}

func TestShortestPolicySameServer(t *testing.T) {
	e := newEnv(t, topology.LinkParams{})
	srv := e.topo.Servers()
	f := e.flowBetween(0, 1, 2, srv[0], srv[0], 1)
	p, err := e.ctl.ShortestPolicy(f, e.locator())
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 0 {
		t.Errorf("same-server policy has %d switches", p.Len())
	}
	// OptimizePolicy agrees.
	opt, err := e.ctl.OptimizePolicy(f, e.locator())
	if err != nil {
		t.Fatal(err)
	}
	if opt.Len() != 0 {
		t.Errorf("optimized same-server policy has %d switches", opt.Len())
	}
}

func TestShortestPolicyUnplaced(t *testing.T) {
	e := newEnv(t, topology.LinkParams{})
	f := &flow.Flow{ID: 0, Src: 1, Dst: 2, SizeGB: 1, Rate: 1}
	if _, err := e.ctl.ShortestPolicy(f, e.locator()); err == nil {
		t.Error("unplaced endpoints accepted")
	}
	if _, err := e.ctl.OptimizePolicy(f, e.locator()); err == nil {
		t.Error("unplaced endpoints accepted by optimizer")
	}
	if _, err := e.ctl.RandomPolicy(f, e.locator(), rand.New(rand.NewSource(1))); err == nil {
		t.Error("unplaced endpoints accepted by random policy")
	}
}

func TestOptimizePolicyMatchesShortestWhenIdle(t *testing.T) {
	e := newEnv(t, topology.LinkParams{})
	cm := e.ctl.CostModel()
	srv := e.topo.Servers()
	f := e.flowBetween(0, 1, 2, srv[0], srv[15], 1)
	loc := e.locator()
	opt, err := e.ctl.OptimizePolicy(f, loc)
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := e.ctl.ShortestPolicy(f, loc)
	optCost, _ := cm.FlowCost(f, opt, loc)
	spCost, _ := cm.FlowCost(f, sp, loc)
	if optCost != spCost {
		t.Errorf("idle-network optimized cost %v != shortest %v", optCost, spCost)
	}
	if err := opt.Satisfied(e.topo); err != nil {
		t.Errorf("optimized policy unsatisfied: %v", err)
	}
}

func TestOptimizePolicyRoutesAroundHotSwitch(t *testing.T) {
	// The Figure 2 scenario: saturate one aggregation switch, then check the
	// optimizer picks an alternative of the same type.
	e := newEnv(t, topology.LinkParams{Bandwidth: 1, SwitchCapacity: 4})
	srv := e.topo.Servers()
	loc := e.locator()

	// Flow 0 inter-pod via default shortest path.
	f0 := e.flowBetween(0, 1, 2, srv[0], srv[15], 1)
	p0, err := e.ctl.OptimizePolicy(f0, loc)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ctl.Install(f0, p0); err != nil {
		t.Fatal(err)
	}
	// Saturate the aggregation switch flow 0 uses with a fat background flow.
	var agg topology.NodeID = topology.None
	for i, typ := range p0.Types {
		if typ == topology.TypeAggregation {
			agg = p0.List[i]
			break
		}
	}
	if agg == topology.None {
		t.Fatal("no aggregation switch on inter-pod route")
	}
	bg := e.flowBetween(1, 3, 4, srv[0], srv[15], 3) // 1 + 3 = 4 = capacity
	pbg := p0.Clone()
	pbg.Flow = 1
	if err := e.ctl.Install(bg, pbg); err != nil {
		t.Fatal(err)
	}
	// A third flow (rate 1) cannot use `agg` (4 + 1 > 4) and must route around.
	f2 := e.flowBetween(2, 5, 6, srv[0], srv[15], 1)
	p2, err := e.ctl.OptimizePolicy(f2, loc)
	if err != nil {
		t.Fatalf("OptimizePolicy with hot switch: %v", err)
	}
	for _, w := range p2.List {
		if w == agg {
			t.Errorf("optimizer routed through saturated switch %d", agg)
		}
	}
	if err := e.ctl.Install(f2, p2); err != nil {
		t.Errorf("routed-around policy rejected: %v", err)
	}
}

func TestOptimizeInstalledImprovesRandom(t *testing.T) {
	e := newEnv(t, topology.LinkParams{})
	srv := e.topo.Servers()
	rng := rand.New(rand.NewSource(3))
	loc := e.locator()
	cm := e.ctl.CostModel()

	improvedSomewhere := false
	for i := 0; i < 20; i++ {
		f := e.flowBetween(flow.ID(i), cluster.ContainerID(2*i), cluster.ContainerID(2*i+1),
			srv[rng.Intn(len(srv))], srv[rng.Intn(len(srv))], 1)
		if e.loc[f.Src] == e.loc[f.Dst] {
			continue
		}
		rp, err := e.ctl.RandomPolicy(f, loc, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.ctl.Install(f, rp); err != nil {
			t.Fatal(err)
		}
		before, _ := cm.FlowCost(f, rp, loc)
		u, err := e.ctl.OptimizeInstalled(f, loc)
		if err != nil {
			t.Fatal(err)
		}
		after, _ := cm.FlowCost(f, e.ctl.Policy(f.ID), loc)
		if u < 0 {
			t.Errorf("negative utility %v", u)
		}
		if math.Abs((before-after)-u) > 1e-9 {
			t.Errorf("utility %v != cost delta %v", u, before-after)
		}
		if after > before {
			t.Errorf("optimization increased cost %v -> %v", before, after)
		}
		if u > 0 {
			improvedSomewhere = true
		}
	}
	if !improvedSomewhere {
		t.Error("random policies were never improved; optimizer inert")
	}
}

func TestOptimizeInstalledUnknownFlow(t *testing.T) {
	e := newEnv(t, topology.LinkParams{})
	f := &flow.Flow{ID: 42, Src: 1, Dst: 2, SizeGB: 1, Rate: 1}
	if _, err := e.ctl.OptimizeInstalled(f, e.locator()); err == nil {
		t.Error("unknown flow accepted")
	}
}

func TestCandidatesEq4(t *testing.T) {
	e := newEnv(t, topology.LinkParams{Bandwidth: 1, SwitchCapacity: 2})
	srv := e.topo.Servers()
	loc := e.locator()
	f := e.flowBetween(0, 1, 2, srv[0], srv[15], 1)
	p, err := e.ctl.OptimizePolicy(f, loc)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ctl.Install(f, p); err != nil {
		t.Fatal(err)
	}
	// Core stage: 4 cores total, 3 alternatives, all same type with headroom.
	coreIdx := -1
	for i, typ := range p.Types {
		if typ == topology.TypeCore {
			coreIdx = i
		}
	}
	if coreIdx < 0 {
		t.Fatal("no core stage")
	}
	cands, err := e.ctl.Candidates(f.ID, coreIdx)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 3 {
		t.Errorf("core candidates = %d, want 3", len(cands))
	}
	for _, w := range cands {
		if e.topo.Node(w).Type != topology.TypeCore {
			t.Errorf("candidate %d not a core switch", w)
		}
		if w == p.List[coreIdx] {
			t.Error("incumbent listed as candidate")
		}
	}
	// Saturate one alternative core with a flow between two other pods (so
	// its edge/aggregation switches do not collide with f's); it must drop
	// out of the candidate set.
	other := cands[0]
	bg := e.flowBetween(1, 3, 4, srv[4], srv[8], 2)
	pbg, err := e.ctl.ShortestPolicy(bg, loc)
	if err != nil {
		t.Fatal(err)
	}
	for i, typ := range pbg.Types {
		if typ == topology.TypeCore {
			pbg.List[i] = other
		}
	}
	if err := e.ctl.Install(bg, pbg); err != nil {
		t.Fatal(err)
	}
	cands2, err := e.ctl.Candidates(f.ID, coreIdx)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range cands2 {
		if w == other {
			t.Errorf("saturated switch %d still a candidate", other)
		}
	}
	// Errors.
	if _, err := e.ctl.Candidates(99, 0); err == nil {
		t.Error("unknown flow accepted")
	}
	if _, err := e.ctl.Candidates(f.ID, 99); err == nil {
		t.Error("out-of-range position accepted")
	}
}

func TestRandomPolicySatisfiedAndSeedStable(t *testing.T) {
	e := newEnv(t, topology.LinkParams{})
	srv := e.topo.Servers()
	loc := e.locator()
	f := e.flowBetween(0, 1, 2, srv[0], srv[12], 1)
	p1, err := e.ctl.RandomPolicy(f, loc, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Satisfied(e.topo); err != nil {
		t.Errorf("random policy unsatisfied: %v", err)
	}
	p2, _ := e.ctl.RandomPolicy(f, loc, rand.New(rand.NewSource(5)))
	for i := range p1.List {
		if p1.List[i] != p2.List[i] {
			t.Fatal("same seed produced different random policies")
		}
	}
}

func TestTotalCostAndReset(t *testing.T) {
	e := newEnv(t, topology.LinkParams{})
	srv := e.topo.Servers()
	loc := e.locator()
	f := e.flowBetween(0, 1, 2, srv[0], srv[1], 1)
	p, _ := e.ctl.ShortestPolicy(f, loc)
	if err := e.ctl.Install(f, p); err != nil {
		t.Fatal(err)
	}
	total, err := e.ctl.TotalCost([]*flow.Flow{f}, loc)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 { // same edge switch: 2 hops at rate 1
		t.Errorf("TotalCost = %v, want 2", total)
	}
	e.ctl.Reset()
	if e.ctl.NumPolicies() != 0 {
		t.Error("Reset left policies")
	}
	if _, err := e.ctl.TotalCost([]*flow.Flow{f}, loc); err == nil {
		t.Error("TotalCost found policy after reset")
	}
}

func TestOverloadedSwitches(t *testing.T) {
	e := newEnv(t, topology.LinkParams{Bandwidth: 1, SwitchCapacity: 10})
	srv := e.topo.Servers()
	loc := e.locator()
	f := e.flowBetween(0, 1, 2, srv[0], srv[1], 8)
	p, _ := e.ctl.ShortestPolicy(f, loc)
	if err := e.ctl.Install(f, p); err != nil {
		t.Fatal(err)
	}
	if got := e.ctl.OverloadedSwitches(); len(got) != 0 {
		t.Errorf("unexpected overloads %v", got)
	}
	if got := e.ctl.Headroom(p.List[0]); got != 2 {
		t.Errorf("headroom = %v, want 2", got)
	}
}

// TestQuickOptimizedNeverWorseThanRandom: for random endpoint pairs, the
// optimized policy's cost never exceeds the random policy's cost.
func TestQuickOptimizedNeverWorseThanRandom(t *testing.T) {
	e := newEnv(t, topology.LinkParams{})
	srv := e.topo.Servers()
	cm := e.ctl.CostModel()
	rng := rand.New(rand.NewSource(17))
	loc := e.locator()

	f := func(aIdx, bIdx uint8) bool {
		sa := srv[int(aIdx)%len(srv)]
		sb := srv[int(bIdx)%len(srv)]
		if sa == sb {
			return true
		}
		fl := e.flowBetween(7, 100, 101, sa, sb, 1)
		rp, err := e.ctl.RandomPolicy(fl, loc, rng)
		if err != nil {
			return false
		}
		op, err := e.ctl.OptimizePolicy(fl, loc)
		if err != nil {
			return false
		}
		rc, err1 := cm.FlowCost(fl, rp, loc)
		oc, err2 := cm.FlowCost(fl, op, loc)
		if err1 != nil || err2 != nil {
			return false
		}
		// Optimal is also never better than the graph shortest path.
		return oc <= rc+1e-9 && oc >= float64(e.topo.Dist(sa, sb))-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickLoadConservation: after arbitrary install/uninstall sequences the
// total switch load equals the sum over installed policies of rate x
// switch-count.
func TestQuickLoadConservation(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		topo, err := topology.NewFatTree(4, topology.LinkParams{})
		if err != nil {
			return false
		}
		ctl := New(topo)
		srv := topo.Servers()
		locMap := make(map[cluster.ContainerID]topology.NodeID)
		loc := flow.LocatorFunc(func(c cluster.ContainerID) topology.NodeID {
			if s, ok := locMap[c]; ok {
				return s
			}
			return topology.None
		})
		flows := make(map[flow.ID]*flow.Flow)
		for i := 0; i < 6; i++ {
			a := cluster.ContainerID(2 * i)
			b := cluster.ContainerID(2*i + 1)
			locMap[a] = srv[rng.Intn(len(srv))]
			locMap[b] = srv[rng.Intn(len(srv))]
			if locMap[a] == locMap[b] {
				continue
			}
			flows[flow.ID(i)] = &flow.Flow{ID: flow.ID(i), Src: a, Dst: b, SizeGB: 1, Rate: 0.1 + rng.Float64()}
		}
		for op := 0; op < int(ops%40); op++ {
			for id, fl := range flows {
				if rng.Intn(2) == 0 {
					p, err := ctl.RandomPolicy(fl, loc, rng)
					if err == nil {
						_ = ctl.Install(fl, p)
					}
				} else {
					ctl.Uninstall(id)
				}
			}
		}
		// Conservation check.
		want := make(map[topology.NodeID]float64)
		for id, p := range ctl.Policies() {
			for _, w := range p.List {
				want[w] += flows[id].Rate
			}
		}
		for _, w := range topo.Switches() {
			if math.Abs(ctl.Load(w)-want[w]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRebalanceOverloadedReroutesFlows(t *testing.T) {
	e := newEnv(t, topology.LinkParams{Bandwidth: 1, SwitchCapacity: 10})
	srv := e.topo.Servers()
	loc := e.locator()

	// Three inter-pod flows all optimized onto (initially roomy) switches.
	var flows []*flow.Flow
	for i := 0; i < 3; i++ {
		f := e.flowBetween(flow.ID(i), cluster.ContainerID(2*i), cluster.ContainerID(2*i+1),
			srv[0], srv[15], 2)
		p, err := e.ctl.OptimizePolicy(f, loc)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.ctl.Install(f, p); err != nil {
			t.Fatal(err)
		}
		flows = append(flows, f)
	}
	// Degrade the hottest aggregation switch below its current load.
	var hottest topology.NodeID = topology.None
	var maxLoad float64
	for _, w := range e.topo.SwitchesOfType(topology.TypeAggregation) {
		if l := e.ctl.Load(w); l > maxLoad {
			hottest, maxLoad = w, l
		}
	}
	if hottest == topology.None || maxLoad == 0 {
		t.Fatal("no loaded aggregation switch")
	}
	if err := e.topo.SetSwitchCapacity(hottest, maxLoad/2); err != nil {
		t.Fatal(err)
	}
	if len(e.ctl.OverloadedSwitches()) == 0 {
		t.Fatal("degradation did not overload the switch")
	}
	moved, err := e.ctl.RebalanceOverloaded(flows, loc)
	if err != nil {
		t.Fatalf("RebalanceOverloaded: %v", err)
	}
	if moved == 0 {
		t.Error("no flows moved")
	}
	if over := e.ctl.OverloadedSwitches(); len(over) != 0 {
		t.Errorf("still overloaded: %v", over)
	}
	// Policies remain installed and satisfied.
	for _, f := range flows {
		p := e.ctl.Policy(f.ID)
		if p == nil {
			t.Errorf("flow %d lost its policy", f.ID)
			continue
		}
		if err := p.Satisfied(e.topo); err != nil {
			t.Errorf("flow %d: %v", f.ID, err)
		}
	}
}

func TestRebalanceOverloadedImmovable(t *testing.T) {
	e := newEnv(t, topology.LinkParams{Bandwidth: 1, SwitchCapacity: 10})
	srv := e.topo.Servers()
	loc := e.locator()
	f := e.flowBetween(0, 1, 2, srv[0], srv[1], 4)
	p, _ := e.ctl.ShortestPolicy(f, loc)
	if err := e.ctl.Install(f, p); err != nil {
		t.Fatal(err)
	}
	// Degrade the (unique) edge switch; the flow cannot avoid it, and the
	// rebalancer is not given the flow anyway.
	edge := p.List[0]
	if err := e.topo.SetSwitchCapacity(edge, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ctl.RebalanceOverloaded(nil, loc); err == nil {
		t.Error("immovable overload not reported")
	}
}

func TestSetSwitchCapacityErrors(t *testing.T) {
	e := newEnv(t, topology.LinkParams{})
	if err := e.topo.SetSwitchCapacity(e.topo.Servers()[0], 5); err == nil {
		t.Error("server capacity change accepted")
	}
	if err := e.topo.SetSwitchCapacity(e.topo.Switches()[0], -1); err == nil {
		t.Error("negative capacity accepted")
	}
	if err := e.topo.SetLinkBandwidth(e.topo.Servers()[0], e.topo.Servers()[1], 1); err == nil {
		t.Error("missing link accepted")
	}
	l := e.topo.Links()[0]
	if err := e.topo.SetLinkBandwidth(l.A, l.B, 0); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if err := e.topo.SetLinkBandwidth(l.A, l.B, 0.5); err != nil {
		t.Errorf("valid bandwidth change rejected: %v", err)
	}
	if got, _ := e.topo.Link(l.A, l.B); got.Bandwidth != 0.5 {
		t.Errorf("bandwidth = %v after change", got.Bandwidth)
	}
}

func TestUtilizationStats(t *testing.T) {
	e := newEnv(t, topology.LinkParams{Bandwidth: 1, SwitchCapacity: 10})
	srv := e.topo.Servers()
	loc := e.locator()

	// Empty fabric.
	st := e.ctl.Utilization()
	if st.Loaded != 0 || st.MaxLoad != 0 || st.MeanUtil != 0 {
		t.Errorf("empty utilization = %+v", st)
	}

	f := e.flowBetween(0, 1, 2, srv[0], srv[15], 4)
	p, err := e.ctl.OptimizePolicy(f, loc)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ctl.Install(f, p); err != nil {
		t.Fatal(err)
	}
	st = e.ctl.Utilization()
	if st.Loaded != p.Len() {
		t.Errorf("loaded = %d, want %d", st.Loaded, p.Len())
	}
	if st.MaxLoad != 4 {
		t.Errorf("max load = %v, want 4", st.MaxLoad)
	}
	if st.MaxUtil != 0.4 {
		t.Errorf("max util = %v, want 0.4", st.MaxUtil)
	}
	if st.MeanLoad <= 0 || st.MeanLoad > st.MaxLoad {
		t.Errorf("mean load = %v", st.MeanLoad)
	}

	byType := e.ctl.UtilizationByType()
	// An inter-pod fat-tree route touches access, aggregation and core tiers.
	for _, typ := range []string{topology.TypeAccess, topology.TypeAggregation, topology.TypeCore} {
		if byType[typ].Loaded == 0 {
			t.Errorf("type %s shows no load", typ)
		}
	}
	var totalLoaded int
	for _, s := range byType {
		totalLoaded += s.Loaded
	}
	if totalLoaded != st.Loaded {
		t.Errorf("per-type loaded sums to %d, want %d", totalLoaded, st.Loaded)
	}
}

func BenchmarkOptimizePolicy(b *testing.B) {
	topo, err := topology.NewFatTree(8, topology.LinkParams{Bandwidth: 1, SwitchCapacity: 48})
	if err != nil {
		b.Fatal(err)
	}
	ctl := New(topo)
	srv := topo.Servers()
	loc := flow.LocatorFunc(func(c cluster.ContainerID) topology.NodeID {
		if c == 0 {
			return srv[0]
		}
		return srv[len(srv)-1]
	})
	f := &flow.Flow{ID: 0, Src: 0, Dst: 1, SizeGB: 1, Rate: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctl.OptimizePolicy(f, loc); err != nil {
			b.Fatal(err)
		}
	}
}
