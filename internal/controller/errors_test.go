package controller

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/flow"
	"repro/internal/topology"
)

// TestErrNoFeasibleSwitchSentinel drives every Algorithm-1 constructor into
// the saturated-fabric failure and checks the error wraps
// ErrNoFeasibleSwitch, so callers can branch without string matching.
func TestErrNoFeasibleSwitchSentinel(t *testing.T) {
	e := newEnv(t, topology.LinkParams{SwitchCapacity: 1})
	srv := e.topo.Servers()
	f := e.flowBetween(0, 1, 2, srv[0], srv[15], 5) // rate 5 > every cap 1

	if _, err := e.ctl.RandomPolicy(f, e.locator(), rand.New(rand.NewSource(1))); !errors.Is(err, ErrNoFeasibleSwitch) {
		t.Errorf("RandomPolicy error = %v, want wrap of ErrNoFeasibleSwitch", err)
	}
	if _, err := e.ctl.OptimizePolicy(f, e.locator()); !errors.Is(err, ErrNoFeasibleSwitch) {
		t.Errorf("OptimizePolicy error = %v, want wrap of ErrNoFeasibleSwitch", err)
	}
	if _, err := e.ctl.OptimizeBetween(f, srv[0], srv[15]); !errors.Is(err, ErrNoFeasibleSwitch) {
		t.Errorf("OptimizeBetween error = %v, want wrap of ErrNoFeasibleSwitch", err)
	}
}

// TestErrNoFeasibleRouteSentinel disconnects a server (its access switch
// crashes in a single-homed tree) and checks the no-path failures wrap
// ErrNoFeasibleRoute.
func TestErrNoFeasibleRouteSentinel(t *testing.T) {
	topo, err := topology.NewTree(2, 2, topology.LinkParams{SwitchCapacity: topology.InfiniteCapacity})
	if err != nil {
		t.Fatal(err)
	}
	srv := topo.Servers()
	ctl := New(topo)
	acc := topo.AccessSwitch(srv[0])
	if err := topo.SetNodeAlive(acc, false); err != nil {
		t.Fatal(err)
	}
	f := &flow.Flow{ID: 7, Src: 1, Dst: 2, SizeGB: 1, Rate: 1}
	if _, err := ctl.OptimizeBetween(f, srv[0], srv[len(srv)-1]); err == nil {
		t.Fatal("expected error for disconnected pair")
	} else if !errors.Is(err, ErrNoFeasibleRoute) {
		t.Errorf("OptimizeBetween error = %v, want wrap of ErrNoFeasibleRoute", err)
	}
}

// TestInstallRejectsDeadSwitchPolicy builds a valid policy, crashes one of
// its switches, and checks Install refuses it.
func TestInstallRejectsDeadSwitchPolicy(t *testing.T) {
	e := newEnv(t, topology.LinkParams{})
	srv := e.topo.Servers()
	f := e.flowBetween(0, 1, 2, srv[0], srv[15], 1)
	p, err := e.ctl.OptimizePolicy(f, e.locator())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.List) == 0 {
		t.Fatal("expected a non-trivial route")
	}
	if err := e.topo.SetNodeAlive(p.List[0], false); err != nil {
		t.Fatal(err)
	}
	if err := e.ctl.Install(f, p); err == nil {
		t.Fatalf("Install accepted a policy through dead switch %d", p.List[0])
	}
}
