// Package controller implements the centralized network-policy controller
// of §6/§7.1: it tracks the aggregate flow rate loaded onto every switch,
// installs and removes per-flow policies (the ordered, typed switch lists of
// §3), computes the candidate switch sets of Eq. 4, and performs the Policy
// Optimization Algorithm (Algorithm 1) — finding, for one flow, the
// minimum-cost route through switches of the required types that respects
// every switch's remaining capacity.
package controller

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/flow"
	"repro/internal/netstate"
	"repro/internal/topology"
)

// Sentinel errors for the two infeasibility classes Algorithm 1 can hit.
// Every constructor wraps them with %w, so callers (core's degraded mode,
// the fault reactor) branch with errors.Is instead of string matching — a
// contract taalint's errcompare check now enforces across every decision
// package.
var (
	// ErrNoFeasibleSwitch: some required switch type has no candidate with
	// spare capacity (all saturated, or all of that type dead).
	ErrNoFeasibleSwitch = errors.New("no feasible switch")
	// ErrNoFeasibleRoute: no stage assignment yields a finite-cost route,
	// or the endpoint servers are disconnected.
	ErrNoFeasibleRoute = errors.New("no feasible route")
)

// Controller is the centralized policy manager. Mutations (Install,
// Uninstall, Reset) are single-goroutine, as the simulator drives them;
// read-only queries may run concurrently through the shared oracle.
type Controller struct {
	topo     *topology.Topology
	oracle   *netstate.Oracle
	cost     *flow.CostModel
	policies map[flow.ID]*flow.Policy
	rates    map[flow.ID]float64
	// load is the aggregate installed rate per node, indexed by NodeID
	// (dense: node IDs are compact). Only switch entries are ever nonzero.
	load []float64

	// fitsAll memoizes FitsEverywhere per rate-bit-pattern, valid for one
	// oracle epoch (any Install/Uninstall/Reset/topology change bumps it).
	fitsAllEpoch uint64
	fitsAllValid bool
	fitsAll      map[uint64]bool
}

// New returns an empty controller over the topology, backed by a fresh
// memoizing netstate oracle.
func New(topo *topology.Topology) *Controller {
	return NewWithOracle(topo, netstate.New(topo))
}

// NewWithOracle returns an empty controller sharing the given oracle. The
// controller binds its switch-load view to the oracle and bumps the
// oracle's epoch on every state mutation, upholding the netstate
// epoch-invalidation contract.
func NewWithOracle(topo *topology.Topology, o *netstate.Oracle) *Controller {
	c := &Controller{
		topo:     topo,
		oracle:   o,
		cost:     flow.NewCostModelWithOracle(o),
		policies: make(map[flow.ID]*flow.Policy),
		rates:    make(map[flow.ID]float64),
		load:     make([]float64, topo.NumNodes()),
	}
	o.BindLoad(c.loadAt)
	return c
}

// Topology returns the managed topology.
func (c *Controller) Topology() *topology.Topology { return c.topo }

// Oracle returns the shared network-state oracle every scheduler queries.
func (c *Controller) Oracle() *netstate.Oracle { return c.oracle }

// CostModel returns the controller's cost model.
func (c *Controller) CostModel() *flow.CostModel { return c.cost }

// Policy returns the installed policy for a flow, or nil.
func (c *Controller) Policy(id flow.ID) *flow.Policy { return c.policies[id] }

// Policies returns the installed policy map. The caller must not mutate it.
func (c *Controller) Policies() map[flow.ID]*flow.Policy { return c.policies }

// NumPolicies returns the number of installed policies.
func (c *Controller) NumPolicies() int { return len(c.policies) }

// Load returns the aggregate rate currently routed through switch w
// (Σ_{p_k ∈ A(w)} f_k.rate).
func (c *Controller) Load(w topology.NodeID) float64 { return c.loadAt(w) }

// loadAt is Load with a bounds guard, so unknown node IDs read as zero
// (matching the historical map semantics).
func (c *Controller) loadAt(w topology.NodeID) float64 {
	if w < 0 || int(w) >= len(c.load) {
		return 0
	}
	return c.load[w]
}

// Headroom returns a switch's remaining capacity, via the oracle's
// epoch-cached headroom view.
func (c *Controller) Headroom(w topology.NodeID) float64 {
	return c.oracle.Headroom(w)
}

// selfLoad returns the rate flow id already contributes to switch w, so
// feasibility checks do not double-count a flow being rerouted.
func (c *Controller) selfLoad(id flow.ID, w topology.NodeID) float64 {
	p, ok := c.policies[id]
	if !ok {
		return 0
	}
	var total float64
	for _, sw := range p.List {
		if sw == w {
			total += c.rates[id]
		}
	}
	return total
}

// fits reports whether routing `rate` through w is feasible for flow id,
// ignoring the flow's own present contribution.
func (c *Controller) fits(id flow.ID, w topology.NodeID, rate float64) bool {
	cap := c.topo.Node(w).Capacity
	if math.IsInf(cap, 1) {
		return true
	}
	return c.load[w]-c.selfLoad(id, w)+rate <= cap+1e-9
}

// fitsFn returns fits(id, ·, rate) with the flow's policy and rate looked
// up once instead of per switch — the feasibility scans in OptimizePolicy
// and RandomPolicy call it across every candidate switch. The arithmetic
// (and therefore every accept/reject decision) is identical to fits.
func (c *Controller) fitsFn(id flow.ID, rate float64) func(w topology.NodeID) bool {
	var selfList []topology.NodeID
	var selfRate float64
	if p, ok := c.policies[id]; ok {
		selfList = p.List
		selfRate = c.rates[id]
	}
	return func(w topology.NodeID) bool {
		cap := c.topo.Node(w).Capacity
		if math.IsInf(cap, 1) {
			return true
		}
		var self float64
		for _, sw := range selfList {
			if sw == w {
				self += selfRate
			}
		}
		return c.load[w]-self+rate <= cap+1e-9
	}
}

// FitsEverywhere reports whether a flow of the given rate fits every
// capacity-limited switch in the fabric with no self-contribution
// discounted — the condition under which Algorithm 1's feasibility filter
// provably keeps every candidate switch for any flow of that rate
// (self-load only adds headroom, and float subtraction of a non-negative
// self term is monotone, so fits() can only be more permissive). The scan
// is memoized per rate bit-pattern and invalidated on every oracle epoch
// bump. Core's dirty-set skip uses this to prove a re-solve would see the
// same unfiltered stage lists as the cached solve.
func (c *Controller) FitsEverywhere(rate float64) bool {
	e := c.oracle.Epoch()
	if !c.fitsAllValid || c.fitsAllEpoch != e {
		c.fitsAll = make(map[uint64]bool)
		c.fitsAllEpoch = e
		c.fitsAllValid = true
	}
	bits := math.Float64bits(rate)
	if v, ok := c.fitsAll[bits]; ok {
		return v
	}
	fits := true
	for _, w := range c.topo.Switches() {
		cap := c.topo.Node(w).Capacity
		if math.IsInf(cap, 1) {
			continue
		}
		if c.load[w]+rate > cap+1e-9 {
			fits = false
			break
		}
	}
	c.fitsAll[bits] = fits
	return fits
}

// Install validates and installs a policy for f, replacing any previous
// policy of the same flow and updating switch loads. Installation fails if
// the policy is not satisfied (type/order check) or any switch lacks
// capacity; on failure the previous policy remains installed. Blessed
// epochbump mutator: taalint proves the oracle epoch bump on every path
// that touches policies/rates/load.
func (c *Controller) Install(f *flow.Flow, p *flow.Policy) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if p.Flow != f.ID {
		return fmt.Errorf("controller: policy for flow %d installed as flow %d", p.Flow, f.ID)
	}
	if err := p.Satisfied(c.topo); err != nil {
		return err
	}
	// A route through a crashed switch is never installable, regardless of
	// capacity: the liveness-aware constructors can't produce one, but an
	// externally-built or stale policy could.
	for _, w := range p.List {
		if !c.topo.Alive(w) {
			return fmt.Errorf("controller: policy for flow %d routes through dead switch %d", f.ID, w)
		}
	}
	// Feasibility with the old policy's contribution removed. A switch
	// appearing k times in the new list needs k*rate headroom. Routes are a
	// handful of switches, so the per-switch demand accumulates in a small
	// slice (linear scan) rather than a map.
	type needEntry struct {
		w topology.NodeID
		n float64
	}
	need := make([]needEntry, 0, len(p.List))
	for _, w := range p.List {
		found := false
		for i := range need {
			if need[i].w == w {
				need[i].n += f.Rate
				found = true
				break
			}
		}
		if !found {
			need = append(need, needEntry{w: w, n: f.Rate})
		}
	}
	// Check switches in ascending ID order so the reported violation (and
	// therefore the caller's behavior) never depends on discovery order.
	sort.Slice(need, func(i, j int) bool { return need[i].w < need[j].w })
	for _, e := range need {
		w, n := e.w, e.n
		cap := c.topo.Node(w).Capacity
		if math.IsInf(cap, 1) {
			continue
		}
		if c.load[w]-c.selfLoad(f.ID, w)+n > cap+1e-9 {
			return fmt.Errorf("controller: switch %d over capacity for flow %d (load %.3f, need %.3f, cap %.3f)",
				w, f.ID, c.load[w]-c.selfLoad(f.ID, w), n, cap)
		}
	}
	c.Uninstall(f.ID)
	c.policies[f.ID] = p.Clone()
	c.rates[f.ID] = f.Rate
	for _, w := range p.List {
		c.load[w] += f.Rate
	}
	c.oracle.BumpEpoch()
	return nil
}

// Uninstall removes a flow's policy and releases its switch load. Unknown
// flows are ignored. Blessed epochbump mutator: see Install.
func (c *Controller) Uninstall(id flow.ID) {
	p, ok := c.policies[id]
	if !ok {
		return
	}
	for _, w := range p.List {
		c.load[w] -= c.rates[id]
		if c.load[w] < 1e-12 {
			c.load[w] = 0
		}
	}
	delete(c.policies, id)
	delete(c.rates, id)
	c.oracle.BumpEpoch()
}

// Reset removes every policy. Blessed epochbump mutator: see Install.
func (c *Controller) Reset() {
	c.policies = make(map[flow.ID]*flow.Policy)
	c.rates = make(map[flow.ID]float64)
	c.load = make([]float64, c.topo.NumNodes())
	c.oracle.BumpEpoch()
}

// Candidates implements Eq. 4: the switches that could replace position i of
// flow id's policy — same type, and enough spare capacity for the flow's
// rate — excluding the incumbent.
func (c *Controller) Candidates(id flow.ID, i int) ([]topology.NodeID, error) {
	p, ok := c.policies[id]
	if !ok {
		return nil, fmt.Errorf("controller: no policy for flow %d", id)
	}
	if i < 0 || i >= p.Len() {
		return nil, fmt.Errorf("controller: position %d out of range for flow %d", i, id)
	}
	rate := c.rates[id]
	var out []topology.NodeID
	for _, w := range c.oracle.SwitchesOfType(p.Types[i]) {
		if w == p.List[i] {
			continue
		}
		if c.fits(id, w, rate) {
			out = append(out, w)
		}
	}
	return out, nil
}

// endpointServers resolves a flow's endpoint containers to their hosting
// servers, the one piece of locator plumbing every policy constructor
// shares.
func (c *Controller) endpointServers(f *flow.Flow, loc flow.Locator) (src, dst topology.NodeID, err error) {
	src = loc.ServerOf(f.Src)
	dst = loc.ServerOf(f.Dst)
	if src == topology.None || dst == topology.None {
		return topology.None, topology.None, fmt.Errorf("controller: flow %d has unplaced endpoints", f.ID)
	}
	return src, dst, nil
}

// typeTemplate derives the required switch-type sequence for a flow from
// the shortest path between its endpoint servers, via the oracle's cached
// per-pair template. It returns nil (and no error) for same-server flows,
// which need no policy.
func (c *Controller) typeTemplate(f *flow.Flow, loc flow.Locator) ([]string, error) {
	src, dst, err := c.endpointServers(f, loc)
	if err != nil {
		return nil, err
	}
	types, err := c.oracle.TypeTemplate(src, dst)
	if err != nil {
		return nil, fmt.Errorf("controller: %w: no path between servers %d and %d", ErrNoFeasibleRoute, src, dst)
	}
	return types, nil
}

// RandomPolicy builds the paper's initial state: a policy whose required
// types follow the shortest route's type sequence but whose concrete
// switches are drawn uniformly at random among all switches of each type
// (capacity permitting). This models the topology-unaware configuration the
// optimizer subsequently improves.
func (c *Controller) RandomPolicy(f *flow.Flow, loc flow.Locator, rng *rand.Rand) (*flow.Policy, error) {
	types, err := c.typeTemplate(f, loc)
	if err != nil {
		return nil, err
	}
	p := &flow.Policy{Flow: f.ID, Types: append([]string(nil), types...)}
	fits := c.fitsFn(f.ID, f.Rate)
	fp := feasiblePool.Get().(*[]topology.NodeID)
	defer feasiblePool.Put(fp)
	for _, typ := range types {
		cands := c.oracle.SwitchesOfType(typ)
		feasible := (*fp)[:0]
		for _, w := range cands {
			if fits(w) {
				feasible = append(feasible, w)
			}
		}
		*fp = feasible
		if len(feasible) == 0 {
			return nil, fmt.Errorf("controller: %w of type %q for flow %d", ErrNoFeasibleSwitch, typ, f.ID)
		}
		p.List = append(p.List, feasible[rng.Intn(len(feasible))])
	}
	return p, nil
}

// feasiblePool recycles the per-stage feasible-switch scratch RandomPolicy
// filters into: one buffer serves all stages of a call, and pooling keeps a
// 10k-flow initialization from allocating a fresh slice per stage. Only the
// chosen switch ID escapes into the policy.
var feasiblePool = sync.Pool{New: func() any { return new([]topology.NodeID) }}

// ShortestPolicy builds the deterministic shortest-path policy between the
// flow's endpoint servers (no load awareness) — the baseline behavior of a
// plain routing fabric.
func (c *Controller) ShortestPolicy(f *flow.Flow, loc flow.Locator) (*flow.Policy, error) {
	src, dst, err := c.endpointServers(f, loc)
	if err != nil {
		return nil, err
	}
	if src == dst {
		return &flow.Policy{Flow: f.ID}, nil
	}
	path := c.oracle.ShortestPath(src, dst)
	if path == nil {
		return nil, fmt.Errorf("controller: %w: no path between servers %d and %d", ErrNoFeasibleRoute, src, dst)
	}
	return flow.PolicyFromPath(c.topo, f.ID, path), nil
}

// SolveInfo describes how an Algorithm-1 solve was satisfied, for callers
// (core's dirty-set loop) that reason about result reusability.
type SolveInfo struct {
	// FullStages reports that every candidate switch of every required
	// type was capacity-feasible, so the solve ran over the unfiltered
	// stage lists. Because segment cost is load-independent (Eq. 2), such
	// a solve's result depends only on the endpoint pair, rate, and unit
	// cost — it stays valid across any load change that keeps the fabric
	// uncongested for that rate (see FitsEverywhere).
	FullStages bool
	// CacheHit reports the oracle answered from its pair-route cache
	// instead of running the DP.
	CacheHit bool
}

// OptimizePolicy is Algorithm 1 for one flow: construct the layered
// candidate graph (source server → one switch of each required type →
// destination server), keep only capacity-feasible switches, and return the
// minimum-cost choice per stage via dynamic programming. The segment cost is
// the cost model's rate × hop-distance (Eq. 2), so with idle switches the
// result coincides with a shortest path, and under load it routes around
// saturated switches exactly as Figure 2 illustrates. The optimized policy
// is NOT installed; callers install it when adopting the result.
//
// The DP itself runs in the oracle's server-pair route cache
// (netstate.BestRoute), so flows sharing an endpoint pair solve once.
func (c *Controller) OptimizePolicy(f *flow.Flow, loc flow.Locator) (*flow.Policy, error) {
	p, _, err := c.OptimizePolicyDetailed(f, loc)
	return p, err
}

// OptimizePolicyDetailed is OptimizePolicy plus solve metadata.
func (c *Controller) OptimizePolicyDetailed(f *flow.Flow, loc flow.Locator) (*flow.Policy, SolveInfo, error) {
	src, dst, err := c.endpointServers(f, loc)
	if err != nil {
		return nil, SolveInfo{}, err
	}
	return c.optimizeBetween(f, src, dst)
}

// OptimizeBetween runs Algorithm 1 for a flow whose endpoint servers are
// already known — the locator-free form the fault reactor uses to re-solve
// a flow recorded in an earlier wave (whose containers have since been
// released) after its installed policy was found to traverse a dead switch.
// The result is NOT installed.
func (c *Controller) OptimizeBetween(f *flow.Flow, src, dst topology.NodeID) (*flow.Policy, error) {
	p, _, err := c.optimizeBetween(f, src, dst)
	return p, err
}

// optimizeBetween is the shared Algorithm-1 body behind
// OptimizePolicyDetailed and OptimizeBetween.
func (c *Controller) optimizeBetween(f *flow.Flow, src, dst topology.NodeID) (*flow.Policy, SolveInfo, error) {
	var info SolveInfo
	if src == topology.None || dst == topology.None || !c.topo.Valid(src) || !c.topo.Valid(dst) {
		return nil, info, fmt.Errorf("controller: flow %d has invalid endpoint servers %d, %d", f.ID, src, dst)
	}
	if src == dst {
		info.FullStages = true
		return &flow.Policy{Flow: f.ID}, info, nil
	}
	types, err := c.oracle.TypeTemplate(src, dst)
	if err != nil {
		return nil, info, fmt.Errorf("controller: %w: no path between servers %d and %d", ErrNoFeasibleRoute, src, dst)
	}
	if len(types) == 0 {
		info.FullStages = true
		return &flow.Policy{Flow: f.ID}, info, nil
	}

	// One feasibility pass over the oracle's cached stage candidates
	// decides whether the capacity filter bites at all. In the common
	// uncongested case it does not, and the solve runs over the shared
	// unfiltered lists — which the oracle answers from its pair cache
	// after the first flow between these servers pays for the DP.
	full := c.oracle.StagesForTemplate(types)
	fits := c.fitsFn(f.ID, f.Rate)
	allFit := true
	for i, typ := range types {
		n := 0
		for _, w := range full[i] {
			if fits(w) {
				n++
			}
		}
		if n == 0 {
			return nil, info, fmt.Errorf("controller: %w of type %q for flow %d", ErrNoFeasibleSwitch, typ, f.ID)
		}
		if n < len(full[i]) {
			allFit = false
		}
	}
	stages := full
	if !allFit {
		filtered := make([][]topology.NodeID, len(types))
		for i := range full {
			kept := make([]topology.NodeID, 0, len(full[i]))
			for _, w := range full[i] {
				if fits(w) {
					kept = append(kept, w)
				}
			}
			filtered[i] = kept
		}
		stages = filtered
	}
	info.FullStages = allFit
	list, _, hit, ok := c.oracle.BestRoute(src, dst, netstate.RouteQuery{
		Rate:     f.Rate,
		UnitCost: c.cost.UnitCost,
		Stages:   stages,
		Full:     allFit,
	})
	info.CacheHit = hit
	if !ok {
		return nil, info, fmt.Errorf("controller: %w for flow %d", ErrNoFeasibleRoute, f.ID)
	}
	// The cached list is shared across flows; clone so callers may mutate
	// the policy (e.g. flow.ApplySwap) without corrupting the cache.
	return &flow.Policy{
		Flow:  f.ID,
		List:  append([]topology.NodeID(nil), list...),
		Types: append([]string(nil), types...),
	}, info, nil
}

// OptimizeInstalled reruns Algorithm 1 for an installed flow and reinstalls
// the better policy if it strictly reduces the flow's cost. It returns the
// achieved utility (cost reduction, >= 0).
func (c *Controller) OptimizeInstalled(f *flow.Flow, loc flow.Locator) (float64, error) {
	u, _, _, err := c.OptimizeInstalledDetailed(f, loc)
	return u, err
}

// OptimizeInstalledDetailed is OptimizeInstalled plus the solve's output
// policy (whether or not it was adopted) and metadata, so incremental
// callers can replay the decision without re-solving.
func (c *Controller) OptimizeInstalledDetailed(f *flow.Flow, loc flow.Locator) (float64, *flow.Policy, SolveInfo, error) {
	old, ok := c.policies[f.ID]
	if !ok {
		return 0, nil, SolveInfo{}, fmt.Errorf("controller: flow %d has no installed policy", f.ID)
	}
	oldCost, err := c.cost.FlowCost(f, old, loc)
	if err != nil {
		return 0, nil, SolveInfo{}, err
	}
	opt, info, err := c.OptimizePolicyDetailed(f, loc)
	if err != nil {
		return 0, nil, info, err
	}
	newCost, err := c.cost.FlowCost(f, opt, loc)
	if err != nil {
		return 0, opt, info, err
	}
	util, err := c.AdoptIfCheaper(f, opt, oldCost, newCost)
	if err != nil {
		return 0, opt, info, err
	}
	return util, opt, info, nil
}

// AdoptIfCheaper applies the optimizer's adoption rule — install opt only
// when newCost improves oldCost by more than the 1e-12 float guard — and
// returns the achieved utility (0 when the incumbent stays). It is the
// single decision point shared by OptimizeInstalledDetailed and the
// sharded scheduler's arbiter: a presolved proposal whose costs were
// computed against a still-valid snapshot lands bit-identically to a live
// re-solve, because both paths funnel through this comparison and the
// same Install.
func (c *Controller) AdoptIfCheaper(f *flow.Flow, opt *flow.Policy, oldCost, newCost float64) (float64, error) {
	if newCost >= oldCost-1e-12 {
		return 0, nil
	}
	if err := c.Install(f, opt); err != nil {
		return 0, err
	}
	return oldCost - newCost, nil
}

// TotalCost evaluates the TAA objective over the installed policies.
func (c *Controller) TotalCost(flows []*flow.Flow, loc flow.Locator) (float64, error) {
	return c.cost.TotalCost(flows, c.policies, loc)
}

// OverloadedSwitches returns switches whose load exceeds capacity (possible
// only after external capacity changes, e.g. failure injection).
func (c *Controller) OverloadedSwitches() []topology.NodeID {
	var out []topology.NodeID
	for _, w := range c.topo.Switches() {
		cap := c.topo.Node(w).Capacity
		if !math.IsInf(cap, 1) && c.load[w] > cap+1e-9 {
			out = append(out, w)
		}
	}
	return out
}

// RebalanceOverloaded restores feasibility after a capacity change (failure
// injection): while any switch is overloaded, the controller picks the
// largest-rate flow routed through it, uninstalls its policy, re-runs
// Algorithm 1 against the degraded fabric and reinstalls the result. It
// returns the number of flows rerouted, or an error when no feasible
// rerouting exists. Flows not in the given set cannot be moved.
func (c *Controller) RebalanceOverloaded(flows []*flow.Flow, loc flow.Locator) (int, error) {
	byID := make(map[flow.ID]*flow.Flow, len(flows))
	for _, f := range flows {
		byID[f.ID] = f
	}
	moved := 0
	for guard := 0; guard <= len(flows)+len(c.policies); guard++ {
		over := c.OverloadedSwitches()
		if len(over) == 0 {
			return moved, nil
		}
		w := over[0]
		// Largest-rate movable flow through w. Iterate policies in
		// ascending flow-ID order so rate ties break toward the lowest ID
		// instead of whatever the map yields this run.
		ids := make([]flow.ID, 0, len(c.policies))
		for id := range c.policies {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		var victim *flow.Flow
		for _, id := range ids {
			p := c.policies[id]
			f, ok := byID[id]
			if !ok {
				continue
			}
			onW := false
			for _, sw := range p.List {
				if sw == w {
					onW = true
					break
				}
			}
			if onW && (victim == nil || f.Rate > victim.Rate) {
				victim = f
			}
		}
		if victim == nil {
			return moved, fmt.Errorf("controller: switch %d overloaded by immovable flows", w)
		}
		c.Uninstall(victim.ID)
		opt, err := c.OptimizePolicy(victim, loc)
		if err != nil {
			return moved, fmt.Errorf("controller: rebalance flow %d: %w", victim.ID, err)
		}
		if err := c.Install(victim, opt); err != nil {
			return moved, fmt.Errorf("controller: rebalance flow %d: %w", victim.ID, err)
		}
		moved++
	}
	return moved, fmt.Errorf("controller: rebalance did not converge")
}

// UtilizationStats summarizes switch load across the fabric.
type UtilizationStats struct {
	// Loaded counts switches carrying any flow.
	Loaded int
	// MeanLoad and MaxLoad are over ALL switches (absolute rate units).
	MeanLoad, MaxLoad float64
	// MeanUtil and MaxUtil are load/capacity over capacity-limited switches.
	MeanUtil, MaxUtil float64
}

// Utilization computes fabric-wide switch load statistics — the evenness of
// the policy layer's traffic spreading.
func (c *Controller) Utilization() UtilizationStats {
	var st UtilizationStats
	switches := c.topo.Switches()
	if len(switches) == 0 {
		return st
	}
	var loadSum, utilSum float64
	capped := 0
	for _, w := range switches {
		l := c.load[w]
		if l > 0 {
			st.Loaded++
		}
		loadSum += l
		if l > st.MaxLoad {
			st.MaxLoad = l
		}
		cap := c.topo.Node(w).Capacity
		if !math.IsInf(cap, 1) && cap > 0 {
			u := l / cap
			utilSum += u
			capped++
			if u > st.MaxUtil {
				st.MaxUtil = u
			}
		}
	}
	st.MeanLoad = loadSum / float64(len(switches))
	if capped > 0 {
		st.MeanUtil = utilSum / float64(capped)
	}
	return st
}

// UtilizationByType groups Utilization per switch type (access,
// aggregation, core, ...), exposing which tier carries the pressure.
func (c *Controller) UtilizationByType() map[string]UtilizationStats {
	out := make(map[string]UtilizationStats)
	byType := make(map[string][]topology.NodeID)
	for _, w := range c.topo.Switches() {
		t := c.topo.Node(w).Type
		byType[t] = append(byType[t], w)
	}
	// Aggregate per type in name order: the float sums below must
	// accumulate in a fixed order to stay bit-reproducible.
	typeNames := make([]string, 0, len(byType))
	for t := range byType {
		typeNames = append(typeNames, t)
	}
	sort.Strings(typeNames)
	for _, t := range typeNames {
		ws := byType[t]
		var st UtilizationStats
		var loadSum, utilSum float64
		capped := 0
		for _, w := range ws {
			l := c.load[w]
			if l > 0 {
				st.Loaded++
			}
			loadSum += l
			if l > st.MaxLoad {
				st.MaxLoad = l
			}
			cap := c.topo.Node(w).Capacity
			if !math.IsInf(cap, 1) && cap > 0 {
				u := l / cap
				utilSum += u
				capped++
				if u > st.MaxUtil {
					st.MaxUtil = u
				}
			}
		}
		st.MeanLoad = loadSum / float64(len(ws))
		if capped > 0 {
			st.MeanUtil = utilSum / float64(capped)
		}
		out[t] = st
	}
	return out
}
