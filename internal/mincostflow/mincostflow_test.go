package mincostflow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGraphErrors(t *testing.T) {
	if _, err := NewGraph(0); err == nil {
		t.Error("zero nodes accepted")
	}
	g, _ := NewGraph(3)
	if _, err := g.AddEdge(-1, 0, 1, 0); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if _, err := g.AddEdge(0, 0, 1, 0); err == nil {
		t.Error("self edge accepted")
	}
	if _, err := g.AddEdge(0, 1, -1, 0); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := g.AddEdge(0, 1, 1, -2); err == nil {
		t.Error("negative cost accepted")
	}
	if _, err := g.AddEdge(0, 1, 1, math.NaN()); err == nil {
		t.Error("NaN cost accepted")
	}
	if _, _, err := g.Solve(0, 0, 1); err == nil {
		t.Error("source == sink accepted")
	}
	if _, err := g.Flow(99); err == nil {
		t.Error("invalid edge id accepted")
	}
	if _, err := g.Flow(1); err == nil {
		t.Error("reverse edge id accepted")
	}
}

func TestSimplePath(t *testing.T) {
	// 0 -> 1 -> 2 with caps 5, 3: max flow 3, cost 3*(1+2).
	g, _ := NewGraph(3)
	e0, _ := g.AddEdge(0, 1, 5, 1)
	e1, _ := g.AddEdge(1, 2, 3, 2)
	f, c, err := g.Solve(0, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if f != 3 || math.Abs(c-9) > 1e-9 {
		t.Errorf("flow/cost = %d/%v, want 3/9", f, c)
	}
	if got, _ := g.Flow(e0); got != 3 {
		t.Errorf("edge0 flow = %d", got)
	}
	if got, _ := g.Flow(e1); got != 3 {
		t.Errorf("edge1 flow = %d", got)
	}
}

func TestChoosesCheaperPath(t *testing.T) {
	// Two parallel paths 0->1->3 (cost 1+1) and 0->2->3 (cost 5+5), caps 1
	// each; asking for 1 unit must use the cheap path.
	g, _ := NewGraph(4)
	cheap0, _ := g.AddEdge(0, 1, 1, 1)
	g.AddEdge(1, 3, 1, 1)
	exp0, _ := g.AddEdge(0, 2, 1, 5)
	g.AddEdge(2, 3, 1, 5)
	f, c, err := g.Solve(0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f != 1 || math.Abs(c-2) > 1e-9 {
		t.Errorf("flow/cost = %d/%v, want 1/2", f, c)
	}
	if got, _ := g.Flow(cheap0); got != 1 {
		t.Error("cheap path unused")
	}
	if got, _ := g.Flow(exp0); got != 0 {
		t.Error("expensive path used")
	}
	// Asking for 2 units uses both: cost 2 + 10.
	g2, _ := NewGraph(4)
	g2.AddEdge(0, 1, 1, 1)
	g2.AddEdge(1, 3, 1, 1)
	g2.AddEdge(0, 2, 1, 5)
	g2.AddEdge(2, 3, 1, 5)
	f, c, _ = g2.Solve(0, 3, 2)
	if f != 2 || math.Abs(c-12) > 1e-9 {
		t.Errorf("flow/cost = %d/%v, want 2/12", f, c)
	}
}

func TestReroutingViaResiduals(t *testing.T) {
	// The classic case where min-cost flow must "undo" an earlier greedy
	// choice through a residual edge.
	//
	//   0 -> 1 (cap1, cost1), 0 -> 2 (cap1, cost2)
	//   1 -> 2 (cap1, cost0), 1 -> 3 (cap1, cost3)
	//   2 -> 3 (cap1, cost1)
	// Max flow 2; optimal: 0-1-2-3 (cost 2) + 0-2?? cap... check: edges
	// 0->2 cap1 and 2->3 cap1 conflict. Optimal 2 units: 0-1-3 (4) + 0-2-3
	// (3) = 7, vs 0-1-2-3 (2) + 0-2..blocked. Solver must pick 7 and also
	// consider the residual path; assert optimal cost 7.
	g, _ := NewGraph(4)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(0, 2, 1, 2)
	g.AddEdge(1, 2, 1, 0)
	g.AddEdge(1, 3, 1, 3)
	g.AddEdge(2, 3, 1, 1)
	f, c, err := g.Solve(0, 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	if f != 2 {
		t.Fatalf("flow = %d, want 2", f)
	}
	if math.Abs(c-7) > 1e-9 {
		t.Errorf("cost = %v, want 7", c)
	}
}

func TestDisconnectedSink(t *testing.T) {
	g, _ := NewGraph(3)
	g.AddEdge(0, 1, 1, 1)
	f, c, err := g.Solve(0, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if f != 0 || c != 0 {
		t.Errorf("flow/cost = %d/%v, want 0/0", f, c)
	}
}

func TestAssignmentBasic(t *testing.T) {
	// 3 items, 2 bins (cap 2, 1). Costs favor bin 0 for items 0,1 and bin 1
	// for item 2.
	cost := [][]float64{
		{1, 10},
		{2, 10},
		{10, 1},
	}
	assign, total, err := Assignment(cost, []int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1}
	for i, b := range want {
		if assign[i] != b {
			t.Errorf("item %d -> bin %d, want %d", i, assign[i], b)
		}
	}
	if math.Abs(total-4) > 1e-9 {
		t.Errorf("total = %v, want 4", total)
	}
}

func TestAssignmentCapacityForcesSpill(t *testing.T) {
	// Both items prefer bin 0 (cap 1): one must spill to bin 1, and the
	// cheaper-to-move item is the one that spills under optimality.
	cost := [][]float64{
		{1, 100}, // expensive to move
		{1, 2},   // cheap to move
	}
	assign, total, err := Assignment(cost, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != 0 || assign[1] != 1 {
		t.Errorf("assign = %v, want [0 1]", assign)
	}
	if math.Abs(total-3) > 1e-9 {
		t.Errorf("total = %v, want 3", total)
	}
}

func TestAssignmentInfeasiblePairsAndOverflow(t *testing.T) {
	cost := [][]float64{
		{math.Inf(1), 1},
		{math.Inf(1), math.Inf(1)}, // cannot be placed anywhere
	}
	assign, _, err := Assignment(cost, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != 1 {
		t.Errorf("item 0 -> %d, want 1", assign[0])
	}
	if assign[1] != -1 {
		t.Errorf("item 1 -> %d, want -1 (unplaceable)", assign[1])
	}
}

func TestAssignmentErrors(t *testing.T) {
	if _, _, err := Assignment([][]float64{{1, 2}}, []int{1}); err == nil {
		t.Error("ragged cost accepted")
	}
	if _, _, err := Assignment([][]float64{{1}}, []int{-1}); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, _, err := Assignment([][]float64{{-1}}, []int{1}); err == nil {
		t.Error("negative cost accepted")
	}
	if _, _, err := Assignment([][]float64{{1}}, nil); err == nil {
		t.Error("no bins accepted")
	}
	if got, total, err := Assignment(nil, []int{1}); err != nil || got != nil || total != 0 {
		t.Error("empty items should be a no-op")
	}
}

// bruteAssignment exhaustively finds the optimal assignment cost for tiny
// instances.
func bruteAssignment(cost [][]float64, caps []int) float64 {
	nItems := len(cost)
	nBins := len(caps)
	best := math.Inf(1)
	assign := make([]int, nItems)
	used := make([]int, nBins)
	var rec func(i int, acc float64)
	rec = func(i int, acc float64) {
		if i == nItems {
			if acc < best {
				best = acc
			}
			return
		}
		for b := 0; b < nBins; b++ {
			if used[b] >= caps[b] || math.IsInf(cost[i][b], 1) {
				continue
			}
			used[b]++
			assign[i] = b
			rec(i+1, acc+cost[i][b])
			used[b]--
		}
	}
	rec(0, 0)
	return best
}

// TestQuickAssignmentMatchesBruteForce: on random tiny instances where a
// full assignment exists, the solver's cost equals the exhaustive optimum.
func TestQuickAssignmentMatchesBruteForce(t *testing.T) {
	f := func(seed int64, ni, nb uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nItems := int(ni%4) + 1
		nBins := int(nb%3) + 1
		caps := make([]int, nBins)
		total := 0
		for b := range caps {
			caps[b] = rng.Intn(3)
			total += caps[b]
		}
		if total < nItems {
			caps[0] += nItems - total
		}
		cost := make([][]float64, nItems)
		for i := range cost {
			cost[i] = make([]float64, nBins)
			for b := range cost[i] {
				cost[i][b] = float64(rng.Intn(20))
			}
		}
		assign, got, err := Assignment(cost, caps)
		if err != nil {
			return false
		}
		for _, b := range assign {
			if b == -1 {
				return false // full assignment must exist by construction
			}
		}
		// Verify capacities respected and cost sums match.
		used := make([]int, nBins)
		sum := 0.0
		for i, b := range assign {
			used[b]++
			sum += cost[i][b]
		}
		for b := range used {
			if used[b] > caps[b] {
				return false
			}
		}
		if math.Abs(sum-got) > 1e-9 {
			return false
		}
		want := bruteAssignment(cost, caps)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
