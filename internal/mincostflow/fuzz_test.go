package mincostflow

import (
	"math"
	"testing"
)

// FuzzAssignment checks solver invariants on arbitrary cost/capacity
// inputs: never exceeds capacities, reported total matches the assignment,
// and the result is optimal versus brute force on these tiny instances.
func FuzzAssignment(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, uint8(2), uint8(2))
	f.Add([]byte{0}, uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, ni, nb uint8) {
		nItems := 1 + int(ni%3)
		nBins := 1 + int(nb%3)
		at := func(i int) float64 {
			if len(data) == 0 {
				return 1
			}
			return float64(data[i%len(data)] % 50)
		}
		cost := make([][]float64, nItems)
		for i := range cost {
			cost[i] = make([]float64, nBins)
			for b := range cost[i] {
				cost[i][b] = at(i*nBins + b)
			}
		}
		caps := make([]int, nBins)
		total := 0
		for b := range caps {
			caps[b] = int(at(b+7)) % 3
			total += caps[b]
		}
		assign, got, err := Assignment(cost, caps)
		if err != nil {
			t.Fatalf("valid instance rejected: %v", err)
		}
		used := make([]int, nBins)
		sum := 0.0
		placed := 0
		for i, b := range assign {
			if b == -1 {
				continue
			}
			used[b]++
			sum += cost[i][b]
			placed++
		}
		for b := range used {
			if used[b] > caps[b] {
				t.Fatalf("bin %d over capacity", b)
			}
		}
		if math.Abs(sum-got) > 1e-9 {
			t.Fatalf("reported cost %v != assignment sum %v", got, sum)
		}
		// Max placement: the solver must place min(nItems, total capacity).
		want := nItems
		if total < want {
			want = total
		}
		if placed != want {
			t.Fatalf("placed %d, want %d", placed, want)
		}
		if placed == nItems {
			if best := bruteAssignment(cost, caps); math.Abs(got-best) > 1e-9 {
				t.Fatalf("cost %v, brute force %v", got, best)
			}
		}
	})
}
