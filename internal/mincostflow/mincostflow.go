// Package mincostflow implements minimum-cost maximum-flow via successive
// shortest augmenting paths with Johnson potentials. It is the optimization
// substrate behind the CAM-style baseline scheduler (Li et al. [HPDC'12],
// cited by the paper as the "topology aware minimum cost flow based
// resource manager"): assigning reduce tasks to servers with capacities is
// a transportation problem this solver answers exactly.
package mincostflow

import (
	"container/heap"
	"fmt"
	"math"
)

type edge struct {
	to   int
	cap  int
	cost float64
	flow int
}

// Graph is a directed flow network with float64 edge costs. Nodes are
// 0..N-1. Adding an edge also adds its residual reverse edge.
type Graph struct {
	n     int
	edges []edge
	adj   [][]int // node -> edge indices
}

// NewGraph creates a graph with n nodes.
func NewGraph(n int) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mincostflow: need at least one node, got %d", n)
	}
	return &Graph{n: n, adj: make([][]int, n)}, nil
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.n }

// AddEdge adds a directed edge u->v with the given capacity and cost and
// returns its ID (usable with Flow after solving). Costs must be
// non-negative (the successive-shortest-path invariant).
func (g *Graph) AddEdge(u, v, capacity int, cost float64) (int, error) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0, fmt.Errorf("mincostflow: edge (%d,%d) out of range", u, v)
	}
	if u == v {
		return 0, fmt.Errorf("mincostflow: self-edge on %d", u)
	}
	if capacity < 0 {
		return 0, fmt.Errorf("mincostflow: negative capacity %d", capacity)
	}
	if cost < 0 || math.IsNaN(cost) || math.IsInf(cost, 0) {
		return 0, fmt.Errorf("mincostflow: invalid cost %v", cost)
	}
	id := len(g.edges)
	g.edges = append(g.edges, edge{to: v, cap: capacity, cost: cost})
	g.adj[u] = append(g.adj[u], id)
	g.edges = append(g.edges, edge{to: u, cap: 0, cost: -cost})
	g.adj[v] = append(g.adj[v], id+1)
	return id, nil
}

// Flow returns the flow pushed over edge id after Solve.
func (g *Graph) Flow(id int) (int, error) {
	if id < 0 || id >= len(g.edges) || id%2 == 1 {
		return 0, fmt.Errorf("mincostflow: invalid edge id %d", id)
	}
	return g.edges[id].flow, nil
}

// pqItem is a Dijkstra frontier entry.
type pqItem struct {
	node int
	dist float64
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	x := old[n-1]
	*p = old[:n-1]
	return x
}

// Solve pushes up to maxFlow units from source to sink at minimum total
// cost (maxFlow < 0 means "as much as possible") and returns the achieved
// flow and its cost. Solve may be called once per graph.
func (g *Graph) Solve(source, sink, maxFlow int) (int, float64, error) {
	if source < 0 || source >= g.n || sink < 0 || sink >= g.n || source == sink {
		return 0, 0, fmt.Errorf("mincostflow: bad terminals (%d, %d)", source, sink)
	}
	if maxFlow < 0 {
		maxFlow = math.MaxInt32
	}
	potential := make([]float64, g.n) // all costs non-negative: zero init valid
	dist := make([]float64, g.n)
	prevEdge := make([]int, g.n)
	inf := math.Inf(1)

	totalFlow := 0
	totalCost := 0.0
	for totalFlow < maxFlow {
		// Dijkstra over reduced costs.
		for i := range dist {
			dist[i] = inf
			prevEdge[i] = -1
		}
		dist[source] = 0
		h := &pq{{node: source}}
		for h.Len() > 0 {
			it := heap.Pop(h).(pqItem)
			if it.dist > dist[it.node]+1e-12 {
				continue
			}
			for _, ei := range g.adj[it.node] {
				e := &g.edges[ei]
				if e.cap-e.flow <= 0 {
					continue
				}
				nd := dist[it.node] + e.cost + potential[it.node] - potential[e.to]
				if nd < dist[e.to]-1e-12 {
					dist[e.to] = nd
					prevEdge[e.to] = ei
					heap.Push(h, pqItem{node: e.to, dist: nd})
				}
			}
		}
		if math.IsInf(dist[sink], 1) {
			break // no augmenting path
		}
		for i := range potential {
			if !math.IsInf(dist[i], 1) {
				potential[i] += dist[i]
			}
		}
		// Bottleneck along the path.
		push := maxFlow - totalFlow
		for v := sink; v != source; {
			e := &g.edges[prevEdge[v]]
			if r := e.cap - e.flow; r < push {
				push = r
			}
			v = g.edges[prevEdge[v]^1].to
		}
		for v := sink; v != source; {
			ei := prevEdge[v]
			g.edges[ei].flow += push
			g.edges[ei^1].flow -= push
			totalCost += float64(push) * g.edges[ei].cost
			v = g.edges[ei^1].to
		}
		totalFlow += push
	}
	return totalFlow, totalCost, nil
}

// Assignment solves the transportation problem directly: items (each of
// unit size) assigned to bins with capacities, minimizing the summed
// cost[item][bin]. Infeasible (item, bin) pairs use math.Inf(1). It returns
// assign[item] = bin (or -1 when the item could not be placed anywhere).
func Assignment(cost [][]float64, binCapacity []int) ([]int, float64, error) {
	nItems := len(cost)
	nBins := len(binCapacity)
	if nItems == 0 {
		return nil, 0, nil
	}
	if nBins == 0 {
		return nil, 0, fmt.Errorf("mincostflow: no bins")
	}
	for i, row := range cost {
		if len(row) != nBins {
			return nil, 0, fmt.Errorf("mincostflow: cost row %d has %d entries, want %d", i, len(row), nBins)
		}
	}
	for b, c := range binCapacity {
		if c < 0 {
			return nil, 0, fmt.Errorf("mincostflow: bin %d has negative capacity", b)
		}
	}
	// Nodes: 0 = source, 1..nItems = items, nItems+1..nItems+nBins = bins,
	// last = sink.
	g, err := NewGraph(nItems + nBins + 2)
	if err != nil {
		return nil, 0, err
	}
	source := 0
	sink := nItems + nBins + 1
	itemEdges := make([][]int, nItems) // edge IDs per (item, bin)
	for i := 0; i < nItems; i++ {
		if _, err := g.AddEdge(source, 1+i, 1, 0); err != nil {
			return nil, 0, err
		}
		itemEdges[i] = make([]int, nBins)
		for b := 0; b < nBins; b++ {
			itemEdges[i][b] = -1
			c := cost[i][b]
			if math.IsInf(c, 1) {
				continue
			}
			if c < 0 || math.IsNaN(c) {
				return nil, 0, fmt.Errorf("mincostflow: invalid cost[%d][%d] = %v", i, b, c)
			}
			id, err := g.AddEdge(1+i, 1+nItems+b, 1, c)
			if err != nil {
				return nil, 0, err
			}
			itemEdges[i][b] = id
		}
	}
	for b := 0; b < nBins; b++ {
		if _, err := g.AddEdge(1+nItems+b, sink, binCapacity[b], 0); err != nil {
			return nil, 0, err
		}
	}
	_, total, err := g.Solve(source, sink, nItems)
	if err != nil {
		return nil, 0, err
	}
	assign := make([]int, nItems)
	for i := range assign {
		assign[i] = -1
		for b := 0; b < nBins; b++ {
			if itemEdges[i][b] < 0 {
				continue
			}
			f, err := g.Flow(itemEdges[i][b])
			if err != nil {
				return nil, 0, err
			}
			if f > 0 {
				assign[i] = b
				break
			}
		}
	}
	return assign, total, nil
}
