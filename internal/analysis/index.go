package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is taalint v2's module-level dataflow substrate: a lightweight
// call graph plus a field-access index built once over every loaded
// package. The per-file AST checks of v1 cannot see that a controller
// mutation three calls away fails to bump the netstate epoch, or that a
// field written plainly in one package is read through sync/atomic in
// another; module checks (epochbump, atomicguard) consult this index
// instead of re-walking the world.
//
// Functions are keyed by strings — "pkg/path.Name" for package functions,
// "pkg/path.(Recv).Name" for methods, pointer receivers normalized away —
// because the loader type-checks each package independently: the
// *types.Func object for netstate.BumpEpoch seen from a directly loaded
// internal/netstate is NOT identical to the one controller sees through
// the source importer, but both render to the same key.
//
// The call graph is static and best-effort: direct calls and method calls
// with a concrete receiver resolve; calls through interfaces, function
// values and reflection do not. Checks built on it must therefore be
// framed so that an unresolved edge fails safe (see epochbump: an
// unresolved callee is assumed not to mutate, which is sound because the
// mutated fields are unexported and only the monitored packages can touch
// them).

// FuncKey is the stable string identity of a declared function or method.
type FuncKey = string

// CallSite is one resolved static call inside a function body.
type CallSite struct {
	Callee FuncKey
	Pos    token.Pos
}

// FuncInfo describes one declared function: its package, declaration and
// the static calls its body (including nested function literals) makes.
type FuncInfo struct {
	Key   FuncKey
	Pkg   *Package
	Decl  *ast.FuncDecl
	Calls []CallSite
}

// FieldAccess is one syntactic access to a named struct field.
type FieldAccess struct {
	Fn     FuncKey // enclosing declared function ("" at package scope)
	Pkg    *Package
	Pos    token.Pos
	Write  bool // the access is (part of) an lvalue being assigned
	Atomic bool // accessed through sync/atomic (function or typed method)
}

// Index is the module-wide dataflow index shared by all module checks.
type Index struct {
	Pkgs  []*Package
	Funcs map[FuncKey]*FuncInfo
	// Fields maps "owner-pkg-path.StructName.field" to every access of
	// that field anywhere in the module, in load order.
	Fields map[string][]FieldAccess

	// effects is the lazily built v3 write-effect table (effects.go),
	// shared across the checks of one Run.
	effects *Effects
}

// BuildIndex constructs the call graph and field-access index over the
// given packages.
func BuildIndex(pkgs []*Package) *Index {
	idx := &Index{
		Pkgs:   pkgs,
		Funcs:  make(map[FuncKey]*FuncInfo),
		Fields: make(map[string][]FieldAccess),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				key := declKey(pkg, fd)
				info := &FuncInfo{Key: key, Pkg: pkg, Decl: fd}
				collectCalls(pkg, fd.Body, info)
				collectFieldAccesses(idx, pkg, key, fd.Body)
				// Later declarations never overwrite earlier ones; the
				// loader rejects duplicate top-level names anyway.
				if _, dup := idx.Funcs[key]; !dup && key != "" {
					idx.Funcs[key] = info
				}
			}
		}
	}
	return idx
}

// Func returns the info for a key, or nil when the function is not
// declared in a loaded package (stdlib, unresolved).
func (idx *Index) Func(key FuncKey) *FuncInfo { return idx.Funcs[key] }

// ReachableFrom flood-fills the call graph from every function whose
// package satisfies root, returning the set of reachable function keys
// (roots included).
func (idx *Index) ReachableFrom(root func(*Package) bool) map[FuncKey]bool {
	seen := make(map[FuncKey]bool)
	var queue []FuncKey
	// Deterministic seeding: keys sorted, though reachability is a set and
	// order-insensitive anyway.
	keys := make([]FuncKey, 0, len(idx.Funcs))
	for k := range idx.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if root(idx.Funcs[k].Pkg) {
			seen[k] = true
			queue = append(queue, k)
		}
	}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		info := idx.Funcs[k]
		if info == nil {
			continue
		}
		for _, c := range info.Calls {
			if !seen[c.Callee] {
				seen[c.Callee] = true
				queue = append(queue, c.Callee)
			}
		}
	}
	return seen
}

// declKey computes the key of a function declaration via its type object.
func declKey(pkg *Package, fd *ast.FuncDecl) FuncKey {
	obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return ""
	}
	return funcObjKey(obj)
}

// funcObjKey renders a *types.Func to its stable string key. Interface
// methods and functions without a package (builtins, error.Error) key to
// "" and are treated as unresolved.
func funcObjKey(f *types.Func) FuncKey {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		named, isNamed := t.(*types.Named)
		if !isNamed {
			return "" // interface or type-parameter receiver: no static target
		}
		return f.Pkg().Path() + ".(" + named.Obj().Name() + ")." + f.Name()
	}
	return f.Pkg().Path() + "." + f.Name()
}

// resolveCall resolves a call expression to the key of its static callee,
// or "" when the target is dynamic (function value, interface method,
// builtin, conversion).
func resolveCall(p *Package, call *ast.CallExpr) FuncKey {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := p.Info.Uses[fun].(*types.Func); ok {
			return funcObjKey(f)
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				// Interface method calls resolve to the interface's method
				// object; funcObjKey rejects those (no static target).
				if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
					return ""
				}
				return funcObjKey(f)
			}
			return ""
		}
		// Package-qualified call: pkg.Func.
		if f, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return funcObjKey(f)
		}
	}
	return ""
}

// collectCalls records every statically resolvable call under n
// (descending into nested function literals — a call deferred into a
// closure is still a call this function can make).
func collectCalls(pkg *Package, n ast.Node, info *FuncInfo) {
	ast.Inspect(n, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key := resolveCall(pkg, call); key != "" {
			info.Calls = append(info.Calls, CallSite{Callee: key, Pos: call.Pos()})
		}
		return true
	})
}

// fieldOf resolves a selector expression to the struct field it selects
// and that field's owner key prefix ("ownerPkg.StructName"), or ("", nil)
// for non-field selections.
func fieldOf(p *Package, sel *ast.SelectorExpr) (ownerKey string, field *types.Var) {
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return "", nil
	}
	// Owner is the named struct the (possibly embedded) field lives in:
	// walk the selection's receiver down the index path.
	t := s.Recv()
	for _, i := range s.Index() {
		t = derefType(t)
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return "", nil
		}
		f := st.Field(i)
		if f == v {
			name := namedName(derefType(s.Recv()))
			// For embedded chains the precise owner is the embedded struct;
			// using the outermost named type keeps keys stable and is
			// sufficient for the monitored flat structs in this module.
			if name == "" || v.Pkg() == nil {
				return "", nil
			}
			return v.Pkg().Path() + "." + name, v
		}
		t = f.Type()
	}
	name := namedName(derefType(s.Recv()))
	if name == "" || v.Pkg() == nil {
		return "", nil
	}
	return v.Pkg().Path() + "." + name, v
}

func derefType(t types.Type) types.Type {
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

func namedName(t types.Type) string {
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// fieldAccessKey renders a resolved field to its index key.
func fieldAccessKey(ownerKey string, field *types.Var) string {
	return ownerKey + "." + field.Name()
}

// collectFieldAccesses walks one function body recording every struct
// field access with write/atomic classification:
//
//   - Write: the selector appears in the lvalue chain of an assignment,
//     IncDec or delete() — t.nodes[i].Capacity = x marks both
//     Topology.nodes and Node.Capacity written, because the mutation is
//     observable through either.
//   - Atomic: the selector is the receiver of a method on a sync/atomic
//     type (o.epoch.Add(1)) or its address is passed to a sync/atomic
//     function (atomic.AddUint64(&s.seq, 1)).
//   - Plain read otherwise.
func collectFieldAccesses(idx *Index, pkg *Package, fn FuncKey, body ast.Node) {
	// Pre-pass: classify selector nodes that are written or atomic, then a
	// single walk emits every field selection with its classification.
	written := make(map[*ast.SelectorExpr]bool)
	atomicSel := make(map[*ast.SelectorExpr]bool)

	markLvalue := func(e ast.Expr) {
		// Every field selection along the lvalue spine is written through.
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.SelectorExpr:
				written[x] = true
				e = x.X
			default:
				return
			}
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				markLvalue(lhs)
			}
		case *ast.IncDecStmt:
			markLvalue(s.X)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && len(s.Args) > 0 {
					markLvalue(s.Args[0])
				}
			}
			// atomic.AddUint64(&x.f, 1) and friends.
			if isAtomicPkgFunc(pkg, s.Fun) {
				for _, arg := range s.Args {
					if ue, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && ue.Op == token.AND {
						if sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr); ok {
							atomicSel[sel] = true
						}
					}
				}
			}
			// o.epoch.Add(1): receiver of a method on an atomic type. Only
			// the exact field selector counts — o.rows[i].Store(x) goes
			// through an atomic ELEMENT, which says nothing about how the
			// rows header itself may be accessed.
			if mSel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr); ok {
				if recvSel, ok := ast.Unparen(mSel.X).(*ast.SelectorExpr); ok && isAtomicType(pkg.Info.TypeOf(recvSel)) {
					atomicSel[recvSel] = true
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ownerKey, field := fieldOf(pkg, sel)
		if field == nil {
			return true
		}
		key := fieldAccessKey(ownerKey, field)
		idx.Fields[key] = append(idx.Fields[key], FieldAccess{
			Fn:     fn,
			Pkg:    pkg,
			Pos:    sel.Sel.Pos(),
			Write:  written[sel],
			Atomic: atomicSel[sel],
		})
		return true
	})
}

// isAtomicPkgFunc reports whether the call target is a package-level
// function of sync/atomic.
func isAtomicPkgFunc(p *Package, fun ast.Expr) bool {
	sel, ok := ast.Unparen(fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	f, ok := p.Info.Uses[sel.Sel].(*types.Func)
	return ok && f.Pkg() != nil && f.Pkg().Path() == "sync/atomic" &&
		f.Type().(*types.Signature).Recv() == nil
}

// isAtomicType reports whether t is one of sync/atomic's named types
// (Bool, Int32..Uint64, Uintptr, Pointer[T], Value).
func isAtomicType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := derefType(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// pkgPathBase returns the last element of an import path, tolerating
// fixture paths ("fixture/topology" -> "topology").
func pkgPathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
