package analysis

import (
	"path/filepath"
	"testing"
)

// TestLoaderFileScope pins the loader's file-selection contract on the
// loaderscope fixture: build-tag-excluded files and _test.go files are
// invisible, so every check runs over exactly the compiler's file set.
func TestLoaderFileScope(t *testing.T) {
	dir := filepath.Join("testdata", "src", "loaderscope")

	names, _, err := sourceFiles(dir)
	if err != nil {
		t.Fatalf("sourceFiles(%s): %v", dir, err)
	}
	if len(names) != 1 || names[0] != "scoped.go" {
		t.Fatalf("sourceFiles(%s) = %v, want [scoped.go]", dir, names)
	}

	pkg, err := NewLoader().LoadDir(dir, "fixture/loaderscope")
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("LoadDir(%s) parsed %d files, want 1", dir, len(pkg.Files))
	}
	if got := filepath.Base(pkg.Fset.Position(pkg.Files[0].Pos()).Filename); got != "scoped.go" {
		t.Fatalf("LoadDir(%s) parsed %s, want scoped.go", dir, got)
	}
	// The declarations visible to checks are exactly scoped.go's.
	if pkg.Pkg.Scope().Lookup("Kept") == nil {
		t.Errorf("Kept not in package scope; loader dropped the buildable file")
	}
	for _, name := range []string{"Excluded", "TestOnly"} {
		if pkg.Pkg.Scope().Lookup(name) != nil {
			t.Errorf("%s leaked into the package scope; loader ignored build-tag/_test scoping", name)
		}
	}
}

// TestLoadModuleSkipsUnbuildableDirs ensures the module walk uses the same
// compiler view: a directory whose only Go files are tag-excluded or tests
// must not be loaded (before the fix it was parsed and failed).
func TestLoadModuleSkipsUnbuildableDirs(t *testing.T) {
	files, _, err := sourceFiles(t.TempDir())
	if err != nil {
		t.Fatalf("sourceFiles(empty dir): %v", err)
	}
	if files != nil {
		t.Fatalf("sourceFiles(empty dir) = %v, want nil", files)
	}
}
