package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for ... range m` over a map in a decision package (core,
// scheduler, controller, stablematch, sim, yarn, experiments) unless the
// loop is provably iteration-order independent. Go randomizes map
// iteration order per run, so any decision that observes it — tie-breaks,
// float accumulation, first-match selection — destroys the seeded
// reproducibility the paper's figures depend on.
//
// A map-range loop is accepted without a suppression when one of these
// holds:
//
//   - Collect-then-sort: the body appends keys/values to slices and every
//     such slice is passed to a sort.* / slices.Sort* call later in the
//     same function. This is the idiomatic deterministic-iteration pattern.
//   - Commutative accumulation: every statement — recursing through if,
//     block and nested loop bodies — is an increment/decrement or a += /
//     -= / |= / &= / ^= on an integer-typed lvalue, a fresh short variable
//     declaration, or a continue. Integer reduction is order-independent;
//     float reduction is NOT (rounding depends on order) and stays
//     flagged, as do break/return (first-match selection observes order).
//   - Keyed map writes: statements of the form m2[k] = v, m2[k] op= v or
//     delete(m2, k) where k is exactly the loop's key variable. Distinct
//     keys commute.
//
// Anything else needs a deterministic rewrite or a
// `//taalint:maporder <reason>` annotation.
type MapOrder struct{}

// Name implements Check.
func (MapOrder) Name() string { return "maporder" }

// Doc implements Check.
func (MapOrder) Doc() string {
	return "map-range loops in decision packages must feed a deterministic sort or carry a suppression"
}

// Run implements Check.
func (MapOrder) Run(p *Pass) {
	if !decisionPackages[p.Pkg.Base()] {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				mapOrderFunc(p, fn.Body)
			}
		}
	}
}

// mapOrderFunc inspects one function body. fnBody is the scope searched
// for post-loop sort calls.
func mapOrderFunc(p *Pass, fnBody *ast.BlockStmt) {
	ast.Inspect(fnBody, func(n ast.Node) bool {
		// Function literals get their own scope so a sort inside a
		// closure doesn't whitelist a loop outside it and vice versa.
		if fl, ok := n.(*ast.FuncLit); ok {
			mapOrderFunc(p, fl.Body)
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if mapRangeOK(p, rs, fnBody) {
			return true
		}
		p.Reportf(rs.For,
			"range over %s is map-iteration-order dependent; collect keys and sort, or annotate //taalint:maporder",
			typeString(t))
		return true
	})
}

func typeString(t types.Type) string {
	s := t.String()
	if len(s) > 40 {
		return "map"
	}
	return s
}

// mapRangeOK reports whether the loop matches one of the whitelisted
// order-independent shapes.
func mapRangeOK(p *Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	keyObj := identObj(p, rs.Key)
	appendTargets := make(map[types.Object]bool)
	if !commutativeStmts(p, rs.Body.List, keyObj, appendTargets) {
		return false
	}
	// Collect-then-sort: every appended slice must be sorted after the
	// loop within the same function body. (Append order itself is the map
	// order; only a later sort erases it.)
	for obj := range appendTargets {
		if !sortedAfter(p, fnBody, rs.End(), obj) {
			return false
		}
	}
	return true
}

// commutativeStmts reports whether every statement in the list is
// order-independent across iterations, recursing into nested control flow.
func commutativeStmts(p *Pass, stmts []ast.Stmt, keyObj types.Object, appendTargets map[types.Object]bool) bool {
	for _, stmt := range stmts {
		if !commutativeStmt(p, stmt, keyObj, appendTargets) {
			return false
		}
	}
	return true
}

func commutativeStmt(p *Pass, stmt ast.Stmt, keyObj types.Object, appendTargets map[types.Object]bool) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		return isIntegerExpr(p, s.X)
	case *ast.AssignStmt:
		return commutativeAssign(p, s, keyObj, appendTargets)
	case *ast.ExprStmt:
		// delete(m2, k) commutes when k is the loop key.
		return isKeyedDelete(p, s.X, keyObj)
	case *ast.IfStmt:
		if s.Init != nil && !commutativeStmt(p, s.Init, keyObj, appendTargets) {
			return false
		}
		if !commutativeStmts(p, s.Body.List, keyObj, appendTargets) {
			return false
		}
		return s.Else == nil || commutativeStmt(p, s.Else, keyObj, appendTargets)
	case *ast.BlockStmt:
		return commutativeStmts(p, s.List, keyObj, appendTargets)
	case *ast.RangeStmt:
		// A nested map-range is checked on its own by the main walk; for
		// the outer loop's purposes it commutes iff its body does.
		return commutativeStmts(p, s.Body.List, keyObj, appendTargets)
	case *ast.ForStmt:
		return commutativeStmts(p, s.Body.List, keyObj, appendTargets)
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	case *ast.DeclStmt:
		// A fresh per-iteration declaration has no cross-iteration effect.
		return true
	default:
		return false
	}
}

// commutativeAssign decides whether one assignment statement inside a
// map-range body is order-independent. It records append targets
// (candidates for the collect-then-sort pattern) as a side effect.
func commutativeAssign(p *Pass, s *ast.AssignStmt, keyObj types.Object, appendTargets map[types.Object]bool) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	lhs, rhs := s.Lhs[0], s.Rhs[0]
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		// v = append(v, ...) collects for a later sort.
		if obj := identObj(p, lhs); obj != nil {
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(p, call.Fun, "append") && len(call.Args) > 0 {
				if identObj(p, call.Args[0]) == obj {
					appendTargets[obj] = true
					return true
				}
			}
		}
		// A short declaration of a fresh per-iteration variable has no
		// cross-iteration effect; a plain assignment to an outer variable
		// does (last writer wins) and stays flagged.
		if s.Tok == token.DEFINE {
			if id, ok := lhs.(*ast.Ident); ok && p.Pkg.Info.Defs[id] != nil {
				return true
			}
		}
		// m2[k] = v with k the loop key: distinct keys commute.
		return isKeyedIndex(p, lhs, keyObj)
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		if isKeyedIndex(p, lhs, keyObj) {
			return true
		}
		return isIntegerExpr(p, lhs)
	default:
		return false
	}
}

// sortedAfter reports whether obj is passed to a sort.* or slices.* call
// positioned after pos inside body.
func sortedAfter(p *Pass, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := p.Pkg.Info.Uses[pkgID].(*types.PkgName); !ok ||
			(pn.Imported().Path() != "sort" && pn.Imported().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if identObj(p, arg) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isKeyedDelete matches delete(m2, k) with k the loop key.
func isKeyedDelete(p *Pass, e ast.Expr, keyObj types.Object) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || keyObj == nil || !isBuiltin(p, call.Fun, "delete") || len(call.Args) != 2 {
		return false
	}
	return identObj(p, call.Args[1]) == keyObj
}

// isKeyedIndex matches m2[k] where k is the loop key and m2 is a map.
func isKeyedIndex(p *Pass, e ast.Expr, keyObj types.Object) bool {
	idx, ok := e.(*ast.IndexExpr)
	if !ok || keyObj == nil {
		return false
	}
	if identObj(p, idx.Index) != keyObj {
		return false
	}
	t := p.TypeOf(idx.X)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

func isIntegerExpr(p *Pass, e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isBuiltin(p *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.Pkg.Info.Uses[id].(*types.Builtin)
	return ok
}

// identObj resolves an expression to the object of a plain identifier, or
// nil for anything more complex.
func identObj(p *Pass, e ast.Expr) types.Object {
	if e == nil {
		return nil
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := p.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Defs[id]
}
