package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AtomicGuard enforces the module's two concurrency disciplines:
//
//  1. Atomic exclusivity (module-wide): a struct field accessed through
//     sync/atomic anywhere — atomic.AddUint64(&o.seq, 1), or a method on
//     an atomic-typed field like o.epoch.Add(1) — may not be read or
//     written plainly anywhere else. Mixed access is a data race the race
//     detector only catches when the schedule cooperates; the index sees
//     every access site at once. (Element-wise atomics through a slice of
//     atomic.Pointer do not mark the slice header itself: the header is
//     plain data guarded by its own discipline.)
//
//  2. Stripe-lock discipline (netstate only): the pair-route cache and the
//     oracle's structure caches are maps guarded by mutexes declared in
//     the same struct. Any access to such a map must be preceded, in the
//     enclosing function, by a Lock/RLock call rooted at the same
//     variable. Functions named *Locked (callee holds the lock by
//     contract) and maps freshly created in the function (make/composite
//     literal locals, invisible to other goroutines until published) are
//     exempt.
//
// Rule 2 is syntactic and function-local by design: it does not prove the
// lock is HELD at the access (no unlock tracking), it proves the author
// thought about the lock at all — which is the failure mode the PR-3
// review actually caught (a fast-path read added above the RLock).
type AtomicGuard struct{}

// Name implements Check.
func (AtomicGuard) Name() string { return "atomicguard" }

// Doc implements Check.
func (AtomicGuard) Doc() string {
	return "fields accessed via sync/atomic must never be accessed plainly; netstate's mutex-guarded maps must be accessed under their mutex"
}

// RunModule implements ModuleCheck.
func (AtomicGuard) RunModule(mp *ModulePass) {
	// Rule 1: atomic exclusivity over the field-access index.
	keys := make([]string, 0, len(mp.Index.Fields))
	for k := range mp.Index.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		accesses := mp.Index.Fields[k]
		hasAtomic := false
		for _, a := range accesses {
			if a.Atomic {
				hasAtomic = true
				break
			}
		}
		if !hasAtomic {
			continue
		}
		for _, a := range accesses {
			if a.Atomic {
				continue
			}
			kind := "read"
			if a.Write {
				kind = "write"
			}
			mp.Reportf(a.Pkg, a.Pos,
				"plain %s of field %s, which is accessed via sync/atomic elsewhere; use the atomic API at every site",
				kind, shortKey(k))
		}
	}

	// Rule 2: stripe/structure-lock discipline in netstate packages.
	for _, pkg := range mp.Pkgs {
		if pkg.Base() != "netstate" {
			continue
		}
		guarded := guardedMapFields(pkg)
		if len(guarded) == 0 {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if strings.HasSuffix(fd.Name.Name, "Locked") {
					continue
				}
				checkLockDiscipline(mp, pkg, fd, guarded)
			}
		}
	}
}

// guardedMapFields returns the *types.Var set of map fields declared in
// structs that also declare a sync.Mutex or sync.RWMutex field.
func guardedMapFields(pkg *Package) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			obj, ok := pkg.Info.Defs[ts.Name]
			if !ok || obj == nil {
				return true
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				return true
			}
			hasMutex := false
			for i := 0; i < st.NumFields(); i++ {
				if isSyncMutexType(st.Field(i).Type()) {
					hasMutex = true
					break
				}
			}
			if !hasMutex {
				return true
			}
			for i := 0; i < st.NumFields(); i++ {
				fld := st.Field(i)
				if _, isMap := fld.Type().Underlying().(*types.Map); isMap {
					out[fld] = true
				}
			}
			return true
		})
	}
	return out
}

// isSyncMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isSyncMutexType(t types.Type) bool {
	named, ok := derefType(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkLockDiscipline walks one function (nested literals included — the
// routeInit Once closure is the same critical region) and reports guarded
// map accesses not preceded by a Lock/RLock rooted at the same variable.
func checkLockDiscipline(mp *ModulePass, pkg *Package, fd *ast.FuncDecl, guarded map[*types.Var]bool) {
	// Pass 1: fresh locals (maps/structs created here are unpublished) and
	// lock events keyed by root object.
	fresh := make(map[types.Object]bool)
	type lockEvent struct {
		root types.Object
		pos  token.Pos
	}
	var locks []lockEvent
	ast.Inspect(fd, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok != token.DEFINE {
				return true
			}
			if len(s.Rhs) != len(s.Lhs) {
				return true // multi-value call: never make/new/composite
			}
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if isFreshExpr(pkg, s.Rhs[i]) {
					if obj := pkg.Info.Defs[id]; obj != nil {
						fresh[obj] = true
					}
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "Lock" && name != "RLock" {
				return true
			}
			if !isSyncMutexType(receiverType(pkg, sel)) {
				return true
			}
			if root := rootObject(pkg, sel.X); root != nil {
				locks = append(locks, lockEvent{root: root, pos: s.Pos()})
			}
		}
		return true
	})

	lockedBefore := func(root types.Object, pos token.Pos) bool {
		for _, l := range locks {
			if l.root == root && l.pos < pos {
				return true
			}
		}
		return false
	}

	// Pass 2: guarded map accesses.
	ast.Inspect(fd, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pkg.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		v, ok := s.Obj().(*types.Var)
		if !ok || !guarded[v] {
			return true
		}
		root := rootObject(pkg, sel.X)
		if root == nil || fresh[root] {
			return true
		}
		if lockedBefore(root, sel.Pos()) {
			return true
		}
		mp.Reportf(pkg, sel.Sel.Pos(),
			"access to mutex-guarded map %s without an earlier Lock/RLock on %s in this function (suffix the function with Locked if the caller holds it)",
			v.Name(), root.Name())
		return true
	})
}

// receiverType returns the type of a method call's receiver expression.
func receiverType(pkg *Package, sel *ast.SelectorExpr) types.Type {
	if s, ok := pkg.Info.Selections[sel]; ok {
		return s.Recv()
	}
	return pkg.Info.TypeOf(sel.X)
}

// rootObject walks a selector/index/deref spine to its base identifier's
// object: o.routeShards[i].mu roots at o; sh.m roots at sh.
func rootObject(pkg *Package, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.Ident:
			return pkg.Info.ObjectOf(x)
		default:
			return nil
		}
	}
}

// isFreshExpr reports whether rhs creates a value invisible to other
// goroutines: make(), a composite literal, its address, or new().
func isFreshExpr(pkg *Package, rhs ast.Expr) bool {
	switch x := ast.Unparen(rhs).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op != token.AND {
			return false
		}
		_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		id, ok := ast.Unparen(x.Fun).(*ast.Ident)
		return ok && (id.Name == "make" || id.Name == "new") && isBuiltinIdent(pkg, id)
	}
	return false
}
