package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// EpochBump enforces the netstate epoch-invalidation contract at the
// source level. Two rules:
//
//  1. Write containment: any assignment to a cache-relevant field —
//     topology node/link/liveness state, controller policy/rate/load
//     state, cluster allocation state — outside the blessed mutator set
//     below is an error. The pair-route cache (PR 3) and the liveness
//     layer (PR 4) are only correct because every such mutation flows
//     through a setter that bumps the matching version counter; a stray
//     `t.alive[i] = false` serves stale routes until the next unrelated
//     bump.
//
//  2. Bump proof: every blessed mutator that is not construction-exempt
//     must be proven — by abstract interpretation over the module call
//     graph — to bump an epoch counter (Topology.version,
//     Topology.liveVersion or Oracle.epoch, directly or via a callee such
//     as Oracle.BumpEpoch) on EVERY path that performs a monitored write.
//     Paths that return without writing (validation failures, no-op
//     flips) carry no obligation; paths that write and return without a
//     bump are findings.
//
// The proof walks each function with a dirty flag: a monitored write sets
// it, a bump clears it, branches join pessimistically (either side dirty
// → dirty), loop bodies are walked twice, and calls apply the callee's
// memoized summary (cycles resolve optimistically). A mutator is reported
// when any exit — explicit return or fall-off, after deferred calls —
// can still be dirty. When the module contains decision-layer packages
// (scheduler, sim, ...) the obligation is scoped to mutators reachable
// from them over the call graph; in isolated fixtures every blessed
// mutator is obligated.
//
// Unresolved calls (interface dispatch, function values, stdlib) are
// assumed to neither write nor bump. That is sound for rule 1 because
// every monitored field is unexported: only the declaring package can
// write it, and every function of a loaded package is in the index.
type EpochBump struct{}

// Name implements Check.
func (EpochBump) Name() string { return "epochbump" }

// Doc implements Check.
func (EpochBump) Doc() string {
	return "cache-relevant topology/controller/cluster fields may only be written by blessed mutators, which must bump an epoch on every mutating path"
}

// ebRule describes one blessed mutator.
type ebRule struct {
	// exempt marks construction-time writers (Builder methods, cluster
	// allocation bookkeeping): free to write, no bump obligation, and
	// their summaries are forced clean so constructors reached through
	// them (NewTree, New, ...) do not propagate dirt to callers. Cluster
	// state is exempt as a class because it is re-read on every decision,
	// never epoch-cached.
	exempt bool
}

// ebBlessed is the blessed mutator set, keyed by package-base-qualified
// function key (see shortKey) so fixtures under "fixture/topology" are
// held to the same contract as "repro/internal/topology". This list is
// the single source of truth documented in DESIGN.md §6.1.
var ebBlessed = map[string]ebRule{
	// Parameter and liveness setters: the epoch contract proper.
	"topology.(Topology).SetSwitchCapacity": {},
	"topology.(Topology).SetLinkBandwidth":  {},
	"topology.(Topology).SetNodeAlive":      {},
	// Graph construction: structure is immutable after Build, so builder
	// writes precede any cache and need no bump.
	"topology.(Builder).AddServer": {exempt: true},
	"topology.(Builder).AddSwitch": {exempt: true},
	"topology.(Builder).Connect":   {exempt: true},
	"topology.(Builder).Build":     {exempt: true},
	// Controller state mutations: each must end in Oracle.BumpEpoch.
	"controller.(Controller).Install":   {},
	"controller.(Controller).Uninstall": {},
	"controller.(Controller).Reset":     {},
	// Cluster allocation bookkeeping (uncached; see exempt doc above).
	"cluster.(Cluster).SetServerCapacity": {exempt: true},
	"cluster.(Cluster).Place":             {exempt: true},
	"cluster.(Cluster).unplaceLocked":     {exempt: true},
}

// ebMonitored is the cache-relevant field set, keyed by
// package-base-qualified field key ("topology.Topology.alive").
// Deliberately absent: Topology.dist (a cache itself, cleared by
// SetNodeAlive), the controller's fitsAll memo, and the epoch counters
// (writes to those ARE the bumps).
var ebMonitored = map[string]bool{
	"topology.Topology.nodes":    true,
	"topology.Topology.links":    true,
	"topology.Topology.adj":      true,
	"topology.Topology.linkIdx":  true,
	"topology.Topology.servers":  true,
	"topology.Topology.switches": true,
	"topology.Topology.alive":    true,
	"topology.Topology.numDead":  true,

	"controller.Controller.policies": true,
	"controller.Controller.rates":    true,
	"controller.Controller.load":     true,

	"cluster.serverState.capacity":   true,
	"cluster.serverState.used":       true,
	"cluster.serverState.containers": true,
	"cluster.Container.server":       true,
}

// ebEpochFields are the version counters whose increment constitutes a
// bump: a direct write/IncDec, or a sync/atomic mutation of the field.
var ebEpochFields = map[string]bool{
	"topology.Topology.version":     true,
	"topology.Topology.liveVersion": true,
	"netstate.Oracle.epoch":         true,
}

// ebAtomicMutators are the sync/atomic method names that modify the
// receiver; calling one on an epoch-counter field is a bump.
var ebAtomicMutators = map[string]bool{
	"Add": true, "Store": true, "Swap": true, "CompareAndSwap": true,
}

// RunModule implements ModuleCheck.
func (EpochBump) RunModule(mp *ModulePass) {
	eng := &ebEngine{idx: mp.Index, memo: make(map[FuncKey]ebSummary), busy: make(map[FuncKey]bool)}

	// Rule 1: writes outside the blessed set.
	fieldKeys := make([]string, 0, len(mp.Index.Fields))
	for k := range mp.Index.Fields {
		fieldKeys = append(fieldKeys, k)
	}
	sort.Strings(fieldKeys)
	for _, k := range fieldKeys {
		if !ebMonitored[shortKey(k)] {
			continue
		}
		for _, a := range mp.Index.Fields[k] {
			if !a.Write {
				continue
			}
			if _, blessed := ebBlessed[shortKey(a.Fn)]; blessed {
				continue
			}
			mp.Reportf(a.Pkg, a.Pos,
				"write to cache-relevant field %s outside the blessed mutator set; route the mutation through a blessed setter (see epochbump.go)",
				shortKey(k))
		}
	}

	// Rule 2: bump proof for obligated mutators. When decision-layer
	// packages are present the obligation follows call-graph reachability
	// from them; otherwise (fixtures) every blessed mutator is obligated.
	var reachable map[FuncKey]bool
	rootsExist := false
	for _, p := range mp.Pkgs {
		if decisionPackages[p.Base()] {
			rootsExist = true
			break
		}
	}
	if rootsExist {
		reachable = mp.Index.ReachableFrom(func(p *Package) bool { return decisionPackages[p.Base()] })
	}
	funcKeys := make([]FuncKey, 0, len(mp.Index.Funcs))
	for k := range mp.Index.Funcs {
		funcKeys = append(funcKeys, k)
	}
	sort.Strings(funcKeys)
	for _, k := range funcKeys {
		rule, blessed := ebBlessed[shortKey(k)]
		if !blessed || rule.exempt {
			continue
		}
		if rootsExist && !reachable[k] {
			continue
		}
		info := mp.Index.Funcs[k]
		if sum := eng.summary(k); sum.mayExitDirty {
			mp.Reportf(info.Pkg, info.Decl.Name.Pos(),
				"blessed mutator %s can return with cache-relevant state written but no epoch bump on some path",
				info.Decl.Name.Name)
		}
	}
}

// ebState is the abstract state at one program point: dirty = a monitored
// write has happened with no bump since; bumped = a bump has happened
// since function entry on this path.
type ebState struct{ dirty, bumped bool }

// ebJoin merges branch states pessimistically.
func ebJoin(a, b ebState) ebState {
	return ebState{dirty: a.dirty || b.dirty, bumped: a.bumped && b.bumped}
}

// ebSummary is a function's memoized effect: mayExitDirty = some exit can
// be dirty when entered clean; alwaysBumps = every exit has bumped.
type ebSummary struct{ mayExitDirty, alwaysBumps bool }

// apply folds a callee's summary into the caller's state.
func (st ebState) apply(sum ebSummary) ebState {
	return ebState{
		dirty:  (st.dirty && !sum.alwaysBumps) || sum.mayExitDirty,
		bumped: st.bumped || sum.alwaysBumps,
	}
}

type ebEngine struct {
	idx  *Index
	memo map[FuncKey]ebSummary
	busy map[FuncKey]bool
}

// summary computes (and memoizes) a function's effect summary. Unknown
// and in-progress (cyclic) callees resolve to the neutral summary.
func (e *ebEngine) summary(key FuncKey) ebSummary {
	if key == "" {
		return ebSummary{}
	}
	if s, ok := e.memo[key]; ok {
		return s
	}
	if e.busy[key] {
		return ebSummary{}
	}
	info := e.idx.Func(key)
	if info == nil {
		return ebSummary{}
	}
	if rule, ok := ebBlessed[shortKey(key)]; ok && rule.exempt {
		e.memo[key] = ebSummary{}
		return ebSummary{}
	}
	e.busy[key] = true
	w := &ebWalk{eng: e, pkg: info.Pkg}
	final := w.stmts(info.Decl.Body.List, ebState{})
	w.exit(final)
	delete(e.busy, key)
	sum := ebSummary{alwaysBumps: true}
	for _, ex := range w.exits {
		if ex.dirty {
			sum.mayExitDirty = true
		}
		if !ex.bumped {
			sum.alwaysBumps = false
		}
	}
	e.memo[key] = sum
	return sum
}

// ebWalk interprets one function body.
type ebWalk struct {
	eng    *ebEngine
	pkg    *Package
	exits  []ebState
	defers []ebSummary // effects of defers registered so far, in order
}

// exit records a function exit, applying the defers registered up to this
// point (a deferred bump covers every later return).
func (w *ebWalk) exit(st ebState) {
	for _, d := range w.defers {
		st = st.apply(d)
	}
	w.exits = append(w.exits, st)
}

func (w *ebWalk) stmts(list []ast.Stmt, st ebState) ebState {
	for _, s := range list {
		st = w.stmt(s, st)
	}
	return st
}

func (w *ebWalk) stmt(s ast.Stmt, st ebState) ebState {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			st = w.exprEffects(r, st)
		}
		w.exit(st)
		return st
	case *ast.ExprStmt:
		return w.exprEffects(s.X, st)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			st = w.exprEffects(r, st)
		}
		for _, l := range s.Lhs {
			st = w.exprEffects(l, st)
			st = w.lvalue(l, st)
		}
		return st
	case *ast.IncDecStmt:
		st = w.exprEffects(s.X, st)
		return w.lvalue(s.X, st)
	case *ast.DeferStmt:
		for _, a := range s.Call.Args {
			st = w.exprEffects(a, st)
		}
		w.defers = append(w.defers, w.callSummary(s.Call))
		return st
	case *ast.GoStmt:
		// Conservative: account the goroutine's effects at spawn point.
		return w.exprEffects(s.Call, st)
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		st = w.exprEffects(s.Cond, st)
		then := w.stmts(s.Body.List, st)
		els := st
		if s.Else != nil {
			els = w.stmt(s.Else, st)
		}
		return ebJoin(then, els)
	case *ast.ForStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			st = w.exprEffects(s.Cond, st)
		}
		once := w.loopPass(s, st)
		twice := w.loopPass(s, once)
		return ebJoin(st, ebJoin(once, twice))
	case *ast.RangeStmt:
		st = w.exprEffects(s.X, st)
		once := w.stmts(s.Body.List, st)
		twice := w.stmts(s.Body.List, once)
		return ebJoin(st, ebJoin(once, twice))
	case *ast.SwitchStmt:
		return w.switchLike(s.Init, s.Tag, caseBodies(s.Body), hasDefaultClause(s.Body), st)
	case *ast.TypeSwitchStmt:
		return w.switchLike(s.Init, nil, caseBodies(s.Body), hasDefaultClause(s.Body), st)
	case *ast.SelectStmt:
		out := st // a select with no ready case blocks, but stay conservative
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			b := st
			if cc.Comm != nil {
				b = w.stmt(cc.Comm, b)
			}
			out = ebJoin(out, w.stmts(cc.Body, b))
		}
		return out
	case *ast.SendStmt:
		st = w.exprEffects(s.Chan, st)
		return w.exprEffects(s.Value, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						st = w.exprEffects(v, st)
					}
				}
			}
		}
		return st
	default:
		return st
	}
}

func (w *ebWalk) loopPass(s *ast.ForStmt, st ebState) ebState {
	st = w.stmts(s.Body.List, st)
	if s.Post != nil {
		st = w.stmt(s.Post, st)
	}
	if s.Cond != nil {
		st = w.exprEffects(s.Cond, st)
	}
	return st
}

func (w *ebWalk) switchLike(init ast.Stmt, tag ast.Expr, bodies [][]ast.Stmt, hasDefault bool, st ebState) ebState {
	if init != nil {
		st = w.stmt(init, st)
	}
	if tag != nil {
		st = w.exprEffects(tag, st)
	}
	out := st
	first := !hasDefault // without a default, falling past every case is a path
	for _, body := range bodies {
		b := w.stmts(body, st)
		if first && hasDefault {
			out = b
			first = false
			continue
		}
		out = ebJoin(out, b)
	}
	return out
}

func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// exprEffects applies the effects of every call embedded in e (skipping
// function literals, whose bodies run only when invoked) and of delete()
// on monitored maps.
func (w *ebWalk) exprEffects(e ast.Expr, st ebState) ebState {
	if e == nil {
		return st
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if w.callBumps(call) {
			st.bumped, st.dirty = true, false
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" && isBuiltinIdent(w.pkg, id) {
			if len(call.Args) > 0 {
				st = w.lvalue(call.Args[0], st)
			}
			return true
		}
		st = st.apply(w.eng.summary(resolveCall(w.pkg, call)))
		return true
	})
	return st
}

// lvalue applies the write effect of assigning through e: every monitored
// field on the selector spine dirties the state; every epoch-counter
// field bumps it.
func (w *ebWalk) lvalue(e ast.Expr, st ebState) ebState {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if owner, field := fieldOf(w.pkg, x); field != nil {
				key := shortKey(fieldAccessKey(owner, field))
				if ebEpochFields[key] {
					st.bumped, st.dirty = true, false
				} else if ebMonitored[key] {
					st.dirty = true
				}
			}
			e = x.X
		default:
			return st
		}
	}
}

// callSummary resolves the effect of a (possibly deferred) call: a direct
// epoch-field mutation, a known callee's summary, or an inline literal's
// body interpreted as its own function.
func (w *ebWalk) callSummary(call *ast.CallExpr) ebSummary {
	if w.callBumps(call) {
		return ebSummary{alwaysBumps: true}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		sub := &ebWalk{eng: w.eng, pkg: w.pkg}
		final := sub.stmts(lit.Body.List, ebState{})
		sub.exit(final)
		sum := ebSummary{alwaysBumps: true}
		for _, ex := range sub.exits {
			if ex.dirty {
				sum.mayExitDirty = true
			}
			if !ex.bumped {
				sum.alwaysBumps = false
			}
		}
		return sum
	}
	return w.eng.summary(resolveCall(w.pkg, call))
}

// callBumps recognizes a direct epoch bump: a mutating sync/atomic method
// on an epoch-counter field (o.epoch.Add(1)) or an epoch-counter field's
// address passed to a sync/atomic function.
func (w *ebWalk) callBumps(call *ast.CallExpr) bool {
	if mSel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && ebAtomicMutators[mSel.Sel.Name] {
		if recvSel, ok := ast.Unparen(mSel.X).(*ast.SelectorExpr); ok && isAtomicType(w.pkg.Info.TypeOf(recvSel)) {
			if owner, field := fieldOf(w.pkg, recvSel); field != nil {
				if ebEpochFields[shortKey(fieldAccessKey(owner, field))] {
					return true
				}
			}
		}
	}
	if isAtomicPkgFunc(w.pkg, call.Fun) {
		for _, arg := range call.Args {
			if ue, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && ue.Op == token.AND {
				if sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr); ok {
					if owner, field := fieldOf(w.pkg, sel); field != nil {
						if ebEpochFields[shortKey(fieldAccessKey(owner, field))] {
							return true
						}
					}
				}
			}
		}
	}
	return false
}

// isBuiltinIdent reports whether id resolves to a Go builtin.
func isBuiltinIdent(p *Package, id *ast.Ident) bool {
	_, ok := p.Info.Uses[id].(*types.Builtin)
	return ok
}

// shortKey trims the import-path directory from an index key, leaving the
// package-base-qualified form both the real module and fixtures share:
// "repro/internal/topology.(Topology).SetNodeAlive" and
// "fixture/topology.(Topology).SetNodeAlive" both shorten to
// "topology.(Topology).SetNodeAlive". Field keys shorten the same way.
func shortKey(key string) string { return pkgPathBase(key) }
