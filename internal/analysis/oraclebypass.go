package analysis

import (
	"go/types"
	"strings"
)

// OracleBypass enforces the PR 1 invariant behind internal/netstate: all
// path, BFS-distance and switch-inventory queries go through the shared
// epoch-versioned oracle. Calling the raw *topology.Topology query methods
// from a consumer package silently reintroduces the O(containers × servers
// × flows × BFS) behavior the oracle removed, and — because the raw
// methods know nothing about the controller's epoch — can disagree with
// what every other layer sees after a capacity or bandwidth mutation.
//
// Forbidden outside internal/netstate (and internal/topology itself):
// Topology.Dist, ShortestPath, ShortestPathDAG, PathLatency, AccessSwitch
// and SwitchesOfType — each has an oracle equivalent of the same name —
// plus the coordinate closed forms StructuralDist, LowestCommonTier and
// StageTemplate, which answer for the healthy graph only and whose
// refuse-and-fall-back-to-BFS gating is centralized in internal/netstate.
// Structural accessors (Node, Servers, Switches, Links, Neighbors, ...)
// remain free: they are O(1) reads, not path computations.
type OracleBypass struct{}

// oracleOnly are the *topology.Topology methods with a mandatory oracle
// equivalent.
var oracleOnly = map[string]bool{
	"Dist":            true,
	"ShortestPath":    true,
	"ShortestPathDAG": true,
	"PathLatency":     true,
	"AccessSwitch":    true,
	"SwitchesOfType":  true,
}

// structuralOnly are the coordinate closed-form accessors, callable only
// from internal/netstate. Unlike the oracleOnly methods these are O(1),
// but they answer for the HEALTHY graph only — each refuses (ok=false)
// while any node is down — and internal/netstate is where the
// fallback-to-BFS gating lives. A consumer calling them directly must
// reimplement that gating, and a missed refusal check silently serves
// healthy-graph distances on a degraded fabric. ServerCell is not a
// distance oracle but lives behind the same door: Oracle.CellOf is the
// consumer API, with the access-switch fallback for irregular graphs.
var structuralOnly = map[string]bool{
	"StructuralDist":   true,
	"LowestCommonTier": true,
	"StageTemplate":    true,
	"ServerCell":       true,
}

// Name implements Check.
func (OracleBypass) Name() string { return "oraclebypass" }

// Doc implements Check.
func (OracleBypass) Doc() string {
	return "topology path/distance queries outside internal/netstate must go through the netstate oracle"
}

// Run implements Check.
func (OracleBypass) Run(p *Pass) {
	base := p.Pkg.Base()
	if base == "netstate" || base == "topology" {
		return
	}
	for sel, selection := range p.Pkg.Info.Selections {
		if selection.Kind() != types.MethodVal && selection.Kind() != types.MethodExpr {
			continue
		}
		m := selection.Obj()
		if !isTopologyType(selection.Recv()) {
			continue
		}
		switch {
		case oracleOnly[m.Name()]:
			p.Reportf(sel.Sel.Pos(),
				"direct topology.%s bypasses the netstate oracle (uncached BFS, epoch-blind); use (*netstate.Oracle).%s",
				m.Name(), m.Name())
		case structuralOnly[m.Name()]:
			p.Reportf(sel.Sel.Pos(),
				"topology.%s is a structural closed form reserved for internal/netstate (liveness fallback gating lives there); query the oracle instead",
				m.Name())
		}
	}
}

// isTopologyType matches topology.Topology or *topology.Topology from the
// module's internal/topology package.
func isTopologyType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Topology" || obj.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), "internal/topology")
}
