package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// lockorder: the static lock-acquisition graph over every sync.Mutex and
// sync.RWMutex owned by the concurrent packages (loPackages) must be
// acyclic.
//
// PR-8/9 gave the scheduler a genuinely concurrent core: the netstate
// oracle's six lock domains, the pair-route shard stripes and the
// supervisor's window mutex are all taken from shard workers, the
// arbiter and the scheduling goroutine at once. Deadlock freedom for
// plain mutexes reduces to one global property — there is a total order
// on locks such that every nested acquisition respects it. This check
// computes the "acquired-while-held" relation statically and fails on
// any cycle, so an inverted nesting (pairMu inside typeMu here, typeMu
// inside pairMu there) is caught at lint time instead of as a
// once-a-week hang under -race.
//
// Graph construction, per declared function (and separately per
// goroutine-launched literal, which starts with an empty held set):
//
//   - X.Lock() / X.RLock() on a tracked lock L with H held adds edge
//     H -> L. Read and write acquisition collapse onto one node: a
//     cycle through an RLock is still a deadlock once any writer queues
//     (sync.RWMutex writer preference).
//   - X.Unlock() / X.RUnlock() releases; `defer X.Unlock()` keeps L
//     held to the end of the function, which is exactly its dynamic
//     extent for nesting purposes.
//   - A statically resolved call made with H held adds H -> A for every
//     lock A in the callee's TRANSITIVE acquire set (fixed-pointed over
//     the call graph), so ensureLive -> clearPairRoutes -> shard locks
//     is one edge chain, not an escape hatch. *Locked-suffix helpers
//     need no special casing: they acquire nothing, so they contribute
//     no edges — the convention is enforced by construction.
//   - Code that runs on ANOTHER goroutine — `go` statements and
//     function literals handed to the pool entry points
//     (acPoolEntrypoints) — is excluded from the launcher's walk and
//     walked as its own root instead: holding H while STARTING a
//     goroutine that takes L is not nesting.
//
// Branch joins are unions (an edge on some path is an edge), loop
// bodies are walked twice, returns terminate a path. Dynamic calls
// (function values, interface methods) contribute no edges — the
// fail-safe stance of every index-based check — so callback fields like
// netstate.Oracle.load carry a contract annotation at the declaration
// instead: callbacks must not re-enter the oracle's locking API.
//
// The graph itself is exported (BuildLockGraph / LockGraph.WriteDOT)
// for taalint's -lockgraph flag, so the proven order ships as a CI
// artifact next to the findings.

// loPackages are the package bases whose mutex fields and package-level
// mutex vars are tracked lock nodes.
var loPackages = map[string]bool{
	"netstate":   true,
	"multisched": true,
	"supervise":  true,
	"controller": true,
}

// LockEdge is one acquired-while-held edge of the lock graph: To was
// acquired (directly or through the static call graph) while From was
// held, first observed in function Fn.
type LockEdge struct {
	From, To string
	Fn       string // shortKey of the function whose walk produced the edge
	Pkg      *Package
	Pos      token.Pos
}

// LockGraph is the module's static lock-acquisition graph. Nodes is the
// full tracked-lock inventory (acquired or not, so an unused lock still
// shows up in the DOT artifact); Edges is deduplicated by (From, To)
// keeping the first edge in deterministic walk order.
type LockGraph struct {
	Nodes []string
	Edges []LockEdge
}

// BuildLockGraph builds the lock graph over the given packages. The
// lockorder check itself reuses the module pass's shared index; this
// entry point exists for cmd/taalint's -lockgraph flag.
func BuildLockGraph(pkgs []*Package) *LockGraph {
	return buildLockGraph(BuildIndex(pkgs))
}

// WriteDOT renders the graph as deterministic Graphviz source: nodes
// sorted, edges sorted by (From, To), each edge labeled with the
// function that nests the pair.
func (g *LockGraph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph lockorder {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	nodes := append([]string(nil), g.Nodes...)
	sort.Strings(nodes)
	for _, n := range nodes {
		fmt.Fprintf(&b, "  %q;\n", n)
	}
	edges := append([]LockEdge(nil), g.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", e.From, e.To, e.Fn)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// LockOrder is the deadlock-freedom check.
type LockOrder struct{}

// Name implements Check.
func (LockOrder) Name() string { return "lockorder" }

// Doc implements Check.
func (LockOrder) Doc() string {
	return "the static lock-acquisition graph over netstate/multisched/supervise/controller mutexes must be acyclic"
}

// RunModule implements ModuleCheck.
func (LockOrder) RunModule(mp *ModulePass) {
	g := buildLockGraph(mp.Index)

	// Cycle detection: strongly connected components over the edge set.
	// Any SCC with two or more members is a deadlock-capable cycle;
	// every in-SCC edge is reported at its acquisition site so the fix
	// (pick one order) is visible at each offending nesting.
	for _, scc := range lockSCCs(g) {
		if len(scc) < 2 {
			continue
		}
		inSCC := make(map[string]bool, len(scc))
		for _, n := range scc {
			inSCC[n] = true
		}
		cycle := strings.Join(scc, " -> ") + " -> " + scc[0]
		for _, e := range g.Edges {
			if inSCC[e.From] && inSCC[e.To] {
				mp.Reportf(e.Pkg, e.Pos,
					"%s acquires %s while holding %s, completing the lock cycle %s; acquire locks in one global order everywhere",
					e.Fn, e.To, e.From, cycle)
			}
		}
	}
}

// loMutexType reports whether t is sync.Mutex or sync.RWMutex.
func loMutexType(t types.Type) bool {
	named, ok := derefType(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// loLockKey resolves the receiver expression of a Lock/Unlock call to
// its tracked-node key ("pkg.Struct.field" for fields, "pkg.var" for
// package-level vars), or "" when untracked. Stripe locks (an array or
// slice of shards each carrying a mutex) collapse onto one node: the
// field key ignores the index, which is what a global stripe order
// means.
func loLockKey(pkg *Package, recv ast.Expr) string {
	if !loMutexType(pkg.Info.TypeOf(recv)) {
		return ""
	}
	switch x := ast.Unparen(recv).(type) {
	case *ast.SelectorExpr:
		owner, field := fieldOf(pkg, x)
		if field == nil {
			return ""
		}
		key := shortKey(fieldAccessKey(owner, field)) // "netstate.Oracle.pairMu"
		if loPackages[acPkgBase(key)] {
			return key
		}
	case *ast.Ident:
		obj := pkg.Info.ObjectOf(x)
		if v, ok := obj.(*types.Var); ok && v.Parent() == pkg.Pkg.Scope() {
			if loPackages[pkg.Base()] {
				return pkg.Base() + "." + v.Name()
			}
		}
	}
	return ""
}

// loEvent is one lock-relevant action in source order inside a
// statement: an acquisition, a release, or a resolved call (whose
// transitive acquires matter).
type loEvent struct {
	kind   int // 0 acquire, 1 release, 2 call
	lock   string
	callee FuncKey
	pos    token.Pos
}

const (
	loAcquire = iota
	loRelease
	loCall
)

// loLockCall classifies a call expression as Lock/RLock (acquire) or
// Unlock/RUnlock (release) on a tracked lock.
func loLockCall(pkg *Package, call *ast.CallExpr) (key string, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	key = loLockKey(pkg, sel.X)
	if key == "" {
		return "", false, false
	}
	return key, acquire, true
}

// loScan collects the ordered lock events under n, excluding subtrees
// that run on other goroutines (queued on workers instead, for their
// own root walks): go-statement literals and function literals passed
// to the pool entry points. Function literals invoked synchronously
// (Once.Do, Supervisor.Isolate, deferred closures) are walked inline.
// When releases is false, release events are dropped — the
// deferred-unlock semantics: a lock released only by a defer stays held
// to the end of the function.
func loScan(pkg *Package, n ast.Node, releases bool, workers *[]*ast.FuncLit) []loEvent {
	var events []loEvent
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.GoStmt:
			// The callee runs on another goroutine: no acquire/call
			// events for the launcher. A literal body becomes its own
			// walk root; a named callee is already walked as a
			// declaration root.
			if fl, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok && workers != nil {
				*workers = append(*workers, fl)
			}
			return false
		case *ast.CallExpr:
			if key, acquire, ok := loLockCall(pkg, x); ok {
				if acquire {
					events = append(events, loEvent{kind: loAcquire, lock: key, pos: x.Pos()})
				} else if releases {
					events = append(events, loEvent{kind: loRelease, lock: key, pos: x.Pos()})
				}
				return true
			}
			callee := resolveCall(pkg, x)
			if callee != "" {
				events = append(events, loEvent{kind: loCall, callee: callee, pos: x.Pos()})
			}
			if acPoolEntrypoints[shortKey(callee)] {
				// The literal arguments run on pool worker goroutines:
				// queue them as roots and walk only the other args.
				for _, a := range x.Args {
					if fl, ok := ast.Unparen(a).(*ast.FuncLit); ok {
						if workers != nil {
							*workers = append(*workers, fl)
						}
					} else {
						events = append(events, loScan(pkg, a, releases, workers)...)
					}
				}
				return false
			}
		}
		return true
	})
	return events
}

// loFuncSummary is the per-function substrate of the transitive-acquire
// fixpoint.
type loFuncSummary struct {
	acquires map[string]bool // direct acquisitions on this goroutine
	callees  []FuncKey
	trans    map[string]bool // closed over the call graph
}

// buildLockGraph runs the three passes: node inventory, per-function
// transitive-acquire fixpoint, and the held-set edge walk.
func buildLockGraph(idx *Index) *LockGraph {
	g := &LockGraph{}
	nodeSeen := make(map[string]bool)
	addNode := func(key string) {
		if key != "" && !nodeSeen[key] {
			nodeSeen[key] = true
			g.Nodes = append(g.Nodes, key)
		}
	}

	// Pass 1: tracked-lock inventory from declarations, so locks nobody
	// nests (or even acquires) still appear in the DOT artifact.
	for _, pkg := range idx.Pkgs {
		if !loPackages[pkg.Base()] {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						st, ok := s.Type.(*ast.StructType)
						if !ok {
							continue
						}
						for _, fld := range st.Fields.List {
							if !loMutexType(pkg.Info.TypeOf(fld.Type)) {
								continue
							}
							for _, name := range fld.Names {
								addNode(pkg.Base() + "." + s.Name.Name + "." + name.Name)
							}
						}
					case *ast.ValueSpec:
						if gd.Tok != token.VAR {
							continue
						}
						for _, name := range s.Names {
							if obj := pkg.Info.Defs[name]; obj != nil && loMutexType(obj.Type()) {
								addNode(pkg.Base() + "." + name.Name)
							}
						}
					}
				}
			}
		}
	}

	// Pass 2: per-function direct acquires and same-goroutine callees,
	// then the transitive fixpoint.
	sums := make(map[FuncKey]*loFuncSummary, len(idx.Funcs))
	for key, info := range idx.Funcs {
		sum := &loFuncSummary{acquires: make(map[string]bool)}
		for _, ev := range loScan(info.Pkg, info.Decl.Body, true, nil) {
			switch ev.kind {
			case loAcquire:
				sum.acquires[ev.lock] = true
			case loCall:
				sum.callees = append(sum.callees, ev.callee)
			}
		}
		sums[key] = sum
	}
	keys := make([]FuncKey, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sum := sums[k]
		sum.trans = make(map[string]bool, len(sum.acquires))
		for l := range sum.acquires {
			sum.trans[l] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, k := range keys {
			sum := sums[k]
			for _, c := range sum.callees {
				callee := sums[c]
				if callee == nil {
					continue // dynamic or external: assumed lock-free
				}
				for l := range callee.trans {
					if !sum.trans[l] {
						sum.trans[l] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 3: the held-set walk, per declared function and per
	// goroutine-launched literal (fresh empty held set: the launcher's
	// held locks are not held on the worker).
	edgeSeen := make(map[string]bool)
	addEdge := func(pkg *Package, fn, from, to string, pos token.Pos) {
		if from == to {
			// Same-node re-acquisition is stripe iteration (shard[i].mu
			// after shard[i-1].mu released) or recursion, not an order
			// violation between two locks.
			return
		}
		k := from + "\x00" + to
		if edgeSeen[k] {
			return
		}
		edgeSeen[k] = true
		addNode(from)
		addNode(to)
		g.Edges = append(g.Edges, LockEdge{From: from, To: to, Fn: fn, Pkg: pkg, Pos: pos})
	}

	for _, pkg := range idx.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn := shortKey(declKey(pkg, fd))
				roots := []*ast.BlockStmt{fd.Body}
				for i := 0; i < len(roots); i++ {
					var workers []*ast.FuncLit
					loWalkRoot(pkg, fn, roots[i], sums, addEdge, &workers)
					for _, w := range workers {
						roots = append(roots, w.Body)
					}
				}
			}
		}
	}
	return g
}

// loState is the walker's path state: the set of locks held on the
// current path, and whether the path has terminated (returned).
type loState struct {
	held       map[string]bool
	terminated bool
}

func loClone(s *loState) *loState {
	c := &loState{held: make(map[string]bool, len(s.held)), terminated: s.terminated}
	for k, v := range s.held {
		c.held[k] = v
	}
	return c
}

// loJoin folds branch states back into dst as a union: a lock held on
// any surviving (non-terminated) path may be held afterwards, which is
// the right over-approximation for a may-nest edge relation. When every
// branch terminated, so has dst.
func loJoin(dst *loState, srcs ...*loState) {
	live := 0
	union := make(map[string]bool)
	for _, s := range srcs {
		if s.terminated {
			continue
		}
		live++
		for k := range s.held {
			union[k] = true
		}
	}
	if live == 0 {
		dst.terminated = true
		dst.held = make(map[string]bool)
		return
	}
	dst.held = union
}

// loWalkRoot walks one root body (a declaration or a worker literal)
// emitting acquired-while-held edges. Worker literals discovered inside
// are queued on workers for their own root walks.
func loWalkRoot(pkg *Package, fn string, body *ast.BlockStmt,
	sums map[FuncKey]*loFuncSummary,
	addEdge func(pkg *Package, fn, from, to string, pos token.Pos),
	workers *[]*ast.FuncLit) {

	heldSorted := func(st *loState) []string {
		hs := make([]string, 0, len(st.held))
		for h := range st.held {
			hs = append(hs, h)
		}
		sort.Strings(hs)
		return hs
	}

	apply := func(events []loEvent, st *loState) {
		for _, ev := range events {
			switch ev.kind {
			case loAcquire:
				for _, h := range heldSorted(st) {
					addEdge(pkg, fn, h, ev.lock, ev.pos)
				}
				st.held[ev.lock] = true
			case loRelease:
				delete(st.held, ev.lock)
			case loCall:
				callee := sums[ev.callee]
				if callee == nil || len(st.held) == 0 {
					continue
				}
				acq := make([]string, 0, len(callee.trans))
				for a := range callee.trans {
					acq = append(acq, a)
				}
				sort.Strings(acq)
				for _, h := range heldSorted(st) {
					for _, a := range acq {
						addEdge(pkg, fn, h, a, ev.pos)
					}
				}
			}
		}
	}

	var walk func(s ast.Stmt, st *loState)
	walkList := func(list []ast.Stmt, st *loState) {
		for _, s := range list {
			if st.terminated {
				return
			}
			walk(s, st)
		}
	}
	walk = func(s ast.Stmt, st *loState) {
		switch x := s.(type) {
		case *ast.BlockStmt:
			walkList(x.List, st)
		case *ast.LabeledStmt:
			walk(x.Stmt, st)
		case *ast.ReturnStmt:
			apply(loScan(pkg, x, true, workers), st)
			st.terminated = true
		case *ast.DeferStmt:
			// Deferred releases are dropped (the lock stays held to the
			// end of the function); deferred acquires and calls are
			// applied with the held set at registration — conservative,
			// and exact for the ubiquitous `defer mu.Unlock()`.
			apply(loScan(pkg, x, false, workers), st)
		case *ast.IfStmt:
			if x.Init != nil {
				walk(x.Init, st)
			}
			apply(loScan(pkg, x.Cond, true, workers), st)
			thenSt := loClone(st)
			walk(x.Body, thenSt)
			elseSt := loClone(st)
			if x.Else != nil {
				walk(x.Else, elseSt)
			}
			loJoin(st, thenSt, elseSt)
		case *ast.ForStmt:
			if x.Init != nil {
				walk(x.Init, st)
			}
			if x.Cond != nil {
				apply(loScan(pkg, x.Cond, true, workers), st)
			}
			for i := 0; i < 2; i++ {
				bodySt := loClone(st)
				walk(x.Body, bodySt)
				if x.Post != nil && !bodySt.terminated {
					walk(x.Post, bodySt)
				}
				loJoin(st, bodySt, loClone(st))
			}
		case *ast.RangeStmt:
			apply(loScan(pkg, x.X, true, workers), st)
			for i := 0; i < 2; i++ {
				bodySt := loClone(st)
				walk(x.Body, bodySt)
				loJoin(st, bodySt, loClone(st))
			}
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			var bodyList []ast.Stmt
			switch y := x.(type) {
			case *ast.SwitchStmt:
				if y.Init != nil {
					walk(y.Init, st)
				}
				if y.Tag != nil {
					apply(loScan(pkg, y.Tag, true, workers), st)
				}
				bodyList = y.Body.List
			case *ast.TypeSwitchStmt:
				if y.Init != nil {
					walk(y.Init, st)
				}
				bodyList = y.Body.List
			case *ast.SelectStmt:
				bodyList = y.Body.List
			}
			branches := []*loState{loClone(st)} // no-case-taken path
			for _, cc := range bodyList {
				br := loClone(st)
				switch c := cc.(type) {
				case *ast.CaseClause:
					walkList(c.Body, br)
				case *ast.CommClause:
					walkList(c.Body, br)
				}
				branches = append(branches, br)
			}
			loJoin(st, branches...)
		case *ast.GoStmt:
			apply(loScan(pkg, x, true, workers), st) // queues the worker, emits nothing
		default:
			apply(loScan(pkg, s, true, workers), st)
		}
	}

	st := &loState{held: make(map[string]bool)}
	walkList(body.List, st)
}

// lockSCCs returns the graph's strongly connected components (Tarjan),
// each sorted, the list sorted by first member — fully deterministic.
func lockSCCs(g *LockGraph) [][]string {
	adj := make(map[string][]string)
	nodes := append([]string(nil), g.Nodes...)
	inNodes := make(map[string]bool)
	for _, n := range nodes {
		inNodes[n] = true
	}
	for _, e := range g.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		for _, n := range []string{e.From, e.To} {
			if !inNodes[n] {
				inNodes[n] = true
				nodes = append(nodes, n)
			}
		}
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		sort.Strings(adj[n])
	}

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })
	return sccs
}
