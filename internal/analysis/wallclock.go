package analysis

import (
	"go/types"
)

// WallClock forbids time.Now, time.Since and time.Until in the simulated
// layers (sim, scheduler, core, experiments). Those packages measure
// makespan, delay and cost in simulated T units driven by the event
// engine; reading the machine's wall clock there either leaks real time
// into reported metrics or — worse — makes a placement decision depend on
// host speed, which no seed can reproduce. Profiling belongs in
// internal/profile and the benchmarks, which stay outside these packages.
type WallClock struct{}

var wallclockForbidden = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// Name implements Check.
func (WallClock) Name() string { return "wallclock" }

// Doc implements Check.
func (WallClock) Doc() string {
	return "time.Now/Since/Until are forbidden in simulated layers; use the simulated clock"
}

// Run implements Check.
func (WallClock) Run(p *Pass) {
	if !wallclockPackages[p.Pkg.Base()] {
		return
	}
	for id, obj := range p.Pkg.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			continue
		}
		if !wallclockForbidden[fn.Name()] {
			continue
		}
		p.reportIdent(id, "time.%s reads the wall clock inside a simulated layer; use the engine's simulated clock", fn.Name())
	}
}
