package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
)

// TestEffectsEngine checks the v3 summary fixpoint on the effects
// fixture: transitive field writes through mutual recursion, parameter
// write-through propagation along call chains, deferred writes, and the
// rebind non-write.
func TestEffectsEngine(t *testing.T) {
	loader := analysis.NewLoader()
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "effects"), "fixture/effects")
	if err != nil {
		t.Fatal(err)
	}
	idx := analysis.BuildIndex([]*analysis.Package{pkg})
	eff := idx.Effects()

	want := map[string]struct {
		fieldWrites []string
		paramWrite0 bool
	}{
		"fixture/effects.ping":          {[]string{"fixture/effects.counter.n"}, true},
		"fixture/effects.pong":          {[]string{"fixture/effects.counter.n"}, true},
		"fixture/effects.writeThrough":  {nil, true},
		"fixture/effects.via":           {nil, true},
		"fixture/effects.pure":          {nil, false},
		"fixture/effects.deferredWrite": {[]string{"fixture/effects.counter.hits"}, true},
		"fixture/effects.rebind":        {nil, false},
	}
	for key, w := range want {
		fe := eff.Of(key)
		if fe == nil {
			t.Fatalf("no summary for %s", key)
		}
		for _, f := range w.fieldWrites {
			if !fe.FieldWrites[f] {
				t.Errorf("%s: FieldWrites missing %s (got %v)", key, f, fe.FieldWrites)
			}
		}
		if len(w.fieldWrites) == 0 && len(fe.FieldWrites) != 0 {
			t.Errorf("%s: want no field writes, got %v", key, fe.FieldWrites)
		}
		if len(fe.ParamWrites) == 0 {
			t.Fatalf("%s: no formal slots recorded", key)
		}
		if fe.ParamWrites[0] != w.paramWrite0 {
			t.Errorf("%s: ParamWrites[0] = %v, want %v", key, fe.ParamWrites[0], w.paramWrite0)
		}
	}
}
