package analysis_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestLockGraphDOT pins the exported lock graph on the lockorder
// fixture: the cycle's three edges and the acyclic nesting are present,
// the goroutine-boundary edge is not, and the DOT rendering is
// byte-deterministic (it ships as a CI artifact, so diffs must mean
// graph changes, not map-order noise).
func TestLockGraphDOT(t *testing.T) {
	loader := analysis.NewLoader()
	pkg, err := loader.LoadDir("testdata/src/lockorder", "fixture/netstate")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	g := analysis.BuildLockGraph([]*analysis.Package{pkg})

	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()

	for _, want := range []string{
		"digraph lockorder {",
		`"netstate.Oracle.pairMu" -> "netstate.Oracle.typeMu"`,
		`"netstate.Oracle.typeMu" -> "netstate.Oracle.swMu"`,
		`"netstate.Oracle.swMu" -> "netstate.Oracle.pairMu"`,
		`"netstate.Oracle.reviveMu" -> "netstate.Oracle.pairMu"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %s:\n%s", want, dot)
		}
	}
	// SpawnStats holds reviveMu while LAUNCHING the goroutine that takes
	// typeMu — a boundary, not a nesting.
	if strings.Contains(dot, `"netstate.Oracle.reviveMu" -> "netstate.Oracle.typeMu"`) {
		t.Errorf("goroutine boundary leaked into the lock graph:\n%s", dot)
	}

	var buf2 bytes.Buffer
	if err := g.WriteDOT(&buf2); err != nil {
		t.Fatal(err)
	}
	if dot != buf2.String() {
		t.Error("WriteDOT is not deterministic across calls")
	}
}

// TestRunParallelMatchesSerial proves the satellite claim behind the
// concurrent executor: Run (parallel) and RunSerial produce identical
// findings — same order, same suppression marks — over packages that
// exercise package checks, module checks and suppressions at once.
func TestRunParallelMatchesSerial(t *testing.T) {
	loader := analysis.NewLoader()
	var pkgs []*analysis.Package
	for _, fx := range []struct{ dir, path string }{
		{"testdata/src/lockorder", "fixture/netstate"},
		{"testdata/src/chandiscipline", "fixture/multisched"},
		{"testdata/src/snapshotfreeze", "fixture/netstate2"},
		{"testdata/src/floateq", "fixture/floateq"},
	} {
		pkg, err := loader.LoadDir(fx.dir, fx.path)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", fx.dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	parallel := analysis.Run(pkgs, analysis.All())
	serial := analysis.RunSerial(pkgs, analysis.All())
	if len(parallel) == 0 {
		t.Fatal("fixture scan produced no findings; the equivalence test is vacuous")
	}
	if !reflect.DeepEqual(parallel, serial) {
		t.Errorf("parallel and serial runs disagree:\nparallel: %v\nserial:   %v", parallel, serial)
	}
}
