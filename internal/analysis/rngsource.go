package analysis

import (
	"go/ast"
	"go/types"
)

// RNGSource forbids the package-level convenience functions of math/rand
// (and math/rand/v2) everywhere outside tests: rand.Intn, rand.Float64,
// rand.Shuffle, rand.Perm, rand.Seed and friends all draw from the
// process-global source, whose stream is shared across every caller in
// the binary — one extra draw anywhere perturbs every downstream decision,
// and rand.Seed has been a no-op-with-warning since Go 1.20. Every
// randomized component in this repository takes an injected seeded
// *rand.Rand (see scheduler.Request.Rand, hdfs.NewNameNode,
// workload generators); constructing one via rand.New(rand.NewSource(seed))
// is the allowed path.
type RNGSource struct{}

// rngAllowed are the constructor functions that build an isolated,
// seedable generator rather than touching the global stream.
var rngAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// Name implements Check.
func (RNGSource) Name() string { return "rngsource" }

// Doc implements Check.
func (RNGSource) Doc() string {
	return "global math/rand functions are forbidden; inject a seeded *rand.Rand"
}

// Run implements Check.
func (RNGSource) Run(p *Pass) {
	for id, obj := range p.Pkg.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		path := fn.Pkg().Path()
		if path != "math/rand" && path != "math/rand/v2" {
			continue
		}
		if fn.Type().(*types.Signature).Recv() != nil {
			continue // methods on *rand.Rand are exactly what we want
		}
		if rngAllowed[fn.Name()] {
			continue
		}
		p.reportIdent(id, "global %s.%s draws from the process-wide source; inject a seeded *rand.Rand (rand.New(rand.NewSource(seed)))",
			pkgBaseName(path), fn.Name())
	}
}

func pkgBaseName(path string) string {
	if path == "math/rand/v2" {
		return "rand/v2"
	}
	return "rand"
}

// reportIdent reports at an identifier's position. Uses iteration order is
// nondeterministic, but Run sorts all findings by position afterwards, so
// output order is stable.
func (p *Pass) reportIdent(id *ast.Ident, format string, args ...any) {
	p.Reportf(id.Pos(), format, args...)
}
