package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrCompare bans string- and identity-based error discrimination in
// decision packages. PR 4 introduced errors.Is-able sentinels
// (controller.ErrNoFeasibleSwitch, ErrNoFeasibleRoute, faults' injection
// errors) precisely so failure handling survives wrapping; an
// `err == ErrX` silently stops matching the moment a %w wrapper is added
// upstream, and `err.Error() == "..."` breaks on any message edit. Both
// have bitten real schedulers' preemption paths. Flagged forms:
//
//   - err == ErrX / err != ErrX (both operands error-typed, neither nil)
//   - err.Error() == "...", or any ==/!= with an .Error() call operand
//   - strings.Contains/HasPrefix/HasSuffix/EqualFold over .Error() text
//   - switch err { case ErrX: } with a non-nil case
//
// `err != nil` and `errors.Is/As` are of course fine. Scoped to decision
// packages: test helpers and display code may render error text freely.
type ErrCompare struct{}

// Name implements Check.
func (ErrCompare) Name() string { return "errcompare" }

// Doc implements Check.
func (ErrCompare) Doc() string {
	return "decision packages must discriminate errors with errors.Is against sentinels, never == or err.Error() string comparison"
}

// Run implements PackageCheck.
func (ErrCompare) Run(p *Pass) {
	if !decisionPackages[p.Pkg.Base()] {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				if isErrorTextCall(p, x.X) || isErrorTextCall(p, x.Y) {
					p.Reportf(x.OpPos,
						"comparing err.Error() text; match the sentinel with errors.Is instead")
					return true
				}
				if isErrorExpr(p, x.X) && isErrorExpr(p, x.Y) &&
					!isNilExpr(p, x.X) && !isNilExpr(p, x.Y) {
					p.Reportf(x.OpPos,
						"comparing error values with %s; use errors.Is so wrapped sentinels still match", x.Op)
				}
			case *ast.CallExpr:
				if fn := stringsPredicate(p, x); fn != "" {
					for _, arg := range x.Args {
						if isErrorTextCall(p, arg) {
							p.Reportf(x.Pos(),
								"strings.%s over err.Error() text; match the sentinel with errors.Is instead", fn)
							break
						}
					}
				}
			case *ast.SwitchStmt:
				if x.Tag == nil || !isErrorExpr(p, x.Tag) {
					return true
				}
				for _, c := range x.Body.List {
					cc, ok := c.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, ce := range cc.List {
						if !isNilExpr(p, ce) {
							p.Reportf(ce.Pos(),
								"switch over an error value compares by identity; use errors.Is in an if/else chain")
						}
					}
				}
			}
			return true
		})
	}
}

// isErrorExpr reports whether e's static type is exactly error (interface
// comparisons against sentinels are what break under wrapping; comparing
// two concrete *MyError pointers is left to the author).
func isErrorExpr(p *Pass, e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(p *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.Pkg.Info.ObjectOf(id).(*types.Nil)
	return isNil
}

// isErrorTextCall reports whether e is a call of Error() on an error
// value (err.Error(), f().Error(), ...).
func isErrorTextCall(p *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	return isErrorExpr(p, sel.X)
}

// stringsPredicate returns the name of the strings-package text predicate
// being called, or "" for any other callee.
func stringsPredicate(p *Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	f, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "strings" {
		return ""
	}
	switch f.Name() {
	case "Contains", "HasPrefix", "HasSuffix", "EqualFold":
		return f.Name()
	}
	return ""
}
