// Package netstate is the snapshotfreeze golden fixture: a miniature
// oracle whose read API returns shared cache rows, plus the worker
// captures the check must flag — in-place mutation of an alias, a
// write through the call result itself, a mutation inside a
// worker-reachable named function, a two-level write through a local
// index of shared rows, and a shared row handed to a mutating helper —
// next to the frozen reads and copy-first idioms it must not.
package netstate

// NodeID is the fixture's node identifier.
type NodeID int

// Oracle caches distance rows and type templates; its read API returns
// the cached slices themselves — shared, frozen.
type Oracle struct {
	rows  map[NodeID][]int32
	types map[NodeID][]string
}

// DistRow returns the cached distance row for src. Callers must not
// modify the returned slice.
func (o *Oracle) DistRow(src NodeID) []int32 { return o.rows[src] }

// TypeTemplate returns the cached stage-type template for (src, dst).
// Callers must not modify the returned slice.
func (o *Oracle) TypeTemplate(src, dst NodeID) ([]string, error) {
	return o.types[src], nil
}

// scaleAsync captures the shared row and rescales it in place on a
// worker — a write into oracle memory every other goroutine reads.
// TRIGGER (write through a shared alias).
func scaleAsync(o *Oracle, src NodeID, done chan struct{}) {
	row := o.DistRow(src)
	go func() {
		for i := range row {
			row[i] *= 2
		}
		close(done)
	}()
}

// patchAsync writes through the read call's result directly. TRIGGER
// (write through a source-call spine).
func patchAsync(o *Oracle, src NodeID, done chan struct{}) {
	go func() {
		o.DistRow(src)[0] = -1
		close(done)
	}()
}

// refreshWorker is launched by name (spawnRefresh below); everything it
// does runs on the worker, including mutating the template it read.
// TRIGGER (worker-reachable function).
func refreshWorker(o *Oracle, src, dst NodeID, done chan struct{}) {
	tmpl, _ := o.TypeTemplate(src, dst)
	if len(tmpl) > 0 {
		tmpl[0] = "edge"
	}
	close(done)
}

func spawnRefresh(o *Oracle, done chan struct{}) {
	go refreshWorker(o, 0, 1, done)
}

// indexAsync builds a local index of shared rows — the slot stores are
// legal (NEAR MISS) — then mutates oracle memory THROUGH the index.
// TRIGGER (two-level write through a holder).
func indexAsync(o *Oracle, srcs []NodeID, done chan struct{}) {
	go func() {
		bySrc := make(map[NodeID][]int32, len(srcs))
		for _, s := range srcs {
			bySrc[s] = o.DistRow(s)
		}
		bySrc[srcs[0]][0] = 0
		close(done)
	}()
}

// zero sets every element of dst — it writes through its parameter.
func zero(dst []int32) {
	for i := range dst {
		dst[i] = 0
	}
}

// resetAsync hands the shared row to a helper that writes through it.
// TRIGGER (ParamWrites through a callee).
func resetAsync(o *Oracle, src NodeID, done chan struct{}) {
	row := o.DistRow(src)
	go func() {
		zero(row)
		close(done)
	}()
}

// sumAsync only READS the captured row — frozen means read-only, not
// untouchable. NEAR MISS.
func sumAsync(o *Oracle, src NodeID, out chan int32) {
	row := o.DistRow(src)
	go func() {
		var t int32
		for _, v := range row {
			t += v
		}
		out <- t
	}()
}

// scaleCopied clones before mutating — the blessed copy-first idiom
// launders the taint. NEAR MISS.
func scaleCopied(o *Oracle, src NodeID, done chan struct{}) {
	row := o.DistRow(src)
	go func() {
		mine := append([]int32(nil), row...)
		for i := range mine {
			mine[i] *= 2
		}
		close(done)
	}()
}

// pinAsync patches the shared row under an external barrier the
// analysis cannot see; the suppression documents the tolerated
// exception — the escape hatch under test.
func pinAsync(o *Oracle, src NodeID, done chan struct{}) {
	row := o.DistRow(src)
	go func() {
		row[0] = 0 //taalint:snapshotfreeze fixture: demonstrates the escape hatch
		close(done)
	}()
}
