// Package netstate is the purity golden fixture: a miniature oracle
// whose read API must stay write-free on monitored shared state except
// the blessed memo-install sites. Loaded as fixture/netstate so the
// check's monitored/blessed tables key exactly as they do for the real
// package.
package netstate

import (
	"sync"
	"sync/atomic"
)

// Oracle mirrors the real oracle's shape: a memo map installed under a
// lock by a blessed site, an exempt observability counter, and a scalar
// a buggy read path might be tempted to poke.
type Oracle struct {
	mu        sync.Mutex
	distRows  map[int][]int32
	lastQuery int
	routeHits atomic.Uint64
}

// DistRow is a read root whose memo install is blessed in puBlessed
// (near-miss: the write is allowed for exactly this function+field pair).
func (o *Oracle) DistRow(src int) []int32 {
	o.mu.Lock()
	defer o.mu.Unlock()
	if d, ok := o.distRows[src]; ok {
		return d
	}
	d := make([]int32, 8)
	o.distRows[src] = d
	return d
}

// Dist bumps an exempt counter (near-miss) but also records the last
// query — an unblessed write on the read path (trigger).
func (o *Oracle) Dist(a, b int) int {
	o.routeHits.Add(1)
	o.lastQuery = a
	return int(o.DistRow(a)[b])
}

// BestRoute reaches a violation through a helper: purity follows the
// call graph, not just root bodies.
func (o *Oracle) BestRoute(src, dst int) int {
	return o.noteRoute(src, dst)
}

func (o *Oracle) noteRoute(src, dst int) int {
	o.lastQuery = dst
	return int(o.DistRow(src)[dst])
}

// Reset rebuilds the memo outside any read path: not reachable from the
// read API, so purity does not fire (reachability near-miss).
func (o *Oracle) Reset() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.distRows = make(map[int][]int32)
}

// Headroom pokes a scalar on the read path under an explicit suppression
// — the reviewable escape hatch.
func (o *Oracle) Headroom(server int) float64 {
	o.lastQuery = server //taalint:purity grandfathered scalar poke pending the headroom snapshot refactor
	return 1
}
