// Package effects is the unit fixture for the v3 effects engine:
// recursion, call-chain parameter writes, deferred writes.
package effects

type counter struct {
	n    int
	hits int
}

// ping/pong are mutually recursive; the fixpoint must land counter.n in
// both transitive write sets.
func ping(c *counter, depth int) {
	if depth == 0 {
		c.n = 0
		return
	}
	pong(c, depth-1)
}

func pong(c *counter, depth int) { ping(c, depth-1) }

// writeThrough/via: a parameter write two calls deep must propagate to
// the forwarding function's summary.
func writeThrough(s []int) { s[0] = 1 }

func via(s []int) { writeThrough(s) }

// pure only reads.
func pure(c *counter) int { return c.n }

// deferredWrite mutates through a deferred closure; still a write this
// function may perform.
func deferredWrite(c *counter) {
	defer func() { c.hits++ }()
}

// rebind only rebinds its parameter: not a write through it.
func rebind(s []int) {
	s = make([]int, 1)
	_ = s
}
