// Fixture for the mergeorder check, loaded as "fixture/core" so the
// decision-side rules apply; it fans out through the REAL
// repro/internal/parallel so the callee resolution is exercised
// end-to-end. Covers: completion-order append, map insertion, shared
// counter and a by-name worker (triggers); index-addressed slots and an
// explicit post-fan-out sort (near-misses); exactly one suppressed write.
package core

import (
	"sort"

	"repro/internal/parallel"
)

// Good merges through index-addressed slots: each worker owns out[i].
// Near-miss.
func Good(n int) []float64 {
	out := make([]float64, n)
	_ = parallel.ForEach(n, 4, func(i int) error {
		out[i] = float64(i) * 1.5
		return nil
	})
	return out
}

// BadAppend accumulates in completion order and never restores a
// deterministic order. Trigger.
func BadAppend(n int) []int {
	var got []int
	_ = parallel.ForEach(n, 4, func(i int) error {
		got = append(got, i)
		return nil
	})
	return got
}

// SortedAppend accumulates out of order but sorts before the slice is
// used, which restores determinism. Near-miss.
func SortedAppend(n int) []int {
	var got []int
	_ = parallel.ForEach(n, 4, func(i int) error {
		got = append(got, i)
		return nil
	})
	sort.Ints(got)
	return got
}

// BadMap inserts into a shared map from workers; iteration order is
// unrecoverable afterwards. Trigger.
func BadMap(n int) map[int]int {
	m := make(map[int]int)
	_ = parallel.ForEach(n, 4, func(i int) error {
		m[i] = i * i
		return nil
	})
	return m
}

// BadCell bumps a shared accumulator in completion order. Trigger.
func BadCell(n int) int {
	total := 0
	_ = parallel.ForEach(n, 4, func(i int) error {
		total += i
		return nil
	})
	return total
}

// BadIndirect hides the worker behind a name, so the merge cannot be
// verified at the call site. Trigger.
func BadIndirect(n int, worker func(int) error) error {
	return parallel.ForEach(n, 4, worker)
}

// Tolerated is the suppression specimen: exactly one audited escape hatch.
func Tolerated(n int) int {
	total := 0
	_ = parallel.ForEach(n, 1, func(i int) error {
		total += i //taalint:mergeorder one worker: completion order IS index order
		return nil
	})
	return total
}
