// Package multisched is the chandiscipline golden fixture: one
// disciplined worker channel (the shape the real commit pipeline uses)
// surrounded by every lifecycle violation the check exists to catch —
// no owner, two owners, a leaky exit path, a send after close, and a
// counted consumer loop.
package multisched

// ProposalSet carries the fixture's channel fields.
type ProposalSet struct {
	// done is the disciplined one: exactly one closer (runCell), close
	// deferred so every exit closes. NEAR MISS.
	done []chan struct{}
	// orphan has no closing function anywhere in the module. TRIGGER
	// (rule 1: no owner).
	orphan chan int
	// dup is closed by two different functions. TRIGGER (rule 1: two
	// owners).
	dup chan int
	// lossy has a single closer that misses an exit path. TRIGGER
	// (rule 2) — but not rule 1.
	lossy chan int
	// ack is closed and then sent on. TRIGGER (rule 3).
	ack chan int
	// acks is consumed by both a counted loop (TRIGGER, rule 4) and a
	// range loop (NEAR MISS).
	acks chan int
	// results is receive-only: a consumer by construction, never
	// tracked. NEAR MISS.
	results <-chan int
}

func (ps *ProposalSet) work(c int) {}

// runCell is the disciplined owner: the single closer of done, with
// the close deferred so panic and return exits both close. NEAR MISS.
func (ps *ProposalSet) runCell(c int) {
	defer close(ps.done[c])
	ps.work(c)
}

// waitOrphan blocks forever if nobody closes orphan — the hazard the
// no-owner rule exists for.
func (ps *ProposalSet) waitOrphan() int { return <-ps.orphan }

// closeDupA is one of dup's two owners.
func (ps *ProposalSet) closeDupA() {
	close(ps.dup)
}

// closeDupB is the other owner of dup; this site is the fixture's
// deliberately suppressed finding — the escape hatch under test.
func (ps *ProposalSet) closeDupB() {
	close(ps.dup) //taalint:chandiscipline fixture: demonstrates the escape hatch on one of the two close sites
}

// finishLossy closes lossy only on the happy path — the early error
// return leaks it and the consumer hangs. TRIGGER (rule 2).
func (ps *ProposalSet) finishLossy(fail bool) bool {
	if fail {
		return false
	}
	close(ps.lossy)
	return true
}

// signalThenClose closes ack and then sends on it; the send panics at
// runtime. TRIGGER (rule 3).
func (ps *ProposalSet) signalThenClose() {
	close(ps.ack)
	ps.ack <- 1
}

// collectCounted drains acks with a worker counter instead of the
// close protocol. TRIGGER (rule 4).
func (ps *ProposalSet) collectCounted(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += <-ps.acks
	}
	return total
}

// collectRanged ranges over acks; shutdownAcks' close terminates it —
// one source of truth. NEAR MISS.
func (ps *ProposalSet) collectRanged() int {
	total := 0
	for v := range ps.acks {
		total += v
	}
	return total
}

// shutdownAcks is acks' single owner.
func (ps *ProposalSet) shutdownAcks() {
	close(ps.acks)
}

// presolveLocal makes a scratch channel it neither closes nor hands
// off. TRIGGER (rule 1, locals).
func presolveLocal() int {
	scratch := make(chan int, 1)
	scratch <- 7
	return <-scratch
}

// spawnPipe transfers ownership of its channel to the caller by
// returning it — no longer this function's to close. NEAR MISS
// (ownership transfer).
func spawnPipe() chan int {
	pipe := make(chan int)
	go func() { pipe <- 1 }()
	return pipe
}

// fanIn closes its local from the producer goroutine, deferred over
// the literal's own exits. NEAR MISS (close inside a literal unit).
func fanIn(n int) int {
	out := make(chan int)
	go func() {
		defer close(out)
		for i := 0; i < n; i++ {
			out <- i
		}
	}()
	total := 0
	for v := range out {
		total += v
	}
	return total
}
