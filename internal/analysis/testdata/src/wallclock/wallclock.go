// Package fixture exercises the wallclock check. It is loaded under the
// synthetic import path "fixture/sim" so the simulated-layer rule applies.
package fixture

import "time"

// ReadClock reads the machine clock inside a simulated layer. Flagged.
func ReadClock() time.Time {
	return time.Now()
}

// Elapsed measures host time, which no seed can reproduce. Flagged.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0)
}

// Constant durations and arithmetic on time values are fine; only
// Now/Since/Until read the wall clock. Not flagged.
func Tick() time.Duration {
	return 3 * time.Second
}

// Banner is outside the simulated path and says so; suppressed.
func Banner() time.Time {
	return time.Now() //taalint:wallclock startup banner timestamp, not simulation state
}
