// Fixture for the epochbump check, loaded as "fixture/topology" so the
// package-base-qualified blessed/monitored tables apply. Covers: a blessed
// mutator that forgets the bump on one path (trigger), a direct write
// outside the blessed set (trigger), correct mutators including an
// interprocedural bump (near-misses), and exactly one suppressed write.
package topology

// Node and Link mirror the real topology's monitored containers.
type Node struct{ Capacity int }
type Link struct{ Bandwidth float64 }

// Topology mirrors the real field names: nodes/links/alive/numDead are
// monitored, version/liveVersion are the epoch counters.
type Topology struct {
	nodes       []Node
	links       []Link
	alive       []bool
	numDead     int
	version     uint64
	liveVersion uint64
}

// SetSwitchCapacity is a correct blessed mutator: the clean early return
// carries no obligation, the mutating path bumps. Near-miss.
func (t *Topology) SetSwitchCapacity(id, capacity int) bool {
	if id < 0 || id >= len(t.nodes) {
		return false
	}
	t.nodes[id].Capacity = capacity
	t.version++
	return true
}

// SetLinkBandwidth bumps through a helper; the call-graph summary must
// prove it. Near-miss.
func (t *Topology) SetLinkBandwidth(i int, bw float64) bool {
	if i < 0 || i >= len(t.links) {
		return false
	}
	t.links[i].Bandwidth = bw
	t.bump()
	return true
}

func (t *Topology) bump() { t.version++ }

// SetNodeAlive bumps liveVersion when killing a node but forgets it on the
// revive path — the exact stale-route bug the liveness regression test
// caught at runtime. Trigger (bump-proof obligation).
func (t *Topology) SetNodeAlive(id int, alive bool) bool {
	if id < 0 || id >= len(t.alive) {
		return false
	}
	if t.alive[id] == alive {
		return false
	}
	t.alive[id] = alive
	if !alive {
		t.numDead++
		t.liveVersion++
		return true
	}
	t.numDead--
	return true
}

// Cripple mutates the alive mask outside the blessed set. Trigger
// (write containment).
func (t *Topology) Cripple() {
	t.alive[0] = false
}

// Recount is the suppression specimen: exactly one audited escape hatch.
func (t *Topology) Recount(dead int) {
	t.numDead = dead //taalint:epochbump test-harness recount; caller rebuilds every cache
}

// NumDead reads monitored state, which is always fine. Near-miss.
func (t *Topology) NumDead() int { return t.numDead }
