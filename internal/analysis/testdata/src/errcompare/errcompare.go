// Fixture for the errcompare check, loaded as "fixture/scheduler" so the
// decision-package scoping applies. Covers: identity compare, err.Error()
// text compare, strings predicate over error text, identity switch
// (triggers), nil checks and errors.Is (near-misses), and exactly one
// suppressed comparison.
package scheduler

import (
	"errors"
	"strings"
)

// ErrNoFeasibleSwitch stands in for the PR-4 sentinels.
var ErrNoFeasibleSwitch = errors.New("no feasible switch")

// Classify exercises every banned and sanctioned discrimination form.
func Classify(err error) int {
	if err == nil { // nil checks are fine: near-miss
		return 0
	}
	if errors.Is(err, ErrNoFeasibleSwitch) { // the sanctioned form: near-miss
		return 1
	}
	if err == ErrNoFeasibleSwitch { // trigger: breaks under %w wrapping
		return 2
	}
	if err.Error() == "no feasible switch" { // trigger: breaks on any reword
		return 3
	}
	if strings.Contains(err.Error(), "feasible") { // trigger: text predicate
		return 4
	}
	switch err { // identity switch: the case below triggers
	case ErrNoFeasibleSwitch:
		return 5
	}
	return 6
}

// isExact is the suppression specimen: exactly one audited escape hatch.
func isExact(err error) bool {
	return err == ErrNoFeasibleSwitch //taalint:errcompare unwrapped identity is the point of this probe
}
