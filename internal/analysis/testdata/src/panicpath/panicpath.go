// Package fixture exercises the panicpath check. It is loaded under the
// synthetic import path "fixture/sim" so the decision-package rule
// applies.
package fixture

import "sync"

// Supervisor stands in for the recover-wrapped launcher a real decision
// package would get from internal/supervise.
type Supervisor struct{ wg sync.WaitGroup }

// Go is the blessed launch path; its own body may use `go` only because
// the real one lives in the supervise package, which is not a decision
// package. Here it must not, so it runs fn inline.
func (s *Supervisor) Go(fn func()) { fn() }

// FanOut launches a naked worker goroutine: a panic in the closure kills
// the process instead of poisoning a cell. Flagged.
func FanOut(work []int) {
	var wg sync.WaitGroup
	for range work {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// Detach launches a named function bare; equally unrecovered. Flagged.
func Detach(done chan struct{}) {
	go signal(done)
}

func signal(done chan struct{}) { close(done) }

// Inline runs the closure on the calling goroutine — deferred, not
// detached. Not flagged.
func Inline(fn func()) {
	defer fn()
	fn()
}

// Supervised fans out through the recover-wrapped entry point. Not
// flagged.
func Supervised(s *Supervisor, work []int) {
	for range work {
		s.Go(func() {})
	}
}

// Drain is a deliberate exception with a recorded reason; suppressed.
func Drain(ch chan int) {
	go func() { //taalint:panicpath fire-and-forget drain of a closed channel, nothing to replay
		for range ch {
		}
	}()
}
