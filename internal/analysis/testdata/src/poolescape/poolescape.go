// Package stablematch is the poolescape golden fixture: sync.Pool
// objects must reach a Put on every exit path, and neither pooled nor
// registered-slab memory may escape the call. Loaded as
// fixture/stablematch so the slab-field table (peSlabFields) keys
// exactly as it does for the real Matcher.
package stablematch

import (
	"errors"
	"sync"
)

type scratch struct {
	grades []float64
	idx    []int32
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

var errInvalid = errors.New("invalid size")

// Solve draws scratch, defers the Put and returns only fresh memory: the
// canonical safe shape (near-miss for both rules).
func Solve(n int) []int32 {
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	grades := growFloats(sc.grades, n)
	sc.grades = grades // re-slicing back into the pooled container is fine
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(grades[i])
	}
	return out
}

// LeakOnError returns early without putting the scratch back (trigger:
// rule A, Put missing on one exit path).
func LeakOnError(n int) error {
	sc := scratchPool.Get().(*scratch)
	if n < 0 {
		return errInvalid
	}
	sc.grades = growFloats(sc.grades, n)
	scratchPool.Put(sc)
	return nil
}

// ReturnsView returns a re-sliced view of pooled memory that outlives
// the Put (trigger: rule B, tainted return).
func ReturnsView(n int) []float64 {
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	return growFloats(sc.grades, n)
}

// Result is a caller-visible container.
type Result struct {
	Grades []float64
}

// Stash writes pooled memory through a parameter (trigger: rule B,
// outward store).
func Stash(res *Result, n int) {
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	res.Grades = sc.grades[:n]
}

// Matcher mirrors the real matcher's reusable slabs; rankBack and free
// are registered in peSlabFields.
type Matcher struct {
	rankBack []int32
	free     []int
}

// Ranks returns the raw slab (trigger: rule B, slab view escapes).
func (m *Matcher) Ranks(n int) []int32 {
	m.rankBack = growInt32(m.rankBack, n)
	return m.rankBack
}

// RanksCopy returns a fresh copy of the slab (near-miss: appending the
// elements copies them out of slab memory).
func (m *Matcher) RanksCopy(n int) []int32 {
	m.rankBack = growInt32(m.rankBack, n)
	return append([]int32(nil), m.rankBack...)
}

// Compact re-registers the compacted slab into its own field (near-miss:
// slab stores are re-registration, not escape).
func (m *Matcher) Compact() {
	free := m.free[:0]
	m.free = free
}

// RawRanks exposes the slab under an explicit suppression — the
// reviewable escape hatch.
func (m *Matcher) RawRanks() []int32 {
	return m.rankBack //taalint:poolescape test-only raw view, callers copy before the next Match
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}
