// Package netstate is the lockorder golden fixture: a miniature oracle
// whose three lock domains form a deliberate acquisition cycle
// (pairMu -> typeMu -> swMu -> pairMu), plus the near misses the check
// must not flag — sequential (non-nested) acquisition, an acyclic
// nesting, and a goroutine boundary.
package netstate

import "sync"

// Oracle carries the fixture's tracked locks. reviveMu participates in
// an acyclic nesting only, so it must never be reported.
type Oracle struct {
	reviveMu sync.Mutex
	pairMu   sync.RWMutex
	typeMu   sync.RWMutex
	swMu     sync.Mutex

	pairs map[int]int
	types []string
	sw    int
}

// RefreshPairs holds pairMu while refreshing the type table through a
// helper that acquires typeMu itself: the pairMu -> typeMu edge of the
// cycle, discovered through the call graph. TRIGGER.
func (o *Oracle) RefreshPairs() {
	o.pairMu.Lock()
	defer o.pairMu.Unlock()
	o.pairs[0] = 1
	o.reloadTypes()
}

// reloadTypes acquires typeMu; with pairMu held at the call site above,
// its transitive acquire set turns the call into a nesting edge.
func (o *Oracle) reloadTypes() {
	o.typeMu.Lock()
	o.types = append(o.types, "agg")
	o.typeMu.Unlock()
}

// RefreshTypes nests swMu directly under typeMu: the typeMu -> swMu
// edge of the cycle. TRIGGER.
func (o *Oracle) RefreshTypes() {
	o.typeMu.Lock()
	defer o.typeMu.Unlock()
	o.swMu.Lock()
	o.sw++
	o.swMu.Unlock()
}

// CountPairs nests pairMu under swMu, closing the cycle; this edge is
// the fixture's deliberately suppressed finding — the escape hatch
// under test.
func (o *Oracle) CountPairs() int {
	o.swMu.Lock()
	defer o.swMu.Unlock()
	o.pairMu.RLock() //taalint:lockorder fixture: demonstrates the escape hatch on one edge of the cycle
	defer o.pairMu.RUnlock()
	return len(o.pairs) + o.sw
}

// EnsureLive nests pairMu under reviveMu — a real edge, but an acyclic
// one (nothing acquires reviveMu while holding another lock), so it is
// not a finding. NEAR MISS.
func (o *Oracle) EnsureLive() {
	o.reviveMu.Lock()
	defer o.reviveMu.Unlock()
	o.pairMu.Lock()
	o.pairs = map[int]int{}
	o.pairMu.Unlock()
}

// RebuildSequential takes two cycle locks one after the other — never
// nested, so no edge at all. NEAR MISS.
func (o *Oracle) RebuildSequential() {
	o.pairMu.Lock()
	o.pairs[1] = 2
	o.pairMu.Unlock()
	o.typeMu.Lock()
	o.types = o.types[:0]
	o.typeMu.Unlock()
}

// SpawnStats holds reviveMu while LAUNCHING a goroutine that takes
// typeMu; starting a goroutine is not nesting — the worker begins with
// an empty held set — so no reviveMu -> typeMu edge. NEAR MISS.
func (o *Oracle) SpawnStats(done chan struct{}) {
	o.reviveMu.Lock()
	defer o.reviveMu.Unlock()
	o.sw++
	go func() {
		o.typeMu.RLock()
		_ = len(o.types)
		o.typeMu.RUnlock()
		close(done)
	}()
}
