// Package fixture exercises the floateq check.
package fixture

// SameCost compares accumulated costs exactly. Flagged.
func SameCost(a, b float64) bool {
	return a == b
}

// NotZero compares a float against an untyped zero. Flagged.
func NotZero(a float64) bool {
	return a != 0
}

// IsNaN uses the self-comparison idiom. Not flagged.
func IsNaN(a float64) bool {
	return a != a
}

// constCompare is fully constant-folded. Not flagged.
const constCompare = 1.5 == 2.5

// IntEqual is exact by nature. Not flagged.
func IntEqual(a, b int) bool {
	return a == b
}

// UnsetSentinel documents why exact zero is intended; suppressed.
func UnsetSentinel(a float64) bool {
	return a == 0 //taalint:floateq zero is the explicit "unset" sentinel
}
