// Package fixture exercises the oraclebypass check: it plays the role of a
// scheduler-layer consumer (import path "fixture/consumer") issuing
// path/distance queries.
package fixture

import (
	"repro/internal/netstate"
	"repro/internal/topology"
)

// RawDist runs an uncached, epoch-blind BFS on the raw topology. Flagged.
func RawDist(t *topology.Topology, a, b topology.NodeID) int {
	return t.Dist(a, b)
}

// RawPath bypasses the shared path cache. Flagged.
func RawPath(t *topology.Topology, a, b topology.NodeID) []topology.NodeID {
	return t.ShortestPath(a, b)
}

// OracleDist routes the same query through the shared oracle. Not flagged.
func OracleDist(o *netstate.Oracle, a, b topology.NodeID) int {
	return o.Dist(a, b)
}

// Structural accessors are O(1) reads, not path computations. Not flagged.
func Structural(t *topology.Topology) int {
	return t.NumServers() + t.NumLinks()
}

// Probe queries the access switch on the raw topology. Flagged.
func Probe(t *topology.Topology, s topology.NodeID) topology.NodeID {
	return t.AccessSwitch(s)
}

// RawStructuralDist calls a coordinate closed form from a consumer: the
// healthy-graph answer with none of netstate's liveness fallback gating.
// Flagged (the structural-accessor arm of the check).
func RawStructuralDist(t *topology.Topology, a, b topology.NodeID) int {
	d, _ := t.StructuralDist(a, b)
	return d
}

// RawCommonTier climbs the hierarchy without the oracle. Flagged.
func RawCommonTier(t *topology.Topology, a, b topology.NodeID) int {
	tier, _ := t.LowestCommonTier(a, b)
	return tier
}

// planner is a near miss: same method names, not a topology.Topology
// receiver. Not flagged.
type planner struct{}

func (planner) StructuralDist(a, b topology.NodeID) (int, bool) { return 0, false }
func (planner) StageTemplate(a, b topology.NodeID) ([]string, bool) {
	return nil, false
}

// NearMiss exercises the lookalike methods. Not flagged.
func NearMiss(a, b topology.NodeID) int {
	var pl planner
	d, _ := pl.StructuralDist(a, b)
	tmpl, _ := pl.StageTemplate(a, b)
	return d + len(tmpl)
}

// TemplateProbe is a deliberate one-shot diagnostic; suppressed.
func TemplateProbe(t *topology.Topology, a, b topology.NodeID) []string {
	tmpl, _ := t.StageTemplate(a, b) //taalint:oraclebypass one-shot diagnostic probe, not on a decision path
	return tmpl
}
