// Package fixture exercises the oraclebypass check: it plays the role of a
// scheduler-layer consumer (import path "fixture/consumer") issuing
// path/distance queries.
package fixture

import (
	"repro/internal/netstate"
	"repro/internal/topology"
)

// RawDist runs an uncached, epoch-blind BFS on the raw topology. Flagged.
func RawDist(t *topology.Topology, a, b topology.NodeID) int {
	return t.Dist(a, b)
}

// RawPath bypasses the shared path cache. Flagged.
func RawPath(t *topology.Topology, a, b topology.NodeID) []topology.NodeID {
	return t.ShortestPath(a, b)
}

// OracleDist routes the same query through the shared oracle. Not flagged.
func OracleDist(o *netstate.Oracle, a, b topology.NodeID) int {
	return o.Dist(a, b)
}

// Structural accessors are O(1) reads, not path computations. Not flagged.
func Structural(t *topology.Topology) int {
	return t.NumServers() + t.NumLinks()
}

// Probe is a deliberate one-shot diagnostic; suppressed.
func Probe(t *topology.Topology, s topology.NodeID) topology.NodeID {
	return t.AccessSwitch(s) //taalint:oraclebypass one-shot diagnostic probe, not on a decision path
}
