// Package fixture exercises the maporder check. It is loaded under the
// synthetic import path "fixture/scheduler" so the decision-package rule
// applies.
package fixture

import "sort"

// FirstPositive observes iteration order: which key is returned depends on
// the map's per-run randomization. Flagged.
func FirstPositive(m map[string]int) string {
	for k := range m {
		if m[k] > 0 {
			return k
		}
	}
	return ""
}

// SumFloats accumulates floats in map order: the rounding of the result
// depends on iteration order. Flagged.
func SumFloats(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

// SortedKeys is the idiomatic deterministic pattern: collect, then sort.
// Not flagged.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CountPositive only accumulates an integer; order-independent. Not
// flagged.
func CountPositive(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n++
		}
	}
	return n
}

// Invert writes a map keyed by the loop variable; distinct keys commute.
// Not flagged.
func Invert(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k := range m {
		out[k] = -m[k]
	}
	return out
}

// Dump is order-dependent but deliberately so; the suppression carries the
// justification and the finding does not gate.
func Dump(m map[string]int) {
	//taalint:maporder debug dump; output order is explicitly don't-care
	for k := range m {
		println(k)
	}
}
