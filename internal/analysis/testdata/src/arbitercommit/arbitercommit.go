// Package multisched is the arbitercommit golden fixture: a miniature
// sharded scheduler with its own local Controller/Cluster (the check
// matches mutators on the "(Receiver).Method" suffix, gated to the
// controller/cluster/multisched package bases, precisely so this
// single-package fixture exercises the same tables as the real module).
// Loaded as fixture/multisched.
package multisched

// Policy is a stand-in for flow.Policy.
type Policy struct{ Cost float64 }

// Controller mirrors the real controller's mutator surface.
type Controller struct {
	policies map[int]*Policy
}

// Install is a blessed mutator: arbiter-only.
func (c *Controller) Install(id int, p *Policy) error {
	c.policies[id] = p
	return nil
}

// Policy is a read: workers may call it.
func (c *Controller) Policy(id int) *Policy { return c.policies[id] }

// Cluster mirrors the real cluster's mutator surface.
type Cluster struct {
	srv map[int]int
}

// Place is a blessed mutator: arbiter-only.
func (c *Cluster) Place(id, s int) error {
	c.srv[id] = s
	return nil
}

// Candidates is a read: workers may call it.
func (c *Cluster) Candidates(id int) []int { return []int{0, 1} }

// Service owns the worker fan-out.
type Service struct {
	ctl *Controller
	cl  *Cluster
}

// Arbiter commits on the scheduling goroutine.
type Arbiter struct{ s *Service }

// commit calls Install legitimately: the arbiter runs on the scheduling
// goroutine and is never launched with `go` (near-miss — no finding).
func (a *Arbiter) commit(id int, p *Policy) error {
	return a.s.ctl.Install(id, p)
}

// presolve is worker code: reads are fine.
func (s *Service) presolve(i int) *Policy {
	old := s.ctl.Policy(i)
	if old == nil {
		return &Policy{Cost: 1}
	}
	return &Policy{Cost: old.Cost / 2}
}

// runCell is worker code that commits its own result instead of handing
// it to the arbiter (trigger: transitive mutator call, reported at the
// Install edge).
func (s *Service) runCell(i int) {
	p := s.presolve(i)
	_ = s.ctl.Install(i, p)
}

// start launches the workers. The literal's call to runCell seeds the
// closure; the direct map poke inside the literal is a monitored write
// from a goroutine (trigger).
func (s *Service) start() {
	go func() {
		s.runCell(0)
		s.ctl.policies[1] = nil
	}()
}

// scrub is launched directly with `go` and writes monitored state in its
// own body (trigger: effects-based direct-write detection).
func (s *Service) scrub() {
	s.ctl.policies = nil
}

// reset fires scrub on a goroutine and also places one container from a
// worker with an explicit, reviewed escape hatch (the suppressed
// violation proving //taalint:arbitercommit works).
func (s *Service) reset() {
	go s.scrub()
	//taalint:arbitercommit fixture escape-hatch demonstration
	go s.cl.Place(0, 0)
}
