// Package netstate is the publishfreeze golden fixture: values installed
// through atomic.Pointer stores must be immutable afterwards. The shapes
// mirror the real oracle's swdist table and DistRow publishes.
package netstate

import "sync/atomic"

type table struct {
	dist []int32
}

// Holder mirrors the oracle's published-table fields.
type Holder struct {
	tab  atomic.Pointer[table]
	rows [4]atomic.Pointer[[]int32]
}

// Publish builds the table fully, then stores: the blessed shape
// (near-miss).
func (h *Holder) Publish(n int) {
	t := &table{dist: make([]int32, n)}
	for i := range t.dist {
		t.dist[i] = int32(i)
	}
	h.tab.Store(t)
}

// PublishThenPatch stores, then "fixes up" one row readers may already
// be looking at (trigger).
func (h *Holder) PublishThenPatch(n int) {
	t := &table{dist: make([]int32, n)}
	h.tab.Store(t)
	t.dist[0] = 1
}

// PublishThenPatchAlias mutates the published value through a copied
// pointer (trigger: the alias set covers plain copies).
func (h *Holder) PublishThenPatchAlias(n int) {
	t := &table{dist: make([]int32, n)}
	q := t
	h.tab.Store(t)
	q.dist[0] = 1
}

// PublishRowThenFill hands the published row to a helper that writes
// through its parameter (trigger: interprocedural, via ParamWrites).
func (h *Holder) PublishRowThenFill(n int) {
	d := make([]int32, n)
	h.rows[0].Store(&d)
	fill(d)
}

func fill(d []int32) {
	for i := range d {
		d[i] = 1
	}
}

// RepublishLoop publishes a fresh value per iteration; the writes before
// each store touch the not-yet-published value (near-miss: fresh per
// iteration, no wraparound).
func (h *Holder) RepublishLoop(rounds, n int) {
	for r := 0; r < rounds; r++ {
		t := &table{dist: make([]int32, n)}
		t.dist[0] = int32(r)
		h.tab.Store(t)
	}
}

// PatchLoop keeps one value across iterations: the write at the top of
// iteration r+1 mutates the value published in iteration r (trigger:
// loop wraparound, value declared outside the loop).
func (h *Holder) PatchLoop(rounds int) {
	t := &table{dist: make([]int32, 4)}
	for r := 0; r < rounds; r++ {
		t.dist[0] = int32(r)
		h.tab.Store(t)
	}
}

// PublishThenCount bumps a published row under an explicit suppression —
// the reviewable escape hatch.
func (h *Holder) PublishThenCount(n int) {
	t := &table{dist: make([]int32, n)}
	h.tab.Store(t)
	t.dist[0]++ //taalint:publishfreeze monotonic count, readers tolerate staleness here
}
