// Package suppression is the malformed-suppression fixture: every
// //taalint: marker in here is broken in one of the ways the parser
// must report instead of silently ignoring.
package suppression

//taalint: a reason with no check list in front of it
var a = 1

var b = 2 //taalint:floateqq typo'd check name that would have suppressed nothing

//taalint:maporder
var c = 3 // marker above has no reason

var d = 4 //taalint:floateq well-formed: this one is a real suppression, not a finding
