// Package loaderscope pins the loader's file-selection contract: exactly
// the files the compiler would build, nothing else (see loader_test.go).
package loaderscope

// Kept is declared in the one file the loader must see.
func Kept() int { return 1 }
