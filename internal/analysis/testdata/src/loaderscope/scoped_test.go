// Test files are outside taalint's scope: the determinism and oracle
// contracts bind production decision paths, and tests legitimately use
// wall clocks, error text and ad-hoc iteration. The loader must skip this
// file for every check.
package loaderscope

// TestOnly must never be visible to the loader.
func TestOnly() int { return 3 }
