//go:build ignore

// This file is excluded by its build tag. If the loader ever stops
// honoring build constraints it will parse this file, see the Excluded
// declaration, and fail the loader-scope test — and checks would start
// linting code the compiler never builds.
package loaderscope

// Excluded must never be visible to the loader.
func Excluded() int { return 2 }
