// Package fixture exercises the rngsource check.
package fixture

import "math/rand"

// GlobalDraw uses the process-wide source. Flagged.
func GlobalDraw() int {
	return rand.Intn(10)
}

// GlobalShuffle too. Flagged.
func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Injected draws from a caller-provided seeded generator. Not flagged.
func Injected(r *rand.Rand) int {
	return r.Intn(10)
}

// Construct builds an isolated seeded generator; the constructors are the
// allowed path. Not flagged.
func Construct(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Demo is deliberate and carries a justification; suppressed.
func Demo() float64 {
	return rand.Float64() //taalint:rngsource throwaway demo value, never feeds a decision
}
