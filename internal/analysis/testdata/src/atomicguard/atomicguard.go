// Fixture for the atomicguard check, loaded as "fixture/netstate" so the
// stripe-lock rule applies. Covers: a plain read of an atomically-updated
// field (trigger, rule 1), a guarded-map access without the mutex
// (trigger, rule 2), correct atomic/locked/fresh/Locked-suffix usage
// (near-misses), and exactly one suppressed access.
package netstate

import (
	"sync"
	"sync/atomic"
)

// Oracle mirrors the real oracle's shape: an atomic-typed epoch, a
// counter updated through the atomic package, and a map guarded by a
// mutex declared in the same struct.
type Oracle struct {
	epoch atomic.Uint64
	seq   uint64
	mu    sync.RWMutex
	m     map[int]int
}

// Bump and Epoch use the atomic field only through its methods. Near-miss.
func (o *Oracle) Bump() { o.epoch.Add(1) }

// Epoch likewise. Near-miss.
func (o *Oracle) Epoch() uint64 { return o.epoch.Load() }

// NextSeq updates seq through sync/atomic, marking the field atomic
// module-wide.
func (o *Oracle) NextSeq() uint64 { return atomic.AddUint64(&o.seq, 1) }

// PeekSeq reads the same field plainly: a data race the race detector
// only sees on the right schedule. Trigger (rule 1).
func (o *Oracle) PeekSeq() uint64 { return o.seq }

// Lookup takes the mutex before touching the guarded map. Near-miss.
func (o *Oracle) Lookup(k int) (int, bool) {
	o.mu.RLock()
	v, ok := o.m[k]
	o.mu.RUnlock()
	return v, ok
}

// BadLookup reaches the guarded map with no lock in sight. Trigger
// (rule 2).
func (o *Oracle) BadLookup(k int) int { return o.m[k] }

// resetLocked relies on the caller holding the lock, declared by the
// Locked suffix. Near-miss.
func (o *Oracle) resetLocked() { o.m = make(map[int]int) }

// fresh builds an oracle nobody else can see yet; unpublished state needs
// no lock. Near-miss.
func fresh() *Oracle {
	o := &Oracle{}
	o.m = make(map[int]int)
	return o
}

// Seed is the suppression specimen: exactly one audited escape hatch.
func (o *Oracle) Seed(k, v int) {
	o.m[k] = v //taalint:atomicguard seeding happens before the oracle is published
}
