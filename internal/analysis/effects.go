package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is taalint v3's interprocedural effects layer: a per-function
// write-effect summary computed once over the module index and shared by
// the purity, publishfreeze and poolescape checks.
//
// For every declared function the engine records
//
//   - Writes: each direct store to a named struct field anywhere in the
//     body, including nested function literals and deferred calls (a write
//     inside a defer or a closure is still a write this function may
//     perform), classified plain vs atomic. Unlike index.go's field-access
//     classification, an atomic mutator called on an ELEMENT reached
//     through a field — o.distRows[src].Store(&d) — is recorded here as an
//     atomic write to the field (distRows), because the effects questions
//     ("does this function mutate oracle state?") care about the spine,
//     not just the exact selector.
//   - FieldWrites: the transitive closure of Writes over the static call
//     graph, fixed-pointed over recursion with a global worklist (the
//     epochbump interpreter's optimistic busy-map would under-approximate
//     here: a summary consumed mid-cycle must not be frozen before the
//     cycle stabilizes, so the engine iterates to a true fixpoint
//     instead).
//   - ParamWrites: per formal slot (receiver first, then parameters),
//     whether the function may write THROUGH that slot — a deref, index or
//     field store whose lvalue spine is rooted at the formal, directly or
//     via a callee that writes through the matching parameter. Only
//     ident-rooted arguments propagate (x or &x); everything else is
//     invisible, which is the same fail-safe stance index.go takes for
//     dynamic calls.
//
// Unresolved callees (interface methods, function values, stdlib) are
// assumed write-free. That is sound for the monitored state because every
// monitored field is unexported: only module code, which IS indexed, can
// name it.

// WriteEffect is one direct store to a named struct field.
type WriteEffect struct {
	Field  string // full index key: "pkg/path.Struct.field"
	Pos    token.Pos
	Atomic bool // performed through sync/atomic (mutator method or pkg func)
}

// effCall is one resolvable call site with its ident-rooted argument
// bindings: Args[i] is the types.Object passed in the callee's formal slot
// i (receiver = 0 for methods), or nil when the argument is not a plain
// ident / &ident.
type effCall struct {
	Callee FuncKey
	Pos    token.Pos
	Args   []types.Object
}

// FuncEffects is the write-effect summary of one declared function.
type FuncEffects struct {
	Key    FuncKey
	Writes []WriteEffect
	Calls  []effCall
	// FieldWrites is the set of field keys this function may write,
	// directly or transitively through module callees.
	FieldWrites map[string]bool
	// ParamWrites[i] reports a possible write through formal slot i
	// (receiver first). Slots without a name are tracked but never match.
	ParamWrites []bool

	formals []types.Object // formal slot objects, receiver first
}

// Effects is the module-wide effects table.
type Effects struct {
	idx *Index
	fns map[FuncKey]*FuncEffects
}

// Effects returns the lazily built effects table shared by all checks of
// one Run. The memoization is unlocked: Run prebuilds the table before
// any check goroutine starts, so concurrent callers only ever read the
// already-set field (first-call safety is the builder's, not ours).
func (idx *Index) Effects() *Effects {
	if idx.effects == nil {
		idx.effects = buildEffects(idx)
	}
	return idx.effects
}

// Of returns the summary for a key, or nil for unresolved functions.
func (e *Effects) Of(key FuncKey) *FuncEffects { return e.fns[key] }

func buildEffects(idx *Index) *Effects {
	e := &Effects{idx: idx, fns: make(map[FuncKey]*FuncEffects)}
	for _, pkg := range idx.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				key := declKey(pkg, fd)
				if key == "" {
					continue
				}
				if _, dup := e.fns[key]; dup {
					continue
				}
				e.fns[key] = collectEffects(pkg, key, fd)
			}
		}
	}
	e.fixpoint()
	return e
}

// collectEffects gathers the direct (intraprocedural) summary of one
// function declaration.
func collectEffects(pkg *Package, key FuncKey, fd *ast.FuncDecl) *FuncEffects {
	fe := &FuncEffects{Key: key, FieldWrites: make(map[string]bool)}

	// Formal slots: receiver first, then parameters (variadic included).
	addFormal := func(names []*ast.Ident) {
		if len(names) == 0 {
			fe.formals = append(fe.formals, nil) // unnamed slot
			return
		}
		for _, n := range names {
			fe.formals = append(fe.formals, pkg.Info.Defs[n])
		}
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		addFormal(fd.Recv.List[0].Names)
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			addFormal(f.Names)
		}
	}
	fe.ParamWrites = make([]bool, len(fe.formals))

	slot := func(obj types.Object) int {
		if obj == nil {
			return -1
		}
		for i, f := range fe.formals {
			if f != nil && f == obj {
				return i
			}
		}
		return -1
	}

	// addWrite records a field write for every selection on the lvalue (or
	// receiver) spine, and a param write-through when the spine is
	// non-trivial and rooted at a formal. A trivial spine (`p = x`) rebinds
	// the local and has no external effect.
	addWrite := func(spine ast.Expr, atomic bool) {
		nontrivial := false
		e := spine
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.StarExpr:
				nontrivial = true
				e = x.X
			case *ast.IndexExpr:
				nontrivial = true
				e = x.X
			case *ast.SliceExpr:
				nontrivial = true
				e = x.X
			case *ast.SelectorExpr:
				if owner, field := fieldOf(pkg, x); field != nil {
					fe.Writes = append(fe.Writes, WriteEffect{
						Field:  fieldAccessKey(owner, field),
						Pos:    x.Sel.Pos(),
						Atomic: atomic,
					})
				}
				nontrivial = true
				e = x.X
			case *ast.Ident:
				if nontrivial {
					if i := slot(pkg.Info.ObjectOf(x)); i >= 0 {
						fe.ParamWrites[i] = true
					}
				}
				return
			default:
				return
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				addWrite(lhs, false)
			}
		case *ast.IncDecStmt:
			addWrite(s.X, false)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && len(s.Args) > 0 {
					addWrite(s.Args[0], false)
				}
			}
			// atomic.StoreUint64(&o.f, x) and friends: writes o.f.
			if isAtomicPkgFunc(pkg, s.Fun) && atomicFuncMutates(pkg, s.Fun) {
				for _, arg := range s.Args {
					if ue, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && ue.Op == token.AND {
						addWrite(ue.X, true)
					}
				}
			}
			// o.epoch.Add(1), o.distRows[i].Store(&d): an atomic mutator
			// whose receiver spine passes through fields writes them.
			if mSel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr); ok &&
				atomicMutatorNames[mSel.Sel.Name] && isAtomicType(pkg.Info.TypeOf(mSel.X)) {
				addWrite(mSel.X, true)
			}
			// Record ident-rooted argument bindings for resolvable calls.
			if callee := resolveCall(pkg, s); callee != "" {
				fe.Calls = append(fe.Calls, effCall{
					Callee: callee,
					Pos:    s.Pos(),
					Args:   callArgObjects(pkg, s),
				})
			}
		}
		return true
	})

	for _, w := range fe.Writes {
		fe.FieldWrites[w.Field] = true
	}
	return fe
}

// atomicMutatorNames is the set of sync/atomic method names that mutate
// their receiver.
var atomicMutatorNames = map[string]bool{
	"Add": true, "Store": true, "Swap": true, "CompareAndSwap": true, "Or": true, "And": true,
}

// atomicFuncMutates reports whether a sync/atomic package function writes
// through its pointer argument (Load* does not).
func atomicFuncMutates(p *Package, fun ast.Expr) bool {
	sel, ok := ast.Unparen(fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	for _, prefix := range []string{"Add", "Store", "Swap", "CompareAndSwap", "Or", "And"} {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

// callArgObjects maps a call's arguments onto the callee's formal slots:
// slot 0 is the receiver for method calls. Only plain idents and &ident
// arguments resolve to objects; everything else is nil.
func callArgObjects(pkg *Package, call *ast.CallExpr) []types.Object {
	var args []types.Object
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			args = append(args, rootIdentObject(pkg, sel.X))
		}
	}
	for _, a := range call.Args {
		args = append(args, rootIdentObject(pkg, a))
	}
	return args
}

// rootIdentObject returns the object of a plain ident or &ident argument,
// or nil for anything else (a field selector, call result, literal...).
func rootIdentObject(pkg *Package, e ast.Expr) types.Object {
	e = ast.Unparen(e)
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		e = ast.Unparen(ue.X)
	}
	if id, ok := e.(*ast.Ident); ok {
		return pkg.Info.ObjectOf(id)
	}
	return nil
}

// fixpoint closes FieldWrites and ParamWrites over the call graph. The
// module is small enough that a simple iterate-until-stable loop over all
// summaries (deterministic key order) converges in a handful of passes
// even through mutual recursion.
func (e *Effects) fixpoint() {
	keys := make([]FuncKey, 0, len(e.fns))
	for k := range e.fns {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for changed := true; changed; {
		changed = false
		for _, k := range keys {
			fe := e.fns[k]
			for _, c := range fe.Calls {
				callee := e.fns[c.Callee]
				if callee == nil {
					continue // unresolved or external: assumed write-free
				}
				for f := range callee.FieldWrites {
					if !fe.FieldWrites[f] {
						fe.FieldWrites[f] = true
						changed = true
					}
				}
				for i, obj := range c.Args {
					if obj == nil || i >= len(callee.ParamWrites) || !callee.ParamWrites[i] {
						continue
					}
					for j, formal := range fe.formals {
						if formal != nil && formal == obj && !fe.ParamWrites[j] {
							fe.ParamWrites[j] = true
							changed = true
						}
					}
				}
			}
		}
	}
}

// WritesThroughArg reports whether the call may write through the given
// argument object: some formal slot bound to obj has ParamWrites set in
// the callee's summary. Unknown callees report false (fail-safe for
// monitored unexported state, see package comment).
func (e *Effects) WritesThroughArg(c effCall, obj types.Object) bool {
	callee := e.fns[c.Callee]
	if callee == nil || obj == nil {
		return false
	}
	for i, a := range c.Args {
		if a == obj && i < len(callee.ParamWrites) && callee.ParamWrites[i] {
			return true
		}
	}
	return false
}
