package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages with nothing but the standard
// library: go/parser for syntax and go/types with the source importer for
// type information. One Loader shares a FileSet and an importer across
// every package it loads, so common dependencies (topology, netstate, the
// stdlib) are type-checked once.
//
// The source importer resolves module import paths through the go command,
// which requires the process working directory to be inside the module —
// ModuleRoot/Chdir in cmd/taalint and the tests' natural cwd both satisfy
// that.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a loader with a fresh FileSet and source importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Fset exposes the loader's position set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModuleRoot walks up from dir to the enclosing go.mod and returns its
// directory and module path.
func ModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// sourceFiles returns the analyzable file set of dir — exactly the files
// the compiler would build for the host configuration: build-tag and
// GOOS/GOARCH constraints honored, _test.go files excluded. Every check
// sees this one file set; before this helper, a file excluded by a build
// tag was still scanned, so a `//go:build ignore` scratch file could fail
// the lint while being invisible to the build. A nil slice (with nil
// error) means dir holds no buildable non-test Go files.
func sourceFiles(dir string) ([]string, error) {
	pkg, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		var noGo *build.NoGoError
		if errors.As(err, &noGo) {
			return nil, nil
		}
		return nil, err
	}
	files := append([]string(nil), pkg.GoFiles...)
	sort.Strings(files)
	return files, nil
}

// LoadModule loads every non-test package under the module rooted at root,
// skipping testdata, hidden and underscore-prefixed directories. Packages
// are returned sorted by import path.
func (l *Loader) LoadModule(root string) ([]*Package, error) {
	root, modPath, err := ModuleRoot(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := sourceFiles(p)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			dirs = append(dirs, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, importPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the given
// import path. The file set is the compiler's view of dir (see
// sourceFiles): test files and tag-excluded files are invisible to every
// check. The import path is what the per-package scoping rules (decision
// packages, netstate exemption) match against, so fixtures can masquerade
// as any package.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	names, err := sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no buildable non-test Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := types.Config{Importer: l.imp}
	tpkg, err := cfg.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Pkg:   tpkg,
		Info:  info,
	}, nil
}
