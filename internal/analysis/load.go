package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages with nothing but the standard
// library: go/parser for syntax and go/types with the source importer for
// type information. One Loader shares a FileSet and an importer across
// every package it loads, so common dependencies (topology, netstate, the
// stdlib) are type-checked once.
//
// The importer is wrapped in a cache keyed by import path that LoadDir
// feeds with every package it checks directly. Combined with LoadModule's
// dependency-ordered load this means each module package is type-checked
// exactly once per run: before the cache, loading cmd/hitbench re-checked
// topology, netstate and core from source inside the importer, and again
// for every other importer — roughly doubling (or worse, for deep
// dependency chains) a full taalint run.
//
// The source importer resolves module import paths through the go command,
// which requires the process working directory to be inside the module —
// ModuleRoot/Chdir in cmd/taalint and the tests' natural cwd both satisfy
// that.
type Loader struct {
	fset *token.FileSet
	imp  *cachingImporter
}

// NewLoader returns a loader with a fresh FileSet and caching source
// importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: &cachingImporter{
		src:   importer.ForCompiler(fset, "source", nil),
		cache: make(map[string]*types.Package),
	}}
}

// Fset exposes the loader's position set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// cachingImporter serves packages the loader has already type-checked
// directly (or resolved once through the source importer) without
// re-checking them from source.
type cachingImporter struct {
	src   types.Importer
	cache map[string]*types.Package
}

func (ci *cachingImporter) Import(path string) (*types.Package, error) {
	return ci.ImportFrom(path, "", 0)
}

func (ci *cachingImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := ci.cache[path]; ok {
		return p, nil
	}
	var (
		p   *types.Package
		err error
	)
	if from, ok := ci.src.(types.ImporterFrom); ok {
		p, err = from.ImportFrom(path, dir, mode)
	} else {
		p, err = ci.src.Import(path)
	}
	if err == nil && p != nil {
		ci.cache[path] = p
	}
	return p, err
}

// ModuleRoot walks up from dir to the enclosing go.mod and returns its
// directory and module path.
func ModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// sourceFiles returns the analyzable file set of dir plus its imports —
// exactly the files the compiler would build for the host configuration:
// build-tag and GOOS/GOARCH constraints honored, _test.go files
// excluded. Every check sees this one file set; before this helper, a
// file excluded by a build tag was still scanned, so a `//go:build
// ignore` scratch file could fail the lint while being invisible to the
// build. A nil file slice (with nil error) means dir holds no buildable
// non-test Go files.
func sourceFiles(dir string) (files, imports []string, err error) {
	pkg, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		var noGo *build.NoGoError
		if errors.As(err, &noGo) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	files = append([]string(nil), pkg.GoFiles...)
	sort.Strings(files)
	return files, pkg.Imports, nil
}

// LoadModule loads every non-test package under the module rooted at root,
// skipping testdata, hidden and underscore-prefixed directories. Packages
// are loaded in dependency order — each package after everything it
// imports from the module — so the importer cache is always warm and no
// package is ever type-checked twice. The returned slice is sorted by
// import path.
func (l *Loader) LoadModule(root string) ([]*Package, error) {
	root, modPath, err := ModuleRoot(root)
	if err != nil {
		return nil, err
	}
	type modDir struct {
		dir        string
		importPath string
		imports    []string // module-internal imports only
	}
	byPath := make(map[string]*modDir)
	var paths []string
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, imports, err := sourceFiles(p)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		md := &modDir{dir: p, importPath: importPath}
		for _, imp := range imports {
			if imp == modPath || strings.HasPrefix(imp, modPath+"/") {
				md.imports = append(md.imports, imp)
			}
		}
		byPath[importPath] = md
		paths = append(paths, importPath)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)

	// Deterministic Kahn topological sort over module-internal imports:
	// always pick the lexicographically smallest ready package. Import
	// cycles cannot type-check anyway; if one sneaks in, the remainder is
	// loaded in path order and the type checker reports it.
	indeg := make(map[string]int, len(paths))
	dependents := make(map[string][]string)
	for _, p := range paths {
		for _, imp := range byPath[p].imports {
			if _, known := byPath[imp]; !known {
				continue
			}
			indeg[p]++
			dependents[imp] = append(dependents[imp], p)
		}
	}
	var ready, order []string
	for _, p := range paths {
		if indeg[p] == 0 {
			ready = append(ready, p)
		}
	}
	for len(ready) > 0 {
		sort.Strings(ready)
		p := ready[0]
		ready = ready[1:]
		order = append(order, p)
		for _, dep := range dependents[p] {
			if indeg[dep]--; indeg[dep] == 0 {
				ready = append(ready, dep)
			}
		}
	}
	for _, p := range paths { // cycle fallback, see above
		if indeg[p] > 0 {
			order = append(order, p)
		}
	}

	pkgsByPath := make(map[string]*Package, len(order))
	for _, p := range order {
		pkg, err := l.LoadDir(byPath[p].dir, p)
		if err != nil {
			return nil, err
		}
		pkgsByPath[p] = pkg
	}
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkgs = append(pkgs, pkgsByPath[p])
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the given
// import path. The file set is the compiler's view of dir (see
// sourceFiles): test files and tag-excluded files are invisible to every
// check. The import path is what the per-package scoping rules (decision
// packages, netstate exemption) match against, so fixtures can masquerade
// as any package. The checked package is fed into the importer cache so
// later packages importing it reuse it directly.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	names, _, err := sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no buildable non-test Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := types.Config{Importer: l.imp}
	tpkg, err := cfg.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	l.imp.cache[importPath] = tpkg
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Pkg:   tpkg,
		Info:  info,
	}, nil
}
