package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between float-typed operands anywhere in the
// module. Cost and utility values are accumulated floats; exact equality
// on them is either vacuously true (same expression) or a rounding-order
// landmine that breaks cross-platform reproducibility of the paper's
// figures. Compare with an epsilon helper (metrics.ApproxEqual) instead,
// or annotate //taalint:floateq when exact semantics are intended (e.g.
// comparing against a sentinel the code itself assigned).
//
// The x != x NaN idiom (both operands the same identifier) and fully
// constant comparisons are exempt.
type FloatEq struct{}

// Name implements Check.
func (FloatEq) Name() string { return "floateq" }

// Doc implements Check.
func (FloatEq) Doc() string {
	return "==/!= on float operands; use an epsilon helper such as metrics.ApproxEqual"
}

// Run implements Check.
func (FloatEq) Run(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloatExpr(p, be.X) && !isFloatExpr(p, be.Y) {
				return true
			}
			// Constant-folded comparisons carry no runtime hazard.
			if tv, ok := p.Pkg.Info.Types[be]; ok && tv.Value != nil {
				return true
			}
			// x != x / x == x: the NaN self-comparison idiom.
			if xa, xb := identObj(p, be.X), identObj(p, be.Y); xa != nil && xa == xb {
				return true
			}
			p.Reportf(be.OpPos,
				"float equality (%s); use metrics.ApproxEqual or an explicit epsilon, or annotate //taalint:floateq",
				be.Op)
			return true
		})
	}
}

func isFloatExpr(p *Pass, e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
