package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// snapshotfreeze: values obtained from the netstate oracle's blessed
// read API are frozen once they cross a goroutine boundary — a worker
// may read them forever, but a write through one is a data race against
// every other worker sharing the same cached slice.
//
// The oracle's read API (DistRow, ShortestPath, TypeTemplate, BestRoute,
// StagesForTemplate, ...) deliberately returns SHARED cache-resident
// slices — "callers must not modify" is in every doc comment, and the
// whole multischeduler rests on it: shard workers presolve against
// Snapshot-pinned state concurrently, so one worker writing a distance
// row corrupts every other worker's reads and the arbiter's replay.
// publishfreeze proves the PRODUCER side (published values immutable
// after the atomic store); this check proves the CONSUMER side across
// goroutine boundaries, extending the same freeze discipline to every
// capture.
//
// Scope: code that runs on a worker goroutine — the body of every
// `go func(){...}`, every function literal passed to a pool entry point
// (acPoolEntrypoints: internal/parallel fan-outs and
// supervise.Supervisor.Go), every named `go` callee, and everything
// those reach through the static call graph.
//
// Within each analyzed declaration a flow-insensitive taint fixpoint
// tracks two flavors:
//
//   - shared: the object IS a reference into oracle-owned memory — the
//     result of a source call, a copy/alias of one, an element read out
//     of a holder, a re-slice, a view returned by a helper fed a shared
//     argument. append with a fresh first argument
//     (append([]T(nil), s...)) copies and therefore launders — it is
//     the blessed clone idiom. Scalar reads launder too (peRefLike).
//   - holds: a local container some shared reference was stored into
//     (rows[ps] = oracle.DistRow(ps)). Storing into the container's
//     own slots stays legal — that is building a local index, not
//     mutating oracle memory — but an element read yields a shared
//     reference, and a two-level write (rows[ps][0] = x) lands in
//     oracle memory.
//
// Findings, inside worker-executed code only: a write whose lvalue
// spine passes through a source call's result, a write through a
// shared root, a two-or-more-level write through a holder, and a
// shared value passed to a callee that writes through that parameter
// (effects.go ParamWrites). Dynamic calls are assumed write-free — the
// fail-safe stance of every index-based check.
type SnapshotFreeze struct{}

// sfSources is the blessed oracle read API whose results are shared
// oracle-owned memory, keyed "(Receiver).Method" and gated on the
// netstate package base (so the golden fixture's miniature Oracle hits
// the same table). Scalar-returning entries are harmless — peRefLike
// launders them — but keeping the full blessed list here documents the
// contract in one place.
var sfSources = map[string]bool{
	"(Oracle).Snapshot":          true,
	"(Oracle).Dist":              true,
	"(Oracle).DistRow":           true,
	"(Oracle).ShortestPath":      true,
	"(Oracle).PathDAG":           true,
	"(Oracle).NearestByDist":     true,
	"(Oracle).TypeTemplate":      true,
	"(Oracle).BestRoute":         true,
	"(Oracle).RouteCost":         true,
	"(Oracle).Headroom":          true,
	"(Oracle).Load":              true,
	"(Oracle).SwitchesOfType":    true,
	"(Oracle).StagesForTemplate": true,
	"(Oracle).AccessSwitch":      true,
	"(Oracle).PathBandwidth":     true,
}

// Name implements Check.
func (SnapshotFreeze) Name() string { return "snapshotfreeze" }

// Doc implements Check.
func (SnapshotFreeze) Doc() string {
	return "oracle read-API results captured by worker goroutines are frozen; copy before mutating"
}

// sfIsSource reports whether a callee key is a blessed oracle read.
func sfIsSource(callee FuncKey) bool {
	rm := acRecvMethod(callee)
	return rm != "" && sfSources[rm] && acPkgBase(callee) == "netstate"
}

// sfTaintSet is the per-declaration taint state.
type sfTaintSet struct {
	shared map[types.Object]bool
	holds  map[types.Object]bool
}

// sfSharedExpr reports whether the expression's value is a shared
// oracle reference.
func sfSharedExpr(pkg *Package, t *sfTaintSet, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return sfSharedExpr(pkg, t, x.X)
	case *ast.Ident:
		return t.shared[pkg.Info.ObjectOf(x)]
	case *ast.StarExpr:
		return sfSharedExpr(pkg, t, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return sfSharedExpr(pkg, t, x.X)
		}
		return false
	case *ast.IndexExpr:
		// An element read out of a holder is a shared reference.
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && t.holds[pkg.Info.ObjectOf(id)] {
			return true
		}
		return sfSharedExpr(pkg, t, x.X)
	case *ast.SliceExpr:
		return sfSharedExpr(pkg, t, x.X)
	case *ast.SelectorExpr:
		if _, field := fieldOf(pkg, x); field != nil {
			return sfSharedExpr(pkg, t, x.X)
		}
		return false
	case *ast.TypeAssertExpr:
		return sfSharedExpr(pkg, t, x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if sfSharedExpr(pkg, t, el) {
				return true
			}
		}
	case *ast.CallExpr:
		if sfIsSource(resolveCall(pkg, x)) {
			return true
		}
		// Conversions share backing; append shares its first argument's
		// backing (append([]T(nil), s...) is the blessed fresh copy);
		// other builtins return scalars; remaining calls may return
		// views of any reference-like argument.
		if tv, ok := pkg.Info.Types[x.Fun]; ok && tv.IsType() {
			if len(x.Args) == 1 {
				return sfSharedExpr(pkg, t, x.Args[0])
			}
			return false
		}
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				if id.Name == "append" && len(x.Args) > 0 {
					return sfSharedExpr(pkg, t, x.Args[0])
				}
				return false
			}
		}
		for _, a := range x.Args {
			if sfSharedExpr(pkg, t, a) && peRefLike(pkg.Info.TypeOf(a), nil) {
				return true
			}
		}
	}
	return false
}

// sfTaint runs the flow-insensitive taint fixpoint over one
// declaration body.
func sfTaint(pkg *Package, body ast.Node) *sfTaintSet {
	t := &sfTaintSet{shared: make(map[types.Object]bool), holds: make(map[types.Object]bool)}
	sharedVal := func(e ast.Expr) bool {
		return sfSharedExpr(pkg, t, e) && peRefLike(pkg.Info.TypeOf(e), nil)
	}
	for changed := true; changed; {
		changed = false
		markShared := func(obj types.Object) {
			if obj != nil && !t.shared[obj] {
				t.shared[obj] = true
				changed = true
			}
		}
		markHolds := func(obj types.Object) {
			if obj != nil && !t.holds[obj] {
				t.holds[obj] = true
				changed = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				// Tuple form: types, err := o.TypeTemplate(...) taints
				// every reference-like (non-error) result binding.
				if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
					if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok && sfIsSource(resolveCall(pkg, call)) {
						for _, lhs := range s.Lhs {
							if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
								obj := pkg.Info.ObjectOf(id)
								if obj != nil && peRefLike(obj.Type(), nil) && !sfIsErrType(obj.Type()) {
									markShared(obj)
								}
							}
						}
					}
					return true
				}
				for i, lhs := range s.Lhs {
					if i >= len(s.Rhs) || !sharedVal(s.Rhs[i]) {
						continue
					}
					root, layers, _ := sfLvalue(pkg, lhs)
					if root == nil {
						continue
					}
					if layers == 0 {
						markShared(root) // plain rebind: alias
					} else if !t.shared[root] {
						markHolds(root) // store into a local container
					}
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					if i < len(s.Values) && name.Name != "_" && sharedVal(s.Values[i]) {
						markShared(pkg.Info.Defs[name])
					}
				}
			case *ast.RangeStmt:
				if s.Value == nil {
					return true
				}
				overShared := sfSharedExpr(pkg, t, s.X)
				if id, ok := ast.Unparen(s.X).(*ast.Ident); ok && t.holds[pkg.Info.ObjectOf(id)] {
					overShared = true
				}
				if overShared {
					if id, ok := ast.Unparen(s.Value).(*ast.Ident); ok && peRefLike(pkg.Info.TypeOf(id), nil) {
						markShared(pkg.Info.ObjectOf(id))
					}
				}
			}
			return true
		})
	}
	return t
}

// sfIsErrType reports whether t is the built-in error interface (its
// bindings are reference-like but never oracle memory).
func sfIsErrType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// sfLvalue walks an lvalue spine: the root object (nil when the spine
// bottoms out in a call or non-ident), the number of deref/index/field
// layers written through, and the source call on the spine, if any
// (o.DistRow(2)[0] = 9 has no root but writes oracle memory directly).
func sfLvalue(pkg *Package, e ast.Expr) (root types.Object, layers int, srcCall FuncKey) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			layers++
			e = x.X
		case *ast.IndexExpr:
			layers++
			e = x.X
		case *ast.SliceExpr:
			layers++
			e = x.X
		case *ast.SelectorExpr:
			if _, field := fieldOf(pkg, x); field == nil {
				return nil, layers, ""
			}
			layers++
			e = x.X
		case *ast.CallExpr:
			if callee := resolveCall(pkg, x); sfIsSource(callee) {
				return nil, layers, callee
			}
			return nil, layers, ""
		case *ast.Ident:
			return pkg.Info.ObjectOf(x), layers, ""
		default:
			return nil, layers, ""
		}
	}
}

// RunModule implements ModuleCheck.
func (SnapshotFreeze) RunModule(mp *ModulePass) {
	eff := mp.Index.Effects()
	reported := make(map[string]bool) // pkg.Path + pos dedup across overlapping regions

	// via maps worker-reachable functions to the shortKey of the
	// function whose launch rooted them, for diagnostics.
	via := make(map[FuncKey]string)
	var queue []FuncKey
	seed := func(callee FuncKey, root string) {
		if callee == "" {
			return
		}
		if _, seen := via[callee]; !seen {
			via[callee] = root
			queue = append(queue, callee)
		}
	}

	// Phase 1: launch sites. Worker literals are analyzed in their
	// launcher's taint context (they capture its locals); named go
	// callees and calls made inside worker literals seed the closure.
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				var lits []*ast.FuncLit
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch x := n.(type) {
					case *ast.GoStmt:
						if fl, isLit := ast.Unparen(x.Call.Fun).(*ast.FuncLit); isLit {
							lits = append(lits, fl)
						} else {
							seed(resolveCall(pkg, x.Call), shortKey(declKey(pkg, fd)))
						}
					case *ast.CallExpr:
						if !acPoolEntrypoints[shortKey(resolveCall(pkg, x))] {
							return true
						}
						for _, a := range x.Args {
							if fl, isLit := ast.Unparen(a).(*ast.FuncLit); isLit {
								lits = append(lits, fl)
							}
						}
					}
					return true
				})
				if len(lits) == 0 {
					continue
				}
				root := shortKey(declKey(pkg, fd))
				taint := sfTaint(pkg, fd.Body)
				key := declKey(pkg, fd)
				for _, fl := range lits {
					sfFindings(mp, pkg, key, fl.Body, taint, eff, reported,
						"goroutine launched in "+root)
					ast.Inspect(fl.Body, func(n ast.Node) bool {
						if call, ok := n.(*ast.CallExpr); ok {
							seed(resolveCall(pkg, call), root)
						}
						return true
					})
				}
			}
		}
	}

	// Phase 2: the worker-reachable closure — every declared function a
	// worker can call runs entirely on the worker goroutine, so its
	// whole body is in scope.
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		info := mp.Index.Funcs[k]
		if info == nil {
			continue
		}
		taint := sfTaint(info.Pkg, info.Decl.Body)
		sfFindings(mp, info.Pkg, k, info.Decl.Body, taint, eff, reported,
			shortKey(k)+", reachable from a goroutine launched in "+via[k]+",")
		for _, c := range info.Calls {
			seed(c.Callee, via[k])
		}
	}
}

// sfFindings scans one worker-executed region for writes into shared
// oracle memory. declKey names the enclosing declaration (whose effects
// summary carries the call-argument bindings for the ParamWrites rule);
// region bounds the scan; whoFmt prefixes the diagnostics.
func sfFindings(mp *ModulePass, pkg *Package, declKey FuncKey, region ast.Node,
	taint *sfTaintSet, eff *Effects, reported map[string]bool, whoFmt string) {

	report := func(pos token.Pos, format string, args ...any) {
		k := pkg.Path + "\x00" + pkg.Fset.Position(pos).String()
		if reported[k] {
			return
		}
		reported[k] = true
		mp.Reportf(pkg, pos, format, args...)
	}

	checkWrite := func(lhs ast.Expr) {
		root, layers, srcCall := sfLvalue(pkg, lhs)
		switch {
		case srcCall != "" && layers > 0:
			report(lhs.Pos(),
				"%s writes through the result of %s; oracle read results are shared and frozen — copy before mutating (append([]T(nil), s...))",
				whoFmt, shortKey(srcCall))
		case root != nil && taint.shared[root] && layers > 0:
			report(lhs.Pos(),
				"%s writes through %s, which aliases shared oracle memory; read-API results are frozen — copy before mutating (append([]T(nil), s...))",
				whoFmt, root.Name())
		case root != nil && taint.holds[root] && layers >= 2:
			report(lhs.Pos(),
				"%s writes through an element of %s, which holds shared oracle rows; read-API results are frozen — copy before mutating",
				whoFmt, root.Name())
		}
	}

	ast.Inspect(region, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(s.X)
		}
		return true
	})

	// ParamWrites rule: a shared value handed to a callee that writes
	// through that parameter mutates oracle memory one frame down.
	fe := eff.Of(declKey)
	if fe == nil {
		return
	}
	for _, c := range fe.Calls {
		if c.Pos < region.Pos() || c.Pos >= region.End() {
			continue
		}
		for _, obj := range c.Args {
			if obj != nil && taint.shared[obj] && eff.WritesThroughArg(c, obj) {
				report(c.Pos,
					"%s passes %s, which aliases shared oracle memory, to %s, which writes through it; copy before handing it to a mutating helper",
					whoFmt, obj.Name(), shortKey(c.Callee))
			}
		}
	}
}
