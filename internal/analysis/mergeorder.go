package analysis

import (
	"go/ast"
	"go/types"
)

// MergeOrder verifies that results fanned out through internal/parallel
// flow back through a deterministic merge. Worker goroutines complete in
// scheduler order, so any accumulation that depends on completion order —
// appending to a shared slice, inserting into a shared map, bumping a
// shared counter of float costs — makes the decision value depend on the
// OS scheduler, which is exactly the nondeterminism the paper's
// fixed-seed evaluation cannot tolerate (and -race may not even flag it
// when a mutex serializes the writes).
//
// For each call to parallel.ForEach/Map with a function-literal worker,
// every write the worker makes to a captured variable must either be
// index-addressed by the worker's index parameter (out[i] = v — each
// worker owns a distinct slot, merge order is the index order) or the
// captured slice must be explicitly sorted after the fan-out returns.
// Captured map writes are always flagged (insertion order is
// unrecoverable), as are workers passed by name (the body is not visible
// at the call site to verify).
//
// The parallel package itself is exempt: its internal error-collection
// slice is the index-addressed pattern this check mandates.
type MergeOrder struct{}

// Name implements Check.
func (MergeOrder) Name() string { return "mergeorder" }

// Doc implements Check.
func (MergeOrder) Doc() string {
	return "parallel.ForEach/Map workers must merge results via index-addressed slices or an explicit post-fan-out sort"
}

// Run implements PackageCheck.
func (MergeOrder) Run(p *Pass) {
	if p.Pkg.Base() == "parallel" {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := parallelCallee(p, call)
				if callee == "" || len(call.Args) == 0 {
					return true
				}
				worker := call.Args[len(call.Args)-1]
				lit, ok := ast.Unparen(worker).(*ast.FuncLit)
				if !ok {
					p.Reportf(worker.Pos(),
						"worker passed to parallel.%s by name; pass a function literal so the merge order is verifiable at the call site", callee)
					return true
				}
				checkWorker(p, fd, call, lit, callee)
				return true
			})
		}
	}
}

// parallelCallee returns "ForEach"/"Map" when call targets
// internal/parallel, else "".
func parallelCallee(p *Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	f, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || pkgPathBase(f.Pkg().Path()) != "parallel" {
		return ""
	}
	if f.Name() == "ForEach" || f.Name() == "Map" {
		return f.Name()
	}
	return ""
}

// checkWorker audits one worker literal's writes to captured state.
func checkWorker(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr, lit *ast.FuncLit, callee string) {
	idxObj := workerIndexParam(p, lit)
	flag := func(e ast.Expr, mapWrite bool, base types.Object) {
		if mapWrite {
			p.Reportf(e.Pos(),
				"parallel.%s worker writes captured map %s; insertion order is scheduler-dependent — collect into an index-addressed slice and build the map after the call", callee, base.Name())
			return
		}
		// A slice accumulated out of order is acceptable when explicitly
		// sorted after the fan-out returns.
		if sortedAfter(p, fd.Body, call.End(), base) {
			return
		}
		p.Reportf(e.Pos(),
			"parallel.%s worker writes captured %s in completion order; index it by the worker index or sort it after the call returns", callee, base.Name())
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				auditLvalue(p, lit, idxObj, lhs, flag)
			}
		case *ast.IncDecStmt:
			auditLvalue(p, lit, idxObj, s.X, flag)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok && id.Name == "delete" && isBuiltinIdent(p.Pkg, id) && len(s.Args) > 0 {
				auditLvalue(p, lit, idxObj, s.Args[0], flag)
			}
		}
		return true
	})
}

// workerIndexParam returns the object of the worker's index parameter
// (the first parameter of the literal), or nil when unnamed.
func workerIndexParam(p *Pass, lit *ast.FuncLit) types.Object {
	params := lit.Type.Params
	if params == nil || len(params.List) == 0 || len(params.List[0].Names) == 0 {
		return nil
	}
	return p.Pkg.Info.Defs[params.List[0].Names[0]]
}

// auditLvalue walks one assigned expression's spine. Writes rooted at a
// variable captured from outside the literal are reported via flag unless
// some index on the spine is addressed by the worker's index parameter.
func auditLvalue(p *Pass, lit *ast.FuncLit, idxObj types.Object, e ast.Expr, flag func(ast.Expr, bool, types.Object)) {
	orig := e
	indexed := false
	mapWrite := false
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			if t := p.TypeOf(x.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					mapWrite = true
				}
			}
			if idxObj != nil && mentionsObject(p, x.Index, idxObj) {
				indexed = true
			}
			e = x.X
		case *ast.Ident:
			obj := p.Pkg.Info.ObjectOf(x)
			if obj == nil || !capturedBy(lit, obj) {
				return // worker-local state is invisible outside
			}
			if indexed && !mapWrite {
				return // out[i] = v: each worker owns its slot
			}
			flag(orig, mapWrite, obj)
			return
		default:
			return
		}
	}
}

// capturedBy reports whether obj is declared outside the literal (a true
// capture, not a worker-local or the worker's own parameters).
func capturedBy(lit *ast.FuncLit, obj types.Object) bool {
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}

// mentionsObject reports whether expression e references obj.
func mentionsObject(p *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Pkg.Info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
