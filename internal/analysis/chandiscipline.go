package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// chandiscipline: worker channels in the decision packages must have a
// single, total lifecycle — exactly one closing function, a close that
// is proven on every exit path, no send reachable after the close, and
// consumer loops that terminate by the close, not by a counter.
//
// The multischeduler's commit pipeline hangs on exactly one channel
// invariant: every cell's done channel closes no matter how the cell's
// worker dies (panic, budget exhaustion, storm degradation), because
// the arbiter's wait blocks on it with no timeout. The supervised
// runtime makes "the worker always finishes" true dynamically; this
// check makes "finishing always closes" true statically, and keeps the
// surrounding discipline honest:
//
//   - Rule 1 (one owner): a send-capable channel FIELD declared in a
//     decision package (chan, []chan, [N]chan, map[...]chan) must be
//     closed by exactly one declared function. Zero closers means the
//     consumer can block forever; two mean a double-close panic is one
//     interleaving away. A make(chan) LOCAL whose value never escapes
//     its declaration must likewise be closed somewhere in it.
//   - Rule 2 (close on every exit): within the closing function, the
//     close must be reached on every exit path — the poolescape rule-A
//     walker, with close playing Put: deferred closes cover all later
//     exits, branch joins are pessimistic (unclosed on any path stays
//     unclosed), loop bodies are walked twice, panic is an exit whose
//     deferred closes still run.
//   - Rule 3 (no send after close): on any path through a function
//     unit, a send on a tracked channel after its close is a finding —
//     that send panics at runtime.
//   - Rule 4 (close-terminated loops): receiving from a tracked
//     channel inside a counted for loop (one with a condition) couples
//     the consumer to a worker count instead of the close protocol;
//     range over the channel, or block on a per-item channel, so
//     termination has exactly one source of truth.
//
// Ownership transfer is respected for locals: a channel returned,
// stored through a selector/index, sent, appended, or passed to a
// non-builtin call has a new owner, and the field rule (or the new
// owner's own package discipline) takes over. Receive-only fields
// (<-chan) are consumers by construction and never tracked.
type ChanDiscipline struct{}

// Name implements Check.
func (ChanDiscipline) Name() string { return "chandiscipline" }

// Doc implements Check.
func (ChanDiscipline) Doc() string {
	return "decision-package channels need exactly one closing function, close on every exit path, no send after close, close-terminated loops"
}

// cdChanType reports whether t is (or contains, through one level of
// slice/array/map) a send-capable channel.
func cdChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return u.Dir() != types.RecvOnly
	case *types.Slice:
		return cdChanType(u.Elem())
	case *types.Array:
		return cdChanType(u.Elem())
	case *types.Map:
		return cdChanType(u.Elem())
	}
	return false
}

// cdTarget resolves a channel-valued expression (a close argument, a
// send target, a receive operand) to its tracked identity: the short
// field key for struct-field channels, or the local object for idents.
// Index and paren layers collapse — ps.cellDone[c] IS the cellDone
// lifecycle.
func cdTarget(pkg *Package, e ast.Expr) (fieldKey string, local types.Object) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if owner, field := fieldOf(pkg, x); field != nil {
				return shortKey(fieldAccessKey(owner, field)), nil
			}
			return "", nil
		case *ast.Ident:
			return "", pkg.Info.ObjectOf(x)
		default:
			return "", nil
		}
	}
}

// cdCloseArg returns the argument of a builtin close call, or nil.
func cdCloseArg(pkg *Package, call *ast.CallExpr) ast.Expr {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" || len(call.Args) != 1 {
		return nil
	}
	if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	return call.Args[0]
}

// cdCloseSite is one close of a tracked field channel.
type cdCloseSite struct {
	fn  FuncKey
	pkg *Package
	pos token.Pos
}

// RunModule implements ModuleCheck.
func (ChanDiscipline) RunModule(mp *ModulePass) {
	// ---- Inventory: tracked channel fields of decision packages. ----
	type fieldDecl struct {
		key string
		pkg *Package
		pos token.Pos
	}
	var fieldOrder []fieldDecl
	tracked := make(map[string]bool)
	for _, pkg := range mp.Pkgs {
		if !decisionPackages[pkg.Base()] {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, fld := range st.Fields.List {
						if !cdChanType(pkg.Info.TypeOf(fld.Type)) {
							continue
						}
						for _, name := range fld.Names {
							key := pkg.Base() + "." + ts.Name.Name + "." + name.Name
							if !tracked[key] {
								tracked[key] = true
								fieldOrder = append(fieldOrder, fieldDecl{key: key, pkg: pkg, pos: name.Pos()})
							}
						}
					}
				}
			}
		}
	}

	// ---- Module-wide close sites of tracked fields. ----
	closes := make(map[string][]cdCloseSite)
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn := declKey(pkg, fd)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					arg := cdCloseArg(pkg, call)
					if arg == nil {
						return true
					}
					if key, _ := cdTarget(pkg, arg); key != "" && tracked[key] {
						closes[key] = append(closes[key], cdCloseSite{fn: fn, pkg: pkg, pos: call.Pos()})
					}
					return true
				})
			}
		}
	}

	// ---- Rule 1, fields: exactly one closing function. ----
	for _, fd := range fieldOrder {
		sites := closes[fd.key]
		if len(sites) == 0 {
			mp.Reportf(fd.pkg, fd.pos,
				"channel field %s has no closing function; a consumer blocking on it can hang forever — give it exactly one owner that closes it",
				fd.key)
			continue
		}
		fns := make(map[FuncKey]bool)
		for _, s := range sites {
			fns[s.fn] = true
		}
		if len(fns) > 1 {
			names := make([]string, 0, len(fns))
			for fn := range fns {
				names = append(names, shortKey(fn))
			}
			sort.Strings(names)
			for _, s := range sites {
				mp.Reportf(s.pkg, s.pos,
					"channel field %s is closed by multiple functions (%v); double close panics — exactly one function may own the close",
					fd.key, names)
			}
		}
	}

	// ---- Rules 1 (locals), 2, 3, 4: per declaration in decision
	// packages. ----
	for _, pkg := range mp.Pkgs {
		if !decisionPackages[pkg.Base()] {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				cdCheckDecl(mp, pkg, fd, tracked)
			}
		}
	}
}

// cdLocal is one tracked make(chan) local binding.
type cdLocal struct {
	obj     types.Object
	pos     token.Pos
	escaped bool
	closed  bool
}

// cdMakeChan reports whether e is a make(chan ...) expression.
func cdMakeChan(pkg *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) == 0 {
		return false
	}
	if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	t := pkg.Info.TypeOf(call.Args[0])
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	return ok && ch.Dir() != types.RecvOnly
}

// cdCheckDecl runs the per-declaration rules over one function and its
// literals.
func cdCheckDecl(mp *ModulePass, pkg *Package, fd *ast.FuncDecl, tracked map[string]bool) {
	// Locals: make(chan) bound to an ident anywhere in the declaration.
	locals := make(map[types.Object]*cdLocal)
	var localOrder []*cdLocal
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		if !cdMakeChan(pkg, rhs) {
			return
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := pkg.Info.ObjectOf(id)
		if obj == nil || locals[obj] != nil {
			return
		}
		l := &cdLocal{obj: obj, pos: rhs.Pos()}
		locals[obj] = l
		localOrder = append(localOrder, l)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if i < len(s.Lhs) {
					bind(s.Lhs[i], rhs)
				}
			}
		case *ast.ValueSpec:
			for i, v := range s.Values {
				if i < len(s.Names) {
					bind(s.Names[i], v)
				}
			}
		}
		return true
	})

	// Ownership-transfer (escape) scan: a local whose value leaves the
	// declaration is no longer ours to prove closed.
	if len(locals) > 0 {
		isLocal := func(e ast.Expr) *cdLocal {
			if id, ok := ast.Unparen(e).(*ast.Ident); ok {
				return locals[pkg.Info.ObjectOf(id)]
			}
			return nil
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ReturnStmt:
				for _, r := range s.Results {
					if l := isLocal(r); l != nil {
						l.escaped = true
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range s.Rhs {
					l := isLocal(rhs)
					if l == nil || i >= len(s.Lhs) {
						continue
					}
					if _, plain := ast.Unparen(s.Lhs[i]).(*ast.Ident); !plain {
						l.escaped = true // stored through a field/index/deref
					}
				}
			case *ast.SendStmt:
				if l := isLocal(s.Value); l != nil {
					l.escaped = true
				}
			case *ast.CompositeLit:
				for _, el := range s.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						el = kv.Value
					}
					if l := isLocal(el); l != nil {
						l.escaped = true
					}
				}
			case *ast.CallExpr:
				if cdCloseArg(pkg, s) != nil {
					return true
				}
				if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok {
					if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name != "append" {
						return true // len, cap: not a transfer
					}
				}
				for _, a := range s.Args {
					if l := isLocal(a); l != nil {
						l.escaped = true
					}
				}
			}
			return true
		})
	}

	// Function units: the declaration body plus every literal body, each
	// walked separately (a close inside a go-literal is proven over the
	// literal's own exits — that unit is the closer's whole lifetime).
	var units []*ast.BlockStmt
	units = append(units, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			units = append(units, fl.Body)
		}
		return true
	})
	for _, body := range units {
		cdWalkUnit(mp, pkg, body, units, tracked, locals)
	}

	// Rule 1, locals: a non-escaping channel local with no close
	// anywhere in the declaration.
	for _, l := range localOrder {
		if !l.escaped && !l.closed {
			mp.Reportf(pkg, l.pos,
				"channel %s is never closed in its owning function; close it (or transfer ownership explicitly) so consumers can terminate",
				l.obj.Name())
		}
	}

	// Rule 4: receives from tracked channels inside counted for loops.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond == nil {
			return true
		}
		ast.Inspect(loop.Body, func(m ast.Node) bool {
			ue, ok := m.(*ast.UnaryExpr)
			if !ok || ue.Op != token.ARROW {
				return true
			}
			key, obj := cdTarget(pkg, ue.X)
			if (key != "" && tracked[key]) || (obj != nil && locals[obj] != nil) {
				mp.Reportf(pkg, ue.Pos(),
					"receive from worker channel inside a counted loop; terminate consumer loops by closing the channel (range over it), not by a counter")
			}
			return true
		})
		return true
	})
}

// cdObl is one close obligation being path-tracked in a unit.
type cdObl struct {
	name   string // diagnostic name: field key or local ident
	field  string // tracked field key, "" for locals
	local  types.Object
	anchor token.Pos // report position: first close (fields) / binding (locals)
	leaked bool
}

// cdWalkUnit proves rule 2 (close on every exit) and rule 3 (no send
// after close) over one function unit, mirroring poolescape's rule-A
// walker with close in the role of Put.
func cdWalkUnit(mp *ModulePass, pkg *Package, body *ast.BlockStmt, units []*ast.BlockStmt,
	tracked map[string]bool, locals map[types.Object]*cdLocal) {

	// nested reports whether n belongs to a literal unit strictly inside
	// this one (those are walked as their own units). Units that CONTAIN
	// body — the declaration body around a literal unit — don't count, or
	// an inner unit would see all of its own nodes as foreign.
	nested := func(n ast.Node) bool {
		for _, u := range units {
			if u == body || u.Pos() < body.Pos() || u.End() > body.End() {
				continue
			}
			if u.Pos() <= n.Pos() && n.Pos() < u.End() {
				return true
			}
		}
		return false
	}

	// Obligations: every tracked channel this unit closes. Fields anchor
	// at their first close in the unit; locals at their binding.
	obls := make(map[string]*cdObl) // by identity string
	var order []*cdObl
	identOf := func(e ast.Expr) (string, bool) {
		key, obj := cdTarget(pkg, e)
		if key != "" && tracked[key] {
			return "f:" + key, true
		}
		if obj != nil && locals[obj] != nil {
			return "l:" + obj.Name(), true
		}
		return "", false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || nested(n) {
			return true
		}
		arg := cdCloseArg(pkg, call)
		if arg == nil {
			return true
		}
		id, ok := identOf(arg)
		if !ok {
			return true
		}
		key, obj := cdTarget(pkg, arg)
		if obj != nil {
			if l := locals[obj]; l != nil {
				l.closed = true
			}
		}
		if obls[id] == nil {
			o := &cdObl{anchor: call.Pos()}
			if key != "" {
				o.name, o.field = key, key
			} else {
				o.name, o.local = obj.Name(), obj
				if l := locals[obj]; l != nil {
					o.anchor = l.pos
				}
			}
			obls[id] = o
			order = append(order, o)
		}
		return true
	})
	if len(obls) == 0 {
		return
	}

	// closeTargets resolves the obligations closed by the closes under
	// n (descending into deferred closure bodies).
	closeTargets := func(n ast.Node) []*cdObl {
		var out []*cdObl
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if arg := cdCloseArg(pkg, call); arg != nil {
				if id, ok := identOf(arg); ok && obls[id] != nil {
					out = append(out, obls[id])
				}
			}
			return true
		})
		return out
	}
	sendTargets := func(n ast.Node) []struct {
		obl *cdObl
		pos token.Pos
	} {
		var out []struct {
			obl *cdObl
			pos token.Pos
		}
		ast.Inspect(n, func(m ast.Node) bool {
			ss, ok := m.(*ast.SendStmt)
			if !ok || nested(m) {
				return true
			}
			if id, ok := identOf(ss.Chan); ok && obls[id] != nil {
				out = append(out, struct {
					obl *cdObl
					pos token.Pos
				}{obls[id], ss.Arrow})
			}
			return true
		})
		return out
	}

	type state struct {
		open     map[*cdObl]bool // true: not yet closed on this path
		deferred map[*cdObl]bool
		closed   map[*cdObl]bool // close already executed on this path
	}
	clone := func(s *state) *state {
		c := &state{open: make(map[*cdObl]bool, len(s.open)),
			deferred: make(map[*cdObl]bool, len(s.deferred)),
			closed:   make(map[*cdObl]bool, len(s.closed))}
		for k, v := range s.open {
			c.open[k] = v
		}
		for k, v := range s.deferred {
			c.deferred[k] = v
		}
		for k, v := range s.closed {
			c.closed[k] = v
		}
		return c
	}
	// join: unclosed on any path stays unclosed; a defer registered on
	// only some paths is not guaranteed; closed on any path may have
	// been closed (pessimistic for send-after-close).
	join := func(dst *state, srcs ...*state) {
		for _, s := range srcs {
			for o, open := range s.open {
				if open {
					dst.open[o] = true
				}
			}
			for o, c := range s.closed {
				if c {
					dst.closed[o] = true
				}
			}
		}
		for o := range dst.deferred {
			for _, s := range srcs {
				if !s.deferred[o] {
					delete(dst.deferred, o)
					break
				}
			}
		}
	}
	exit := func(s *state) {
		for o, open := range s.open {
			if open && !s.deferred[o] {
				o.leaked = true
			}
		}
	}

	var walk func(s ast.Stmt, st *state)
	walkList := func(list []ast.Stmt, st *state) {
		for _, s := range list {
			walk(s, st)
		}
	}
	handleSimple := func(n ast.Node, st *state) {
		for _, snd := range sendTargets(n) {
			if st.closed[snd.obl] {
				mp.Reportf(pkg, snd.pos,
					"send on %s after it was closed on this path; a send on a closed channel panics",
					snd.obl.name)
			}
		}
		for _, o := range closeTargets(n) {
			st.open[o] = false
			st.closed[o] = true
		}
	}
	walk = func(s ast.Stmt, st *state) {
		switch x := s.(type) {
		case *ast.BlockStmt:
			walkList(x.List, st)
		case *ast.LabeledStmt:
			walk(x.Stmt, st)
		case *ast.ExprStmt:
			handleSimple(x, st)
			if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
					if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
						exit(st) // deferred closes run during unwinding
						for o := range st.open {
							st.open[o] = false
						}
					}
				}
			}
		case *ast.SendStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.DeclStmt:
			handleSimple(x, st)
		case *ast.DeferStmt:
			// A deferred send is reported only when the channel is
			// already closed at registration; deferred closes cover
			// every later exit of this path.
			for _, snd := range sendTargets(x) {
				if st.closed[snd.obl] {
					mp.Reportf(pkg, snd.pos,
						"send on %s after it was closed on this path; a send on a closed channel panics",
						snd.obl.name)
				}
			}
			for _, o := range closeTargets(x) {
				st.deferred[o] = true
			}
		case *ast.ReturnStmt:
			exit(st)
			for o := range st.open {
				st.open[o] = false // path ends here
			}
		case *ast.IfStmt:
			if x.Init != nil {
				walk(x.Init, st)
			}
			thenSt := clone(st)
			walk(x.Body, thenSt)
			elseSt := clone(st)
			if x.Else != nil {
				walk(x.Else, elseSt)
			}
			join(st, thenSt, elseSt)
		case *ast.ForStmt:
			if x.Init != nil {
				walk(x.Init, st)
			}
			for i := 0; i < 2; i++ {
				bodySt := clone(st)
				walk(x.Body, bodySt)
				if x.Post != nil {
					walk(x.Post, bodySt)
				}
				join(st, bodySt)
			}
		case *ast.RangeStmt:
			for i := 0; i < 2; i++ {
				bodySt := clone(st)
				walk(x.Body, bodySt)
				join(st, bodySt)
			}
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			var bodyList []ast.Stmt
			switch y := x.(type) {
			case *ast.SwitchStmt:
				if y.Init != nil {
					walk(y.Init, st)
				}
				bodyList = y.Body.List
			case *ast.TypeSwitchStmt:
				if y.Init != nil {
					walk(y.Init, st)
				}
				bodyList = y.Body.List
			case *ast.SelectStmt:
				bodyList = y.Body.List
			}
			branches := []*state{clone(st)} // no-case-taken path
			for _, cc := range bodyList {
				br := clone(st)
				switch c := cc.(type) {
				case *ast.CaseClause:
					walkList(c.Body, br)
				case *ast.CommClause:
					walkList(c.Body, br)
				}
				branches = append(branches, br)
			}
			join(st, branches...)
		}
	}

	st := &state{open: make(map[*cdObl]bool), deferred: make(map[*cdObl]bool), closed: make(map[*cdObl]bool)}
	for _, o := range order {
		st.open[o] = true
	}
	walkList(body.List, st)
	exit(st) // fall off the end

	for _, o := range order {
		if o.leaked {
			mp.Reportf(pkg, o.anchor,
				"%s may not be closed on every exit path of this function; defer the close (or close before each return) so consumers never block on a dead producer",
				o.name)
		}
	}
}
