package analysis

import (
	"sort"
	"strings"
)

// purity: every function reachable from the netstate oracle's read API
// must be write-free on monitored shared state, except the blessed
// memo-install sites.
//
// ROADMAP item 2 runs N optimistic scheduler goroutines against one
// shared Oracle. Its read API is advertised as safe for concurrent use
// precisely because reads either hit immutable published tables or
// install memo entries through atomic publishes and lock-guarded shard
// fills. Any OTHER write reachable from a read — a stray counter, a
// "quick fix" cache poke, a liveness flip — is a data race the type
// system cannot see and the race detector only catches if a test happens
// to interleave it.
//
// The check floods the static call graph from the read-API roots
// (puRoots), then inspects every reached function's direct write effects
// (effects.go). A write to a field of a monitored owner (puMonitored) is
// a finding unless the (function, field) pair appears in puBlessed — the
// single source-of-truth table of memo-install sites, the v3 analogue of
// epochbump's ebBlessed — or the field is a registered observability
// counter (puCounters).
//
// Like all index-based checks this is keyed on package-base short keys so
// the golden fixtures (fixture/netstate) exercise the same tables as the
// real module.

// puRoots is the oracle read API: the entry points scheduler goroutines
// may call concurrently.
var puRoots = map[string]bool{
	"netstate.(Oracle).Dist":          true,
	"netstate.(Oracle).DistRow":       true,
	"netstate.(Oracle).ShortestPath":  true,
	"netstate.(Oracle).PathDAG":       true,
	"netstate.(Oracle).NearestByDist": true,
	"netstate.(Oracle).TypeTemplate":  true,
	"netstate.(Oracle).BestRoute":     true,
	"netstate.(Oracle).RouteCost":     true,
	"netstate.(Oracle).Headroom":      true,
}

// puMonitored is the set of struct owners whose fields constitute shared
// scheduler state. Cluster and Controller state is included even though
// no read path touches it today: a future read path that does is exactly
// the bug this check exists to catch.
var puMonitored = map[string]bool{
	"netstate.Oracle":     true,
	"netstate.routeShard": true,
	"topology.Topology":   true,
	"cluster.Cluster":     true,
	"cluster.serverState": true,
	"controller.Controller": true,
}

// puCounters are monotonic observability counters (atomic, never read
// back on a decision path) that reads may bump freely.
var puCounters = map[string]bool{
	// The live module stripes the pair-route counters (routeStats); the
	// scalar routeHits/routeMisses keys remain for the golden fixture,
	// which models the plain-counter idiom.
	"netstate.Oracle.routeStats":      true,
	"netstate.routeStatStripe.hits":   true,
	"netstate.routeStatStripe.misses": true,
	"netstate.Oracle.routeHits":       true,
	"netstate.Oracle.routeMisses":     true,
}

// puBlessed maps a function short key to the set of monitored field short
// keys it is allowed to install. This is the complete memo-install
// inventory of the oracle: atomic publishes, lock-guarded map/shard
// fills, and the headroom refresh that runs under headMu. Adding an entry
// requires demonstrating the install is atomic or lock-guarded AND that
// the installed value is immutable afterwards (publishfreeze enforces the
// latter for atomic pointers).
var puBlessed = map[string]map[string]bool{
	// ensureLive tears down parameter-derived caches after a liveness
	// change, under the revive mutex (double-checked by callers).
	"netstate.(Oracle).ensureLive": {
		"netstate.Oracle.distRows":  true,
		"netstate.Oracle.paths":     true,
		"netstate.Oracle.dags":      true,
		"netstate.Oracle.templates": true,
		"netstate.Oracle.bands":     true,
		"netstate.Oracle.byType":    true,
		"netstate.Oracle.stages":    true,
		"netstate.Oracle.access":    true,
		"netstate.Oracle.liveSeen":  true,
	},
	// Per-source distance rows: atomic-pointer publish of a fresh row.
	"netstate.(Oracle).DistRow": {"netstate.Oracle.distRows": true},
	// Pair-keyed memo maps, filled under pairMu.
	"netstate.(Oracle).ShortestPath":  {"netstate.Oracle.paths": true},
	"netstate.(Oracle).PathDAG":       {"netstate.Oracle.dags": true},
	"netstate.(Oracle).TypeTemplate":  {"netstate.Oracle.templates": true},
	"netstate.(Oracle).PathBandwidth": {"netstate.Oracle.bands": true},
	// Type-keyed memo maps, filled under typeMu.
	"netstate.(Oracle).SwitchesOfType":    {"netstate.Oracle.byType": true},
	"netstate.(Oracle).StagesForTemplate": {"netstate.Oracle.stages": true},
	// Access-switch table: atomic-pointer publish.
	"netstate.(Oracle).AccessSwitch": {"netstate.Oracle.access": true},
	// Switch-distance table: atomic publish double-checked under swMu.
	"netstate.(Oracle).switchTable": {"netstate.Oracle.swTab": true},
	// Pair-route cache: dense atomic slots plus lock-striped shards.
	"netstate.(Oracle).routeInit": {
		"netstate.Oracle.routeServerIdx": true,
		"netstate.Oracle.routeNumServers": true,
		"netstate.Oracle.routeDense":      true,
		"netstate.Oracle.routeShards":     true,
		"netstate.routeShard.m":           true,
	},
	"netstate.(Oracle).routeStore": {
		"netstate.Oracle.routeDense": true,
		"netstate.routeShard.m":      true,
	},
	"netstate.(Oracle).clearPairRoutes": {
		"netstate.Oracle.routeDense": true,
		"netstate.routeShard.m":      true,
	},
	// Headroom snapshot refresh, under headMu.
	"netstate.(Oracle).refreshHeadroomLocked": {
		"netstate.Oracle.headroom":     true,
		"netstate.Oracle.loadSnapshot": true,
		"netstate.Oracle.headEpoch":    true,
		"netstate.Oracle.headValid":    true,
	},
	// Topology BFS memo: single-writer by contract, cleared on liveness
	// flips; reads of a shared Topology behind the oracle are serialized
	// by the oracle's own install locks.
	"topology.(Topology).bfs": {"topology.Topology.dist": true},
}

// Purity is the v3 read-path purity check.
type Purity struct{}

// Name implements Check.
func (Purity) Name() string { return "purity" }

// Doc implements Check.
func (Purity) Doc() string {
	return "oracle read paths must not write monitored shared state outside blessed memo-install sites"
}

// RunModule implements ModuleCheck.
func (Purity) RunModule(mp *ModulePass) {
	eff := mp.Index.Effects()

	// Flood from the read-API roots, remembering one representative root
	// per reached function for the diagnostic.
	via := make(map[FuncKey]string)
	var queue []FuncKey
	keys := make([]FuncKey, 0, len(mp.Index.Funcs))
	for k := range mp.Index.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if puRoots[shortKey(k)] {
			via[k] = shortKey(k)
			queue = append(queue, k)
		}
	}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		info := mp.Index.Funcs[k]
		if info == nil {
			continue
		}
		for _, c := range info.Calls {
			if _, seen := via[c.Callee]; !seen {
				via[c.Callee] = via[k]
				queue = append(queue, c.Callee)
			}
		}
	}

	reached := make([]FuncKey, 0, len(via))
	for k := range via {
		reached = append(reached, k)
	}
	sort.Strings(reached)

	for _, k := range reached {
		fe := eff.Of(k)
		info := mp.Index.Funcs[k]
		if fe == nil || info == nil {
			continue
		}
		blessed := puBlessed[shortKey(k)]
		for _, w := range fe.Writes {
			fld := shortKey(w.Field)
			dot := strings.LastIndexByte(fld, '.')
			if dot < 0 {
				continue
			}
			owner := fld[:dot]
			if !puMonitored[owner] || puCounters[fld] {
				continue
			}
			if blessed[fld] {
				continue
			}
			mp.Reportf(info.Pkg, w.Pos,
				"%s writes %s on the oracle read path (reachable from %s); read paths must be pure — install caches only through a site blessed in puBlessed (purity.go)",
				shortKey(k), fld, via[k])
		}
	}
}
