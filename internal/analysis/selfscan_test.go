package analysis_test

import (
	"testing"

	"repro/internal/analysis"
)

// TestRepoSelfScan runs the full check suite over every non-test package
// in the module and fails on any unsuppressed finding or stale
// suppression. This is the same gate as `make lint` (which runs with
// -prune), but wired into `go test ./...` so it holds even when make is
// never invoked.
func TestRepoSelfScan(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root, modPath, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatalf("ModuleRoot: %v", err)
	}
	loader := analysis.NewLoader()
	pkgs, err := loader.LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule(%s): %v", root, err)
	}
	// Sanity: the walk must have reached the decision packages, or a
	// silently skipped directory would make this test pass vacuously.
	seen := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		seen[p.Path] = true
	}
	for _, want := range []string{
		modPath + "/internal/core",
		modPath + "/internal/scheduler",
		modPath + "/internal/controller",
		modPath + "/internal/netstate",
		modPath + "/internal/experiments",
	} {
		if !seen[want] {
			t.Errorf("self-scan did not load %s", want)
		}
	}

	findings := analysis.Run(pkgs, analysis.All())
	for _, f := range analysis.Unsuppressed(findings) {
		t.Errorf("unsuppressed finding: %s", f)
	}

	// Suppressions must stay attached to a live finding: a //taalint:
	// comment that no longer suppresses anything is a stale escape hatch
	// that would silently excuse the next real violation on that line.
	for _, s := range analysis.StaleSuppressions(pkgs, findings, analysis.All()) {
		t.Errorf("stale suppression (remove it): %s", s)
	}
}
