package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// poolescape: objects drawn from a sync.Pool, and buffers backed by the
// registered slab allocators, must be proven either returned to the pool
// on every exit path or unreachable from return values and outward
// stores.
//
// PR-6 made the hot wave loop allocation-free by reusing scratch: the
// netstate DP buffers (dpPool), the controller's feasible-candidate pool,
// core's assignScratch and stablematch's Matcher slabs. The invariant
// that makes reuse safe is strictly one of lifetime: slab memory may flow
// anywhere WITHIN a call (re-sliced, handed to helpers, swapped), but
// must never be reachable from anything that outlives it — a Result, a
// returned slice, a captured goroutine. One `return sc.grades[:n]`
// instead of a copy and the next wave silently overwrites a caller's
// data. This check proves the discipline per function:
//
//   - Rule A (Put balance), per function unit (a declaration or one of
//     its function literals): every sync.Pool.Get must reach a Put on
//     every exit path — deferred Puts cover all later exits, branch joins
//     are pessimistic (held if held on any path), loop bodies are walked
//     twice, and an explicit panic is an exit (defers still run).
//   - Rule B (escape), flat over the whole declaration including
//     closures: pooled objects and chains rooted at registered slab
//     fields (peSlabFields) are tainted; taint flows through re-slicing,
//     copies, composite literals, append-from and calls that take tainted
//     arguments and return reference-like values (growFloats and friends
//     return views of their argument). A finding is any tainted return, a
//     tainted store through a parameter/receiver/global that is not
//     itself a registered slab field, a tainted channel send, or a
//     tainted argument to a go statement.
//
// Writing tainted memory into a registered slab field is re-registration,
// not escape (m.free = free[:0]); writing into a local container only
// taints the container, and the rules above decide whether THAT escapes.
// Intraprocedural per-function reasoning stays sound compositionally
// because the same rules apply inside every helper: a helper cannot leak
// its argument without itself being flagged, so callers only need the
// call-result taint rule.

// peSlabFields registers the long-lived reusable slab allocators: fields
// whose backing arrays persist across calls by design. Chains rooted here
// are tainted; stores back into them are allowed.
var peSlabFields = map[string]bool{
	"stablematch.Matcher.rankBack":    true,
	"stablematch.Matcher.hostRank":    true,
	"stablematch.Matcher.blackBack":   true,
	"stablematch.Matcher.blacklist":   true,
	"stablematch.Matcher.rejectedTop": true,
	"stablematch.Matcher.next":        true,
	"stablematch.Matcher.used":        true,
	"stablematch.Matcher.tenants":     true,
	"stablematch.Matcher.free":        true,
}

// PoolEscape is the v3 pool/slab lifetime check.
type PoolEscape struct{}

// Name implements Check.
func (PoolEscape) Name() string { return "poolescape" }

// Doc implements Check.
func (PoolEscape) Doc() string {
	return "sync.Pool objects must be Put on every exit path and pool/slab memory must not escape the call"
}

// RunModule implements ModuleCheck.
func (PoolEscape) RunModule(mp *ModulePass) {
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				peCheckDecl(mp, pkg, fd)
			}
		}
	}
}

// peGet is one tracked Pool.Get binding.
type peGet struct {
	pos    token.Pos
	obj    types.Object
	leaked bool
}

func peCheckDecl(mp *ModulePass, pkg *Package, fd *ast.FuncDecl) {
	// ---- Rule A: Put balance, per function unit. ----
	var units []*ast.BlockStmt
	units = append(units, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			units = append(units, fl.Body)
		}
		return true
	})
	var pooled []types.Object // every pooled object, for rule B seeding
	for _, body := range units {
		pooled = append(pooled, peRuleA(mp, pkg, body, units)...)
	}

	// ---- Rule B: taint and escape, flat over the declaration. ----
	peRuleB(mp, pkg, fd, pooled)
}

// peIsPoolMethod reports whether call is sync.Pool method name on any
// receiver expression.
func peIsPoolMethod(pkg *Package, call *ast.CallExpr, name string) (recv ast.Expr, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != name {
		return nil, false
	}
	t := pkg.Info.TypeOf(sel.X)
	if t == nil {
		return nil, false
	}
	named, isNamed := derefType(t).(*types.Named)
	if !isNamed {
		return nil, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" || obj.Name() != "Pool" {
		return nil, false
	}
	return sel.X, true
}

// peGetCall unwraps an expression to a Pool.Get call, looking through
// parens and type assertions (pool.Get().(*scratch)).
func peGetCall(pkg *Package, e ast.Expr) *ast.CallExpr {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	if _, isGet := peIsPoolMethod(pkg, call, "Get"); !isGet {
		return nil
	}
	return call
}

// peRuleA walks one function unit proving every Get reaches a Put on
// every exit path. Nested literal bodies (their own units) are skipped.
// It returns the pooled objects found, for rule B seeding.
func peRuleA(mp *ModulePass, pkg *Package, body *ast.BlockStmt, units []*ast.BlockStmt) []types.Object {
	nested := func(n ast.Node) bool {
		for _, u := range units {
			if u != body && u.Pos() <= n.Pos() && n.Pos() < u.End() {
				return true
			}
		}
		return false
	}

	// Pre-pass: find Get bindings and unbound Gets in this unit.
	gets := make(map[types.Object]*peGet)
	bound := make(map[*ast.CallExpr]bool)
	var order []*peGet
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || nested(n) {
			return true
		}
		for i, rhs := range as.Rhs {
			call := peGetCall(pkg, rhs)
			if call == nil || i >= len(as.Lhs) {
				continue
			}
			id, isID := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !isID {
				continue
			}
			obj := pkg.Info.ObjectOf(id)
			if obj == nil {
				continue
			}
			bound[call] = true
			g := &peGet{pos: call.Pos(), obj: obj}
			gets[obj] = g
			order = append(order, g)
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || nested(n) || bound[call] {
			return true
		}
		if _, isGet := peIsPoolMethod(pkg, call, "Get"); isGet {
			mp.Reportf(pkg, call.Pos(),
				"result of Pool.Get is not bound to a variable; taalint cannot prove it returns to the pool")
		}
		return true
	})

	var pooledObjs []types.Object
	for obj := range gets {
		pooledObjs = append(pooledObjs, obj)
	}
	if len(gets) == 0 {
		return pooledObjs
	}

	// putTarget resolves a Put call's released object, looking inside a
	// deferred closure body too (defer func() { pool.Put(x) }()).
	putTargets := func(n ast.Node) []*peGet {
		var out []*peGet
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, isPut := peIsPoolMethod(pkg, call, "Put"); isPut && len(call.Args) == 1 {
				if obj := rootIdentObject(pkg, call.Args[0]); obj != nil {
					if g := gets[obj]; g != nil {
						out = append(out, g)
					}
				}
			}
			return true
		})
		return out
	}

	type state struct {
		held     map[*peGet]bool
		deferred map[*peGet]bool
	}
	clone := func(s *state) *state {
		c := &state{held: make(map[*peGet]bool, len(s.held)), deferred: make(map[*peGet]bool, len(s.deferred))}
		for k, v := range s.held {
			c.held[k] = v
		}
		for k, v := range s.deferred {
			c.deferred[k] = v
		}
		return c
	}
	// join: held on any path stays held; a defer registered on only some
	// paths is not guaranteed to run.
	join := func(dst *state, srcs ...*state) {
		for _, s := range srcs {
			for g, h := range s.held {
				if h {
					dst.held[g] = true
				}
			}
		}
		for g := range dst.deferred {
			for _, s := range srcs {
				if !s.deferred[g] {
					delete(dst.deferred, g)
					break
				}
			}
		}
	}
	exit := func(s *state) {
		for g, h := range s.held {
			if h && !s.deferred[g] {
				g.leaked = true
			}
		}
	}

	var walk func(s ast.Stmt, st *state)
	walkList := func(list []ast.Stmt, st *state) {
		for _, s := range list {
			walk(s, st)
		}
	}
	walk = func(s ast.Stmt, st *state) {
		switch x := s.(type) {
		case *ast.BlockStmt:
			walkList(x.List, st)
		case *ast.LabeledStmt:
			walk(x.Stmt, st)
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if call := peGetCall(pkg, rhs); call != nil && i < len(x.Lhs) {
					if id, ok := ast.Unparen(x.Lhs[i]).(*ast.Ident); ok {
						if g := gets[pkg.Info.ObjectOf(id)]; g != nil {
							st.held[g] = true
						}
					}
				}
			}
		case *ast.ExprStmt:
			for _, g := range putTargets(x) {
				st.held[g] = false
			}
			if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
					if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
						exit(st) // deferred Puts run during panic unwinding
						for g := range st.held {
							st.held[g] = false
						}
					}
				}
			}
		case *ast.DeferStmt:
			for _, g := range putTargets(x) {
				st.deferred[g] = true
			}
		case *ast.ReturnStmt:
			exit(st)
			for g := range st.held {
				st.held[g] = false // unreachable afterwards on this path
			}
		case *ast.IfStmt:
			if x.Init != nil {
				walk(x.Init, st)
			}
			thenSt := clone(st)
			walk(x.Body, thenSt)
			elseSt := clone(st)
			if x.Else != nil {
				walk(x.Else, elseSt)
			}
			join(st, thenSt, elseSt)
		case *ast.ForStmt:
			if x.Init != nil {
				walk(x.Init, st)
			}
			// Two passes: effects of one iteration feed the next.
			for i := 0; i < 2; i++ {
				bodySt := clone(st)
				walk(x.Body, bodySt)
				if x.Post != nil {
					walk(x.Post, bodySt)
				}
				join(st, bodySt)
			}
		case *ast.RangeStmt:
			for i := 0; i < 2; i++ {
				bodySt := clone(st)
				walk(x.Body, bodySt)
				join(st, bodySt)
			}
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			var bodyList []ast.Stmt
			switch y := x.(type) {
			case *ast.SwitchStmt:
				if y.Init != nil {
					walk(y.Init, st)
				}
				bodyList = y.Body.List
			case *ast.TypeSwitchStmt:
				if y.Init != nil {
					walk(y.Init, st)
				}
				bodyList = y.Body.List
			case *ast.SelectStmt:
				bodyList = y.Body.List
			}
			branches := []*state{clone(st)} // no-case-taken path
			for _, cc := range bodyList {
				br := clone(st)
				switch c := cc.(type) {
				case *ast.CaseClause:
					walkList(c.Body, br)
				case *ast.CommClause:
					walkList(c.Body, br)
				}
				branches = append(branches, br)
			}
			join(st, branches...)
		}
	}

	st := &state{held: make(map[*peGet]bool), deferred: make(map[*peGet]bool)}
	walkList(body.List, st)
	exit(st) // fall off the end

	for _, g := range order {
		if g.leaked {
			mp.Reportf(pkg, g.pos,
				"pooled %s may not be returned to its pool on every exit path; defer the Put or Put before each return",
				g.obj.Name())
		}
	}
	return pooledObjs
}

// peRefLike reports whether a value of type t can carry references to
// slab memory: pointers, slices, maps, chans, funcs, interfaces, and
// aggregates containing them. Strings are immutable and scalar-like.
func peRefLike(t types.Type, seen map[types.Type]bool) bool {
	if t == nil {
		return false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if peRefLike(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return peRefLike(u.Elem(), seen)
	}
	return false
}

// peRuleB runs the flat taint/escape analysis over one declaration.
func peRuleB(mp *ModulePass, pkg *Package, fd *ast.FuncDecl, pooled []types.Object) {
	tainted := make(map[types.Object]bool)
	for _, obj := range pooled {
		tainted[obj] = true
	}

	// chainTainted: does the expression's value chain reach slab memory?
	var chainTainted func(e ast.Expr) bool
	chainTainted = func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.ParenExpr:
			return chainTainted(x.X)
		case *ast.Ident:
			return tainted[pkg.Info.ObjectOf(x)]
		case *ast.StarExpr:
			return chainTainted(x.X)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				return chainTainted(x.X)
			}
			return false
		case *ast.IndexExpr:
			return chainTainted(x.X)
		case *ast.SliceExpr:
			return chainTainted(x.X)
		case *ast.SelectorExpr:
			if owner, field := fieldOf(pkg, x); field != nil {
				if peSlabFields[shortKey(fieldAccessKey(owner, field))] {
					return true
				}
			}
			return chainTainted(x.X)
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if chainTainted(el) {
					return true
				}
			}
		case *ast.TypeAssertExpr:
			return chainTainted(x.X)
		case *ast.CallExpr:
			// Conversions share backing ([]T(x)); append shares arg0's
			// backing; other calls may return views of any argument (the
			// grow* helper shape).
			if tv, ok := pkg.Info.Types[x.Fun]; ok && tv.IsType() {
				if len(x.Args) == 1 {
					return chainTainted(x.Args[0])
				}
				return false
			}
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					if id.Name == "append" && len(x.Args) > 0 {
						return chainTainted(x.Args[0])
					}
					return false // len, cap, min, max...
				}
			}
			for _, a := range x.Args {
				if chainTainted(a) && peRefLike(pkg.Info.TypeOf(a), nil) {
					return true
				}
			}
		}
		return false
	}
	// taintedExpr: the chain reaches slab memory AND the value itself can
	// carry a reference (reading a scalar element launders the taint).
	taintedExpr := func(e ast.Expr) bool {
		return chainTainted(e) && peRefLike(pkg.Info.TypeOf(e), nil)
	}

	// lvalueInfo walks an lvalue spine: root object, nontrivial (writes
	// through, not rebinds), and whether any selector on the spine is a
	// registered slab field (re-registration).
	lvalueInfo := func(e ast.Expr) (root types.Object, nontrivial, slab bool) {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.StarExpr:
				nontrivial = true
				e = x.X
			case *ast.IndexExpr:
				nontrivial = true
				e = x.X
			case *ast.SelectorExpr:
				nontrivial = true
				if owner, field := fieldOf(pkg, x); field != nil {
					if peSlabFields[shortKey(fieldAccessKey(owner, field))] {
						slab = true
					}
				}
				e = x.X
			case *ast.Ident:
				root = pkg.Info.ObjectOf(x)
				return
			default:
				return
			}
		}
	}

	// Formal slots and named results: roots that outlive the call body.
	outlives := make(map[types.Object]bool)
	addFields := func(fl *ast.FieldList) []types.Object {
		var objs []types.Object
		if fl == nil {
			return nil
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					outlives[obj] = true
					objs = append(objs, obj)
				}
			}
		}
		return objs
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	namedResults := addFields(fd.Type.Results)
	nonLocal := func(obj types.Object) bool {
		if obj == nil {
			return false
		}
		return outlives[obj] || obj.Parent() == pkg.Pkg.Scope()
	}

	// Taint propagation to fixpoint: copies, container stores, ranges.
	for changed := true; changed; {
		changed = false
		taint := func(obj types.Object) {
			if obj != nil && !tainted[obj] {
				tainted[obj] = true
				changed = true
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					if i >= len(s.Rhs) {
						break
					}
					if !taintedExpr(s.Rhs[i]) {
						continue
					}
					root, nontrivial, slab := lvalueInfo(lhs)
					if root == nil || slab {
						continue
					}
					if !nontrivial || !nonLocal(root) {
						// Rebinding taints the variable; a store into a
						// local container taints the container.
						taint(root)
					}
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					if i < len(s.Values) && taintedExpr(s.Values[i]) {
						taint(pkg.Info.Defs[name])
					}
				}
			case *ast.RangeStmt:
				if s.Value != nil && chainTainted(s.X) {
					if id, ok := ast.Unparen(s.Value).(*ast.Ident); ok && peRefLike(pkg.Info.TypeOf(id), nil) {
						taint(pkg.Info.ObjectOf(id))
					}
				}
			}
			return true
		})
	}

	// Escape detection.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			if len(s.Results) == 0 {
				for _, obj := range namedResults {
					if tainted[obj] {
						mp.Reportf(pkg, s.Pos(),
							"named result %s carries pool/slab-backed memory out of the call; copy into a fresh allocation",
							obj.Name())
					}
				}
				return true
			}
			for _, r := range s.Results {
				if taintedExpr(r) {
					mp.Reportf(pkg, r.Pos(),
						"return value reaches pool/slab-backed memory; pooled buffers must not outlive the call — copy into a fresh allocation")
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if i >= len(s.Rhs) || !taintedExpr(s.Rhs[i]) {
					continue
				}
				root, nontrivial, slab := lvalueInfo(lhs)
				if slab || root == nil || !nontrivial {
					continue
				}
				if nonLocal(root) {
					mp.Reportf(pkg, lhs.Pos(),
						"pool/slab-backed memory stored through %s, which outlives this call; copy first or store into a registered slab field (peSlabFields)",
						root.Name())
				}
			}
		case *ast.SendStmt:
			if taintedExpr(s.Value) {
				mp.Reportf(pkg, s.Value.Pos(),
					"pool/slab-backed memory sent on a channel; the receiver outlives this call — copy into a fresh allocation")
			}
		case *ast.GoStmt:
			for _, a := range s.Call.Args {
				if taintedExpr(a) {
					mp.Reportf(pkg, a.Pos(),
						"pool/slab-backed memory passed to a goroutine that may outlive this call; copy into a fresh allocation")
				}
			}
		}
		return true
	})
}
