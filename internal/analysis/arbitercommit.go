package analysis

import (
	"go/ast"
	"sort"
	"strings"
)

// arbitercommit: no cluster/controller mutator — and no direct write to
// their state — may be reachable from a goroutine launched in the
// multisched package.
//
// The sharded scheduler's determinism argument (DESIGN.md §10) rests on a
// single structural invariant: shard workers SPECULATE and the arbiter
// COMMITS. Workers may read the oracle's concurrent API, the locator, and
// prefetched immutable policy objects; every Install, Uninstall, Place —
// anything that moves controller or cluster state — must run on the
// scheduling goroutine, through the arbiter, in canonical flow order. One
// mutation from a worker and outputs stop being Float64bits-identical
// across shard counts (and -race starts firing, but only when a test
// happens to interleave it). This check pins the invariant statically.
//
// Mechanics: the check seeds the transitive call closure from every
// worker entry point in packages whose base name is "multisched" —
//
//   - the callee of every `go` statement, and every call made inside a
//     `go func() { ... }()` literal;
//   - every function literal passed to a parallel fan-out entry point
//     (acPoolEntrypoints): those literals run on pool worker goroutines.
//
// It then walks the closure over the static call graph (index.go). A
// finding is any call edge whose callee is a blessed mutator
// (acMutators), and any direct write — plain or atomic, including writes
// inside nested literals (effects.go attribution) — to a field of a
// monitored owner (acMonitoredOwners) from a worker-reachable function.
//
// The arbiter's own methods call the same mutators legitimately: they are
// never launched with `go`, so they enter the closure only if a worker
// path actually reaches them — which is exactly the bug to report.
//
// Like all index-based checks the tables key on package-base short forms,
// and — because the golden fixture is a single package declaring its own
// miniature Controller/Cluster — mutator methods match on the
// "(Receiver).Method" suffix, gated by acMutatorPkgs so an unrelated
// type that happens to be called Controller elsewhere cannot collide.

// acMutators is the blessed-mutator inventory: the controller/cluster
// methods that move scheduler-visible state. Keyed "(Receiver).Method".
var acMutators = map[string]bool{
	"(Controller).Install":       true,
	"(Controller).Uninstall":     true,
	"(Controller).Reset":         true,
	"(Controller).AdoptIfCheaper": true,
	"(Cluster).Place":             true,
	"(Cluster).Unplace":           true,
	"(Cluster).SetServerCapacity": true,
	"(Cluster).NewContainer":      true,
}

// acMutatorPkgs gates receiver-suffix matching to the packages that
// declare the real mutators, plus multisched itself for the fixture.
var acMutatorPkgs = map[string]bool{
	"controller": true,
	"cluster":    true,
	"multisched": true,
}

// acMonitoredOwners are the struct owners whose direct field writes from
// worker-reachable code are findings, keyed by bare struct name (gated by
// acMutatorPkgs on the owning package).
var acMonitoredOwners = map[string]bool{
	"Controller":  true,
	"Cluster":     true,
	"serverState": true,
}

// acPoolEntrypoints are the fan-out calls whose function-literal
// arguments run on worker goroutines: the parallel pool entry points and
// the supervisor's recover-wrapped launcher (the only blessed way to
// start a goroutine in a decision package under the panicpath check).
var acPoolEntrypoints = map[string]bool{
	"parallel.(Group).ForEach":  true,
	"parallel.ForEach":          true,
	"parallel.Map":              true,
	"supervise.(Supervisor).Go": true,
}

// ArbiterCommit is the sharded-scheduler mutation-funnel check.
type ArbiterCommit struct{}

// Name implements Check.
func (ArbiterCommit) Name() string { return "arbitercommit" }

// Doc implements Check.
func (ArbiterCommit) Doc() string {
	return "multisched worker goroutines must not reach cluster/controller mutators; commits go through the arbiter"
}

// acRecvMethod extracts the "(Receiver).Method" suffix of a method key,
// or "" for plain functions.
func acRecvMethod(key FuncKey) string {
	i := strings.Index(key, ".(")
	if i < 0 {
		return ""
	}
	return key[i+1:]
}

// acPkgBase extracts the package base name of an index key.
func acPkgBase(key FuncKey) string {
	s := shortKey(key)
	if i := strings.IndexByte(s, '.'); i >= 0 {
		return s[:i]
	}
	return s
}

func acIsMutator(callee FuncKey) bool {
	rm := acRecvMethod(callee)
	return rm != "" && acMutators[rm] && acMutatorPkgs[acPkgBase(callee)]
}

// acOwnerMonitored reports whether a field key ("pkg/path.Owner.field")
// names monitored cluster/controller state.
func acOwnerMonitored(fieldKey string) bool {
	s := shortKey(fieldKey) // "pkg.Owner.field"
	parts := strings.Split(s, ".")
	if len(parts) != 3 {
		return false
	}
	return acMutatorPkgs[parts[0]] && acMonitoredOwners[parts[1]]
}

// RunModule implements ModuleCheck.
func (ArbiterCommit) RunModule(mp *ModulePass) {
	eff := mp.Index.Effects()

	// via maps every worker-reachable function to the shortKey of the
	// function whose `go` statement (or pool literal) roots it, for the
	// diagnostic. Seeds are gathered package-by-package in load order, so
	// the report order is deterministic.
	via := make(map[FuncKey]string)
	var queue []FuncKey
	seed := func(callee FuncKey, root string) {
		if callee == "" {
			return
		}
		if _, seen := via[callee]; !seen {
			via[callee] = root
			queue = append(queue, callee)
		}
	}

	// acWorkerBody scans one worker-side body (a go-literal or a pool
	// literal): resolved calls become closure seeds, mutator calls and
	// monitored writes are immediate findings.
	workerBody := func(pkg *Package, root string, body ast.Node) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				callee := resolveCall(pkg, x)
				if callee == "" {
					return true
				}
				if acIsMutator(callee) {
					mp.Reportf(pkg, x.Pos(),
						"goroutine launched in %s calls mutator %s; sharded mutations must go through the arbiter on the scheduling goroutine",
						root, shortKey(callee))
					return true
				}
				seed(callee, root)
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					acCheckWriteSpine(mp, pkg, root, lhs)
				}
			case *ast.IncDecStmt:
				acCheckWriteSpine(mp, pkg, root, x.X)
			}
			return true
		})
	}

	for _, pkg := range mp.Pkgs {
		if pkg.Base() != "multisched" {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				root := shortKey(declKey(pkg, fd))
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch x := n.(type) {
					case *ast.GoStmt:
						if fl, isLit := ast.Unparen(x.Call.Fun).(*ast.FuncLit); isLit {
							workerBody(pkg, root, fl.Body)
							return false // workerBody walked it
						}
						callee := resolveCall(pkg, x.Call)
						if acIsMutator(callee) {
							mp.Reportf(pkg, x.Pos(),
								"goroutine launched in %s calls mutator %s; sharded mutations must go through the arbiter on the scheduling goroutine",
								root, shortKey(callee))
							return true
						}
						seed(callee, root)
					case *ast.CallExpr:
						if !acPoolEntrypoints[shortKey(resolveCall(pkg, x))] {
							return true
						}
						for _, a := range x.Args {
							if fl, isLit := ast.Unparen(a).(*ast.FuncLit); isLit {
								workerBody(pkg, root, fl.Body)
							}
						}
					}
					return true
				})
			}
		}
	}

	// Flood the call closure from the seeds, flagging mutator edges and
	// direct monitored writes as they are reached.
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		info := mp.Index.Funcs[k]
		if info == nil {
			continue
		}
		for _, c := range info.Calls {
			if acIsMutator(c.Callee) {
				mp.Reportf(info.Pkg, c.Pos,
					"%s, reachable from a goroutine launched in %s, calls mutator %s; sharded mutations must go through the arbiter on the scheduling goroutine",
					shortKey(k), via[k], shortKey(c.Callee))
				continue
			}
			seed(c.Callee, via[k])
		}
		if fe := eff.Of(k); fe != nil {
			writes := append([]WriteEffect(nil), fe.Writes...)
			sort.Slice(writes, func(i, j int) bool { return writes[i].Pos < writes[j].Pos })
			for _, w := range writes {
				if acOwnerMonitored(w.Field) {
					mp.Reportf(info.Pkg, w.Pos,
						"%s, reachable from a goroutine launched in %s, writes %s directly; sharded mutations must go through the arbiter on the scheduling goroutine",
						shortKey(k), via[k], shortKey(w.Field))
				}
			}
		}
	}
}

// acCheckWriteSpine reports a finding when an lvalue's selector spine
// touches a monitored cluster/controller field (direct writes inside a
// worker literal, which effects.go attributes to the enclosing declared
// function and the closure walk would therefore miss).
func acCheckWriteSpine(mp *ModulePass, pkg *Package, root string, e ast.Expr) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if owner, field := fieldOf(pkg, x); field != nil {
				if acOwnerMonitored(fieldAccessKey(owner, field)) {
					mp.Reportf(pkg, x.Pos(),
						"goroutine launched in %s writes %s directly; sharded mutations must go through the arbiter on the scheduling goroutine",
						root, shortKey(fieldAccessKey(owner, field)))
					return
				}
			}
			e = x.X
		default:
			return
		}
	}
}
